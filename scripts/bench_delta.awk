# Compares a fresh `go test -bench` run against BENCH_baseline.json and
# flags regressions beyond a tolerance.
#
# Usage:
#   go test -run '^$' -bench SimThroughput -benchtime 3x . > fresh.txt
#   awk -v tol=10 -f scripts/bench_delta.awk BENCH_baseline.json fresh.txt
#
# The first file must be the JSON snapshot written by `make
# bench-baseline` (scripts/bench_json.awk); the second is raw benchmark
# text. Exit status is 1 when any benchmark regresses by more than tol
# percent (default 10): slower ns/op, lower instrs/s, or more B/op or
# allocs/op. Simulated bus-cycle counts and the mechanism counters
# (planeconf, ewlrhits, rapredir, ddbsavedck) are deterministic, so ANY
# drift in them is flagged regardless of tolerance — it means the
# simulation result changed, not just its speed.
BEGIN {
	if (tol == "") tol = 10
	bad = 0
	# Units that are simulation results, not speeds: exact match required.
	det["buscycles"] = 1
	det["planeconf"] = 1
	det["ewlrhits"] = 1
	det["rapredir"] = 1
	det["ddbsavedck"] = 1
}

# --- pass 1: the JSON baseline (one benchmark object per line) ---
FNR == NR {
	if (match($0, /"name": "[^"]+"/)) {
		name = substr($0, RSTART + 9, RLENGTH - 10)
		rest = substr($0, RSTART + RLENGTH)
		while (match(rest, /"[A-Za-z_]+": [0-9.]+/)) {
			pair = substr(rest, RSTART + 1, RLENGTH - 1)
			sep = index(pair, "\": ")
			base[name, substr(pair, 1, sep - 1)] = substr(pair, sep + 3)
			rest = substr(rest, RSTART + RLENGTH)
		}
		known[name] = 1
	}
	next
}

# --- pass 2: the fresh benchmark text ---
/^Benchmark/ {
	name = $1
	if (!(name in known)) {
		printf "NEW      %-50s (no baseline)\n", name
		next
	}
	seen[name] = 1
	for (i = 3; i < NF; i += 2) {
		unit = $(i + 1)
		gsub(/\//, "_per_", unit)
		b = base[name, unit]
		if (b == "") continue
		v = $i
		delta = (b == 0) ? 0 : 100 * (v - b) / b
		# Higher-is-better metrics regress downward.
		worse = (unit == "instrs_per_s") ? -delta : delta
		if ((unit in det) && v != b) {
			printf "DRIFT    %-50s %-13s %s -> %s (simulation result changed)\n", name, unit, b, v
			bad = 1
		} else if (!(unit in det) && worse > tol) {
			printf "REGRESS  %-50s %-13s %s -> %s (%+.1f%%)\n", name, unit, b, v, delta
			bad = 1
		} else if (!(unit in det)) {
			printf "ok       %-50s %-13s %s -> %s (%+.1f%%)\n", name, unit, b, v, delta
		}
	}
}

END {
	for (name in known)
		if (!(name in seen)) {
			printf "MISSING  %-50s (in baseline, not in fresh run)\n", name
			bad = 1
		}
	if (bad) {
		print "bench-compare: FAIL (tolerance " tol "%)"
		exit 1
	}
	print "bench-compare: ok (tolerance " tol "%)"
}

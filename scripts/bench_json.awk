# Converts `go test -bench` output lines into a JSON array of
# {name, iters, metrics:{unit: value}} records, one per benchmark line.
# Used by `make bench-baseline` to snapshot BenchmarkSimThroughput
# numbers into BENCH_baseline.json.
BEGIN { print "["; n = 0 }
/^Benchmark/ {
	if (n++) printf ",\n"
	printf "  {\"name\": \"%s\", \"iters\": %s, \"metrics\": {", $1, $2
	sep = ""
	for (i = 3; i < NF; i += 2) {
		unit = $(i + 1)
		gsub(/\//, "_per_", unit)
		printf "%s\"%s\": %s", sep, unit, $i
		sep = ", "
	}
	printf "}}"
}
END { print "\n]" }

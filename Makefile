GO ?= go

.PHONY: build vet test race zero-alloc chaos chaos-restart chaos-cluster chaos-mesh fuzz-smoke search-smoke verify bench bench-baseline bench-compare clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Short -race smoke of the concurrency-sensitive paths: the parallel
# experiment engine, the fast-forward/per-cycle equivalence, the chaos
# harness (fault injection + checker + watchdog under -race), the
# telemetry rings shared across concurrent runs and snapshot readers,
# and the span ring under concurrent writers and scrapers.
race:
	$(GO) test -race -count=1 -run 'Parallel|Sweep|LogMode|Cancel|SharedFlight' ./internal/exp/
	$(GO) test -race -count=1 -run 'FastForward|Chaos|TelemetryShared' ./internal/sim/
	$(GO) test -race -count=1 -run 'Concurrency' ./internal/stats/
	$(GO) test -race -count=1 ./internal/telemetry/
	$(GO) test -race -count=1 ./internal/obs/
	$(GO) test -race -count=1 ./internal/chaosnet/
	$(GO) test -race -count=1 ./internal/errfs/
	$(GO) test -race -count=1 ./internal/server/
	$(GO) test -race -count=1 -run 'Trace|Keepalive|Partition|Slowloris' ./internal/cluster/

# Hard zero-cost gate for disabled tracing: every nil-tracer call path
# must stay at exactly 0 allocs/op (the bench-guard CI step runs this).
zero-alloc:
	$(GO) test -count=1 -v -run 'DisabledTracerZeroAlloc' ./internal/obs/

# Full chaos-harness pass: every seeded fault kind must be caught by the
# protocol checker or the watchdog, and benign perturbations must stay
# protocol-legal.
chaos:
	$(GO) test -count=1 -v -run 'Chaos|RunOOM' ./internal/sim/

# Kill-restart chaos harness against the real erucad binary: SIGKILL
# mid-sweep, restart on the same WAL directory, and require every job to
# complete with results byte-identical to an uninterrupted daemon. Set
# ERUCA_CHAOS_RESTART_DIR to keep the WAL, logs and trace dump.
chaos-restart:
	ERUCA_CHAOS_RESTART=1 ERUCA_CHAOS_RESTART_DIR=$(ERUCA_CHAOS_RESTART_DIR) \
		$(GO) test -count=1 -v -timeout 15m \
		-run 'ChaosKillRestart' ./cmd/erucad/

# Cluster chaos harness against real erucad binaries: a 3-node cluster
# takes a sweep, a random worker is SIGKILLed mid-run, and the cluster
# must evict it on lease expiry, re-enqueue its jobs on survivors, and
# finish with results byte-identical to an uninterrupted single-node
# daemon. Set ERUCA_CHAOS_CLUSTER_DIR to keep per-node WALs and logs.
chaos-cluster:
	ERUCA_CHAOS_CLUSTER=1 ERUCA_CHAOS_CLUSTER_DIR=$(ERUCA_CHAOS_CLUSTER_DIR) \
		$(GO) test -count=1 -v -timeout 15m \
		-run 'ChaosCluster' ./cmd/erucad/

# Chaos-mesh harness: both service-tier fault families composed against
# real erucad binaries — a DSL-driven timed network partition (-chaos)
# on one worker plus a SIGKILL of another, with live blob scrubbing
# (-scrub) — and the sweep must still finish byte-identical to an
# uninterrupted daemon, with the eviction/migration/fencing visible in
# the metrics. Set ERUCA_CHAOS_MESH_DIR to keep per-node WALs and logs.
chaos-mesh:
	ERUCA_CHAOS_MESH=1 ERUCA_CHAOS_MESH_DIR=$(ERUCA_CHAOS_MESH_DIR) \
		$(GO) test -count=1 -v -timeout 15m \
		-run 'ChaosMesh' ./cmd/erucad/

# Short fuzz of the hostile-input decoders: the fault-plan parser
# (corpus under internal/faults/testdata/fuzz/ keeps regressions pinned)
# and the snapshot container decoder (must reject corruption with typed
# errors, never panic or over-allocate), plus the service tier's
# attacker-facing parsers: the -chaos DSL and the W3C traceparent
# header.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz 'FuzzFaultPlan' -fuzztime 10s ./internal/faults/
	$(GO) test -run '^$$' -fuzz 'FuzzDecode' -fuzztime 10s ./internal/snapshot/
	$(GO) test -run '^$$' -fuzz 'FuzzChaosPlan' -fuzztime 10s ./internal/chaosnet/
	$(GO) test -run '^$$' -fuzz 'FuzzTraceparentParse' -fuzztime 10s ./internal/obs/

# Determinism smoke of the autotuner: the same tiny 2-dim search
# (successive halving over planes x ddb) run twice — once parallel,
# once serial — must print byte-identical, non-empty Pareto frontiers.
# Keep the artifacts on failure: they are the diff CI uploads.
SEARCH_SMOKE_FLAGS = -exp search -search-dims 'planes=1,2;ddb' \
	-search-rungs 2 -instrs 4000 -seed 7 -chart -q
search-smoke:
	$(GO) run ./cmd/erucabench $(SEARCH_SMOKE_FLAGS) > search-smoke-a.txt
	$(GO) run ./cmd/erucabench $(SEARCH_SMOKE_FLAGS) -parallel 1 > search-smoke-b.txt
	cmp search-smoke-a.txt search-smoke-b.txt
	grep -q 'planes=' search-smoke-a.txt
	rm -f search-smoke-a.txt search-smoke-b.txt

# verify is the tier-1 gate plus the race and chaos smokes.
verify: vet build test race zero-alloc chaos

# Scaled-down figure + ablation + micro benchmarks.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Record simulator-throughput numbers (instrs/s, buscycles, allocs/op)
# for PR-over-PR comparison.
bench-baseline:
	$(GO) test -run '^$$' -bench SimThroughput -benchtime 3x . \
		| tee /tmp/eruca_simthroughput.txt
	awk -f scripts/bench_json.awk /tmp/eruca_simthroughput.txt > BENCH_baseline.json
	cat BENCH_baseline.json

# Re-run the throughput benchmarks and diff against BENCH_baseline.json,
# failing on regressions beyond BENCH_TOLERANCE percent (default 10) or
# on any simulated bus-cycle drift.
BENCH_TOLERANCE ?= 10
bench-compare:
	$(GO) test -run '^$$' -bench SimThroughput -benchtime 3x . \
		| tee /tmp/eruca_simthroughput_fresh.txt
	awk -v tol=$(BENCH_TOLERANCE) -f scripts/bench_delta.awk \
		BENCH_baseline.json /tmp/eruca_simthroughput_fresh.txt

clean:
	rm -f cpu.pprof mem.pprof

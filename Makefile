GO ?= go

.PHONY: build vet test race verify bench bench-baseline clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Short -race smoke of the concurrency-sensitive paths: the parallel
# experiment engine and the fast-forward/per-cycle equivalence.
race:
	$(GO) test -race -count=1 -run 'Parallel' ./internal/exp/
	$(GO) test -race -count=1 -run 'FastForward' ./internal/sim/

# verify is the tier-1 gate plus the race smoke.
verify: vet build test race

# Scaled-down figure + ablation + micro benchmarks.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Record simulator-throughput numbers (instrs/s, buscycles, allocs/op)
# for PR-over-PR comparison.
bench-baseline:
	$(GO) test -run '^$$' -bench SimThroughput -benchtime 3x . \
		| tee /tmp/eruca_simthroughput.txt
	awk -f scripts/bench_json.awk /tmp/eruca_simthroughput.txt > BENCH_baseline.json
	cat BENCH_baseline.json

clean:
	rm -f cpu.pprof mem.pprof

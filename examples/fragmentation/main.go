// Fragmentation shows why the paper evaluates under controlled memory
// fragmentation (Sec. VII): RAP exploits the row-address MSB locality
// that transparent huge pages create, so its benefit depends on how
// fragmented physical memory is. The example runs one mix at FMFI 10%
// and 50% and reports huge-page coverage, plane conflicts, and the gain
// of RAP over naive sub-banking in each scenario.
package main

import (
	"fmt"
	"log"

	"eruca"
)

func main() {
	mix := []string{"mcf", "lbm", "omnetpp", "gemsFDTD"}
	fmt.Printf("%-6s %-20s %10s %12s %16s\n", "FMFI", "system", "huge cov", "speedup", "plane-conf PREs")
	for _, frag := range []float64{0.1, 0.5} {
		rc := eruca.RunConfig{Instrs: 120_000, Frag: frag, FragSet: true}
		base, err := eruca.Simulate("ddr4", mix, rc)
		if err != nil {
			log.Fatal(err)
		}
		for _, preset := range []string{"vsb-naive-ddb", "vsb-rap-ddb", "vsb-ewlr-rap-ddb"} {
			res, err := eruca.Simulate(preset, mix, rc)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-6.0f%% %-20s %9.0f%% %+10.1f%% %15.1f%%\n",
				frag*100, res.System, res.HugeCoverage*100,
				(float64(base.BusCycles)/float64(res.BusCycles)-1)*100,
				res.PlaneConflictPreFrac()*100)
		}
	}
	fmt.Println("\nAt 50% fragmentation huge-page coverage drops, row-MSB locality weakens, and")
	fmt.Println("RAP alone loses some of its edge — EWLR covers the remaining conflicts (Fig. 13).")
}

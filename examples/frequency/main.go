// Frequency reproduces the Fig. 14 argument in miniature: as the DRAM
// channel clock outruns the fixed 200MHz DRAM core, the single
// bank-group bus becomes the bottleneck (tCCD_L), and DDB's second bus —
// governed by the tTCW/tTWTRW two-command windows — keeps scaling.
package main

import (
	"fmt"
	"log"

	"eruca"
)

func main() {
	mix := []string{"lbm", "gemsFDTD", "bwaves", "leslie3d"} // stream-heavy: bus-bound
	for _, mhz := range []float64{1333, 1600, 2000, 2400} {
		var cycles [2]int64
		var ns [2]float64
		for i, preset := range []string{"vsb-ewlr-rap", "vsb-ewlr-rap-ddb"} {
			res, err := eruca.Simulate(preset, mix, eruca.RunConfig{Instrs: 120_000, BusMHz: mhz})
			if err != nil {
				log.Fatal(err)
			}
			cycles[i] = res.BusCycles
			ns[i] = res.ElapsedNS
		}
		gain := (float64(ns[0])/float64(ns[1]) - 1) * 100
		fmt.Printf("bus %4.0fMHz: bank-group bus %8.1fus   DDB %8.1fus   DDB gain %+5.1f%%\n",
			mhz, ns[0]/1000, ns[1]/1000, gain)
	}
	fmt.Println("\nThe DDB advantage should grow with channel frequency (paper: ~+5% at 2.4GHz).")
}

// Tracecheck reproduces the paper's motivating measurement (Fig. 4)
// from inside the library: capture the DRAM transactions of one
// application, then ask — if this DRAM had two sub-banks sharing
// per-plane row-address latches, how often would same-bank overlapping
// transactions collide on a latch set?
package main

import (
	"fmt"
	"log"

	"eruca"

	"eruca/internal/addrmap"
	"eruca/internal/trace"
)

func main() {
	var recs []eruca.TraceRecord
	_, err := eruca.Simulate("ddr4", []string{"mcf"}, eruca.RunConfig{
		Instrs:  100_000,
		Capture: func(r eruca.TraceRecord) { recs = append(recs, r) },
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("captured %d DRAM transactions from mcf\n\n", len(recs))

	// Decode each address the way a 2-sub-bank VSB DRAM would.
	vsb, err := eruca.NewSystem("vsb-naive", 4, 0)
	if err != nil {
		log.Fatal(err)
	}
	mapper := addrmap.New(vsb)
	view := func(pa uint64) (int, int, uint32) {
		l := mapper.Map(pa)
		return l.Channel<<8 | mapper.BankID(l), l.Sub, l.Row
	}

	const tRC = 45.5 // ns
	pts := trace.AnalyzePlaneConflicts(recs, view, mapper.RowBits(),
		tRC, []int{2, 4, 16, 64, 1024, 65536})
	fmt.Printf("%-8s %15s %18s\n", "planes", "plane conflict", "no plane conflict")
	for _, p := range pts {
		fmt.Printf("%-8d %14.1f%% %17.1f%%\n", p.Planes, p.PlaneConflict*100, p.NoPlaneConflict*100)
	}
	fmt.Println("\nConflicts that survive even at huge plane counts come from row-address")
	fmt.Println("locality — the regions EWLR and RAP were designed for (Sec. IV).")
}

// Quickstart: compare ERUCA (4-plane VSB with EWLR+RAP+DDB) against
// stock DDR4 on one memory-intensive mix and print the headline result —
// the paper's ~15% speedup at <0.3% die area.
package main

import (
	"fmt"
	"log"

	"eruca"
)

func main() {
	mix := []string{"mcf", "lbm", "omnetpp", "gemsFDTD"} // mix0 of Tab. III
	rc := eruca.RunConfig{Instrs: 150_000}

	base, err := eruca.Simulate("ddr4", mix, rc)
	if err != nil {
		log.Fatal(err)
	}
	best, err := eruca.Simulate("vsb-ewlr-rap-ddb", mix, rc)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("workload: mcf, lbm, omnetpp, gemsFDTD (4 cores)")
	fmt.Printf("%-24s %10s %12s %14s %12s\n", "system", "IPC(sum)", "row hits", "plane-conf PRE", "qlat mean")
	for _, r := range []*eruca.Result{base, best} {
		sum := 0.0
		for _, ipc := range r.IPC {
			sum += ipc
		}
		fmt.Printf("%-24s %10.3f %11.1f%% %13.1f%% %10.1fns\n",
			r.System, sum, r.RowHitRate()*100, r.PlaneConflictPreFrac()*100, r.QueueLat.Mean())
	}

	speedup := float64(base.BusCycles) / float64(best.BusCycles)
	sys, _ := eruca.NewSystem("vsb-ewlr-rap-ddb", 0, 0)
	fmt.Printf("\nthroughput speedup: %.1f%% at %.2f%% extra DRAM die area\n",
		(speedup-1)*100, eruca.AreaOverhead(sys.Scheme)*100)
	fmt.Printf("EWLR hits reused a driven main wordline on %d of %d activations\n",
		best.DRAM.ActsEWLRHit, best.DRAM.Acts)
}

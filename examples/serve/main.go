// Serve drives the erucad HTTP API end to end: it submits the paper's
// plane-count trade-off (Sec. IV / Fig. 13) as a batch of simulation
// jobs, follows one job's live progress over SSE, then polls the rest
// and prints the same table as examples/planesweep — except every row
// came back over HTTP, deduplicated and cached by the daemon.
//
// By default it self-hosts an in-process server on a loopback port so
// `go run ./examples/serve` works with nothing else running; point
// -addr at a real daemon (e.g. -addr localhost:8080) to use one.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"eruca/internal/server"
)

// jobView mirrors the daemon's job JSON — the fields a wire client
// actually needs.
type jobView struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	CacheHit bool   `json:"cache_hit"`
	Result   string `json:"result"`
	Error    *struct {
		Message  string `json:"message"`
		Class    string `json:"class"`
		ExitCode int    `json:"exit_code"`
	} `json:"error"`
}

func main() {
	addr := flag.String("addr", "", "daemon address (empty = self-host in process)")
	instrs := flag.Int64("instrs", 120_000, "instructions per core")
	flag.Parse()
	log.SetFlags(0)

	base := "http://" + *addr
	if *addr == "" {
		base = selfHost()
	}

	benches := []string{"mcf", "lbm", "soplex", "milc"}
	submit := func(system string, planes int) string {
		spec := server.JobSpec{Kind: "sim", System: system, Benches: benches,
			Planes: planes, Instrs: *instrs, Frag: 0.1}
		b, _ := json.Marshal(spec)
		resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(string(b)))
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		var v jobView
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil || resp.StatusCode != http.StatusAccepted {
			log.Fatalf("submit %s/p%d: status %d (%v)", system, planes, resp.StatusCode, err)
		}
		return v.ID
	}

	// The batch: baseline DDR4 plus naive VSB and ERUCA (EWLR+RAP) at
	// each plane count.
	type row struct {
		planes int
		system string
		id     string
	}
	baseID := submit("ddr4", 0)
	var rows []row
	for _, planes := range []int{2, 4, 8, 16} {
		for _, preset := range []string{"vsb-naive-ddb", "vsb-ewlr-rap-ddb"} {
			rows = append(rows, row{planes, preset, submit(preset, planes)})
		}
	}
	fmt.Fprintf(os.Stderr, "submitted %d jobs to %s\n", len(rows)+1, base)

	// Follow the baseline job's progress live over SSE.
	stream(base, baseID)

	// Collect results (polling; the SSE stream above already rode out
	// most of the queue).
	wait := func(id string) server.SimSummary {
		for {
			resp, err := http.Get(base + "/v1/jobs/" + id)
			if err != nil {
				log.Fatal(err)
			}
			var v jobView
			err = json.NewDecoder(resp.Body).Decode(&v)
			resp.Body.Close()
			if err != nil {
				log.Fatal(err)
			}
			switch v.State {
			case "done":
				var s server.SimSummary
				if err := json.Unmarshal([]byte(v.Result), &s); err != nil {
					log.Fatalf("job %s result: %v", id, err)
				}
				return s
			case "failed", "canceled":
				log.Fatalf("job %s %s: %+v", id, v.State, v.Error)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	baseRes := wait(baseID)
	fmt.Printf("%-8s %-28s %12s %16s\n", "planes", "scheme", "speedup", "plane-conf PREs")
	for _, r := range rows {
		res := wait(r.id)
		fmt.Printf("%-8d %-28s %+10.1f%% %15.1f%%\n",
			r.planes, res.System,
			(float64(baseRes.BusCycles)/float64(res.BusCycles)-1)*100,
			res.PlaneConfPre*100)
	}
}

// stream prints one job's SSE event stream until its terminal "done"
// frame.
func stream(base, id string) {
	resp, err := http.Get(base + "/v1/jobs/" + id + "/events")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	done := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: done"):
			done = true
		case strings.HasPrefix(line, "data: ") && len(line) > 6:
			if done {
				fmt.Fprintf(os.Stderr, "job %s finished: %s\n", id, line[6:])
				return
			}
			fmt.Fprintf(os.Stderr, "  %s\n", line[6:])
		}
	}
}

// selfHost starts an in-process daemon on a loopback port and returns
// its base URL.
func selfHost() string {
	srv, err := server.New(server.Config{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	srv.Start()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = http.Serve(ln, srv.Handler()) }()
	return "http://" + ln.Addr().String()
}

// Serve drives the erucad HTTP API end to end: it submits the paper's
// plane-count trade-off (Sec. IV / Fig. 13) as a batch of simulation
// jobs, follows one job's live progress over SSE, then polls the rest
// and prints the same table as examples/planesweep — except every row
// came back over HTTP, deduplicated and cached by the daemon.
//
// The client is written the way a production consumer of the API should
// be: submissions carry an Idempotency-Key (a retry after a lost
// response lands on the original job, not a duplicate), 429/503
// rejections back off exponentially with jitter while honoring the
// daemon's Retry-After hint, and the SSE progress stream reconnects
// with Last-Event-ID so a dropped connection resumes exactly where it
// left off instead of replaying (or losing) lines.
//
// By default it self-hosts an in-process server on a loopback port so
// `go run ./examples/serve` works with nothing else running; point
// -addr at a real daemon (e.g. -addr localhost:8080) to use one.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"eruca/internal/retry"
	"eruca/internal/server"
)

// jobView mirrors the daemon's job JSON — the fields a wire client
// actually needs.
type jobView struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	CacheHit bool   `json:"cache_hit"`
	Result   string `json:"result"`
	Error    *struct {
		Message  string `json:"message"`
		Class    string `json:"class"`
		ExitCode int    `json:"exit_code"`
	} `json:"error"`
}

func main() {
	addr := flag.String("addr", "", "daemon address (empty = self-host in process)")
	instrs := flag.Int64("instrs", 120_000, "instructions per core")
	flag.Parse()
	log.SetFlags(0)

	base := "http://" + *addr
	if *addr == "" {
		base = selfHost()
	}

	benches := []string{"mcf", "lbm", "soplex", "milc"}
	submit := func(system string, planes int) string {
		spec := server.JobSpec{Kind: "sim", System: system, Benches: benches,
			Planes: planes, Instrs: *instrs, Frag: 0.1}
		// One deterministic key per logical job: a retried POST (lost
		// response, daemon restart) returns the original job.
		key := fmt.Sprintf("planesweep|%s|p%d|%d", system, planes, *instrs)
		return submitWithRetry(base, spec, key)
	}

	// The batch: baseline DDR4 plus naive VSB and ERUCA (EWLR+RAP) at
	// each plane count.
	type row struct {
		planes int
		system string
		id     string
	}
	baseID := submit("ddr4", 0)
	var rows []row
	for _, planes := range []int{2, 4, 8, 16} {
		for _, preset := range []string{"vsb-naive-ddb", "vsb-ewlr-rap-ddb"} {
			rows = append(rows, row{planes, preset, submit(preset, planes)})
		}
	}
	fmt.Fprintf(os.Stderr, "submitted %d jobs to %s\n", len(rows)+1, base)

	// Follow the baseline job's progress live over SSE.
	stream(base, baseID)

	// Collect results (polling; the SSE stream above already rode out
	// most of the queue).
	wait := func(id string) server.SimSummary {
		for {
			resp, err := http.Get(base + "/v1/jobs/" + id)
			if err != nil {
				log.Fatal(err)
			}
			var v jobView
			err = json.NewDecoder(resp.Body).Decode(&v)
			resp.Body.Close()
			if err != nil {
				log.Fatal(err)
			}
			switch v.State {
			case "done":
				var s server.SimSummary
				if err := json.Unmarshal([]byte(v.Result), &s); err != nil {
					log.Fatalf("job %s result: %v", id, err)
				}
				return s
			case "failed", "canceled":
				log.Fatalf("job %s %s: %+v", id, v.State, v.Error)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	baseRes := wait(baseID)
	fmt.Printf("%-8s %-28s %12s %16s\n", "planes", "scheme", "speedup", "plane-conf PREs")
	for _, r := range rows {
		res := wait(r.id)
		fmt.Printf("%-8d %-28s %+10.1f%% %15.1f%%\n",
			r.planes, res.System,
			(float64(baseRes.BusCycles)/float64(res.BusCycles)-1)*100,
			res.PlaneConfPre*100)
	}
}

// submitWithRetry POSTs the spec until the daemon accepts it. 429 (queue
// full) and 503 (draining / restarting) are retried through
// retry.Backoff — exponential with jitter, flooring each sleep at the
// daemon's Retry-After hint; every attempt carries the same
// Idempotency-Key, so a retry after a dropped response returns the
// original job (200) instead of enqueueing a duplicate.
func submitWithRetry(base string, spec server.JobSpec, key string) string {
	b, _ := json.Marshal(spec)
	var backoff retry.Backoff // zero value: 250ms base, 30s cap, ±25% jitter
	for attempt := 1; ; attempt++ {
		req, err := http.NewRequest("POST", base+"/v1/jobs", strings.NewReader(string(b)))
		if err != nil {
			log.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Idempotency-Key", key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			// Connection-level failure (daemon restarting): same backoff.
			fmt.Fprintf(os.Stderr, "submit attempt %d: %v; retrying\n", attempt, err)
			backoff.Sleep(context.Background(), 0)
			continue
		}
		switch resp.StatusCode {
		case http.StatusAccepted, http.StatusOK: // 200 = idempotent replay
			var v jobView
			err := json.NewDecoder(resp.Body).Decode(&v)
			resp.Body.Close()
			if err != nil || v.ID == "" {
				log.Fatalf("submit: bad response (%v)", err)
			}
			return v.ID
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			hint, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			fmt.Fprintf(os.Stderr, "submit attempt %d: %d (Retry-After %ds); backing off\n",
				attempt, resp.StatusCode, hint)
			backoff.Sleep(context.Background(), time.Duration(hint)*time.Second)
		default:
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			log.Fatalf("submit: status %d: %s", resp.StatusCode, body)
		}
	}
}

// stream prints one job's SSE event stream until its terminal "done"
// frame, reconnecting with Last-Event-ID when the connection drops so
// the progress log continues exactly where it left off.
func stream(base, id string) {
	lastID := -1
	backoff := retry.Backoff{Max: 10 * time.Second}
	for {
		req, err := http.NewRequest("GET", base+"/v1/jobs/"+id+"/events", nil)
		if err != nil {
			log.Fatal(err)
		}
		if lastID >= 0 {
			req.Header.Set("Last-Event-ID", strconv.Itoa(lastID))
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil || resp.StatusCode != http.StatusOK {
			if resp != nil {
				resp.Body.Close()
			}
			fmt.Fprintf(os.Stderr, "events: reconnecting (%v)\n", err)
			backoff.Sleep(context.Background(), 0)
			continue
		}
		backoff.Reset() // connected: the next drop starts the schedule fresh
		sc := bufio.NewScanner(resp.Body)
		done := false
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: done"):
				done = true
			case strings.HasPrefix(line, "id: "):
				if n, err := strconv.Atoi(line[4:]); err == nil {
					lastID = n
				}
			case strings.HasPrefix(line, "data: ") && len(line) > 6:
				if done {
					fmt.Fprintf(os.Stderr, "job %s finished: %s\n", id, line[6:])
					resp.Body.Close()
					return
				}
				fmt.Fprintf(os.Stderr, "  %s\n", line[6:])
			}
		}
		// Stream ended without a done frame: the connection dropped (or
		// the daemon restarted). Resume from the last id seen.
		resp.Body.Close()
		fmt.Fprintf(os.Stderr, "events: stream dropped after id %d; reconnecting\n", lastID)
		backoff.Sleep(context.Background(), 0)
	}
}

// selfHost starts an in-process daemon on a loopback port and returns
// its base URL.
func selfHost() string {
	srv, err := server.New(server.Config{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	srv.Start()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = http.Serve(ln, srv.Handler()) }()
	return "http://" + ln.Addr().String()
}

// Search drives the erucad autotuner end to end: it submits one
// "search" job — a design-space exploration over the -search-dims
// parameter ladders, seeded by -seed — then follows the incumbent
// Pareto frontier live over the job's SSE stream and, when the search
// completes, prints the final frontier table and ASCII Pareto scatter
// (IPC vs energy, area in the labels).
//
// The submission carries a content-derived Idempotency-Key, so rerunning
// the client against a daemon that already ran this exact search returns
// the cached result instantly — the engine is deterministic in
// (spec, seed), which is what makes that reuse sound. By default it
// self-hosts an in-process daemon on a loopback port so
// `go run ./examples/search` works with nothing else running; point
// -addr at a real daemon (or any node of a cluster, which will fan the
// point evaluations out across the ring) to use one.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"eruca/internal/cli"
	"eruca/internal/search"
	"eruca/internal/server"
)

type jobView struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	CacheHit bool   `json:"cache_hit"`
	Result   string `json:"result"`
	Error    *struct {
		Message string `json:"message"`
	} `json:"error"`
}

func main() {
	addr := flag.String("addr", "", "daemon address (empty = self-host in process)")
	mix := flag.String("mix", "mix0", "workload mix the search optimizes for")
	frag := flag.Float64("frag", 0.1, "address-space fragmentation")
	seed := flag.Int64("seed", 1, "search seed (0 is rejected: every run must be replayable)")
	instrs := flag.Int64("instrs", 40_000, "full-budget instructions per core (top halving rung)")
	var sr cli.Search
	sr.Register()
	flag.Parse()
	log.SetFlags(0)

	spec, err := sr.Spec(*mix, *frag, 0, *seed, *instrs)
	if err != nil {
		log.Fatal(err)
	}
	job := server.JobSpec{Kind: "search", Search: &spec, Seed: *seed}

	base := "http://" + *addr
	if *addr == "" {
		base = selfHost()
	}

	// Content-derived idempotency: the same search resubmitted (a retry,
	// or a rerun of this client) lands on the original job.
	id := submit(base, job, "search-"+spec.Hash())
	fmt.Fprintf(os.Stderr, "search %s submitted to %s (space %s, seed %d)\n",
		id, base, spec.Hash()[:12], *seed)

	stream(base, id)

	v := await(base, id)
	res, err := search.ParseResult([]byte(v.Result))
	if err != nil {
		log.Fatalf("unparsable search result: %v", err)
	}
	fmt.Println(res.Table().Format())
	if c := res.Chart(); c != "" {
		fmt.Println(c)
	}
	fmt.Fprintf(os.Stderr, "[%d points evaluated, frontier size %d, cache hit: %v]\n",
		res.PointsEvaluated, len(res.Frontier), v.CacheHit)
}

// submit POSTs the job spec once; 200 means an idempotent replay of an
// earlier submission and is as good as a fresh 202.
func submit(base string, spec server.JobSpec, key string) string {
	b, err := json.Marshal(spec)
	if err != nil {
		log.Fatal(err)
	}
	req, err := http.NewRequest("POST", base+"/v1/jobs", strings.NewReader(string(b)))
	if err != nil {
		log.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Idempotency-Key", key)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		log.Fatalf("submit: status %d: %s", resp.StatusCode, e.Error)
	}
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil || v.ID == "" {
		log.Fatalf("submit: bad response (%v)", err)
	}
	return v.ID
}

// stream follows the job's SSE feed, printing the incumbent-frontier
// lines as the search tightens them, until the terminal done frame.
func stream(base, id string) {
	resp, err := http.Get(base + "/v1/jobs/" + id + "/events")
	if err != nil || resp.StatusCode != http.StatusOK {
		if resp != nil {
			resp.Body.Close()
		}
		fmt.Fprintf(os.Stderr, "events unavailable (%v); polling instead\n", err)
		return
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20) // frontier lines carry JSON
	done := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: done"):
			done = true
		case strings.HasPrefix(line, "data: ") && len(line) > 6:
			if done {
				return
			}
			fmt.Fprintf(os.Stderr, "  %s\n", line[6:])
		}
	}
}

func await(base, id string) jobView {
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			log.Fatal(err)
		}
		var v jobView
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			log.Fatal(err)
		}
		switch v.State {
		case "done":
			return v
		case "failed", "canceled":
			msg := v.State
			if v.Error != nil {
				msg += ": " + v.Error.Message
			}
			log.Fatalf("search %s %s", id, msg)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// selfHost starts an in-process daemon on a loopback port and returns
// its base URL.
func selfHost() string {
	srv, err := server.New(server.Config{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	srv.Start()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = http.Serve(ln, srv.Handler()) }()
	return "http://" + ln.Addr().String()
}

// Planesweep explores the central trade-off of Sec. IV: how many
// row-address latch sets (planes) does a sub-banked DRAM need? It sweeps
// the plane count for naive VSB and for ERUCA's EWLR+RAP, showing that
// conflict avoidance makes two planes enough (the paper's Fig. 13
// argument) — which matters because latch-select wires grow the die with
// every doubling.
package main

import (
	"fmt"
	"log"

	"eruca"
)

func main() {
	mix := []string{"mcf", "lbm", "soplex", "milc"}
	rc := eruca.RunConfig{Instrs: 120_000}

	base, err := eruca.Simulate("ddr4", mix, rc)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-8s %-28s %12s %16s %10s\n", "planes", "scheme", "speedup", "plane-conf PREs", "die cost")
	for _, planes := range []int{2, 4, 8, 16} {
		for _, preset := range []string{"vsb-naive-ddb", "vsb-ewlr-rap-ddb"} {
			rcp := rc
			rcp.Planes = planes
			res, err := eruca.Simulate(preset, mix, rcp)
			if err != nil {
				log.Fatal(err)
			}
			sys, _ := eruca.NewSystem(preset, planes, 0)
			fmt.Printf("%-8d %-28s %+10.1f%% %15.1f%% %9.2f%%\n",
				planes, res.System,
				(float64(base.BusCycles)/float64(res.BusCycles)-1)*100,
				res.PlaneConflictPreFrac()*100,
				eruca.AreaOverhead(sys.Scheme)*100)
		}
	}
	fmt.Println("\nEWLR+RAP should stay near its peak even at 2 planes; naive VSB needs many")
	fmt.Println("planes to escape conflicts, paying die area for every doubling.")
}

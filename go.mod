module eruca

go 1.22

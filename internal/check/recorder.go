package check

import (
	"fmt"
	"strings"

	"eruca/internal/clock"
	"eruca/internal/dram"
)

// DefaultDepth is the per-rank flight-recorder depth when Options.Depth
// is zero.
const DefaultDepth = 32

// Entry is one recorded command with its issue cycle.
type Entry struct {
	At  clock.Cycle
	Cmd dram.Command
}

// FlightRecorder keeps a ring buffer of the last N issued commands per
// rank — the "black box" attached to every ProtocolError and deadlock
// report. It is cheap enough to run always-on: Record is two stores and
// an increment.
type FlightRecorder struct {
	depth int
	buf   [][]Entry // per rank, capacity depth
	next  []int     // per rank, next write position
	count []uint64  // per rank, total commands ever recorded
}

// NewFlightRecorder builds a recorder for `ranks` ranks keeping the last
// `depth` commands each (DefaultDepth when depth <= 0).
func NewFlightRecorder(ranks, depth int) *FlightRecorder {
	if depth <= 0 {
		depth = DefaultDepth
	}
	if ranks < 1 {
		ranks = 1
	}
	f := &FlightRecorder{
		depth: depth,
		buf:   make([][]Entry, ranks),
		next:  make([]int, ranks),
		count: make([]uint64, ranks),
	}
	for i := range f.buf {
		f.buf[i] = make([]Entry, 0, depth)
	}
	return f
}

// Depth reports the configured per-rank capacity.
func (f *FlightRecorder) Depth() int { return f.depth }

// Ranks reports how many rank rings the recorder holds.
func (f *FlightRecorder) Ranks() int { return len(f.buf) }

// Recorded reports the total number of commands ever recorded for a
// rank (not capped by the ring depth).
func (f *FlightRecorder) Recorded(rank int) uint64 {
	if rank < 0 || rank >= len(f.count) {
		return 0
	}
	return f.count[rank]
}

// Record appends one command to its rank's ring. Out-of-range ranks are
// clamped into the ring set so a corrupted command still gets recorded
// somewhere rather than dropped.
func (f *FlightRecorder) Record(rank int, cmd dram.Command, at clock.Cycle) {
	if rank < 0 || rank >= len(f.buf) {
		rank = 0
	}
	f.count[rank]++
	if len(f.buf[rank]) < f.depth {
		f.buf[rank] = append(f.buf[rank], Entry{At: at, Cmd: cmd})
		return
	}
	f.buf[rank][f.next[rank]] = Entry{At: at, Cmd: cmd}
	f.next[rank] = (f.next[rank] + 1) % f.depth
}

// Snapshot returns the rank's recorded commands oldest-first. The slice
// is a copy; mutating it does not disturb the recorder.
func (f *FlightRecorder) Snapshot(rank int) []Entry {
	if rank < 0 || rank >= len(f.buf) {
		return nil
	}
	ring := f.buf[rank]
	out := make([]Entry, 0, len(ring))
	if len(ring) < f.depth {
		return append(out, ring...)
	}
	out = append(out, ring[f.next[rank]:]...)
	return append(out, ring[:f.next[rank]]...)
}

// Dump renders every rank's recent history, oldest-first, for crash
// dumps and deadlock reports.
func (f *FlightRecorder) Dump() string {
	var b strings.Builder
	for r := range f.buf {
		snap := f.Snapshot(r)
		fmt.Fprintf(&b, "rank %d flight recorder (%d total, last %d):\n", r, f.count[r], len(snap))
		for _, e := range snap {
			fmt.Fprintf(&b, "  @%-10d %v\n", e.At, e.Cmd)
		}
	}
	return b.String()
}

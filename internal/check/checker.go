package check

import (
	"fmt"
	"io"

	"eruca/internal/clock"
	"eruca/internal/config"
	"eruca/internal/dram"
	"eruca/internal/telemetry"
)

// errCap bounds how many violations Log mode retains so a badly broken
// run cannot balloon memory.
const errCap = 64

// Options configures one Checker.
type Options struct {
	// Mode selects the reaction policy (Off, Log, Fail, Panic).
	Mode Mode
	// Depth is the per-rank flight-recorder depth (DefaultDepth when 0).
	Depth int
	// Reference is the configuration the audit re-checks commands
	// against. When nil the running system's own configuration is used;
	// supplying a pristine reference catches a corrupted or deliberately
	// broken running configuration.
	Reference *config.System
	// Logf, when set and Mode is Log, receives a one-line summary of
	// each recorded violation.
	Logf func(format string, args ...any)
	// Telemetry, when non-nil, lets crash reports embed the last
	// TraceTail telemetry events of the violating rank — a far wider
	// window than the 32-command flight recorder, including mechanism
	// events (EWLR hits, plane conflicts, DDB grants, fast-forward
	// skips). Chan identifies this checker's channel in the Set.
	Telemetry *telemetry.Set
	Chan      int
}

// TraceTail is how many telemetry events a ProtocolError embeds.
const TraceTail = 256

// Checker is the composed protocol checker for one channel: an
// independent Auditor re-verifying the command stream, a FlightRecorder
// capturing per-rank history, and a mode-driven reaction policy. It
// implements dram.Observer, so it attaches with Channel.Attach, and its
// HandleViolation method plugs into Channel.OnViolation to capture the
// timing engine's own detections.
type Checker struct {
	opts Options
	aud  *dram.Auditor
	rec  *FlightRecorder

	// consumed is the prefix of aud.Structured() already drained.
	consumed int
	// lastRank is the rank of the most recently observed command, used
	// to attribute audit violations (which are detected synchronously
	// inside Observe) to a rank for the snapshot.
	lastRank int
	lastCmd  string

	errs   []*ProtocolError
	failed bool
}

// New builds a Checker for the running system. The audit reference
// defaults to the running configuration itself unless Options.Reference
// supplies an independent one.
func New(running *config.System, opts Options) *Checker {
	ref := opts.Reference
	if ref == nil {
		ref = running
	}
	return &Checker{
		opts: opts,
		aud:  dram.NewAuditor(ref),
		rec:  NewFlightRecorder(running.Geom.Ranks, opts.Depth),
	}
}

// Mode reports the configured reaction mode.
func (c *Checker) Mode() Mode { return c.opts.Mode }

// Recorder exposes the flight recorder for crash dumps.
func (c *Checker) Recorder() *FlightRecorder { return c.rec }

// Commands reports how many commands the audit has observed.
func (c *Checker) Commands() int { return c.aud.Commands() }

// Observe implements dram.Observer: it records the command in the
// flight recorder, feeds the independent audit, and drains any
// violations the audit detected for this command.
func (c *Checker) Observe(cmd dram.Command, at clock.Cycle) {
	if c.opts.Mode == Off {
		return
	}
	c.rec.Record(cmd.Rank, cmd, at)
	c.lastRank = cmd.Rank
	c.lastCmd = fmt.Sprintf("%v", cmd)
	c.aud.Observe(cmd, at)
	c.drain("audit")
}

// HandleViolation receives a violation the timing engine itself
// detected (via Channel.OnViolation) and reacts per the mode. In Panic
// mode it panics with the *ProtocolError, reproducing the historical
// stop-the-world behavior but with the flight recorder attached.
func (c *Checker) HandleViolation(v dram.Violation) {
	if c.opts.Mode == Off {
		return
	}
	rank := v.Cmd.Rank
	pe := &ProtocolError{
		Rule:   v.Rule,
		Cycle:  v.At,
		Cmd:    fmt.Sprintf("%v", v.Cmd),
		Detail: v.Msg,
		Recent: c.rec.Snapshot(rank),
		Trace:  c.telTail(rank),
		Source: "engine",
	}
	c.react(pe)
}

// drain converts newly appended audit violations into ProtocolErrors
// and reacts to each.
func (c *Checker) drain(source string) {
	vs := c.aud.Structured()
	for ; c.consumed < len(vs); c.consumed++ {
		v := vs[c.consumed]
		pe := &ProtocolError{
			Rule:   v.Rule,
			Cycle:  v.At,
			Cmd:    c.lastCmd,
			Detail: v.Msg,
			Recent: c.rec.Snapshot(c.lastRank),
			Trace:  c.telTail(c.lastRank),
			Source: source,
		}
		c.react(pe)
	}
}

// telTail snapshots the last TraceTail telemetry events of the given
// rank on this checker's channel; nil without an attached Set.
func (c *Checker) telTail(rank int) []telemetry.Event {
	return c.opts.Telemetry.Recent(c.opts.Chan, rank, TraceTail)
}

func (c *Checker) react(pe *ProtocolError) {
	switch c.opts.Mode {
	case Panic:
		panic(pe)
	case Fail:
		if !c.failed {
			c.errs = append(c.errs, pe)
			c.failed = true
		}
	case Log:
		if len(c.errs) < errCap {
			c.errs = append(c.errs, pe)
		}
		if c.opts.Logf != nil {
			c.opts.Logf("%s", pe.Error())
		}
	}
}

// Finish runs the audit's end-of-stream checks (refresh starvation) and
// drains any violations they raise. Finish-time violations are not tied
// to a single command, so Cmd is cleared.
func (c *Checker) Finish(end clock.Cycle) {
	if c.opts.Mode == Off {
		return
	}
	c.lastCmd = ""
	c.aud.Finish(end)
	c.drain("audit")
}

// Failed reports whether Fail mode has latched a violation.
func (c *Checker) Failed() bool { return c.failed }

// Err returns the first recorded violation, or nil.
func (c *Checker) Err() error {
	if len(c.errs) == 0 {
		return nil
	}
	return c.errs[0]
}

// Errors returns every recorded violation (bounded by errCap in Log
// mode, exactly one in Fail mode).
func (c *Checker) Errors() []*ProtocolError { return c.errs }

// Dump writes every recorded violation with its history to w, followed
// by the full flight-recorder state — the crash-dump payload.
func (c *Checker) Dump(w io.Writer) {
	for i, pe := range c.errs {
		fmt.Fprintf(w, "--- violation %d/%d ---\n%s", i+1, len(c.errs), pe.Dump())
	}
	fmt.Fprint(w, c.rec.Dump())
}

package check

import (
	"fmt"
	"strings"

	"eruca/internal/clock"
	"eruca/internal/telemetry"
)

// ProtocolError is one structured protocol violation: the rule broken,
// the cycle, the offending command (when tied to one), and a flight
// recorder snapshot of the last commands issued to the same rank.
type ProtocolError struct {
	// Rule is the JEDEC/ERUCA rule tag ("tRP", "tFAW", "ACT-on-open",
	// "plane-invariant", "tREFI", ...).
	Rule string
	// Cycle is the bus cycle of the violation.
	Cycle clock.Cycle
	// Cmd is the offending command's rendering ("" when the violation is
	// not tied to a single command, e.g. refresh starvation at finish).
	Cmd string
	// Detail is the full human-readable description.
	Detail string
	// Recent is the per-rank flight recorder snapshot at detection time,
	// oldest-first.
	Recent []Entry
	// Trace is the per-rank telemetry-event tail (up to TraceTail events,
	// oldest-first) captured at detection time when a telemetry.Set was
	// attached — a wider window than Recent that also carries the ERUCA
	// mechanism events (EWLR hits, plane-conflict precharges, RAP
	// remaps, DDB grants, fast-forward skips).
	Trace []telemetry.Event
	// Source tells which implementation detected the violation: "engine"
	// (the timing engine's own state checks) or "audit" (the independent
	// re-check over the command stream).
	Source string
}

// Error implements error with a one-line summary.
func (e *ProtocolError) Error() string {
	return fmt.Sprintf("protocol violation [%s] at cycle %d: %s", e.Rule, e.Cycle, e.Detail)
}

// Dump renders the violation with its flight-recorder history attached —
// the payload crash-dump files carry.
func (e *ProtocolError) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", e.Error())
	if e.Cmd != "" {
		fmt.Fprintf(&b, "offending command: %s\n", e.Cmd)
	}
	fmt.Fprintf(&b, "detected by: %s\n", e.Source)
	if len(e.Recent) > 0 {
		fmt.Fprintf(&b, "last %d commands on the rank:\n", len(e.Recent))
		for _, en := range e.Recent {
			fmt.Fprintf(&b, "  @%-10d %v\n", en.At, en.Cmd)
		}
	}
	if len(e.Trace) > 0 {
		fmt.Fprintf(&b, "last %d telemetry events on the rank:\n", len(e.Trace))
		for _, ev := range e.Trace {
			fmt.Fprintf(&b, "  %s\n", ev)
		}
	}
	return b.String()
}

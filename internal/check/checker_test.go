package check

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"eruca/internal/config"
	"eruca/internal/dram"
)

// driveViolation feeds the checker a command stream that is illegal under
// the baseline DDR4 timing: two ACTs to the same bank with no PRE and no
// tRC spacing in between. The independent audit must flag it regardless
// of what a (possibly corrupted) running configuration would claim.
func driveViolation(c *Checker) {
	c.Observe(dram.Command{Kind: dram.CmdACT, Row: 1}, 0)
	c.Observe(dram.Command{Kind: dram.CmdACT, Row: 2}, 1)
}

func TestCheckerLogMode(t *testing.T) {
	var logged []string
	c := New(config.Baseline(config.DefaultBusMHz), Options{
		Mode: Log,
		Logf: func(format string, args ...any) { logged = append(logged, format) },
	})
	driveViolation(c)
	c.Finish(1000)

	if c.Failed() {
		t.Error("Log mode must not latch failure")
	}
	errs := c.Errors()
	if len(errs) == 0 {
		t.Fatal("expected at least one recorded violation")
	}
	if c.Err() == nil {
		t.Error("Err() should surface the first violation")
	}
	if len(logged) != len(errs) {
		t.Errorf("Logf called %d times, %d violations recorded", len(logged), len(errs))
	}
	pe := errs[0]
	if pe.Rule == "" || pe.Detail == "" || pe.Source != "audit" {
		t.Errorf("malformed ProtocolError: %+v", pe)
	}
	if len(pe.Recent) == 0 {
		t.Error("violation should carry a flight-recorder snapshot")
	}
	var buf bytes.Buffer
	c.Dump(&buf)
	if !strings.Contains(buf.String(), "violation 1/") {
		t.Errorf("Dump missing violation header:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "flight recorder") {
		t.Errorf("Dump missing flight-recorder state:\n%s", buf.String())
	}
}

func TestCheckerFailModeLatchesFirst(t *testing.T) {
	c := New(config.Baseline(config.DefaultBusMHz), Options{Mode: Fail})
	driveViolation(c)
	driveViolation(c) // more violations after the latch
	c.Finish(1000)

	if !c.Failed() {
		t.Fatal("Fail mode should latch after a violation")
	}
	if n := len(c.Errors()); n != 1 {
		t.Fatalf("Fail mode recorded %d violations, want exactly 1", n)
	}
	var pe *ProtocolError
	if !errors.As(c.Err(), &pe) {
		t.Fatalf("Err() = %T, want *ProtocolError", c.Err())
	}
}

func TestCheckerPanicMode(t *testing.T) {
	c := New(config.Baseline(config.DefaultBusMHz), Options{Mode: Panic})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Panic mode should panic on a violation")
		}
		if _, ok := r.(*ProtocolError); !ok {
			t.Fatalf("panicked with %T, want *ProtocolError", r)
		}
	}()
	driveViolation(c)
}

func TestCheckerOffMode(t *testing.T) {
	c := New(config.Baseline(config.DefaultBusMHz), Options{Mode: Off})
	driveViolation(c)
	c.Finish(1000)
	if c.Commands() != 0 || len(c.Errors()) != 0 || c.Failed() {
		t.Errorf("Off mode must be inert: commands=%d errs=%d failed=%v",
			c.Commands(), len(c.Errors()), c.Failed())
	}
}

func TestCheckerEngineViolation(t *testing.T) {
	c := New(config.Baseline(config.DefaultBusMHz), Options{Mode: Log})
	c.Observe(dram.Command{Kind: dram.CmdACT, Row: 1}, 0)
	c.HandleViolation(dram.Violation{
		At: 5, Rule: "tRCD",
		Cmd: dram.Command{Kind: dram.CmdRD, Row: 1},
		Msg: "RD 3 cycles before tRCD",
	})
	errs := c.Errors()
	if len(errs) == 0 {
		t.Fatal("engine violation not recorded")
	}
	pe := errs[len(errs)-1]
	if pe.Source != "engine" || pe.Rule != "tRCD" {
		t.Errorf("got source %q rule %q, want engine/tRCD", pe.Source, pe.Rule)
	}
	if len(pe.Recent) == 0 {
		t.Error("engine violation should carry the rank's history")
	}
}

// TestCheckerPristineReference verifies that the audit checks against the
// supplied reference configuration, not the (possibly corrupted) running
// one: a stream that is illegal under pristine DDR4 timing is caught even
// when the running system claims otherwise.
func TestCheckerPristineReference(t *testing.T) {
	running := config.Baseline(config.DefaultBusMHz)
	pristine := config.Baseline(config.DefaultBusMHz)
	// Corrupt the running system's timing so its own numbers would accept
	// back-to-back ACTs; the pristine reference must still reject them.
	running.CT.RC = 0
	running.CT.RAS = 0
	running.CT.RP = 0

	c := New(running, Options{Mode: Log, Reference: pristine})
	// ACT, PRE immediately (violates pristine tRAS), ACT again (tRP/tRC).
	c.Observe(dram.Command{Kind: dram.CmdACT, Row: 1}, 0)
	c.Observe(dram.Command{Kind: dram.CmdPRE}, 1)
	c.Observe(dram.Command{Kind: dram.CmdACT, Row: 2}, 2)
	c.Finish(1000)

	if len(c.Errors()) == 0 {
		t.Fatal("pristine reference failed to catch a stream the corrupted running config allows")
	}
}

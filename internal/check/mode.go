// Package check is the configurable JEDEC+ERUCA protocol-checker
// subsystem. It promotes the timing engine's ad-hoc panics and the
// post-hoc audit machinery into a structured invariant checker that
//
//   - independently re-verifies every issued DRAM command (timing
//     windows, ACT-on-open, column-to-closed-row, the ERUCA
//     plane/EWLR/RAP rules, the DDB tTCW/tTWTRW windows, tFAW and
//     refresh-interval accounting) against a reference configuration;
//   - records violations as structured ProtocolErrors carrying a flight
//     recorder — a ring buffer of the last N issued commands per rank —
//     so a violation ships with the command history that produced it;
//   - runs in one of three modes: Panic (stop the world, the historical
//     behavior), Fail (record the first violation and end the run as an
//     error), or Log (record everything, finish the run, and guarantee
//     zero behavioral perturbation — sweep tables are byte-identical
//     with the checker on or off).
package check

import "fmt"

// Mode selects how the checker reacts to a detected violation.
type Mode int

const (
	// Off disables checking entirely.
	Off Mode = iota
	// Log records violations (bounded) and lets the run complete.
	Log
	// Fail records the first violation and fails the run with it.
	Fail
	// Panic panics with the *ProtocolError — the historical behavior.
	Panic
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Off:
		return "off"
	case Log:
		return "log"
	case Fail:
		return "fail"
	case Panic:
		return "panic"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ParseMode parses a -check flag value.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "off", "":
		return Off, nil
	case "log":
		return Log, nil
	case "fail":
		return Fail, nil
	case "panic":
		return Panic, nil
	}
	return Off, fmt.Errorf("check: unknown mode %q (want off, log, fail or panic)", s)
}

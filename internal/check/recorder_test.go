package check

import (
	"strings"
	"testing"

	"eruca/internal/clock"
	"eruca/internal/dram"
)

func mkCmd(kind dram.CmdKind, rank int, row uint32) dram.Command {
	return dram.Command{Kind: kind, Rank: rank, Row: row}
}

func TestFlightRecorderWrap(t *testing.T) {
	const depth = 4
	f := NewFlightRecorder(2, depth)
	if f.Depth() != depth || f.Ranks() != 2 {
		t.Fatalf("got depth=%d ranks=%d, want %d/2", f.Depth(), f.Ranks(), depth)
	}
	for i := 0; i < 10; i++ {
		f.Record(0, mkCmd(dram.CmdACT, 0, uint32(i)), clock.Cycle(100+i))
	}
	if got := f.Recorded(0); got != 10 {
		t.Fatalf("Recorded(0) = %d, want 10", got)
	}
	snap := f.Snapshot(0)
	if len(snap) != depth {
		t.Fatalf("snapshot length %d, want %d", len(snap), depth)
	}
	// Oldest-first: rows 6,7,8,9 at cycles 106..109.
	for i, e := range snap {
		wantRow := uint32(6 + i)
		wantAt := clock.Cycle(106 + i)
		if e.Cmd.Row != wantRow || e.At != wantAt {
			t.Errorf("snap[%d] = row %#x at %d, want row %#x at %d", i, e.Cmd.Row, e.At, wantRow, wantAt)
		}
	}
	// The untouched rank stays empty.
	if got := f.Snapshot(1); len(got) != 0 {
		t.Errorf("rank 1 snapshot = %d entries, want 0", len(got))
	}
}

func TestFlightRecorderPartialFill(t *testing.T) {
	f := NewFlightRecorder(1, 8)
	for i := 0; i < 3; i++ {
		f.Record(0, mkCmd(dram.CmdRD, 0, uint32(i)), clock.Cycle(i))
	}
	snap := f.Snapshot(0)
	if len(snap) != 3 {
		t.Fatalf("snapshot length %d, want 3", len(snap))
	}
	for i, e := range snap {
		if e.Cmd.Row != uint32(i) {
			t.Errorf("snap[%d].Row = %#x, want %#x", i, e.Cmd.Row, i)
		}
	}
}

func TestFlightRecorderClamping(t *testing.T) {
	f := NewFlightRecorder(2, 4)
	// Out-of-range ranks are clamped into ring 0 rather than dropped.
	f.Record(-1, mkCmd(dram.CmdACT, -1, 1), 10)
	f.Record(99, mkCmd(dram.CmdACT, 99, 2), 20)
	if got := f.Recorded(0); got != 2 {
		t.Fatalf("Recorded(0) = %d, want 2 (clamped records)", got)
	}
	if got := len(f.Snapshot(0)); got != 2 {
		t.Fatalf("Snapshot(0) has %d entries, want 2", got)
	}
	// Out-of-range queries are safe.
	if f.Snapshot(-1) != nil || f.Snapshot(7) != nil {
		t.Error("out-of-range Snapshot should return nil")
	}
	if f.Recorded(-1) != 0 || f.Recorded(7) != 0 {
		t.Error("out-of-range Recorded should return 0")
	}
}

func TestFlightRecorderDefaults(t *testing.T) {
	f := NewFlightRecorder(0, 0)
	if f.Ranks() != 1 {
		t.Errorf("Ranks() = %d, want 1 (clamped)", f.Ranks())
	}
	if f.Depth() != DefaultDepth {
		t.Errorf("Depth() = %d, want DefaultDepth %d", f.Depth(), DefaultDepth)
	}
}

func TestFlightRecorderDump(t *testing.T) {
	f := NewFlightRecorder(2, 4)
	f.Record(1, mkCmd(dram.CmdPRE, 1, 0x42), 777)
	d := f.Dump()
	for _, want := range []string{"rank 0 flight recorder", "rank 1 flight recorder", "@777", "PRE"} {
		if !strings.Contains(d, want) {
			t.Errorf("Dump missing %q:\n%s", want, d)
		}
	}
}

func TestProtocolErrorFormat(t *testing.T) {
	recent := []Entry{
		{At: 10, Cmd: mkCmd(dram.CmdACT, 0, 0x7)},
		{At: 25, Cmd: mkCmd(dram.CmdRD, 0, 0x7)},
	}
	tests := []struct {
		name      string
		pe        *ProtocolError
		wantError string
		wantDump  []string
		notInDump []string
	}{
		{
			name: "engine violation with command and history",
			pe: &ProtocolError{
				Rule: "tRP", Cycle: 123, Cmd: "ACT rk0 bg0 bk0 sb0 slot0 row 0x7",
				Detail: "ACT 5 cycles early", Recent: recent, Source: "engine",
			},
			wantError: "protocol violation [tRP] at cycle 123: ACT 5 cycles early",
			wantDump: []string{
				"protocol violation [tRP] at cycle 123",
				"offending command: ACT rk0 bg0 bk0 sb0 slot0 row 0x7",
				"detected by: engine",
				"last 2 commands on the rank:",
				"@10",
				"@25",
			},
		},
		{
			name: "finish-time violation without a command",
			pe: &ProtocolError{
				Rule: "tREFI", Cycle: 99999,
				Detail: "rank 0 went 40000 cycles without refresh", Source: "audit",
			},
			wantError: "protocol violation [tREFI] at cycle 99999: rank 0 went 40000 cycles without refresh",
			wantDump:  []string{"detected by: audit"},
			notInDump: []string{"offending command", "commands on the rank"},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.pe.Error(); got != tc.wantError {
				t.Errorf("Error() = %q, want %q", got, tc.wantError)
			}
			d := tc.pe.Dump()
			for _, want := range tc.wantDump {
				if !strings.Contains(d, want) {
					t.Errorf("Dump missing %q:\n%s", want, d)
				}
			}
			for _, bad := range tc.notInDump {
				if strings.Contains(d, bad) {
					t.Errorf("Dump should not contain %q:\n%s", bad, d)
				}
			}
		})
	}
}

func TestParseMode(t *testing.T) {
	tests := []struct {
		in      string
		want    Mode
		wantErr bool
	}{
		{"off", Off, false}, {"", Off, false}, {"log", Log, false},
		{"fail", Fail, false}, {"panic", Panic, false},
		{"bogus", Off, true}, {"LOG", Off, true},
	}
	for _, tc := range tests {
		got, err := ParseMode(tc.in)
		if (err != nil) != tc.wantErr || got != tc.want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v, err=%v", tc.in, got, err, tc.want, tc.wantErr)
		}
	}
	for _, m := range []Mode{Off, Log, Fail, Panic} {
		back, err := ParseMode(m.String())
		if err != nil || back != m {
			t.Errorf("round-trip %v -> %q -> %v, err %v", m, m.String(), back, err)
		}
	}
}

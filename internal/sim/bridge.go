package sim

import (
	"eruca/internal/addrmap"
	"eruca/internal/cache"
	"eruca/internal/clock"
	"eruca/internal/config"
	"eruca/internal/memctrl"
	"eruca/internal/osmem"
	"eruca/internal/trace"
)

// bridge connects the cores to the memory system: virtual-to-physical
// translation, the cache hierarchy, MSHR-style miss coalescing, and the
// per-channel memory controllers. It implements cpu.MemSystem.
//
// Timing is magic-fill: the caches update state at access time and
// report the level; DRAM misses complete through deferred events at the
// data-return bus cycle. A load to a line whose fetch is already in
// flight joins the outstanding miss rather than hitting the
// freshly-filled cache line.
type bridge struct {
	sys    *config.System
	mapper *addrmap.Mapper
	procs  []*osmem.Process
	caches *cache.Hierarchy
	ctls   []*memctrl.Controller

	cpuNow int64       // current CPU cycle, updated by the run loop
	busNow clock.Cycle // current bus cycle
	ratio  int64
	busNS  float64

	// events defers line-fill completions to their data-return bus
	// cycle: a min-heap ordered by (cycle, insertion sequence) so that
	// same-cycle fills fire in insertion order, exactly like the previous
	// per-cycle slice map, while exposing an O(1) next-event bound for
	// the fast-forwarding run loop.
	events   []busEvent
	eventSeq uint64

	// mshr coalesces outstanding line fetches: line address -> waiting
	// load completions. Waiters carry their core and a global
	// registration sequence so checkpoints can re-link them to the
	// owning core's in-flight reads on restore (closures themselves
	// cannot serialize).
	mshr      map[uint64][]waiter
	waiterSeq uint64

	// spill buffers dirty writebacks that did not fit in a write queue.
	spill []uint64

	// txnFree recycles controller transactions together with their
	// pre-bound Done closures, eliminating the two per-transaction
	// allocations on the DRAM path.
	txnFree []*pooledTxn

	capture func(trace.Record)

	lineShift uint

	// Per-core demand misses reaching DRAM (for MPKI).
	misses          []uint64
	stalledForSpill uint64

	// fatal latches the first unrecoverable bridge-side error (OOM from
	// the OS memory model). The run loop polls it and ends the run
	// gracefully with partial statistics.
	fatal error
}

// busEvent is one deferred line fill.
type busEvent struct {
	at   clock.Cycle
	seq  uint64
	line uint64
}

// waiter is one coalesced load awaiting a line fill. core and seq are
// the serializable identity of the closure: the k-th unready read of a
// core (program order) is the core's k-th registered waiter
// (registration order), which is how restore rebinds fn.
type waiter struct {
	core int
	seq  uint64
	fn   func()
}

// pooledTxn owns one recyclable controller transaction.
type pooledTxn struct {
	t    memctrl.Transaction
	line uint64
}

const spillLimit = 64

func newBridge(sys *config.System, mapper *addrmap.Mapper, procs []*osmem.Process,
	caches *cache.Hierarchy, ctls []*memctrl.Controller, capture func(trace.Record)) *bridge {
	ls := uint(0)
	for n := sys.Geom.LineBytes; n > 1; n >>= 1 {
		ls++
	}
	return &bridge{
		sys:       sys,
		mapper:    mapper,
		procs:     procs,
		caches:    caches,
		ctls:      ctls,
		ratio:     int64(sys.CPU.ClockRatio),
		busNS:     sys.Bus.PeriodNS(),
		mshr:      make(map[uint64][]waiter),
		capture:   capture,
		lineShift: ls,
		misses:    make([]uint64, sys.CPU.Cores),
	}
}

func (b *bridge) ctlFor(line uint64) *memctrl.Controller {
	return b.ctls[b.mapper.Map(line<<b.lineShift).Channel]
}

// Access implements cpu.MemSystem.
func (b *bridge) Access(core int, va uint64, write bool, done func()) (accept, pending bool, doneAt int64) {
	// Give each core a disjoint virtual address space.
	pa, err := b.procs[core].Translate(va)
	if err != nil {
		// Physical memory exhausted: latch the error and refuse the
		// access. The core treats this as backpressure and retries; the
		// run loop notices fatal and ends the run with partial stats.
		if b.fatal == nil {
			b.fatal = err
		}
		return false, false, 0
	}
	line := pa >> b.lineShift

	// Backpressure: a miss may need a read-queue slot and produce
	// writebacks; refuse up front when either could overflow.
	if len(b.spill) >= spillLimit || !b.ctlFor(line).CanAccept(false) {
		b.stalledForSpill++
		return false, false, 0
	}

	out := b.caches.Access(core, line, write)
	for _, wb := range out.Writebacks {
		b.spill = append(b.spill, wb)
	}

	// Join an outstanding fetch of the same line regardless of the
	// cache's (already filled) view.
	if waiters, inflight := b.mshr[line]; inflight {
		if write {
			return true, false, 0
		}
		b.waiterSeq++
		b.mshr[line] = append(waiters, waiter{core: core, seq: b.waiterSeq, fn: done})
		return true, true, 0
	}

	switch out.Level {
	case cache.L1:
		return true, false, b.cpuNow + int64(b.sys.CPU.L1LatencyCK)
	case cache.LLC:
		return true, false, b.cpuNow + int64(b.sys.CPU.LLCLatencyCK)
	}

	// DRAM fetch (demand load or store write-allocate).
	b.misses[core]++
	b.mshr[line] = nil
	if !write && done != nil {
		b.waiterSeq++
		b.mshr[line] = append(b.mshr[line], waiter{core: core, seq: b.waiterSeq, fn: done})
	}
	b.enqueue(line, false)
	return true, !write, 0
}

// getTxn takes a transaction from the pool or allocates one with its
// Done closure pre-bound.
func (b *bridge) getTxn() *pooledTxn {
	if n := len(b.txnFree); n > 0 {
		pt := b.txnFree[n-1]
		b.txnFree = b.txnFree[:n-1]
		return pt
	}
	pt := &pooledTxn{}
	pt.t.Done = func(dataAt clock.Cycle) { b.txnDone(pt, dataAt) }
	return pt
}

// txnDone completes one pooled transaction: reads schedule their line
// fill at the data-return cycle, then the record is recycled.
func (b *bridge) txnDone(pt *pooledTxn, dataAt clock.Cycle) {
	if !pt.t.Write {
		if dataAt <= b.busNow {
			dataAt = b.busNow + 1
		}
		b.pushEvent(dataAt, pt.line)
	}
	b.txnFree = append(b.txnFree, pt)
}

// enqueue submits a line transaction to its channel controller. The
// caller has verified capacity for reads; writes come from the spill
// buffer which retries.
func (b *bridge) enqueue(line uint64, write bool) {
	pa := line << b.lineShift
	loc := b.mapper.Map(pa)
	ctl := b.ctls[loc.Channel]
	pt := b.getTxn()
	pt.line = line
	pt.t.Write = write
	pt.t.Loc = loc
	pt.t.Arrive = b.busNow
	pt.t.Tag = line
	ctl.Enqueue(&pt.t)
	if b.capture != nil {
		b.capture(trace.Record{NS: float64(b.busNow) * b.busNS, PA: pa, Write: write})
	}
}

// fill completes an outstanding line fetch, waking all coalesced loads.
func (b *bridge) fill(line uint64) {
	waiters := b.mshr[line]
	delete(b.mshr, line)
	for _, w := range waiters {
		w.fn()
	}
}

// drainSpill pushes buffered writebacks into their write queues,
// reporting how many it moved.
func (b *bridge) drainSpill() int {
	moved := 0
	kept := b.spill[:0]
	for _, wb := range b.spill {
		if b.ctlFor(wb).CanAccept(true) {
			b.enqueue(wb, true)
			moved++
		} else {
			kept = append(kept, wb)
		}
	}
	b.spill = kept
	return moved
}

// pushEvent schedules a line fill; same-cycle fills preserve insertion
// order via the sequence number.
func (b *bridge) pushEvent(at clock.Cycle, line uint64) {
	b.eventSeq++
	b.events = append(b.events, busEvent{at: at, seq: b.eventSeq, line: line})
	// Sift up.
	i := len(b.events) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !eventLess(b.events[i], b.events[p]) {
			break
		}
		b.events[i], b.events[p] = b.events[p], b.events[i]
		i = p
	}
}

func eventLess(a, c busEvent) bool {
	if a.at != c.at {
		return a.at < c.at
	}
	return a.seq < c.seq
}

// popEvent removes and returns the earliest event's line.
func (b *bridge) popEvent() uint64 {
	top := b.events[0]
	last := len(b.events) - 1
	b.events[0] = b.events[last]
	b.events = b.events[:last]
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < len(b.events) && eventLess(b.events[l], b.events[s]) {
			s = l
		}
		if r < len(b.events) && eventLess(b.events[r], b.events[s]) {
			s = r
		}
		if s == i {
			break
		}
		b.events[i], b.events[s] = b.events[s], b.events[i]
		i = s
	}
	return top.line
}

// nextEventAt reports the earliest scheduled fill cycle, if any.
func (b *bridge) nextEventAt() (clock.Cycle, bool) {
	if len(b.events) == 0 {
		return 0, false
	}
	return b.events[0].at, true
}

// fireEvents runs completions scheduled for the current bus cycle,
// reporting how many fired.
func (b *bridge) fireEvents() int {
	n := 0
	for len(b.events) > 0 && b.events[0].at <= b.busNow {
		b.fill(b.popEvent())
		n++
	}
	return n
}

package sim

import (
	"eruca/internal/addrmap"
	"eruca/internal/cache"
	"eruca/internal/clock"
	"eruca/internal/config"
	"eruca/internal/memctrl"
	"eruca/internal/osmem"
	"eruca/internal/trace"
)

// bridge connects the cores to the memory system: virtual-to-physical
// translation, the cache hierarchy, MSHR-style miss coalescing, and the
// per-channel memory controllers. It implements cpu.MemSystem.
//
// Timing is magic-fill: the caches update state at access time and
// report the level; DRAM misses complete through deferred events at the
// data-return bus cycle. A load to a line whose fetch is already in
// flight joins the outstanding miss rather than hitting the
// freshly-filled cache line.
type bridge struct {
	sys    *config.System
	mapper *addrmap.Mapper
	procs  []*osmem.Process
	caches *cache.Hierarchy
	ctls   []*memctrl.Controller

	cpuNow int64       // current CPU cycle, updated by the run loop
	busNow clock.Cycle // current bus cycle
	ratio  int64
	busNS  float64

	// events defers completions to their data-return bus cycle.
	events map[clock.Cycle][]func()

	// mshr coalesces outstanding line fetches: line address -> waiting
	// load completions.
	mshr map[uint64][]func()

	// spill buffers dirty writebacks that did not fit in a write queue.
	spill []uint64

	capture func(trace.Record)

	lineShift uint

	// Per-core demand misses reaching DRAM (for MPKI).
	misses          []uint64
	stalledForSpill uint64
}

const spillLimit = 64

func newBridge(sys *config.System, mapper *addrmap.Mapper, procs []*osmem.Process,
	caches *cache.Hierarchy, ctls []*memctrl.Controller, capture func(trace.Record)) *bridge {
	ls := uint(0)
	for n := sys.Geom.LineBytes; n > 1; n >>= 1 {
		ls++
	}
	return &bridge{
		sys:       sys,
		mapper:    mapper,
		procs:     procs,
		caches:    caches,
		ctls:      ctls,
		ratio:     int64(sys.CPU.ClockRatio),
		busNS:     sys.Bus.PeriodNS(),
		events:    make(map[clock.Cycle][]func()),
		mshr:      make(map[uint64][]func()),
		capture:   capture,
		lineShift: ls,
		misses:    make([]uint64, sys.CPU.Cores),
	}
}

func (b *bridge) ctlFor(line uint64) *memctrl.Controller {
	return b.ctls[b.mapper.Map(line<<b.lineShift).Channel]
}

// Access implements cpu.MemSystem.
func (b *bridge) Access(core int, va uint64, write bool, done func()) (accept, pending bool, doneAt int64) {
	// Give each core a disjoint virtual address space.
	pa := b.procs[core].Translate(va)
	line := pa >> b.lineShift

	// Backpressure: a miss may need a read-queue slot and produce
	// writebacks; refuse up front when either could overflow.
	if len(b.spill) >= spillLimit || !b.ctlFor(line).CanAccept(false) {
		b.stalledForSpill++
		return false, false, 0
	}

	out := b.caches.Access(core, line, write)
	for _, wb := range out.Writebacks {
		b.spill = append(b.spill, wb)
	}

	// Join an outstanding fetch of the same line regardless of the
	// cache's (already filled) view.
	if waiters, inflight := b.mshr[line]; inflight {
		if write {
			return true, false, 0
		}
		b.mshr[line] = append(waiters, done)
		return true, true, 0
	}

	switch out.Level {
	case cache.L1:
		return true, false, b.cpuNow + int64(b.sys.CPU.L1LatencyCK)
	case cache.LLC:
		return true, false, b.cpuNow + int64(b.sys.CPU.LLCLatencyCK)
	}

	// DRAM fetch (demand load or store write-allocate).
	b.misses[core]++
	b.mshr[line] = nil
	if !write && done != nil {
		b.mshr[line] = append(b.mshr[line], done)
	}
	b.enqueue(line, false)
	return true, !write, 0
}

// enqueue submits a line transaction to its channel controller. The
// caller has verified capacity for reads; writes come from the spill
// buffer which retries.
func (b *bridge) enqueue(line uint64, write bool) {
	pa := line << b.lineShift
	loc := b.mapper.Map(pa)
	ctl := b.ctls[loc.Channel]
	t := &memctrl.Transaction{Write: write, Loc: loc, Arrive: b.busNow}
	if !write {
		ln := line
		t.Done = func(dataAt clock.Cycle) {
			if dataAt <= b.busNow {
				dataAt = b.busNow + 1
			}
			b.events[dataAt] = append(b.events[dataAt], func() { b.fill(ln) })
		}
	}
	ctl.Enqueue(t)
	if b.capture != nil {
		b.capture(trace.Record{NS: float64(b.busNow) * b.busNS, PA: pa, Write: write})
	}
}

// fill completes an outstanding line fetch, waking all coalesced loads.
func (b *bridge) fill(line uint64) {
	waiters := b.mshr[line]
	delete(b.mshr, line)
	for _, w := range waiters {
		w()
	}
}

// drainSpill pushes buffered writebacks into their write queues.
func (b *bridge) drainSpill() {
	kept := b.spill[:0]
	for _, wb := range b.spill {
		if b.ctlFor(wb).CanAccept(true) {
			b.enqueue(wb, true)
		} else {
			kept = append(kept, wb)
		}
	}
	b.spill = kept
}

// fireEvents runs completions scheduled for the current bus cycle.
func (b *bridge) fireEvents() {
	if fs, ok := b.events[b.busNow]; ok {
		delete(b.events, b.busNow)
		for _, f := range fs {
			f()
		}
	}
}

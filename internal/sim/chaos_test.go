package sim

import (
	"errors"
	"strings"
	"testing"

	"eruca/internal/check"
	"eruca/internal/clock"
	"eruca/internal/config"
	"eruca/internal/faults"
	"eruca/internal/osmem"
)

// chaosOptions builds a Log-mode checked run of the full ERUCA system
// under the given fault plan.
func chaosOptions(plan *faults.Plan, wd *Watchdog) Options {
	return Options{
		Sys:     config.VSB(4, true, true, true, config.DefaultBusMHz),
		Benches: []string{"mcf"}, Instrs: 100_000, Frag: 0.1, Seed: 7,
		Check: &check.Options{Mode: check.Log}, Watchdog: wd, Faults: plan,
	}
}

// burst schedules n events of one kind spread over [at, at+spacing*n).
func burst(kind faults.Kind, at, spacing clock.Cycle, n int, arg clock.Cycle) *faults.Plan {
	var evs []faults.Event
	for i := 0; i < n; i++ {
		evs = append(evs, faults.Event{Kind: kind, AtBus: at + clock.Cycle(i)*spacing, Arg: arg})
	}
	return faults.NewPlanEvents(1, evs...)
}

// rules collects the rule tags of every recorded violation.
func rules(res *Result) map[string]int {
	m := map[string]int{}
	for _, pe := range res.Protocol {
		m[pe.Rule]++
	}
	return m
}

// TestChaosCleanRunIsQuiet establishes the control: with no faults the
// Log-mode checker records nothing on either detection path.
func TestChaosCleanRunIsQuiet(t *testing.T) {
	res, err := Run(chaosOptions(nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Protocol) != 0 {
		t.Fatalf("clean run recorded %d violations: %v", len(res.Protocol), res.Protocol[0])
	}
	if res.FaultsInjected != 0 || res.Partial {
		t.Errorf("clean run: injected=%d partial=%v", res.FaultsInjected, res.Partial)
	}
}

// TestChaosRefreshDelayCaught proves a seeded lost refresh surfaces as a
// refresh-interval violation.
func TestChaosRefreshDelayCaught(t *testing.T) {
	res, err := Run(chaosOptions(burst(faults.RefreshDelay, 2_000, 500, 2, 1<<20), nil))
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultsInjected == 0 {
		t.Fatal("no refresh-delay fault landed")
	}
	if rules(res)["tREFI"] == 0 {
		t.Fatalf("lost refresh not caught; recorded rules: %v", rules(res))
	}
}

// TestChaosForcePrechargeCaught proves a silently dropped row surfaces
// through the audit's row-state tracking.
func TestChaosForcePrechargeCaught(t *testing.T) {
	res, err := Run(chaosOptions(burst(faults.ForcePrecharge, 2_000, 400, 8, 0), nil))
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultsInjected == 0 {
		t.Fatal("no force-precharge fault landed (no open rows?)")
	}
	if len(res.Protocol) == 0 {
		t.Fatal("force-precharge corruption went undetected")
	}
}

// TestChaosTimingResetCaught proves wiped spacing state surfaces as
// timing-window violations.
func TestChaosTimingResetCaught(t *testing.T) {
	res, err := Run(chaosOptions(burst(faults.TimingReset, 2_000, 400, 8, 0), nil))
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultsInjected == 0 {
		t.Fatal("no timing-reset fault landed")
	}
	if len(res.Protocol) == 0 {
		t.Fatal("timing-state corruption went undetected")
	}
}

// TestChaosRowCorruptionCaught proves flipped plane-latch rows surface as
// row-state divergence.
func TestChaosRowCorruptionCaught(t *testing.T) {
	res, err := Run(chaosOptions(burst(faults.RowCorruption, 2_000, 400, 8, 0), nil))
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultsInjected == 0 {
		t.Fatal("no row-corruption fault landed (no open rows?)")
	}
	if len(res.Protocol) == 0 {
		t.Fatal("row corruption went undetected")
	}
}

// TestChaosBlackoutTripsWatchdog proves a permanently wedged scheduler is
// detected by the forward-progress watchdog with a usable report, while
// the run still returns its partial statistics.
func TestChaosBlackoutTripsWatchdog(t *testing.T) {
	plan := burst(faults.Blackout, 3_000, 1, 1, 0) // Arg 0 = permanent
	res, err := Run(chaosOptions(plan, &Watchdog{ProgressBudget: 8_000}))
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *DeadlockError", err)
	}
	if de.Kind != "no-progress" {
		t.Errorf("deadlock kind %q, want no-progress", de.Kind)
	}
	for _, want := range []string{"BLACKOUT", "flight recorder", "fault plan"} {
		if !strings.Contains(de.Report, want) {
			t.Errorf("deadlock report missing %q:\n%s", want, de.Report)
		}
	}
	if res == nil || !res.Partial {
		t.Fatal("watchdog trip should still return partial statistics")
	}
	if res.FaultsInjected == 0 {
		t.Error("blackout not counted as injected")
	}
}

// TestChaosTransientBlackoutRecovers proves a bounded blackout does not
// trip a watchdog whose budget exceeds it, and the run completes.
func TestChaosTransientBlackoutRecovers(t *testing.T) {
	plan := burst(faults.Blackout, 3_000, 1, 1, 2_000) // 2k-cycle wedge
	res, err := Run(chaosOptions(plan, &Watchdog{ProgressBudget: 50_000}))
	if err != nil {
		t.Fatalf("transient blackout should recover: %v", err)
	}
	if res.Partial {
		t.Error("recovered run should not be partial")
	}
	if res.FaultsInjected == 0 {
		t.Error("blackout not counted as injected")
	}
}

// TestChaosDropRateIsProtocolLegal proves the dropped-scheduling-slot
// perturbation degrades performance without ever breaking protocol: the
// checker stays quiet and the watchdog does not trip.
func TestChaosDropRateIsProtocolLegal(t *testing.T) {
	plan := faults.NewPlanEvents(11)
	plan.DropRate = 0.3
	res, err := Run(chaosOptions(plan, &Watchdog{ProgressBudget: 100_000}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Protocol) != 0 {
		t.Fatalf("drop-rate run recorded %d violations; drops must be protocol-legal: %v",
			len(res.Protocol), res.Protocol[0])
	}
}

// TestChaosFailModeEndsRun proves Fail mode converts a detected
// violation into the run's error while still returning partial stats.
func TestChaosFailModeEndsRun(t *testing.T) {
	opt := chaosOptions(burst(faults.TimingReset, 2_000, 400, 8, 0), nil)
	opt.Check = &check.Options{Mode: check.Fail}
	res, err := Run(opt)
	var pe *check.ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *ProtocolError", err)
	}
	if res == nil || !res.Partial {
		t.Fatal("Fail-mode stop should still return partial statistics")
	}
}

// TestRunOOMReturnsTypedError proves exhausting simulated physical
// memory ends the run gracefully with a typed error and partial stats
// instead of a panic.
func TestRunOOMReturnsTypedError(t *testing.T) {
	sys := config.Baseline(config.DefaultBusMHz)
	// Shrink physical capacity below the benchmark footprint.
	sys.Geom.RowBits = 6
	res, err := Run(Options{
		Sys: sys, Benches: []string{"mcf"}, Instrs: 200_000, Frag: 0.1, Seed: 7,
	})
	if !errors.Is(err, osmem.ErrOOM) {
		t.Fatalf("err = %v, want ErrOOM", err)
	}
	if res == nil || !res.Partial {
		t.Fatal("OOM should still return partial statistics")
	}
}

package sim

import (
	"testing"

	"eruca/internal/config"
)

// ffOptions builds one audited run configuration.
func ffOptions(sys *config.System, benches []string, noFF bool) Options {
	return Options{
		Sys: sys, Benches: benches, Instrs: 30_000, Frag: 0.1, Seed: 7,
		Audit: true, NoFastForward: noFF,
	}
}

// compareRuns asserts that a fast-forwarding run is indistinguishable
// from the per-cycle run: identical audited command stream (same
// commands at the same cycles on every channel) and identical results.
func compareRuns(t *testing.T, sys func() *config.System, benches []string) {
	t.Helper()
	plain, err := Run(ffOptions(sys(), benches, true))
	if err != nil {
		t.Fatalf("per-cycle run: %v", err)
	}
	fast, err := Run(ffOptions(sys(), benches, false))
	if err != nil {
		t.Fatalf("fast-forward run: %v", err)
	}

	if len(plain.AuditCommands) != len(fast.AuditCommands) {
		t.Fatalf("channel count differs: %d vs %d", len(plain.AuditCommands), len(fast.AuditCommands))
	}
	for ch := range plain.AuditCommands {
		p, f := plain.AuditCommands[ch], fast.AuditCommands[ch]
		if len(p) != len(f) {
			t.Fatalf("channel %d: command count differs: per-cycle %d vs fast-forward %d", ch, len(p), len(f))
		}
		for i := range p {
			if p[i] != f[i] {
				t.Fatalf("channel %d: command %d differs:\nper-cycle:    %+v at %d\nfast-forward: %+v at %d",
					ch, i, p[i].Cmd, p[i].At, f[i].Cmd, f[i].At)
			}
		}
	}

	if plain.BusCycles != fast.BusCycles {
		t.Errorf("BusCycles differ: %d vs %d", plain.BusCycles, fast.BusCycles)
	}
	for i := range plain.IPC {
		if plain.IPC[i] != fast.IPC[i] {
			t.Errorf("core %d IPC differs: %v vs %v", i, plain.IPC[i], fast.IPC[i])
		}
		if plain.MPKI[i] != fast.MPKI[i] {
			t.Errorf("core %d MPKI differs: %v vs %v", i, plain.MPKI[i], fast.MPKI[i])
		}
	}
	if plain.DRAM != fast.DRAM {
		t.Errorf("DRAM stats differ:\nper-cycle:    %+v\nfast-forward: %+v", plain.DRAM, fast.DRAM)
	}
	if plain.Energy != fast.Energy {
		t.Errorf("energy differs:\nper-cycle:    %+v\nfast-forward: %+v", plain.Energy, fast.Energy)
	}
	if plain.AvgReadQueueDepth != fast.AvgReadQueueDepth {
		t.Errorf("read-queue depth differs: %v vs %v", plain.AvgReadQueueDepth, fast.AvgReadQueueDepth)
	}
	if plain.AvgWriteQueueDepth != fast.AvgWriteQueueDepth {
		t.Errorf("write-queue depth differs: %v vs %v", plain.AvgWriteQueueDepth, fast.AvgWriteQueueDepth)
	}
	if plain.QueueLat.N() != fast.QueueLat.N() || plain.QueueLat.Mean() != fast.QueueLat.Mean() {
		t.Errorf("queue-latency distribution differs: n=%d mean=%v vs n=%d mean=%v",
			plain.QueueLat.N(), plain.QueueLat.Mean(), fast.QueueLat.N(), fast.QueueLat.Mean())
	}
}

// TestFastForwardEquivalenceBaseline checks the baseline DDR4 preset
// under a single-core high-MPKI load (long all-blocked windows, the case
// the fast-forward is built for).
func TestFastForwardEquivalenceBaseline(t *testing.T) {
	compareRuns(t, func() *config.System { return config.Baseline(config.DefaultBusMHz) },
		[]string{"mcf"})
}

// TestFastForwardEquivalenceMix checks a four-core mix on the full ERUCA
// configuration (VSB EWLR+RAP with DDB), where refresh, plane conflicts
// and close-page timeouts all interleave with skips.
func TestFastForwardEquivalenceMix(t *testing.T) {
	compareRuns(t, func() *config.System { return config.VSB(4, true, true, true, config.DefaultBusMHz) },
		[]string{"mcf", "lbm", "omnetpp", "gemsFDTD"})
}

// TestFastForwardEquivalenceMASA covers the stacked MASA+ERUCA variant
// whose slot planes take a different NextStep path.
func TestFastForwardEquivalenceMASA(t *testing.T) {
	compareRuns(t, func() *config.System { return config.MASAERUCA(4, 4, true, config.DefaultBusMHz) },
		[]string{"lbm", "milc"})
}

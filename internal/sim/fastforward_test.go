package sim

import (
	"testing"

	"eruca/internal/check"
	"eruca/internal/config"
	"eruca/internal/faults"
)

// ffOptions builds one audited run configuration.
func ffOptions(sys *config.System, benches []string, noFF bool) Options {
	return Options{
		Sys: sys, Benches: benches, Instrs: 30_000, Frag: 0.1, Seed: 7,
		Audit: true, NoFastForward: noFF,
	}
}

// compareRuns asserts that a fast-forwarding run is indistinguishable
// from the per-cycle run: identical audited command stream (same
// commands at the same cycles on every channel) and identical results.
func compareRuns(t *testing.T, sys func() *config.System, benches []string) {
	t.Helper()
	plain, err := Run(ffOptions(sys(), benches, true))
	if err != nil {
		t.Fatalf("per-cycle run: %v", err)
	}
	fast, err := Run(ffOptions(sys(), benches, false))
	if err != nil {
		t.Fatalf("fast-forward run: %v", err)
	}

	if len(plain.AuditCommands) != len(fast.AuditCommands) {
		t.Fatalf("channel count differs: %d vs %d", len(plain.AuditCommands), len(fast.AuditCommands))
	}
	for ch := range plain.AuditCommands {
		p, f := plain.AuditCommands[ch], fast.AuditCommands[ch]
		if len(p) != len(f) {
			t.Fatalf("channel %d: command count differs: per-cycle %d vs fast-forward %d", ch, len(p), len(f))
		}
		for i := range p {
			if p[i] != f[i] {
				t.Fatalf("channel %d: command %d differs:\nper-cycle:    %+v at %d\nfast-forward: %+v at %d",
					ch, i, p[i].Cmd, p[i].At, f[i].Cmd, f[i].At)
			}
		}
	}

	if plain.BusCycles != fast.BusCycles {
		t.Errorf("BusCycles differ: %d vs %d", plain.BusCycles, fast.BusCycles)
	}
	for i := range plain.IPC {
		if plain.IPC[i] != fast.IPC[i] {
			t.Errorf("core %d IPC differs: %v vs %v", i, plain.IPC[i], fast.IPC[i])
		}
		if plain.MPKI[i] != fast.MPKI[i] {
			t.Errorf("core %d MPKI differs: %v vs %v", i, plain.MPKI[i], fast.MPKI[i])
		}
	}
	if plain.DRAM != fast.DRAM {
		t.Errorf("DRAM stats differ:\nper-cycle:    %+v\nfast-forward: %+v", plain.DRAM, fast.DRAM)
	}
	if plain.Energy != fast.Energy {
		t.Errorf("energy differs:\nper-cycle:    %+v\nfast-forward: %+v", plain.Energy, fast.Energy)
	}
	if plain.AvgReadQueueDepth != fast.AvgReadQueueDepth {
		t.Errorf("read-queue depth differs: %v vs %v", plain.AvgReadQueueDepth, fast.AvgReadQueueDepth)
	}
	if plain.AvgWriteQueueDepth != fast.AvgWriteQueueDepth {
		t.Errorf("write-queue depth differs: %v vs %v", plain.AvgWriteQueueDepth, fast.AvgWriteQueueDepth)
	}
	if plain.QueueLat.N() != fast.QueueLat.N() || plain.QueueLat.Mean() != fast.QueueLat.Mean() {
		t.Errorf("queue-latency distribution differs: n=%d mean=%v vs n=%d mean=%v",
			plain.QueueLat.N(), plain.QueueLat.Mean(), fast.QueueLat.N(), fast.QueueLat.Mean())
	}
}

// TestFastForwardEquivalenceBaseline checks the baseline DDR4 preset
// under a single-core high-MPKI load (long all-blocked windows, the case
// the fast-forward is built for).
func TestFastForwardEquivalenceBaseline(t *testing.T) {
	compareRuns(t, func() *config.System { return config.Baseline(config.DefaultBusMHz) },
		[]string{"mcf"})
}

// TestFastForwardEquivalenceMix checks a four-core mix on the full ERUCA
// configuration (VSB EWLR+RAP with DDB), where refresh, plane conflicts
// and close-page timeouts all interleave with skips.
func TestFastForwardEquivalenceMix(t *testing.T) {
	compareRuns(t, func() *config.System { return config.VSB(4, true, true, true, config.DefaultBusMHz) },
		[]string{"mcf", "lbm", "omnetpp", "gemsFDTD"})
}

// TestFastForwardEquivalenceMASA covers the stacked MASA+ERUCA variant
// whose slot planes take a different NextStep path.
func TestFastForwardEquivalenceMASA(t *testing.T) {
	compareRuns(t, func() *config.System { return config.MASAERUCA(4, 4, true, config.DefaultBusMHz) },
		[]string{"lbm", "milc"})
}

// TestFastForwardWatchdogComposition proves the liveness monitors
// compose with event-driven cycle skipping: an armed watchdog (with a
// tight-but-legal budget and a latency ceiling) never false-trips in
// either run mode, and fast-forward results remain identical to the
// per-cycle run because the skip window is bounded by the watchdog
// deadline.
func TestFastForwardWatchdogComposition(t *testing.T) {
	mk := func(noFF bool) Options {
		o := ffOptions(config.VSB(4, true, true, true, config.DefaultBusMHz),
			[]string{"mcf", "lbm"}, noFF)
		o.Watchdog = &Watchdog{ProgressBudget: 20_000, LatencyCeiling: 200_000}
		o.Check = &check.Options{Mode: check.Log}
		return o
	}
	plain, err := Run(mk(true))
	if err != nil {
		t.Fatalf("per-cycle run with watchdog: %v", err)
	}
	fast, err := Run(mk(false))
	if err != nil {
		t.Fatalf("fast-forward run with watchdog: %v", err)
	}
	if plain.Partial || fast.Partial {
		t.Fatal("watchdog must not truncate a healthy run")
	}
	if len(plain.Protocol)+len(fast.Protocol) != 0 {
		t.Fatalf("checker flagged a healthy run: %d/%d violations",
			len(plain.Protocol), len(fast.Protocol))
	}
	if plain.BusCycles != fast.BusCycles {
		t.Errorf("BusCycles differ under watchdog: %d vs %d", plain.BusCycles, fast.BusCycles)
	}
	if plain.DRAM != fast.DRAM {
		t.Errorf("DRAM stats differ under watchdog:\nper-cycle:    %+v\nfast-forward: %+v",
			plain.DRAM, fast.DRAM)
	}
	for i := range plain.IPC {
		if plain.IPC[i] != fast.IPC[i] {
			t.Errorf("core %d IPC differs under watchdog: %v vs %v", i, plain.IPC[i], fast.IPC[i])
		}
	}
}

// TestFastForwardFaultComposition proves injections land on their exact
// cycle even when event-driven skipping is active: both run modes
// observe the same fault and record the same violation count.
func TestFastForwardFaultComposition(t *testing.T) {
	mk := func(noFF bool) Options {
		o := ffOptions(config.VSB(4, true, true, true, config.DefaultBusMHz),
			[]string{"mcf"}, noFF)
		// The legacy strict audit would fail the whole run on the seeded
		// violations; the Log-mode checker is the recording path here.
		o.Audit = false
		o.Check = &check.Options{Mode: check.Log}
		o.Faults = burst(faults.TimingReset, 5_000, 500, 4, 0)
		return o
	}
	plain, err := Run(mk(true))
	if err != nil {
		t.Fatalf("per-cycle chaos run: %v", err)
	}
	fast, err := Run(mk(false))
	if err != nil {
		t.Fatalf("fast-forward chaos run: %v", err)
	}
	if plain.FaultsInjected != fast.FaultsInjected {
		t.Errorf("injected fault counts differ: %d vs %d", plain.FaultsInjected, fast.FaultsInjected)
	}
	if plain.FaultsInjected == 0 {
		t.Fatal("no fault landed in either mode")
	}
	if len(plain.Protocol) != len(fast.Protocol) {
		t.Errorf("violation counts differ: per-cycle %d vs fast-forward %d",
			len(plain.Protocol), len(fast.Protocol))
	}
	if len(plain.Protocol) == 0 {
		t.Fatal("seeded corruption went undetected")
	}
}

package sim

import (
	"sync"
	"testing"

	"eruca/internal/config"
	"eruca/internal/telemetry"
)

// compareTelemetry asserts a run with a live telemetry Set is
// indistinguishable from the bare run: identical audited command stream
// and identical results. This is the design contract of the telemetry
// package — purely observational, never a timing input.
func compareTelemetry(t *testing.T, sys func() *config.System, benches []string) *telemetry.Set {
	t.Helper()
	bare, err := Run(ffOptions(sys(), benches, false))
	if err != nil {
		t.Fatalf("bare run: %v", err)
	}
	tel := telemetry.New()
	opt := ffOptions(sys(), benches, false)
	opt.Telemetry = tel
	traced, err := Run(opt)
	if err != nil {
		t.Fatalf("traced run: %v", err)
	}

	if len(bare.AuditCommands) != len(traced.AuditCommands) {
		t.Fatalf("channel count differs: %d vs %d", len(bare.AuditCommands), len(traced.AuditCommands))
	}
	for ch := range bare.AuditCommands {
		b, tr := bare.AuditCommands[ch], traced.AuditCommands[ch]
		if len(b) != len(tr) {
			t.Fatalf("channel %d: command count differs: bare %d vs traced %d", ch, len(b), len(tr))
		}
		for i := range b {
			if b[i] != tr[i] {
				t.Fatalf("channel %d: command %d differs:\nbare:   %+v at %d\ntraced: %+v at %d",
					ch, i, b[i].Cmd, b[i].At, tr[i].Cmd, tr[i].At)
			}
		}
	}
	if bare.BusCycles != traced.BusCycles {
		t.Errorf("BusCycles differ: %d vs %d", bare.BusCycles, traced.BusCycles)
	}
	if bare.DRAM != traced.DRAM {
		t.Errorf("DRAM stats differ:\nbare:   %+v\ntraced: %+v", bare.DRAM, traced.DRAM)
	}
	if bare.Energy != traced.Energy {
		t.Errorf("energy differs:\nbare:   %+v\ntraced: %+v", bare.Energy, traced.Energy)
	}
	for i := range bare.IPC {
		if bare.IPC[i] != traced.IPC[i] {
			t.Errorf("core %d IPC differs: %v vs %v", i, bare.IPC[i], traced.IPC[i])
		}
	}
	if bare.QueueLat.N() != traced.QueueLat.N() || bare.QueueLat.Mean() != traced.QueueLat.Mean() {
		t.Errorf("queue-latency distribution differs")
	}

	// Counters cover the whole run including warmup, so they bound the
	// post-warmup dram.Stats from above.
	if acts := tel.C.Acts.Load(); acts < traced.DRAM.Acts || acts == 0 {
		t.Errorf("telemetry acts = %d, want >= measured %d and > 0", acts, traced.DRAM.Acts)
	}
	if pres := tel.C.Pres.Load(); pres < traced.DRAM.Pres {
		t.Errorf("telemetry pres = %d < measured %d", pres, traced.DRAM.Pres)
	}
	if rd := tel.C.Reads.Load(); rd < traced.DRAM.Reads {
		t.Errorf("telemetry reads = %d < measured %d", rd, traced.DRAM.Reads)
	}
	if tel.C.ReadLatency.N() == 0 || tel.C.RowOpen.N() == 0 || tel.C.InterACT.N() == 0 {
		t.Error("latency histograms not fed")
	}
	return tel
}

// TestTelemetryNonPerturbingBaseline pins the contract on plain DDR4.
func TestTelemetryNonPerturbingBaseline(t *testing.T) {
	tel := compareTelemetry(t, func() *config.System { return config.Baseline(config.DefaultBusMHz) },
		[]string{"mcf"})
	if tel.C.EWLRHits.Load()+tel.C.PlaneConflicts.Load()+tel.C.RAPRedirects.Load() != 0 {
		t.Error("baseline DDR4 must not report ERUCA mechanism events")
	}
	if tel.C.FFCyclesSkipped.Load() == 0 {
		t.Error("fast-forward run skipped no cycles")
	}
}

// TestTelemetryNonPerturbingERUCA pins the contract on the full ERUCA
// configuration and proves the mechanism counters actually fire there:
// plane-latch conflicts, partial precharges, DDB savings and the
// EWLR hit/miss split all observe real events.
func TestTelemetryNonPerturbingERUCA(t *testing.T) {
	tel := compareTelemetry(t, func() *config.System { return config.VSB(4, true, true, true, config.DefaultBusMHz) },
		[]string{"mcf", "lbm", "omnetpp", "gemsFDTD"})
	if tel.C.PlaneConflicts.Load() == 0 {
		t.Error("no plane conflicts observed on the 4-plane VSB config")
	}
	if tel.C.EWLRHits.Load()+tel.C.EWLRMisses.Load() == 0 {
		t.Error("EWLR hit/miss counters untouched under an EWLR scheme")
	}
	if tel.C.DDBSavedCK.Load() == 0 {
		t.Error("DDB saved no bus cycles on a dual-data-bus config")
	}
	if len(tel.Events()) == 0 {
		t.Error("no events captured")
	}
	// Every captured DRAM event carries valid coordinates.
	for _, e := range tel.Events() {
		if e.Kind <= telemetry.EvREF && int(e.Chan) >= 8 {
			t.Fatalf("implausible channel in %v", e)
		}
	}
}

// TestTelemetrySharedAcrossConcurrentRuns proves one Set can serve
// several simulations at once (the erucabench/erucad sharing pattern):
// run-id stamping happens at the emitter, the rings stay race-clean,
// and the counters sum both runs.
func TestTelemetrySharedAcrossConcurrentRuns(t *testing.T) {
	tel := telemetry.New()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			opt := Options{
				Sys: config.VSB(4, true, true, true, config.DefaultBusMHz),
				Benches: []string{"mcf"}, Instrs: 10_000, Frag: 0.1, Seed: int64(7 + i),
				Telemetry: tel,
			}
			_, errs[i] = Run(opt)
		}(i)
	}
	// Concurrent reader: the live-introspection path.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = tel.Snapshot(32)
			_ = tel.Recent(-1, -1, 64)
		}
	}()
	wg.Wait()
	<-done
	for i, err := range errs {
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	if got := len(tel.Runs()); got != 2 {
		t.Fatalf("registered runs = %d, want 2", got)
	}
	runsSeen := map[uint16]bool{}
	for _, e := range tel.Events() {
		runsSeen[e.Run] = true
	}
	if len(runsSeen) != 2 {
		t.Fatalf("captured events tag %d distinct runs, want 2", len(runsSeen))
	}
}

// TestTelemetryFFSkipAccounting proves the skip counter equals the
// cycles the event-driven loop jumped: bare per-cycle and fast-forward
// runs agree on bus cycles, so the skipped total must be consistent
// between the modes (zero when fast-forward is off).
func TestTelemetryFFSkipAccounting(t *testing.T) {
	mk := func(noFF bool) (*Result, *telemetry.Set) {
		tel := telemetry.New()
		opt := ffOptions(config.Baseline(config.DefaultBusMHz), []string{"mcf"}, noFF)
		opt.Telemetry = tel
		res, err := Run(opt)
		if err != nil {
			t.Fatalf("run(noFF=%v): %v", noFF, err)
		}
		return res, tel
	}
	_, plainTel := mk(true)
	if got := plainTel.C.FFCyclesSkipped.Load(); got != 0 {
		t.Errorf("per-cycle run reports %d skipped cycles", got)
	}
	fastRes, fastTel := mk(false)
	skipped := fastTel.C.FFCyclesSkipped.Load()
	if skipped == 0 {
		t.Fatal("fast-forward run skipped nothing")
	}
	if skipped >= uint64(fastRes.BusCycles) {
		t.Errorf("skipped %d >= total bus cycles %d", skipped, fastRes.BusCycles)
	}
}

package sim

import (
	"fmt"
	"strings"

	"eruca/internal/check"
	"eruca/internal/clock"
	"eruca/internal/cpu"
	"eruca/internal/faults"
	"eruca/internal/memctrl"
	"eruca/internal/telemetry"
)

// DefaultProgressBudget is the forward-progress watchdog's default: how
// many bus cycles the system may go without a single retired
// instruction or completed memory transaction before the run is
// declared wedged. The longest legitimate stall is a refresh blackout
// (tRFC, hundreds of cycles) behind a full write drain — four orders of
// magnitude below this, so false positives require a genuinely
// pathological configuration.
const DefaultProgressBudget clock.Cycle = 200_000

// Watchdog configures the run loop's liveness monitors.
type Watchdog struct {
	// ProgressBudget is the no-progress cycle budget (0 selects
	// DefaultProgressBudget).
	ProgressBudget clock.Cycle
	// LatencyCeiling, when positive, bounds the age of the oldest
	// queued read; exceeding it ends the run with a starvation report
	// even while the rest of the system makes progress.
	LatencyCeiling clock.Cycle
}

func (w *Watchdog) budget() clock.Cycle {
	if w == nil || w.ProgressBudget <= 0 {
		return DefaultProgressBudget
	}
	return w.ProgressBudget
}

// DeadlockError is the watchdog's structured report: what tripped
// (no-progress or latency-ceiling), when, and a full system snapshot —
// queue occupancies, oldest-transaction ages, per-bank open-row state,
// per-core progress, and the flight recorders when a checker was
// attached.
type DeadlockError struct {
	// Kind is "no-progress" or "latency-ceiling".
	Kind string
	// Bus is the bus cycle at detection.
	Bus clock.Cycle
	// Idle is the cycles since the last observed progress
	// (no-progress) or the offending read's age (latency-ceiling).
	Idle clock.Cycle
	// Report is the rendered system snapshot.
	Report string
}

// Error implements error with a one-line summary.
func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: watchdog: %s at bus cycle %d after %d cycles without progress", e.Kind, e.Bus, e.Idle)
}

// watchdogState is the run loop's liveness bookkeeping.
type watchdogState struct {
	cfg          *Watchdog
	lastProgress clock.Cycle
	prevRetired  int64
	prevDone     uint64
}

func newWatchdogState(cfg *Watchdog) *watchdogState {
	return &watchdogState{cfg: cfg, prevRetired: -1}
}

// check updates the progress clock and reports a DeadlockError when a
// budget is exhausted. fired/drained are the bus events of this cycle;
// retirement and transaction completion are sampled from the cores and
// controllers.
func (w *watchdogState) check(bus clock.Cycle, fired, drained int, cores []*cpu.Core, ctls []*memctrl.Controller) (string, clock.Cycle) {
	retired := int64(0)
	for _, c := range cores {
		retired += c.Progress()
	}
	done := uint64(0)
	for _, ctl := range ctls {
		done += ctl.Stats.ReadsDone + ctl.Stats.WritesDone
	}
	if fired > 0 || drained > 0 || retired != w.prevRetired || done != w.prevDone {
		w.prevRetired, w.prevDone = retired, done
		w.lastProgress = bus
	} else if idle := bus - w.lastProgress; idle > w.cfg.budget() {
		return "no-progress", idle
	}
	if ceil := w.cfg.LatencyCeiling; ceil > 0 {
		for _, ctl := range ctls {
			if age := ctl.OldestReadAge(bus); age > ceil {
				return "latency-ceiling", age
			}
		}
	}
	return "", 0
}

// deadline reports the bus cycle at which the watchdog would fire with
// no further progress — the fast-forward bound that keeps skipped
// windows from jumping over a detection point.
func (w *watchdogState) deadline(bus clock.Cycle, ctls []*memctrl.Controller) clock.Cycle {
	d := w.lastProgress + w.cfg.budget() + 1
	if ceil := w.cfg.LatencyCeiling; ceil > 0 {
		for _, ctl := range ctls {
			if age := ctl.OldestReadAge(bus); age > 0 {
				if e := bus - age + ceil + 1; e < d {
					d = e
				}
			}
		}
	}
	return d
}

// buildDeadlockReport renders the full system snapshot attached to a
// DeadlockError.
func buildDeadlockReport(kind string, bus clock.Cycle, idle clock.Cycle,
	cores []*cpu.Core, ctls []*memctrl.Controller, checkers []*check.Checker, plan *faults.Plan,
	tel *telemetry.Set) string {
	var b strings.Builder
	fmt.Fprintf(&b, "watchdog %s: bus cycle %d, %d cycles since last progress\n", kind, bus, idle)
	fmt.Fprintf(&b, "fault plan: %s\n", plan.String())
	for i, c := range cores {
		fmt.Fprintf(&b, "core %d: progress=%d warmed=%v done=%v\n", i, c.Progress(), c.Warmed(), c.Done())
	}
	for i, ctl := range ctls {
		r, wq := ctl.QueueDepths()
		fmt.Fprintf(&b, "channel %d: readQ=%d writeQ=%d oldestRead=%d oldestWrite=%d reads=%d writes=%d",
			i, r, wq, ctl.OldestReadAge(bus), ctl.OldestWriteAge(bus), ctl.Stats.ReadsDone, ctl.Stats.WritesDone)
		if until := ctl.BlackoutUntil(); until > bus {
			fmt.Fprintf(&b, " BLACKOUT until %d", until)
		}
		if d := ctl.DroppedTicks(); d > 0 {
			fmt.Fprintf(&b, " dropped=%d", d)
		}
		fmt.Fprintf(&b, "\n%s", ctl.Channel().DescribeState(bus))
	}
	for i, ck := range checkers {
		fmt.Fprintf(&b, "channel %d %s", i, ck.Recorder().Dump())
	}
	if tail := tel.Recent(-1, -1, check.TraceTail); len(tail) > 0 {
		fmt.Fprintf(&b, "last %d telemetry events:\n", len(tail))
		for _, ev := range tail {
			fmt.Fprintf(&b, "  %s\n", ev)
		}
	}
	return b.String()
}

package sim

import (
	"testing"

	"eruca/internal/addrmap"
	"eruca/internal/cache"
	"eruca/internal/config"
	"eruca/internal/dram"
	"eruca/internal/memctrl"
	"eruca/internal/osmem"
)

// testBridge wires a bridge over tiny fixtures with an identity-ish
// process so tests control physical addresses.
func testBridge(t *testing.T) (*bridge, []*memctrl.Controller) {
	t.Helper()
	sys := config.Baseline(config.DefaultBusMHz)
	sys.Ctrl.RefreshEnabled = false
	mapper := addrmap.New(sys)
	mem := osmem.NewMemory(1<<30, 1)
	procs := []*osmem.Process{mem.NewProcess(true, 1)}
	caches := cache.MustNew(cache.Config{
		Cores: 1, L1Bytes: sys.CPU.L1Bytes, L1Ways: sys.CPU.L1Ways,
		LLCBytes: sys.CPU.LLCBytesPerCore, LLCWays: sys.CPU.LLCWays,
		LineBytes: sys.Geom.LineBytes,
	})
	var ctls []*memctrl.Controller
	for c := 0; c < sys.Geom.Channels; c++ {
		ctls = append(ctls, memctrl.New(sys, dram.NewChannel(sys, mapper.RowBits())))
	}
	return newBridge(sys, mapper, procs, caches, ctls, nil), ctls
}

func tick(br *bridge, ctls []*memctrl.Controller, busCycles int) {
	for i := 0; i < busCycles; i++ {
		br.busNow++
		br.fireEvents()
		br.cpuNow += 3
		for _, ctl := range ctls {
			ctl.Tick(br.busNow)
		}
		br.drainSpill()
	}
}

// Two loads to one line coalesce into a single DRAM transaction and both
// complete.
func TestMSHRCoalescing(t *testing.T) {
	br, ctls := testBridge(t)
	done := 0
	cb := func() { done++ }
	if ok, pending, _ := br.Access(0, 0x1000, false, cb); !ok || !pending {
		t.Fatal("first access not pending")
	}
	if ok, pending, _ := br.Access(0, 0x1008, false, cb); !ok || !pending {
		t.Fatal("coalesced access not pending")
	}
	var reads uint64
	tick(br, ctls, 200)
	for _, ctl := range ctls {
		reads += ctl.Channel().Stats.Reads
	}
	if reads != 1 {
		t.Errorf("DRAM reads = %d, want 1 (coalesced)", reads)
	}
	if done != 2 {
		t.Errorf("completions = %d, want 2", done)
	}
}

// A store to a line with an in-flight fetch is posted without a second
// transaction.
func TestStoreJoinsInflightFetch(t *testing.T) {
	br, ctls := testBridge(t)
	br.Access(0, 0x2000, false, func() {})
	if ok, pending, _ := br.Access(0, 0x2010, true, nil); !ok || pending {
		t.Fatal("store to inflight line mishandled")
	}
	tick(br, ctls, 200)
	var reads uint64
	for _, ctl := range ctls {
		reads += ctl.Channel().Stats.Reads
	}
	if reads != 1 {
		t.Errorf("DRAM reads = %d, want 1", reads)
	}
}

// Cache hits complete with the configured latencies without touching
// DRAM.
func TestHitLatencies(t *testing.T) {
	br, ctls := testBridge(t)
	br.Access(0, 0x3000, false, func() {})
	tick(br, ctls, 200)
	br.cpuNow = 1000
	ok, pending, doneAt := br.Access(0, 0x3000, false, nil)
	if !ok || pending {
		t.Fatal("warm line not an immediate hit")
	}
	if doneAt != 1000+int64(br.sys.CPU.L1LatencyCK) {
		t.Errorf("L1 hit at %d, want %d", doneAt, 1000+int64(br.sys.CPU.L1LatencyCK))
	}
}

// The spill buffer applies backpressure before overflowing.
func TestSpillBackpressure(t *testing.T) {
	br, _ := testBridge(t)
	for i := 0; i < spillLimit; i++ {
		br.spill = append(br.spill, uint64(i))
	}
	if ok, _, _ := br.Access(0, 0x9000, false, func() {}); ok {
		t.Error("access accepted with a full spill buffer")
	}
	if br.stalledForSpill == 0 {
		t.Error("stall not recorded")
	}
}

// Deferred events fire exactly once at their bus cycle.
func TestEventFiring(t *testing.T) {
	br, _ := testBridge(t)
	fired := 0
	br.mshr[0x42] = append(br.mshr[0x42], waiter{fn: func() { fired++ }})
	br.pushEvent(5, 0x42)
	if at, ok := br.nextEventAt(); !ok || at != 5 {
		t.Fatalf("nextEventAt = %d,%v, want 5,true", at, ok)
	}
	for br.busNow = 0; br.busNow < 10; br.busNow++ {
		br.fireEvents()
	}
	if fired != 1 {
		t.Errorf("event fired %d times", fired)
	}
	if len(br.events) != 0 {
		t.Error("event heap not drained")
	}
}

// Same-cycle events fire in insertion order and the heap orders across
// cycles.
func TestEventOrdering(t *testing.T) {
	br, _ := testBridge(t)
	var order []uint64
	for _, ln := range []uint64{10, 11, 12} {
		l := ln
		br.mshr[l] = append(br.mshr[l], waiter{fn: func() { order = append(order, l) }})
	}
	br.pushEvent(7, 11)
	br.pushEvent(3, 10)
	br.pushEvent(7, 12)
	for br.busNow = 0; br.busNow < 10; br.busNow++ {
		br.fireEvents()
	}
	if len(order) != 3 || order[0] != 10 || order[1] != 11 || order[2] != 12 {
		t.Errorf("fill order = %v, want [10 11 12]", order)
	}
}

package sim

import (
	"errors"
	"strings"
	"testing"

	"eruca/internal/check"
	"eruca/internal/config"
	"eruca/internal/faults"
	"eruca/internal/telemetry"
)

// TestProtocolDumpEmbedsTelemetryTail proves the flight-recorder fix:
// a Fail-mode protocol violation raised with a telemetry set attached
// carries the recent traced events of the offending rank, so the crash
// dump shows the command history leading to the violation instead of
// only the checker's 32-command window.
func TestProtocolDumpEmbedsTelemetryTail(t *testing.T) {
	tel := telemetry.New()
	opt := Options{
		Sys: config.VSB(4, true, true, true, config.DefaultBusMHz),
		Benches: []string{"mcf"}, Instrs: 30_000, Frag: 0.1, Seed: 7,
		Check:     &check.Options{Mode: check.Fail},
		Faults:    burst(faults.TimingReset, 5_000, 500, 4, 0),
		Telemetry: tel,
	}
	_, err := Run(opt)
	var pe *check.ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("seeded corruption not detected: err = %v", err)
	}
	if len(pe.Trace) == 0 {
		t.Fatal("ProtocolError carries no telemetry tail")
	}
	if len(pe.Trace) > check.TraceTail {
		t.Fatalf("trace tail %d exceeds bound %d", len(pe.Trace), check.TraceTail)
	}
	dump := pe.Dump()
	if !strings.Contains(dump, "telemetry events") {
		t.Fatalf("dump missing telemetry section:\n%s", dump)
	}
	// The tail must be cycle-ordered and scoped near the violation.
	for i := 1; i < len(pe.Trace); i++ {
		if pe.Trace[i].At < pe.Trace[i-1].At {
			t.Fatal("telemetry tail not cycle-ordered")
		}
	}
}

// TestDeadlockReportEmbedsTelemetry proves the watchdog's system
// snapshot includes the recent telemetry events when a set is attached.
func TestDeadlockReportEmbedsTelemetry(t *testing.T) {
	tel := telemetry.New()
	opt := Options{
		Sys: config.Baseline(config.DefaultBusMHz),
		Benches: []string{"mcf"}, Instrs: 50_000, Frag: 0.1, Seed: 7,
		// Impossible latency ceiling: trips as soon as any read queues.
		Watchdog:  &Watchdog{LatencyCeiling: 1},
		Telemetry: tel,
	}
	_, err := Run(opt)
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("latency ceiling did not trip: err = %v", err)
	}
	if !strings.Contains(de.Report, "telemetry events") {
		t.Fatalf("deadlock report missing telemetry section:\n%s", de.Report)
	}
}

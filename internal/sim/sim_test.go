package sim

import (
	"testing"

	"eruca/internal/config"
	"eruca/internal/trace"
)

const (
	testInstrs = 60_000
	testSeed   = 42
)

func runOne(t *testing.T, sys *config.System, benches []string, frag float64) *Result {
	t.Helper()
	res, err := Run(Options{Sys: sys, Benches: benches, Instrs: testInstrs, Frag: frag, Seed: testSeed})
	if err != nil {
		t.Fatalf("%s: %v", sys.Name, err)
	}
	return res
}

func TestBaselineMixRuns(t *testing.T) {
	res := runOne(t, config.Baseline(config.DefaultBusMHz), []string{"mcf", "lbm", "omnetpp", "gemsFDTD"}, 0.1)
	for i, ipc := range res.IPC {
		if ipc <= 0 || ipc > 8 {
			t.Errorf("core %d IPC = %v", i, ipc)
		}
	}
	if res.DRAM.Reads == 0 {
		t.Errorf("no DRAM traffic: %+v", res.DRAM)
	}
	if res.QueueLat.N() == 0 {
		t.Error("no queueing-latency samples")
	}
	if res.Energy.TotalNJ() <= 0 {
		t.Error("no energy accounted")
	}
	if res.HugeCoverage < 0.5 {
		t.Errorf("huge coverage %v at 10%% fragmentation", res.HugeCoverage)
	}
}

// Determinism: identical options give identical results.
func TestDeterminism(t *testing.T) {
	sys := config.VSB(4, true, true, true, config.DefaultBusMHz)
	a := runOne(t, sys, []string{"mcf", "lbm"}, 0.1)
	sys2 := config.VSB(4, true, true, true, config.DefaultBusMHz)
	b := runOne(t, sys2, []string{"mcf", "lbm"}, 0.1)
	if a.BusCycles != b.BusCycles {
		t.Errorf("cycles differ: %d vs %d", a.BusCycles, b.BusCycles)
	}
	for i := range a.IPC {
		if a.IPC[i] != b.IPC[i] {
			t.Errorf("core %d IPC differs: %v vs %v", i, a.IPC[i], b.IPC[i])
		}
	}
	if a.DRAM != b.DRAM {
		t.Errorf("DRAM stats differ:\n%+v\n%+v", a.DRAM, b.DRAM)
	}
}

// High-MPKI benchmarks land in the paper's H class, medium ones below
// them (Tab. III) — measured through the real cache hierarchy.
func TestMPKIClasses(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration run")
	}
	sys := config.Baseline(config.DefaultBusMHz)
	h := runOne(t, sys, []string{"mcf"}, 0.1).MPKI[0]
	m := runOne(t, config.Baseline(config.DefaultBusMHz), []string{"bwaves"}, 0.1).MPKI[0]
	if h < 10 {
		t.Errorf("mcf MPKI = %.1f, want H class (>10)", h)
	}
	if m >= h {
		t.Errorf("bwaves MPKI %.1f not below mcf %.1f", m, h)
	}
	if m < 0.5 {
		t.Errorf("bwaves MPKI %.1f, want medium, not negligible", m)
	}
}

// VSB with EWLR+RAP should not be slower than naive VSB, and ideal32
// should be at least as good as baseline.
func TestSchemeOrderingSanity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run comparison")
	}
	mix := []string{"mcf", "lbm", "omnetpp", "gemsFDTD"}
	base := runOne(t, config.Baseline(config.DefaultBusMHz), mix, 0.1)
	ideal := runOne(t, config.Ideal32(config.DefaultBusMHz), mix, 0.1)
	if ideal.BusCycles > base.BusCycles*105/100 {
		t.Errorf("ideal32 (%d cycles) slower than baseline (%d)", ideal.BusCycles, base.BusCycles)
	}
	eruca := runOne(t, config.VSB(4, true, true, true, config.DefaultBusMHz), mix, 0.1)
	naive := runOne(t, config.VSB(4, false, false, false, config.DefaultBusMHz), mix, 0.1)
	if eruca.DRAM.PlaneConfPre > naive.DRAM.PlaneConfPre {
		t.Errorf("EWLR+RAP has more plane-conflict precharges (%d) than naive (%d)",
			eruca.DRAM.PlaneConfPre, naive.DRAM.PlaneConfPre)
	}
}

func TestCaptureHook(t *testing.T) {
	var recs []trace.Record
	sys := config.Baseline(config.DefaultBusMHz)
	_, err := Run(Options{
		Sys: sys, Benches: []string{"mcf"}, Instrs: 20_000, Frag: 0.1, Seed: 1,
		Capture: func(r trace.Record) { recs = append(recs, r) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no records captured")
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].NS < recs[i-1].NS {
			t.Fatal("capture not time-ordered")
		}
	}
}

func TestRunValidation(t *testing.T) {
	sys := config.Baseline(config.DefaultBusMHz)
	if _, err := Run(Options{Sys: sys, Benches: nil, Instrs: 10}); err == nil {
		t.Error("no workloads accepted")
	}
	if _, err := Run(Options{Sys: sys, Benches: []string{"a", "b", "c", "d", "e"}, Instrs: 10}); err == nil {
		t.Error("5 workloads on 4 cores accepted")
	}
	if _, err := Run(Options{Sys: sys, Benches: []string{"nope"}, Instrs: 10}); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := Run(Options{Sys: sys, Benches: []string{"mcf"}, Instrs: 0}); err == nil {
		t.Error("zero instructions accepted")
	}
}

package sim

import (
	"testing"

	"eruca/internal/config"
)

// The address hashing must spread a multiprogrammed run's traffic across
// banks: no bank should carry more than a handful of times the mean
// column load.
func TestBankLoadBalance(t *testing.T) {
	res, err := Run(Options{
		Sys: config.Baseline(config.DefaultBusMHz), Benches: []string{"mcf", "lbm", "omnetpp", "gemsFDTD"},
		Instrs: 60_000, Frag: 0.1, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, l := range res.BankLoad {
		total += l
	}
	if total == 0 {
		t.Fatal("no column commands")
	}
	mean := float64(total) / float64(len(res.BankLoad))
	for i, l := range res.BankLoad {
		if float64(l) > 5*mean {
			t.Errorf("bank %d carries %d columns, mean %.0f", i, l, mean)
		}
	}
}

// Queue-depth accounting is populated and sane.
func TestQueueDepthStats(t *testing.T) {
	sys := config.Baseline(config.DefaultBusMHz)
	res, err := Run(Options{
		Sys: sys, Benches: []string{"mcf", "lbm", "omnetpp", "gemsFDTD"},
		Instrs: 60_000, Frag: 0.1, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgReadQueueDepth <= 0 || res.AvgReadQueueDepth > float64(sys.Ctrl.ReadQueueDepth) {
		t.Errorf("avg read depth %v out of range", res.AvgReadQueueDepth)
	}
}

// Micro workloads run end-to-end: the hot-row pattern yields a much
// higher DRAM row-hit rate than the random pattern.
func TestMicroWorkloadsContrast(t *testing.T) {
	run := func(bench string) *Result {
		res, err := Run(Options{
			Sys: config.Baseline(config.DefaultBusMHz), Benches: []string{bench},
			Instrs: 50_000, Frag: 0.1, Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	stream := run("micro-stream")
	random := run("micro-random")
	if stream.RowHitRate() <= random.RowHitRate() {
		t.Errorf("stream row-hit %.2f <= random %.2f", stream.RowHitRate(), random.RowHitRate())
	}
	if random.MPKI[0] <= stream.MPKI[0] {
		t.Errorf("random MPKI %.1f <= stream %.1f", random.MPKI[0], stream.MPKI[0])
	}
}

package sim

import (
	"fmt"
	"sort"

	"eruca/internal/addrmap"
	"eruca/internal/clock"
	"eruca/internal/memctrl"
	"eruca/internal/snapshot"
	"eruca/internal/telemetry"
	"eruca/internal/workload"
)

// This file serializes a full run into one checkpoint blob and rebuilds
// it. The layout is a flat field stream inside the versioned,
// checksummed snapshot container:
//
//	header      run identity (system, workloads, budget, seed, frag)
//	loopVars    bus / CPU cursors, warmup latch, quiescence progress
//	osmem       buddy allocator + per-process page tables and RNGs
//	workload    per-core generator stream positions
//	caches      every L1 and the shared LLC (tags + LRU + dirty bits)
//	channels    per channel: DRAM timing state, controller queues,
//	            optional auditor history
//	faults      fault-plan cursor
//	bridge      event heap, MSHR waiter identities, spill buffer, MPKI
//	cores       per-core fetch/retire cursors and in-flight reads
//	telemetry   mechanism counters (events rings restart empty)
//
// Closures cannot serialize; the blob stores their identities instead
// and restore rebinds them: controller transactions carry Tag (the line
// address) and complete through the bridge's pooled txnDone, and MSHR
// waiters carry (core, registration seq) which restore matches against
// the cores' rebuilt in-flight read completions (reads issue in fetch
// order, so the k-th unready read of a core is the core's k-th
// registered waiter).

// snapshot serializes the whole machine at a loop-top boundary.
func (rs *runState) snapshot(v loopVars) []byte {
	e := &snapshot.Encoder{}

	// Header: enough identity to refuse a blob produced by a different
	// run configuration.
	e.Str(rs.sys.Name)
	e.Int(rs.sys.Geom.Channels)
	e.Int(len(rs.opt.Benches))
	for _, b := range rs.opt.Benches {
		e.Str(b)
	}
	e.I64(rs.opt.Seed)
	e.F64(rs.opt.Frag)
	e.I64(rs.opt.Instrs)
	e.I64(rs.warmup)

	// Loop-carried state.
	e.I64(v.bus)
	e.I64(v.busAtWarm)
	e.I64(v.cpuCycle)
	e.Bool(v.warmed)
	e.I64(v.prevProg)
	e.F64(rs.achieved)

	// OS memory and workload generators.
	rs.mem.Snapshot(e)
	for _, p := range rs.procs {
		p.Snapshot(e)
	}
	for _, g := range rs.gens {
		g.(workload.Stateful).Snapshot(e)
	}
	rs.caches.Snapshot(e)

	// Channels: DRAM timing, controller queues, auditor history.
	e.Bool(len(rs.auditors) > 0)
	for i, ctl := range rs.ctls {
		ctl.Channel().Snapshot(e)
		ctl.Snapshot(e)
		if len(rs.auditors) > 0 {
			rs.auditors[i].Snapshot(e)
		}
	}

	rs.plan.Snapshot(e)
	rs.br.snapshot(e)
	for _, c := range rs.cores {
		c.Snapshot(e)
	}

	// Telemetry counters aggregate across a crash; event rings restart
	// empty (they are an observation window, not machine state).
	if rs.tel != nil {
		e.Bool(true)
		rs.tel.C.SnapshotState(e)
	} else {
		e.Bool(false)
	}
	return e.Seal()
}

// restore rebuilds the machine from a checkpoint blob. The runState
// must have been constructed from the same Options that produced the
// blob; the serialized header is validated against it.
func (rs *runState) restore(blob []byte) (loopVars, error) {
	var v loopVars
	d, err := snapshot.Open(blob)
	if err != nil {
		return v, err
	}

	// Header validation.
	if name := d.Str(); d.Err() == nil && name != rs.sys.Name {
		return v, fmt.Errorf("checkpoint is for system %q, not %q", name, rs.sys.Name)
	}
	if ch := d.Int(); d.Err() == nil && ch != rs.sys.Geom.Channels {
		return v, fmt.Errorf("checkpoint has %d channels, config has %d", ch, rs.sys.Geom.Channels)
	}
	nb := d.Count(1)
	if err := d.Err(); err != nil {
		return v, err
	}
	if nb != len(rs.opt.Benches) {
		return v, fmt.Errorf("checkpoint has %d workloads, options have %d", nb, len(rs.opt.Benches))
	}
	for i := 0; i < nb; i++ {
		if b := d.Str(); d.Err() == nil && b != rs.opt.Benches[i] {
			return v, fmt.Errorf("checkpoint workload %d is %q, options have %q", i, b, rs.opt.Benches[i])
		}
	}
	if s := d.I64(); d.Err() == nil && s != rs.opt.Seed {
		return v, fmt.Errorf("checkpoint seed %d does not match options seed %d", s, rs.opt.Seed)
	}
	if f := d.F64(); d.Err() == nil && f != rs.opt.Frag {
		return v, fmt.Errorf("checkpoint frag %g does not match options frag %g", f, rs.opt.Frag)
	}
	if n := d.I64(); d.Err() == nil && n != rs.opt.Instrs {
		return v, fmt.Errorf("checkpoint budget %d does not match options budget %d", n, rs.opt.Instrs)
	}
	if w := d.I64(); d.Err() == nil && w != rs.warmup {
		return v, fmt.Errorf("checkpoint warmup %d does not match resolved warmup %d", w, rs.warmup)
	}

	v.bus = d.I64()
	v.busAtWarm = d.I64()
	v.cpuCycle = d.I64()
	v.warmed = d.Bool()
	v.prevProg = d.I64()
	rs.achieved = d.F64()
	// The restored state was checkpointed at v.bus; count the interval
	// from there so a resumed run does not immediately re-emit.
	v.lastCkpt = v.bus
	if err := d.Err(); err != nil {
		return v, err
	}

	if err := rs.mem.Restore(d); err != nil {
		return v, err
	}
	for _, p := range rs.procs {
		if err := p.Restore(d); err != nil {
			return v, err
		}
	}
	for _, g := range rs.gens {
		if err := g.(workload.Stateful).Restore(d); err != nil {
			return v, err
		}
	}
	if err := rs.caches.Restore(d); err != nil {
		return v, err
	}

	hadAudit := d.Bool()
	if err := d.Err(); err != nil {
		return v, err
	}
	if hadAudit != (len(rs.auditors) > 0) {
		return v, fmt.Errorf("checkpoint audit=%v does not match options audit=%v", hadAudit, len(rs.auditors) > 0)
	}
	for i, ctl := range rs.ctls {
		if err := ctl.Channel().Restore(d); err != nil {
			return v, err
		}
		// Queued transactions are rebuilt through the bridge's pool so
		// their Done closures complete line fills exactly as the
		// originals did.
		err := ctl.Restore(d, func(write bool, loc addrmap.Loc, arrive clock.Cycle, tag uint64, hadDone bool) *memctrl.Transaction {
			pt := rs.br.getTxn()
			pt.line = tag
			pt.t.Write = write
			pt.t.Loc = loc
			pt.t.Arrive = arrive
			pt.t.Tag = tag
			return &pt.t
		})
		if err != nil {
			return v, err
		}
		if hadAudit {
			if err := rs.auditors[i].Restore(d); err != nil {
				return v, err
			}
		}
	}

	if err := rs.plan.Restore(d); err != nil {
		return v, err
	}
	if err := rs.br.restore(d); err != nil {
		return v, err
	}
	for _, c := range rs.cores {
		if err := c.Restore(d); err != nil {
			return v, err
		}
	}
	if err := rs.relinkWaiters(); err != nil {
		return v, err
	}

	hadTel := d.Bool()
	if err := d.Err(); err != nil {
		return v, err
	}
	if hadTel {
		// Counters survive a crash even when the resuming caller brings
		// no Set of its own (the fields still have to be consumed to
		// keep the stream aligned).
		c := &telemetry.Counters{}
		if rs.tel != nil {
			c = &rs.tel.C
		}
		if err := c.RestoreState(d); err != nil {
			return v, err
		}
	}
	if err := d.Close(); err != nil {
		return v, err
	}
	return v, nil
}

// snapshot serializes the bridge: the deferred-fill event heap (as the
// raw heap array — heap shape is deterministic, so the bytes are too),
// the MSHR waiter identities, the writeback spill buffer and the
// per-core miss counters. The transaction pool and the fatal latch are
// deliberately absent: the pool is bookkeeping, and a latched fatal
// ends the run before the next checkpoint boundary.
func (b *bridge) snapshot(e *snapshot.Encoder) {
	e.Int(len(b.events))
	for _, ev := range b.events {
		e.I64(ev.at)
		e.U64(ev.seq)
		e.U64(ev.line)
	}
	e.U64(b.eventSeq)

	lines := make([]uint64, 0, len(b.mshr))
	for line := range b.mshr {
		lines = append(lines, line)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	e.Int(len(lines))
	for _, line := range lines {
		e.U64(line)
		ws := b.mshr[line]
		e.Int(len(ws))
		for _, w := range ws {
			e.Int(w.core)
			e.U64(w.seq)
		}
	}
	e.U64(b.waiterSeq)

	e.Int(len(b.spill))
	for _, wb := range b.spill {
		e.U64(wb)
	}
	e.Int(len(b.misses))
	for _, m := range b.misses {
		e.U64(m)
	}
	e.U64(b.stalledForSpill)
}

// restore rebuilds the bridge state. MSHR waiters come back with nil
// completion callbacks; runState.relinkWaiters rebinds them once the
// cores have been restored.
func (b *bridge) restore(d *snapshot.Decoder) error {
	n := d.Count(17)
	if err := d.Err(); err != nil {
		return err
	}
	b.events = b.events[:0]
	for i := 0; i < n; i++ {
		b.events = append(b.events, busEvent{at: d.I64(), seq: d.U64(), line: d.U64()})
	}
	b.eventSeq = d.U64()

	nl := d.Count(10)
	if err := d.Err(); err != nil {
		return err
	}
	b.mshr = make(map[uint64][]waiter, nl)
	prevLine := uint64(0)
	for i := 0; i < nl; i++ {
		line := d.U64()
		nw := d.Count(9)
		if err := d.Err(); err != nil {
			return err
		}
		if i > 0 && line <= prevLine {
			return fmt.Errorf("sim: snapshot MSHR lines out of order")
		}
		prevLine = line
		ws := make([]waiter, 0, nw)
		for j := 0; j < nw; j++ {
			w := waiter{core: d.Int(), seq: d.U64()}
			if w.core < 0 || w.core >= len(b.misses) {
				return fmt.Errorf("sim: snapshot MSHR waiter core %d out of range", w.core)
			}
			ws = append(ws, w)
		}
		b.mshr[line] = ws
	}
	b.waiterSeq = d.U64()

	ns := d.Count(1)
	if err := d.Err(); err != nil {
		return err
	}
	b.spill = b.spill[:0]
	for i := 0; i < ns; i++ {
		b.spill = append(b.spill, d.U64())
	}
	nm := d.Count(1)
	if err := d.Err(); err != nil {
		return err
	}
	if nm != len(b.misses) {
		return fmt.Errorf("sim: snapshot has %d miss counters, run has %d cores", nm, len(b.misses))
	}
	for i := range b.misses {
		b.misses[i] = d.U64()
	}
	b.stalledForSpill = d.U64()
	return d.Err()
}

// relinkWaiters rebinds the restored MSHR waiters to the restored
// cores' in-flight read completions. Within one core, waiter
// registration order equals read program order (reads register with the
// memory system in fetch order), so walking all waiters in global
// registration order while consuming each core's pending completions in
// program order reproduces every binding.
func (rs *runState) relinkWaiters() error {
	type ref struct {
		line uint64
		idx  int
		core int
		seq  uint64
	}
	var refs []ref
	for line, ws := range rs.br.mshr {
		for i, w := range ws {
			refs = append(refs, ref{line: line, idx: i, core: w.core, seq: w.seq})
		}
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].seq < refs[j].seq })

	pending := make([][]func(), len(rs.cores))
	cursor := make([]int, len(rs.cores))
	for i, c := range rs.cores {
		pending[i] = c.PendingCompletions()
	}
	for _, r := range refs {
		if cursor[r.core] >= len(pending[r.core]) {
			return fmt.Errorf("sim: snapshot has more MSHR waiters for core %d than pending reads", r.core)
		}
		rs.br.mshr[r.line][r.idx].fn = pending[r.core][cursor[r.core]]
		cursor[r.core]++
	}
	for i := range cursor {
		if cursor[i] != len(pending[i]) {
			return fmt.Errorf("sim: core %d has %d pending reads but %d MSHR waiters", i, len(pending[i]), cursor[i])
		}
	}
	return nil
}

package sim

import (
	"bytes"
	"testing"

	"eruca/internal/clock"
	"eruca/internal/config"
	"eruca/internal/faults"
)

// crashOptions builds one audited run configuration for the
// checkpoint/restore proofs.
func crashOptions(sys *config.System, benches []string) Options {
	return Options{
		Sys: sys, Benches: benches, Instrs: 30_000, Frag: 0.1, Seed: 7,
		Audit: true,
	}
}

// collectCheckpoints runs opt with periodic checkpointing and returns
// the result plus every emitted checkpoint.
func collectCheckpoints(t *testing.T, opt Options, every clock.Cycle) (*Result, []Checkpoint) {
	t.Helper()
	var cps []Checkpoint
	opt.CheckpointEvery = every
	opt.CheckpointSink = func(cp Checkpoint) {
		blob := make([]byte, len(cp.Blob))
		copy(blob, cp.Blob)
		cps = append(cps, Checkpoint{Bus: cp.Bus, Blob: blob})
	}
	res, err := Run(opt)
	if err != nil {
		t.Fatalf("checkpointing run: %v", err)
	}
	return res, cps
}

// assertRunsEqual compares two runs down to the audited command stream:
// same commands at the same cycles on every channel, and identical
// statistics.
func assertRunsEqual(t *testing.T, label string, ref, got *Result) {
	t.Helper()
	if len(ref.AuditCommands) != len(got.AuditCommands) {
		t.Fatalf("%s: channel count differs: %d vs %d", label, len(ref.AuditCommands), len(got.AuditCommands))
	}
	for ch := range ref.AuditCommands {
		r, g := ref.AuditCommands[ch], got.AuditCommands[ch]
		if len(r) != len(g) {
			t.Fatalf("%s: channel %d: command count differs: %d vs %d", label, ch, len(r), len(g))
		}
		for i := range r {
			if r[i] != g[i] {
				t.Fatalf("%s: channel %d: command %d differs:\nreference: %+v at %d\nresumed:   %+v at %d",
					label, ch, i, r[i].Cmd, r[i].At, g[i].Cmd, g[i].At)
			}
		}
	}
	if ref.BusCycles != got.BusCycles {
		t.Errorf("%s: BusCycles differ: %d vs %d", label, ref.BusCycles, got.BusCycles)
	}
	for i := range ref.IPC {
		if ref.IPC[i] != got.IPC[i] {
			t.Errorf("%s: core %d IPC differs: %v vs %v", label, i, ref.IPC[i], got.IPC[i])
		}
		if ref.MPKI[i] != got.MPKI[i] {
			t.Errorf("%s: core %d MPKI differs: %v vs %v", label, i, ref.MPKI[i], got.MPKI[i])
		}
	}
	if ref.DRAM != got.DRAM {
		t.Errorf("%s: DRAM stats differ:\nreference: %+v\nresumed:   %+v", label, ref.DRAM, got.DRAM)
	}
	if ref.Energy != got.Energy {
		t.Errorf("%s: energy differs", label)
	}
	if ref.AvgReadQueueDepth != got.AvgReadQueueDepth || ref.AvgWriteQueueDepth != got.AvgWriteQueueDepth {
		t.Errorf("%s: queue depths differ: %v/%v vs %v/%v", label,
			ref.AvgReadQueueDepth, ref.AvgWriteQueueDepth, got.AvgReadQueueDepth, got.AvgWriteQueueDepth)
	}
	if ref.QueueLat.N() != got.QueueLat.N() || ref.QueueLat.Mean() != got.QueueLat.Mean() {
		t.Errorf("%s: queue-latency distribution differs", label)
	}
	if ref.HugeCoverage != got.HugeCoverage || ref.AchievedFMFI != got.AchievedFMFI {
		t.Errorf("%s: memory metrics differ: huge %v/%v fmfi %v/%v", label,
			ref.HugeCoverage, got.HugeCoverage, ref.AchievedFMFI, got.AchievedFMFI)
	}
	if ref.FaultsInjected != got.FaultsInjected {
		t.Errorf("%s: FaultsInjected differ: %d vs %d", label, ref.FaultsInjected, got.FaultsInjected)
	}
}

// TestResumeByteIdentical is the tentpole proof: a run resumed from a
// mid-flight checkpoint produces the same audited command stream and
// the same statistics, byte for byte, as the uninterrupted run — and
// checkpoint emission itself does not perturb the run.
func TestResumeByteIdentical(t *testing.T) {
	mkOpt := func() Options {
		return crashOptions(config.VSB(4, true, true, true, config.DefaultBusMHz),
			[]string{"mcf", "lbm"})
	}
	ref, err := Run(mkOpt())
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	ck, cps := collectCheckpoints(t, mkOpt(), 10_000)
	assertRunsEqual(t, "checkpointing-vs-plain", ref, ck)
	if len(cps) < 2 {
		t.Fatalf("expected at least 2 checkpoints, got %d", len(cps))
	}

	// Resume from an early, a middle and the final checkpoint.
	for _, idx := range []int{0, len(cps) / 2, len(cps) - 1} {
		cp := cps[idx]
		res, err := Resume(mkOpt(), cp.Blob)
		if err != nil {
			t.Fatalf("resume from checkpoint %d (bus %d): %v", idx, cp.Bus, err)
		}
		assertRunsEqual(t, "resumed", ref, res)
	}
}

// TestResumeWithFaultPlan proves the fault-plan cursor travels through
// a checkpoint: a resumed chaos run lands the same injections and
// matches the uninterrupted run exactly.
func TestResumeWithFaultPlan(t *testing.T) {
	mkOpt := func() Options {
		opt := crashOptions(config.Baseline(config.DefaultBusMHz), []string{"mcf"})
		// Scheduling-only perturbations (wedge windows), so the run stays
		// protocol-legal and auditable.
		var evs []faults.Event
		for i := 0; i < 4; i++ {
			evs = append(evs, faults.Event{Kind: faults.Blackout, AtBus: 2_000 + clock.Cycle(i)*3_000, Arg: 500})
		}
		opt.Faults = faults.NewPlanEvents(1, evs...)
		return opt
	}
	ref, err := Run(mkOpt())
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if ref.FaultsInjected == 0 {
		t.Fatal("reference run injected no faults")
	}
	_, cps := collectCheckpoints(t, mkOpt(), 2_500)
	if len(cps) < 2 {
		t.Fatalf("expected at least 2 checkpoints, got %d", len(cps))
	}
	res, err := Resume(mkOpt(), cps[len(cps)/2].Blob)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	assertRunsEqual(t, "resumed-chaos", ref, res)
}

// TestCheckpointDeterministic asserts checkpointing is reproducible:
// two identical runs emit byte-identical blobs at the same cycles.
func TestCheckpointDeterministic(t *testing.T) {
	mkOpt := func() Options {
		return crashOptions(config.Baseline(config.DefaultBusMHz), []string{"lbm"})
	}
	_, a := collectCheckpoints(t, mkOpt(), 10_000)
	_, b := collectCheckpoints(t, mkOpt(), 10_000)
	if len(a) != len(b) {
		t.Fatalf("checkpoint count differs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Bus != b[i].Bus {
			t.Errorf("checkpoint %d at different cycles: %d vs %d", i, a[i].Bus, b[i].Bus)
		}
		if !bytes.Equal(a[i].Blob, b[i].Blob) {
			t.Errorf("checkpoint %d blobs differ (%d vs %d bytes)", i, len(a[i].Blob), len(b[i].Blob))
		}
	}
}

// TestResumeRejectsMismatch asserts a checkpoint cannot silently resume
// under a different run configuration.
func TestResumeRejectsMismatch(t *testing.T) {
	mkOpt := func() Options {
		return crashOptions(config.Baseline(config.DefaultBusMHz), []string{"lbm"})
	}
	_, cps := collectCheckpoints(t, mkOpt(), 10_000)
	if len(cps) == 0 {
		t.Fatal("no checkpoints emitted")
	}
	blob := cps[0].Blob

	cases := []struct {
		name   string
		mutate func(*Options)
	}{
		{"seed", func(o *Options) { o.Seed = 8 }},
		{"bench", func(o *Options) { o.Benches = []string{"mcf"} }},
		{"instrs", func(o *Options) { o.Instrs = 40_000 }},
		{"frag", func(o *Options) { o.Frag = 0.5 }},
		{"system", func(o *Options) { o.Sys = config.VSB(4, true, true, true, config.DefaultBusMHz) }},
		{"audit", func(o *Options) { o.Audit = false }},
	}
	for _, tc := range cases {
		opt := mkOpt()
		tc.mutate(&opt)
		if _, err := Resume(opt, blob); err == nil {
			t.Errorf("%s mismatch: resume succeeded, want error", tc.name)
		}
	}

	// A corrupted blob is refused by the container checksum.
	bad := make([]byte, len(blob))
	copy(bad, blob)
	bad[len(bad)/2] ^= 0x40
	if _, err := Resume(mkOpt(), bad); err == nil {
		t.Error("corrupt blob: resume succeeded, want error")
	}
	// A truncated blob is refused, never a panic.
	if _, err := Resume(mkOpt(), blob[:len(blob)/3]); err == nil {
		t.Error("truncated blob: resume succeeded, want error")
	}
}

// Package sim wires the full system together — synthetic workloads, the
// OS memory allocator, out-of-order cores, caches, memory controllers
// and the DRAM timing engine — and runs multiprogrammed simulations,
// producing the metrics behind every performance figure of the paper.
package sim

import (
	"context"
	"fmt"

	"eruca/internal/addrmap"
	"eruca/internal/cache"
	"eruca/internal/check"
	"eruca/internal/clock"
	"eruca/internal/config"
	"eruca/internal/cpu"
	"eruca/internal/dram"
	"eruca/internal/energy"
	"eruca/internal/faults"
	"eruca/internal/memctrl"
	"eruca/internal/osmem"
	"eruca/internal/stats"
	"eruca/internal/telemetry"
	"eruca/internal/trace"
	"eruca/internal/workload"
)

// Options configures one simulation run.
type Options struct {
	// Ctx, when non-nil, bounds the run: cancellation (or deadline
	// expiry) ends the simulation promptly at a bus-cycle boundary and
	// Run returns the partial statistics together with an error wrapping
	// ctx.Err(). A nil Ctx means the run cannot be interrupted.
	Ctx context.Context

	Sys *config.System
	// Benches names one workload per active core (1 to Sys.CPU.Cores).
	Benches []string
	// Instrs is the per-core measured instruction budget.
	Instrs int64
	// Warmup is the per-core instruction count run before measurement
	// starts (caches fill, rows open). Defaults to Instrs/2.
	Warmup int64
	// Frag is the target free-memory fragmentation index (0, 0.1, 0.5).
	Frag float64
	// Seed drives every random choice in the run.
	Seed int64
	// Capture, when set, receives every DRAM transaction (Fig. 4).
	Capture func(trace.Record)
	// MaxBusCycles caps the run as a deadlock guard (0 = automatic).
	MaxBusCycles int64
	// Audit attaches an independent protocol checker to every channel;
	// detected violations are returned as an error and the audited
	// command streams are exposed through Result.AuditCommands.
	Audit bool
	// NoFastForward disables the event-driven cycle skipping and runs
	// the plain per-cycle loop. Both modes produce identical results and
	// identical DRAM command streams; the flag exists for equivalence
	// tests and debugging.
	NoFastForward bool
	// Check, when non-nil with Mode != Off, attaches the structured
	// protocol checker to every channel. Fail mode ends the run at the
	// first violation (returned as a *check.ProtocolError); Log mode
	// records violations into Result.Protocol without perturbing the
	// run; Panic mode reproduces the historical stop-the-world behavior
	// but with the flight recorder attached to the panic value.
	Check *check.Options
	// Watchdog, when non-nil, arms the forward-progress and
	// read-latency monitors; a trip ends the run with a
	// *DeadlockError carrying a full system snapshot.
	Watchdog *Watchdog
	// Faults, when non-nil, schedules deliberate state corruption and
	// scheduling perturbations (chaos runs). The plan is cloned, so one
	// plan value may parameterize many runs.
	Faults *faults.Plan
	// Telemetry, when non-nil, attaches the event tracer and mechanism
	// counter registry to every channel and controller. Purely
	// observational: the command stream, bus cycle count and every Result
	// field are identical with and without it (proven by
	// TestTelemetryNonPerturbing). One Set may be shared across
	// concurrent runs; counters then aggregate and events are tagged
	// with per-run indices from BeginRun.
	Telemetry *telemetry.Set
	// CheckpointEvery, together with CheckpointSink, emits a serialized
	// full-state checkpoint at the first loop iteration at least
	// CheckpointEvery bus cycles after the previous one (fast-forward
	// jumps may push an emission a little later; the state captured is
	// always exact for the cycle it reports). Zero disables
	// checkpointing. Checkpoints are taken between bus cycles, so a run
	// resumed from one is cycle-accurate: it produces the same audited
	// command stream and statistics as the uninterrupted run (proven by
	// TestResumeByteIdentical).
	CheckpointEvery clock.Cycle
	// CheckpointSink receives each emitted checkpoint synchronously on
	// the simulation goroutine; copy or persist the blob and return.
	CheckpointSink func(Checkpoint)
}

// Checkpoint is one serialized simulation state, emitted through
// Options.CheckpointSink and accepted by Resume. Bus is the first bus
// cycle NOT yet simulated; Blob is the versioned, checksummed state
// (see internal/snapshot).
type Checkpoint struct {
	Bus  clock.Cycle
	Blob []byte
}

// Result is the outcome of one run.
type Result struct {
	System  string
	Benches []string

	IPC  []float64 // per core, latched when it hit its target
	MPKI []float64 // per core, DRAM demand misses per 1000 instructions

	BusCycles int64
	ElapsedNS float64

	DRAM     dram.Stats // summed over channels
	Energy   energy.Breakdown
	QueueLat *stats.Sampler // read queueing latency, ns
	TotalLat *stats.Sampler // read arrival-to-data latency, ns

	HugeCoverage float64 // fraction of mapped memory backed by huge pages
	AchievedFMFI float64

	// BankLoad is the per-bank column-command count, channels
	// concatenated — the utilization balance of the address hashing.
	BankLoad []uint64
	// AvgReadQueueDepth / AvgWriteQueueDepth are time-averaged controller
	// queue occupancies across channels.
	AvgReadQueueDepth  float64
	AvgWriteQueueDepth float64

	// AuditCommands holds, per channel, the full audited command stream
	// (command + issue cycle) when Options.Audit was set. Equivalence
	// tests compare it across fast-forwarding and per-cycle runs.
	AuditCommands [][]dram.AuditedCommand

	// Protocol holds the violations the Log-mode checker recorded (at
	// most a bounded number per channel); empty on clean runs.
	Protocol []*check.ProtocolError
	// FaultsInjected counts the fault-plan events that landed.
	FaultsInjected int
	// Partial marks a result whose run ended early (OOM, Fail-mode
	// violation, watchdog); the statistics cover only the completed
	// portion.
	Partial bool
}

// PlaneConflictPreFrac reports the fraction of precharges triggered by
// plane conflicts (Fig. 13b).
func (r *Result) PlaneConflictPreFrac() float64 {
	if r.DRAM.Pres == 0 {
		return 0
	}
	return float64(r.DRAM.PlaneConfPre) / float64(r.DRAM.Pres)
}

// RowHitRate reports column commands served without a fresh activation.
func (r *Result) RowHitRate() float64 {
	cols := r.DRAM.Reads + r.DRAM.Writes
	if cols == 0 {
		return 0
	}
	return float64(r.DRAM.RowHits()) / float64(cols)
}

// Run executes one simulation.
func Run(opt Options) (*Result, error) {
	rs, err := newRunState(opt)
	if err != nil {
		return nil, err
	}
	v := loopVars{warmed: rs.warmup == 0, prevProg: -1}
	v, stopErr, hardErr := rs.loop(v)
	if hardErr != nil {
		return nil, hardErr
	}
	return rs.finish(v, stopErr)
}

// Resume reconstructs a run from a checkpoint blob and carries it to
// completion. opt must describe the same run that produced the blob
// (system, workloads, budget, seed, fragmentation — all validated
// against the serialized header); observational options (Capture,
// Telemetry, CheckpointSink) may differ. The resumed run is
// cycle-accurate: statistics, the audited command stream and the final
// Result match the uninterrupted run byte for byte. Two components
// restart fresh rather than resuming: the watchdog (it re-arms its
// progress deadline from the resume point) and the protocol checker
// (which may need a few commands of stream context before its checks
// are meaningful again). Neither perturbs the simulated machine.
func Resume(opt Options, blob []byte) (*Result, error) {
	rs, err := newRunState(opt)
	if err != nil {
		return nil, err
	}
	v, err := rs.restore(blob)
	if err != nil {
		return nil, fmt.Errorf("sim: resume: %w", err)
	}
	v, stopErr, hardErr := rs.loop(v)
	if hardErr != nil {
		return nil, hardErr
	}
	return rs.finish(v, stopErr)
}

// runState is the fully constructed simulated machine plus the harness
// around it (auditors, checkers, fault plan, watchdog, telemetry). Run
// and Resume build it identically from Options; Resume then overwrites
// the mutable state from the checkpoint blob before entering the loop.
type runState struct {
	opt      Options
	sys      *config.System
	mapper   *addrmap.Mapper
	mem      *osmem.Memory
	achieved float64
	procs    []*osmem.Process
	gens     []workload.Generator
	caches   *cache.Hierarchy
	tel      *telemetry.Set
	telRun   uint16
	ctls     []*memctrl.Controller
	auditors []*dram.Auditor
	checkers []*check.Checker
	plan     *faults.Plan
	tgt      injectTarget
	wd       *watchdogState
	br       *bridge
	cores    []*cpu.Core
	warmup   int64
	maxBus   clock.Cycle
	ratio    int64
}

// loopVars is the loop-carried state of the simulation: everything the
// run loop itself mutates between bus cycles. It is the part of a
// checkpoint that is not owned by a subsystem.
type loopVars struct {
	bus       clock.Cycle
	busAtWarm clock.Cycle
	cpuCycle  int64
	warmed    bool
	prevProg  int64
	lastCkpt  clock.Cycle
}

func newRunState(opt Options) (*runState, error) {
	sys := opt.Sys
	if len(opt.Benches) == 0 || len(opt.Benches) > sys.CPU.Cores {
		return nil, fmt.Errorf("sim: %d workloads for %d cores", len(opt.Benches), sys.CPU.Cores)
	}
	if opt.Instrs <= 0 {
		return nil, fmt.Errorf("sim: non-positive instruction budget")
	}

	mapper := addrmap.New(sys)

	mem := osmem.NewMemory(sys.Geom.TotalBytes(), opt.Seed)
	achieved := mem.Fragment(opt.Frag)

	var procs []*osmem.Process
	var gens []workload.Generator
	for i, name := range opt.Benches {
		p, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		procs = append(procs, mem.NewProcess(true, opt.Seed*1000003+int64(i)))
		gens = append(gens, workload.New(p, opt.Seed*7919+int64(i)))
	}

	caches, err := cache.New(cache.Config{
		Cores:     len(opt.Benches),
		L1Bytes:   sys.CPU.L1Bytes,
		L1Ways:    sys.CPU.L1Ways,
		LLCBytes:  sys.CPU.LLCBytesPerCore * sys.CPU.Cores,
		LLCWays:   sys.CPU.LLCWays,
		LineBytes: sys.Geom.LineBytes,
	})
	if err != nil {
		return nil, fmt.Errorf("sim: %s: %w", sys.Name, err)
	}

	// Telemetry: register this run and size the rings. One Set may serve
	// many concurrent runs; events are tagged with the run index.
	tel := opt.Telemetry
	var telRun uint16
	if tel != nil {
		tel.Configure(sys.Geom.Channels, sys.Geom.Ranks)
		telRun = tel.BeginRun(fmt.Sprintf("%s %v frag=%g", sys.Name, opt.Benches, opt.Frag))
	}

	var ctls []*memctrl.Controller
	var auditors []*dram.Auditor
	var checkers []*check.Checker
	for c := 0; c < sys.Geom.Channels; c++ {
		ch := dram.NewChannel(sys, mapper.RowBits())
		ch.SetTelemetry(tel, c, telRun)
		if opt.Audit {
			a := dram.NewAuditor(sys)
			ch.Attach(a)
			auditors = append(auditors, a)
		}
		if opt.Check != nil && opt.Check.Mode != check.Off {
			co := *opt.Check
			co.Telemetry, co.Chan = tel, c
			ck := check.New(sys, co)
			ch.Attach(ck)
			ch.OnViolation(ck.HandleViolation)
			checkers = append(checkers, ck)
		}
		ctl := memctrl.New(sys, ch)
		ctl.SetTelemetry(tel)
		ctls = append(ctls, ctl)
	}

	// Chaos harness: clone the fault plan (so one plan parameterizes
	// many runs) and arm its continuous perturbations.
	plan := opt.Faults.Clone()
	tgt := injectTarget{ctls: ctls, ranks: sys.Geom.Ranks}
	plan.Arm(tgt)

	var wd *watchdogState
	if opt.Watchdog != nil {
		wd = newWatchdogState(opt.Watchdog)
	}

	br := newBridge(sys, mapper, procs, caches, ctls, opt.Capture)

	warmup := opt.Warmup
	if warmup == 0 {
		warmup = opt.Instrs / 2
	}
	var cores []*cpu.Core
	for i := range gens {
		c := cpu.New(i, sys.CPU.Width, sys.CPU.ROB, sys.CPU.LSQ, warmup+opt.Instrs, source{gens[i]}, br)
		c.Warmup = warmup
		cores = append(cores, c)
	}

	maxBus := opt.MaxBusCycles
	if maxBus == 0 {
		maxBus = (warmup+opt.Instrs)*300 + 1_000_000
	}

	return &runState{
		opt:      opt,
		sys:      sys,
		mapper:   mapper,
		mem:      mem,
		achieved: achieved,
		procs:    procs,
		gens:     gens,
		caches:   caches,
		tel:      tel,
		telRun:   telRun,
		ctls:     ctls,
		auditors: auditors,
		checkers: checkers,
		plan:     plan,
		tgt:      tgt,
		wd:       wd,
		br:       br,
		cores:    cores,
		warmup:   warmup,
		maxBus:   maxBus,
		ratio:    int64(sys.CPU.ClockRatio),
	}, nil
}

// loop advances the simulation from v until completion or a graceful
// stop. It returns the final loop-carried state, the stop error (nil on
// a clean finish; OOM / protocol violation / watchdog / cancellation
// otherwise — partial statistics are still assembled), and a hard error
// (bus-cycle budget overrun) that yields no Result at all.
func (rs *runState) loop(v loopVars) (loopVars, error, error) {
	opt, sys := rs.opt, rs.sys
	br, plan, tgt, wd, tel := rs.br, rs.plan, rs.tgt, rs.wd, rs.tel
	cores, ctls, checkers := rs.cores, rs.ctls, rs.checkers
	ratio, maxBus := rs.ratio, rs.maxBus

	// Cancellation plumbing: a nil Done channel never fires, so runs
	// without a context pay only a dead branch. The check runs every 64
	// loop iterations (not bus cycles — fast-forward jumps would skip
	// fixed cycle marks), bounding the reaction latency to microseconds
	// of wall time.
	var done <-chan struct{}
	if opt.Ctx != nil {
		done = opt.Ctx.Done()
	}

	ckptEvery := opt.CheckpointEvery
	if opt.CheckpointSink == nil {
		ckptEvery = 0
	}

	var bus, busAtWarm clock.Cycle
	var stopErr error
	bus, busAtWarm = v.bus, v.busAtWarm
	cpuCycle := v.cpuCycle
	warmed := v.warmed
	prevProg := v.prevProg
	lastCkpt := v.lastCkpt
	sync := func() loopVars {
		return loopVars{bus: bus, busAtWarm: busAtWarm, cpuCycle: cpuCycle,
			warmed: warmed, prevProg: prevProg, lastCkpt: lastCkpt}
	}
	iter := 0
	for ; ; bus++ {
		if bus > maxBus {
			return sync(), nil, fmt.Errorf("sim: %s did not finish within %d bus cycles", sys.Name, maxBus)
		}
		// Checkpoint emission point: every cycle below bus is fully
		// simulated and no cycle-local work for bus has started, so the
		// machine state is exactly "about to simulate bus". The snapshot
		// only reads state (in particular, it never draws from any RNG),
		// so emitting one cannot perturb the run.
		if ckptEvery > 0 && bus > 0 && bus-lastCkpt >= ckptEvery {
			lastCkpt = bus
			opt.CheckpointSink(Checkpoint{Bus: bus, Blob: rs.snapshot(sync())})
		}
		if iter++; done != nil && iter&63 == 0 {
			select {
			case <-done:
				stopErr = fmt.Errorf("sim: %s: run canceled: %w", sys.Name, opt.Ctx.Err())
			default:
			}
			if stopErr != nil {
				break
			}
		}
		br.busNow = bus
		if plan != nil {
			plan.Apply(bus, tgt)
		}
		fired := br.fireEvents()
		for r := 0; r < sys.CPU.ClockRatio; r++ {
			cpuCycle++
			br.cpuNow = cpuCycle
			for _, c := range cores {
				c.Tick(cpuCycle)
			}
		}
		issued := false
		for _, ctl := range ctls {
			if ctl.Tick(bus) {
				issued = true
			}
		}
		drained := br.drainSpill()

		// Graceful-degradation checks: a latched bridge fatal (OOM), a
		// Fail-mode protocol violation, or a tripped watchdog ends the
		// run here; partial statistics are still assembled below.
		if br.fatal != nil {
			stopErr = fmt.Errorf("sim: %s: %w", sys.Name, br.fatal)
			break
		}
		if len(checkers) > 0 {
			for _, ck := range checkers {
				if ck.Failed() {
					stopErr = ck.Err()
					break
				}
			}
			if stopErr != nil {
				break
			}
		}
		if wd != nil {
			if kind, idle := wd.check(bus, fired, drained, cores, ctls); kind != "" {
				stopErr = &DeadlockError{Kind: kind, Bus: bus, Idle: idle,
					Report: buildDeadlockReport(kind, bus, idle, cores, ctls, checkers, plan, tel)}
				break
			}
		}

		if !warmed {
			warmed = true
			for _, c := range cores {
				if !c.Warmed() {
					warmed = false
					break
				}
			}
			if warmed {
				// Measurement starts: drop warmup statistics.
				busAtWarm = bus
				for _, ctl := range ctls {
					ctl.Channel().Finish(bus)
					ctl.Channel().Stats = dram.Stats{}
					ctl.ResetStats()
				}
				for i := range br.misses {
					br.misses[i] = 0
				}
			}
		} else {
			done := true
			for _, c := range cores {
				if !c.Done() {
					done = false
					break
				}
			}
			if done {
				break
			}
		}

		if opt.NoFastForward {
			continue
		}

		// Quiescence check: nothing happened this bus cycle — no line
		// fill fired, no controller command (refresh transitions are
		// bounded separately below), no writeback moved, and no core made
		// architectural progress. The whole system state is then frozen:
		// cores retry the exact same blocked Access (acceptance depends
		// only on queue/spill occupancy, which only controller issues and
		// spill drains can change), so every subsequent cycle is
		// identical until the earliest scheduled event.
		curProg := int64(0)
		for _, c := range cores {
			curProg += c.Progress()
		}
		quiet := fired == 0 && !issued && drained == 0 && curProg == prevProg
		prevProg = curProg
		if !quiet {
			continue
		}

		// Conservative lower bound on the next cycle anything can happen:
		// the earliest pending line-fill event, each controller's next
		// possible action (legal issue, refresh transition, close-page
		// scan), and each core's self-driven progress opportunity
		// (already-known read completion), converted CPU->bus. Resuming
		// early is safe — the loop just finds another quiet cycle.
		next := maxBus + 1
		if at, ok := br.nextEventAt(); ok && at < next {
			next = at
		}
		for _, ctl := range ctls {
			if e := ctl.NextEventCycle(bus); e < next {
				next = e
			}
		}
		for _, c := range cores {
			// CPU cycle e is processed during bus cycle (e-1)/ratio.
			if eb := clock.Cycle((c.NextEventCycle(cpuCycle) - 1) / ratio); eb < next {
				next = eb
			}
		}
		// Never skip over a scheduled fault injection or the watchdog's
		// firing point: both must land on their exact cycle.
		if plan != nil {
			if e := plan.NextAt(); e < next {
				next = e
			}
		}
		if wd != nil {
			if e := wd.deadline(bus, ctls); e < next {
				next = e
			}
		}
		if next <= bus+1 {
			continue
		}

		// Jump: account the skipped controller ticks (occupancy stats,
		// close-page scan grid) and core stall cycles, then land so the
		// loop increment resumes exactly at the event cycle.
		for _, ctl := range ctls {
			ctl.FastForward(bus, next)
		}
		if tel != nil {
			skip := uint64(next - bus - 1)
			tel.C.FFCyclesSkipped.Add(skip)
			arg := skip
			if arg > 1<<32-1 {
				arg = 1<<32 - 1
			}
			tel.Emit(telemetry.Event{At: bus + 1, Run: rs.telRun, Kind: telemetry.EvFFSkip, Arg: uint32(arg)})
		}
		skipped := int64(next-bus-1) * ratio
		for _, c := range cores {
			c.FastForward(skipped)
		}
		cpuCycle += skipped
		bus = next - 1
	}

	return sync(), stopErr, nil
}

// finish assembles the Result from the machine state after the loop
// ended (cleanly or on a graceful stop at v.bus).
func (rs *runState) finish(v loopVars, stopErr error) (*Result, error) {
	opt, sys := rs.opt, rs.sys
	bus, busAtWarm := v.bus, v.busAtWarm
	res := &Result{
		System:       sys.Name,
		Benches:      opt.Benches,
		BusCycles:    bus - busAtWarm,
		ElapsedNS:    sys.Bus.NS(bus - busAtWarm),
		QueueLat:     &stats.Sampler{},
		TotalLat:     &stats.Sampler{},
		AchievedFMFI: rs.achieved,
	}
	busNS := sys.Bus.PeriodNS()
	ctls := rs.ctls
	for _, ctl := range ctls {
		ch := ctl.Channel()
		ch.Finish(bus)
		s := ch.Stats
		res.DRAM.Acts += s.Acts
		res.DRAM.ActsEWLRHit += s.ActsEWLRHit
		res.DRAM.Reads += s.Reads
		res.DRAM.Writes += s.Writes
		res.DRAM.Pres += s.Pres
		res.DRAM.PartialPres += s.PartialPres
		res.DRAM.PlaneConfPre += s.PlaneConfPre
		res.DRAM.RAPRedirects += s.RAPRedirects
		res.DRAM.DDBSavedCK += s.DDBSavedCK
		res.DRAM.Refreshes += s.Refreshes
		res.DRAM.PreAlls += s.PreAlls
		res.DRAM.ActiveCycles += s.ActiveCycles
		res.DRAM.AllCycles += s.AllCycles
		res.QueueLat.Merge(&ctl.Stats.QueueLatency, busNS)
		res.TotalLat.Merge(&ctl.Stats.TotalLatency, busNS)
		res.BankLoad = append(res.BankLoad, ch.BankLoad()...)
		res.AvgReadQueueDepth += ctl.Stats.AvgReadQueueDepth() / float64(len(ctls))
		res.AvgWriteQueueDepth += ctl.Stats.AvgWriteQueueDepth() / float64(len(ctls))
	}
	res.Energy = energy.Default().Compute(res.DRAM, busNS)

	for i, a := range rs.auditors {
		if v := a.Violations(); len(v) > 0 {
			return nil, fmt.Errorf("sim: %s: channel %d protocol violations (%d commands audited): %v",
				sys.Name, i, a.Commands(), v[0])
		}
		res.AuditCommands = append(res.AuditCommands, a.Events())
	}

	// End-of-stream checker pass (refresh starvation) and violation
	// harvest. In Panic mode Finish panics on a detection, matching the
	// in-stream semantics.
	for _, ck := range rs.checkers {
		ck.Finish(bus)
		res.Protocol = append(res.Protocol, ck.Errors()...)
		if stopErr == nil && ck.Failed() {
			stopErr = ck.Err()
		}
	}
	res.FaultsInjected = rs.plan.Injected()

	var mappedHuge, mapped uint64
	for i, c := range rs.cores {
		res.IPC = append(res.IPC, c.IPC())
		res.MPKI = append(res.MPKI, 1000*float64(rs.br.misses[i])/float64(opt.Instrs))
		mappedHuge += rs.procs[i].HugeMapped * osmem.HugeBytes
		mapped += rs.procs[i].MappedBytes()
	}
	if mapped > 0 {
		res.HugeCoverage = float64(mappedHuge) / float64(mapped)
	}
	if stopErr != nil {
		// Graceful degradation: the statistics cover the completed
		// portion of the run; the caller gets both.
		res.Partial = true
		return res, stopErr
	}
	return res, nil
}

// injectTarget adapts the run's controllers to faults.Target.
type injectTarget struct {
	ctls  []*memctrl.Controller
	ranks int
}

func (t injectTarget) Channels() int { return len(t.ctls) }

func (t injectTarget) DelayRefresh(ch, rank int, delta clock.Cycle) bool {
	return t.ctls[ch].Channel().InjectRefreshDelay(rank%t.ranks, delta)
}

func (t injectTarget) ForcePrecharge(ch int) bool {
	return t.ctls[ch].Channel().InjectForcePrecharge()
}

func (t injectTarget) CorruptTiming(ch int) bool {
	return t.ctls[ch].Channel().InjectTimingReset()
}

func (t injectTarget) CorruptRow(ch int) bool {
	return t.ctls[ch].Channel().InjectRowCorruption()
}

func (t injectTarget) Blackout(ch int, until clock.Cycle) {
	t.ctls[ch].InjectBlackout(until)
}

func (t injectTarget) SetDropRate(rate float64, seed int64) {
	for i, ctl := range t.ctls {
		ctl.InjectDropRate(rate, seed+int64(i))
	}
}

// source adapts a workload.Generator to cpu.Source.
type source struct{ g workload.Generator }

func (s source) Next() (int, bool, uint64) {
	op := s.g.Next()
	return op.Gap, op.Write, op.VA
}

package sim

import (
	"testing"

	"eruca/internal/config"
)

// Every preset configuration must survive a full multiprogrammed run
// under the independent protocol auditor — the strongest end-to-end
// correctness check in the suite: scheduler, planner and timing engine
// are cross-validated against a second implementation of the DDR4 and
// ERUCA rules, with refresh enabled.
func TestAllPresetsPassAudit(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every preset")
	}
	for _, name := range config.RegistryNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			sys, err := config.ByName(name, 4, config.DefaultBusMHz)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(Options{
				Sys: sys, Benches: []string{"mcf", "lbm"}, Instrs: 30_000,
				Frag: 0.1, Seed: 7, Audit: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.DRAM.Reads == 0 {
				t.Error("no DRAM reads")
			}
		})
	}
}

// The high-frequency DDB configuration exercises the two-command windows
// under audit.
func TestHighFrequencyDDBAudit(t *testing.T) {
	sys := config.VSB(4, true, true, true, 2400)
	if !sys.CT.TwoCommandWindowsOn {
		t.Fatal("windows should bind at 2.4GHz")
	}
	if _, err := Run(Options{
		Sys: sys, Benches: []string{"lbm", "gemsFDTD", "bwaves", "leslie3d"},
		Instrs: 40_000, Frag: 0.1, Seed: 7, Audit: true,
	}); err != nil {
		t.Fatal(err)
	}
}

// Both fragmentation scenarios run clean under audit.
func TestFragmentationScenariosAudit(t *testing.T) {
	for _, frag := range []float64{0.1, 0.5} {
		if _, err := Run(Options{
			Sys:     config.VSB(2, true, true, true, config.DefaultBusMHz),
			Benches: []string{"mcf", "omnetpp"}, Instrs: 30_000,
			Frag: frag, Seed: 7, Audit: true,
		}); err != nil {
			t.Fatalf("frag %.1f: %v", frag, err)
		}
	}
}

package server

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"eruca/internal/errfs"
	"eruca/internal/obs"
)

// postJSON posts a spec body to the daemon's submit endpoint.
func postJSON(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(body))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr
}

// TestENOSPCMidAppendDegradesReadOnly: once a journal append hits
// ENOSPC, the daemon flips (stickily) to read-only — new submissions
// get ErrReadOnly / 503 + Retry-After, reads and health keep serving,
// and the process does not crash.
func TestENOSPCMidAppendDegradesReadOnly(t *testing.T) {
	dir := t.TempDir()
	ffs := errfs.New(nil)
	s := newTestServer(t, Config{WALDir: dir, FS: ffs})
	h := s.Handler()

	j1, err := s.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j1, 60*time.Second)

	// The disk fills: every journal write from here on fails.
	ffs.SetHook(func(op errfs.Op, path string) error {
		if op == errfs.OpWrite && strings.HasSuffix(path, "journal.wal") {
			return syscall.ENOSPC
		}
		return nil
	})
	_, _, err = s.SubmitWithKey(testSpec(), "")
	if !errors.Is(err, ErrReadOnly) {
		t.Fatalf("submit on full disk: %v, want ErrReadOnly", err)
	}
	if !s.Degraded() {
		t.Fatal("daemon did not degrade after the failed append")
	}

	// Sticky: the next submission is rejected before touching the disk.
	writes := ffs.Count(errfs.OpWrite)
	if _, _, err := s.SubmitWithKey(testSpec(), ""); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("second submit: %v, want ErrReadOnly", err)
	}
	if ffs.Count(errfs.OpWrite) != writes {
		t.Error("degraded submit still reached the journal")
	}
	if _, _, err := s.SubmitMigrated(testSpec(), "", "n9", obs.SpanContext{}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("migrated submit: %v, want ErrReadOnly", err)
	}

	// HTTP mapping: 503 + Retry-After, typed error body.
	rr := postJSON(t, h, `{"kind":"sim","system":"ddr4","mix":"mix0","instrs":20000,"frag":0.1}`)
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit status %d, want 503", rr.Code)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	if !strings.Contains(rr.Body.String(), "read-only") {
		t.Errorf("error body does not name the degraded mode: %s", rr.Body.String())
	}

	// Reads keep serving: health stays 200 and reports the degradation,
	// the finished job's record is still fetchable.
	rh := httptest.NewRecorder()
	h.ServeHTTP(rh, httptest.NewRequest("GET", "/healthz", nil))
	if rh.Code != http.StatusOK {
		t.Fatalf("healthz status %d, want 200 (alive, just read-only)", rh.Code)
	}
	if !strings.Contains(rh.Body.String(), `"degraded": true`) {
		t.Errorf("healthz does not report degraded: %s", rh.Body.String())
	}
	rg := httptest.NewRecorder()
	h.ServeHTTP(rg, httptest.NewRequest("GET", "/v1/jobs/"+j1.ID, nil))
	if rg.Code != http.StatusOK {
		t.Errorf("job read status %d, want 200", rg.Code)
	}
	if s.metrics.rejectedReadOnly.Load() < 2 {
		t.Errorf("rejectedReadOnly = %d, want >= 2", s.metrics.rejectedReadOnly.Load())
	}
}

// TestTornCompactionKeepsJournal: a torn write while compacting the
// journal at drain time must never replace the good journal — the tmp
// file is discarded, Drain reports the error, and a reboot on the same
// directory replays the intact journal.
func TestTornCompactionKeepsJournal(t *testing.T) {
	dir := t.TempDir()
	ffs := errfs.New(nil)
	s1, err := New(Config{Workers: 2, QueueMax: 16, WALDir: dir, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	s1.Start()
	j1, err := s1.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j1, 60*time.Second)
	want := j1.Output()

	journal := filepath.Join(dir, "journal.wal")
	before, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}

	// The compaction's tmp-file write tears halfway.
	ffs.SetHook(func(op errfs.Op, path string) error {
		if op == errfs.OpWrite && strings.HasSuffix(path, ".tmp") {
			return errfs.ErrShortWrite
		}
		return nil
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s1.Drain(ctx); err == nil {
		t.Fatal("drain with a torn compaction reported success")
	}
	ffs.SetHook(nil)

	after, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("torn compaction replaced the journal")
	}
	if _, err := os.Stat(journal + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Error("half-written compaction tmp file left behind")
	}

	// Reboot: the intact journal replays the finished job untouched.
	s2 := newTestServer(t, Config{WALDir: dir})
	j2 := s2.Job(j1.ID)
	if j2 == nil {
		t.Fatal("job lost after torn compaction + reboot")
	}
	if st := j2.State(); st != StateDone {
		t.Fatalf("rebooted job state %s, want done", st)
	}
	if j2.Output() != want {
		t.Error("rebooted job output differs from the pre-drain result")
	}
}

// TestBlobFrameRoundTrip pins the checkpoint-blob frame: key and
// payload survive, verification fails (keeping the key) when any byte
// flips, and legacy unframed bytes read as corrupt with no key.
func TestBlobFrameRoundTrip(t *testing.T) {
	payload := []byte("simulated machine state \x00\x01\x02")
	b := frameBlob("ddr4|mix0|0.10", payload)
	key, got, err := parseBlob(b)
	if err != nil || key != "ddr4|mix0|0.10" || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: key=%q err=%v", key, err)
	}
	for _, i := range []int{len(b) - 1, len(b) - len(payload)/2} {
		c := append([]byte(nil), b...)
		c[i] ^= 0x01
		key, _, err := parseBlob(c)
		if err == nil {
			t.Fatalf("flipped payload byte %d still verified", i)
		}
		if key != "ddr4|mix0|0.10" {
			t.Errorf("payload corruption lost the key: %q", key)
		}
	}
	if _, _, err := parseBlob([]byte("legacy raw blob")); err == nil {
		t.Error("unframed bytes verified")
	}
}

// TestBlobScrubRepairsFromReplica is the scrub contract: flip bytes in
// a stored blob, the scrubber detects it (corrupt=1), re-fetches the
// payload from the replica tier, and a subsequent load returns bytes
// identical to the original.
func TestBlobScrubRepairsFromReplica(t *testing.T) {
	dir := t.TempDir()
	payload := []byte("checkpoint payload: cycle 123456 state")
	replica := map[string][]byte{"ddr4|mix0|0.10": payload}
	s := newTestServer(t, Config{WALDir: dir, CkptFetch: func(key string) []byte {
		return replica[key]
	}})
	if err := s.CkptSave("ddr4|mix0|0.10", payload); err != nil {
		t.Fatal(err)
	}

	// Bit-rot: flip a payload byte in the one stored blob file.
	ents, err := os.ReadDir(filepath.Join(dir, "checkpoints"))
	if err != nil || len(ents) != 1 {
		t.Fatalf("blob files: %v, %v", ents, err)
	}
	path := filepath.Join(dir, "checkpoints", ents[0].Name())
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-3] ^= 0x40
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	scanned, corrupt, repaired := s.Scrub()
	if scanned != 1 || corrupt != 1 || repaired != 1 {
		t.Fatalf("scrub = (%d scanned, %d corrupt, %d repaired), want (1,1,1)", scanned, corrupt, repaired)
	}
	if got := s.CkptLoad("ddr4|mix0|0.10"); !bytes.Equal(got, payload) {
		t.Fatalf("repaired blob = %q, want the replica payload", got)
	}
	if s.metrics.blobsCorrupt.Load() != 1 || s.metrics.blobsRepaired.Load() != 1 {
		t.Errorf("metrics corrupt=%d repaired=%d, want 1/1",
			s.metrics.blobsCorrupt.Load(), s.metrics.blobsRepaired.Load())
	}
	// A second pass finds nothing: the store is clean again.
	if _, corrupt, _ := s.Scrub(); corrupt != 0 {
		t.Error("scrub found corruption after the repair")
	}
}

// TestBlobScrubDeletesUnrecoverable: with no replica, a corrupt blob is
// removed so later loads miss cleanly instead of tripping on it again.
func TestBlobScrubDeletesUnrecoverable(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Config{WALDir: dir})
	if err := s.CkptSave("k1", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	ents, _ := os.ReadDir(filepath.Join(dir, "checkpoints"))
	path := filepath.Join(dir, "checkpoints", ents[0].Name())
	if err := os.WriteFile(path, []byte("garbage, not a framed blob"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, corrupt, repaired := s.Scrub(); corrupt != 1 || repaired != 0 {
		t.Fatalf("scrub corrupt=%d repaired=%d, want 1/0", corrupt, repaired)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Error("unrecoverable blob not deleted")
	}
	if s.ckpts.Len() != 0 {
		t.Error("store still counts the deleted blob")
	}
}

// TestBlobLoadDetectsCorruption: the read path itself verifies — a
// corrupt blob loads as nil (counted + deleted), which sends the
// caller down the CkptFetch read-through (natural repair on migration).
func TestBlobLoadDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Config{WALDir: dir})
	if err := s.CkptSave("k1", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	ents, _ := os.ReadDir(filepath.Join(dir, "checkpoints"))
	path := filepath.Join(dir, "checkpoints", ents[0].Name())
	b, _ := os.ReadFile(path)
	b[len(b)-1] ^= 0x80
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if got := s.CkptLoad("k1"); got != nil {
		t.Fatalf("corrupt blob loaded as %q", got)
	}
	if s.metrics.blobsCorrupt.Load() != 1 {
		t.Errorf("blobsCorrupt = %d, want 1", s.metrics.blobsCorrupt.Load())
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Error("corrupt blob not removed on load")
	}
}

// TestCorruptBlobResumeByteIdentical is the full repair-and-resume
// path: a job checkpoints, the daemon is force-killed, every blob on
// disk rots, and the restarted daemon — with the coordinator's replica
// as CkptFetch — detects the corruption, re-fetches the blob, resumes,
// and produces output byte-identical to an uninterrupted run.
func TestCorruptBlobResumeByteIdentical(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("multi-second simulation")
	}
	dir := t.TempDir()
	spec := JobSpec{Kind: "sim", System: "ddr4", Mix: "mix0", Instrs: 1_500_000, Frag: 0.1}
	s1, err := New(Config{Workers: 1, QueueMax: 16, WALDir: dir, CheckpointCycles: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	s1.Start()
	j1, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for s1.ckpts.Len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint blob appeared")
		}
		if j1.State().Terminal() {
			t.Fatalf("job finished before checkpointing (state %s)", j1.State())
		}
		time.Sleep(10 * time.Millisecond)
	}
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	_ = s1.Drain(expired) // forced shutdown, job journaled interrupted

	// Snapshot the replica tier (what CkptReplicate would have pushed to
	// the coordinator), then rot every local blob.
	ckptDir := filepath.Join(dir, "checkpoints")
	replica := map[string][]byte{}
	ents, err := os.ReadDir(ckptDir)
	if err != nil || len(ents) == 0 {
		t.Fatalf("checkpoint dir: %v, %v", ents, err)
	}
	for _, e := range ents {
		if filepath.Ext(e.Name()) != ".ckpt" {
			continue
		}
		path := filepath.Join(ckptDir, e.Name())
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		key, payload, err := parseBlob(b)
		if err != nil {
			t.Fatalf("stored blob unreadable before corruption: %v", err)
		}
		replica[key] = payload
		b[len(b)-2] ^= 0x10
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	s2 := newTestServer(t, Config{Workers: 1, WALDir: dir, CheckpointCycles: 100_000,
		CkptFetch: func(key string) []byte { return replica[key] }})
	j2 := s2.Job(j1.ID)
	if j2 == nil {
		t.Fatal("interrupted job not restored")
	}
	waitJob(t, j2, 120*time.Second)
	if st := j2.State(); st != StateDone {
		t.Fatalf("recovered job state %s, want done (%s)", st, jobEvents(j2))
	}
	if s2.metrics.blobsCorrupt.Load() == 0 {
		t.Error("corruption was never detected")
	}
	if !strings.Contains(jobEvents(j2), "fetched from cluster") {
		t.Errorf("no replica fetch in recovered job events:\n%s", jobEvents(j2))
	}

	ref := newTestServer(t, Config{Workers: 1})
	jr, err := ref.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, jr, 120*time.Second)
	if jr.Output() != j2.Output() {
		t.Error("resumed-after-repair output differs from uninterrupted reference")
	}
}

package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// MetricsBuf collects Prometheus text-exposition families so the scrape
// can be emitted in one deterministically sorted pass, regardless of
// which layer (server counters, simulator telemetry, cluster) added
// which family and in what order. Families sort by name; series within
// a family keep insertion order (bucket sequences stay contiguous).
type MetricsBuf struct {
	fams map[string]*promFamily
}

type promFamily struct {
	help  string
	typ   string
	lines []string
}

// NewMetricsBuf returns an empty collection buffer.
func NewMetricsBuf() *MetricsBuf {
	return &MetricsBuf{fams: make(map[string]*promFamily)}
}

func (b *MetricsBuf) family(name, help, typ string) *promFamily {
	f := b.fams[name]
	if f == nil {
		f = &promFamily{help: help, typ: typ}
		b.fams[name] = f
	}
	return f
}

// Counter adds a single-series counter family.
func (b *MetricsBuf) Counter(name, help string, v int64) {
	f := b.family(name, help, "counter")
	f.lines = append(f.lines, fmt.Sprintf("%s %d", name, v))
}

// CounterU is Counter for uint64 values (simulator telemetry).
func (b *MetricsBuf) CounterU(name, help string, v uint64) {
	f := b.family(name, help, "counter")
	f.lines = append(f.lines, fmt.Sprintf("%s %d", name, v))
}

// Gauge adds a single-series gauge family.
func (b *MetricsBuf) Gauge(name, help string, v int64) {
	f := b.family(name, help, "gauge")
	f.lines = append(f.lines, fmt.Sprintf("%s %d", name, v))
}

// Series appends one fully rendered exposition line (labels included)
// under the family `name` of the given type — labeled counters and
// histogram series. Help/type are recorded on the family's first use.
func (b *MetricsBuf) Series(name, help, typ, line string) {
	f := b.family(name, help, typ)
	f.lines = append(f.lines, line)
}

// Write renders the collected families sorted by name.
func (b *MetricsBuf) Write(w io.Writer) {
	names := make([]string, 0, len(b.fams))
	for name := range b.fams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := b.fams[name]
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, f.help, name, f.typ)
		for _, line := range f.lines {
			fmt.Fprintln(w, line)
		}
	}
}

// SecondsHist is a fixed-bucket cumulative latency histogram safe for
// concurrent observers — the backing store for both the job-duration
// histogram and the span-derived families (queue wait, run, checkpoint,
// cluster hop).
type SecondsHist struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64
	sum    float64
	n      int64
}

// NewSecondsHist builds a histogram over the given ascending bucket
// upper bounds.
func NewSecondsHist(bounds ...float64) *SecondsHist {
	return &SecondsHist{bounds: bounds, counts: make([]int64, len(bounds))}
}

// spanBounds are the bucket edges for span-derived latency families:
// finer at the bottom than the job-duration histogram because queue
// waits and checkpoint saves live in the milliseconds.
func spanBounds() []float64 {
	return []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 2.5, 5, 10, 30, 60}
}

// Observe records one value in seconds.
func (h *SecondsHist) Observe(v float64) {
	h.mu.Lock()
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
		}
	}
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// Collect renders the histogram into buf under `name`. labels, when
// non-empty (e.g. `kind="forward"`), is spliced into every series so
// several histograms can share one family.
func (h *SecondsHist) Collect(buf *MetricsBuf, name, help, labels string) {
	h.mu.Lock()
	counts := append([]int64(nil), h.counts...)
	sum, n := h.sum, h.n
	h.mu.Unlock()
	sep := ""
	if labels != "" {
		sep = ","
	}
	for i, b := range h.bounds {
		buf.Series(name, help, "histogram",
			fmt.Sprintf("%s_bucket{%s%sle=%q} %d", name, labels, sep, fmt.Sprintf("%g", b), counts[i]))
	}
	buf.Series(name, help, "histogram",
		fmt.Sprintf("%s_bucket{%s%sle=\"+Inf\"} %d", name, labels, sep, n))
	if labels == "" {
		buf.Series(name, help, "histogram", fmt.Sprintf("%s_sum %g", name, sum))
		buf.Series(name, help, "histogram", fmt.Sprintf("%s_count %d", name, n))
	} else {
		buf.Series(name, help, "histogram", fmt.Sprintf("%s_sum{%s} %g", name, labels, sum))
		buf.Series(name, help, "histogram", fmt.Sprintf("%s_count{%s} %d", name, labels, n))
	}
}

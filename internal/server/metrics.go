package server

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"eruca/internal/obs"
	"eruca/internal/telemetry"
)

// metrics is a dependency-free Prometheus-text exporter: fixed counters
// for the admission path, per-exit-class completion counters, cache
// hit/miss counters, a job-latency histogram, and the span-derived
// latency families fed by trace closure (zeros when tracing is off).
// Gauges (queue depth, in-flight, runner dedup counters) are sampled at
// scrape time by the server, not stored here.
type metrics struct {
	submitted        atomic.Int64
	rejectedFull     atomic.Int64
	rejectedDraining atomic.Int64
	rejectedInvalid  atomic.Int64
	rejectedReadOnly atomic.Int64
	blobsCorrupt     atomic.Int64
	blobsRepaired    atomic.Int64
	cacheHits        atomic.Int64
	cacheMisses      atomic.Int64
	idemReplayed     atomic.Int64
	recovered        atomic.Int64
	migratedIn       atomic.Int64
	remoteCacheHits  atomic.Int64
	inflight         atomic.Int64
	searchPoints     atomic.Int64
	searchCacheHits  atomic.Int64
	searchFrontier   atomic.Int64 // gauge: latest reported frontier size

	mu        sync.Mutex
	completed map[string]int64 // exit class -> count
	hist      *SecondsHist

	// Span-derived latency histograms, fed by the tracer's Observe hook
	// on span closure — latency breakdown without trace inspection.
	queueWait *SecondsHist
	runLat    *SecondsHist
	ckptLat   *SecondsHist
}

func newMetrics() *metrics {
	return &metrics{
		completed: make(map[string]int64),
		hist:      NewSecondsHist(0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120),
		queueWait: NewSecondsHist(spanBounds()...),
		runLat:    NewSecondsHist(spanBounds()...),
		ckptLat:   NewSecondsHist(spanBounds()...),
	}
}

// jobDone records one completed job: its exit class and wall latency.
func (m *metrics) jobDone(class string, seconds float64) {
	m.mu.Lock()
	m.completed[class]++
	m.mu.Unlock()
	m.hist.Observe(seconds)
}

// observeSpan is the tracer Observe hook: span closure drives the
// queue-wait / run / checkpoint latency families.
func (m *metrics) observeSpan(sp obs.Span) {
	secs := sp.Duration().Seconds()
	switch sp.Kind {
	case obs.KindQueueWait:
		m.queueWait.Observe(secs)
	case obs.KindRun:
		m.runLat.Observe(secs)
	case obs.KindCheckpointSave:
		m.ckptLat.Observe(secs)
	}
}

// gauges are the point-in-time values the server samples at scrape.
type gauges struct {
	queueDepth  int
	inflight    int64
	cacheSize   int
	draining    int
	degraded    int
	simLaunched int64
	simJoined   int64
	runnerPools int
	spansTotal  uint64
}

// collect renders the service families into buf.
func (m *metrics) collect(buf *MetricsBuf, g gauges) {
	buf.Counter("eruca_jobs_submitted_total", "Jobs accepted into the queue.", m.submitted.Load())
	buf.Counter("eruca_jobs_rejected_full_total", "Jobs rejected with 429 because the queue was full.", m.rejectedFull.Load())
	buf.Counter("eruca_jobs_rejected_draining_total", "Jobs rejected with 503 during drain.", m.rejectedDraining.Load())
	buf.Counter("eruca_jobs_rejected_invalid_total", "Jobs rejected with 400 at validation.", m.rejectedInvalid.Load())
	buf.Counter("eruca_jobs_rejected_readonly_total", "Jobs rejected with 503 while the daemon is degraded read-only.", m.rejectedReadOnly.Load())
	buf.Counter("eruca_blobs_corrupt_total", "Checkpoint blobs that failed sha256 verification on read or scrub.", m.blobsCorrupt.Load())
	buf.Counter("eruca_blobs_repaired_total", "Corrupt checkpoint blobs re-fetched from a cluster replica by the scrubber.", m.blobsRepaired.Load())
	buf.Counter("eruca_result_cache_hits_total", "Jobs served from the content-addressed result cache.", m.cacheHits.Load())
	buf.Counter("eruca_result_cache_misses_total", "Jobs that had to execute.", m.cacheMisses.Load())
	buf.Counter("eruca_jobs_idem_replayed_total", "Submissions answered with an existing job via Idempotency-Key.", m.idemReplayed.Load())
	buf.Counter("eruca_jobs_recovered_total", "Jobs re-enqueued from the journal at boot.", m.recovered.Load())
	buf.Counter("eruca_jobs_migrated_in_total", "Jobs accepted past the admission bound after a peer's eviction.", m.migratedIn.Load())
	buf.Counter("eruca_result_cache_remote_hits_total", "Jobs served via the sharded cache's read-through to a peer.", m.remoteCacheHits.Load())
	buf.Counter("eruca_sim_runs_total", "Simulations actually executed by the shared runners.", g.simLaunched)
	buf.Counter("eruca_sim_dedup_total", "Simulation requests served by an existing singleflight flight.", g.simJoined)
	buf.Counter("eruca_search_points_total", "Design-point evaluations requested by search jobs.", m.searchPoints.Load())
	buf.Counter("eruca_search_cache_hits_total", "Search evaluations served without a new simulation (result cache, cluster shard, or search snapshot).", m.searchCacheHits.Load())
	buf.CounterU("eruca_spans_total", "Trace spans finished since boot (0 while tracing is disabled).", g.spansTotal)

	m.mu.Lock()
	classes := make([]string, 0, len(m.completed))
	for cl := range m.completed {
		classes = append(classes, cl)
	}
	sort.Strings(classes)
	for _, cl := range classes {
		buf.Series("eruca_jobs_completed_total",
			"Jobs finished, by exit class (same 3/4/5 taxonomy as the CLI exit codes).", "counter",
			fmt.Sprintf("eruca_jobs_completed_total{class=%q} %d", cl, m.completed[cl]))
	}
	m.mu.Unlock()

	m.hist.Collect(buf, "eruca_job_duration_seconds", "Wall latency of completed jobs.", "")
	m.queueWait.Collect(buf, "eruca_job_queue_wait_seconds", "Admission-to-worker-pickup latency, from queue_wait span closure.", "")
	m.runLat.Collect(buf, "eruca_job_run_seconds", "Execution latency, from run span closure.", "")
	m.ckptLat.Collect(buf, "eruca_job_checkpoint_seconds", "Checkpoint save latency, from checkpoint_save span closure.", "")

	buf.Gauge("eruca_queue_depth", "Jobs waiting in the priority queue.", int64(g.queueDepth))
	buf.Gauge("eruca_jobs_inflight", "Jobs currently executing.", g.inflight)
	buf.Gauge("eruca_result_cache_entries", "Resident result-cache entries.", int64(g.cacheSize))
	buf.Gauge("eruca_runner_pools", "Distinct exp.Runner parameter groups alive.", int64(g.runnerPools))
	buf.Gauge("eruca_search_frontier_size", "Pareto-frontier size last reported by a search job.", m.searchFrontier.Load())
	buf.Gauge("eruca_draining", "1 while the daemon is draining.", int64(g.draining))
	buf.Gauge("eruca_degraded", "1 once a journal write failed and the daemon went read-only.", int64(g.degraded))
}

// telemetryHelp documents the simulator-level counters on /metrics.
var telemetryHelp = map[string]string{
	"acts":              "DRAM ACT commands issued.",
	"pres":              "DRAM PRE commands issued.",
	"reads":             "DRAM column reads issued.",
	"writes":            "DRAM column writes issued.",
	"refreshes":         "DRAM REF commands issued.",
	"prealls":           "DRAM PREA (precharge-all) commands issued.",
	"ewlr_hits":         "ACTs that reused an already-driven MWL (EWLR hits).",
	"ewlr_misses":       "ACTs under an EWLR scheme that had to drive the MWL.",
	"partial_pres":      "PREs that left the shared MWL driven (partial precharge).",
	"plane_conflicts":   "PREs forced by plane-latch conflicts (Fig. 13b).",
	"rap_redirects":     "ACTs whose plane ID was RAP-inverted to dodge a collision.",
	"ddb_saved_ck":      "Bus cycles of tCCD_L/tWTR_L recovered by the dual data bus.",
	"ff_cycles_skipped": "Bus cycles jumped by the event-driven run loop.",
	"vpp_acts_saved":    "VPP wordline activations saved (= EWLR hits).",
	"trace_dropped":     "Trace events dropped beyond the capture cap.",
}

// collectTelemetry renders the simulator-level metrics: every mechanism
// counter summed across the given telemetry sets as
// eruca_sim_<name>_total, and every log2 histogram merged into a
// Prometheus histogram eruca_sim_<name> whose bucket bounds are the
// Hist power-of-two upper edges (only populated buckets are emitted to
// keep the exposition small).
func collectTelemetry(buf *MetricsBuf, sets []*telemetry.Set) {
	counters := map[string]uint64{}
	type hist struct {
		buckets [telemetry.HistBuckets]uint64
		sum     int64
		n       uint64
	}
	hists := map[string]*hist{}
	for _, s := range sets {
		s.C.Each(func(name string, v uint64) { counters[name] += v })
		s.C.Hists(func(name string, h *telemetry.Hist) {
			m := hists[name]
			if m == nil {
				m = &hist{}
				hists[name] = m
			}
			b := h.Buckets()
			for i, c := range b {
				m.buckets[i] += c
			}
			m.sum += h.Sum()
			m.n += h.N()
		})
	}
	for name, v := range counters {
		metric := "eruca_sim_" + name + "_total"
		help := telemetryHelp[name]
		if help == "" {
			help = "Simulator counter " + name + "."
		}
		buf.CounterU(metric, help, v)
	}
	for name, h := range hists {
		metric := "eruca_sim_" + name
		help := fmt.Sprintf("Simulator log2 histogram (%s), bus cycles.", name)
		var cum uint64
		for i, c := range h.buckets {
			cum += c
			if c == 0 {
				continue // sparse: only populated bucket edges
			}
			buf.Series(metric, help, "histogram",
				fmt.Sprintf("%s_bucket{le=\"%d\"} %d", metric, telemetry.BucketUpper(i), cum))
		}
		buf.Series(metric, help, "histogram", fmt.Sprintf("%s_bucket{le=\"+Inf\"} %d", metric, h.n))
		buf.Series(metric, help, "histogram", fmt.Sprintf("%s_sum %d", metric, h.sum))
		buf.Series(metric, help, "histogram", fmt.Sprintf("%s_count %d", metric, h.n))
	}
}

package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"eruca/internal/telemetry"
)

// metrics is a dependency-free Prometheus-text exporter: fixed counters
// for the admission path, per-exit-class completion counters, cache
// hit/miss counters, and a job-latency histogram. Gauges (queue depth,
// in-flight, runner dedup counters) are sampled at scrape time by the
// server, not stored here.
type metrics struct {
	submitted        atomic.Int64
	rejectedFull     atomic.Int64
	rejectedDraining atomic.Int64
	rejectedInvalid  atomic.Int64
	cacheHits        atomic.Int64
	cacheMisses      atomic.Int64
	idemReplayed     atomic.Int64
	recovered        atomic.Int64
	migratedIn       atomic.Int64
	remoteCacheHits  atomic.Int64
	inflight         atomic.Int64
	searchPoints     atomic.Int64
	searchCacheHits  atomic.Int64
	searchFrontier   atomic.Int64 // gauge: latest reported frontier size

	mu        sync.Mutex
	completed map[string]int64 // exit class -> count
	hist      histogram
}

func newMetrics() *metrics {
	return &metrics{
		completed: make(map[string]int64),
		hist:      histogram{bounds: []float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120}},
	}
}

// jobDone records one completed job: its exit class and wall latency.
func (m *metrics) jobDone(class string, seconds float64) {
	m.mu.Lock()
	m.completed[class]++
	m.hist.observe(seconds)
	m.mu.Unlock()
}

// histogram is a fixed-bucket cumulative histogram.
type histogram struct {
	bounds []float64
	counts []int64
	sum    float64
	n      int64
}

func (h *histogram) observe(v float64) {
	if h.counts == nil {
		h.counts = make([]int64, len(h.bounds))
	}
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
		}
	}
	h.sum += v
	h.n++
}

// gauges are the point-in-time values the server samples at scrape.
type gauges struct {
	queueDepth  int
	inflight    int64
	cacheSize   int
	draining    int
	simLaunched int64
	simJoined   int64
	runnerPools int
}

// write renders the exposition text.
func (m *metrics) write(w io.Writer, g gauges) {
	c := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gg := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	c("eruca_jobs_submitted_total", "Jobs accepted into the queue.", m.submitted.Load())
	c("eruca_jobs_rejected_full_total", "Jobs rejected with 429 because the queue was full.", m.rejectedFull.Load())
	c("eruca_jobs_rejected_draining_total", "Jobs rejected with 503 during drain.", m.rejectedDraining.Load())
	c("eruca_jobs_rejected_invalid_total", "Jobs rejected with 400 at validation.", m.rejectedInvalid.Load())
	c("eruca_result_cache_hits_total", "Jobs served from the content-addressed result cache.", m.cacheHits.Load())
	c("eruca_result_cache_misses_total", "Jobs that had to execute.", m.cacheMisses.Load())
	c("eruca_jobs_idem_replayed_total", "Submissions answered with an existing job via Idempotency-Key.", m.idemReplayed.Load())
	c("eruca_jobs_recovered_total", "Jobs re-enqueued from the journal at boot.", m.recovered.Load())
	c("eruca_jobs_migrated_in_total", "Jobs accepted past the admission bound after a peer's eviction.", m.migratedIn.Load())
	c("eruca_result_cache_remote_hits_total", "Jobs served via the sharded cache's read-through to a peer.", m.remoteCacheHits.Load())
	c("eruca_sim_runs_total", "Simulations actually executed by the shared runners.", g.simLaunched)
	c("eruca_sim_dedup_total", "Simulation requests served by an existing singleflight flight.", g.simJoined)
	c("eruca_search_points_total", "Design-point evaluations requested by search jobs.", m.searchPoints.Load())
	c("eruca_search_cache_hits_total", "Search evaluations served without a new simulation (result cache, cluster shard, or search snapshot).", m.searchCacheHits.Load())

	m.mu.Lock()
	classes := make([]string, 0, len(m.completed))
	for cl := range m.completed {
		classes = append(classes, cl)
	}
	sort.Strings(classes)
	fmt.Fprintf(w, "# HELP eruca_jobs_completed_total Jobs finished, by exit class (same 3/4/5 taxonomy as the CLI exit codes).\n")
	fmt.Fprintf(w, "# TYPE eruca_jobs_completed_total counter\n")
	for _, cl := range classes {
		fmt.Fprintf(w, "eruca_jobs_completed_total{class=%q} %d\n", cl, m.completed[cl])
	}
	fmt.Fprintf(w, "# HELP eruca_job_duration_seconds Wall latency of completed jobs.\n")
	fmt.Fprintf(w, "# TYPE eruca_job_duration_seconds histogram\n")
	for i, b := range m.hist.bounds {
		var n int64
		if m.hist.counts != nil {
			n = m.hist.counts[i]
		}
		fmt.Fprintf(w, "eruca_job_duration_seconds_bucket{le=%q} %d\n", fmt.Sprintf("%g", b), n)
	}
	fmt.Fprintf(w, "eruca_job_duration_seconds_bucket{le=\"+Inf\"} %d\n", m.hist.n)
	fmt.Fprintf(w, "eruca_job_duration_seconds_sum %g\n", m.hist.sum)
	fmt.Fprintf(w, "eruca_job_duration_seconds_count %d\n", m.hist.n)
	m.mu.Unlock()

	gg("eruca_queue_depth", "Jobs waiting in the priority queue.", int64(g.queueDepth))
	gg("eruca_jobs_inflight", "Jobs currently executing.", g.inflight)
	gg("eruca_result_cache_entries", "Resident result-cache entries.", int64(g.cacheSize))
	gg("eruca_runner_pools", "Distinct exp.Runner parameter groups alive.", int64(g.runnerPools))
	gg("eruca_search_frontier_size", "Pareto-frontier size last reported by a search job.", m.searchFrontier.Load())
	gg("eruca_draining", "1 while the daemon is draining.", int64(g.draining))
}

// telemetryHelp documents the simulator-level counters on /metrics.
var telemetryHelp = map[string]string{
	"acts":              "DRAM ACT commands issued.",
	"pres":              "DRAM PRE commands issued.",
	"reads":             "DRAM column reads issued.",
	"writes":            "DRAM column writes issued.",
	"refreshes":         "DRAM REF commands issued.",
	"prealls":           "DRAM PREA (precharge-all) commands issued.",
	"ewlr_hits":         "ACTs that reused an already-driven MWL (EWLR hits).",
	"ewlr_misses":       "ACTs under an EWLR scheme that had to drive the MWL.",
	"partial_pres":      "PREs that left the shared MWL driven (partial precharge).",
	"plane_conflicts":   "PREs forced by plane-latch conflicts (Fig. 13b).",
	"rap_redirects":     "ACTs whose plane ID was RAP-inverted to dodge a collision.",
	"ddb_saved_ck":      "Bus cycles of tCCD_L/tWTR_L recovered by the dual data bus.",
	"ff_cycles_skipped": "Bus cycles jumped by the event-driven run loop.",
	"vpp_acts_saved":    "VPP wordline activations saved (= EWLR hits).",
	"trace_dropped":     "Trace events dropped beyond the capture cap.",
}

// writeTelemetry renders the simulator-level metrics: every mechanism
// counter summed across the given telemetry sets as
// eruca_sim_<name>_total, and every log2 histogram merged into a
// Prometheus histogram eruca_sim_<name> whose bucket bounds are the
// Hist power-of-two upper edges (only populated buckets are emitted to
// keep the exposition small).
func writeTelemetry(w io.Writer, sets []*telemetry.Set) {
	counters := map[string]uint64{}
	type hist struct {
		buckets [telemetry.HistBuckets]uint64
		sum     int64
		n       uint64
	}
	hists := map[string]*hist{}
	for _, s := range sets {
		s.C.Each(func(name string, v uint64) { counters[name] += v })
		s.C.Hists(func(name string, h *telemetry.Hist) {
			m := hists[name]
			if m == nil {
				m = &hist{}
				hists[name] = m
			}
			b := h.Buckets()
			for i, c := range b {
				m.buckets[i] += c
			}
			m.sum += h.Sum()
			m.n += h.N()
		})
	}
	names := make([]string, 0, len(counters))
	for name := range counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		metric := "eruca_sim_" + name + "_total"
		help := telemetryHelp[name]
		if help == "" {
			help = "Simulator counter " + name + "."
		}
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", metric, help, metric, metric, counters[name])
	}
	hnames := make([]string, 0, len(hists))
	for name := range hists {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		h := hists[name]
		metric := "eruca_sim_" + name
		fmt.Fprintf(w, "# HELP %s Simulator log2 histogram (%s), bus cycles.\n# TYPE %s histogram\n", metric, name, metric)
		var cum uint64
		for i, c := range h.buckets {
			cum += c
			if c == 0 {
				continue // sparse: only populated bucket edges
			}
			fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", metric, telemetry.BucketUpper(i), cum)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", metric, h.n)
		fmt.Fprintf(w, "%s_sum %d\n", metric, h.sum)
		fmt.Fprintf(w, "%s_count %d\n", metric, h.n)
	}
}

package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"eruca/internal/telemetry"
)

func getTelemetry(t *testing.T, base, id string) (int, telemetry.Snapshot) {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/telemetry?recent=16")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap telemetry.Snapshot
	_ = json.NewDecoder(resp.Body).Decode(&snap)
	return resp.StatusCode, snap
}

// TestTelemetryEndpoint drives the live-introspection flow end to end:
// submit a job, poll its telemetry while it may still be running (the
// endpoint must serve mid-run), then assert the finished job's counters
// reflect the simulation it executed.
func TestTelemetryEndpoint(t *testing.T) {
	_, hs := newHTTPServer(t, Config{Workers: 2})
	code, v := postJob(t, hs.URL, JobSpec{Kind: "sim", System: "vsb-ewlr-rap-ddb", Mix: "mix0", Instrs: 30_000, Frag: 0.1})
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	// Mid-run polling must never error regardless of job state.
	for i := 0; i < 3; i++ {
		if code, _ := getTelemetry(t, hs.URL, v.ID); code != http.StatusOK {
			t.Fatalf("mid-run telemetry = %d", code)
		}
		time.Sleep(5 * time.Millisecond)
	}
	final := waitDone(t, hs.URL, v.ID, 30*time.Second)
	if final.State != StateDone {
		t.Fatalf("job state = %s (%+v)", final.State, final.Error)
	}
	code, snap := getTelemetry(t, hs.URL, v.ID)
	if code != http.StatusOK {
		t.Fatalf("telemetry = %d", code)
	}
	if snap.Counters["acts"] == 0 || snap.Counters["reads"] == 0 {
		t.Fatalf("counters empty after run: %v", snap.Counters)
	}
	if snap.Counters["plane_conflicts"] == 0 {
		t.Errorf("VSB job observed no plane conflicts: %v", snap.Counters)
	}
	if snap.Hists["read_latency_ck"].N == 0 {
		t.Error("read-latency histogram empty")
	}
	if len(snap.Runs) == 0 {
		t.Error("no run registered")
	}
	if len(snap.Recent) == 0 {
		t.Error("no recent events in snapshot")
	}

	// Unknown job: 404.
	if code, _ := getTelemetry(t, hs.URL, "job-999999"); code != http.StatusNotFound {
		t.Errorf("unknown job telemetry = %d, want 404", code)
	}

	// /metrics aggregates the simulator counters across jobs.
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var metricsText strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		metricsText.WriteString(sc.Text() + "\n")
	}
	for _, want := range []string{"eruca_sim_acts_total", "eruca_sim_plane_conflicts_total", "eruca_sim_read_latency_ck_bucket", "eruca_sim_ewlr_hits_total"} {
		if !strings.Contains(metricsText.String(), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestTelemetrySSE checks the streaming variant: at least one snapshot
// frame arrives, and the stream ends with an "event: done" frame after
// the job completes.
func TestTelemetrySSE(t *testing.T) {
	_, hs := newHTTPServer(t, Config{Workers: 2})
	code, v := postJob(t, hs.URL, JobSpec{Kind: "sim", System: "ddr4", Mix: "mix0", Instrs: 20_000, Frag: 0.1})
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	resp, err := http.Get(hs.URL + "/v1/jobs/" + v.ID + "/telemetry?sse=1&interval_ms=50")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	var frames, doneFrames int
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "event: done") {
			doneFrames++
		}
		if strings.HasPrefix(line, "data: ") {
			frames++
			var snap telemetry.Snapshot
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &snap); err != nil {
				t.Fatalf("bad SSE frame: %v\n%s", err, line)
			}
		}
	}
	if frames == 0 {
		t.Fatal("no telemetry frames streamed")
	}
	if doneFrames != 1 {
		t.Fatalf("done frames = %d, want 1", doneFrames)
	}
}

// TestPprofGated proves the profiling surface is mounted only when
// configured.
func TestPprofGated(t *testing.T) {
	_, off := newHTTPServer(t, Config{Workers: 1})
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof without Config.Pprof = %d, want 404", resp.StatusCode)
	}
	_, on := newHTTPServer(t, Config{Workers: 1, Pprof: true})
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof with Config.Pprof = %d, want 200", resp.StatusCode)
	}
}

// TestAttributionSweepJob proves the attribution experiment is
// reachable through the job API.
func TestAttributionSweepJob(t *testing.T) {
	_, hs := newHTTPServer(t, Config{Workers: 2})
	code, v := postJob(t, hs.URL, JobSpec{Kind: "sweep", Exp: "attribution", Planes: 4,
		Mixes: []string{"mix0"}, Instrs: 8_000, Frag: 0.1})
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	final := waitDone(t, hs.URL, v.ID, 60*time.Second)
	if final.State != StateDone {
		t.Fatalf("attribution job state = %s (%+v)", final.State, final.Error)
	}
	out := getJob(t, hs.URL, v.ID).Result
	if !strings.Contains(out, "Mechanism attribution") || !strings.Contains(out, "ewlr-hit") {
		t.Fatalf("unexpected attribution output:\n%s", out)
	}
}

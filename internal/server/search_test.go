package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"eruca/internal/search"
)

// searchJobSpec is a small, fast autotuning run: a 2x2 space with two
// halving rungs, cheap enough for every test to run it end to end.
func searchJobSpec() JobSpec {
	return JobSpec{
		Kind: "search",
		Search: &search.Spec{
			Dims: []search.DimSpec{
				{Name: "planes", Values: []string{"1", "2"}},
				{Name: "ddb"},
			},
			Seed:   7,
			Instrs: 4000,
			Rungs:  2,
		},
	}
}

// TestSearchJobEndToEnd submits a search job, checks the streamed
// frontier lines, the parsed result, the Prometheus counters, and that
// an identical resubmission is a pure result-cache hit (zero new point
// evaluations).
func TestSearchJobEndToEnd(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	j, err := s.Submit(searchJobSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j, 120*time.Second)
	if st := j.State(); st != StateDone {
		t.Fatalf("search job state %s, want done (%s)", st, jobEvents(j))
	}
	res, err := search.ParseResult([]byte(j.Output()))
	if err != nil {
		t.Fatalf("unparsable search output: %v\n%s", err, j.Output())
	}
	if len(res.Frontier) == 0 || res.PointsEvaluated == 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	for _, p := range res.Frontier {
		if p.IPC <= 0 || p.EnergyNJ <= 0 {
			t.Errorf("implausible frontier point %+v", p)
		}
	}

	// The SSE feed carried incumbent-frontier lines.
	if ev := jobEvents(j); !strings.Contains(ev, "frontier (") {
		t.Errorf("no frontier lines in job events:\n%s", ev)
	}

	// Search metrics are exposed on /metrics with live values.
	points := s.metrics.searchPoints.Load()
	if points == 0 {
		t.Error("eruca_search_points_total stayed zero")
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"eruca_search_points_total",
		"eruca_search_cache_hits_total",
		"eruca_search_frontier_size",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}

	// Identical resubmission: served from the content-addressed cache,
	// byte-identical, no new point evaluations.
	j2, err := s.Submit(searchJobSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j2, 30*time.Second)
	if j2.Output() != j.Output() {
		t.Error("resubmitted search output differs")
	}
	if got := s.metrics.searchPoints.Load(); got != points {
		t.Errorf("resubmission evaluated %d new points", got-points)
	}
}

// TestEvalJobKind exercises the "eval" job directly: a partial
// assignment is completed with defaults and canonicalized, and two
// spellings of the same canonical point share one simulation through
// the runner cache even though their job hashes differ.
func TestEvalJobKind(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	j, err := s.Submit(JobSpec{Kind: "eval", Point: map[string]string{"planes": "2", "ewlr": "off"}, Instrs: 4000})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j, 60*time.Second)
	if st := j.State(); st != StateDone {
		t.Fatalf("eval job state %s, want done (%s)", st, jobEvents(j))
	}
	var sum EvalSummary
	if err := json.Unmarshal([]byte(j.Output()), &sum); err != nil {
		t.Fatalf("unparsable eval output: %v\n%s", err, j.Output())
	}
	if !strings.Contains(sum.Point, "planes=2") || !strings.Contains(sum.Point, "ewlr_bits=-") {
		t.Errorf("point not canonicalized: %q", sum.Point)
	}
	if sum.IPC <= 0 || sum.EnergyNJ <= 0 {
		t.Errorf("implausible metrics: %+v", sum)
	}

	// Same canonical point, different spelling (ewlr_bits is masked
	// under ewlr=off): new job hash, same simulation — the runner's
	// launched counter must not move.
	launched, _, _ := s.runnerCounters()
	j2, err := s.Submit(JobSpec{Kind: "eval",
		Point: map[string]string{"planes": "2", "ewlr": "off", "ewlr_bits": "4"}, Instrs: 4000})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j2, 60*time.Second)
	if st := j2.State(); st != StateDone {
		t.Fatalf("aliased eval job state %s (%s)", st, jobEvents(j2))
	}
	if l2, _, _ := s.runnerCounters(); l2 != launched {
		t.Errorf("aliased point re-simulated: launched %d -> %d", launched, l2)
	}
	var sum2 EvalSummary
	if err := json.Unmarshal([]byte(j2.Output()), &sum2); err != nil {
		t.Fatal(err)
	}
	if sum2 != sum {
		t.Errorf("aliased point scored differently: %+v vs %+v", sum2, sum)
	}
}

// TestSearchValidation pins admission-time rejection: unseeded search
// specs (typed ErrUnseeded) and malformed eval points never cost a
// queue slot.
func TestSearchValidation(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	spec := searchJobSpec()
	spec.Search.Seed = 0
	if _, err := s.Submit(spec); !errors.Is(err, search.ErrUnseeded) {
		t.Errorf("unseeded search: err = %v, want ErrUnseeded", err)
	}
	if _, err := s.Submit(JobSpec{Kind: "search"}); err == nil {
		t.Error("search job without a spec accepted")
	}
	if _, err := s.Submit(JobSpec{Kind: "eval"}); err == nil {
		t.Error("eval job without a point accepted")
	}
	if _, err := s.Submit(JobSpec{Kind: "eval", Point: map[string]string{"planes": "3"}}); err == nil {
		t.Error("off-ladder eval point accepted")
	}
	if _, err := s.Submit(JobSpec{Kind: "eval", Point: map[string]string{"warp": "9"}}); err == nil {
		t.Error("unknown eval dimension accepted")
	}
}

// TestSearchEvalRemoteFanout proves the cluster hook is consulted per
// point and its outputs feed the frontier: a hook that claims every
// planes=2 point with a fabricated dominating summary must leave its
// IPC on the frontier.
func TestSearchEvalRemoteFanout(t *testing.T) {
	var forwarded atomic.Int64
	cfg := Config{Workers: 2}
	cfg.EvalRemote = func(ctx context.Context, spec JobSpec) (string, bool, error) {
		a, err := search.ParseAssignment(spec.Point)
		if err != nil {
			t.Errorf("EvalRemote got an invalid point: %v", err)
			return "", false, nil
		}
		if a["planes"] != "2" {
			return "", false, nil // not ours: evaluate locally
		}
		forwarded.Add(1)
		b, err := json.MarshalIndent(EvalSummary{
			Point: search.Key(a), Instrs: spec.Instrs,
			IPC: 99, EnergyNJ: 1, AreaPct: 0.5,
		}, "", "  ")
		if err != nil {
			return "", true, err
		}
		return string(b) + "\n", true, nil
	}
	s := newTestServer(t, cfg)
	j, err := s.Submit(searchJobSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j, 120*time.Second)
	if st := j.State(); st != StateDone {
		t.Fatalf("search job state %s (%s)", st, jobEvents(j))
	}
	if forwarded.Load() == 0 {
		t.Fatal("EvalRemote never handled a point")
	}
	res, err := search.ParseResult([]byte(j.Output()))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frontier) == 0 || res.Frontier[0].IPC != 99 {
		t.Errorf("forwarded metrics missing from frontier: %+v", res.Frontier)
	}
}

// TestSearchRestartResume kills a daemon mid-search and restarts it:
// the recovered job must resume from the search-state blob (restoring
// its evaluated points instead of starting over) and finish with output
// byte-identical to an uninterrupted run.
func TestSearchRestartResume(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("multi-second simulations")
	}
	dir := t.TempDir()
	spec := JobSpec{
		Kind: "search",
		Search: &search.Spec{
			Dims: []search.DimSpec{
				{Name: "planes", Values: []string{"1", "2"}},
				{Name: "ddb"},
			},
			Seed:         7,
			Instrs:       400_000,
			Rungs:        2,
			RefineRounds: -1,
		},
	}
	s1, err := New(Config{Workers: 1, SimParallel: 1, QueueMax: 16, WALDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s1.Start()
	j1, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	key := "search|" + j1.Hash
	deadline := time.Now().Add(120 * time.Second)
	for s1.ckpts.Load(key) == nil {
		if time.Now().After(deadline) {
			t.Fatal("no search-state blob appeared")
		}
		if j1.State().Terminal() {
			t.Fatalf("search finished before checkpointing (state %s)", j1.State())
		}
		time.Sleep(10 * time.Millisecond)
	}
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s1.Drain(expired); err == nil {
		t.Fatal("forced drain reported success")
	}
	if st := j1.State(); st != StateCanceled {
		t.Fatalf("interrupted search state %s, want canceled", st)
	}

	s2 := newTestServer(t, Config{Workers: 1, SimParallel: 1, WALDir: dir})
	j2 := s2.Job(j1.ID)
	if j2 == nil {
		t.Fatal("interrupted search not restored")
	}
	waitJob(t, j2, 300*time.Second)
	if st := j2.State(); st != StateDone {
		t.Fatalf("recovered search state %s, want done (%s)", st, jobEvents(j2))
	}
	if !strings.Contains(jobEvents(j2), "restored") {
		t.Errorf("no restore line in recovered search events:\n%s", jobEvents(j2))
	}

	ref := newTestServer(t, Config{Workers: 1})
	jr, err := ref.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, jr, 300*time.Second)
	if jr.Output() != j2.Output() {
		t.Errorf("resumed search output differs from uninterrupted reference:\n%s\nvs\n%s",
			j2.Output(), jr.Output())
	}
}

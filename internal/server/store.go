package server

import (
	"container/list"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"eruca/internal/obs"
	"eruca/internal/telemetry"
)

// State is a job's lifecycle position.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Job is one submitted spec moving through the queue. All fields behind
// mu; Done closes when the job reaches a terminal state.
type Job struct {
	ID   string
	Hash string
	Spec JobSpec

	ctx    context.Context
	cancel context.CancelFunc
	events *eventLog
	tel    *telemetry.Set
	done   chan struct{}

	// trace is the job's position in its distributed trace (the admit
	// span's context; zero when tracing is disabled). Set once at admit,
	// before the job is visible to workers.
	trace obs.SpanContext

	// idemKey is the client's Idempotency-Key (empty when none); a
	// resubmission with the same key returns this job instead of a new
	// one, across restarts when the WAL is enabled.
	idemKey string
	// onTerminal, when set, observes the terminal transition (the WAL
	// journals it). Called outside mu, after done closes.
	onTerminal func(*Job)

	mu        sync.Mutex
	queueSpan *obs.ActiveSpan // open queue_wait span, handed off to the worker
	state     State
	output    string
	errMsg    string
	errClass  string
	exitCode  int
	cacheHit  bool
	// interrupted marks a job killed by a forced shutdown (drain
	// deadline); its terminal record is withheld from the journal so a
	// restarted daemon re-runs it.
	interrupted bool
	recovered   bool
	created     time.Time
	started     time.Time
	finished    time.Time
}

// markInterrupted flags the job as killed by a forced shutdown.
func (j *Job) markInterrupted() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return false
	}
	j.interrupted = true
	return true
}

// Done closes when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// TraceContext reports the job's trace position (invalid when tracing
// is disabled) — the parent for lifecycle spans and the key clients use
// against GET /v1/jobs/{id}/trace.
func (j *Job) TraceContext() obs.SpanContext { return j.trace }

// setQueueSpan parks the open queue_wait span for the worker to close.
func (j *Job) setQueueSpan(sp *obs.ActiveSpan) {
	if sp == nil {
		return
	}
	j.mu.Lock()
	j.queueSpan = sp
	j.mu.Unlock()
}

// takeQueueSpan claims the parked queue_wait span (nil when tracing is
// off or it was already taken).
func (j *Job) takeQueueSpan() *obs.ActiveSpan {
	j.mu.Lock()
	sp := j.queueSpan
	j.queueSpan = nil
	j.mu.Unlock()
	return sp
}

// IdemKey reports the client idempotency key the job was submitted
// under ("" when none) — the cluster heartbeat carries it so a migrated
// re-enqueue dedups against client retries.
func (j *Job) IdemKey() string { return j.idemKey }

// Telemetry is the job-scoped counter/trace set: simulations launched on
// behalf of this job feed it live, so GET /v1/jobs/{id}/telemetry
// introspects an in-flight run. Results served from the result cache or
// joined onto another job's in-flight simulation contribute no fresh
// events (the counters then reflect only what this job itself executed).
func (j *Job) Telemetry() *telemetry.Set { return j.tel }

// State reports the current lifecycle position.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Output returns the rendered result (empty until done).
func (j *Job) Output() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.output
}

// Cancel requests cancellation: a queued job finishes immediately, a
// running one has its context canceled and finishes as soon as the
// simulation notices (the worker marks it canceled). Canceling a
// terminal job is a no-op and returns false.
func (j *Job) Cancel() bool {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return false
	}
	queuedStill := j.state == StateQueued
	j.mu.Unlock()
	j.cancel()
	if queuedStill {
		// The worker will observe the canceled context when it pops the
		// job, but the client deserves the terminal state right away.
		j.finish(StateCanceled, "", context.Canceled)
	}
	return true
}

// start transitions queued -> running; false when the job was canceled
// while waiting (the worker then skips it).
func (j *Job) start() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	return true
}

// finish records the terminal state exactly once.
func (j *Job) finish(state State, output string, err error) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.output = output
	j.finished = time.Now()
	if err != nil {
		j.errMsg = err.Error()
		j.errClass, j.exitCode = classify(err)
	}
	j.mu.Unlock()
	j.events.Close()
	close(j.done)
	if j.onTerminal != nil {
		j.onTerminal(j)
	}
}

// view is the JSON rendering of a job for the HTTP API.
type view struct {
	ID        string     `json:"id"`
	Hash      string     `json:"hash"`
	State     State      `json:"state"`
	Kind      string     `json:"kind"`
	Spec      JobSpec    `json:"spec"`
	Created   time.Time  `json:"created"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
	CacheHit  bool       `json:"cache_hit,omitempty"`
	Recovered bool       `json:"recovered,omitempty"`
	Result    string     `json:"result,omitempty"`
	Error     *errorBody `json:"error,omitempty"`
}

// errorBody is the typed JSON error: Class and ExitCode carry the same
// 3/4/5 classification the CLI binaries exit with, so scripted clients
// can tell a protocol violation from a deadlock from an OOM without
// parsing prose.
type errorBody struct {
	Message  string `json:"message"`
	Class    string `json:"class"`
	ExitCode int    `json:"exit_code"`
}

func (j *Job) view(withResult bool) view {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := view{
		ID: j.ID, Hash: j.Hash, State: j.state, Kind: j.Spec.normalized().Kind,
		Spec: j.Spec, Created: j.created, CacheHit: j.cacheHit, Recovered: j.recovered,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	if withResult {
		v.Result = j.output
	}
	if j.errMsg != "" {
		v.Error = &errorBody{Message: j.errMsg, Class: j.errClass, ExitCode: j.exitCode}
	}
	return v
}

// logLine is one numbered progress line. N is the line's stable
// sequence number (0-based over the job's lifetime), which the SSE
// layer exposes as the event id so a reconnecting client can replay
// exactly the lines it missed (Last-Event-ID).
type logLine struct {
	N    int
	Text string
}

// eventLog is a job's progress feed: a bounded replay buffer plus live
// subscribers, fed from exp.Params.Log through the job-scoped runner
// view. Slow consumers never block the simulation — a full subscriber
// channel drops the line for that subscriber only.
type eventLog struct {
	mu     sync.Mutex
	lines  []logLine
	total  int // lines ever appended (next sequence number)
	closed bool
	subs   map[chan logLine]struct{}
}

const eventBacklog = 1024

func newEventLog() *eventLog {
	return &eventLog{subs: make(map[chan logLine]struct{})}
}

// Append records one progress line and fans it out.
func (l *eventLog) Append(line string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	ll := logLine{N: l.total, Text: line}
	l.total++
	if len(l.lines) < eventBacklog {
		l.lines = append(l.lines, ll)
	}
	for ch := range l.subs {
		select {
		case ch <- ll:
		default: // slow consumer: drop rather than stall the simulation
		}
	}
}

// Subscribe returns the full replay history and a live channel.
func (l *eventLog) Subscribe() (history []logLine, ch chan logLine, cancel func()) {
	return l.SubscribeFrom(-1)
}

// SubscribeFrom returns the retained history after sequence number
// `after` (-1 = everything) and a live channel; cancel unregisters. The
// channel is closed when the log closes. A reconnecting SSE client
// passes its Last-Event-ID here and receives a gapless continuation.
func (l *eventLog) SubscribeFrom(after int) (history []logLine, ch chan logLine, cancel func()) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, ll := range l.lines {
		if ll.N > after {
			history = append(history, ll)
		}
	}
	ch = make(chan logLine, 64)
	if l.closed {
		close(ch)
		return history, ch, func() {}
	}
	l.subs[ch] = struct{}{}
	return history, ch, func() {
		l.mu.Lock()
		defer l.mu.Unlock()
		if _, ok := l.subs[ch]; ok {
			delete(l.subs, ch)
			close(ch)
		}
	}
}

// Close ends the feed: subscribers' channels close after the backlog.
func (l *eventLog) Close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	for ch := range l.subs {
		delete(l.subs, ch)
		close(ch)
	}
}

// registry indexes jobs by ID. prefix (the cluster node ID plus "-",
// or empty standalone) namespaces IDs so peers can route them back to
// the owning node.
type registry struct {
	prefix string
	mu     sync.Mutex
	jobs   map[string]*Job
	seq    int64
}

func newRegistry(prefix string) *registry {
	return &registry{prefix: prefix, jobs: make(map[string]*Job)}
}

func (r *registry) add(spec JobSpec, base context.Context, idemKey string, trace obs.SpanContext) *Job {
	r.mu.Lock()
	r.seq++
	id := fmt.Sprintf("%sjob-%06d", r.prefix, r.seq)
	r.mu.Unlock()
	j := newJob(id, spec, base)
	// Identity fields must land before publication: the moment the job
	// is in r.jobs, concurrent readers (heartbeat job reports, proxies)
	// read IdemKey and TraceContext lock-free.
	j.idemKey = idemKey
	j.trace = trace
	r.mu.Lock()
	r.jobs[id] = j
	r.mu.Unlock()
	return j
}

// newJob builds one queued job record.
func newJob(id string, spec JobSpec, base context.Context) *Job {
	var (
		ctx    context.Context
		cancel context.CancelFunc
	)
	if spec.TimeoutMS > 0 {
		ctx, cancel = context.WithTimeout(base, time.Duration(spec.TimeoutMS)*time.Millisecond)
	} else {
		ctx, cancel = context.WithCancel(base)
	}
	return &Job{
		ID: id, Hash: spec.Hash(), Spec: spec,
		ctx: ctx, cancel: cancel,
		events: newEventLog(),
		// Rings + counters only: full event capture is a CLI concern
		// (-trace-out); the daemon keeps the always-on cheap layer.
		tel:   telemetry.NewSet(telemetry.Options{}),
		done:  make(chan struct{}),
		state: StateQueued, created: time.Now(),
	}
}

// addRecovered reinstalls a journaled job under its original ID after a
// restart. Terminal jobs come back finished (their results remain
// fetchable); everything else comes back queued for re-execution. The
// registry's sequence is advanced past every recovered ID so new
// submissions never collide.
func (r *registry) addRecovered(rj *recoveredJob, base context.Context) *Job {
	j := newJob(rj.id, rj.spec, base)
	j.idemKey = rj.idem
	j.recovered = true
	if rj.state.Terminal() {
		j.state = rj.state
		j.output = rj.output
		j.finished = time.Now()
		if rj.errMsg != "" {
			j.errMsg = rj.errMsg
			j.errClass, j.exitCode = "error", 1
		}
		j.events.Close()
		close(j.done)
		j.cancel()
	}
	// Advance the sequence past the recovered ID's trailing counter so
	// new submissions never collide — with or without a node prefix
	// ("n2-job-000017" and "job-000017" both parse to 17).
	var n int64
	tail := rj.id
	if i := strings.LastIndex(tail, "job-"); i >= 0 {
		tail = tail[i+len("job-"):]
	}
	if _, err := fmt.Sscanf(tail, "%d", &n); err != nil {
		n = 0
	}
	r.mu.Lock()
	if n > r.seq {
		r.seq = n
	}
	r.jobs[j.ID] = j
	r.mu.Unlock()
	return j
}

func (r *registry) get(id string) *Job {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.jobs[id]
}

func (r *registry) list() []*Job {
	r.mu.Lock()
	out := make([]*Job, 0, len(r.jobs))
	for _, j := range r.jobs {
		out = append(out, j)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// cacheEntry is one persisted result: the content hash and the rendered
// output. Only successful results are cached — failures must re-run.
type cacheEntry struct {
	Hash   string `json:"hash"`
	Kind   string `json:"kind"`
	Output string `json:"output"`
}

// resultCache is the content-addressed result store: an in-memory LRU
// keyed by spec hash, optionally persisted to disk so a restarted
// daemon serves warm results immediately.
type resultCache struct {
	mu  sync.Mutex
	max int
	ll  *list.List // front = most recent
	m   map[string]*list.Element
}

func newResultCache(max int) *resultCache {
	if max <= 0 {
		max = 256
	}
	return &resultCache{max: max, ll: list.New(), m: make(map[string]*list.Element)}
}

// Get returns the cached output for hash, refreshing its recency.
func (c *resultCache) Get(hash string) (cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[hash]
	if !ok {
		return cacheEntry{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(cacheEntry), true
}

// Put stores an entry, evicting the least recently used beyond max.
func (c *resultCache) Put(e cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[e.Hash]; ok {
		c.ll.MoveToFront(el)
		el.Value = e
		return
	}
	c.m[e.Hash] = c.ll.PushFront(e)
	for c.ll.Len() > c.max {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.m, last.Value.(cacheEntry).Hash)
	}
}

// Len reports the resident entry count.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Save writes the cache to path as JSON, most recent first (atomic via
// rename). A no-op for an empty path.
func (c *resultCache) Save(path string) error {
	if path == "" {
		return nil
	}
	c.mu.Lock()
	entries := make([]cacheEntry, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		entries = append(entries, el.Value.(cacheEntry))
	}
	c.mu.Unlock()
	b, err := json.MarshalIndent(entries, "", " ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Load reads a Save file; a missing file is not an error (first boot).
func (c *resultCache) Load(path string) error {
	if path == "" {
		return nil
	}
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	var entries []cacheEntry
	if err := json.Unmarshal(b, &entries); err != nil {
		return fmt.Errorf("server: corrupt cache file %s: %w", path, err)
	}
	// Insert in reverse so the file's most-recent entry ends up most
	// recent in the LRU too.
	for i := len(entries) - 1; i >= 0; i-- {
		if entries[i].Hash != "" {
			c.Put(entries[i])
		}
	}
	return nil
}

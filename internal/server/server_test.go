package server

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"eruca/internal/cli"
	"eruca/internal/config"
	"eruca/internal/exp"
)

// testSpec is a small, fast sweep: one system, one mix.
func testSpec() JobSpec {
	return JobSpec{
		Kind: "sweep", Exp: "sweep", Systems: []string{"ddr4"},
		Mixes: []string{"mix0"}, Instrs: 20_000, Frag: 0.1,
	}
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 4
	}
	if cfg.QueueMax == 0 {
		cfg.QueueMax = 16
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func waitJob(t *testing.T, j *Job, within time.Duration) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(within):
		t.Fatalf("job %s stuck in state %s after %s", j.ID, j.State(), within)
	}
}

// TestDedupConcurrentSubmissions is the end-to-end singleflight proof:
// N concurrent submissions of the same spec run exactly one underlying
// simulation, and every job's result is byte-identical to a direct
// exp.Runner call with the same parameters.
func TestDedupConcurrentSubmissions(t *testing.T) {
	s := newTestServer(t, Config{Workers: 4})
	spec := testSpec()

	const n = 4
	jobs := make([]*Job, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, err := s.Submit(spec)
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			jobs[i] = j
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for _, j := range jobs {
		waitJob(t, j, 60*time.Second)
		if st := j.State(); st != StateDone {
			t.Fatalf("job %s state %s, want done", j.ID, st)
		}
	}

	// Exactly one simulation ran; the other N-1 jobs were served by a
	// singleflight join or the result cache.
	launched, joined, _ := s.runnerCounters()
	if launched != 1 {
		t.Errorf("launched %d simulations, want exactly 1", launched)
	}
	hits := s.metrics.cacheHits.Load()
	if joined+hits < n-1 {
		t.Errorf("dedup evidence: joined=%d cacheHits=%d, want >= %d combined", joined, hits, n-1)
	}

	// Byte-identical to a direct Runner call.
	direct := exp.NewRunner(exp.Params{Instrs: spec.Instrs, Seed: 42, Mixes: spec.Mixes})
	sys, err := cli.ParseSystems(strings.Join(spec.Systems, ","), 4, config.DefaultBusMHz)
	if err != nil {
		t.Fatal(err)
	}
	table, err := direct.Sweep(sys, spec.Frag)
	if err != nil {
		t.Fatal(err)
	}
	want := table.Format()
	for _, j := range jobs {
		if got := j.Output(); got != want {
			t.Errorf("job %s output differs from direct runner:\n got: %q\nwant: %q", j.ID, got, want)
		}
	}

	// A later identical submission is a pure cache hit: still one sim.
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j, 10*time.Second)
	if launched, _, _ := s.runnerCounters(); launched != 1 {
		t.Errorf("resubmission launched a new simulation (total %d)", launched)
	}
	if got := j.Output(); got != want {
		t.Errorf("cached output differs: %q", got)
	}
}

// TestCancelInFlight proves DELETE semantics: canceling a running job
// stops the simulation promptly and frees the worker for new jobs.
func TestCancelInFlight(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	// A deliberately long simulation (tens of seconds if left alone).
	long := JobSpec{Kind: "sim", System: "ddr4", Mix: "mix0", Instrs: 50_000_000, Frag: 0.1}
	j, err := s.Submit(long)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for j.State() != StateRunning {
		if time.Now().After(deadline) {
			t.Fatalf("job never started (state %s)", j.State())
		}
		time.Sleep(5 * time.Millisecond)
	}
	canceledAt := time.Now()
	if !s.Cancel(j.ID) {
		t.Fatal("cancel refused")
	}
	waitJob(t, j, 5*time.Second)
	if st := j.State(); st != StateCanceled {
		t.Fatalf("state %s, want canceled", st)
	}
	if took := time.Since(canceledAt); took > 3*time.Second {
		t.Errorf("cancellation took %s, want prompt", took)
	}

	// Worker is free again: a short job completes.
	quick, err := s.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, quick, 60*time.Second)
	if st := quick.State(); st != StateDone {
		t.Fatalf("post-cancel job state %s, want done", st)
	}

	// A canceled spec was evicted, not cached: resubmitting runs fresh.
	if _, ok := s.cache.Get(long.Hash()); ok {
		t.Error("canceled result leaked into the result cache")
	}
}

// TestJobTimeout proves the per-job deadline (the client-side context
// cancel of the acceptance criteria) stops the run.
func TestJobTimeout(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	j, err := s.Submit(JobSpec{
		Kind: "sim", System: "ddr4", Mix: "mix0",
		Instrs: 50_000_000, Frag: 0.1, TimeoutMS: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j, 10*time.Second)
	if st := j.State(); st != StateCanceled {
		t.Fatalf("state %s, want canceled (deadline)", st)
	}
}

// TestCancelQueued cancels a job before a worker picks it up.
func TestCancelQueued(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	blocker, err := s.Submit(JobSpec{Kind: "sim", System: "ddr4", Mix: "mix0", Instrs: 50_000_000, Frag: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(JobSpec{Kind: "sim", System: "ddr4", Mix: "mix1", Instrs: 50_000_000, Frag: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Cancel(queued.ID) {
		t.Fatal("cancel refused for queued job")
	}
	waitJob(t, queued, 2*time.Second)
	if st := queued.State(); st != StateCanceled {
		t.Fatalf("queued job state %s, want canceled", st)
	}
	if !s.Cancel(blocker.ID) {
		t.Fatal("cancel refused for running job")
	}
	waitJob(t, blocker, 5*time.Second)
}

// TestAdmissionControl fills the queue and expects ErrQueueFull.
func TestAdmissionControl(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueMax: 1})
	long := func(mix string) JobSpec {
		return JobSpec{Kind: "sim", System: "ddr4", Mix: mix, Instrs: 50_000_000, Frag: 0.1}
	}
	first, err := s.Submit(long("mix0"))
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the worker holds the first job so the queue is empty.
	deadline := time.Now().Add(10 * time.Second)
	for first.State() != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := s.Submit(long("mix1")); err != nil {
		t.Fatalf("second submit should queue: %v", err)
	}
	if _, err := s.Submit(long("mix2")); err != ErrQueueFull {
		t.Fatalf("third submit: err = %v, want ErrQueueFull", err)
	}
	if got := s.metrics.rejectedFull.Load(); got != 1 {
		t.Errorf("rejectedFull = %d, want 1", got)
	}
	for _, j := range s.Jobs() {
		j.Cancel()
	}
}

// TestDrain proves graceful shutdown: admission closes (503-class
// error), queued and in-flight jobs still finish, and the cache is
// flushed to disk for the next boot.
func TestDrain(t *testing.T) {
	cachePath := t.TempDir() + "/cache.json"
	s := newTestServer(t, Config{Workers: 1, CachePath: cachePath})
	running, err := s.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	queuedSpec := testSpec()
	queuedSpec.Seed = 7 // different content hash; must also complete
	queued, err := s.Submit(queuedSpec)
	if err != nil {
		t.Fatal(err)
	}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	// Admission must close promptly.
	deadline := time.Now().Add(5 * time.Second)
	for !s.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("drain flag never set")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Submit(testSpec()); err != ErrQueueClosed {
		t.Fatalf("submit during drain: err = %v, want ErrQueueClosed", err)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, j := range []*Job{running, queued} {
		if st := j.State(); st != StateDone {
			t.Errorf("job %s state %s after drain, want done", j.ID, st)
		}
	}

	// The flushed cache warms a fresh server: same spec, zero sims.
	s2, err := New(Config{Workers: 1, CachePath: cachePath})
	if err != nil {
		t.Fatal(err)
	}
	s2.Start()
	defer s2.Close()
	j, err := s2.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j, 10*time.Second)
	if launched, _, _ := s2.runnerCounters(); launched != 0 {
		t.Errorf("persisted cache miss: %d sims launched on warm boot", launched)
	}
	if j.Output() != running.Output() {
		t.Error("warm-boot output differs from original run")
	}
}

// TestDrainDeadlineCancels proves the hard half of drain: when the
// deadline fires first, remaining jobs are canceled rather than leaked.
func TestDrainDeadlineCancels(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	j, err := s.Submit(JobSpec{Kind: "sim", System: "ddr4", Mix: "mix0", Instrs: 50_000_000, Frag: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for j.State() != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err == nil {
		t.Fatal("drain returned nil despite deadline")
	}
	if st := j.State(); st != StateCanceled {
		t.Errorf("job state %s after hard drain, want canceled", st)
	}
}

// --- unit tests -----------------------------------------------------

func TestQueuePriorityOrder(t *testing.T) {
	q := newQueue(10)
	mk := func(prio int, id string) *Job {
		return &Job{ID: id, Spec: JobSpec{Priority: prio}}
	}
	for _, j := range []*Job{mk(0, "a"), mk(5, "b"), mk(0, "c"), mk(5, "d"), mk(9, "e")} {
		if err := q.Push(j); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	for i := 0; i < 5; i++ {
		j, ok := q.Pop()
		if !ok {
			t.Fatal("queue closed early")
		}
		got = append(got, j.ID)
	}
	want := "e b d a c" // priority desc, FIFO within a level
	if g := strings.Join(got, " "); g != want {
		t.Errorf("pop order %q, want %q", g, want)
	}
}

func TestQueueBoundsAndClose(t *testing.T) {
	q := newQueue(2)
	if err := q.Push(&Job{ID: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := q.Push(&Job{ID: "b"}); err != nil {
		t.Fatal(err)
	}
	if err := q.Push(&Job{ID: "c"}); err != ErrQueueFull {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	q.Close()
	if err := q.Push(&Job{ID: "d"}); err != ErrQueueClosed {
		t.Fatalf("err = %v, want ErrQueueClosed", err)
	}
	// Close drains the backlog before Pop reports closed.
	if j, ok := q.Pop(); !ok || j.ID != "a" {
		t.Fatalf("pop after close: %v %v", j, ok)
	}
	if j, ok := q.Pop(); !ok || j.ID != "b" {
		t.Fatalf("pop after close: %v %v", j, ok)
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop on empty closed queue returned ok")
	}
}

func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2)
	c.Put(cacheEntry{Hash: "a", Output: "1"})
	c.Put(cacheEntry{Hash: "b", Output: "2"})
	if _, ok := c.Get("a"); !ok { // refresh a
		t.Fatal("a missing")
	}
	c.Put(cacheEntry{Hash: "c", Output: "3"}) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a should have survived")
	}
	if c.Len() != 2 {
		t.Errorf("len %d, want 2", c.Len())
	}
}

func TestResultCachePersistence(t *testing.T) {
	path := t.TempDir() + "/cache.json"
	c := newResultCache(8)
	c.Put(cacheEntry{Hash: "a", Kind: "sim", Output: "one"})
	c.Put(cacheEntry{Hash: "b", Kind: "sweep", Output: "two"})
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	c2 := newResultCache(8)
	if err := c2.Load(path); err != nil {
		t.Fatal(err)
	}
	if e, ok := c2.Get("a"); !ok || e.Output != "one" {
		t.Errorf("reloaded a = %+v %v", e, ok)
	}
	if e, ok := c2.Get("b"); !ok || e.Output != "two" {
		t.Errorf("reloaded b = %+v %v", e, ok)
	}
	// A missing file is a clean first boot, not an error.
	if err := newResultCache(8).Load(t.TempDir() + "/absent.json"); err != nil {
		t.Errorf("missing file: %v", err)
	}
}

func TestSpecHashNormalization(t *testing.T) {
	// Explicit defaults and omitted defaults are the same job.
	a := JobSpec{Kind: "sim", System: "ddr4", Mix: "mix0", Frag: 0.1}
	b := JobSpec{Kind: "sim", System: "ddr4", Mix: "mix0", Frag: 0.1,
		Instrs: exp.DefaultParams().Instrs, Seed: 42, Planes: 4, Check: "off"}
	if a.Hash() != b.Hash() {
		t.Error("defaulted and explicit specs hash differently")
	}
	// Service knobs do not change identity.
	c := a
	c.Priority, c.TimeoutMS = 9, 5000
	if a.Hash() != c.Hash() {
		t.Error("priority/timeout changed the content hash")
	}
	// A different seed is a different job.
	d := a
	d.Seed = 7
	if a.Hash() == d.Hash() {
		t.Error("seed change did not change the hash")
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []JobSpec{
		{Kind: "nope"},
		{Kind: "sim", System: "not-a-system"},
		{Kind: "sim", System: "ddr4", Benches: []string{"not-a-bench"}},
		{Kind: "sim", System: "ddr4", Mix: "mix0", Frag: 2},
		{Kind: "sweep", Exp: "fig99"},
		{Kind: "sweep", Exp: "sweep"}, // no systems
		{Kind: "sim", System: "ddr4", Mix: "mix0", Check: "sometimes"},
		{Kind: "sim", System: "ddr4", Mix: "mix0", Faults: "kinds=bogus"},
		{Kind: "sim", System: "ddr4", Mix: "mix0", TimeoutMS: -1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d accepted: %+v", i, s)
		}
	}
	good := []JobSpec{
		{},
		{Kind: "sim", System: "vsb-ewlr-rap-ddb", Benches: []string{"mcf", "lbm"}, Frag: 0.5},
		{Kind: "sweep", Exp: "fig12"},
		{Kind: "sweep", Exp: "sweep", Systems: []string{"ddr4", "vsb-ewlr-rap-ddb"}},
		{Kind: "sim", System: "ddr4", Mix: "mix0", Check: "log", Watchdog: -1, Latency: 5000},
	}
	for i, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("spec %d rejected: %v", i, err)
		}
	}
}

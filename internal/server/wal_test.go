package server

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// appendAll opens the journal under dir, appends recs, and closes it —
// a crashed daemon's journal, crafted deterministically.
func writeJournal(t *testing.T, dir string, recs ...walRecord) {
	t.Helper()
	w, _, err := openWAL(nil, filepath.Join(dir, "journal.wal"))
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := w.append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// jobEvents returns the job's full progress log as one string.
func jobEvents(j *Job) string {
	history, _, cancel := j.events.SubscribeFrom(-1)
	defer cancel()
	var b strings.Builder
	for _, ll := range history {
		b.WriteString(ll.Text)
		b.WriteByte('\n')
	}
	return b.String()
}

func TestWALAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec()
	writeJournal(t, dir,
		walRecord{Type: "submit", Job: "job-000001", Idem: "k1", Spec: &spec},
		walRecord{Type: "start", Job: "job-000001"},
		walRecord{Type: "finish", Job: "job-000001", State: "done", Output: "table"},
		walRecord{Type: "submit", Job: "job-000002", Spec: &spec},
		walRecord{Type: "checkpoint", Job: "job-000002", Key: "ddr4|mix0|0.10", Bus: 50_000},
	)
	_, recs, err := openWAL(nil, filepath.Join(dir, "journal.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("replayed %d records, want 5", len(recs))
	}
	jobs, byID := replay(recs)
	if len(jobs) != 2 {
		t.Fatalf("replay found %d jobs, want 2", len(jobs))
	}
	j1 := byID["job-000001"]
	if j1 == nil || j1.state != StateDone || j1.output != "table" || j1.idem != "k1" {
		t.Errorf("job-000001 replayed wrong: %+v", j1)
	}
	j2 := byID["job-000002"]
	if j2 == nil || j2.state != "" {
		t.Errorf("job-000002 should be non-terminal: %+v", j2)
	}
}

// TestWALTornTailTruncated is the crash-mid-write case: garbage after
// the last complete record is discarded and the file truncated, and the
// journal stays appendable with consecutive LSNs.
func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.wal")
	spec := testSpec()
	writeJournal(t, dir,
		walRecord{Type: "submit", Job: "job-000001", Spec: &spec},
		walRecord{Type: "start", Job: "job-000001"},
	)
	good, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// A torn tail: half a JSON record, no trailing newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"lsn":3,"type":"fin`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w, recs, err := openWAL(nil, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("replayed %d records past a torn tail, want 2", len(recs))
	}
	if fi, _ := os.Stat(path); fi.Size() != good.Size() {
		t.Errorf("torn tail not truncated: size %d, want %d", fi.Size(), good.Size())
	}
	// The journal stays appendable and the LSN chain stays consecutive.
	if err := w.append(walRecord{Type: "finish", Job: "job-000001", State: "failed"}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	_, recs, err = openWAL(nil, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[2].LSN != 3 || recs[2].Type != "finish" {
		t.Fatalf("post-truncation append wrong: %+v", recs)
	}
}

// TestWALReplayStopsAtBadRecord: a CRC mismatch or an LSN regression
// ends replay at the last good record.
func TestWALReplayStopsAtBadRecord(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.wal")
	spec := testSpec()

	mk := func(lsn int64, typ, job string) []byte {
		rec := walRecord{LSN: lsn, Type: typ, Job: job}
		if typ == "submit" {
			rec.Spec = &spec
		}
		line, err := rec.seal()
		if err != nil {
			t.Fatal(err)
		}
		return append(line, '\n')
	}
	var buf []byte
	buf = append(buf, mk(1, "submit", "job-000001")...)
	buf = append(buf, mk(3, "start", "job-000001")...) // LSN gap: 2 skipped
	buf = append(buf, mk(4, "finish", "job-000001")...)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	_, recs, err := openWAL(nil, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("replay crossed an LSN gap: %d records, want 1", len(recs))
	}

	// CRC corruption: flip a byte inside the second record's payload.
	buf = append([]byte(nil), mk(1, "submit", "job-000001")...)
	bad := mk(2, "start", "job-000001")
	bad[len(bad)/2] ^= 0x20
	buf = append(buf, bad...)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	_, recs, err = openWAL(nil, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("replay accepted a corrupt record: %d records, want 1", len(recs))
	}
}

// TestRecoveryReRunsUnfinishedJobs boots a daemon on a journal whose
// jobs never finished (a crash) and proves they re-run to completion,
// while terminal jobs come back with their original results without
// re-executing anything.
func TestRecoveryReRunsUnfinishedJobs(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec()
	writeJournal(t, dir,
		walRecord{Type: "submit", Job: "job-000001", Spec: &spec},
		walRecord{Type: "finish", Job: "job-000001", State: "done", Output: "preserved result"},
		walRecord{Type: "submit", Job: "job-000002", Spec: &spec},
		walRecord{Type: "start", Job: "job-000002"},
		walRecord{Type: "interrupted", Job: "job-000002", State: "canceled"},
	)
	s := newTestServer(t, Config{WALDir: dir})

	done := s.Job("job-000001")
	if done == nil {
		t.Fatal("terminal job not restored")
	}
	if st := done.State(); st != StateDone {
		t.Fatalf("terminal job state %s, want done", st)
	}
	if out := done.Output(); out != "preserved result" {
		t.Fatalf("terminal job output %q, want the journaled result", out)
	}

	rerun := s.Job("job-000002")
	if rerun == nil {
		t.Fatal("unfinished job not restored")
	}
	waitJob(t, rerun, 60*time.Second)
	if st := rerun.State(); st != StateDone {
		t.Fatalf("recovered job state %s, want done", st)
	}
	if rerun.Output() == "" {
		t.Fatal("recovered job has no output")
	}
	if !rerun.view(false).Recovered {
		t.Error("recovered job not flagged recovered")
	}

	// Exactly one simulation ran: the terminal job was NOT re-executed.
	if launched, _, _ := s.runnerCounters(); launched != 1 {
		t.Errorf("launched %d simulations, want 1 (only the unfinished job)", launched)
	}

	// New submissions never collide with recovered IDs.
	fresh, err := s.Submit(JobSpec{Kind: "sim", System: "ddr4", Mix: "mix1", Instrs: 20_000, Frag: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if fresh.ID != "job-000003" {
		t.Errorf("fresh job ID %s, want job-000003", fresh.ID)
	}
	waitJob(t, fresh, 60*time.Second)
}

// TestIdempotencyKey proves the same-process half: a duplicate POST
// with the same key returns the original job, a different key runs a
// new one.
func TestIdempotencyKey(t *testing.T) {
	s := newTestServer(t, Config{})
	spec := testSpec()
	j1, replayed, err := s.SubmitWithKey(spec, "alpha")
	if err != nil || replayed {
		t.Fatalf("first submit: %v replayed=%v", err, replayed)
	}
	j2, replayed, err := s.SubmitWithKey(spec, "alpha")
	if err != nil || !replayed {
		t.Fatalf("duplicate submit: %v replayed=%v", err, replayed)
	}
	if j1.ID != j2.ID {
		t.Errorf("duplicate key created a new job: %s vs %s", j1.ID, j2.ID)
	}
	j3, replayed, err := s.SubmitWithKey(spec, "beta")
	if err != nil || replayed {
		t.Fatalf("distinct key: %v replayed=%v", err, replayed)
	}
	if j3.ID == j1.ID {
		t.Error("distinct key mapped to the same job")
	}
	waitJob(t, j1, 60*time.Second)
	waitJob(t, j3, 60*time.Second)
}

// TestIdempotencyKeyAcrossRestart is the crash-retry contract: a client
// that lost its 202 to a daemon crash retries the POST with the same
// Idempotency-Key against the restarted daemon and gets its original
// job (and result) back instead of a duplicate.
func TestIdempotencyKeyAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec()
	s1, err := New(Config{Workers: 2, QueueMax: 16, WALDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s1.Start()
	j1, replayed, err := s1.SubmitWithKey(spec, "retry-key")
	if err != nil || replayed {
		t.Fatalf("submit: %v replayed=%v", err, replayed)
	}
	waitJob(t, j1, 60*time.Second)
	want := j1.Output()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s1.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	s2 := newTestServer(t, Config{WALDir: dir})
	j2, replayed, err := s2.SubmitWithKey(spec, "retry-key")
	if err != nil {
		t.Fatal(err)
	}
	if !replayed {
		t.Fatal("restarted daemon did not recognize the idempotency key")
	}
	if j2.ID != j1.ID {
		t.Errorf("replayed job ID %s, want %s", j2.ID, j1.ID)
	}
	if st := j2.State(); st != StateDone {
		t.Fatalf("replayed job state %s, want done", st)
	}
	if got := j2.Output(); got != want {
		t.Errorf("replayed output differs:\n got %q\nwant %q", got, want)
	}
	// No simulation ran on the restarted daemon.
	if launched, _, _ := s2.runnerCounters(); launched != 0 {
		t.Errorf("replayed submission launched %d simulations, want 0", launched)
	}
}

// TestForcedShutdownResumesFromCheckpoint is the end-to-end durability
// path: a job is interrupted by a forced drain after it has
// checkpointed, the journal is compacted down to its submit record (the
// checkpoint blob on disk is now strictly newer than anything in the
// journal — the "blob newer than journal tail" case), and the restarted
// daemon re-runs the job, resumes from the blob, and produces output
// byte-identical to an uninterrupted run.
func TestForcedShutdownResumesFromCheckpoint(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("multi-second simulation")
	}
	dir := t.TempDir()
	// Long enough to still be running when the forced drain lands, with
	// a checkpoint cadence tight enough to have blobs by then.
	spec := JobSpec{Kind: "sim", System: "ddr4", Mix: "mix0", Instrs: 1_500_000, Frag: 0.1}
	s1, err := New(Config{Workers: 1, QueueMax: 16, WALDir: dir, CheckpointCycles: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	s1.Start()
	j1, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the first checkpoint blob to land on disk.
	deadline := time.Now().Add(60 * time.Second)
	for s1.ckpts.Len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint blob appeared")
		}
		if j1.State().Terminal() {
			t.Fatalf("job finished before checkpointing (state %s)", j1.State())
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Forced shutdown: an already-expired drain deadline.
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s1.Drain(expired); err == nil {
		t.Fatal("forced drain reported success")
	}
	if st := j1.State(); st != StateCanceled {
		t.Fatalf("interrupted job state %s, want canceled", st)
	}

	// Restart: the job must be re-enqueued (NOT canceled — the forced
	// shutdown withheld its terminal record), resume from the blob, and
	// complete.
	s2 := newTestServer(t, Config{Workers: 1, WALDir: dir, CheckpointCycles: 100_000})
	j2 := s2.Job(j1.ID)
	if j2 == nil {
		t.Fatal("interrupted job not restored")
	}
	waitJob(t, j2, 120*time.Second)
	if st := j2.State(); st != StateDone {
		t.Fatalf("recovered job state %s, want done (%s)", st, jobEvents(j2))
	}
	if !strings.Contains(jobEvents(j2), "resuming") {
		t.Errorf("no resume line in recovered job events:\n%s", jobEvents(j2))
	}

	// Byte-identical to an uninterrupted run of the same spec.
	ref := newTestServer(t, Config{Workers: 1})
	jr, err := ref.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, jr, 120*time.Second)
	if jr.Output() != j2.Output() {
		t.Error("resumed output differs from uninterrupted reference")
	}
}

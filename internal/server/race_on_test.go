//go:build race

package server

// raceEnabled reports that this test binary was built with -race; the
// multi-second end-to-end resume test skips itself there (simulations
// run ~10x slower under the race detector, and the concurrency it
// exercises is covered by the faster tests).
const raceEnabled = true

package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"eruca/internal/obs"
	"eruca/internal/telemetry"
)

// Handler returns the daemon's HTTP API:
//
//	POST   /v1/jobs                submit a JobSpec          -> 202 job view
//	GET    /v1/jobs                list jobs                 -> 200 [views]
//	GET    /v1/jobs/{id}           status + result           -> 200 view
//	DELETE /v1/jobs/{id}           cancel                    -> 202 view
//	GET    /v1/jobs/{id}/events    live progress (SSE)
//	GET    /v1/jobs/{id}/telemetry live counters/trace snapshot (JSON; ?sse=1 streams deltas)
//	GET    /healthz                liveness + drain state
//	GET    /metrics                Prometheus text (service + simulator metrics)
//	GET    /debug/pprof/           Go profiling (only with Config.Pprof)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/telemetry", s.handleTelemetry)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	mux.HandleFunc("GET /v1/traces", s.handleTraces)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.cfg.Pprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// writeJSON emits v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError emits the typed error body shared with job records.
func writeError(w http.ResponseWriter, status int, err error) {
	class, code := classify(err)
	writeJSON(w, status, map[string]any{
		"error": errorBody{Message: err.Error(), Class: class, ExitCode: code},
	})
}

// retryAfterHint computes the backoff hint (whole seconds, minimum 1)
// returned with 429/503: the base scales with queue pressure — a full
// queue takes longer to drain than a briefly contended one — and each
// response carries up to ±25% jitter so a thundering herd of rejected
// clients spreads out instead of resynchronizing on the same retry
// instant.
func (s *Server) retryAfterHint() int {
	base := s.cfg.RetryAfter.Seconds()
	if s.cfg.QueueMax > 0 {
		pressure := float64(s.queue.Len()) / float64(s.cfg.QueueMax)
		base *= 1 + pressure // full queue => double the base hint
	}
	jittered := base * (0.75 + 0.5*rand.Float64())
	return max(int(jittered+0.5), 1)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		s.metrics.rejectedInvalid.Add(1)
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad job spec: %w", err))
		return
	}
	job, replayed, err := s.SubmitTraced(spec, r.Header.Get("Idempotency-Key"), obs.Extract(r.Header))
	switch {
	case replayed:
		// The key was already accepted: return the original job instead
		// of enqueueing a duplicate. 200 (not 202) signals the replay.
		w.Header().Set("Location", "/v1/jobs/"+job.ID)
		writeJSON(w, http.StatusOK, job.view(false))
	case err == nil:
		w.Header().Set("Location", "/v1/jobs/"+job.ID)
		writeJSON(w, http.StatusAccepted, job.view(false))
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterHint()))
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrQueueClosed):
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterHint()))
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrReadOnly):
		// Degraded read-only mode: the journal stopped taking writes, so
		// the daemon cannot make this submission durable. Existing jobs
		// and reads still serve; the client should retry elsewhere.
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterHint()))
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, http.StatusBadRequest, err)
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	views := make([]view, 0, len(jobs))
	for _, j := range jobs {
		views = append(views, j.view(false))
	}
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j := s.Job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j.view(true))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.Job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	if !j.Cancel() {
		// Already terminal: report the final state, idempotently.
		writeJSON(w, http.StatusConflict, j.view(false))
		return
	}
	writeJSON(w, http.StatusAccepted, j.view(false))
}

// handleEvents streams the job's progress log as Server-Sent Events:
// the replay buffer first, then live lines, then one terminal
// "event: done" frame carrying the final state. Every progress frame
// carries an `id:` field (the line's stable sequence number); a client
// that reconnects with Last-Event-ID receives exactly the lines it
// missed — a gapless continuation instead of a full replay. A client
// disconnect just unsubscribes — it never cancels the job (DELETE does
// that).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.Job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, fmt.Errorf("streaming unsupported by this connection"))
		return
	}
	after := -1
	if v, err := strconv.Atoi(r.Header.Get("Last-Event-ID")); err == nil && v >= 0 {
		after = v
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	send := func(event string, id int, data string) {
		if event != "" {
			fmt.Fprintf(w, "event: %s\n", event)
		}
		if id >= 0 {
			fmt.Fprintf(w, "id: %d\n", id)
		}
		for _, line := range strings.Split(data, "\n") {
			fmt.Fprintf(w, "data: %s\n", line)
		}
		fmt.Fprint(w, "\n")
		fl.Flush()
	}

	// Periodic comment frames keep idle streams alive through
	// intermediaries (and the cluster's proxy path); SSE clients ignore
	// comment lines by spec.
	keepalive := time.NewTicker(s.cfg.SSEKeepalive)
	defer keepalive.Stop()

	history, live, unsub := j.events.SubscribeFrom(after)
	defer unsub()
	for _, ll := range history {
		send("", ll.N, ll.Text)
	}
	for {
		select {
		case ll, ok := <-live:
			if !ok {
				// Log closed: the job is terminal (or closing); emit the
				// final state and end the stream.
				send("done", -1, string(j.State()))
				return
			}
			send("", ll.N, ll.Text)
		case <-keepalive.C:
			fmt.Fprint(w, ": keepalive\n\n")
			fl.Flush()
		case <-r.Context().Done():
			return
		case <-j.Done():
			// Drain whatever is still buffered, then finish.
			for {
				ll, ok := <-live
				if !ok {
					send("done", -1, string(j.State()))
					return
				}
				send("", ll.N, ll.Text)
			}
		}
	}
}

// handleTelemetry serves the job-scoped simulator telemetry: mechanism
// counters, log2 latency histograms, and the most-recent traced events.
// The default is one JSON snapshot (works mid-run: the counters are
// lock-free and the rings copy under their own mutex); with ?sse=1 it
// streams a snapshot every ?interval_ms (default 500, floor 50) until
// the job reaches a terminal state, then sends one final snapshot in an
// "event: done" frame. ?recent=N bounds the embedded event tail
// (default 32, max 1024).
func (s *Server) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	j := s.Job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	recent := 32
	if v, err := strconv.Atoi(r.URL.Query().Get("recent")); err == nil && v >= 0 {
		recent = min(v, 1024)
	}
	if r.URL.Query().Get("sse") == "" {
		writeJSON(w, http.StatusOK, j.Telemetry().Snapshot(recent))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, fmt.Errorf("streaming unsupported by this connection"))
		return
	}
	interval := 500 * time.Millisecond
	if v, err := strconv.Atoi(r.URL.Query().Get("interval_ms")); err == nil && v >= 50 {
		interval = time.Duration(v) * time.Millisecond
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	send := func(event string) {
		if event != "" {
			fmt.Fprintf(w, "event: %s\n", event)
		}
		b, _ := json.Marshal(j.Telemetry().Snapshot(recent))
		fmt.Fprintf(w, "data: %s\n\n", b)
		fl.Flush()
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	keepalive := time.NewTicker(s.cfg.SSEKeepalive)
	defer keepalive.Stop()
	send("")
	for {
		select {
		case <-tick.C:
			send("")
		case <-keepalive.C:
			fmt.Fprint(w, ": keepalive\n\n")
			fl.Flush()
		case <-j.Done():
			send("done")
			return
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := http.StatusOK
	state := "ok"
	if s.Degraded() {
		// Still 200: the daemon is alive and serving reads; "degraded"
		// tells operators submissions are being bounced with 503.
		state = "degraded"
	}
	if s.Draining() {
		status = http.StatusServiceUnavailable
		state = "draining"
	}
	writeJSON(w, status, map[string]any{
		"status":      state,
		"degraded":    s.Degraded(),
		"queue_depth": s.queue.Len(),
		"inflight":    s.metrics.inflight.Load(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	buf := NewMetricsBuf()
	s.CollectMetrics(buf)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	buf.Write(w)
}

// CollectMetrics renders every service + simulator family into buf.
// The cluster layer calls this too, adding its own families to the same
// buffer, so the merged scrape still comes out in one sorted pass.
func (s *Server) CollectMetrics(buf *MetricsBuf) {
	launched, joined, pools := s.runnerCounters()
	g := gauges{
		queueDepth:  s.queue.Len(),
		inflight:    s.metrics.inflight.Load(),
		cacheSize:   s.cache.Len(),
		simLaunched: launched,
		simJoined:   joined,
		runnerPools: pools,
		spansTotal:  s.tracer().Total(),
	}
	if s.Draining() {
		g.draining = 1
	}
	if s.Degraded() {
		g.degraded = 1
	}
	s.metrics.collect(buf, g)
	// Simulator-level telemetry, aggregated across every job's set:
	// eruca_sim_* mechanism counters and log2 latency histograms.
	collectTelemetry(buf, s.telemetrySets())
}

// telemetrySets snapshots every job's telemetry set for /metrics.
func (s *Server) telemetrySets() []*telemetry.Set {
	jobs := s.Jobs()
	sets := make([]*telemetry.Set, 0, len(jobs))
	for _, j := range jobs {
		sets = append(sets, j.Telemetry())
	}
	return sets
}

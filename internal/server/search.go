package server

import (
	"context"
	"encoding/json"
	"fmt"

	"eruca/internal/obs"
	"eruca/internal/search"
	"eruca/internal/workload"
)

// This file runs "search" jobs: the internal/search autotuner engine,
// wired so every design-point evaluation it requests becomes an "eval"
// JobSpec served by the daemon's own machinery — the content-addressed
// result cache first, then the cluster (sharded-cache read-through and
// the EvalRemote fan-out hook), then a local shared singleflight
// runner. Engine state checkpoints into the WAL blob store under
// "search|<job hash>", so a daemon restart resumes a half-finished
// search from its evaluated set instead of re-simulating it, and the
// incumbent Pareto frontier streams over the job's SSE feed as it
// tightens.

// evalSpec builds the "eval" JobSpec for one canonical point at one
// instruction budget. Workload identity (mix, frag, bus) comes from the
// search spec; simulation robustness knobs and the simulation seed come
// from the enclosing search job, so a search under fault injection
// evaluates its points under the same faults.
func evalSpec(base JobSpec, sspec search.Spec, point map[string]string, instrs int64) JobSpec {
	return JobSpec{
		Kind:     "eval",
		Point:    point,
		Mix:      sspec.Mix,
		Frag:     sspec.Frag,
		BusMHz:   sspec.BusMHz,
		Instrs:   instrs,
		Seed:     base.Seed,
		Check:    base.Check,
		Watchdog: base.Watchdog,
		Latency:  base.Latency,
		Faults:   base.Faults,
	}
}

// searchEval adapts the server's eval-job path to search.Evaluator.
type searchEval struct {
	s    *Server
	job  *Job
	base JobSpec     // normalized enclosing search job
	spec search.Spec // normalized search spec
}

func (e *searchEval) Eval(ctx context.Context, key string, a map[string]string, instrs int64) (search.Metrics, error) {
	e.s.metrics.searchPoints.Add(1)
	out, err := e.s.evalPoint(ctx, e.job, evalSpec(e.base, e.spec, a, instrs))
	if err != nil {
		return search.Metrics{}, err
	}
	var sum EvalSummary
	if err := json.Unmarshal([]byte(out), &sum); err != nil {
		return search.Metrics{}, fmt.Errorf("server: eval result for %s unparsable: %w", key, err)
	}
	return search.Metrics{IPC: sum.IPC, EnergyNJ: sum.EnergyNJ, AreaPct: sum.AreaPct}, nil
}

// evalPoint resolves one eval spec to its output, cheapest source
// first: local result cache, cluster cache shard, cluster fan-out
// (EvalRemote), local execution. It never goes through the job queue —
// the search already holds a worker slot, and queueing child jobs
// behind their own parent would deadlock a full worker pool. Local
// execution still dedups through the shared singleflight runners, so a
// concurrent sweep or sim job asking for the same simulation joins
// rather than re-running it.
func (s *Server) evalPoint(ctx context.Context, job *Job, spec JobSpec) (string, error) {
	hash := spec.Hash()
	if e, ok := s.cache.Get(hash); ok {
		s.metrics.searchCacheHits.Add(1)
		return e.Output, nil
	}
	if s.cfg.CacheFetch != nil {
		if out, ok := s.cfg.CacheFetch(hash); ok {
			s.cache.Put(cacheEntry{Hash: hash, Kind: "eval", Output: out})
			s.metrics.remoteCacheHits.Add(1)
			s.metrics.searchCacheHits.Add(1)
			return out, nil
		}
	}
	if s.cfg.EvalRemote != nil {
		out, handled, err := s.cfg.EvalRemote(ctx, spec)
		if handled {
			if err != nil {
				return "", err
			}
			s.cache.Put(cacheEntry{Hash: hash, Kind: "eval", Output: out})
			return out, nil
		}
	}
	runner, err := s.runnerFor(spec)
	if err != nil {
		return "", err
	}
	view := runner.WithContext(ctx).WithLog(job.events.Append).WithTelemetry(job.tel)
	if s.ckpts != nil {
		view = view.WithCheckpoint(s.checkpointPolicy(job, obs.FromContext(ctx)))
	}
	out, err := execute(ctx, view, spec)
	if err != nil {
		return "", err
	}
	s.cache.Put(cacheEntry{Hash: hash, Kind: "eval", Output: out})
	return out, nil
}

// runSearch executes one "search" job to completion and returns the
// canonical Result JSON (which the content-addressed cache may then
// serve to identical resubmissions: the engine is deterministic in the
// spec, so the cached output is the re-run's output). ctx is the job
// context, optionally carrying the run span so cluster eval fan-out
// hops join the job's trace.
func (s *Server) runSearch(ctx context.Context, job *Job) (string, error) {
	n := job.Spec.normalized()
	if n.Search == nil {
		return "", fmt.Errorf("server: search job missing the \"search\" spec")
	}
	sspec := n.Search.Normalize()
	if _, err := workload.MixByName(sspec.Mix); err != nil {
		return "", err
	}
	opts := search.Options{
		Eval:     &searchEval{s: s, job: job, base: n, spec: sspec},
		Parallel: s.cfg.SimParallel,
		Log:      job.events.Append,
	}

	// Progress: the SSE feed carries every incumbent-frontier change as
	// one "frontier ..." line (canonical JSON, so clients can parse it),
	// and the Prometheus counters advance by deltas — Progress reports
	// per-run cumulative numbers, the metrics are daemon-lifetime.
	var lastFrontier string
	var lastHits int64
	opts.OnProgress = func(p search.Progress) {
		s.metrics.searchFrontier.Store(int64(p.FrontierSize))
		if d := p.CacheHits - lastHits; d > 0 {
			lastHits = p.CacheHits
			s.metrics.searchCacheHits.Add(d)
		}
		b, err := json.Marshal(p.Frontier)
		if err != nil {
			return
		}
		if string(b) != lastFrontier {
			lastFrontier = string(b)
			job.events.Append(fmt.Sprintf("frontier (%s, %d evaluated, size %d) %s",
				p.Stage, p.Evaluated, p.FrontierSize, b))
		}
	}

	// Durability: engine snapshots land in the checkpoint blob store
	// keyed by the job's content hash, so a restarted daemon's recovered
	// job (same spec, same hash) resumes from the evaluated set, and an
	// evicted node's search migrates with its progress via the usual
	// replicate/fetch pair. The blob itself is spec-hash-guarded, so a
	// stale or foreign blob degrades to a fresh start, never a wrong
	// result.
	if s.ckpts != nil {
		key := "search|" + job.Hash
		opts.Checkpoint = &search.Checkpoint{
			Load: func() []byte {
				if b := s.ckpts.Load(key); b != nil {
					return b
				}
				if s.cfg.CkptFetch == nil {
					return nil
				}
				b := s.cfg.CkptFetch(key)
				if b != nil {
					job.events.Append(fmt.Sprintf("search state for %.12s fetched from cluster", job.Hash))
					if err := s.ckpts.Save(key, b); err != nil {
						s.cfg.Log.Error("search state adopt failed", "job_id", job.ID, "key", key, "err", err)
					}
				}
				return b
			},
			Save: func(blob []byte) {
				cs := s.tracer().Start(obs.FromContext(ctx), obs.KindCheckpointSave, "search checkpoint")
				cs.SetJob(job.ID)
				cs.SetAttr("key", key)
				if err := s.ckpts.Save(key, blob); err != nil {
					cs.SetError(err)
					cs.End()
					s.cfg.Log.Error("search state save failed", "job_id", job.ID, "key", key, "err", err)
					return
				}
				_ = s.journalAppend(walRecord{Type: "checkpoint", Job: job.ID, Key: key})
				if s.cfg.CkptReplicate != nil {
					s.cfg.CkptReplicate(key, blob, cs.Context())
				}
				cs.End()
			},
		}
	}

	res, err := search.Run(ctx, sspec, opts)
	if err != nil {
		return "", err
	}
	return string(res.JSON()), nil
}

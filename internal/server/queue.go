package server

import (
	"container/heap"
	"errors"
	"sync"
)

// ErrQueueFull is returned by Push when the queue is at capacity; the
// HTTP layer maps it to 429 with a Retry-After hint (admission control:
// better to shed load at the door than to grow an unbounded backlog).
var ErrQueueFull = errors.New("server: job queue full")

// ErrQueueClosed is returned by Push once draining has begun; the HTTP
// layer maps it to 503.
var ErrQueueClosed = errors.New("server: job queue closed")

// queue is a bounded priority queue of jobs: higher Priority pops
// first, FIFO within a priority level (a strictly increasing sequence
// number breaks ties, so equal-priority jobs cannot starve each other).
// Close stops admission but lets Pop drain the remaining items — the
// graceful-shutdown contract.
type queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  jobHeap
	max    int
	seq    int64
	closed bool
}

func newQueue(max int) *queue {
	q := &queue{max: max}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push enqueues a job or reports why it cannot.
func (q *queue) Push(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrQueueClosed
	}
	if len(q.items) >= q.max {
		return ErrQueueFull
	}
	q.seq++
	heap.Push(&q.items, queued{job: j, prio: j.Spec.Priority, seq: q.seq})
	q.cond.Signal()
	return nil
}

// Pop blocks until an item is available and returns it; ok is false
// once the queue is closed and fully drained.
func (q *queue) Pop() (j *Job, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return nil, false
	}
	it := heap.Pop(&q.items).(queued)
	return it.job, true
}

// pushRecovered enqueues a replayed job, bypassing the admission bound:
// recovery must never shed work the daemon already acknowledged with a
// 202. Only used during boot, before the HTTP listener is up.
func (q *queue) pushRecovered(j *Job) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.seq++
	heap.Push(&q.items, queued{job: j, prio: j.Spec.Priority, seq: q.seq})
	q.cond.Signal()
}

// pushBypass enqueues past the admission bound at runtime — the
// lease-expiry migration path: work a dead peer already acknowledged
// must land on a survivor even when that survivor's queue is full.
// Unlike pushRecovered it reports closure, because migrations race
// drains and the coordinator must know to pick another survivor.
func (q *queue) pushBypass(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrQueueClosed
	}
	q.seq++
	heap.Push(&q.items, queued{job: j, prio: j.Spec.Priority, seq: q.seq})
	q.cond.Signal()
	return nil
}

// Len reports the current depth (the queue_depth gauge).
func (q *queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Close stops admission and wakes every blocked Pop.
func (q *queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// queued is one heap entry.
type queued struct {
	job  *Job
	prio int
	seq  int64
}

// jobHeap implements container/heap ordered by (priority desc, seq asc).
type jobHeap []queued

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if h[i].prio != h[j].prio {
		return h[i].prio > h[j].prio
	}
	return h[i].seq < h[j].seq
}
func (h jobHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x any)   { *h = append(*h, x.(queued)) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

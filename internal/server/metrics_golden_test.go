package server

import (
	"bufio"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// TestMetricsGoldenScrape pins the exact /metrics exposition of a fresh
// daemon: family set, sorted order, HELP/TYPE text, bucket edges and the
// Prometheus content type. Any drift — a renamed family, a reordered
// bucket, a lost HELP string — breaks the scrape contract dashboards and
// recording rules are written against, so it must show up in review as a
// golden diff, not as a silent change.
//
// Regenerate deliberately with: go test ./internal/server/ -run Golden -update
func TestMetricsGoldenScrape(t *testing.T) {
	s, err := New(Config{Workers: 1, QueueMax: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", rec.Code)
	}
	if got, want := rec.Header().Get("Content-Type"), "text/plain; version=0.0.4; charset=utf-8"; got != want {
		t.Errorf("Content-Type = %q, want %q", got, want)
	}
	body := rec.Body.String()

	golden := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if body != string(want) {
		t.Errorf("scrape drifted from %s (regenerate deliberately with -update):\n%s",
			golden, diffLines(string(want), body))
	}

	// Sorted-family invariant, independent of the golden file.
	var prev string
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		name, ok := strings.CutPrefix(sc.Text(), "# HELP ")
		if !ok {
			continue
		}
		name = strings.SplitN(name, " ", 2)[0]
		if prev != "" && name <= prev {
			t.Errorf("family %s emitted after %s — exposition not sorted", name, prev)
		}
		prev = name
	}
}

// diffLines renders a minimal first-divergence report for golden
// mismatches.
func diffLines(want, got string) string {
	w, g := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(w) || i < len(g); i++ {
		var lw, lg string
		if i < len(w) {
			lw = w[i]
		}
		if i < len(g) {
			lg = g[i]
		}
		if lw != lg {
			return fmt.Sprintf("first divergence at line %d:\n  want %q\n  got  %q", i+1, lw, lg)
		}
	}
	return "(no line-level difference)"
}

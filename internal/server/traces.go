package server

import (
	"fmt"
	"net/http"
	"strconv"

	"eruca/internal/obs"
)

// Trace endpoints: the node's bounded span ring as JSON or Perfetto
// trace-event JSON.
//
//	GET /v1/traces                     every retained span (?trace= filters one trace)
//	GET /v1/jobs/{id}/trace            the spans of one job's trace
//
// Both accept ?perfetto=1 for a Chrome trace-event document; the
// job-scoped export merges the job's simulator telemetry events into
// the same document, so service spans and DRAM command timelines open
// side by side in ui.perfetto.dev.

// traceView is the JSON rendering of a span query.
type traceView struct {
	Node  string     `json:"node,omitempty"`
	Total uint64     `json:"spans_total"`
	Spans []obs.Span `json:"spans"`
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	t := s.tracer()
	if t == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("tracing disabled (run with -spans > 0)"))
		return
	}
	spans := t.Spans()
	if id := r.URL.Query().Get("trace"); id != "" {
		spans = t.Trace(id)
	}
	if r.URL.Query().Get("perfetto") != "" {
		w.Header().Set("Content-Type", "application/json")
		_ = obs.WriteTrace(w, spans)
		return
	}
	writeJSON(w, http.StatusOK, traceView{Node: t.Node(), Total: t.Total(), Spans: spans})
}

func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	t := s.tracer()
	if t == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("tracing disabled (run with -spans > 0)"))
		return
	}
	j := s.Job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	tc := j.TraceContext()
	if !tc.Valid() {
		writeError(w, http.StatusNotFound, fmt.Errorf("job %s has no trace (submitted before tracing was enabled)", j.ID))
		return
	}
	spans := t.Trace(tc.Trace)
	if r.URL.Query().Get("perfetto") != "" {
		recent := 1024
		if v, err := strconv.Atoi(r.URL.Query().Get("recent")); err == nil && v >= 0 {
			recent = min(v, 4096)
		}
		w.Header().Set("Content-Type", "application/json")
		// Merge the job's simulator event rings onto the span timeline.
		_ = obs.WriteMergedTrace(w, spans, j.Telemetry().Recent(-1, -1, recent), j.Telemetry().Runs())
		return
	}
	writeJSON(w, http.StatusOK, traceView{Node: t.Node(), Total: t.Total(), Spans: spans})
}

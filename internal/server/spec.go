// Package server turns the ERUCA evaluation engine into a long-lived
// simulation-as-a-service daemon: a JSON HTTP API over a bounded
// priority job queue, a worker pool that shares singleflight-cached
// exp.Runners (concurrent duplicate submissions collapse to one
// simulation), a content-addressed result cache with optional on-disk
// persistence, live progress streaming over SSE, Prometheus-text
// metrics, and graceful drain on shutdown.
//
// The subsystem exists because design-space studies amortize: thousands
// of near-duplicate configuration points (VSB/EWLR/RAP/DDB sweeps of
// Sec. VII-VIII) hit the same (system, mix, frag) simulations, so
// dedup, caching and admission control dominate end-to-end throughput
// once more than one client is asking.
package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"eruca/internal/cli"
	"eruca/internal/config"
	"eruca/internal/exp"
	"eruca/internal/search"
	"eruca/internal/sim"
	"eruca/internal/workload"
)

// JobSpec is the wire format of POST /v1/jobs: one simulation ("sim"),
// one experiment table ("sweep"), one design-space autotuning run
// ("search"), or one design-point evaluation ("eval", the unit a search
// fans out). The zero values of the scaling knobs inherit the daemon
// defaults, so a minimal spec is {"kind":"sim","system":"ddr4","mix":"mix0"}.
type JobSpec struct {
	// Kind selects the job type: "sim", "sweep", "search", or "eval".
	Kind string `json:"kind"`

	// Sim jobs: one preset against a mix or ad-hoc benchmark list.
	System  string   `json:"system,omitempty"`
	Mix     string   `json:"mix,omitempty"`
	Benches []string `json:"benches,omitempty"`

	// Sweep jobs: a named experiment (fig4, locality, fig12, fig13a,
	// fig13b, fig14, fig15, fig16a, fig16b, ablations, attribution,
	// gddr5, tab1, tab2, tab3, fig11, repair, sweep). Exp "sweep"
	// tabulates the Systems list; "attribution" walks the mechanism
	// ladder with Planes planes; Mixes restricts the workload mixes of
	// any sweep.
	Exp     string   `json:"exp,omitempty"`
	Systems []string `json:"systems,omitempty"`
	Mixes   []string `json:"mixes,omitempty"`

	// Search jobs: the autotuner spec (internal/search). The search seed
	// lives inside it — the engine rejects an unseeded spec — while the
	// shared Seed below still seeds the underlying simulations.
	Search *search.Spec `json:"search,omitempty"`

	// Eval jobs: one canonical design-point assignment (dimension name
	// -> ladder value, "-" for masked dimensions), evaluated at Instrs
	// on Mix/Frag. Searches submit these; clients can too.
	Point map[string]string `json:"point,omitempty"`

	// Shared scaling knobs (defaults: planes 4, stock bus, 250k instrs,
	// warmup instrs/2, seed 42).
	Planes int     `json:"planes,omitempty"`
	BusMHz float64 `json:"bus_mhz,omitempty"`
	Instrs int64   `json:"instrs,omitempty"`
	Warmup int64   `json:"warmup,omitempty"`
	Frag   float64 `json:"frag"`
	Seed   int64   `json:"seed,omitempty"`

	// Robustness options, same syntax as the CLI flags of the same
	// names (internal/cli.Robust validates both).
	Check    string `json:"check,omitempty"`
	Watchdog int64  `json:"watchdog,omitempty"`
	Latency  int64  `json:"latency,omitempty"`
	Faults   string `json:"faults,omitempty"`

	// Service knobs; excluded from the content hash because they do not
	// affect the result.
	Priority  int   `json:"priority,omitempty"`
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// normalized returns the spec with every default made explicit, so two
// specs that mean the same job hash identically.
func (s JobSpec) normalized() JobSpec {
	n := s
	if n.Kind == "" {
		n.Kind = "sim"
	}
	if n.Kind == "sim" && n.System == "" {
		n.System = "ddr4"
	}
	if n.Kind == "sim" && n.Mix == "" && len(n.Benches) == 0 {
		n.Mix = "mix0"
	}
	if n.Kind == "sweep" && n.Exp == "" {
		n.Exp = "fig12"
	}
	if n.Kind == "eval" && n.Mix == "" {
		n.Mix = "mix0"
	}
	if n.Kind == "search" && n.Search != nil {
		// The search spec normalizes its own defaults so two specs that
		// mean the same search hash identically (same rule as the job
		// fields below).
		ns := n.Search.Normalize()
		n.Search = &ns
	}
	if n.Planes == 0 {
		n.Planes = 4
	}
	if n.BusMHz == 0 {
		n.BusMHz = config.DefaultBusMHz
	}
	if n.Instrs == 0 {
		n.Instrs = exp.DefaultParams().Instrs
	}
	if n.Warmup == 0 {
		n.Warmup = n.Instrs / 2
	}
	if n.Seed == 0 {
		n.Seed = exp.DefaultParams().Seed
	}
	if n.Check == "" {
		n.Check = "off"
	}
	// Service knobs are not part of the content identity.
	n.Priority, n.TimeoutMS = 0, 0
	return n
}

// Hash is the content address of the spec: SHA-256 over the canonical
// JSON of the normalized spec. Two submissions with equal hashes are
// guaranteed to produce byte-identical results, which is what lets the
// result cache and the singleflight runner collapse them.
func (s JobSpec) Hash() string {
	b, err := json.Marshal(s.normalized())
	if err != nil {
		// JobSpec contains only marshalable fields; failure here is a
		// programmer error, but a degraded unique key keeps the daemon up.
		return fmt.Sprintf("unhashable-%p", &b)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// groupKey identifies the exp.Runner parameter group the spec executes
// under: every knob that is Runner-wide rather than per-call. Specs in
// the same group share one singleflight Runner (and therefore its
// simulation cache); specs in different groups must not, because their
// results legitimately differ.
func (s JobSpec) groupKey() string {
	n := s.normalized()
	return fmt.Sprintf("i%d|w%d|s%d|m%s|c%s|wd%d|l%d|f%s",
		n.Instrs, n.Warmup, n.Seed, strings.Join(n.Mixes, ","), n.Check, n.Watchdog, n.Latency, n.Faults)
}

// params builds the exp.Params of the spec's runner group.
func (s JobSpec) params() (exp.Params, error) {
	n := s.normalized()
	rb := cli.Robust{CheckMode: n.Check, WatchdogBudget: n.Watchdog, LatencyCeiling: n.Latency, FaultSpec: n.Faults}
	copts, wd, plan, err := rb.Build()
	if err != nil {
		return exp.Params{}, err
	}
	p := exp.Params{Instrs: n.Instrs, Warmup: n.Warmup, Seed: n.Seed, Mixes: n.Mixes,
		Watchdog: wd, Faults: plan}
	if copts != nil {
		p.Check = copts.Mode
	}
	return p, nil
}

// sweeps maps experiment names to table builders; "sweep" additionally
// consumes the Systems list.
var sweeps = map[string]func(r *exp.Runner, frag float64) (*exp.Table, error){
	"tab1":      func(*exp.Runner, float64) (*exp.Table, error) { return exp.Tab1(), nil },
	"tab2":      func(*exp.Runner, float64) (*exp.Table, error) { return exp.Tab2(), nil },
	"tab3":      func(*exp.Runner, float64) (*exp.Table, error) { return exp.Tab3(), nil },
	"fig11":     func(*exp.Runner, float64) (*exp.Table, error) { return exp.Fig11(), nil },
	"repair":    func(*exp.Runner, float64) (*exp.Table, error) { return exp.Repair(), nil },
	"fig4":      (*exp.Runner).Fig4,
	"locality":  (*exp.Runner).Locality,
	"fig12":     (*exp.Runner).Fig12,
	"fig13a":    (*exp.Runner).Fig13a,
	"fig13b":    (*exp.Runner).Fig13b,
	"fig14":     (*exp.Runner).Fig14,
	"fig15":     (*exp.Runner).Fig15,
	"fig16a":    (*exp.Runner).Fig16a,
	"fig16b":    (*exp.Runner).Fig16b,
	"ablations": (*exp.Runner).Ablations,
	"gddr5":     (*exp.Runner).GDDR5,
}

// Validate rejects malformed specs at admission time (HTTP 400), before
// they cost a queue slot: unknown kinds/experiments, unknown presets or
// benchmarks, and invalid robustness options.
func (s JobSpec) Validate() error {
	n := s.normalized()
	if _, err := n.params(); err != nil {
		return err
	}
	switch n.Kind {
	case "sim":
		if _, err := config.ByName(n.System, n.Planes, n.BusMHz); err != nil {
			return err
		}
		if _, err := n.benches(); err != nil {
			return err
		}
	case "sweep":
		if _, ok := sweeps[n.Exp]; !ok && n.Exp != "sweep" && n.Exp != "attribution" {
			return fmt.Errorf("server: unknown experiment %q", n.Exp)
		}
		if n.Exp == "sweep" {
			if _, err := cli.ParseSystems(strings.Join(n.Systems, ","), n.Planes, n.BusMHz); err != nil {
				return err
			}
		}
		if _, err := cli.ParseMixes(strings.Join(n.Mixes, ",")); err != nil {
			return err
		}
	case "search":
		if n.Search == nil {
			return fmt.Errorf("server: search job missing the \"search\" spec")
		}
		if _, err := n.Search.Validate(); err != nil {
			return err
		}
		if _, err := workload.MixByName(n.Search.Normalize().Mix); err != nil {
			return err
		}
	case "eval":
		if len(n.Point) == 0 {
			return fmt.Errorf("server: eval job missing the design point")
		}
		if _, err := search.ParseAssignment(n.Point); err != nil {
			return err
		}
		if _, err := workload.MixByName(n.Mix); err != nil {
			return err
		}
	default:
		return fmt.Errorf("server: unknown job kind %q (want sim, sweep, search, or eval)", n.Kind)
	}
	if n.Frag < 0 || n.Frag > 1 {
		return fmt.Errorf("server: frag %.2f out of range [0,1]", n.Frag)
	}
	if s.TimeoutMS < 0 {
		return fmt.Errorf("server: negative timeout_ms")
	}
	return nil
}

// benches resolves the sim-job workload via the shared CLI rule.
func (s JobSpec) benches() ([]string, error) {
	return cli.Workload{Mix: s.Mix, Bench: strings.Join(s.Benches, ",")}.Benches("mix0")
}

// SimSummary is the deterministic JSON result of a "sim" job — the
// fields of sim.Result that serialize stably.
type SimSummary struct {
	System       string    `json:"system"`
	Benches      []string  `json:"benches"`
	IPC          []float64 `json:"ipc"`
	MPKI         []float64 `json:"mpki"`
	BusCycles    int64     `json:"bus_cycles"`
	ElapsedNS    float64   `json:"elapsed_ns"`
	RowHitRate   float64   `json:"row_hit_rate"`
	PlaneConfPre float64   `json:"plane_conflict_pre_frac"`
	Acts         uint64    `json:"acts"`
	Reads        uint64    `json:"reads"`
	Writes       uint64    `json:"writes"`
	Pres         uint64    `json:"pres"`
	Refreshes    uint64    `json:"refreshes"`
	EnergyNJ     float64   `json:"energy_nj"`
	QueueLatMean float64   `json:"queue_lat_mean_ns"`
	HugeCoverage float64   `json:"huge_coverage"`
	AchievedFMFI float64   `json:"achieved_fmfi"`
	Faults       int       `json:"faults_injected,omitempty"`
	Violations   int       `json:"protocol_violations,omitempty"`
	Partial      bool      `json:"partial,omitempty"`
}

func summarize(res *sim.Result) *SimSummary {
	d := res.DRAM
	return &SimSummary{
		System: res.System, Benches: res.Benches,
		IPC: res.IPC, MPKI: res.MPKI,
		BusCycles: res.BusCycles, ElapsedNS: res.ElapsedNS,
		RowHitRate: res.RowHitRate(), PlaneConfPre: res.PlaneConflictPreFrac(),
		Acts: d.Acts, Reads: d.Reads, Writes: d.Writes, Pres: d.Pres, Refreshes: d.Refreshes,
		EnergyNJ: res.Energy.TotalNJ(), QueueLatMean: res.QueueLat.Mean(),
		HugeCoverage: res.HugeCoverage, AchievedFMFI: res.AchievedFMFI,
		Faults: res.FaultsInjected, Violations: len(res.Protocol), Partial: res.Partial,
	}
}

// EvalSummary is the deterministic JSON result of an "eval" job: the
// three autotuner objectives of one canonical design point. The search
// engine parses this to score points, so the encoding (like SimSummary)
// is part of the wire contract.
type EvalSummary struct {
	Point    string  `json:"point"`
	Instrs   int64   `json:"instrs"`
	IPC      float64 `json:"ipc"`
	EnergyNJ float64 `json:"energy_nj"`
	AreaPct  float64 `json:"area_pct"`
}

// execute runs the spec on the given (context- and log-scoped) runner
// view and returns the rendered result: canonical JSON for a sim or
// eval job, a formatted text table for a sweep ("search" jobs never
// reach here — Server.runSearch drives the engine, which fans out into
// "eval" executions). The output depends only on the normalized spec,
// never on cache state or concurrency — the property the
// content-addressed cache relies on.
func execute(ctx context.Context, r *exp.Runner, spec JobSpec) (string, error) {
	n := spec.normalized()
	switch n.Kind {
	case "eval":
		a, err := search.ParseAssignment(n.Point)
		if err != nil {
			return "", err
		}
		sys, err := search.SystemFor(a, n.BusMHz)
		if err != nil {
			return "", err
		}
		mix, err := workload.MixByName(n.Mix)
		if err != nil {
			return "", err
		}
		res, err := r.Result(sys, mix, n.Frag)
		if err != nil {
			return "", err
		}
		m := search.MetricsFor(sys, res)
		b, err := json.MarshalIndent(EvalSummary{
			Point: search.Key(a), Instrs: n.Instrs,
			IPC: m.IPC, EnergyNJ: m.EnergyNJ, AreaPct: m.AreaPct,
		}, "", "  ")
		if err != nil {
			return "", err
		}
		return string(b) + "\n", nil
	case "sim":
		sys, err := config.ByName(n.System, n.Planes, n.BusMHz)
		if err != nil {
			return "", err
		}
		benches, err := n.benches()
		if err != nil {
			return "", err
		}
		mix := workload.Mix{Name: strings.Join(benches, "+"), Bench: benches}
		res, err := r.Result(sys, mix, n.Frag)
		if err != nil {
			return "", err
		}
		b, err := json.MarshalIndent(summarize(res), "", "  ")
		if err != nil {
			return "", err
		}
		return string(b) + "\n", nil
	case "sweep":
		var (
			t   *exp.Table
			err error
		)
		switch n.Exp {
		case "sweep":
			var systems []*config.System
			systems, err = cli.ParseSystems(strings.Join(n.Systems, ","), n.Planes, n.BusMHz)
			if err != nil {
				return "", err
			}
			t, err = r.Sweep(systems, n.Frag)
		case "attribution":
			// Per-mechanism speedup attribution; Planes sizes the ladder.
			t, err = r.Attribution(n.Planes, n.Frag)
		default:
			t, err = sweeps[n.Exp](r, n.Frag)
		}
		// A canceled sweep must not be served from a half-built table;
		// other per-cell failures (SweepError) still return the annotated
		// table alongside the error.
		if err != nil && t != nil && ctx.Err() == nil {
			return t.Format(), err
		}
		if err != nil {
			return "", err
		}
		return t.Format(), nil
	}
	return "", fmt.Errorf("server: unknown job kind %q", n.Kind)
}

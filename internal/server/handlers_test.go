package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func newHTTPServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := newTestServer(t, cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, hs
}

func postJob(t *testing.T, base string, spec JobSpec) (int, view) {
	t.Helper()
	b, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v view
	_ = json.NewDecoder(resp.Body).Decode(&v)
	return resp.StatusCode, v
}

func getJob(t *testing.T, base, id string) view {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v view
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func waitDone(t *testing.T, base, id string, within time.Duration) view {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		v := getJob(t, base, id)
		if v.State.Terminal() {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %s", id, v.State, within)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestHTTPEndToEnd drives the full client flow over real HTTP: N
// concurrent duplicate submissions, polling, metrics proving the dedup,
// and a 404 for an unknown job.
func TestHTTPEndToEnd(t *testing.T) {
	_, hs := newHTTPServer(t, Config{Workers: 4})
	spec := testSpec()

	const n = 4
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, v := postJob(t, hs.URL, spec)
			if code != http.StatusAccepted {
				t.Errorf("POST %d: status %d", i, code)
				return
			}
			if v.ID == "" || v.Hash == "" {
				t.Errorf("POST %d: incomplete view %+v", i, v)
			}
			ids[i] = v.ID
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	var outputs []string
	for _, id := range ids {
		v := waitDone(t, hs.URL, id, 60*time.Second)
		if v.State != StateDone {
			t.Fatalf("job %s state %s (error %+v)", id, v.State, v.Error)
		}
		outputs = append(outputs, v.Result)
	}
	for _, out := range outputs[1:] {
		if out != outputs[0] {
			t.Error("duplicate submissions produced different results")
		}
	}

	// /metrics proves exactly one simulation ran.
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	if !strings.Contains(text, "eruca_sim_runs_total 1\n") {
		t.Errorf("metrics do not show exactly one simulation:\n%s", grepMetrics(text, "eruca_sim"))
	}
	if !strings.Contains(text, `eruca_jobs_completed_total{class="ok"} 4`) {
		t.Errorf("metrics missing 4 ok completions:\n%s", grepMetrics(text, "completed"))
	}

	// Unknown job -> 404 with a typed error body.
	r404, err := http.Get(hs.URL + "/v1/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	defer r404.Body.Close()
	if r404.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status %d", r404.StatusCode)
	}
}

func grepMetrics(text, substr string) string {
	var out []string
	for _, l := range strings.Split(text, "\n") {
		if strings.Contains(l, substr) && !strings.HasPrefix(l, "#") {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}

// TestHTTPCancelAndSSE starts a long job, watches its event stream, and
// cancels it over HTTP; the stream must end with a "done" frame naming
// the canceled state.
func TestHTTPCancelAndSSE(t *testing.T) {
	_, hs := newHTTPServer(t, Config{Workers: 1})
	code, v := postJob(t, hs.URL, JobSpec{Kind: "sim", System: "ddr4", Mix: "mix0", Instrs: 50_000_000, Frag: 0.1})
	if code != http.StatusAccepted {
		t.Fatalf("POST status %d", code)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", hs.URL+"/v1/jobs/"+v.ID+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type %q", ct)
	}

	// Read frames in the background, recording whether a done frame
	// with the canceled state arrives.
	frames := make(chan string, 64)
	go func() {
		defer close(frames)
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			frames <- sc.Text()
		}
	}()

	// Give the job a moment to start, then cancel over HTTP.
	deadline := time.Now().Add(10 * time.Second)
	for getJob(t, hs.URL, v.ID).State != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	req, _ = http.NewRequest("DELETE", hs.URL+"/v1/jobs/"+v.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE status %d", dresp.StatusCode)
	}

	var sawDone, sawCanceled bool
	for line := range frames {
		if strings.HasPrefix(line, "event: done") {
			sawDone = true
		}
		if sawDone && strings.Contains(line, string(StateCanceled)) {
			sawCanceled = true
		}
	}
	if !sawDone || !sawCanceled {
		t.Errorf("SSE stream missing done/canceled frame (done=%v canceled=%v)", sawDone, sawCanceled)
	}
	if st := waitDone(t, hs.URL, v.ID, 5*time.Second).State; st != StateCanceled {
		t.Errorf("final state %s, want canceled", st)
	}

	// DELETE on a terminal job is a conflict, not a crash.
	req, _ = http.NewRequest("DELETE", hs.URL+"/v1/jobs/"+v.ID, nil)
	dresp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp2.Body.Close()
	if dresp2.StatusCode != http.StatusConflict {
		t.Errorf("second DELETE status %d, want 409", dresp2.StatusCode)
	}
}

// TestHTTPAdmissionAndDrain exercises the load-shedding responses: 429
// with Retry-After when the queue is full, 503 plus failing health
// checks while draining.
func TestHTTPAdmissionAndDrain(t *testing.T) {
	s, hs := newHTTPServer(t, Config{Workers: 1, QueueMax: 1})
	long := func(mix string) JobSpec {
		return JobSpec{Kind: "sim", System: "ddr4", Mix: mix, Instrs: 50_000_000, Frag: 0.1}
	}
	code, first := postJob(t, hs.URL, long("mix0"))
	if code != http.StatusAccepted {
		t.Fatalf("first POST: %d", code)
	}
	deadline := time.Now().Add(10 * time.Second)
	for getJob(t, hs.URL, first.ID).State != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code, _ := postJob(t, hs.URL, long("mix1")); code != http.StatusAccepted {
		t.Fatalf("second POST: %d", code)
	}
	b, _ := json.Marshal(long("mix2"))
	resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third POST: %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After")
	}
	var eb struct {
		Error errorBody `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Error.Message == "" {
		t.Errorf("429 body not a typed error: %+v (%v)", eb, err)
	}
	resp.Body.Close()

	// Bad specs are rejected with 400 before costing a queue slot.
	r400, err := http.Post(hs.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"sim","system":"not-a-system"}`))
	if err != nil {
		t.Fatal(err)
	}
	r400.Body.Close()
	if r400.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid spec status %d, want 400", r400.StatusCode)
	}
	runknown, err := http.Post(hs.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"sim","surprise":true}`))
	if err != nil {
		t.Fatal(err)
	}
	runknown.Body.Close()
	if runknown.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field status %d, want 400", runknown.StatusCode)
	}

	// Cancel the backlog, then drain: health flips to 503 and new
	// submissions are refused with 503.
	for _, j := range s.Jobs() {
		j.Cancel()
	}
	ctx, cancelDrain := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancelDrain()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	hresp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz during drain: %d, want 503", hresp.StatusCode)
	}
	if code, _ := postJob(t, hs.URL, testSpec()); code != http.StatusServiceUnavailable {
		t.Errorf("POST during drain: %d, want 503", code)
	}
}

// TestHTTPJobList covers GET /v1/jobs.
func TestHTTPJobList(t *testing.T) {
	_, hs := newHTTPServer(t, Config{Workers: 2})
	for i := 0; i < 3; i++ {
		spec := testSpec()
		spec.Seed = int64(100 + i)
		if code, _ := postJob(t, hs.URL, spec); code != http.StatusAccepted {
			t.Fatalf("POST %d failed", i)
		}
	}
	resp, err := http.Get(hs.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var views []view
	if err := json.NewDecoder(resp.Body).Decode(&views); err != nil {
		t.Fatal(err)
	}
	if len(views) != 3 {
		t.Fatalf("listed %d jobs, want 3", len(views))
	}
	for i, v := range views {
		if want := fmt.Sprintf("job-%06d", i+1); v.ID != want {
			t.Errorf("job %d id %s, want %s", i, v.ID, want)
		}
	}
}

// TestHTTPIdempotencyKey proves the wire half of idempotent submission:
// the second POST with the same Idempotency-Key returns 200 (not 202)
// and the original job.
func TestHTTPIdempotencyKey(t *testing.T) {
	_, hs := newHTTPServer(t, Config{Workers: 2})
	post := func(key string) (int, view) {
		b, _ := json.Marshal(testSpec())
		req, _ := http.NewRequest("POST", hs.URL+"/v1/jobs", bytes.NewReader(b))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Idempotency-Key", key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var v view
		_ = json.NewDecoder(resp.Body).Decode(&v)
		return resp.StatusCode, v
	}
	code1, v1 := post("same-key")
	if code1 != http.StatusAccepted {
		t.Fatalf("first POST: %d, want 202", code1)
	}
	code2, v2 := post("same-key")
	if code2 != http.StatusOK {
		t.Fatalf("replayed POST: %d, want 200", code2)
	}
	if v1.ID != v2.ID {
		t.Errorf("replayed POST returned a different job: %s vs %s", v1.ID, v2.ID)
	}
	code3, v3 := post("other-key")
	if code3 != http.StatusAccepted || v3.ID == v1.ID {
		t.Errorf("distinct key: status %d job %s (original %s)", code3, v3.ID, v1.ID)
	}
	waitDone(t, hs.URL, v1.ID, 60*time.Second)
	waitDone(t, hs.URL, v3.ID, 60*time.Second)
}

// sseFrame is one parsed SSE frame: its id (-1 when absent) and data.
type sseFrame struct {
	id   int
	data string
}

// readFrames consumes SSE frames from r until fn returns false.
func readFrames(r io.Reader, fn func(sseFrame) bool) {
	sc := bufio.NewScanner(r)
	cur := sseFrame{id: -1}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			fmt.Sscanf(line, "id: %d", &cur.id)
		case strings.HasPrefix(line, "data: "):
			cur.data = line[6:]
		case line == "":
			if !fn(cur) {
				return
			}
			cur = sseFrame{id: -1}
		}
	}
}

// TestHTTPSSEGaplessReconnect is the Last-Event-ID contract: a client
// that drops mid-stream and reconnects with the last id it saw receives
// exactly the lines it missed — no duplicates, no gaps.
func TestHTTPSSEGaplessReconnect(t *testing.T) {
	s, hs := newHTTPServer(t, Config{Workers: 1})
	// Occupy the only worker so the observed job stays queued — its
	// event log is then driven entirely by this test.
	_, blocker := postJob(t, hs.URL, JobSpec{Kind: "sim", System: "ddr4", Mix: "mix0", Instrs: 50_000_000, Frag: 0.1})
	code, v := postJob(t, hs.URL, JobSpec{Kind: "sim", System: "ddr4", Mix: "mix1", Instrs: 50_000_000, Frag: 0.1})
	if code != http.StatusAccepted {
		t.Fatalf("POST status %d", code)
	}
	j := s.Job(v.ID)
	for _, line := range []string{"alpha", "beta", "gamma"} {
		j.events.Append(line)
	}

	// First connection: read a few frames, then drop mid-stream.
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "GET", hs.URL+"/v1/jobs/"+v.ID+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var firstSeen []sseFrame
	readFrames(resp.Body, func(f sseFrame) bool {
		firstSeen = append(firstSeen, f)
		return len(firstSeen) < 3 // disconnect after three frames
	})
	cancel()
	resp.Body.Close()
	lastID := firstSeen[len(firstSeen)-1].id
	if lastID < 0 {
		t.Fatalf("frames carried no ids: %+v", firstSeen)
	}

	// Lines appended while disconnected must not be lost.
	for _, line := range []string{"delta", "epsilon"} {
		j.events.Append(line)
	}

	// Reconnect with Last-Event-ID: the continuation must start exactly
	// one past lastID with consecutive ids — gapless, duplicate-free.
	req2, _ := http.NewRequest("GET", hs.URL+"/v1/jobs/"+v.ID+"/events", nil)
	req2.Header.Set("Last-Event-ID", strconv.Itoa(lastID))
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	resp2, err := http.DefaultClient.Do(req2.WithContext(ctx2))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var resumed []sseFrame
	j.events.mu.Lock()
	wantLast := j.events.total - 1
	j.events.mu.Unlock()
	readFrames(resp2.Body, func(f sseFrame) bool {
		resumed = append(resumed, f)
		return f.id < wantLast
	})
	for i, f := range resumed {
		if want := lastID + 1 + i; f.id != want {
			t.Fatalf("frame %d id %d, want %d (frames %+v)", i, f.id, want, resumed)
		}
	}
	var texts []string
	for _, f := range resumed {
		texts = append(texts, f.data)
	}
	joined := strings.Join(texts, " ")
	if !strings.HasSuffix(joined, "delta epsilon") {
		t.Errorf("continuation missing appended lines: %q", joined)
	}

	// Cleanup: cancel both jobs so the worker frees up.
	s.Cancel(blocker.ID)
	s.Cancel(v.ID)
}

package server

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"eruca/internal/obs"
)

// TestSubmitMigratedBypassesAdmissionBound: lease-expiry re-enqueue
// must land even on a survivor whose queue is at capacity — the work
// was already acknowledged cluster-side, so shedding it here would turn
// an eviction into data loss. Regular submissions still bounce off the
// same full queue.
func TestSubmitMigratedBypassesAdmissionBound(t *testing.T) {
	// Workers: 1 and QueueMax: 1, with a long blocker occupying the
	// worker and a second job filling the only queue slot.
	s := newTestServer(t, Config{Workers: 1, QueueMax: 1})
	long := func(mix string) JobSpec {
		return JobSpec{Kind: "sim", System: "ddr4", Mix: mix, Instrs: 50_000_000, Frag: 0.1}
	}
	blocker, err := s.Submit(long("mix0"))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, blocker, StateRunning)
	if _, err := s.Submit(long("mix1")); err != nil {
		t.Fatal(err)
	}

	// The queue is now full: a plain submission is rejected...
	if _, err := s.Submit(long("mix2")); err != ErrQueueFull {
		t.Fatalf("plain submit on full queue: %v, want ErrQueueFull", err)
	}
	// ...but a migrated job is admitted past the bound.
	mig, replayed, err := s.SubmitMigrated(long("mix3"), "mig-key", "w2", obs.SpanContext{})
	if err != nil || replayed {
		t.Fatalf("SubmitMigrated on full queue: %v (replayed=%v)", err, replayed)
	}
	hist, _, unsub := mig.events.SubscribeFrom(-1)
	unsub()
	var lines []string
	for _, ll := range hist {
		lines = append(lines, ll.Text)
	}
	if got := strings.Join(lines, "\n"); !strings.Contains(got, "after eviction of w2") {
		t.Errorf("migrated job's event log does not record the eviction: %q", got)
	}
	// A retried migration (coordinator restart mid-eviction) replays the
	// original instead of enqueueing a twin.
	again, replayed, err := s.SubmitMigrated(long("mix3"), "mig-key", "w2", obs.SpanContext{})
	if err != nil || !replayed || again.ID != mig.ID {
		t.Errorf("migration retry: id %s replayed=%v err=%v, want replay of %s", again.ID, replayed, err, mig.ID)
	}

	for _, j := range []*Job{blocker, mig} {
		j.Cancel()
	}
}

// waitState polls until the job reaches the wanted state.
func waitState(t *testing.T, j *Job, want State) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for j.State() != want {
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s waiting for %s", j.ID, j.State(), want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWALCompactionRacesConcurrentSubmits hammers the submit path while
// a drain (which compacts the WAL) begins. Every job that got a
// successful acknowledgement before the cutoff must survive into the
// compacted journal; submissions that lost the race get a clean
// ErrQueueClosed, never a corrupt or half-written record.
func TestWALCompactionRacesConcurrentSubmits(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{Workers: 4, QueueMax: 256, WALDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()

	var mu sync.Mutex
	accepted := map[string]string{} // job ID -> idem key
	var rejected atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; ; i++ {
				key := "race-" + string(rune('a'+g)) + "-" + string(rune('0'+i%10))
				spec := JobSpec{Kind: "sim", System: "ddr4", Mix: "mix0",
					Instrs: 20_000, Frag: 0.1, Seed: int64(g*1000 + i)}
				j, _, err := s.SubmitWithKey(spec, key)
				if err != nil {
					rejected.Add(1)
					return // drain began: stop submitting
				}
				mu.Lock()
				accepted[j.ID] = key
				mu.Unlock()
			}
		}(g)
	}
	close(start)
	time.Sleep(20 * time.Millisecond) // let submissions build up
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
	if len(accepted) == 0 || rejected.Load() == 0 {
		t.Fatalf("race did not race: %d accepted, %d rejected", len(accepted), rejected.Load())
	}

	// Reopen on the compacted WAL: every acknowledged job is present,
	// finished, and still reachable through its idempotency key.
	s2 := newTestServer(t, Config{WALDir: dir})
	for id, key := range accepted {
		j := s2.Job(id)
		if j == nil {
			t.Fatalf("acknowledged job %s missing after compaction (of %d accepted)", id, len(accepted))
		}
		if !j.State().Terminal() {
			waitJob(t, j, 60*time.Second)
		}
		if jj, replayed, err := s2.SubmitWithKey(j.Spec, key); err != nil || !replayed || jj.ID != id {
			t.Errorf("idempotency key %q after compaction: id %s replayed=%v err=%v, want %s", key, jj.ID, replayed, err, id)
		}
	}
}

// TestClusterRecordsSurviveCompaction: the coordinator's membership and
// placement journal must ride through drain-time WAL compaction via the
// ClusterSnapshot hook and replay on the next boot.
func TestClusterRecordsSurviveCompaction(t *testing.T) {
	dir := t.TempDir()
	spec := JobSpec{Kind: "sim", System: "ddr4", Mix: "mix0", Instrs: 20_000, Frag: 0.1}
	snap := []ClusterRecord{
		{Kind: "join", Node: "w1", Addr: "a:1", Peer: "p:1", Epoch: 4},
		{Kind: "place", Node: "w1", Job: "w1-job-000001", Hash: spec.Hash(), Spec: &spec},
		{Kind: "migrate", Node: "w1", Job: "w2-job-000003", NewID: "w1-job-000002"},
	}
	s, err := New(Config{Workers: 1, QueueMax: 4, WALDir: dir,
		ClusterSnapshot: func() []ClusterRecord { return snap }})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	// Journal some records that compaction should *replace* with the
	// snapshot (the live table, not the raw history, is what survives).
	for _, rec := range []ClusterRecord{
		{Kind: "join", Node: "w2", Addr: "a:2", Peer: "p:2", Epoch: 2},
		{Kind: "evict", Node: "w2"},
	} {
		if err := s.JournalCluster(rec); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	s2 := newTestServer(t, Config{WALDir: dir})
	got := s2.ClusterReplay()
	if len(got) != len(snap) {
		t.Fatalf("replayed %d cluster records, want %d: %+v", len(got), len(snap), got)
	}
	for i, rec := range got {
		if rec.Kind != snap[i].Kind || rec.Node != snap[i].Node || rec.Job != snap[i].Job || rec.NewID != snap[i].NewID {
			t.Errorf("record %d = %+v, want %+v", i, rec, snap[i])
		}
	}
	if got[1].Spec == nil || got[1].Spec.Hash() != spec.Hash() {
		t.Error("placement spec did not survive compaction")
	}
}

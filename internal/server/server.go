package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"eruca/internal/cli"
	"eruca/internal/clock"
	"eruca/internal/errfs"
	"eruca/internal/exp"
	"eruca/internal/obs"
	"eruca/internal/sim"
)

// ErrReadOnly is returned by submissions once the daemon has degraded
// to read-only: a journal write failed (disk full, device error), so it
// can no longer promise durability for new work. Existing jobs keep
// running and reads keep serving; the HTTP layer maps this to 503 with
// Retry-After.
var ErrReadOnly = errors.New("server: journal write failed; daemon is read-only")

// Config sizes the daemon.
type Config struct {
	// Workers is the job worker-pool width (default 4). Workers that
	// join an in-flight duplicate simulation block cheaply, so Workers
	// may exceed SimParallel without oversubscribing the CPU.
	Workers int
	// SimParallel bounds concurrent simulations inside each runner
	// group (default GOMAXPROCS).
	SimParallel int
	// QueueMax is the admission-control bound (default 64); beyond it
	// POST /v1/jobs returns 429 with Retry-After.
	QueueMax int
	// CacheMax bounds the in-memory result cache entries (default 256).
	CacheMax int
	// CachePath, when non-empty, persists the result cache across
	// restarts (loaded at New, flushed on drain).
	CachePath string
	// RetryAfter is the base backoff hint returned with 429/503; the
	// actual hint scales with queue pressure and carries jitter so a
	// thundering herd of rejected clients does not resynchronize
	// (default 2s).
	RetryAfter time.Duration
	// WALDir, when non-empty, enables crash-safe durability: an
	// append-only journal of job lifecycle records plus a checkpoint
	// blob store live under it. On New the journal is replayed —
	// terminal jobs come back with their results, unfinished jobs are
	// re-enqueued and their simulations resume from the last stored
	// checkpoint instead of cycle zero.
	WALDir string
	// CheckpointCycles is the simulation checkpoint cadence in bus
	// cycles when WALDir is set (default 50_000).
	CheckpointCycles int64
	// Pprof mounts net/http/pprof under /debug/pprof/ when true. Off by
	// default: the profiling surface stays opt-in on shared daemons.
	Pprof bool
	// Log, when non-nil, receives structured daemon lifecycle records
	// (default: discard). Call sites attach job_id / trace_id / node
	// attributes so one grep reconstructs a request.
	Log *slog.Logger
	// Tracer, when non-nil, records a distributed span per lifecycle
	// stage of every job (admit, queue_wait, schedule, run, …) into a
	// bounded ring served at GET /v1/traces. Nil disables tracing at
	// zero cost: the span plumbing through the hot path is nil-receiver
	// no-ops, proven allocation-free.
	Tracer *obs.Tracer
	// SSEKeepalive is the cadence of ": keepalive" comment frames on
	// idle SSE streams so intermediaries (and the cluster proxy path)
	// don't drop quiet connections (default 15s).
	SSEKeepalive time.Duration
	// FS is the filesystem under the durability layer (default the real
	// OS). Chaos tests swap in errfs.Faulty to inject disk failures.
	FS errfs.FS
	// ScrubEvery, when positive and WALDir is set, runs a background
	// checkpoint-blob scrub at this cadence: every blob's sha256 is
	// verified, corrupt blobs are re-fetched from the cluster replica
	// (CkptFetch) or deleted.
	ScrubEvery time.Duration

	// NodeID, when non-empty, prefixes every job ID ("n2" makes
	// "n2-job-000001") so a cluster peer can route any job ID back to
	// the node that owns its record. Standalone daemons leave it empty
	// and keep the plain "job-%06d" IDs.
	NodeID string
	// CacheFetch, when non-nil, is the sharded result cache's
	// read-through: on a local cache miss the worker asks it (the
	// cluster layer queries the hash's ring owner) before paying for a
	// simulation. A fetched result is installed in the local cache too.
	CacheFetch func(hash string) (output string, ok bool)
	// CkptFetch, when non-nil, supplies checkpoint blobs the local
	// store does not have — the migration read path: a job re-enqueued
	// from a dead node resumes from the blob that node replicated to
	// the coordinator before dying.
	CkptFetch func(key string) []byte
	// CkptReplicate, when non-nil, observes every locally saved
	// checkpoint blob — the migration write path (the cluster layer
	// pushes it to the coordinator, asynchronously and best-effort).
	// parent is the saving span's context (invalid when tracing is
	// off), so the replication hop joins the job's trace.
	CkptReplicate func(key string, blob []byte, parent obs.SpanContext)
	// ClusterSnapshot, when non-nil, supplies the cluster-state records
	// (membership, placements) that drain-time WAL compaction must
	// preserve so a restarted coordinator still knows its cluster.
	ClusterSnapshot func() []ClusterRecord
	// OnAdmit, when non-nil, observes every accepted job right after it
	// is enqueued (submission, idempotent or not, and migration). The
	// cluster layer uses it to notify the coordinator of the placement
	// eagerly instead of waiting for the next heartbeat — a node can
	// die inside a heartbeat window, and placement knowledge is what
	// makes its jobs recoverable.
	OnAdmit func(j *Job)
	// EvalRemote, when non-nil, lets one search job fan its design-point
	// evaluations out across the cluster: called with each "eval"
	// JobSpec before evaluating locally, it may route the point to the
	// spec hash's ring owner and return that node's output.
	// handled=false means "evaluate here" — the point hashes to this
	// node, or the cluster is unreachable (transport failures must fall
	// back, never surface: the engine records returned errors as
	// deterministic outcomes of the point).
	EvalRemote func(ctx context.Context, spec JobSpec) (output string, handled bool, err error)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.SimParallel <= 0 {
		c.SimParallel = runtime.GOMAXPROCS(0)
	}
	if c.QueueMax <= 0 {
		c.QueueMax = 64
	}
	if c.CacheMax <= 0 {
		c.CacheMax = 256
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 2 * time.Second
	}
	if c.CheckpointCycles <= 0 {
		c.CheckpointCycles = 50_000
	}
	if c.SSEKeepalive <= 0 {
		c.SSEKeepalive = 15 * time.Second
	}
	if c.Log == nil {
		c.Log = obs.Discard()
	}
	if c.FS == nil {
		c.FS = errfs.OS
	}
	return c
}

// Server is the simulation service: queue, workers, runners, caches.
// Create with New, serve its Handler, stop with Drain (graceful) or
// Close (hard).
type Server struct {
	cfg     Config
	metrics *metrics
	queue   *queue
	cache   *resultCache
	jobs    *registry

	baseCtx  context.Context // parent of every job context
	baseStop context.CancelFunc

	runnerMu sync.Mutex
	runners  map[string]*exp.Runner // groupKey -> shared singleflight runner

	// Durability (nil / empty when Config.WALDir is unset).
	wal   *wal
	ckpts *ckptStore
	// clusterRecs are the cluster-state records replayed from the
	// journal at boot, for the coordinator to reconstruct membership.
	clusterRecs []ClusterRecord

	idemMu sync.Mutex
	idem   map[string]string // Idempotency-Key -> job ID

	draining atomic.Bool
	// degraded flips (sticky) when a journal write fails: the daemon
	// stops admitting work it cannot make durable and serves 503 on
	// submissions until restarted on a healthy disk.
	degraded atomic.Bool
	wg       sync.WaitGroup
}

// New builds a Server, loads the persisted result cache, and — when
// Config.WALDir is set — replays the journal: terminal jobs come back
// with their results, unfinished jobs are re-enqueued (bypassing the
// admission bound: they were already acknowledged with a 202 before the
// crash), and idempotency keys are reinstalled so client retries land
// on the original jobs.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	prefix := ""
	if cfg.NodeID != "" {
		prefix = cfg.NodeID + "-"
	}
	s := &Server{
		cfg:     cfg,
		metrics: newMetrics(),
		queue:   newQueue(cfg.QueueMax),
		cache:   newResultCache(cfg.CacheMax),
		jobs:    newRegistry(prefix),
		runners: make(map[string]*exp.Runner),
		idem:    make(map[string]string),
	}
	s.baseCtx, s.baseStop = context.WithCancel(context.Background())
	// Span-derived latency histograms: queue_wait / run / checkpoint
	// closure feeds the Prometheus families without trace inspection.
	cfg.Tracer.Observe(s.metrics.observeSpan)
	if err := s.cache.Load(cfg.CachePath); err != nil {
		return nil, err
	}
	if n := s.cache.Len(); n > 0 {
		cfg.Log.Info("result cache loaded", "entries", n, "path", cfg.CachePath)
	}
	if cfg.WALDir != "" {
		if err := s.openDurability(cfg.WALDir); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// tracer returns the configured tracer (nil when tracing is disabled —
// every obs call site tolerates that for free).
func (s *Server) tracer() *obs.Tracer { return s.cfg.Tracer }

// Tracer exposes the span ring (nil when tracing is disabled) for the
// trace endpoints and the cluster layer.
func (s *Server) Tracer() *obs.Tracer { return s.cfg.Tracer }

// Log exposes the structured logger for layers stacked on the server.
func (s *Server) Log() *slog.Logger { return s.cfg.Log }

// openDurability opens the journal and checkpoint store under dir and
// replays the journal into the registry and queue.
func (s *Server) openDurability(dir string) error {
	if err := s.cfg.FS.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("server: wal dir: %w", err)
	}
	ckpts, err := newCkptStore(s.cfg.FS, filepath.Join(dir, "checkpoints"))
	if err != nil {
		return fmt.Errorf("server: checkpoint store: %w", err)
	}
	ckpts.onCorrupt = func(key string) {
		s.metrics.blobsCorrupt.Add(1)
		s.cfg.Log.Error("checkpoint blob corrupt", "key", key)
	}
	w, recs, err := openWAL(s.cfg.FS, filepath.Join(dir, "journal.wal"))
	if err != nil {
		return fmt.Errorf("server: wal open: %w", err)
	}
	s.wal, s.ckpts = w, ckpts
	if s.cfg.ScrubEvery > 0 {
		// Plain goroutine, deliberately NOT on s.wg: Drain waits for the
		// workers via wg before canceling baseCtx, and a wg-joined scrub
		// ticker would deadlock that wait.
		go s.scrubLoop()
	}
	for _, rec := range recs {
		if rec.Type == "cluster" && rec.Cluster != nil {
			s.clusterRecs = append(s.clusterRecs, *rec.Cluster)
		}
	}
	jobs, _ := replay(recs)
	var terminal, requeued int
	for _, rj := range jobs {
		j := s.jobs.addRecovered(rj, s.baseCtx)
		j.onTerminal = s.journalFinish
		if rj.idem != "" {
			s.idem[rj.idem] = j.ID
		}
		if rj.state.Terminal() {
			terminal++
			continue
		}
		// A recovered job starts a fresh trace: the pre-crash spans died
		// with the old process's ring.
		admit := s.tracer().Start(obs.SpanContext{}, obs.KindAdmit, "recover")
		admit.SetJob(j.ID)
		j.trace = admit.Context()
		j.events.Append(fmt.Sprintf("recovered from journal as %s (hash %.12s)", j.ID, j.Hash))
		s.queue.pushRecovered(j)
		qs := s.tracer().Start(j.trace, obs.KindQueueWait, "queue wait")
		qs.SetJob(j.ID)
		j.setQueueSpan(qs)
		admit.End()
		s.metrics.recovered.Add(1)
		requeued++
	}
	if len(jobs) > 0 || s.ckpts.Len() > 0 {
		s.cfg.Log.Info("wal replayed",
			"jobs", len(jobs), "terminal", terminal, "requeued", requeued,
			"checkpoint_blobs", s.ckpts.Len())
	}
	return nil
}

// journalFinish is the Job.onTerminal hook: it records the terminal
// transition in the journal. Jobs interrupted by a forced shutdown are
// deliberately NOT journaled as finished — withholding the record is
// what makes a restarted daemon re-run them.
func (s *Server) journalFinish(j *Job) {
	j.mu.Lock()
	state, output, errMsg, interrupted := j.state, j.output, j.errMsg, j.interrupted
	j.mu.Unlock()
	if interrupted {
		_ = s.journalAppend(walRecord{Type: "interrupted", Job: j.ID, State: string(state)})
		return
	}
	ws := s.tracer().Start(j.trace, obs.KindWALAppend, "wal finish")
	ws.SetJob(j.ID)
	rec := walRecord{Type: "finish", Job: j.ID, State: string(state), Error: errMsg}
	if state == StateDone {
		rec.Output = output
	}
	if err := s.journalAppend(rec); err != nil {
		ws.SetError(err)
		s.cfg.Log.Error("wal finish record failed", "job_id", j.ID, "trace_id", j.trace.Trace, "err", err)
	}
	ws.End()
}

// journalAppend appends one record, flipping the daemon into degraded
// read-only mode on failure — a journal that cannot take writes cannot
// back the durability promise a 202 makes.
func (s *Server) journalAppend(rec walRecord) error {
	err := s.wal.append(rec)
	if err != nil {
		s.degrade(err)
	}
	return err
}

// degrade (idempotently) flips the daemon read-only.
func (s *Server) degrade(cause error) {
	if s.degraded.CompareAndSwap(false, true) {
		s.cfg.Log.Error("journal write failed; degrading to read-only", "err", cause)
	}
}

// Degraded reports whether the daemon has gone read-only after a
// journal write failure.
func (s *Server) Degraded() bool { return s.degraded.Load() }

// Scrub verifies every checkpoint blob's checksum once, repairing
// corrupt blobs from the cluster replica tier (CkptFetch) when
// possible. Safe to call any time; the scrub loop and tests share it.
func (s *Server) Scrub() (scanned, corrupt, repaired int) {
	if s.ckpts == nil {
		return 0, 0, 0
	}
	scanned, corrupt, repaired = s.ckpts.Scrub(s.cfg.CkptFetch)
	s.metrics.blobsRepaired.Add(int64(repaired))
	if corrupt > 0 {
		s.cfg.Log.Warn("blob scrub found corruption",
			"scanned", scanned, "corrupt", corrupt, "repaired", repaired)
	}
	return scanned, corrupt, repaired
}

// scrubLoop runs Scrub at the configured cadence until the server
// stops.
func (s *Server) scrubLoop() {
	t := time.NewTicker(s.cfg.ScrubEvery)
	defer t.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-t.C:
			s.Scrub()
		}
	}
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// Start launches the worker pool.
func (s *Server) Start() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				job, ok := s.queue.Pop()
				if !ok {
					return
				}
				s.runJob(job)
			}
		}()
	}
	s.cfg.Log.Info("serving",
		"workers", s.cfg.Workers, "sim_parallel", s.cfg.SimParallel, "queue_max", s.cfg.QueueMax)
}

// Submit validates and enqueues a spec. The returned error is one of
// ErrQueueFull, ErrQueueClosed, or a validation error.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	job, _, err := s.SubmitWithKey(spec, "")
	return job, err
}

// SubmitWithKey is Submit with an optional client idempotency key. A
// resubmission carrying a key the daemon has already accepted returns
// the original job (replayed=true) instead of enqueueing a duplicate —
// across restarts too, when the WAL is enabled, so a client that lost
// its 202 to a crash can retry the POST safely.
func (s *Server) SubmitWithKey(spec JobSpec, idemKey string) (job *Job, replayed bool, err error) {
	return s.SubmitTraced(spec, idemKey, obs.SpanContext{})
}

// SubmitTraced is SubmitWithKey carrying a trace parent (extracted from
// the client's — or a forwarding peer's — traceparent header), so the
// admit span and every lifecycle span of the job join the caller's
// trace. An invalid parent starts a fresh trace when tracing is on.
func (s *Server) SubmitTraced(spec JobSpec, idemKey string, parent obs.SpanContext) (job *Job, replayed bool, err error) {
	admit := s.tracer().Start(parent, obs.KindAdmit, "admit")
	defer admit.End()
	if s.draining.Load() {
		s.metrics.rejectedDraining.Add(1)
		admit.SetError(ErrQueueClosed)
		return nil, false, ErrQueueClosed
	}
	if s.degraded.Load() {
		s.metrics.rejectedReadOnly.Add(1)
		admit.SetError(ErrReadOnly)
		return nil, false, ErrReadOnly
	}
	if err := spec.Validate(); err != nil {
		s.metrics.rejectedInvalid.Add(1)
		admit.SetError(err)
		return nil, false, err
	}
	if idemKey != "" {
		s.idemMu.Lock()
		if id, ok := s.idem[idemKey]; ok {
			s.idemMu.Unlock()
			if j := s.jobs.get(id); j != nil {
				s.metrics.idemReplayed.Add(1)
				admit.SetJob(j.ID)
				admit.SetAttr("replayed", "true")
				return j, true, nil
			}
		} else {
			s.idemMu.Unlock()
		}
	}
	job = s.jobs.add(spec, s.baseCtx, idemKey, admit.Context())
	admit.SetJob(job.ID)
	if s.wal != nil {
		job.onTerminal = s.journalFinish
		sp := spec
		ws := s.tracer().Start(job.trace, obs.KindWALAppend, "wal submit")
		ws.SetJob(job.ID)
		werr := s.journalAppend(walRecord{Type: "submit", Job: job.ID, Idem: idemKey, Spec: &sp})
		ws.SetError(werr)
		ws.End()
		if werr != nil {
			s.cfg.Log.Error("wal submit record failed", "job_id", job.ID, "trace_id", job.trace.Trace, "err", werr)
			werr = fmt.Errorf("%w (cause: %v)", ErrReadOnly, werr)
			s.metrics.rejectedReadOnly.Add(1)
			admit.SetError(werr)
			job.finish(StateFailed, "", werr)
			return nil, false, werr
		}
	}
	if err := s.queue.Push(job); err != nil {
		switch {
		case errors.Is(err, ErrQueueFull):
			s.metrics.rejectedFull.Add(1)
		case errors.Is(err, ErrQueueClosed):
			s.metrics.rejectedDraining.Add(1)
		}
		admit.SetError(err)
		job.finish(StateFailed, "", err)
		return nil, false, err
	}
	qs := s.tracer().Start(job.trace, obs.KindQueueWait, "queue wait")
	qs.SetJob(job.ID)
	job.setQueueSpan(qs)
	if idemKey != "" {
		s.idemMu.Lock()
		s.idem[idemKey] = job.ID
		s.idemMu.Unlock()
	}
	s.metrics.submitted.Add(1)
	job.events.Append(fmt.Sprintf("queued as %s (hash %.12s)", job.ID, job.Hash))
	if s.cfg.OnAdmit != nil {
		s.cfg.OnAdmit(job)
	}
	return job, false, nil
}

// SubmitMigrated enqueues a job re-homed from an evicted cluster
// member. It bypasses the admission bound the way boot-time recovery
// does — the cluster already acknowledged this work with a 202 on the
// dead node, and lease-expiry re-enqueue must never shed it just
// because the survivor's queue is momentarily full. The idempotency key
// still dedups: a retried migration (coordinator restart mid-eviction)
// replays the first migrated job instead of enqueueing twins.
func (s *Server) SubmitMigrated(spec JobSpec, idemKey, from string, parent obs.SpanContext) (job *Job, replayed bool, err error) {
	admit := s.tracer().Start(parent, obs.KindAdmit, "admit migrated")
	admit.SetAttr("from", from)
	defer admit.End()
	if s.draining.Load() {
		s.metrics.rejectedDraining.Add(1)
		admit.SetError(ErrQueueClosed)
		return nil, false, ErrQueueClosed
	}
	if s.degraded.Load() {
		s.metrics.rejectedReadOnly.Add(1)
		admit.SetError(ErrReadOnly)
		return nil, false, ErrReadOnly
	}
	if err := spec.Validate(); err != nil {
		s.metrics.rejectedInvalid.Add(1)
		admit.SetError(err)
		return nil, false, err
	}
	if idemKey != "" {
		s.idemMu.Lock()
		if id, ok := s.idem[idemKey]; ok {
			s.idemMu.Unlock()
			if j := s.jobs.get(id); j != nil {
				s.metrics.idemReplayed.Add(1)
				admit.SetJob(j.ID)
				admit.SetAttr("replayed", "true")
				return j, true, nil
			}
		} else {
			s.idemMu.Unlock()
		}
	}
	job = s.jobs.add(spec, s.baseCtx, idemKey, admit.Context())
	admit.SetJob(job.ID)
	if s.wal != nil {
		job.onTerminal = s.journalFinish
		sp := spec
		if err := s.journalAppend(walRecord{Type: "submit", Job: job.ID, Idem: idemKey, Spec: &sp}); err != nil {
			err = fmt.Errorf("%w (cause: %v)", ErrReadOnly, err)
			s.metrics.rejectedReadOnly.Add(1)
			admit.SetError(err)
			job.finish(StateFailed, "", err)
			return nil, false, err
		}
	}
	if err := s.queue.pushBypass(job); err != nil {
		s.metrics.rejectedDraining.Add(1)
		admit.SetError(err)
		job.finish(StateFailed, "", err)
		return nil, false, err
	}
	qs := s.tracer().Start(job.trace, obs.KindQueueWait, "queue wait")
	qs.SetJob(job.ID)
	job.setQueueSpan(qs)
	if idemKey != "" {
		s.idemMu.Lock()
		s.idem[idemKey] = job.ID
		s.idemMu.Unlock()
	}
	s.metrics.submitted.Add(1)
	s.metrics.migratedIn.Add(1)
	job.events.Append(fmt.Sprintf("re-enqueued as %s after eviction of %s (hash %.12s)", job.ID, from, job.Hash))
	if s.cfg.OnAdmit != nil {
		s.cfg.OnAdmit(job)
	}
	return job, false, nil
}

// Job returns a job by ID, or nil.
func (s *Server) Job(id string) *Job { return s.jobs.get(id) }

// NodeID reports the configured cluster node ID ("" standalone).
func (s *Server) NodeID() string { return s.cfg.NodeID }

// CachedResult returns the content-addressed cached output for hash —
// the cluster's result-shard read endpoint.
func (s *Server) CachedResult(hash string) (string, bool) {
	e, ok := s.cache.Get(hash)
	return e.Output, ok
}

// CkptSave stores a replicated checkpoint blob; no-op (with an error)
// unless the daemon runs with a WAL directory.
func (s *Server) CkptSave(key string, blob []byte) error {
	if s.ckpts == nil {
		return fmt.Errorf("server: no checkpoint store (run with -wal)")
	}
	return s.ckpts.Save(key, blob)
}

// CkptLoad returns the locally stored checkpoint blob for key, or nil.
func (s *Server) CkptLoad(key string) []byte {
	if s.ckpts == nil {
		return nil
	}
	return s.ckpts.Load(key)
}

// JournalCluster appends one cluster-state record to the journal; a
// no-op without a WAL (an ephemeral coordinator just cannot survive a
// restart).
func (s *Server) JournalCluster(rec ClusterRecord) error {
	if s.wal == nil {
		return nil
	}
	return s.journalAppend(walRecord{Type: "cluster", Cluster: &rec})
}

// ClusterReplay returns the cluster-state records replayed from the
// journal at boot, in journal order — the coordinator's restart source.
func (s *Server) ClusterReplay() []ClusterRecord {
	return append([]ClusterRecord(nil), s.clusterRecs...)
}

// Jobs lists every known job in submission order.
func (s *Server) Jobs() []*Job { return s.jobs.list() }

// Cancel cancels a job by ID; false when unknown or already terminal.
func (s *Server) Cancel(id string) bool {
	j := s.jobs.get(id)
	return j != nil && j.Cancel()
}

// runnerFor returns (building on demand) the shared singleflight runner
// of the spec's parameter group. Specs with identical scaling and
// robustness knobs land on the same runner, so their simulations dedup
// even across different figures and job kinds.
func (s *Server) runnerFor(spec JobSpec) (*exp.Runner, error) {
	key := spec.groupKey()
	s.runnerMu.Lock()
	defer s.runnerMu.Unlock()
	if r, ok := s.runners[key]; ok {
		return r, nil
	}
	p, err := spec.params()
	if err != nil {
		return nil, err
	}
	p.Parallel = s.cfg.SimParallel
	r := exp.NewRunner(p)
	s.runners[key] = r
	return r, nil
}

// runnerCounters sums the dedup evidence across runner groups.
func (s *Server) runnerCounters() (launched, joined int64, pools int) {
	s.runnerMu.Lock()
	defer s.runnerMu.Unlock()
	for _, r := range s.runners {
		l, j := r.Counters()
		launched += l
		joined += j
	}
	return launched, joined, len(s.runners)
}

// checkpointPolicy builds the per-job checkpoint plumbing: periodic
// snapshots land in the blob store (keyed by simulation, so recovered
// jobs and deduplicated twins share them) and leave an advisory
// checkpoint record in the journal; on resume the runner loads the
// latest blob and continues from its bus cycle instead of cycle zero.
func (s *Server) checkpointPolicy(job *Job, parent obs.SpanContext) *exp.CheckpointPolicy {
	return &exp.CheckpointPolicy{
		Every: clock.Cycle(s.cfg.CheckpointCycles),
		Save: func(key string, cp sim.Checkpoint) {
			cs := s.tracer().Start(parent, obs.KindCheckpointSave, "checkpoint save")
			cs.SetJob(job.ID)
			cs.SetAttr("key", key)
			if err := s.ckpts.Save(key, cp.Blob); err != nil {
				cs.SetError(err)
				cs.End()
				s.cfg.Log.Error("checkpoint save failed", "job_id", job.ID, "trace_id", job.trace.Trace, "key", key, "err", err)
				return
			}
			_ = s.journalAppend(walRecord{Type: "checkpoint", Job: job.ID, Key: key, Bus: int64(cp.Bus)})
			if s.cfg.CkptReplicate != nil {
				// Cluster replication: the blob also lands on the
				// coordinator so a survivor can resume this simulation
				// if this node dies with it in flight.
				s.cfg.CkptReplicate(key, cp.Blob, cs.Context())
			}
			cs.End()
		},
		Load: func(key string) []byte {
			if b := s.ckpts.Load(key); b != nil {
				return b
			}
			if s.cfg.CkptFetch == nil {
				return nil
			}
			// Migration read path: a job re-homed from an evicted node
			// has no local blob; fetch the one its old owner replicated.
			b := s.cfg.CkptFetch(key)
			if b != nil {
				job.events.Append(fmt.Sprintf("checkpoint blob for %s fetched from cluster", key))
				if err := s.ckpts.Save(key, b); err != nil {
					s.cfg.Log.Error("checkpoint adopt failed", "job_id", job.ID, "key", key, "err", err)
				}
			}
			return b
		},
	}
}

// runJob executes one popped job to its terminal state.
func (s *Server) runJob(job *Job) {
	qs := job.takeQueueSpan()
	if err := job.ctx.Err(); err != nil {
		// Canceled (or deadline-expired) while queued.
		qs.SetError(err)
		qs.End()
		job.finish(StateCanceled, "", err)
		s.metrics.jobDone("canceled", time.Since(job.created).Seconds())
		return
	}
	if !job.start() {
		qs.End()
		return // lost a race with Cancel; finish already recorded
	}
	qs.End()
	s.metrics.inflight.Add(1)
	defer s.metrics.inflight.Add(-1)
	start := time.Now()

	// The schedule span covers the dispatch decision: cache probes and
	// runner selection, between worker pickup and execution.
	sched := s.tracer().Start(job.trace, obs.KindSchedule, "schedule")
	sched.SetJob(job.ID)

	// Content-addressed fast path: an identical completed spec is
	// served from the cache without touching a runner.
	cl := s.tracer().Start(sched.Context(), obs.KindCacheLookup, "cache lookup")
	cl.SetJob(job.ID)
	if e, ok := s.cache.Get(job.Hash); ok {
		s.metrics.cacheHits.Add(1)
		cl.SetAttr("hit", "local")
		cl.End()
		sched.End()
		job.mu.Lock()
		job.cacheHit = true
		job.mu.Unlock()
		job.events.Append("result cache hit")
		job.finish(StateDone, e.Output, nil)
		s.metrics.jobDone("ok", time.Since(start).Seconds())
		return
	}
	s.metrics.cacheMisses.Add(1)

	// Sharded-cache read-through: before simulating, ask the hash's
	// ring owner (the cluster layer) whether it already has the result
	// — e.g. after a ring rebalance moved this hash onto us.
	if s.cfg.CacheFetch != nil {
		if out, ok := s.cfg.CacheFetch(job.Hash); ok {
			cl.SetAttr("hit", "cluster")
			cl.End()
			sched.End()
			s.cache.Put(cacheEntry{Hash: job.Hash, Kind: job.Spec.normalized().Kind, Output: out})
			s.metrics.remoteCacheHits.Add(1)
			job.mu.Lock()
			job.cacheHit = true
			job.mu.Unlock()
			job.events.Append("result fetched from cluster cache shard")
			job.finish(StateDone, out, nil)
			s.metrics.jobDone("ok", time.Since(start).Seconds())
			return
		}
	}
	cl.SetAttr("hit", "miss")
	cl.End()

	var out string
	var err error
	var run *obs.ActiveSpan
	if job.Spec.normalized().Kind == "search" {
		// Search jobs drive the autotuner engine, which fans out into
		// per-point "eval" executions against the server's own caches and
		// (via Config.EvalRemote) the cluster — see search.go.
		if s.wal != nil {
			ws := s.tracer().Start(sched.Context(), obs.KindWALAppend, "wal start")
			ws.SetJob(job.ID)
			_ = s.journalAppend(walRecord{Type: "start", Job: job.ID})
			ws.End()
		}
		sched.End()
		run = s.tracer().Start(job.trace, obs.KindRun, "run search")
		run.SetJob(job.ID)
		// The run span's context rides job.ctx so the eval fan-out hop
		// spans (cluster layer) parent under this run.
		out, err = s.runSearch(obs.ContextWith(job.ctx, run.Context()), job)
	} else {
		var runner *exp.Runner
		runner, err = s.runnerFor(job.Spec)
		if err != nil {
			sched.SetError(err)
			sched.End()
			job.finish(StateFailed, "", err)
			class, _ := classify(err)
			s.metrics.jobDone(class, time.Since(start).Seconds())
			return
		}
		if s.wal != nil {
			ws := s.tracer().Start(sched.Context(), obs.KindWALAppend, "wal start")
			ws.SetJob(job.ID)
			_ = s.journalAppend(walRecord{Type: "start", Job: job.ID})
			ws.End()
		}
		sched.End()
		run = s.tracer().Start(job.trace, obs.KindRun, "run")
		run.SetJob(job.ID)
		ctx := obs.ContextWith(job.ctx, run.Context())
		view := runner.WithContext(ctx).WithLog(job.events.Append).WithTelemetry(job.tel)
		if s.ckpts != nil {
			view = view.WithCheckpoint(s.checkpointPolicy(job, run.Context()))
		}
		out, err = execute(ctx, view, job.Spec)
	}
	run.SetError(err)
	run.End()

	switch {
	case err == nil:
		s.cache.Put(cacheEntry{Hash: job.Hash, Kind: job.Spec.normalized().Kind, Output: out})
		job.finish(StateDone, out, nil)
		s.metrics.jobDone("ok", time.Since(start).Seconds())
	case isCanceled(err) || job.ctx.Err() != nil:
		job.finish(StateCanceled, out, err)
		s.metrics.jobDone("canceled", time.Since(start).Seconds())
	default:
		job.finish(StateFailed, out, err)
		class, _ := classify(err)
		s.metrics.jobDone(class, time.Since(start).Seconds())
	}
}

// isCanceled reports whether err stems from context cancellation.
func isCanceled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// classify maps an error to its exit class and the CLI exit code of the
// same taxonomy, so HTTP clients and shell scripts agree on what went
// wrong.
func classify(err error) (class string, code int) {
	if err == nil {
		return "ok", cli.ExitOK
	}
	if isCanceled(err) {
		return "canceled", cli.ExitError
	}
	switch code := cli.ExitCode(err); code {
	case cli.ExitProtocol:
		return "protocol", code
	case cli.ExitDeadlock:
		return "deadlock", code
	case cli.ExitOOM:
		return "oom", code
	default:
		return "error", code
	}
}

// Draining reports whether the daemon has stopped admitting jobs.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain is the graceful shutdown: stop admitting (new submissions get
// 503), let the workers finish both queued and in-flight jobs, then
// flush the result cache to disk. If ctx expires first, every remaining
// job is canceled (the context plumbing reaches into the simulation
// loops, so this is prompt) and Drain waits for the workers to notice.
func (s *Server) Drain(ctx context.Context) error {
	if !s.draining.CompareAndSwap(false, true) {
		return nil
	}
	s.cfg.Log.Info("draining: admission closed",
		"queued", s.queue.Len(), "inflight", s.metrics.inflight.Load())
	s.queue.Close()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var drainErr error
	select {
	case <-done:
	case <-ctx.Done():
		// Forced shutdown: mark every unfinished job interrupted BEFORE
		// canceling its context — the interrupted flag withholds the
		// terminal record from the journal, so a restarted daemon re-runs
		// these jobs (resuming from their last checkpoint) instead of
		// reporting them canceled.
		interrupted := 0
		for _, j := range s.Jobs() {
			if j.markInterrupted() {
				interrupted++
			}
		}
		s.cfg.Log.Warn("drain deadline hit; canceling remaining jobs (journaled as interrupted)",
			"interrupted", interrupted)
		s.baseStop() // cancels every job context
		<-done
		drainErr = ctx.Err()
	}
	s.baseStop()
	if err := s.cache.Save(s.cfg.CachePath); err != nil {
		s.cfg.Log.Error("cache flush failed", "err", err)
		if drainErr == nil {
			drainErr = err
		}
	} else if s.cfg.CachePath != "" {
		s.cfg.Log.Info("result cache flushed", "entries", s.cache.Len(), "path", s.cfg.CachePath)
	}
	if s.wal != nil {
		// Rewrite the journal down to what still matters so it does not
		// grow without bound across restarts. Interrupted jobs keep only
		// their submit record: they must re-run on the next boot.
		path := filepath.Join(s.cfg.WALDir, "journal.wal")
		var crecs []ClusterRecord
		if s.cfg.ClusterSnapshot != nil {
			crecs = s.cfg.ClusterSnapshot()
		}
		if err := compactWAL(s.cfg.FS, path, s.Jobs(), crecs); err != nil {
			s.cfg.Log.Error("wal compaction failed", "err", err)
			if drainErr == nil {
				drainErr = err
			}
		}
		if err := s.wal.Close(); err != nil && drainErr == nil {
			drainErr = err
		}
	}
	return drainErr
}

// Close is the hard stop: cancel everything, then drain bookkeeping.
func (s *Server) Close() error {
	s.baseStop()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return s.Drain(ctx)
}

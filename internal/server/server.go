package server

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"eruca/internal/cli"
	"eruca/internal/exp"
)

// Config sizes the daemon.
type Config struct {
	// Workers is the job worker-pool width (default 4). Workers that
	// join an in-flight duplicate simulation block cheaply, so Workers
	// may exceed SimParallel without oversubscribing the CPU.
	Workers int
	// SimParallel bounds concurrent simulations inside each runner
	// group (default GOMAXPROCS).
	SimParallel int
	// QueueMax is the admission-control bound (default 64); beyond it
	// POST /v1/jobs returns 429 with Retry-After.
	QueueMax int
	// CacheMax bounds the in-memory result cache entries (default 256).
	CacheMax int
	// CachePath, when non-empty, persists the result cache across
	// restarts (loaded at New, flushed on drain).
	CachePath string
	// RetryAfter is the hint returned with 429 (default 2s).
	RetryAfter time.Duration
	// Pprof mounts net/http/pprof under /debug/pprof/ when true. Off by
	// default: the profiling surface stays opt-in on shared daemons.
	Pprof bool
	// Logf, when non-nil, receives daemon lifecycle lines.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.SimParallel <= 0 {
		c.SimParallel = runtime.GOMAXPROCS(0)
	}
	if c.QueueMax <= 0 {
		c.QueueMax = 64
	}
	if c.CacheMax <= 0 {
		c.CacheMax = 256
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 2 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Server is the simulation service: queue, workers, runners, caches.
// Create with New, serve its Handler, stop with Drain (graceful) or
// Close (hard).
type Server struct {
	cfg     Config
	metrics *metrics
	queue   *queue
	cache   *resultCache
	jobs    *registry

	baseCtx  context.Context // parent of every job context
	baseStop context.CancelFunc

	runnerMu sync.Mutex
	runners  map[string]*exp.Runner // groupKey -> shared singleflight runner

	draining atomic.Bool
	wg       sync.WaitGroup
}

// New builds a Server and loads the persisted result cache, if any.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		metrics: newMetrics(),
		queue:   newQueue(cfg.QueueMax),
		cache:   newResultCache(cfg.CacheMax),
		jobs:    newRegistry(),
		runners: make(map[string]*exp.Runner),
	}
	s.baseCtx, s.baseStop = context.WithCancel(context.Background())
	if err := s.cache.Load(cfg.CachePath); err != nil {
		return nil, err
	}
	if n := s.cache.Len(); n > 0 {
		cfg.Logf("result cache: %d entr%s loaded from %s", n, plural(n, "y", "ies"), cfg.CachePath)
	}
	return s, nil
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// Start launches the worker pool.
func (s *Server) Start() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				job, ok := s.queue.Pop()
				if !ok {
					return
				}
				s.runJob(job)
			}
		}()
	}
	s.cfg.Logf("serving with %d workers, sim parallelism %d, queue bound %d",
		s.cfg.Workers, s.cfg.SimParallel, s.cfg.QueueMax)
}

// Submit validates and enqueues a spec. The returned error is one of
// ErrQueueFull, ErrQueueClosed, or a validation error.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	if s.draining.Load() {
		s.metrics.rejectedDraining.Add(1)
		return nil, ErrQueueClosed
	}
	if err := spec.Validate(); err != nil {
		s.metrics.rejectedInvalid.Add(1)
		return nil, err
	}
	job := s.jobs.add(spec, s.baseCtx)
	if err := s.queue.Push(job); err != nil {
		switch {
		case errors.Is(err, ErrQueueFull):
			s.metrics.rejectedFull.Add(1)
		case errors.Is(err, ErrQueueClosed):
			s.metrics.rejectedDraining.Add(1)
		}
		job.finish(StateFailed, "", err)
		return nil, err
	}
	s.metrics.submitted.Add(1)
	job.events.Append(fmt.Sprintf("queued as %s (hash %.12s)", job.ID, job.Hash))
	return job, nil
}

// Job returns a job by ID, or nil.
func (s *Server) Job(id string) *Job { return s.jobs.get(id) }

// Jobs lists every known job in submission order.
func (s *Server) Jobs() []*Job { return s.jobs.list() }

// Cancel cancels a job by ID; false when unknown or already terminal.
func (s *Server) Cancel(id string) bool {
	j := s.jobs.get(id)
	return j != nil && j.Cancel()
}

// runnerFor returns (building on demand) the shared singleflight runner
// of the spec's parameter group. Specs with identical scaling and
// robustness knobs land on the same runner, so their simulations dedup
// even across different figures and job kinds.
func (s *Server) runnerFor(spec JobSpec) (*exp.Runner, error) {
	key := spec.groupKey()
	s.runnerMu.Lock()
	defer s.runnerMu.Unlock()
	if r, ok := s.runners[key]; ok {
		return r, nil
	}
	p, err := spec.params()
	if err != nil {
		return nil, err
	}
	p.Parallel = s.cfg.SimParallel
	r := exp.NewRunner(p)
	s.runners[key] = r
	return r, nil
}

// runnerCounters sums the dedup evidence across runner groups.
func (s *Server) runnerCounters() (launched, joined int64, pools int) {
	s.runnerMu.Lock()
	defer s.runnerMu.Unlock()
	for _, r := range s.runners {
		l, j := r.Counters()
		launched += l
		joined += j
	}
	return launched, joined, len(s.runners)
}

// runJob executes one popped job to its terminal state.
func (s *Server) runJob(job *Job) {
	if err := job.ctx.Err(); err != nil {
		// Canceled (or deadline-expired) while queued.
		job.finish(StateCanceled, "", err)
		s.metrics.jobDone("canceled", time.Since(job.created).Seconds())
		return
	}
	if !job.start() {
		return // lost a race with Cancel; finish already recorded
	}
	s.metrics.inflight.Add(1)
	defer s.metrics.inflight.Add(-1)
	start := time.Now()

	// Content-addressed fast path: an identical completed spec is
	// served from the cache without touching a runner.
	if e, ok := s.cache.Get(job.Hash); ok {
		s.metrics.cacheHits.Add(1)
		job.mu.Lock()
		job.cacheHit = true
		job.mu.Unlock()
		job.events.Append("result cache hit")
		job.finish(StateDone, e.Output, nil)
		s.metrics.jobDone("ok", time.Since(start).Seconds())
		return
	}
	s.metrics.cacheMisses.Add(1)

	runner, err := s.runnerFor(job.Spec)
	if err != nil {
		job.finish(StateFailed, "", err)
		class, _ := classify(err)
		s.metrics.jobDone(class, time.Since(start).Seconds())
		return
	}
	view := runner.WithContext(job.ctx).WithLog(job.events.Append).WithTelemetry(job.tel)
	out, err := execute(job.ctx, view, job.Spec)

	switch {
	case err == nil:
		s.cache.Put(cacheEntry{Hash: job.Hash, Kind: job.Spec.normalized().Kind, Output: out})
		job.finish(StateDone, out, nil)
		s.metrics.jobDone("ok", time.Since(start).Seconds())
	case isCanceled(err) || job.ctx.Err() != nil:
		job.finish(StateCanceled, out, err)
		s.metrics.jobDone("canceled", time.Since(start).Seconds())
	default:
		job.finish(StateFailed, out, err)
		class, _ := classify(err)
		s.metrics.jobDone(class, time.Since(start).Seconds())
	}
}

// isCanceled reports whether err stems from context cancellation.
func isCanceled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// classify maps an error to its exit class and the CLI exit code of the
// same taxonomy, so HTTP clients and shell scripts agree on what went
// wrong.
func classify(err error) (class string, code int) {
	if err == nil {
		return "ok", cli.ExitOK
	}
	if isCanceled(err) {
		return "canceled", cli.ExitError
	}
	switch code := cli.ExitCode(err); code {
	case cli.ExitProtocol:
		return "protocol", code
	case cli.ExitDeadlock:
		return "deadlock", code
	case cli.ExitOOM:
		return "oom", code
	default:
		return "error", code
	}
}

// Draining reports whether the daemon has stopped admitting jobs.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain is the graceful shutdown: stop admitting (new submissions get
// 503), let the workers finish both queued and in-flight jobs, then
// flush the result cache to disk. If ctx expires first, every remaining
// job is canceled (the context plumbing reaches into the simulation
// loops, so this is prompt) and Drain waits for the workers to notice.
func (s *Server) Drain(ctx context.Context) error {
	if !s.draining.CompareAndSwap(false, true) {
		return nil
	}
	s.cfg.Logf("draining: admission closed, %d queued, %d in flight",
		s.queue.Len(), s.metrics.inflight.Load())
	s.queue.Close()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var drainErr error
	select {
	case <-done:
	case <-ctx.Done():
		s.cfg.Logf("drain deadline hit; canceling remaining jobs")
		s.baseStop() // cancels every job context
		<-done
		drainErr = ctx.Err()
	}
	s.baseStop()
	if err := s.cache.Save(s.cfg.CachePath); err != nil {
		s.cfg.Logf("cache flush failed: %v", err)
		if drainErr == nil {
			drainErr = err
		}
	} else if s.cfg.CachePath != "" {
		s.cfg.Logf("result cache: %d entries flushed to %s", s.cache.Len(), s.cfg.CachePath)
	}
	return drainErr
}

// Close is the hard stop: cancel everything, then drain bookkeeping.
func (s *Server) Close() error {
	s.baseStop()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return s.Drain(ctx)
}

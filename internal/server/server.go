package server

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"eruca/internal/cli"
	"eruca/internal/clock"
	"eruca/internal/exp"
	"eruca/internal/sim"
)

// Config sizes the daemon.
type Config struct {
	// Workers is the job worker-pool width (default 4). Workers that
	// join an in-flight duplicate simulation block cheaply, so Workers
	// may exceed SimParallel without oversubscribing the CPU.
	Workers int
	// SimParallel bounds concurrent simulations inside each runner
	// group (default GOMAXPROCS).
	SimParallel int
	// QueueMax is the admission-control bound (default 64); beyond it
	// POST /v1/jobs returns 429 with Retry-After.
	QueueMax int
	// CacheMax bounds the in-memory result cache entries (default 256).
	CacheMax int
	// CachePath, when non-empty, persists the result cache across
	// restarts (loaded at New, flushed on drain).
	CachePath string
	// RetryAfter is the base backoff hint returned with 429/503; the
	// actual hint scales with queue pressure and carries jitter so a
	// thundering herd of rejected clients does not resynchronize
	// (default 2s).
	RetryAfter time.Duration
	// WALDir, when non-empty, enables crash-safe durability: an
	// append-only journal of job lifecycle records plus a checkpoint
	// blob store live under it. On New the journal is replayed —
	// terminal jobs come back with their results, unfinished jobs are
	// re-enqueued and their simulations resume from the last stored
	// checkpoint instead of cycle zero.
	WALDir string
	// CheckpointCycles is the simulation checkpoint cadence in bus
	// cycles when WALDir is set (default 50_000).
	CheckpointCycles int64
	// Pprof mounts net/http/pprof under /debug/pprof/ when true. Off by
	// default: the profiling surface stays opt-in on shared daemons.
	Pprof bool
	// Logf, when non-nil, receives daemon lifecycle lines.
	Logf func(format string, args ...any)

	// NodeID, when non-empty, prefixes every job ID ("n2" makes
	// "n2-job-000001") so a cluster peer can route any job ID back to
	// the node that owns its record. Standalone daemons leave it empty
	// and keep the plain "job-%06d" IDs.
	NodeID string
	// CacheFetch, when non-nil, is the sharded result cache's
	// read-through: on a local cache miss the worker asks it (the
	// cluster layer queries the hash's ring owner) before paying for a
	// simulation. A fetched result is installed in the local cache too.
	CacheFetch func(hash string) (output string, ok bool)
	// CkptFetch, when non-nil, supplies checkpoint blobs the local
	// store does not have — the migration read path: a job re-enqueued
	// from a dead node resumes from the blob that node replicated to
	// the coordinator before dying.
	CkptFetch func(key string) []byte
	// CkptReplicate, when non-nil, observes every locally saved
	// checkpoint blob — the migration write path (the cluster layer
	// pushes it to the coordinator, asynchronously and best-effort).
	CkptReplicate func(key string, blob []byte)
	// ClusterSnapshot, when non-nil, supplies the cluster-state records
	// (membership, placements) that drain-time WAL compaction must
	// preserve so a restarted coordinator still knows its cluster.
	ClusterSnapshot func() []ClusterRecord
	// OnAdmit, when non-nil, observes every accepted job right after it
	// is enqueued (submission, idempotent or not, and migration). The
	// cluster layer uses it to notify the coordinator of the placement
	// eagerly instead of waiting for the next heartbeat — a node can
	// die inside a heartbeat window, and placement knowledge is what
	// makes its jobs recoverable.
	OnAdmit func(j *Job)
	// EvalRemote, when non-nil, lets one search job fan its design-point
	// evaluations out across the cluster: called with each "eval"
	// JobSpec before evaluating locally, it may route the point to the
	// spec hash's ring owner and return that node's output.
	// handled=false means "evaluate here" — the point hashes to this
	// node, or the cluster is unreachable (transport failures must fall
	// back, never surface: the engine records returned errors as
	// deterministic outcomes of the point).
	EvalRemote func(ctx context.Context, spec JobSpec) (output string, handled bool, err error)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.SimParallel <= 0 {
		c.SimParallel = runtime.GOMAXPROCS(0)
	}
	if c.QueueMax <= 0 {
		c.QueueMax = 64
	}
	if c.CacheMax <= 0 {
		c.CacheMax = 256
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 2 * time.Second
	}
	if c.CheckpointCycles <= 0 {
		c.CheckpointCycles = 50_000
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Server is the simulation service: queue, workers, runners, caches.
// Create with New, serve its Handler, stop with Drain (graceful) or
// Close (hard).
type Server struct {
	cfg     Config
	metrics *metrics
	queue   *queue
	cache   *resultCache
	jobs    *registry

	baseCtx  context.Context // parent of every job context
	baseStop context.CancelFunc

	runnerMu sync.Mutex
	runners  map[string]*exp.Runner // groupKey -> shared singleflight runner

	// Durability (nil / empty when Config.WALDir is unset).
	wal   *wal
	ckpts *ckptStore
	// clusterRecs are the cluster-state records replayed from the
	// journal at boot, for the coordinator to reconstruct membership.
	clusterRecs []ClusterRecord

	idemMu sync.Mutex
	idem   map[string]string // Idempotency-Key -> job ID

	draining atomic.Bool
	wg       sync.WaitGroup
}

// New builds a Server, loads the persisted result cache, and — when
// Config.WALDir is set — replays the journal: terminal jobs come back
// with their results, unfinished jobs are re-enqueued (bypassing the
// admission bound: they were already acknowledged with a 202 before the
// crash), and idempotency keys are reinstalled so client retries land
// on the original jobs.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	prefix := ""
	if cfg.NodeID != "" {
		prefix = cfg.NodeID + "-"
	}
	s := &Server{
		cfg:     cfg,
		metrics: newMetrics(),
		queue:   newQueue(cfg.QueueMax),
		cache:   newResultCache(cfg.CacheMax),
		jobs:    newRegistry(prefix),
		runners: make(map[string]*exp.Runner),
		idem:    make(map[string]string),
	}
	s.baseCtx, s.baseStop = context.WithCancel(context.Background())
	if err := s.cache.Load(cfg.CachePath); err != nil {
		return nil, err
	}
	if n := s.cache.Len(); n > 0 {
		cfg.Logf("result cache: %d entr%s loaded from %s", n, plural(n, "y", "ies"), cfg.CachePath)
	}
	if cfg.WALDir != "" {
		if err := s.openDurability(cfg.WALDir); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// openDurability opens the journal and checkpoint store under dir and
// replays the journal into the registry and queue.
func (s *Server) openDurability(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("server: wal dir: %w", err)
	}
	ckpts, err := newCkptStore(filepath.Join(dir, "checkpoints"))
	if err != nil {
		return fmt.Errorf("server: checkpoint store: %w", err)
	}
	w, recs, err := openWAL(filepath.Join(dir, "journal.wal"))
	if err != nil {
		return fmt.Errorf("server: wal open: %w", err)
	}
	s.wal, s.ckpts = w, ckpts
	for _, rec := range recs {
		if rec.Type == "cluster" && rec.Cluster != nil {
			s.clusterRecs = append(s.clusterRecs, *rec.Cluster)
		}
	}
	jobs, _ := replay(recs)
	var terminal, requeued int
	for _, rj := range jobs {
		j := s.jobs.addRecovered(rj, s.baseCtx)
		j.onTerminal = s.journalFinish
		if rj.idem != "" {
			s.idem[rj.idem] = j.ID
		}
		if rj.state.Terminal() {
			terminal++
			continue
		}
		j.events.Append(fmt.Sprintf("recovered from journal as %s (hash %.12s)", j.ID, j.Hash))
		s.queue.pushRecovered(j)
		s.metrics.recovered.Add(1)
		requeued++
	}
	if len(jobs) > 0 || s.ckpts.Len() > 0 {
		s.cfg.Logf("wal replay: %d job%s restored (%d terminal, %d re-enqueued), %d checkpoint blob%s on disk",
			len(jobs), plural(len(jobs), "", "s"), terminal, requeued,
			s.ckpts.Len(), plural(s.ckpts.Len(), "", "s"))
	}
	return nil
}

// journalFinish is the Job.onTerminal hook: it records the terminal
// transition in the journal. Jobs interrupted by a forced shutdown are
// deliberately NOT journaled as finished — withholding the record is
// what makes a restarted daemon re-run them.
func (s *Server) journalFinish(j *Job) {
	j.mu.Lock()
	state, output, errMsg, interrupted := j.state, j.output, j.errMsg, j.interrupted
	j.mu.Unlock()
	if interrupted {
		_ = s.wal.append(walRecord{Type: "interrupted", Job: j.ID, State: string(state)})
		return
	}
	rec := walRecord{Type: "finish", Job: j.ID, State: string(state), Error: errMsg}
	if state == StateDone {
		rec.Output = output
	}
	if err := s.wal.append(rec); err != nil {
		s.cfg.Logf("wal: finish record for %s failed: %v", j.ID, err)
	}
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// Start launches the worker pool.
func (s *Server) Start() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				job, ok := s.queue.Pop()
				if !ok {
					return
				}
				s.runJob(job)
			}
		}()
	}
	s.cfg.Logf("serving with %d workers, sim parallelism %d, queue bound %d",
		s.cfg.Workers, s.cfg.SimParallel, s.cfg.QueueMax)
}

// Submit validates and enqueues a spec. The returned error is one of
// ErrQueueFull, ErrQueueClosed, or a validation error.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	job, _, err := s.SubmitWithKey(spec, "")
	return job, err
}

// SubmitWithKey is Submit with an optional client idempotency key. A
// resubmission carrying a key the daemon has already accepted returns
// the original job (replayed=true) instead of enqueueing a duplicate —
// across restarts too, when the WAL is enabled, so a client that lost
// its 202 to a crash can retry the POST safely.
func (s *Server) SubmitWithKey(spec JobSpec, idemKey string) (job *Job, replayed bool, err error) {
	if s.draining.Load() {
		s.metrics.rejectedDraining.Add(1)
		return nil, false, ErrQueueClosed
	}
	if err := spec.Validate(); err != nil {
		s.metrics.rejectedInvalid.Add(1)
		return nil, false, err
	}
	if idemKey != "" {
		s.idemMu.Lock()
		if id, ok := s.idem[idemKey]; ok {
			s.idemMu.Unlock()
			if j := s.jobs.get(id); j != nil {
				s.metrics.idemReplayed.Add(1)
				return j, true, nil
			}
		} else {
			s.idemMu.Unlock()
		}
	}
	job = s.jobs.add(spec, s.baseCtx)
	job.idemKey = idemKey
	if s.wal != nil {
		job.onTerminal = s.journalFinish
		sp := spec
		if err := s.wal.append(walRecord{Type: "submit", Job: job.ID, Idem: idemKey, Spec: &sp}); err != nil {
			s.cfg.Logf("wal: submit record for %s failed: %v", job.ID, err)
			job.finish(StateFailed, "", err)
			return nil, false, err
		}
	}
	if err := s.queue.Push(job); err != nil {
		switch {
		case errors.Is(err, ErrQueueFull):
			s.metrics.rejectedFull.Add(1)
		case errors.Is(err, ErrQueueClosed):
			s.metrics.rejectedDraining.Add(1)
		}
		job.finish(StateFailed, "", err)
		return nil, false, err
	}
	if idemKey != "" {
		s.idemMu.Lock()
		s.idem[idemKey] = job.ID
		s.idemMu.Unlock()
	}
	s.metrics.submitted.Add(1)
	job.events.Append(fmt.Sprintf("queued as %s (hash %.12s)", job.ID, job.Hash))
	if s.cfg.OnAdmit != nil {
		s.cfg.OnAdmit(job)
	}
	return job, false, nil
}

// SubmitMigrated enqueues a job re-homed from an evicted cluster
// member. It bypasses the admission bound the way boot-time recovery
// does — the cluster already acknowledged this work with a 202 on the
// dead node, and lease-expiry re-enqueue must never shed it just
// because the survivor's queue is momentarily full. The idempotency key
// still dedups: a retried migration (coordinator restart mid-eviction)
// replays the first migrated job instead of enqueueing twins.
func (s *Server) SubmitMigrated(spec JobSpec, idemKey, from string) (job *Job, replayed bool, err error) {
	if s.draining.Load() {
		s.metrics.rejectedDraining.Add(1)
		return nil, false, ErrQueueClosed
	}
	if err := spec.Validate(); err != nil {
		s.metrics.rejectedInvalid.Add(1)
		return nil, false, err
	}
	if idemKey != "" {
		s.idemMu.Lock()
		if id, ok := s.idem[idemKey]; ok {
			s.idemMu.Unlock()
			if j := s.jobs.get(id); j != nil {
				s.metrics.idemReplayed.Add(1)
				return j, true, nil
			}
		} else {
			s.idemMu.Unlock()
		}
	}
	job = s.jobs.add(spec, s.baseCtx)
	job.idemKey = idemKey
	if s.wal != nil {
		job.onTerminal = s.journalFinish
		sp := spec
		if err := s.wal.append(walRecord{Type: "submit", Job: job.ID, Idem: idemKey, Spec: &sp}); err != nil {
			job.finish(StateFailed, "", err)
			return nil, false, err
		}
	}
	if err := s.queue.pushBypass(job); err != nil {
		s.metrics.rejectedDraining.Add(1)
		job.finish(StateFailed, "", err)
		return nil, false, err
	}
	if idemKey != "" {
		s.idemMu.Lock()
		s.idem[idemKey] = job.ID
		s.idemMu.Unlock()
	}
	s.metrics.submitted.Add(1)
	s.metrics.migratedIn.Add(1)
	job.events.Append(fmt.Sprintf("re-enqueued as %s after eviction of %s (hash %.12s)", job.ID, from, job.Hash))
	if s.cfg.OnAdmit != nil {
		s.cfg.OnAdmit(job)
	}
	return job, false, nil
}

// Job returns a job by ID, or nil.
func (s *Server) Job(id string) *Job { return s.jobs.get(id) }

// NodeID reports the configured cluster node ID ("" standalone).
func (s *Server) NodeID() string { return s.cfg.NodeID }

// CachedResult returns the content-addressed cached output for hash —
// the cluster's result-shard read endpoint.
func (s *Server) CachedResult(hash string) (string, bool) {
	e, ok := s.cache.Get(hash)
	return e.Output, ok
}

// CkptSave stores a replicated checkpoint blob; no-op (with an error)
// unless the daemon runs with a WAL directory.
func (s *Server) CkptSave(key string, blob []byte) error {
	if s.ckpts == nil {
		return fmt.Errorf("server: no checkpoint store (run with -wal)")
	}
	return s.ckpts.Save(key, blob)
}

// CkptLoad returns the locally stored checkpoint blob for key, or nil.
func (s *Server) CkptLoad(key string) []byte {
	if s.ckpts == nil {
		return nil
	}
	return s.ckpts.Load(key)
}

// JournalCluster appends one cluster-state record to the journal; a
// no-op without a WAL (an ephemeral coordinator just cannot survive a
// restart).
func (s *Server) JournalCluster(rec ClusterRecord) error {
	if s.wal == nil {
		return nil
	}
	return s.wal.append(walRecord{Type: "cluster", Cluster: &rec})
}

// ClusterReplay returns the cluster-state records replayed from the
// journal at boot, in journal order — the coordinator's restart source.
func (s *Server) ClusterReplay() []ClusterRecord {
	return append([]ClusterRecord(nil), s.clusterRecs...)
}

// Jobs lists every known job in submission order.
func (s *Server) Jobs() []*Job { return s.jobs.list() }

// Cancel cancels a job by ID; false when unknown or already terminal.
func (s *Server) Cancel(id string) bool {
	j := s.jobs.get(id)
	return j != nil && j.Cancel()
}

// runnerFor returns (building on demand) the shared singleflight runner
// of the spec's parameter group. Specs with identical scaling and
// robustness knobs land on the same runner, so their simulations dedup
// even across different figures and job kinds.
func (s *Server) runnerFor(spec JobSpec) (*exp.Runner, error) {
	key := spec.groupKey()
	s.runnerMu.Lock()
	defer s.runnerMu.Unlock()
	if r, ok := s.runners[key]; ok {
		return r, nil
	}
	p, err := spec.params()
	if err != nil {
		return nil, err
	}
	p.Parallel = s.cfg.SimParallel
	r := exp.NewRunner(p)
	s.runners[key] = r
	return r, nil
}

// runnerCounters sums the dedup evidence across runner groups.
func (s *Server) runnerCounters() (launched, joined int64, pools int) {
	s.runnerMu.Lock()
	defer s.runnerMu.Unlock()
	for _, r := range s.runners {
		l, j := r.Counters()
		launched += l
		joined += j
	}
	return launched, joined, len(s.runners)
}

// checkpointPolicy builds the per-job checkpoint plumbing: periodic
// snapshots land in the blob store (keyed by simulation, so recovered
// jobs and deduplicated twins share them) and leave an advisory
// checkpoint record in the journal; on resume the runner loads the
// latest blob and continues from its bus cycle instead of cycle zero.
func (s *Server) checkpointPolicy(job *Job) *exp.CheckpointPolicy {
	return &exp.CheckpointPolicy{
		Every: clock.Cycle(s.cfg.CheckpointCycles),
		Save: func(key string, cp sim.Checkpoint) {
			if err := s.ckpts.Save(key, cp.Blob); err != nil {
				s.cfg.Logf("checkpoint save %s: %v", key, err)
				return
			}
			_ = s.wal.append(walRecord{Type: "checkpoint", Job: job.ID, Key: key, Bus: int64(cp.Bus)})
			if s.cfg.CkptReplicate != nil {
				// Cluster replication: the blob also lands on the
				// coordinator so a survivor can resume this simulation
				// if this node dies with it in flight.
				s.cfg.CkptReplicate(key, cp.Blob)
			}
		},
		Load: func(key string) []byte {
			if b := s.ckpts.Load(key); b != nil {
				return b
			}
			if s.cfg.CkptFetch == nil {
				return nil
			}
			// Migration read path: a job re-homed from an evicted node
			// has no local blob; fetch the one its old owner replicated.
			b := s.cfg.CkptFetch(key)
			if b != nil {
				job.events.Append(fmt.Sprintf("checkpoint blob for %s fetched from cluster", key))
				if err := s.ckpts.Save(key, b); err != nil {
					s.cfg.Logf("checkpoint adopt %s: %v", key, err)
				}
			}
			return b
		},
	}
}

// runJob executes one popped job to its terminal state.
func (s *Server) runJob(job *Job) {
	if err := job.ctx.Err(); err != nil {
		// Canceled (or deadline-expired) while queued.
		job.finish(StateCanceled, "", err)
		s.metrics.jobDone("canceled", time.Since(job.created).Seconds())
		return
	}
	if !job.start() {
		return // lost a race with Cancel; finish already recorded
	}
	s.metrics.inflight.Add(1)
	defer s.metrics.inflight.Add(-1)
	start := time.Now()

	// Content-addressed fast path: an identical completed spec is
	// served from the cache without touching a runner.
	if e, ok := s.cache.Get(job.Hash); ok {
		s.metrics.cacheHits.Add(1)
		job.mu.Lock()
		job.cacheHit = true
		job.mu.Unlock()
		job.events.Append("result cache hit")
		job.finish(StateDone, e.Output, nil)
		s.metrics.jobDone("ok", time.Since(start).Seconds())
		return
	}
	s.metrics.cacheMisses.Add(1)

	// Sharded-cache read-through: before simulating, ask the hash's
	// ring owner (the cluster layer) whether it already has the result
	// — e.g. after a ring rebalance moved this hash onto us.
	if s.cfg.CacheFetch != nil {
		if out, ok := s.cfg.CacheFetch(job.Hash); ok {
			s.cache.Put(cacheEntry{Hash: job.Hash, Kind: job.Spec.normalized().Kind, Output: out})
			s.metrics.remoteCacheHits.Add(1)
			job.mu.Lock()
			job.cacheHit = true
			job.mu.Unlock()
			job.events.Append("result fetched from cluster cache shard")
			job.finish(StateDone, out, nil)
			s.metrics.jobDone("ok", time.Since(start).Seconds())
			return
		}
	}

	var out string
	var err error
	if job.Spec.normalized().Kind == "search" {
		// Search jobs drive the autotuner engine, which fans out into
		// per-point "eval" executions against the server's own caches and
		// (via Config.EvalRemote) the cluster — see search.go.
		if s.wal != nil {
			_ = s.wal.append(walRecord{Type: "start", Job: job.ID})
		}
		out, err = s.runSearch(job)
	} else {
		var runner *exp.Runner
		runner, err = s.runnerFor(job.Spec)
		if err != nil {
			job.finish(StateFailed, "", err)
			class, _ := classify(err)
			s.metrics.jobDone(class, time.Since(start).Seconds())
			return
		}
		if s.wal != nil {
			_ = s.wal.append(walRecord{Type: "start", Job: job.ID})
		}
		view := runner.WithContext(job.ctx).WithLog(job.events.Append).WithTelemetry(job.tel)
		if s.ckpts != nil {
			view = view.WithCheckpoint(s.checkpointPolicy(job))
		}
		out, err = execute(job.ctx, view, job.Spec)
	}

	switch {
	case err == nil:
		s.cache.Put(cacheEntry{Hash: job.Hash, Kind: job.Spec.normalized().Kind, Output: out})
		job.finish(StateDone, out, nil)
		s.metrics.jobDone("ok", time.Since(start).Seconds())
	case isCanceled(err) || job.ctx.Err() != nil:
		job.finish(StateCanceled, out, err)
		s.metrics.jobDone("canceled", time.Since(start).Seconds())
	default:
		job.finish(StateFailed, out, err)
		class, _ := classify(err)
		s.metrics.jobDone(class, time.Since(start).Seconds())
	}
}

// isCanceled reports whether err stems from context cancellation.
func isCanceled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// classify maps an error to its exit class and the CLI exit code of the
// same taxonomy, so HTTP clients and shell scripts agree on what went
// wrong.
func classify(err error) (class string, code int) {
	if err == nil {
		return "ok", cli.ExitOK
	}
	if isCanceled(err) {
		return "canceled", cli.ExitError
	}
	switch code := cli.ExitCode(err); code {
	case cli.ExitProtocol:
		return "protocol", code
	case cli.ExitDeadlock:
		return "deadlock", code
	case cli.ExitOOM:
		return "oom", code
	default:
		return "error", code
	}
}

// Draining reports whether the daemon has stopped admitting jobs.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain is the graceful shutdown: stop admitting (new submissions get
// 503), let the workers finish both queued and in-flight jobs, then
// flush the result cache to disk. If ctx expires first, every remaining
// job is canceled (the context plumbing reaches into the simulation
// loops, so this is prompt) and Drain waits for the workers to notice.
func (s *Server) Drain(ctx context.Context) error {
	if !s.draining.CompareAndSwap(false, true) {
		return nil
	}
	s.cfg.Logf("draining: admission closed, %d queued, %d in flight",
		s.queue.Len(), s.metrics.inflight.Load())
	s.queue.Close()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var drainErr error
	select {
	case <-done:
	case <-ctx.Done():
		// Forced shutdown: mark every unfinished job interrupted BEFORE
		// canceling its context — the interrupted flag withholds the
		// terminal record from the journal, so a restarted daemon re-runs
		// these jobs (resuming from their last checkpoint) instead of
		// reporting them canceled.
		interrupted := 0
		for _, j := range s.Jobs() {
			if j.markInterrupted() {
				interrupted++
			}
		}
		s.cfg.Logf("drain deadline hit; canceling %d remaining job%s (journaled as interrupted)",
			interrupted, plural(interrupted, "", "s"))
		s.baseStop() // cancels every job context
		<-done
		drainErr = ctx.Err()
	}
	s.baseStop()
	if err := s.cache.Save(s.cfg.CachePath); err != nil {
		s.cfg.Logf("cache flush failed: %v", err)
		if drainErr == nil {
			drainErr = err
		}
	} else if s.cfg.CachePath != "" {
		s.cfg.Logf("result cache: %d entries flushed to %s", s.cache.Len(), s.cfg.CachePath)
	}
	if s.wal != nil {
		// Rewrite the journal down to what still matters so it does not
		// grow without bound across restarts. Interrupted jobs keep only
		// their submit record: they must re-run on the next boot.
		path := filepath.Join(s.cfg.WALDir, "journal.wal")
		var crecs []ClusterRecord
		if s.cfg.ClusterSnapshot != nil {
			crecs = s.cfg.ClusterSnapshot()
		}
		if err := compactWAL(path, s.Jobs(), crecs); err != nil {
			s.cfg.Logf("wal compaction failed: %v", err)
			if drainErr == nil {
				drainErr = err
			}
		}
		if err := s.wal.Close(); err != nil && drainErr == nil {
			drainErr = err
		}
	}
	return drainErr
}

// Close is the hard stop: cancel everything, then drain bookkeeping.
func (s *Server) Close() error {
	s.baseStop()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return s.Drain(ctx)
}

package server

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"eruca/internal/errfs"
)

// This file is the daemon's durability layer: an append-only write-ahead
// journal of job lifecycle records plus a checkpoint blob store. The
// journal makes submissions survive a crash — on boot the daemon replays
// it, restores terminal jobs (so clients can still GET their results),
// re-enqueues everything that had not finished, and remembers
// idempotency keys so a client that retries a POST after the crash gets
// its original job back instead of a duplicate. The blob store holds the
// latest simulation checkpoint per simulation key; a recovered job's
// simulations resume from there instead of cycle zero (the resumed run
// is cycle-accurate, see sim.Resume).
//
// Journal format: one JSON record per line. Every record carries a
// strictly increasing LSN and a CRC32 over its own canonical encoding
// (computed with the crc field empty). Replay stops at the first record
// that fails to parse, fails its CRC, or regresses the LSN — everything
// from there on is a torn tail from a crash mid-write, and the file is
// truncated back to the last good record so the journal stays
// append-clean.
//
// All disk access goes through an errfs.FS so chaos tests can inject the
// failures real disks produce (ENOSPC mid-append, failed fsync, torn
// writes, post-rename bit rot) and assert the daemon degrades to
// read-only instead of corrupting state.

// ClusterRecord is one cluster-state journal entry: the coordinator
// journals membership changes (join/evict), job placements learned from
// heartbeats, and eviction-time migrations, so a restarted coordinator
// reconstructs the ring, the lease table, and the in-flight placement
// map from its own WAL — the same replay-on-boot contract jobs have.
type ClusterRecord struct {
	Kind  string   `json:"kind"` // join | evict | place | unplace | migrate
	Node  string   `json:"node,omitempty"`
	Addr  string   `json:"addr,omitempty"` // node's public API address
	Peer  string   `json:"peer,omitempty"` // node's peer (cluster) address
	Epoch int64    `json:"epoch,omitempty"`
	Job   string   `json:"job,omitempty"`    // cluster-wide job ID (owner-prefixed)
	NewID string   `json:"new_id,omitempty"` // migrate: the survivor's job ID
	Hash  string   `json:"hash,omitempty"`
	Idem  string   `json:"idem,omitempty"`
	Spec  *JobSpec `json:"spec,omitempty"`
	Trace string   `json:"trace,omitempty"` // place: the job's traceparent
}

// walRecord is one journal line.
type walRecord struct {
	LSN  int64    `json:"lsn"`
	Type string   `json:"type"` // submit | start | checkpoint | finish | interrupted | cluster
	Job  string   `json:"job,omitempty"`
	Idem string   `json:"idem,omitempty"`
	Spec *JobSpec `json:"spec,omitempty"`
	// cluster payload (Type == "cluster").
	Cluster *ClusterRecord `json:"cluster,omitempty"`
	// finish fields: terminal state, rendered output (done only), error.
	State  string `json:"state,omitempty"`
	Output string `json:"output,omitempty"`
	Error  string `json:"error,omitempty"`
	// checkpoint fields: the simulation cache key and the first
	// unsimulated bus cycle of the stored blob.
	Key string `json:"key,omitempty"`
	Bus int64  `json:"bus,omitempty"`
	At  string `json:"at,omitempty"`
	CRC string `json:"crc"`
}

// seal computes the record's CRC over its encoding with CRC empty.
func (r walRecord) seal() ([]byte, error) {
	r.CRC = ""
	body, err := json.Marshal(r)
	if err != nil {
		return nil, err
	}
	r.CRC = fmt.Sprintf("%08x", crc32.ChecksumIEEE(body))
	return json.Marshal(r)
}

// verify recomputes the CRC and compares.
func (r walRecord) verify() bool {
	want := r.CRC
	r.CRC = ""
	body, err := json.Marshal(r)
	if err != nil {
		return false
	}
	return want == fmt.Sprintf("%08x", crc32.ChecksumIEEE(body))
}

// wal is the open journal. Appends are serialized, CRC-sealed, and
// synced to disk before they return, so an acknowledged submission is
// on stable storage by the time the client sees 202.
type wal struct {
	mu   sync.Mutex
	fs   errfs.FS
	f    errfs.File
	lsn  int64
	path string
}

// openWAL opens (creating if needed) the journal at path, replays every
// valid record, truncates any torn tail, and returns the journal
// positioned for appending plus the replayed records in order.
func openWAL(fsys errfs.FS, path string) (*wal, []walRecord, error) {
	if fsys == nil {
		fsys = errfs.OS
	}
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	var (
		recs []walRecord
		good int64 // byte offset after the last valid record
		lsn  int64
	)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	off := int64(0)
	for sc.Scan() {
		line := sc.Bytes()
		lineLen := int64(len(line)) + 1 // + newline
		var rec walRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			break // torn or corrupt tail
		}
		if !rec.verify() || rec.LSN != lsn+1 {
			break
		}
		lsn = rec.LSN
		recs = append(recs, rec)
		off += lineLen
		good = off
	}
	// Scanner errors (e.g. an over-long garbage line) are treated like a
	// torn tail: everything after the last good record is dropped.
	if fi, err := f.Stat(); err == nil && fi.Size() > good {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("server: wal truncate: %w", err)
		}
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &wal{fs: fsys, f: f, lsn: lsn, path: path}, recs, nil
}

// append seals and writes one record, then syncs.
func (w *wal) append(rec walRecord) error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.lsn++
	rec.LSN = w.lsn
	rec.At = time.Now().UTC().Format(time.RFC3339Nano)
	line, err := rec.seal()
	if err != nil {
		w.lsn--
		return err
	}
	if _, err := w.f.Write(append(line, '\n')); err != nil {
		return err
	}
	return w.f.Sync()
}

// Close closes the underlying file.
func (w *wal) Close() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}

// recoveredJob is the replayed final knowledge about one journaled job.
type recoveredJob struct {
	id     string
	spec   JobSpec
	idem   string
	state  State // "" while the job never reached a terminal record
	output string
	errMsg string
}

// replay folds the journal records into per-job outcomes, in submission
// order, plus the idempotency-key index. Records that reference unknown
// jobs (possible when the tail was torn between related appends) are
// skipped rather than fatal — the journal is advisory history, and
// recovery must always succeed.
func replay(recs []walRecord) (jobs []*recoveredJob, byID map[string]*recoveredJob) {
	byID = make(map[string]*recoveredJob)
	for _, rec := range recs {
		switch rec.Type {
		case "submit":
			if rec.Spec == nil || rec.Job == "" || byID[rec.Job] != nil {
				continue
			}
			rj := &recoveredJob{id: rec.Job, spec: *rec.Spec, idem: rec.Idem}
			byID[rec.Job] = rj
			jobs = append(jobs, rj)
		case "finish":
			if rj := byID[rec.Job]; rj != nil {
				rj.state = State(rec.State)
				rj.output = rec.Output
				rj.errMsg = rec.Error
			}
		case "start", "checkpoint", "interrupted":
			// Progress markers: useful for audit, not needed to decide
			// recovery (a non-terminal job re-runs either way, resuming
			// from the blob store when a checkpoint is available).
		case "cluster":
			// Cluster-state records replay through Server.ClusterReplay,
			// not the job path.
		}
	}
	return jobs, byID
}

// blobMagic heads every checkpoint-blob file. The frame embeds the
// simulation key (file names are hashes, so without it a corrupt blob
// could not be re-fetched from a replica) and a sha256 of the payload,
// verified on every read — bit rot shows up as a checksum miss, never as
// a silently wrong resume.
const blobMagic = "ERUCABLOB1"

// frameBlob wraps a checkpoint payload for storage:
//
//	ERUCABLOB1\n<key>\n<hex sha256(payload)>\n<payload>
func frameBlob(key string, payload []byte) []byte {
	sum := sha256.Sum256(payload)
	var buf bytes.Buffer
	buf.Grow(len(blobMagic) + len(key) + 64 + 3 + len(payload))
	buf.WriteString(blobMagic)
	buf.WriteByte('\n')
	buf.WriteString(key)
	buf.WriteByte('\n')
	buf.WriteString(hex.EncodeToString(sum[:]))
	buf.WriteByte('\n')
	buf.Write(payload)
	return buf.Bytes()
}

// errBlobCorrupt reports a blob that failed framing or checksum
// verification.
var errBlobCorrupt = fmt.Errorf("server: checkpoint blob corrupt")

// parseBlob splits a framed blob and verifies the payload checksum. The
// key is returned even when verification fails (the header survived) so
// the scrubber can re-fetch the blob from a replica by key.
func parseBlob(b []byte) (key string, payload []byte, err error) {
	rest, ok := bytes.CutPrefix(b, []byte(blobMagic+"\n"))
	if !ok {
		return "", nil, errBlobCorrupt
	}
	keyB, rest, ok := bytes.Cut(rest, []byte{'\n'})
	if !ok {
		return "", nil, errBlobCorrupt
	}
	key = string(keyB)
	sumB, payload, ok := bytes.Cut(rest, []byte{'\n'})
	if !ok || len(sumB) != 64 {
		return key, nil, errBlobCorrupt
	}
	want := sha256.Sum256(payload)
	if string(sumB) != hex.EncodeToString(want[:]) {
		return key, nil, errBlobCorrupt
	}
	return key, payload, nil
}

// ckptStore holds the latest simulation checkpoint blob per simulation
// key, one file per key (atomic via fsync + rename + directory fsync).
// Every blob is framed with its key and a sha256 verified on read, so
// corruption is detected at the store boundary; onCorrupt fires once per
// detection for metrics/logging.
type ckptStore struct {
	dir       string
	fs        errfs.FS
	onCorrupt func(key string)
}

func newCkptStore(fsys errfs.FS, dir string) (*ckptStore, error) {
	if fsys == nil {
		fsys = errfs.OS
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &ckptStore{dir: dir, fs: fsys}, nil
}

// file maps a simulation key to its blob path.
func (c *ckptStore) file(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(c.dir, hex.EncodeToString(sum[:12])+".ckpt")
}

// Save atomically replaces the blob for key: frame, write to a temp
// file, fsync the file, rename over the target, fsync the directory.
// Only after the directory fsync is the new blob guaranteed to survive a
// power cut.
func (c *ckptStore) Save(key string, blob []byte) error {
	path := c.file(key)
	tmp := path + ".tmp"
	f, err := c.fs.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(frameBlob(key, blob)); err != nil {
		f.Close()
		c.fs.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		c.fs.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		c.fs.Remove(tmp)
		return err
	}
	if err := c.fs.Rename(tmp, path); err != nil {
		c.fs.Remove(tmp)
		return err
	}
	return c.fs.SyncDir(c.dir)
}

// Load returns the verified payload for key, or nil when there is none
// (resume is an optimization, never a requirement). A blob that fails
// verification is reported through onCorrupt and deleted, so the
// caller's fetch-from-replica fallthrough (checkpointPolicy) becomes a
// read-through repair.
func (c *ckptStore) Load(key string) []byte {
	b, err := c.fs.ReadFile(c.file(key))
	if err != nil {
		return nil
	}
	_, payload, err := parseBlob(b)
	if err != nil {
		if c.onCorrupt != nil {
			c.onCorrupt(key)
		}
		c.fs.Remove(c.file(key))
		return nil
	}
	return payload
}

// Len reports how many blobs the store holds (for logs and tests).
func (c *ckptStore) Len() int {
	ents, err := c.fs.ReadDir(c.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range ents {
		if filepath.Ext(e.Name()) == ".ckpt" {
			n++
		}
	}
	return n
}

// Scrub walks every blob, verifies its checksum, and repairs corrupt
// blobs through the repair callback (fetch-by-key from the replica tier;
// nil or a nil return means no replica). Blobs whose key survived the
// corruption are re-fetched and rewritten; unrecoverable blobs are
// deleted so a later Load does not trip on them again.
func (c *ckptStore) Scrub(repair func(key string) []byte) (scanned, corrupt, repaired int) {
	ents, err := c.fs.ReadDir(c.dir)
	if err != nil {
		return 0, 0, 0
	}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".ckpt") {
			continue
		}
		path := filepath.Join(c.dir, e.Name())
		b, err := c.fs.ReadFile(path)
		if err != nil {
			continue
		}
		scanned++
		key, _, perr := parseBlob(b)
		if perr == nil {
			continue
		}
		corrupt++
		if c.onCorrupt != nil {
			c.onCorrupt(key)
		}
		if repair != nil && key != "" {
			if blob := repair(key); blob != nil {
				if err := c.Save(key, blob); err == nil {
					repaired++
					continue
				}
			}
		}
		c.fs.Remove(path)
	}
	return scanned, corrupt, repaired
}

// compact rewrites the journal down to the records that still matter:
// one submit (+ finish, when terminal) per job, in the original
// submission order, then the current cluster-state snapshot, with fresh
// consecutive LSNs. Called on graceful drain so the journal does not
// grow without bound across restarts. The tmp file is fsynced before the
// rename and the directory after it; on any failure the original journal
// is left untouched — a half-written compaction must never replace a
// good journal.
func compactWAL(fsys errfs.FS, path string, jobs []*Job, clusterRecs []ClusterRecord) error {
	if fsys == nil {
		fsys = errfs.OS
	}
	tmp := path + ".tmp"
	var buf bytes.Buffer
	lsn := int64(0)
	write := func(rec walRecord) error {
		lsn++
		rec.LSN = lsn
		line, err := rec.seal()
		if err != nil {
			return err
		}
		buf.Write(line)
		buf.WriteByte('\n')
		return nil
	}
	sorted := append([]*Job(nil), jobs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	for _, j := range sorted {
		spec := j.Spec
		if err := write(walRecord{Type: "submit", Job: j.ID, Idem: j.idemKey, Spec: &spec}); err != nil {
			return err
		}
		j.mu.Lock()
		state, output, errMsg, interrupted := j.state, j.output, j.errMsg, j.interrupted
		j.mu.Unlock()
		// An interrupted job keeps only its submit record — withholding
		// the terminal record is what makes the next boot re-run it.
		if state.Terminal() && !interrupted {
			rec := walRecord{Type: "finish", Job: j.ID, State: string(state), Error: errMsg}
			if state == StateDone {
				rec.Output = output
			}
			if err := write(rec); err != nil {
				return err
			}
		}
	}
	for i := range clusterRecs {
		if err := write(walRecord{Type: "cluster", Cluster: &clusterRecs[i]}); err != nil {
			return err
		}
	}
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return fsys.SyncDir(filepath.Dir(path))
}

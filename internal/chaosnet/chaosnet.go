// Package chaosnet is the deterministic fault-injection mesh for the
// service tier — the infrastructure twin of internal/faults (which
// perturbs the simulator). A Plan is parsed from a -chaos flag spec in
// the same semicolon-separated grammar -faults uses; a Mesh built from
// it wraps the cluster's HTTP transports and listeners and injects the
// failure modes that dominate real distributed systems: network
// partitions (timed windows or programmatic Sever/Heal), dropped
// requests, added latency, throttled response bodies, and stalled
// (slowloris) peers that accept connections but never answer.
//
// Determinism is the point: all randomness comes from internal/rng
// seeded by Plan.Seed, so the same seed and the same request sequence
// produce the same fault schedule — a failing chaos run replays. A nil
// Mesh is free by construction: Transport and Listener return their
// argument unchanged (pointer-identical), so `-chaos ""` leaves the
// peer hot path untouched.
//
// Partitions are enforced on the sender side by node name: each
// transport knows which node it belongs to, and destination addresses
// are mapped back to node names through Bind (the cluster layer binds
// every member it learns about). An address the mesh has never seen
// resolves to no node and is never severed — unknown traffic is left
// alone. Because each process enforces only its own plan, asymmetric
// (one-sided) partitions are expressible by giving the spec to a subset
// of the nodes.
package chaosnet

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"eruca/internal/rng"
)

// Partition is one timed split: from At (relative to Arm) for duration
// For (0 = until the end of the run), every request between a node in
// group A and a node in group B fails like a dead network path.
type Partition struct {
	At  time.Duration
	For time.Duration
	A   []string
	B   []string
}

// Plan is the parsed chaos schedule. The zero value injects nothing
// (but still pays the wrapper); a nil *Plan builds a nil Mesh, which is
// proven zero-overhead.
type Plan struct {
	// Seed reproduces the drop/delay/stall decision stream.
	Seed int64
	// Drop is the probability a request fails with a connection error
	// before reaching the wire.
	Drop float64
	// Delay (± DelayJitter, uniform) is added to every request before
	// it is sent.
	Delay       time.Duration
	DelayJitter time.Duration
	// SlowBodyBps throttles response bodies to this many BYTES per
	// second (parsed from a bits-per-second spec like "1kbps").
	SlowBodyBps int64
	// Stall is the probability an accepted inbound connection swallows
	// everything the server writes — the slowloris peer: the request is
	// processed, the response never arrives.
	Stall float64
	// Partitions are the timed splits.
	Partitions []Partition
}

// Error is the injected transport failure for dropped or partitioned
// requests. It implements net.Error so retry layers and circuit
// breakers treat it exactly like a real transport fault.
type Error struct {
	Kind string // "partition" or "drop"
	From string
	To   string
}

func (e *Error) Error() string {
	return fmt.Sprintf("chaosnet: injected %s (%s -> %s)", e.Kind, e.From, e.To)
}

// Timeout implements net.Error.
func (e *Error) Timeout() bool { return false }

// Temporary implements net.Error (deprecated upstream, still consulted
// by some retry loops).
func (e *Error) Temporary() bool { return true }

// Mesh executes a Plan: it hands out wrapped transports and listeners
// and decides, deterministically, which requests suffer. One Mesh is
// shared by every node of an in-process cluster (the per-node identity
// travels with the wrapper, not the mesh); each erucad process builds
// its own from its -chaos flag.
type Mesh struct {
	plan Plan

	mu      sync.Mutex
	rnd     *rand.Rand
	src     *rng.Source
	now     func() time.Time
	sleep   func(time.Duration)
	started bool
	start   time.Time
	binds   map[string]string // host:port -> node name
	severs  map[string]bool   // unordered pair key -> manually severed
	stalled map[string]bool   // node -> listener stalls every connection
}

// New builds a Mesh for the plan; nil plan -> nil mesh (free).
func New(p *Plan) *Mesh {
	if p == nil {
		return nil
	}
	r, src := rng.New(p.Seed)
	return &Mesh{
		plan:    *p,
		rnd:     r,
		src:     src,
		now:     time.Now,
		sleep:   time.Sleep,
		binds:   make(map[string]string),
		severs:  make(map[string]bool),
		stalled: make(map[string]bool),
	}
}

// SetClock installs test hooks for time and sleeping, so delay and
// partition-window logic is testable without wall-clock waits.
func (m *Mesh) SetClock(now func() time.Time, sleep func(time.Duration)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if now != nil {
		m.now = now
	}
	if sleep != nil {
		m.sleep = sleep
	}
}

// Arm starts the partition clock. Called automatically on the first
// injected decision; call it explicitly to anchor partition windows at
// process start.
func (m *Mesh) Arm() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.armLocked()
}

func (m *Mesh) armLocked() {
	if !m.started {
		m.started = true
		m.start = m.now()
	}
}

// Bind maps addresses onto a node name so the sender-side partition
// check can recognize the destination. Nil-safe; empty addresses are
// ignored. The cluster layer binds every member it learns about.
func (m *Mesh) Bind(node string, addrs ...string) {
	if m == nil || node == "" {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, a := range addrs {
		if a != "" {
			m.binds[a] = node
		}
	}
}

// pairKey is order-independent so Sever(a,b) blocks both directions.
func pairKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "\x00" + b
}

// Sever manually partitions two nodes (both directions) until Heal.
func (m *Mesh) Sever(a, b string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.severs[pairKey(a, b)] = true
}

// Heal lifts a manual Sever.
func (m *Mesh) Heal(a, b string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.severs, pairKey(a, b))
}

// StallNode makes (or stops making) node's wrapped listener swallow
// every response — the programmatic slowloris switch tests use.
func (m *Mesh) StallNode(node string, stalled bool) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stalled[node] = stalled
}

// severed reports whether traffic from -> to is currently blocked,
// either by a manual Sever or by an active timed partition.
func (m *Mesh) severed(from, to string) bool {
	if from == "" || to == "" || from == to {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.severs[pairKey(from, to)] {
		return true
	}
	if len(m.plan.Partitions) == 0 {
		return false
	}
	m.armLocked()
	elapsed := m.now().Sub(m.start)
	for _, p := range m.plan.Partitions {
		if elapsed < p.At || (p.For > 0 && elapsed >= p.At+p.For) {
			continue
		}
		if crossesGroups(from, to, p.A, p.B) {
			return true
		}
	}
	return false
}

func inGroup(node string, g []string) bool {
	for _, n := range g {
		if n == node {
			return true
		}
	}
	return false
}

func crossesGroups(from, to string, a, b []string) bool {
	return (inGroup(from, a) && inGroup(to, b)) || (inGroup(from, b) && inGroup(to, a))
}

// peerOf resolves a destination host:port to its bound node name
// ("" = unknown, never severed).
func (m *Mesh) peerOf(hostport string) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.binds[hostport]
}

// decide draws this request's fate from the seeded stream. The draw
// count per call is fixed by the plan (one per enabled perturbation),
// so the schedule is a pure function of (seed, request sequence).
func (m *Mesh) decide() (drop bool, delay time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.armLocked()
	if m.plan.Drop > 0 {
		drop = m.rnd.Float64() < m.plan.Drop
	}
	if m.plan.Delay > 0 || m.plan.DelayJitter > 0 {
		delay = m.plan.Delay
		if m.plan.DelayJitter > 0 {
			delay += time.Duration((m.rnd.Float64()*2 - 1) * float64(m.plan.DelayJitter))
		}
		if delay < 0 {
			delay = 0
		}
	}
	return drop, delay
}

// drawStall decides an inbound connection's fate on node.
func (m *Mesh) drawStall(node string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stalled[node] {
		return true
	}
	if m.plan.Stall <= 0 {
		return false
	}
	m.armLocked()
	return m.rnd.Float64() < m.plan.Stall
}

// Decisions reports how many seeded draws the mesh has made — the
// replay cursor (same seed + same count = same stream position).
func (m *Mesh) Decisions() uint64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	_, draws := m.src.State()
	return draws
}

// Transport wraps base in the mesh's fault injection for requests sent
// by node. A nil mesh returns base unchanged — the zero-overhead
// contract `-chaos ""` relies on.
func (m *Mesh) Transport(node string, base http.RoundTripper) http.RoundTripper {
	if m == nil {
		return base
	}
	if base == nil {
		base = http.DefaultTransport
	}
	return &transport{mesh: m, node: node, base: base}
}

type transport struct {
	mesh *Mesh
	node string
	base http.RoundTripper
}

func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	m := t.mesh
	to := m.peerOf(req.URL.Host)
	if m.severed(t.node, to) {
		return nil, &Error{Kind: "partition", From: t.node, To: to}
	}
	drop, delay := m.decide()
	if delay > 0 {
		m.sleepFn()(delay)
	}
	if drop {
		return nil, &Error{Kind: "drop", From: t.node, To: to}
	}
	resp, err := t.base.RoundTrip(req)
	if err == nil && m.plan.SlowBodyBps > 0 && resp.Body != nil {
		resp.Body = &throttledBody{rc: resp.Body, bps: m.plan.SlowBodyBps, sleep: m.sleepFn()}
	}
	return resp, err
}

// CloseIdleConnections forwards to the wrapped transport, so
// http.Client.CloseIdleConnections still drains the pool when the mesh
// sits in front of it (without this, pooled pre-fault connections
// dodge listener-side injection like stalls forever).
func (t *transport) CloseIdleConnections() {
	if ci, ok := t.base.(interface{ CloseIdleConnections() }); ok {
		ci.CloseIdleConnections()
	}
}

func (m *Mesh) sleepFn() func(time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sleep
}

// throttledBody paces reads to bps bytes per second.
type throttledBody struct {
	rc    io.ReadCloser
	bps   int64
	sleep func(time.Duration)
}

func (t *throttledBody) Read(p []byte) (int, error) {
	// Cap each read at ~100ms of budget so pacing is smooth.
	chunk := t.bps / 10
	if chunk < 1 {
		chunk = 1
	}
	if int64(len(p)) > chunk {
		p = p[:chunk]
	}
	n, err := t.rc.Read(p)
	if n > 0 {
		t.sleep(time.Duration(int64(n) * int64(time.Second) / t.bps))
	}
	return n, err
}

func (t *throttledBody) Close() error { return t.rc.Close() }

// Listener wraps ln so inbound connections on node can be stalled
// (slowloris). A nil mesh returns ln unchanged.
func (m *Mesh) Listener(node string, ln net.Listener) net.Listener {
	if m == nil {
		return ln
	}
	return &listener{mesh: m, node: node, Listener: ln}
}

type listener struct {
	net.Listener
	mesh *Mesh
	node string
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return c, err
	}
	if l.mesh.drawStall(l.node) {
		return &stallConn{Conn: c}, nil
	}
	return c, nil
}

// stallConn reads normally (the server sees the request) but discards
// every write: the client never receives a byte of the response and
// must save itself with a response-header timeout.
type stallConn struct {
	net.Conn
}

func (c *stallConn) Write(p []byte) (int, error) { return len(p), nil }

// String renders the plan in the canonical spec grammar (re-parseable).
func (m *Mesh) String() string {
	if m == nil {
		return "none"
	}
	return m.plan.String()
}

// String renders the plan as a spec Parse accepts.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	var parts []string
	parts = append(parts, fmt.Sprintf("seed=%d", p.Seed))
	if p.Drop > 0 {
		parts = append(parts, fmt.Sprintf("drop=%g", p.Drop))
	}
	if p.Delay > 0 || p.DelayJitter > 0 {
		d := fmt.Sprintf("delay=%s", p.Delay)
		if p.DelayJitter > 0 {
			d += "±" + p.DelayJitter.String()
		}
		parts = append(parts, d)
	}
	if p.SlowBodyBps > 0 {
		parts = append(parts, fmt.Sprintf("slowbody=%dbps", p.SlowBodyBps*8))
	}
	if p.Stall > 0 {
		parts = append(parts, fmt.Sprintf("stall=%g", p.Stall))
	}
	for _, pt := range p.Partitions {
		at := pt.At.String()
		if pt.For > 0 {
			at += "+" + pt.For.String()
		}
		parts = append(parts, fmt.Sprintf("partition@%s:%s|%s",
			at, strings.Join(pt.A, ","), strings.Join(pt.B, ",")))
	}
	return strings.Join(parts, ";")
}

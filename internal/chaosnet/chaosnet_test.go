package chaosnet

import (
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestParseGrammar(t *testing.T) {
	p, err := Parse("partition@2s:nodeA|nodeB;delay=200ms±100ms;drop=0.05;slowbody=1kbps")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 1 || p.Drop != 0.05 || p.Delay != 200*time.Millisecond || p.DelayJitter != 100*time.Millisecond {
		t.Errorf("parsed %+v", p)
	}
	if p.SlowBodyBps != 125 { // 1kbps = 1000 bits/s = 125 B/s
		t.Errorf("SlowBodyBps = %d, want 125", p.SlowBodyBps)
	}
	if len(p.Partitions) != 1 || p.Partitions[0].At != 2*time.Second || p.Partitions[0].For != 0 {
		t.Errorf("partitions = %+v", p.Partitions)
	}
	if !reflect.DeepEqual(p.Partitions[0].A, []string{"nodeA"}) || !reflect.DeepEqual(p.Partitions[0].B, []string{"nodeB"}) {
		t.Errorf("groups = %+v", p.Partitions[0])
	}

	p, err = Parse("seed=42;partition@1s+500ms:a,b|c;stall=0.5;delay=10ms+-5ms")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 || p.Stall != 0.5 || p.DelayJitter != 5*time.Millisecond {
		t.Errorf("parsed %+v", p)
	}
	if p.Partitions[0].For != 500*time.Millisecond || len(p.Partitions[0].A) != 2 {
		t.Errorf("partition = %+v", p.Partitions[0])
	}

	for _, bad := range []string{
		"nonsense", "drop=2", "drop=x", "stall=-1", "delay=abc", "delay=-5s",
		"slowbody=5", "slowbody=0bps", "partition@2s", "partition@x:a|b",
		"partition@2s:a", "partition@2s:|b", "partition@2s:a,|b", "seed=x",
		"unknown=1", "partition@2s+:a|b",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

// TestParseEmptyIsNil: the `-chaos ""` contract — no plan, no mesh, and
// the wrappers return their argument pointer-identical, so the peer hot
// path is provably untouched.
func TestParseEmptyIsNil(t *testing.T) {
	p, err := Parse("   ")
	if err != nil || p != nil {
		t.Fatalf("Parse(blank) = %v, %v; want nil, nil", p, err)
	}
	m := New(nil)
	if m != nil {
		t.Fatal("New(nil) built a mesh")
	}
	base := &http.Transport{}
	if got := m.Transport("n1", base); got != http.RoundTripper(base) {
		t.Error("nil mesh Transport is not the identity")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if got := m.Listener("n1", ln); got != net.Listener(ln) {
		t.Error("nil mesh Listener is not the identity")
	}
	// Nil-safe no-ops.
	m.Bind("n1", "a:1")
	m.Sever("a", "b")
	m.Heal("a", "b")
	m.StallNode("a", true)
	m.Arm()
	if m.Decisions() != 0 {
		t.Error("nil mesh counted decisions")
	}
	if m.String() != "none" {
		t.Errorf("nil mesh String = %q", m.String())
	}
}

// schedule records the fault decisions a mesh makes over n synthetic
// requests against a stub upstream.
func schedule(t *testing.T, seed int64, n int) []string {
	t.Helper()
	plan := &Plan{Seed: seed, Drop: 0.3, Delay: 10 * time.Millisecond, DelayJitter: 8 * time.Millisecond}
	m := New(plan)
	var slept []time.Duration
	m.SetClock(time.Now, func(d time.Duration) { slept = append(slept, d) })
	rt := m.Transport("n1", roundTripFunc(func(*http.Request) (*http.Response, error) {
		return &http.Response{StatusCode: 200, Body: io.NopCloser(strings.NewReader(""))}, nil
	}))
	var out []string
	for i := 0; i < n; i++ {
		slept = nil
		req, _ := http.NewRequest("GET", "http://peer:1/x", nil)
		_, err := rt.RoundTrip(req)
		d := time.Duration(0)
		if len(slept) > 0 {
			d = slept[0]
		}
		if err != nil {
			out = append(out, "drop+"+d.String())
		} else {
			out = append(out, "ok+"+d.String())
		}
	}
	return out
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

// TestReplayDeterminism: same seed => identical injected-fault schedule;
// a different seed diverges.
func TestReplayDeterminism(t *testing.T) {
	a := schedule(t, 7, 200)
	b := schedule(t, 7, 200)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different fault schedules")
	}
	drops := 0
	for _, s := range a {
		if strings.HasPrefix(s, "drop") {
			drops++
		}
	}
	if drops < 20 || drops > 120 {
		t.Errorf("drop=0.3 over 200 requests injected %d drops", drops)
	}
	if c := schedule(t, 8, 200); reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical schedules")
	}
}

// TestPartitionWindowAndHeal drives the timed-partition logic with a
// fake clock and the manual Sever/Heal switches.
func TestPartitionWindowAndHeal(t *testing.T) {
	p, err := Parse("partition@2s+3s:a|b,c")
	if err != nil {
		t.Fatal(err)
	}
	m := New(p)
	now := time.Unix(100, 0)
	m.SetClock(func() time.Time { return now }, func(time.Duration) {})
	m.Arm()

	at := func(off time.Duration, from, to string) bool {
		now = time.Unix(100, 0).Add(off)
		return m.severed(from, to)
	}
	if at(1*time.Second, "a", "b") {
		t.Error("severed before the window")
	}
	for _, to := range []string{"b", "c"} {
		if !at(2*time.Second, "a", to) || !at(2*time.Second, to, "a") {
			t.Errorf("a<->%s not severed inside the window", to)
		}
	}
	if at(3*time.Second, "b", "c") {
		t.Error("same-side nodes severed")
	}
	if at(5100*time.Millisecond, "a", "b") {
		t.Error("still severed after the window")
	}
	if at(3*time.Second, "a", "") || at(3*time.Second, "a", "d") {
		t.Error("unknown peer severed")
	}

	// Manual sever wins regardless of windows, until healed.
	m.Sever("x", "y")
	if !at(0, "x", "y") || !at(0, "y", "x") {
		t.Error("manual Sever not symmetric")
	}
	m.Heal("x", "y")
	if at(0, "x", "y") {
		t.Error("Heal did not lift the sever")
	}
}

// TestTransportPartitionError: a severed destination fails with the
// typed injected error before touching the wire.
func TestTransportPartitionError(t *testing.T) {
	m := New(&Plan{Seed: 1})
	m.Bind("b", "peer-b:80")
	m.Sever("a", "b")
	calls := 0
	rt := m.Transport("a", roundTripFunc(func(*http.Request) (*http.Response, error) {
		calls++
		return nil, errors.New("should not reach the wire")
	}))
	req, _ := http.NewRequest("GET", "http://peer-b:80/x", nil)
	_, err := rt.RoundTrip(req)
	var ce *Error
	if !errors.As(err, &ce) || ce.Kind != "partition" || ce.From != "a" || ce.To != "b" {
		t.Fatalf("err = %v, want injected partition a->b", err)
	}
	var ne net.Error
	if !errors.As(err, &ne) || ne.Timeout() {
		t.Error("injected error should be a non-timeout net.Error")
	}
	if calls != 0 {
		t.Error("partitioned request reached the base transport")
	}
	m.Heal("a", "b")
	if _, err := rt.RoundTrip(req); err == nil || err.Error() != "should not reach the wire" {
		t.Errorf("healed request did not pass through: %v", err)
	}
}

// TestSlowBodyPacing: a throttled body sleeps proportionally to the
// bytes it delivers.
func TestSlowBodyPacing(t *testing.T) {
	m := New(&Plan{Seed: 1, SlowBodyBps: 100}) // 100 B/s
	var slept time.Duration
	m.SetClock(nil, func(d time.Duration) { slept += d })
	body := strings.Repeat("x", 250)
	rt := m.Transport("n1", roundTripFunc(func(*http.Request) (*http.Response, error) {
		return &http.Response{StatusCode: 200, Body: io.NopCloser(strings.NewReader(body))}, nil
	}))
	req, _ := http.NewRequest("GET", "http://peer:1/x", nil)
	resp, err := rt.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	if err != nil || len(got) != 250 {
		t.Fatalf("read %d bytes, err %v", len(got), err)
	}
	resp.Body.Close()
	// 250 bytes at 100 B/s = 2.5s of injected sleep.
	if slept < 2400*time.Millisecond || slept > 2600*time.Millisecond {
		t.Errorf("throttle slept %s, want ~2.5s", slept)
	}
}

// TestStalledListener: a stalled node's HTTP server processes requests
// but the client never sees a byte — only its own timeout saves it.
func TestStalledListener(t *testing.T) {
	m := New(&Plan{Seed: 1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan struct{}, 8)
	hs := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served <- struct{}{}
		io.WriteString(w, "hello")
	}))
	hs.Listener.Close()
	hs.Listener = m.Listener("victim", ln)
	hs.Start()
	defer hs.Close()

	// Keep-alives off: each request must go through a fresh Accept so
	// the stall decision applies to it.
	client := &http.Client{Transport: &http.Transport{
		ResponseHeaderTimeout: 300 * time.Millisecond,
		DisableKeepAlives:     true,
	}}
	if resp, err := client.Get(hs.URL); err != nil {
		t.Fatalf("unstalled request failed: %v", err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	m.StallNode("victim", true)
	start := time.Now()
	_, err = client.Get(hs.URL)
	if err == nil {
		t.Fatal("stalled peer answered")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("client hung %s despite ResponseHeaderTimeout", elapsed)
	}
	select {
	case <-served:
	case <-time.After(2 * time.Second):
		t.Error("stalled peer never saw the request (stall must swallow responses, not requests)")
	}
}

// TestStringRoundTrip: the canonical rendering re-parses to the same
// plan (the fuzz target leans on this).
func TestStringRoundTrip(t *testing.T) {
	for _, spec := range []string{
		"seed=7;drop=0.05;delay=200ms±100ms;slowbody=1kbps;stall=0.25;partition@2s+3s:a,b|c",
		"partition@0s:x|y",
		"delay=1s",
	} {
		p, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		p2, err := Parse(p.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", p.String(), err)
		}
		if !reflect.DeepEqual(p, p2) {
			t.Errorf("round trip of %q: %+v != %+v", spec, p, p2)
		}
	}
}

package chaosnet

import (
	"reflect"
	"testing"
)

// FuzzChaosPlan hammers the -chaos spec parser with hostile input: it
// must reject garbage with typed errors (never panic), and every spec
// it accepts must render back (String) into a spec that re-parses to
// the identical plan — the canonical-form round trip replay relies on.
func FuzzChaosPlan(f *testing.F) {
	f.Add("")
	f.Add("seed=7;drop=0.05")
	f.Add("partition@2s:nodeA|nodeB;delay=200ms±100ms;drop=0.05;slowbody=1kbps")
	f.Add("seed=42;partition@1s+500ms:a,b|c;stall=0.5;delay=10ms+-5ms")
	f.Add("slowbody=2mbps;delay=1h")
	f.Add("partition@0s:x|y;partition@1ms+1ms:x|z")
	f.Add("drop=1;stall=1")
	f.Add("partition@2s:a|b;;;seed=-1")
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := Parse(spec)
		if err != nil {
			if p != nil {
				t.Fatalf("Parse(%q) returned both a plan and an error", spec)
			}
			return
		}
		if p == nil {
			return // blank spec: no chaos
		}
		rendered := p.String()
		p2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("String() of accepted spec %q does not re-parse: %q: %v", spec, rendered, err)
		}
		if !reflect.DeepEqual(p, p2) {
			t.Fatalf("round trip drifted: %q -> %+v -> %q -> %+v", spec, p, rendered, p2)
		}
		// An accepted plan must always build a usable mesh.
		m := New(p)
		if m == nil {
			t.Fatal("New on accepted plan returned nil")
		}
		m.Bind("a", "a:1")
		_ = m.severed("a", "b")
		_, _ = m.decide()
	})
}

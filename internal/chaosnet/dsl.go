package chaosnet

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Parse builds a Plan from a -chaos flag spec: semicolon-separated
// fields in the same grammar -faults uses. An empty spec yields a nil
// plan (no chaos, proven zero-overhead).
//
//	seed=7;drop=0.05;delay=200ms±100ms;slowbody=1kbps;stall=0.5
//	partition@2s:nodeA|nodeB;partition@10s+3s:a,b|c
//
// Fields:
//
//	seed=N                  decision-stream seed (default 1)
//	drop=P                  request drop probability, 0..1
//	delay=D[±J]             per-request latency, uniform jitter J
//	                        ("+-" is accepted for "±")
//	slowbody=R              response-body throttle in bits/s
//	                        (bps, kbps, mbps suffixes)
//	stall=P                 inbound slowloris probability, 0..1
//	partition@T[+D]:A|B     sever node groups A and B (comma-separated
//	                        names) from T after start, for D (forever
//	                        when +D is omitted)
func Parse(spec string) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	p := &Plan{Seed: 1}
	for _, field := range strings.Split(spec, ";") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(field, "partition@"); ok {
			pt, err := parsePartition(rest)
			if err != nil {
				return nil, err
			}
			p.Partitions = append(p.Partitions, pt)
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("chaosnet: bad field %q (want key=value or partition@...)", field)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch key {
		case "seed":
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("chaosnet: bad seed %q: %v", val, err)
			}
			p.Seed = v
		case "drop":
			v, err := parseProb(val)
			if err != nil {
				return nil, fmt.Errorf("chaosnet: bad drop %q (want 0..1)", val)
			}
			p.Drop = v
		case "stall":
			v, err := parseProb(val)
			if err != nil {
				return nil, fmt.Errorf("chaosnet: bad stall %q (want 0..1)", val)
			}
			p.Stall = v
		case "delay":
			d, j, err := parseDelay(val)
			if err != nil {
				return nil, err
			}
			p.Delay, p.DelayJitter = d, j
		case "slowbody":
			bps, err := parseRate(val)
			if err != nil {
				return nil, err
			}
			p.SlowBodyBps = bps
		default:
			return nil, fmt.Errorf("chaosnet: unknown key %q", key)
		}
	}
	return p, nil
}

func parseProb(val string) (float64, error) {
	v, err := strconv.ParseFloat(val, 64)
	if err != nil || v < 0 || v > 1 {
		return 0, fmt.Errorf("bad probability %q", val)
	}
	return v, nil
}

// parseDelay splits "200ms±100ms" (or "200ms+-100ms") into base and
// jitter durations.
func parseDelay(val string) (d, j time.Duration, err error) {
	base, jit := val, ""
	for _, sep := range []string{"±", "+-"} {
		if b, rest, ok := strings.Cut(val, sep); ok {
			base, jit = b, rest
			break
		}
	}
	if d, err = time.ParseDuration(strings.TrimSpace(base)); err != nil || d < 0 {
		return 0, 0, fmt.Errorf("chaosnet: bad delay %q", val)
	}
	if jit != "" {
		if j, err = time.ParseDuration(strings.TrimSpace(jit)); err != nil || j < 0 {
			return 0, 0, fmt.Errorf("chaosnet: bad delay jitter %q", val)
		}
	}
	return d, j, nil
}

// parseRate turns a bits-per-second spec ("1kbps", "250bps", "2mbps")
// into bytes per second (floor, minimum 1).
func parseRate(val string) (int64, error) {
	s := strings.ToLower(strings.TrimSpace(val))
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "kbps"):
		mult, s = 1_000, strings.TrimSuffix(s, "kbps")
	case strings.HasSuffix(s, "mbps"):
		mult, s = 1_000_000, strings.TrimSuffix(s, "mbps")
	case strings.HasSuffix(s, "bps"):
		s = strings.TrimSuffix(s, "bps")
	default:
		return 0, fmt.Errorf("chaosnet: bad rate %q (want bps/kbps/mbps)", val)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil || v <= 0 || v > 1e12 {
		return 0, fmt.Errorf("chaosnet: bad rate %q", val)
	}
	bytesPerSec := int64(v*float64(mult)) / 8
	if bytesPerSec < 1 {
		bytesPerSec = 1
	}
	return bytesPerSec, nil
}

// parsePartition parses "2s:alpha|beta" or "2s+500ms:a,b|c" (the
// "partition@" prefix is already consumed).
func parsePartition(rest string) (Partition, error) {
	timespec, groups, ok := strings.Cut(rest, ":")
	if !ok {
		return Partition{}, fmt.Errorf("chaosnet: bad partition %q (want partition@T[+D]:A|B)", rest)
	}
	var pt Partition
	at, dur, hasDur := strings.Cut(timespec, "+")
	v, err := time.ParseDuration(strings.TrimSpace(at))
	if err != nil || v < 0 {
		return Partition{}, fmt.Errorf("chaosnet: bad partition start %q", timespec)
	}
	pt.At = v
	if hasDur {
		v, err := time.ParseDuration(strings.TrimSpace(dur))
		if err != nil || v <= 0 {
			return Partition{}, fmt.Errorf("chaosnet: bad partition duration %q", timespec)
		}
		pt.For = v
	}
	a, b, ok := strings.Cut(groups, "|")
	if !ok {
		return Partition{}, fmt.Errorf("chaosnet: bad partition groups %q (want A|B)", groups)
	}
	if pt.A, err = parseGroup(a); err != nil {
		return Partition{}, err
	}
	if pt.B, err = parseGroup(b); err != nil {
		return Partition{}, err
	}
	return pt, nil
}

func parseGroup(g string) ([]string, error) {
	var nodes []string
	for _, n := range strings.Split(g, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			return nil, fmt.Errorf("chaosnet: empty node name in partition group %q", g)
		}
		nodes = append(nodes, n)
	}
	return nodes, nil
}

package cli

import (
	"flag"
	"fmt"
	"strings"

	"eruca/internal/search"
)

// Search is the -search-* flag cluster shared by erucabench and the
// examples/search client (the PR 3 flag-hoisting convention: one
// registration, one parsing rule, no per-binary re-declaration). The
// search seed itself rides the binaries' existing -seed flag — the
// engine rejects a zero seed with search.ErrUnseeded.
type Search struct {
	Dims      string
	Grid      int
	Rungs     int
	Scale     int64
	Survive   float64
	Rounds    int
	Neighbors int
}

// Register installs the flags on the default flag set.
func (s *Search) Register() {
	flag.StringVar(&s.Dims, "search-dims", "planes",
		"searched dimensions, ';'-separated, each 'name' (full ladder) or 'name=v1,v2,...' "+
			"(known: planes, ewlr, ewlr_bits, rap, ddb, queue_depth, page_policy)")
	flag.IntVar(&s.Grid, "search-grid", 0, "max coarse-grid seed points (default 32)")
	flag.IntVar(&s.Rungs, "search-rungs", 0, "successive-halving rungs (default 3)")
	flag.Int64Var(&s.Scale, "search-scale", 0, "instruction-budget scale between rungs (default 4)")
	flag.Float64Var(&s.Survive, "search-survive", 0, "fraction promoted per rung (default 0.5)")
	flag.IntVar(&s.Rounds, "search-rounds", 0, "neighborhood-refinement rounds (default 2, -1 disables)")
	flag.IntVar(&s.Neighbors, "search-neighbors", 0, "max neighbors evaluated per refinement round (default 16)")
}

// ParseDims parses the -search-dims DSL: ';'-separated dimensions,
// each either a bare name (full ladder) or name=v1,v2,... (a ladder
// subset). Validation of names and values happens when the spec
// compiles, so errors carry the engine's ladder diagnostics.
func ParseDims(dsl string) ([]search.DimSpec, error) {
	var dims []search.DimSpec
	for _, part := range strings.Split(dsl, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, csv, has := strings.Cut(part, "=")
		d := search.DimSpec{Name: strings.TrimSpace(name)}
		if has {
			for _, v := range strings.Split(csv, ",") {
				if v = strings.TrimSpace(v); v != "" {
					d.Values = append(d.Values, v)
				}
			}
			if len(d.Values) == 0 {
				return nil, fmt.Errorf("cli: -search-dims: dimension %q has an empty value list", d.Name)
			}
		}
		dims = append(dims, d)
	}
	if len(dims) == 0 {
		return nil, fmt.Errorf("cli: -search-dims is empty")
	}
	return dims, nil
}

// Spec assembles and validates a search.Spec from the flag cluster
// plus the binary's shared workload/budget flags.
func (s Search) Spec(mix string, frag, busMHz float64, seed, instrs int64) (search.Spec, error) {
	dims, err := ParseDims(s.Dims)
	if err != nil {
		return search.Spec{}, err
	}
	spec := search.Spec{
		Dims:         dims,
		Mix:          mix,
		Frag:         frag,
		BusMHz:       busMHz,
		Seed:         seed,
		Instrs:       instrs,
		GridMax:      s.Grid,
		Rungs:        s.Rungs,
		RungScale:    s.Scale,
		SurviveFrac:  s.Survive,
		RefineRounds: s.Rounds,
		NeighborMax:  s.Neighbors,
	}
	if _, err := spec.Validate(); err != nil {
		return search.Spec{}, err
	}
	return spec, nil
}

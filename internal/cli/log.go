package cli

import (
	"flag"
	"io"
	"log/slog"

	"eruca/internal/obs"
)

// Log is the -log-format/-log-level flag pair shared by every binary,
// resolving to a structured slog logger (internal/obs constructors).
type Log struct {
	Format string
	Level  string
}

// Register installs the flags on the default flag set.
func (l *Log) Register() {
	flag.StringVar(&l.Format, "log-format", "text", "log output format: text or json")
	flag.StringVar(&l.Level, "log-level", "info", "minimum log level: debug, info, warn or error")
}

// Build resolves the flag values into a logger writing to w.
func (l Log) Build(w io.Writer) (*slog.Logger, error) {
	return obs.NewLogger(w, l.Format, l.Level)
}

// Package cli holds the robustness plumbing shared by the erucasim,
// erucabench and erucatrace binaries: the -check/-watchdog/-latency/
// -faults/-crashdump flag cluster, the error-to-exit-code mapping, and
// crash-dump file writing.
package cli

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"eruca/internal/check"
	"eruca/internal/clock"
	"eruca/internal/faults"
	"eruca/internal/osmem"
	"eruca/internal/sim"
)

// Exit codes, so scripts can tell a protocol violation from a hang
// from a sizing problem.
const (
	// ExitOK: clean run.
	ExitOK = 0
	// ExitError: generic failure (bad workload name, I/O, ...).
	ExitError = 1
	// ExitUsage: bad flag syntax.
	ExitUsage = 2
	// ExitProtocol: a protocol checker violation ended the run.
	ExitProtocol = 3
	// ExitDeadlock: the forward-progress or latency watchdog tripped.
	ExitDeadlock = 4
	// ExitOOM: simulated physical memory was exhausted.
	ExitOOM = 5
)

// Robust is the flag cluster every binary shares.
type Robust struct {
	CheckMode      string
	WatchdogBudget int64
	LatencyCeiling int64
	FaultSpec      string
	CrashDump      string
}

// Register installs the flags on the default flag set.
func (r *Robust) Register() {
	flag.StringVar(&r.CheckMode, "check", "off", "protocol checker mode: off, log, fail or panic")
	flag.Int64Var(&r.WatchdogBudget, "watchdog", 0,
		"forward-progress watchdog budget in bus cycles (0 = off, <0 = default budget)")
	flag.Int64Var(&r.LatencyCeiling, "latency", 0, "read-latency ceiling in bus cycles (0 = off; implies the watchdog)")
	flag.StringVar(&r.FaultSpec, "faults", "",
		"fault-injection plan, e.g. seed=7;n=6;kinds=refresh+forcepre+timing;drop=0.1 (chaos runs)")
	flag.StringVar(&r.CrashDump, "crashdump", "", "write flight-recorder/deadlock dumps to this file on failure")
}

// Build resolves the flag values into simulator options. A nil return
// for each component means "disabled".
func (r *Robust) Build() (*check.Options, *sim.Watchdog, *faults.Plan, error) {
	var copts *check.Options
	mode, err := check.ParseMode(r.CheckMode)
	if err != nil {
		return nil, nil, nil, err
	}
	if mode != check.Off {
		copts = &check.Options{Mode: mode}
	}
	var wd *sim.Watchdog
	if r.WatchdogBudget != 0 || r.LatencyCeiling > 0 {
		budget := clock.Cycle(r.WatchdogBudget)
		if budget < 0 {
			budget = 0 // sim applies DefaultProgressBudget
		}
		wd = &sim.Watchdog{ProgressBudget: budget, LatencyCeiling: clock.Cycle(r.LatencyCeiling)}
	}
	plan, err := faults.Parse(r.FaultSpec)
	if err != nil {
		return nil, nil, nil, err
	}
	return copts, wd, plan, nil
}

// ExitCode classifies an error into the exit-code table above.
func ExitCode(err error) int {
	if err == nil {
		return ExitOK
	}
	var pe *check.ProtocolError
	if errors.As(err, &pe) {
		return ExitProtocol
	}
	var de *sim.DeadlockError
	if errors.As(err, &de) {
		return ExitDeadlock
	}
	if errors.Is(err, osmem.ErrOOM) {
		return ExitOOM
	}
	return ExitError
}

// Dump renders the diagnostic payload of an error: the flight-recorder
// dump of a protocol violation, the system snapshot of a deadlock, or
// the plain error text.
func Dump(err error, res *sim.Result) string {
	var b strings.Builder
	var pe *check.ProtocolError
	var de *sim.DeadlockError
	switch {
	case errors.As(err, &pe):
		b.WriteString(pe.Dump())
	case errors.As(err, &de):
		fmt.Fprintf(&b, "%s\n%s", de.Error(), de.Report)
	case err != nil:
		fmt.Fprintf(&b, "%v\n", err)
	}
	if res != nil {
		for i, v := range res.Protocol {
			fmt.Fprintf(&b, "--- logged violation %d/%d ---\n%s", i+1, len(res.Protocol), v.Dump())
		}
		if res.FaultsInjected > 0 {
			fmt.Fprintf(&b, "faults injected: %d\n", res.FaultsInjected)
		}
	}
	return b.String()
}

// WriteCrashDump writes the diagnostic payload to path (no-op when
// path is empty), reporting where it wrote on stderr.
func WriteCrashDump(path string, err error, res *sim.Result) {
	if path == "" {
		return
	}
	payload := Dump(err, res)
	if payload == "" {
		return
	}
	if werr := os.WriteFile(path, []byte(payload), 0o644); werr != nil {
		fmt.Fprintf(os.Stderr, "crash dump: %v\n", werr)
		return
	}
	fmt.Fprintf(os.Stderr, "crash dump written to %s\n", path)
}

// Exit prints err and terminates with its classified exit code,
// writing the crash dump first.
func (r *Robust) Exit(name string, err error, res *sim.Result) {
	WriteCrashDump(r.CrashDump, err, res)
	fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
	os.Exit(ExitCode(err))
}

package cli

import (
	"flag"
	"fmt"
	"strings"

	"eruca/internal/config"
	"eruca/internal/workload"
)

// Workload is the -mix/-bench flag pair shared by erucasim, erucatrace
// and (as JSON fields) the erucad job spec. Before this cluster existed
// each binary re-wired the two flags with subtly different precedence;
// Benches is now the single resolution rule.
type Workload struct {
	Mix   string
	Bench string
}

// Register installs the flags on the default flag set. defBench seeds
// the -bench default ("" means the binary falls back to defMix inside
// Benches).
func (w *Workload) Register(defBench string) {
	flag.StringVar(&w.Mix, "mix", "", "Tab. III mix name (mix0..mix8)")
	flag.StringVar(&w.Bench, "bench", defBench, "comma-separated benchmarks (alternative to -mix)")
}

// Benches resolves the pair into a benchmark list. Precedence: an
// explicit -mix wins, then -bench, then defMix (empty = error). Every
// named benchmark and mix is validated here, so binaries fail at flag
// time instead of deep inside a simulation.
func (w Workload) Benches(defMix string) ([]string, error) {
	name := w.Mix
	if name == "" && w.Bench == "" {
		name = defMix
	}
	if name != "" {
		m, err := workload.MixByName(name)
		if err != nil {
			return nil, err
		}
		return m.Bench, nil
	}
	if w.Bench == "" {
		return nil, fmt.Errorf("cli: no -mix or -bench given")
	}
	var benches []string
	for _, b := range strings.Split(w.Bench, ",") {
		b = strings.TrimSpace(b)
		if b == "" {
			continue
		}
		if _, err := workload.ByName(b); err != nil {
			return nil, err
		}
		benches = append(benches, b)
	}
	if len(benches) == 0 {
		return nil, fmt.Errorf("cli: empty -bench list")
	}
	return benches, nil
}

// ParseMixes validates a comma-separated mix subset (the -mixes flag of
// erucabench and the erucad sweep spec). Empty input means "all mixes"
// and returns nil.
func ParseMixes(csv string) ([]string, error) {
	if strings.TrimSpace(csv) == "" {
		return nil, nil
	}
	var mixes []string
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, err := workload.MixByName(name); err != nil {
			return nil, err
		}
		mixes = append(mixes, name)
	}
	return mixes, nil
}

// ParseSystems resolves a comma-separated preset list (the -system flag
// and the erucad job-spec "systems" field) into built configurations.
func ParseSystems(csv string, planes int, busMHz float64) ([]*config.System, error) {
	var systems []*config.System
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		sys, err := config.ByName(name, planes, busMHz)
		if err != nil {
			return nil, err
		}
		systems = append(systems, sys)
	}
	if len(systems) == 0 {
		return nil, fmt.Errorf("cli: empty system list")
	}
	return systems, nil
}

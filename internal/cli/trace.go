package cli

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"eruca/internal/clock"
	"eruca/internal/telemetry"
)

// Trace is the -trace-* flag cluster shared by erucasim, erucabench and
// erucatrace: it builds one telemetry.Set per process, attaches it to
// every simulation the binary launches, and exports the captured events
// on exit — Chrome trace-event / Perfetto JSON for a .json -trace-out,
// the compact 32-byte binary format for anything else. Tracing is
// purely observational: the simulated command stream and every table
// are byte-identical with or without it.
type Trace struct {
	// Out is the trace destination; empty disables event capture (the
	// mechanism counters still run if telemetry is attached elsewhere).
	Out string
	// Sample keeps 1-in-N traced events (counters always see all).
	Sample int
	// Depth is the per-rank recent-event ring capacity.
	Depth int
	// Cap bounds the in-memory capture buffer before spilling.
	Cap int
	// Spill is an optional binary overflow file for >Cap-event runs.
	Spill string
	// From/To gate tracing to a bus-cycle window (0 = unbounded).
	From, To int64

	spill *os.File
	set   *telemetry.Set
}

// Register installs the flags on the default flag set.
func (t *Trace) Register() {
	flag.StringVar(&t.Out, "trace-out", "",
		"write the event trace here: .json = Chrome/Perfetto trace, otherwise compact binary")
	flag.IntVar(&t.Sample, "trace-sample", 0, "keep 1-in-N traced events (0 or 1 = all; counters see every event)")
	flag.IntVar(&t.Depth, "trace-depth", 0, "per-rank recent-event ring depth (default 256)")
	flag.IntVar(&t.Cap, "trace-cap", 0, "in-memory trace capture cap in events (default 1M)")
	flag.StringVar(&t.Spill, "trace-spill", "", "binary spill file for events beyond -trace-cap")
	flag.Int64Var(&t.From, "trace-from", 0, "start tracing at this bus cycle")
	flag.Int64Var(&t.To, "trace-to", 0, "stop tracing at this bus cycle (0 = end of run)")
}

// Build resolves the flags into a telemetry.Set, or nil when no tracing
// was requested (the nil Set keeps the simulator hot path untouched).
func (t *Trace) Build() (*telemetry.Set, error) {
	if t.Out == "" && t.Spill == "" {
		return nil, nil
	}
	opt := telemetry.Options{
		RingDepth:   t.Depth,
		SampleEvery: t.Sample,
		WindowFrom:  clock.Cycle(t.From),
		WindowTo:    clock.Cycle(t.To),
		CaptureMax:  t.Cap,
		Capture:     t.Out != "",
	}
	if t.Spill != "" {
		f, err := os.Create(t.Spill)
		if err != nil {
			return nil, fmt.Errorf("cli: -trace-spill: %w", err)
		}
		t.spill = f
		opt.Spill = f
		if t.Out == "" {
			// Spill-only mode: stream everything straight to the binary
			// file by leaving the in-memory buffer at zero capacity.
			opt.Capture = true
			opt.CaptureMax = -1
		}
	}
	t.set = telemetry.NewSet(opt)
	return t.set, nil
}

// Set returns the telemetry Set built by Build (nil when disabled).
func (t *Trace) Set() *telemetry.Set { return t.set }

// Finish writes the requested trace artifacts and closes the spill
// file; it reports what was written on stderr. Call it once after the
// last simulation completes (a deferred call is fine: Finish on a
// disabled cluster is a no-op).
func (t *Trace) Finish() error {
	if t.set == nil {
		return nil
	}
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	if t.Out != "" {
		f, err := os.Create(t.Out)
		if err != nil {
			keep(fmt.Errorf("cli: -trace-out: %w", err))
		} else {
			if strings.HasSuffix(t.Out, ".json") {
				keep(telemetry.WriteTraceFromSet(f, t.set))
			} else {
				keep(telemetry.WriteBinary(f, t.set.Events()))
			}
			keep(f.Close())
			if first == nil {
				fmt.Fprintf(os.Stderr, "trace: wrote %d event(s) to %s\n", len(t.set.Events()), t.Out)
			}
		}
	}
	if t.spill != nil {
		keep(t.spill.Close())
		if n, err := t.set.Spilled(); err != nil {
			keep(fmt.Errorf("cli: trace spill: %w", err))
		} else if n > 0 {
			fmt.Fprintf(os.Stderr, "trace: spilled %d event(s) to %s\n", n, t.Spill)
		}
	}
	if dropped := t.set.C.TraceDropped.Load(); dropped > 0 {
		fmt.Fprintf(os.Stderr, "trace: dropped %d event(s) beyond -trace-cap (set -trace-spill to keep them)\n", dropped)
	}
	return first
}

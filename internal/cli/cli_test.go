package cli

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"eruca/internal/check"
	"eruca/internal/osmem"
	"eruca/internal/sim"
)

func TestExitCodeClassification(t *testing.T) {
	tests := []struct {
		name string
		err  error
		want int
	}{
		{"nil", nil, ExitOK},
		{"generic", errors.New("boom"), ExitError},
		{"protocol", &check.ProtocolError{Rule: "tRP", Detail: "x"}, ExitProtocol},
		{"wrapped protocol", fmt.Errorf("job: %w", &check.ProtocolError{Rule: "tRP"}), ExitProtocol},
		{"deadlock", &sim.DeadlockError{Kind: "no-progress"}, ExitDeadlock},
		{"oom", fmt.Errorf("translate: %w", osmem.ErrOOM), ExitOOM},
	}
	for _, tc := range tests {
		if got := ExitCode(tc.err); got != tc.want {
			t.Errorf("%s: ExitCode = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestBuildRejectsBadFlags(t *testing.T) {
	for _, r := range []Robust{
		{CheckMode: "bogus"},
		{CheckMode: "off", FaultSpec: "drop=7"},
	} {
		if _, _, _, err := r.Build(); err == nil {
			t.Errorf("Build(%+v) should fail", r)
		}
	}
	r := Robust{CheckMode: "log", WatchdogBudget: -1, LatencyCeiling: 100, FaultSpec: "n=2"}
	copts, wd, plan, err := r.Build()
	if err != nil {
		t.Fatal(err)
	}
	if copts == nil || copts.Mode != check.Log {
		t.Errorf("check options = %+v, want Log", copts)
	}
	if wd == nil || wd.ProgressBudget != 0 || wd.LatencyCeiling != 100 {
		t.Errorf("watchdog = %+v, want default budget + ceiling 100", wd)
	}
	if plan == nil || len(plan.Events()) != 2 {
		t.Errorf("plan = %v, want 2 events", plan)
	}
}

func TestDumpAndCrashDump(t *testing.T) {
	pe := &check.ProtocolError{Rule: "tFAW", Cycle: 9, Detail: "five ACTs", Source: "audit"}
	res := &sim.Result{Protocol: []*check.ProtocolError{pe}, FaultsInjected: 3}
	out := Dump(fmt.Errorf("wrap: %w", pe), res)
	for _, want := range []string{"tFAW", "logged violation 1/1", "faults injected: 3"} {
		if !strings.Contains(out, want) {
			t.Errorf("Dump missing %q:\n%s", want, out)
		}
	}

	path := filepath.Join(t.TempDir(), "crash.txt")
	WriteCrashDump(path, pe, nil)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "tFAW") {
		t.Errorf("crash dump missing payload:\n%s", b)
	}
	// Empty path and empty payload are both no-ops.
	WriteCrashDump("", pe, nil)
	unwritten := filepath.Join(t.TempDir(), "empty.txt")
	WriteCrashDump(unwritten, nil, nil)
	if _, err := os.Stat(unwritten); !os.IsNotExist(err) {
		t.Error("empty payload should not create a crash-dump file")
	}
}

package cli

import (
	"flag"
	"time"

	"eruca/internal/chaosnet"
)

// Chaos is the service-tier fault-injection flag cluster (erucad): the
// infrastructure twin of Robust's -faults. -chaos drives the network
// mesh (partitions, drops, delays, slowloris peers); -scrub sets the
// checkpoint-blob integrity sweep cadence.
type Chaos struct {
	Spec       string
	ScrubEvery time.Duration
}

// Register installs the flags on the default flag set.
func (c *Chaos) Register() {
	flag.StringVar(&c.Spec, "chaos", "",
		"service-tier fault-injection plan, e.g. seed=7;partition@2s+3s:n2|n1,c;delay=20ms±10ms;drop=0.05;slowbody=1kbps;stall=0.1 (empty = off, zero overhead)")
	flag.DurationVar(&c.ScrubEvery, "scrub", 0,
		"checkpoint-blob scrub cadence: verify every blob's sha256 and repair corrupt ones from the cluster replica (0 = scrub only on boot-time load)")
}

// Build parses -chaos into a mesh. An empty spec yields a nil mesh,
// which is zero-overhead by construction (wrappers return their
// arguments unchanged).
func (c *Chaos) Build() (*chaosnet.Mesh, error) {
	plan, err := chaosnet.Parse(c.Spec)
	if err != nil {
		return nil, err
	}
	return chaosnet.New(plan), nil
}

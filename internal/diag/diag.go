// Package diag holds the simulator's structured-error plumbing: typed
// invariant panics for programmer errors, and panic capture for the
// sweep workers that must survive a misbehaving configuration.
//
// The rule enforced across the tree is: conditions a caller can act on
// (bad user configuration, exhausted resources, protocol violations
// under a Log/Fail checker) are returned as errors; conditions that can
// only mean a bug in this repository (mis-sized static tables, impossible
// enum values) panic — but always through Invariantf, so that recovery
// sites can tell a programmer-error panic from a runtime fault and
// report it with its stack attached.
package diag

import (
	"fmt"
	"runtime/debug"
)

// InvariantError is the panic value raised by Invariantf: a programmer
// error, never a property of the simulated workload or configuration.
type InvariantError struct {
	Msg string
	// Err is the underlying error when the invariant wrapped one (via
	// Check); nil otherwise.
	Err error
}

// Error implements error.
func (e *InvariantError) Error() string { return "invariant violated: " + e.Msg }

// Unwrap exposes the wrapped error for errors.Is/As.
func (e *InvariantError) Unwrap() error { return e.Err }

// Invariantf panics with a typed *InvariantError. Use it for conditions
// that can only arise from a bug in this repository.
func Invariantf(format string, args ...any) {
	panic(&InvariantError{Msg: fmt.Sprintf(format, args...)})
}

// Invariant panics via Invariantf when cond is false.
func Invariant(cond bool, format string, args ...any) {
	if !cond {
		Invariantf(format, args...)
	}
}

// Check panics with a typed *InvariantError wrapping err when err is
// non-nil — the Must-constructor helper for static configurations whose
// parameters cannot legitimately fail.
func Check(err error, format string, args ...any) {
	if err != nil {
		panic(&InvariantError{Msg: fmt.Sprintf(format, args...) + ": " + err.Error(), Err: err})
	}
}

// PanicError wraps a recovered panic as an error, preserving the panic
// value and the goroutine stack at recovery time.
type PanicError struct {
	Value any
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v", e.Value)
}

// Unwrap exposes a wrapped error panic value (errors.Is/As pass through
// to the original error when a function panicked with one).
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// CapturePanic converts a recover() value into an error carrying the
// current stack. It returns nil for a nil recover value, so it can be
// called unconditionally:
//
//	defer func() { if e := diag.CapturePanic(recover()); e != nil { err = e } }()
func CapturePanic(r any) error {
	if r == nil {
		return nil
	}
	return &PanicError{Value: r, Stack: debug.Stack()}
}

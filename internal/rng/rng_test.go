package rng

import (
	"math/rand"
	"testing"
)

// The counting source must be value-identical to a plain
// rand.NewSource for every high-level method the simulator uses.
// Otherwise wrapping existing RNGs would silently change golden
// values across the whole repo.
func TestStreamIdenticalToPlainSource(t *testing.T) {
	ref := rand.New(rand.NewSource(42))
	got, _ := New(42)
	for i := 0; i < 10_000; i++ {
		switch i % 5 {
		case 0:
			if a, b := ref.Int63(), got.Int63(); a != b {
				t.Fatalf("Int63 diverged at %d: %d vs %d", i, a, b)
			}
		case 1:
			if a, b := ref.Intn(977), got.Intn(977); a != b {
				t.Fatalf("Intn diverged at %d: %d vs %d", i, a, b)
			}
		case 2:
			if a, b := ref.Float64(), got.Float64(); a != b {
				t.Fatalf("Float64 diverged at %d: %v vs %v", i, a, b)
			}
		case 3:
			if a, b := ref.ExpFloat64(), got.ExpFloat64(); a != b {
				t.Fatalf("ExpFloat64 diverged at %d: %v vs %v", i, a, b)
			}
		case 4:
			if a, b := ref.Int63n(1<<40), got.Int63n(1<<40); a != b {
				t.Fatalf("Int63n diverged at %d: %d vs %d", i, a, b)
			}
		}
	}
}

// Snapshot mid-stream, keep drawing on the original, then restore a
// second source from the snapshot: both must produce the same suffix.
func TestStateRestoreResumesStream(t *testing.T) {
	r1, s1 := New(7)
	for i := 0; i < 1234; i++ {
		r1.Float64()
		if i%3 == 0 {
			r1.Intn(100)
		}
	}
	seed, draws := s1.State()
	if draws == 0 {
		t.Fatal("expected draws > 0")
	}

	r2, s2 := New(999) // wrong seed on purpose; Restore must fix it
	s2.Restore(seed, draws)
	for i := 0; i < 5000; i++ {
		if a, b := r1.Int63(), r2.Int63(); a != b {
			t.Fatalf("restored stream diverged at %d: %d vs %d", i, a, b)
		}
	}
	if _, d2 := s2.State(); d2 != draws+5000 {
		t.Fatalf("draw counter off after restore: got %d want %d", d2, draws+5000)
	}
}

func TestSeedResetsCounter(t *testing.T) {
	r, s := New(3)
	r.Int63()
	r.Int63()
	if _, d := s.State(); d != 2 {
		t.Fatalf("draws = %d, want 2", d)
	}
	s.Seed(3)
	if _, d := s.State(); d != 0 {
		t.Fatalf("draws after Seed = %d, want 0", d)
	}
	ref := rand.New(rand.NewSource(3))
	if a, b := ref.Int63(), r.Int63(); a != b {
		t.Fatalf("re-seeded stream wrong: %d vs %d", a, b)
	}
}

// rand.Rand must NOT see us as a Source64, or its method derivations
// change and the draw counter stops being a faithful cursor.
func TestNotSource64(t *testing.T) {
	var src rand.Source = NewSource(1)
	if _, ok := src.(rand.Source64); ok {
		t.Fatal("rng.Source must not implement rand.Source64")
	}
}

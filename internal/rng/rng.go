// Package rng provides a deterministic, snapshot-friendly wrapper
// around math/rand.
//
// The standard library's rand.Rand does not expose its internal state,
// so a simulator that wants crash-safe checkpoints cannot serialize a
// plain *rand.Rand. Source sidesteps this by counting every Int63 draw
// made against a seeded rand.NewSource: the pair (seed, draws) is a
// complete, tiny description of the stream position, and restoring is
// just "re-seed and replay draws".
//
// Crucially, Source implements ONLY rand.Source (Int63 + Seed), not
// rand.Source64. rand.Rand detects Source64 and takes different code
// paths for Uint64/Int63n when it is available, so by withholding
// Uint64 we force rand.Rand to derive every method (Intn, Int63n,
// Float64, ExpFloat64, Perm, ...) from Int63 alone. That makes the
// draw count a faithful cursor: N Int63 draws in, the stream is in
// exactly the same state regardless of which high-level methods
// consumed them. It also means wrapping an existing
// rand.New(rand.NewSource(seed)) with rand.New(rng.NewSource(seed))
// changes no values: the underlying source is the same generator and
// rand.Rand already used the Int63-only paths for every method the
// simulator calls.
//
// Replay cost is ~ns per draw; simulator RNGs draw a few numbers per
// memory operation, so even multi-million-instruction checkpoints
// restore in milliseconds.
package rng

import "math/rand"

// Source is a counting rand.Source. It must be used from one
// goroutine at a time, like rand.Rand itself.
type Source struct {
	src   rand.Source
	seed  int64
	draws uint64
}

// NewSource returns a counting source seeded like rand.NewSource(seed).
func NewSource(seed int64) *Source {
	return &Source{src: rand.NewSource(seed), seed: seed}
}

// Int63 implements rand.Source.
func (s *Source) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

// Seed implements rand.Source, resetting the draw counter.
func (s *Source) Seed(seed int64) {
	s.src.Seed(seed)
	s.seed = seed
	s.draws = 0
}

// State reports the seed and the number of Int63 draws made since that
// seed was set. The pair fully determines the stream position.
func (s *Source) State() (seed int64, draws uint64) { return s.seed, s.draws }

// Restore rewinds the source to seed and fast-forwards it by replaying
// draws Int63 calls. After Restore, State() == (seed, draws) and the
// next Int63 result matches what the original source would have
// produced.
func (s *Source) Restore(seed int64, draws uint64) {
	s.Seed(seed)
	for i := uint64(0); i < draws; i++ {
		s.src.Int63()
	}
	s.draws = draws
}

// New returns a *rand.Rand backed by a fresh counting source, along
// with the source for later State/Restore calls. The stream is
// value-identical to rand.New(rand.NewSource(seed)) for every
// Int63-derived method.
func New(seed int64) (*rand.Rand, *Source) {
	src := NewSource(seed)
	return rand.New(src), src
}

package trace

import (
	"math"
	"testing"
)

// view decodes a synthetic PA: bank = bits[0:2], sub = bit 2, row = rest.
func view(pa uint64) (int, int, uint32) {
	return int(pa & 3), int(pa >> 2 & 1), uint32(pa >> 3)
}

func rec(ns float64, bank, sub int, row uint32) Record {
	return Record{NS: ns, PA: uint64(bank&3) | uint64(sub&1)<<2 | uint64(row)<<3}
}

const rowBits = 16

func TestNoOverlapNoConflict(t *testing.T) {
	// Two transactions far apart in time: no overlap at all.
	recs := []Record{rec(0, 0, 0, 0x10), rec(1e6, 0, 1, 0x11)}
	pts := AnalyzePlaneConflicts(recs, view, rowBits, 45, []int{2})
	if pts[0].Overlapping != 0 || pts[0].PlaneConflict != 0 {
		t.Errorf("far-apart transactions overlap: %+v", pts[0])
	}
}

func TestSamePlaneConflictDetected(t *testing.T) {
	// Same bank, different sub-banks, same top bits, different rows,
	// within tRC.
	recs := []Record{rec(0, 0, 0, 0x0100), rec(10, 0, 1, 0x0180)}
	pts := AnalyzePlaneConflicts(recs, view, rowBits, 45, []int{2, 1 << rowBits})
	if pts[0].PlaneConflict != 1.0 {
		t.Errorf("2 planes: conflict fraction = %v, want 1", pts[0].PlaneConflict)
	}
	// With one plane per row, the two distinct rows are in different
	// planes: no conflict.
	if pts[1].PlaneConflict != 0 {
		t.Errorf("max planes: conflict fraction = %v, want 0", pts[1].PlaneConflict)
	}
	if pts[1].NoPlaneConflict != 1.0 {
		t.Errorf("max planes: overlap without conflict = %v, want 1", pts[1].NoPlaneConflict)
	}
}

func TestSameSubBankNeverPlaneConflicts(t *testing.T) {
	recs := []Record{rec(0, 0, 0, 0x0100), rec(10, 0, 0, 0x0180)}
	pts := AnalyzePlaneConflicts(recs, view, rowBits, 45, []int{2})
	if pts[0].PlaneConflict != 0 {
		t.Errorf("same-sub-bank pair flagged: %+v", pts[0])
	}
	if pts[0].Overlapping != 1 {
		t.Errorf("same-bank pair not overlapping: %+v", pts[0])
	}
}

func TestDifferentBanksIndependent(t *testing.T) {
	recs := []Record{rec(0, 0, 0, 0x0100), rec(10, 1, 1, 0x0180)}
	pts := AnalyzePlaneConflicts(recs, view, rowBits, 45, []int{2})
	if pts[0].Overlapping != 0 {
		t.Errorf("cross-bank transactions overlapped: %+v", pts[0])
	}
}

// Conflict fraction is non-increasing in plane count (more latch sets
// can only remove conflicts).
func TestConflictMonotoneInPlanes(t *testing.T) {
	var recs []Record
	// A clustered pattern: alternating sub-banks, rows drawn from a
	// small region plus scattered MSB changes.
	for i := 0; i < 400; i++ {
		row := uint32(i%37) | uint32(i%5)<<13
		recs = append(recs, rec(float64(i*7), i%4, i%2, row))
	}
	counts := []int{2, 4, 8, 16, 64, 256, 1024, 1 << rowBits}
	pts := AnalyzePlaneConflicts(recs, view, rowBits, 45, counts)
	for i := 1; i < len(pts); i++ {
		if pts[i].PlaneConflict > pts[i-1].PlaneConflict+1e-12 {
			t.Errorf("conflicts rose from %v to %v at %d planes",
				pts[i-1].PlaneConflict, pts[i].PlaneConflict, pts[i].Planes)
		}
	}
	// Overlap fraction does not depend on plane count.
	for _, p := range pts[1:] {
		if p.Overlapping != pts[0].Overlapping {
			t.Errorf("overlap changed with planes: %+v", p)
		}
	}
}

// Identical rows on both sub-banks share the latch value: not a conflict.
func TestIdenticalRowNotAConflict(t *testing.T) {
	recs := []Record{rec(0, 0, 0, 0x0100), rec(10, 0, 1, 0x0100)}
	pts := AnalyzePlaneConflicts(recs, view, rowBits, 45, []int{2})
	if pts[0].PlaneConflict != 0 {
		t.Errorf("identical rows flagged: %+v", pts[0])
	}
}

func TestLocalityProfile(t *testing.T) {
	// All pairs share the top 8 bits, differ below.
	var recs []Record
	for i := 0; i < 64; i++ {
		row := uint32(0xAB00) | uint32(i*3%256)
		recs = append(recs, rec(float64(i), 0, i%2, row))
	}
	prof := LocalityProfile(recs, view, rowBits, 1e9)
	if math.Abs(prof[0]-1) > 1e-9 {
		t.Errorf("P(0 MSBs match) = %v, want 1", prof[0])
	}
	if prof[8] < 0.99 {
		t.Errorf("P(top 8 MSBs match) = %v, want ~1", prof[8])
	}
	if prof[rowBits] > 0.2 {
		t.Errorf("P(all bits match) = %v, want small", prof[rowBits])
	}
	for k := 1; k <= rowBits; k++ {
		if prof[k] > prof[k-1]+1e-12 {
			t.Errorf("profile not non-increasing at %d", k)
		}
	}
}

func TestLocalityProfileEmpty(t *testing.T) {
	prof := LocalityProfile(nil, view, rowBits, 45)
	for _, v := range prof {
		if v != 0 {
			t.Fatal("empty profile nonzero")
		}
	}
}

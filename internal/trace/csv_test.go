package trace

import (
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	in := []Record{
		{NS: 0, PA: 0x1000, Write: false},
		{NS: 12.5, PA: 0xDEADBEEF, Write: true},
		{NS: 100.125, PA: 42, Write: false},
	}
	var b strings.Builder
	if err := WriteCSV(&b, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadCSV(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip: %d records, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].PA != in[i].PA || out[i].Write != in[i].Write {
			t.Errorf("record %d: %+v != %+v", i, out[i], in[i])
		}
		if diff := out[i].NS - in[i].NS; diff > 0.001 || diff < -0.001 {
			t.Errorf("record %d timestamp drift %v", i, diff)
		}
	}
}

func TestReadCSVHeaderAndComments(t *testing.T) {
	src := "ns,pa,write\n# comment\n\n1.0,0x40,1\n2.0,128,0\n"
	recs, err := ReadCSV(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].PA != 0x40 || !recs[0].Write || recs[1].PA != 128 {
		t.Errorf("parsed %+v", recs)
	}
}

func TestReadCSVErrors(t *testing.T) {
	for _, bad := range []string{
		"1.0,0x40\n",
		"abc,0x40,1\n",
		"1.0,zz,1\n",
		"1.0,0x40,x\n",
	} {
		if _, err := ReadCSV(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

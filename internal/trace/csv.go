package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteCSV serializes records as "ns,pa,write" rows with a header, the
// format cmd/erucatrace dumps and external tools consume.
func WriteCSV(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "ns,pa,write"); err != nil {
		return err
	}
	for _, r := range recs {
		wr := 0
		if r.Write {
			wr = 1
		}
		if _, err := fmt.Fprintf(bw, "%.3f,%#x,%d\n", r.NS, r.PA, wr); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseError reports a malformed trace row: the 1-based line number,
// which field was bad, and the underlying cause. ReadCSV returns it for
// every row-level problem, so callers can distinguish "this file is not
// a trace" from I/O failures and point the user at the exact line.
type ParseError struct {
	Line  int    // 1-based line number in the input
	Field string // "row", "timestamp", "address", or "write flag"
	Err   error  // underlying cause
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("trace: line %d: bad %s: %v", e.Line, e.Field, e.Err)
}

func (e *ParseError) Unwrap() error { return e.Err }

// ReadCSV parses the WriteCSV format (the header row is optional,
// blank lines and #-comments are skipped, and CRLF line endings are
// accepted). Addresses accept decimal or 0x-prefixed hex. Malformed
// rows yield a *ParseError naming the line and field.
func ReadCSV(r io.Reader) ([]Record, error) {
	var recs []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if lineNo == 1 && strings.HasPrefix(line, "ns,") {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 3 {
			return nil, &ParseError{Line: lineNo, Field: "row",
				Err: fmt.Errorf("want 3 fields, got %d", len(parts))}
		}
		ns, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil {
			return nil, &ParseError{Line: lineNo, Field: "timestamp", Err: err}
		}
		pa, err := strconv.ParseUint(strings.TrimSpace(parts[1]), 0, 64)
		if err != nil {
			return nil, &ParseError{Line: lineNo, Field: "address", Err: err}
		}
		wr, err := strconv.ParseInt(strings.TrimSpace(parts[2]), 10, 8)
		if err != nil {
			return nil, &ParseError{Line: lineNo, Field: "write flag", Err: err}
		}
		recs = append(recs, Record{NS: ns, PA: pa, Write: wr != 0})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %v", err)
	}
	return recs, nil
}

package trace

import (
	"errors"
	"strings"
	"testing"
)

// TestCSVEmptyTrace: a zero-record trace round-trips to a header-only
// file and back to zero records, with no error on either side.
func TestCSVEmptyTrace(t *testing.T) {
	var b strings.Builder
	if err := WriteCSV(&b, nil); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != "ns,pa,write\n" {
		t.Errorf("empty trace serialized as %q", got)
	}
	recs, err := ReadCSV(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Errorf("empty trace parsed to %d records", len(recs))
	}
	// A completely empty reader is also a valid empty trace.
	recs, err = ReadCSV(strings.NewReader(""))
	if err != nil || len(recs) != 0 {
		t.Errorf("empty input: recs=%v err=%v", recs, err)
	}
}

// TestCSVCRLF: traces produced on Windows (CRLF line endings, possibly
// with a trailing newline missing) parse identically to LF traces.
func TestCSVCRLF(t *testing.T) {
	src := "ns,pa,write\r\n1.0,0x40,1\r\n2.5,128,0\r\n3.0,0x80,1"
	recs, err := ReadCSV(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("parsed %d records, want 3", len(recs))
	}
	if recs[0].PA != 0x40 || !recs[0].Write || recs[1].PA != 128 || recs[1].Write {
		t.Errorf("parsed %+v", recs)
	}
	if recs[2].NS != 3.0 || recs[2].PA != 0x80 {
		t.Errorf("last record (no trailing newline): %+v", recs[2])
	}
}

// TestCSVMalformedRowTyped: every malformed row yields a *ParseError
// naming the offending line and field — never a panic, never an
// untyped error.
func TestCSVMalformedRowTyped(t *testing.T) {
	cases := []struct {
		name, src string
		line      int
		field     string
	}{
		{"too few fields", "1.0,0x40\n", 1, "row"},
		{"too many fields", "1.0,0x40,1,extra\n", 1, "row"},
		{"bad timestamp", "ns,pa,write\nabc,0x40,1\n", 2, "timestamp"},
		{"bad address", "1.0,zz,1\n", 1, "address"},
		{"bad write flag", "1.0,0x40,maybe\n", 1, "write flag"},
		{"error after good rows", "1.0,0x40,1\n2.0,0x80,0\n3.0,,1\n", 3, "address"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadCSV(strings.NewReader(tc.src))
			if err == nil {
				t.Fatalf("accepted %q", tc.src)
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error %v (%T) is not a *ParseError", err, err)
			}
			if pe.Line != tc.line || pe.Field != tc.field {
				t.Errorf("ParseError line=%d field=%q, want line=%d field=%q",
					pe.Line, pe.Field, tc.line, tc.field)
			}
			if pe.Unwrap() == nil {
				t.Error("ParseError has no underlying cause")
			}
		})
	}
}

// Package trace captures and analyses memory-transaction traces. It
// implements the paper's Fig. 4 methodology: for every DRAM transaction,
// find transactions to the same bank within a tRC window and classify
// whether serving them on the paired sub-bank would cause a plane
// conflict, sweeping the plane count. It also computes the row-address
// locality profile behind the "region 1 / region 2" discussion
// (Sec. IV).
package trace

import "sort"

// Record is one captured memory transaction.
type Record struct {
	NS    float64 // issue time
	PA    uint64  // physical address
	Write bool
}

// BankView decodes a physical address the way the sub-banked DRAM under
// study would: a flattened bank identity (channel/rank/group/bank), the
// sub-bank, and the per-sub-bank row address.
type BankView func(pa uint64) (bankKey int, sub int, row uint32)

// ConflictPoint is one x-position of Fig. 4.
type ConflictPoint struct {
	Planes          int
	PlaneConflict   float64 // fraction of overlapping transactions conflicting
	NoPlaneConflict float64 // fraction overlapping but conflict-free
	Overlapping     float64 // fraction of transactions with any same-bank overlap
}

type event struct {
	ns  float64
	sub int
	row uint32
}

// AnalyzePlaneConflicts implements Fig. 4. rowBits is the per-sub-bank
// row width; tRCns is the overlap window; planeCounts are the swept
// x-values (powers of two). Plane IDs are the row-address MSBs, i.e.
// planes are contiguous row regions as in the paper's characterization.
func AnalyzePlaneConflicts(recs []Record, view BankView, rowBits int, tRCns float64, planeCounts []int) []ConflictPoint {
	byBank := make(map[int][]event)
	for _, r := range recs {
		bk, sub, row := view(r.PA)
		byBank[bk] = append(byBank[bk], event{ns: r.NS, sub: sub, row: row})
	}
	banks := make([]int, 0, len(byBank))
	for bk := range byBank {
		sort.Slice(byBank[bk], func(i, j int) bool { return byBank[bk][i].ns < byBank[bk][j].ns })
		banks = append(banks, bk)
	}
	sort.Ints(banks)

	total := len(recs)
	points := make([]ConflictPoint, 0, len(planeCounts))
	for _, planes := range planeCounts {
		shift := uint(rowBits - log2(planes))
		var overlap, conflict int
		for _, bk := range banks {
			evs := byBank[bk]
			lo := 0
			for i := range evs {
				for evs[i].ns-evs[lo].ns > tRCns {
					lo++
				}
				hasOverlap, hasConflict := false, false
				for j := lo; j < len(evs); j++ {
					if evs[j].ns-evs[i].ns > tRCns {
						break
					}
					if j == i {
						continue
					}
					hasOverlap = true
					// A conflict needs the paired sub-bank, the same
					// plane, and a different row (two rows competing for
					// one latch set).
					if evs[j].sub != evs[i].sub &&
						evs[j].row>>shift == evs[i].row>>shift &&
						evs[j].row != evs[i].row {
						hasConflict = true
						break
					}
				}
				if hasOverlap {
					overlap++
					if hasConflict {
						conflict++
					}
				}
			}
		}
		points = append(points, ConflictPoint{
			Planes:          planes,
			PlaneConflict:   frac(conflict, total),
			NoPlaneConflict: frac(overlap-conflict, total),
			Overlapping:     frac(overlap, total),
		})
	}
	return points
}

// LocalityProfile reports, for each row-address bit, the probability
// that two same-bank transactions within the window share that bit and
// all bits above it — the measurement behind the two locality regions of
// Fig. 4.
func LocalityProfile(recs []Record, view BankView, rowBits int, tRCns float64) []float64 {
	type ev struct {
		ns  float64
		row uint32
	}
	byBank := make(map[int][]ev)
	for _, r := range recs {
		bk, _, row := view(r.PA)
		byBank[bk] = append(byBank[bk], ev{r.NS, row})
	}
	matches := make([]int, rowBits+1)
	pairs := 0
	for _, evs := range byBank {
		sort.Slice(evs, func(i, j int) bool { return evs[i].ns < evs[j].ns })
		lo := 0
		for i := range evs {
			for evs[i].ns-evs[lo].ns > tRCns {
				lo++
			}
			for j := lo; j < i; j++ {
				pairs++
				x := evs[i].row ^ evs[j].row
				// Count how many MSBs match.
				msb := 0
				for b := rowBits - 1; b >= 0; b-- {
					if x>>uint(b)&1 != 0 {
						break
					}
					msb++
				}
				matches[msb]++
			}
		}
	}
	out := make([]float64, rowBits+1)
	if pairs == 0 {
		return out
	}
	// matches[m] counts pairs whose matching-MSB run is exactly m;
	// P(top k MSBs all match) sums matches[m] for m >= k.
	suffix := 0
	for k := rowBits; k >= 0; k-- {
		suffix += matches[k]
		out[k] = float64(suffix) / float64(pairs)
	}
	return out
}

func frac(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}

func log2(n int) int {
	b := 0
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

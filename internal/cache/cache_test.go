package cache

import (
	"testing"
	"testing/quick"
)

func small() *Hierarchy {
	return MustNew(Config{
		Cores:   2,
		L1Bytes: 1 << 10, L1Ways: 2, // 8 sets of 2
		LLCBytes: 4 << 10, LLCWays: 4,
		LineBytes: 64,
	})
}

func TestColdMissThenHit(t *testing.T) {
	h := small()
	if out := h.Access(0, 100, false); out.Level != Mem {
		t.Errorf("cold access level = %v", out.Level)
	}
	if out := h.Access(0, 100, false); out.Level != L1 {
		t.Errorf("second access level = %v", out.Level)
	}
}

func TestLLCHitAfterL1Eviction(t *testing.T) {
	h := small()
	h.Access(0, 0, false)
	// L1 has 8 sets; addresses 0, 8, 16 map to set 0 (2 ways).
	h.Access(0, 8, false)
	h.Access(0, 16, false) // evicts line 0 from L1; still in LLC
	if out := h.Access(0, 0, false); out.Level != LLC {
		t.Errorf("post-eviction access level = %v, want LLC", out.Level)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	h := small()
	// LLC: 4KiB/4w/64B = 16 sets, 4 ways. Same LLC set: addresses ≡ mod 16.
	h.Access(0, 0, true) // dirty in L1
	var wbs []uint64
	// Evict line 0 from L1 (set 0: 0,8,16 -> 2 ways) then storm the LLC set.
	h.Access(0, 8, false)
	h.Access(0, 16, false) // L1 victim 0 is dirty, absorbed by LLC
	for i := uint64(1); i <= 6; i++ {
		out := h.Access(0, i*16, false) // LLC set 0
		wbs = append(wbs, out.Writebacks...)
	}
	found := false
	for _, wb := range wbs {
		if wb == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("dirty line 0 never written back: %v", wbs)
	}
}

func TestWriteAllocate(t *testing.T) {
	h := small()
	out := h.Access(0, 42, true)
	if out.Level != Mem {
		t.Errorf("store miss level = %v, want Mem (write-allocate fetch)", out.Level)
	}
	if out := h.Access(0, 42, false); out.Level != L1 {
		t.Errorf("load after store = %v, want L1", out.Level)
	}
}

func TestPerCoreL1Private(t *testing.T) {
	h := small()
	h.Access(0, 7, false)
	if out := h.Access(1, 7, false); out.Level != LLC {
		t.Errorf("other core's access = %v, want LLC (shared below L1)", out.Level)
	}
}

func TestLRUOrder(t *testing.T) {
	h := small()
	// Fill L1 set 0 (2 ways): 0 then 8; touch 0; insert 16 -> victim is 8.
	h.Access(0, 0, false)
	h.Access(0, 8, false)
	h.Access(0, 0, false)
	h.Access(0, 16, false)
	if out := h.Access(0, 0, false); out.Level != L1 {
		t.Errorf("recently used line evicted (level %v)", out.Level)
	}
}

func TestStats(t *testing.T) {
	h := small()
	h.Access(0, 1, false)
	h.Access(0, 1, false)
	h.Access(0, 2, false)
	l1 := h.L1Stats(0)
	if l1.Hits != 1 || l1.Misses != 2 {
		t.Errorf("L1 stats = %+v", l1)
	}
	llc := h.LLCStats()
	if llc.Hits != 0 || llc.Misses != 2 {
		t.Errorf("LLC stats = %+v", llc)
	}
}

// Property: the same address never produces a writeback of itself, and
// repeated access to a working set smaller than L1 stays at L1 after
// warmup.
func TestSmallWorkingSetStaysL1(t *testing.T) {
	h := small()
	f := func(seed uint8) bool {
		base := uint64(seed) * 1024
		for pass := 0; pass < 2; pass++ {
			for i := uint64(0); i < 8; i++ { // 8 lines across 8 sets
				out := h.Access(1, base+i, false)
				if pass == 1 && out.Level != L1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestBadGeometryReturnsError(t *testing.T) {
	cases := []Config{
		{Cores: 1, L1Bytes: 3 << 10, L1Ways: 2, LLCBytes: 4 << 10, LLCWays: 4, LineBytes: 64},
		{Cores: 1, L1Bytes: 1 << 10, L1Ways: 2, LLCBytes: 3 << 10, LLCWays: 4, LineBytes: 64},
		{Cores: 1, L1Bytes: 1 << 10, L1Ways: 0, LLCBytes: 4 << 10, LLCWays: 4, LineBytes: 64},
		{Cores: 1, L1Bytes: 1 << 10, L1Ways: 2, LLCBytes: 4 << 10, LLCWays: 4, LineBytes: 0},
	}
	for i, cfg := range cases {
		if h, err := New(cfg); err == nil {
			t.Errorf("case %d: bad geometry %+v accepted (got %v)", i, cfg, h)
		}
	}

	// MustNew converts the error into a panic for static configs.
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic on bad geometry")
		}
	}()
	MustNew(cases[0])
}

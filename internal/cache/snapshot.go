package cache

import (
	"fmt"

	"eruca/internal/snapshot"
)

func (c *setAssoc) snapshot(e *snapshot.Encoder) {
	e.U64(c.tick)
	e.U64(c.hits)
	e.U64(c.misses)
	e.Int(len(c.sets))
	if len(c.sets) > 0 {
		e.Int(len(c.sets[0]))
	} else {
		e.Int(0)
	}
	for _, set := range c.sets {
		for i := range set {
			e.U64(set[i].tag)
			e.Bool(set[i].valid)
			e.Bool(set[i].dirty)
			e.U64(set[i].used)
		}
	}
}

func (c *setAssoc) restore(d *snapshot.Decoder) error {
	c.tick = d.U64()
	c.hits = d.U64()
	c.misses = d.U64()
	nsets := d.Int()
	ways := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if nsets != len(c.sets) || (nsets > 0 && ways != len(c.sets[0])) {
		return fmt.Errorf("cache: snapshot geometry %dx%d does not match configured %dx%d",
			nsets, ways, len(c.sets), len(c.sets[0]))
	}
	for _, set := range c.sets {
		for i := range set {
			set[i].tag = d.U64()
			set[i].valid = d.Bool()
			set[i].dirty = d.Bool()
			set[i].used = d.U64()
		}
	}
	return d.Err()
}

// Snapshot serializes the full hierarchy state: every line's tag,
// valid/dirty bits and LRU timestamp, plus per-level hit/miss counters.
func (h *Hierarchy) Snapshot(e *snapshot.Encoder) {
	e.Int(len(h.l1))
	for _, l1 := range h.l1 {
		l1.snapshot(e)
	}
	h.llc.snapshot(e)
}

// Restore rebuilds the hierarchy state from a Snapshot stream into an
// identically configured hierarchy.
func (h *Hierarchy) Restore(d *snapshot.Decoder) error {
	n := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if n != len(h.l1) {
		return fmt.Errorf("cache: snapshot has %d L1s, hierarchy has %d", n, len(h.l1))
	}
	for _, l1 := range h.l1 {
		if err := l1.restore(d); err != nil {
			return err
		}
	}
	return h.llc.restore(d)
}

package cache

import (
	"math/rand"
	"testing"
)

func TestInvalidate(t *testing.T) {
	h := small()
	h.Access(0, 7, true) // dirty in L1
	if dirty, present := h.l1[0].invalidate(7); !present || !dirty {
		t.Errorf("invalidate(7) = dirty %v present %v", dirty, present)
	}
	if _, present := h.l1[0].invalidate(7); present {
		t.Error("double invalidate reported present")
	}
	// After invalidation the line re-misses in L1.
	if out := h.Access(0, 7, false); out.Level == L1 {
		t.Error("invalidated line hit L1")
	}
}

// Two cores thrash one LLC set: the hierarchy stays consistent and
// writebacks carry only lines that were written.
func TestCrossCoreThrash(t *testing.T) {
	h := small()
	written := map[uint64]bool{}
	r := rand.New(rand.NewSource(3))
	var wbs []uint64
	for i := 0; i < 5000; i++ {
		core := i & 1
		line := uint64(r.Intn(64)) * 16 // all in LLC set 0
		write := r.Intn(3) == 0
		if write {
			written[line] = true
		}
		out := h.Access(core, line, write)
		wbs = append(wbs, out.Writebacks...)
	}
	for _, wb := range wbs {
		if !written[wb] {
			t.Fatalf("writeback of never-written line %#x", wb)
		}
	}
}

// LLC stats hits+misses equals the number of L1 misses.
func TestLevelAccounting(t *testing.T) {
	h := small()
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 3000; i++ {
		h.Access(0, uint64(r.Intn(4096)), r.Intn(4) == 0)
	}
	l1 := h.L1Stats(0)
	llc := h.LLCStats()
	if llc.Hits+llc.Misses != l1.Misses {
		t.Errorf("LLC lookups %d != L1 misses %d", llc.Hits+llc.Misses, l1.Misses)
	}
}

func TestLevelString(t *testing.T) {
	if L1.String() != "L1" || LLC.String() != "LLC" || Mem.String() != "MEM" {
		t.Error("level strings")
	}
}

func TestLineBytes(t *testing.T) {
	if small().LineBytes() != 64 {
		t.Error("line bytes")
	}
}

// Package cache models the processor cache hierarchy of Tab. III:
// per-core L1D (32KiB, 8-way) above a shared LLC (1MiB per core,
// 16-way), both LRU, write-back and write-allocate. The hierarchy is
// trace-driven with magic fill: state updates at access time and the
// caller applies hit latencies; misses and dirty evictions surface as
// memory reads and writes.
package cache

import "fmt"

// Level reports where an access was served.
type Level int

const (
	// L1 hit.
	L1 Level = iota
	// LLC hit (L1 miss).
	LLC
	// Mem: missed the whole hierarchy; a memory fetch is required.
	Mem
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case L1:
		return "L1"
	case LLC:
		return "LLC"
	}
	return "MEM"
}

// Outcome summarizes one access: where it hit and any dirty lines pushed
// out to memory.
type Outcome struct {
	Level Level
	// Writebacks lists line addresses evicted dirty to memory.
	Writebacks []uint64
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	used  uint64 // LRU timestamp
}

type setAssoc struct {
	sets    [][]line
	setMask uint64
	tick    uint64

	hits, misses uint64
}

func newSetAssoc(bytes, ways, lineBytes int) (*setAssoc, error) {
	if ways <= 0 || lineBytes <= 0 {
		return nil, fmt.Errorf("cache: non-positive geometry (%d bytes, %d ways, %d-byte lines)", bytes, ways, lineBytes)
	}
	nsets := bytes / (ways * lineBytes)
	if nsets == 0 || nsets&(nsets-1) != 0 {
		return nil, fmt.Errorf("cache: set count %d (from %d bytes, %d ways, %d-byte lines) must be a positive power of two",
			nsets, bytes, ways, lineBytes)
	}
	c := &setAssoc{setMask: uint64(nsets - 1)}
	c.sets = make([][]line, nsets)
	store := make([]line, nsets*ways)
	for i := range c.sets {
		c.sets[i], store = store[:ways], store[ways:]
	}
	return c, nil
}

// lookup probes for the line; on hit it refreshes LRU and optionally
// marks dirty.
func (c *setAssoc) lookup(addr uint64, markDirty bool) bool {
	c.tick++
	set := c.sets[addr&c.setMask]
	for i := range set {
		if set[i].valid && set[i].tag == addr {
			set[i].used = c.tick
			if markDirty {
				set[i].dirty = true
			}
			c.hits++
			return true
		}
	}
	c.misses++
	return false
}

// fill inserts the line, evicting LRU; it returns the victim line
// address and whether it was dirty.
func (c *setAssoc) fill(addr uint64, dirty bool) (victim uint64, victimDirty, evicted bool) {
	c.tick++
	set := c.sets[addr&c.setMask]
	vi := 0
	for i := range set {
		if !set[i].valid {
			vi = i
			evicted = false
			goto place
		}
		if set[i].used < set[vi].used {
			vi = i
		}
	}
	victim, victimDirty, evicted = set[vi].tag, set[vi].dirty, true
place:
	set[vi] = line{tag: addr, valid: true, dirty: dirty, used: c.tick}
	return victim, victimDirty, evicted
}

// absorb probes for the line without touching hit/miss statistics and
// marks it dirty when present — the path a dirty upper-level victim
// takes on its way down.
func (c *setAssoc) absorb(addr uint64) bool {
	c.tick++
	set := c.sets[addr&c.setMask]
	for i := range set {
		if set[i].valid && set[i].tag == addr {
			set[i].used = c.tick
			set[i].dirty = true
			return true
		}
	}
	return false
}

// invalidate drops the line if present, reporting whether it was dirty.
func (c *setAssoc) invalidate(addr uint64) (wasDirty, wasPresent bool) {
	set := c.sets[addr&c.setMask]
	for i := range set {
		if set[i].valid && set[i].tag == addr {
			set[i].valid = false
			return set[i].dirty, true
		}
	}
	return false, false
}

// Stats reports hit/miss counts of one level.
type Stats struct{ Hits, Misses uint64 }

// Hierarchy is the full cache system for all cores.
type Hierarchy struct {
	l1        []*setAssoc
	llc       *setAssoc
	lineBytes int
}

// Config sizes the hierarchy.
type Config struct {
	Cores           int
	L1Bytes, L1Ways int
	LLCBytes        int // total shared capacity
	LLCWays         int
	LineBytes       int
}

// New builds the hierarchy, validating each level's geometry.
func New(cfg Config) (*Hierarchy, error) {
	llc, err := newSetAssoc(cfg.LLCBytes, cfg.LLCWays, cfg.LineBytes)
	if err != nil {
		return nil, fmt.Errorf("LLC: %w", err)
	}
	h := &Hierarchy{llc: llc, lineBytes: cfg.LineBytes}
	for i := 0; i < cfg.Cores; i++ {
		l1, err := newSetAssoc(cfg.L1Bytes, cfg.L1Ways, cfg.LineBytes)
		if err != nil {
			return nil, fmt.Errorf("L1[%d]: %w", i, err)
		}
		h.l1 = append(h.l1, l1)
	}
	return h, nil
}

// MustNew is New for statically sized configurations; it panics on a
// bad geometry.
func MustNew(cfg Config) *Hierarchy {
	h, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return h
}

// Access performs one load or store by a core at a physical line address
// (the address divided by the line size). The hierarchy is
// non-inclusive: L1 victims write back into the LLC, LLC victims go to
// memory.
func (h *Hierarchy) Access(core int, lineAddr uint64, write bool) Outcome {
	l1 := h.l1[core]
	if l1.lookup(lineAddr, write) {
		return Outcome{Level: L1}
	}

	var out Outcome
	llcHit := h.llc.lookup(lineAddr, false)
	if llcHit {
		out.Level = LLC
	} else {
		out.Level = Mem
		// Fill LLC; a dirty victim goes to memory.
		if v, dirty, evicted := h.llc.fill(lineAddr, false); evicted && dirty {
			out.Writebacks = append(out.Writebacks, v)
		}
	}

	// Fill L1 (write-allocate: stores install the line dirty). A dirty
	// L1 victim folds into the LLC when present there, otherwise it goes
	// to memory.
	if v, dirty, evicted := l1.fill(lineAddr, write); evicted && dirty && !h.llc.absorb(v) {
		out.Writebacks = append(out.Writebacks, v)
	}
	return out
}

// LineBytes reports the configured line size.
func (h *Hierarchy) LineBytes() int { return h.lineBytes }

// L1Stats reports one core's L1 counters.
func (h *Hierarchy) L1Stats(core int) Stats {
	return Stats{Hits: h.l1[core].hits, Misses: h.l1[core].misses}
}

// LLCStats reports the shared LLC counters.
func (h *Hierarchy) LLCStats() Stats {
	return Stats{Hits: h.llc.hits, Misses: h.llc.misses}
}

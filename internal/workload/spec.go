package workload

import "fmt"

// Profiles mirrors the SPEC CPU2006 subset of Tab. III. The parameters
// are synthetic but shaped after each benchmark's published memory
// behaviour: mcf and omnetpp chase pointers over large heaps, lbm and
// bwaves stream with heavy writes, gemsFDTD and cactusADM walk large
// strided grids, milc/leslie3d/astar sit in the medium-intensity class.
var profiles = map[string]Profile{
	"mcf": {
		Name: "mcf", Class: High, Footprint: 1536 << 20,
		Streams: 4, StrideBytes: 8, BurstLen: 12, ChaseFrac: 0.40, NearFrac: 0.12, WriteFrac: 0.22,
		MeanGap: 8, ReuseFrac: 0.30, RestartEvery: 4096,
	},
	"lbm": {
		Name: "lbm", Class: High, Footprint: 832 << 20,
		Streams: 16, StrideBytes: 8, BurstLen: 128, ChaseFrac: 0.02, NearFrac: 0.04, WriteFrac: 0.45,
		MeanGap: 5, ReuseFrac: 0.10, RestartEvery: 1 << 18,
	},
	"gemsFDTD": {
		Name: "gemsFDTD", Class: High, Footprint: 1024 << 20,
		Streams: 12, StrideBytes: 24, BurstLen: 64, ChaseFrac: 0.05, NearFrac: 0.06, WriteFrac: 0.30,
		MeanGap: 9, ReuseFrac: 0.15, RestartEvery: 1 << 16,
	},
	"omnetpp": {
		Name: "omnetpp", Class: High, Footprint: 384 << 20,
		Streams: 4, StrideBytes: 8, BurstLen: 12, ChaseFrac: 0.30, NearFrac: 0.12, WriteFrac: 0.30,
		MeanGap: 9, ReuseFrac: 0.35, RestartEvery: 4096,
	},
	"soplex": {
		Name: "soplex", Class: High, Footprint: 640 << 20,
		Streams: 8, StrideBytes: 16, BurstLen: 32, ChaseFrac: 0.15, NearFrac: 0.08, WriteFrac: 0.22,
		MeanGap: 10, ReuseFrac: 0.30, RestartEvery: 1 << 15,
	},
	"milc": {
		Name: "milc", Class: Medium, Footprint: 704 << 20,
		Streams: 8, StrideBytes: 16, BurstLen: 64, ChaseFrac: 0.04, NearFrac: 0.05, WriteFrac: 0.30,
		MeanGap: 14, ReuseFrac: 0.35, RestartEvery: 1 << 15,
	},
	"bwaves": {
		Name: "bwaves", Class: Medium, Footprint: 896 << 20,
		Streams: 6, StrideBytes: 8, BurstLen: 128, ChaseFrac: 0.01, NearFrac: 0.04, WriteFrac: 0.26,
		MeanGap: 14, ReuseFrac: 0.35, RestartEvery: 1 << 18,
	},
	"leslie3d": {
		Name: "leslie3d", Class: Medium, Footprint: 512 << 20,
		Streams: 10, StrideBytes: 8, BurstLen: 96, ChaseFrac: 0.02, NearFrac: 0.05, WriteFrac: 0.30,
		MeanGap: 13, ReuseFrac: 0.40, RestartEvery: 1 << 17,
	},
	"astar": {
		Name: "astar", Class: Medium, Footprint: 320 << 20,
		Streams: 4, StrideBytes: 8, BurstLen: 12, ChaseFrac: 0.12, NearFrac: 0.10, WriteFrac: 0.25,
		MeanGap: 15, ReuseFrac: 0.45, RestartEvery: 8192,
	},
	"cactusADM": {
		Name: "cactusADM", Class: Medium, Footprint: 640 << 20,
		Streams: 6, StrideBytes: 16, BurstLen: 64, ChaseFrac: 0.03, NearFrac: 0.05, WriteFrac: 0.30,
		MeanGap: 14, ReuseFrac: 0.35, RestartEvery: 1 << 15,
	},
}

// ByName returns the profile of a SPEC2006 benchmark or a "micro-*"
// pattern generator.
func ByName(name string) (Profile, error) {
	if p, ok := profiles[name]; ok {
		return p, nil
	}
	return microByName(name)
}

// Names lists the modeled benchmarks (stable order).
func Names() []string {
	return []string{"mcf", "lbm", "gemsFDTD", "omnetpp", "soplex", "milc", "bwaves", "leslie3d", "astar", "cactusADM"}
}

// Mix is one multiprogrammed workload of Tab. III.
type Mix struct {
	Name  string
	Bench []string
}

// Mixes returns the nine 4-program mixes of Tab. III.
func Mixes() []Mix {
	return []Mix{
		{"mix0", []string{"mcf", "lbm", "omnetpp", "gemsFDTD"}},
		{"mix1", []string{"mcf", "lbm", "gemsFDTD", "soplex"}},
		{"mix2", []string{"lbm", "omnetpp", "gemsFDTD", "soplex"}},
		{"mix3", []string{"omnetpp", "gemsFDTD", "soplex", "milc"}},
		{"mix4", []string{"gemsFDTD", "soplex", "milc", "bwaves"}},
		{"mix5", []string{"soplex", "milc", "bwaves", "leslie3d"}},
		{"mix6", []string{"milc", "bwaves", "astar", "leslie3d"}},
		{"mix7", []string{"milc", "bwaves", "astar", "cactusADM"}},
		{"mix8", []string{"bwaves", "leslie3d", "astar", "cactusADM"}},
	}
}

// MixByName returns one of the Tab. III mixes.
func MixByName(name string) (Mix, error) {
	for _, m := range Mixes() {
		if m.Name == name {
			return m, nil
		}
	}
	return Mix{}, fmt.Errorf("workload: unknown mix %q", name)
}

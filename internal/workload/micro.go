package workload

import "fmt"

// Micro profiles are controlled single-pattern generators for targeted
// studies and tests — pure versions of the building blocks the SPEC
// profiles mix. They are addressable through ByName alongside the SPEC
// names, prefixed "micro-".
var microProfiles = map[string]Profile{
	// micro-stream: one long unit-stride read/write stream, the pattern
	// that maximizes row-buffer and bank-group pressure.
	"micro-stream": {
		Name: "micro-stream", Class: High, Footprint: 512 << 20,
		Streams: 1, StrideBytes: 8, BurstLen: 1 << 20, ChaseFrac: 0, WriteFrac: 0.3,
		MeanGap: 3, ReuseFrac: 0,
	},
	// micro-random: uniformly random cache-line touches, the pattern
	// that maximizes bank conflicts and defeats every locality
	// mechanism.
	"micro-random": {
		Name: "micro-random", Class: High, Footprint: 1024 << 20,
		Streams: 0, StrideBytes: 0, ChaseFrac: 1, WriteFrac: 0.25,
		MeanGap: 6, ReuseFrac: 0,
	},
	// micro-chase: dependent-load-like behaviour with modest reuse.
	"micro-chase": {
		Name: "micro-chase", Class: High, Footprint: 768 << 20,
		Streams: 0, StrideBytes: 0, ChaseFrac: 0.7, WriteFrac: 0.1,
		MeanGap: 8, ReuseFrac: 0.3,
	},
	// micro-hotrow: a tiny footprint that lives in a handful of DRAM
	// rows — near-100% row-buffer hits once warm.
	"micro-hotrow": {
		Name: "micro-hotrow", Class: Medium, Footprint: 1 << 20,
		Streams: 2, StrideBytes: 8, BurstLen: 512, ChaseFrac: 0.05, WriteFrac: 0.3,
		MeanGap: 6, ReuseFrac: 0.2,
	},
	// micro-grouphot: 1KiB-strided streams that camp on one bank group
	// each (the stride preserves the bank-group select bits), creating
	// the group imbalance DDB is designed to absorb (Sec. V: "DDB
	// contributes ... when a few bank groups are hot").
	"micro-grouphot": {
		Name: "micro-grouphot", Class: High, Footprint: 512 << 20,
		Streams: 4, StrideBytes: 1024, BurstLen: 64, ChaseFrac: 0.02, WriteFrac: 0.25,
		MeanGap: 4, ReuseFrac: 0.05, RestartEvery: 1 << 14,
	},
	// micro-neighbor: pure region-2 behaviour — every access lands near
	// a recent one, stressing the EWLR mechanism specifically.
	"micro-neighbor": {
		Name: "micro-neighbor", Class: High, Footprint: 512 << 20,
		Streams: 1, StrideBytes: 8, BurstLen: 64, ChaseFrac: 0.1, NearFrac: 0.5,
		WriteFrac: 0.25, MeanGap: 6, ReuseFrac: 0.1,
	},
}

// MicroNames lists the microbenchmark generators (stable order).
func MicroNames() []string {
	return []string{"micro-stream", "micro-random", "micro-chase", "micro-hotrow", "micro-neighbor", "micro-grouphot"}
}

func microByName(name string) (Profile, error) {
	if p, ok := microProfiles[name]; ok {
		return p, nil
	}
	return Profile{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Package workload provides seeded synthetic memory-access generators
// standing in for the SPEC CPU2006 applications of the paper's
// evaluation (Tab. III). Each generator reproduces the properties the
// ERUCA mechanisms are sensitive to:
//
//   - footprint and access pattern (streams, strides, pointer chasing)
//     calibrated so the post-cache miss rate lands in the paper's H
//     (high) or M (medium) MPKI class;
//   - spatial locality in the low address bits (region 2 of Fig. 4);
//   - temporal reuse, so caches filter realistically;
//   - a read/write mix.
//
// Row-MSB locality (region 1 of Fig. 4) is not synthesized here: it
// emerges from the osmem transparent-huge-page allocator, exactly as in
// the paper's captured physical traces.
package workload

import (
	"math/rand"

	"eruca/internal/rng"
)

// Op is one memory instruction and the non-memory work preceding it.
type Op struct {
	// Gap is the number of non-memory instructions retired before this
	// operation.
	Gap int
	// Write marks a store.
	Write bool
	// VA is the virtual address accessed.
	VA uint64
}

// Generator produces an unbounded instruction stream.
type Generator interface {
	Name() string
	Next() Op
}

// Class is the paper's memory-intensity label.
type Class byte

const (
	// High intensity (MPKI > 10 in SPEC2006 terms).
	High Class = 'H'
	// Medium intensity.
	Medium Class = 'M'
)

// Profile parameterizes one synthetic benchmark.
type Profile struct {
	Name      string
	Class     Class
	Footprint uint64 // bytes of virtual address space touched

	Streams      int     // concurrent sequential/strided cursors
	StrideBytes  uint64  // step per stream advance
	BurstLen     int     // consecutive ops on one stream before switching (inner-loop locality)
	ChaseFrac    float64 // fraction of ops that jump to a random address
	NearFrac     float64 // fraction of ops landing near a recent address (same-page spatial locality)
	WriteFrac    float64
	MeanGap      float64 // mean non-memory instructions between ops
	ReuseFrac    float64 // fraction of ops replaying a recent address
	RestartEvery int     // stream steps between random restarts (0 = never)
}

// New builds a deterministic generator from the profile and seed.
func New(p Profile, seed int64) Generator {
	g := &generator{p: p}
	g.rng, g.src = rng.New(seed)
	g.cursors = make([]uint64, p.Streams)
	for i := range g.cursors {
		g.cursors[i] = g.randAddr()
	}
	g.recent = make([]uint64, 64)
	for i := range g.recent {
		g.recent[i] = g.randAddr()
	}
	return g
}

type generator struct {
	p       Profile
	rng     *rand.Rand
	src     *rng.Source // counting source behind rng, for checkpoint/restore
	cursors []uint64
	steps   int
	next    int // current stream index
	burst   int // remaining ops in the current stream burst
	recent  []uint64
	ri      int
}

func (g *generator) Name() string { return g.p.Name }

func (g *generator) randAddr() uint64 {
	return uint64(g.rng.Int63n(int64(g.p.Footprint))) &^ 7
}

func (g *generator) Next() Op {
	op := Op{
		Gap:   g.gap(),
		Write: g.rng.Float64() < g.p.WriteFrac,
	}
	r := g.rng.Float64()
	switch {
	case r < g.p.ReuseFrac:
		op.VA = g.recent[g.rng.Intn(len(g.recent))]
	case r < g.p.ReuseFrac+g.p.NearFrac:
		// Spatial neighbour of a recent access: a different row in the
		// same megabyte-scale region (heap clustering, adjacent arrays
		// in one huge page). This is the region-2 row-address locality
		// of Fig. 4 — nearby rows that can land in the paired sub-bank.
		base := g.recent[g.rng.Intn(len(g.recent))]
		off := g.rng.Int63n(1<<21) - 1<<20
		va := int64(base) + off
		if va < 0 {
			va += 1 << 21
		}
		if uint64(va) >= g.p.Footprint {
			va -= 1 << 21
		}
		op.VA = uint64(va) &^ 7
	case r < g.p.ReuseFrac+g.p.NearFrac+g.p.ChaseFrac || g.p.Streams == 0:
		op.VA = g.randAddr()
	default:
		// Streams advance in bursts: an inner loop works one array
		// region for BurstLen accesses before the code moves to the
		// next stream. Bursts are what produce back-to-back same-row
		// DRAM accesses (row-buffer locality).
		if g.burst == 0 {
			g.next = (g.next + 1) % g.p.Streams
			g.burst = g.p.BurstLen
			if g.burst == 0 {
				g.burst = 1
			}
		}
		g.burst--
		i := g.next
		g.cursors[i] += g.p.StrideBytes
		if g.cursors[i] >= g.p.Footprint {
			g.cursors[i] -= g.p.Footprint
		}
		g.steps++
		if g.p.RestartEvery > 0 && g.steps%g.p.RestartEvery == 0 {
			g.cursors[i] = g.randAddr()
		}
		op.VA = g.cursors[i]
	}
	g.recent[g.ri] = op.VA
	g.ri = (g.ri + 1) % len(g.recent)
	return op
}

// gap draws a geometric-ish non-memory run length with the profile mean.
func (g *generator) gap() int {
	if g.p.MeanGap <= 0 {
		return 0
	}
	// Exponential with the given mean, truncated.
	v := int(g.rng.ExpFloat64() * g.p.MeanGap)
	if v > 200 {
		v = 200
	}
	return v
}

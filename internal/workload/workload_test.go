package workload

import (
	"testing"
)

func TestProfilesComplete(t *testing.T) {
	for _, n := range Names() {
		p, err := ByName(n)
		if err != nil {
			t.Fatalf("ByName(%q): %v", n, err)
		}
		if p.Footprint == 0 || p.MeanGap <= 0 {
			t.Errorf("%s: degenerate profile %+v", n, p)
		}
		if p.Class != High && p.Class != Medium {
			t.Errorf("%s: class %c", n, p.Class)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestMixesMatchTable3(t *testing.T) {
	mixes := Mixes()
	if len(mixes) != 9 {
		t.Fatalf("got %d mixes, want 9", len(mixes))
	}
	for _, m := range mixes {
		if len(m.Bench) != 4 {
			t.Errorf("%s: %d programs, want 4", m.Name, len(m.Bench))
		}
		for _, b := range m.Bench {
			if _, err := ByName(b); err != nil {
				t.Errorf("%s: %v", m.Name, err)
			}
		}
	}
	m0, err := MixByName("mix0")
	if err != nil || m0.Bench[0] != "mcf" {
		t.Errorf("mix0 = %+v, %v", m0, err)
	}
	if _, err := MixByName("mix99"); err == nil {
		t.Error("unknown mix accepted")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	p, _ := ByName("mcf")
	a, b := New(p, 42), New(p, 42)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("divergence at op %d with equal seeds", i)
		}
	}
	c := New(p, 43)
	same := 0
	a2 := New(p, 42)
	for i := 0; i < 1000; i++ {
		if a2.Next() == c.Next() {
			same++
		}
	}
	if same > 100 {
		t.Errorf("different seeds produced %d/1000 identical ops", same)
	}
}

func TestAddressesWithinFootprint(t *testing.T) {
	for _, n := range Names() {
		p, _ := ByName(n)
		g := New(p, 7)
		for i := 0; i < 5000; i++ {
			op := g.Next()
			if op.VA >= p.Footprint {
				t.Fatalf("%s: VA %#x beyond footprint %#x", n, op.VA, p.Footprint)
			}
			if op.Gap < 0 {
				t.Fatalf("%s: negative gap", n)
			}
		}
	}
}

// The generator's raw memory-instruction rate must be consistent with
// the profile's MeanGap, and write fraction near WriteFrac.
func TestRatesMatchProfile(t *testing.T) {
	for _, n := range Names() {
		p, _ := ByName(n)
		g := New(p, 7)
		var gaps, writes, nops int
		for i := 0; i < 20000; i++ {
			op := g.Next()
			gaps += op.Gap
			if op.Write {
				writes++
			}
			nops++
		}
		meanGap := float64(gaps) / float64(nops)
		if meanGap < p.MeanGap*0.8 || meanGap > p.MeanGap*1.2 {
			t.Errorf("%s: mean gap %.2f, profile %.2f", n, meanGap, p.MeanGap)
		}
		wf := float64(writes) / float64(nops)
		if wf < p.WriteFrac-0.05 || wf > p.WriteFrac+0.05 {
			t.Errorf("%s: write frac %.2f, profile %.2f", n, wf, p.WriteFrac)
		}
	}
}

// Streaming benchmarks show strong sequentiality; chasing ones do not.
func TestPatternShape(t *testing.T) {
	// An op is "sequential" when it sits exactly one stride after some
	// recent op (streams are visited round-robin, so compare against a
	// window rather than the immediate predecessor).
	seq := func(name string) float64 {
		p, _ := ByName(name)
		g := New(p, 7)
		recent := make(map[uint64]bool)
		var window []uint64
		sequential := 0
		const n = 10000
		for i := 0; i < n; i++ {
			op := g.Next()
			if recent[op.VA-p.StrideBytes] {
				sequential++
			}
			window = append(window, op.VA)
			recent[op.VA] = true
			if len(window) > 64 {
				delete(recent, window[0])
				window = window[1:]
			}
		}
		return float64(sequential) / n
	}
	lbm, mcf := seq("lbm"), seq("mcf")
	if lbm < 0.5 {
		t.Errorf("lbm sequentiality %.2f, want streaming-like (> 0.5)", lbm)
	}
	if lbm < mcf+0.2 {
		t.Errorf("lbm (%.2f) not clearly more sequential than mcf (%.2f)", lbm, mcf)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package workload

import "eruca/internal/snapshot"

// Stateful is the optional extension a Generator implements to support
// crash-safe checkpoints. The built-in synthetic generators implement
// it; a hypothetical trace-replay generator would serialize its file
// cursor instead.
type Stateful interface {
	Generator
	Snapshot(e *snapshot.Encoder)
	Restore(d *snapshot.Decoder) error
}

// Snapshot serializes the generator's stream position: PRNG cursor,
// stream cursors, burst/step counters and the recent-address window.
// The Profile is rebuilt from the benchmark name on restore.
func (g *generator) Snapshot(e *snapshot.Encoder) {
	seed, draws := g.src.State()
	e.I64(seed)
	e.U64(draws)
	e.Int(len(g.cursors))
	for _, c := range g.cursors {
		e.U64(c)
	}
	e.Int(g.steps)
	e.Int(g.next)
	e.Int(g.burst)
	e.Int(len(g.recent))
	for _, r := range g.recent {
		e.U64(r)
	}
	e.Int(g.ri)
}

// Restore rewinds the generator to a Snapshot position. The generator
// must have been built from the same profile and seed.
func (g *generator) Restore(d *snapshot.Decoder) error {
	seed := d.I64()
	draws := d.U64()
	nc := d.Count(8)
	if d.Err() != nil {
		return d.Err()
	}
	g.src.Restore(seed, draws)
	g.cursors = g.cursors[:0]
	for i := 0; i < nc; i++ {
		g.cursors = append(g.cursors, d.U64())
	}
	g.steps = d.Int()
	g.next = d.Int()
	g.burst = d.Int()
	nr := d.Count(8)
	if d.Err() != nil {
		return d.Err()
	}
	g.recent = g.recent[:0]
	for i := 0; i < nr; i++ {
		g.recent = append(g.recent, d.U64())
	}
	g.ri = d.Int()
	return d.Err()
}

package workload

import "testing"

func TestMicroProfilesResolvable(t *testing.T) {
	for _, n := range MicroNames() {
		p, err := ByName(n)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		g := New(p, 3)
		for i := 0; i < 1000; i++ {
			op := g.Next()
			if op.VA >= p.Footprint {
				t.Fatalf("%s: VA out of footprint", n)
			}
		}
	}
}

// micro-stream is strictly sequential within its (single) burst run.
func TestMicroStreamSequential(t *testing.T) {
	p, _ := ByName("micro-stream")
	g := New(p, 3)
	var prev uint64
	seq := 0
	const n = 2000
	for i := 0; i < n; i++ {
		op := g.Next()
		if i > 0 && op.VA == prev+p.StrideBytes {
			seq++
		}
		prev = op.VA
	}
	if float64(seq)/n < 0.99 {
		t.Errorf("micro-stream sequential fraction %.2f", float64(seq)/n)
	}
}

// micro-random never repeats short-range patterns: the fraction of
// strided successors is negligible.
func TestMicroRandomIsRandom(t *testing.T) {
	p, _ := ByName("micro-random")
	g := New(p, 3)
	var prev uint64
	near := 0
	const n = 5000
	for i := 0; i < n; i++ {
		op := g.Next()
		d := int64(op.VA) - int64(prev)
		if d < 0 {
			d = -d
		}
		if i > 0 && d < 4096 {
			near++
		}
		prev = op.VA
	}
	if near > n/100 {
		t.Errorf("micro-random near-successor count %d", near)
	}
}

// micro-hotrow stays within its tiny footprint, giving near-total cache
// or row locality.
func TestMicroHotrowFootprint(t *testing.T) {
	p, _ := ByName("micro-hotrow")
	if p.Footprint > 2<<20 {
		t.Fatalf("hotrow footprint %d too large", p.Footprint)
	}
}

// micro-neighbor emits a large fraction of accesses within 1MiB of a
// recent one.
func TestMicroNeighborLocality(t *testing.T) {
	p, _ := ByName("micro-neighbor")
	g := New(p, 3)
	recent := make([]uint64, 0, 64)
	nearCount, n := 0, 5000
	for i := 0; i < n; i++ {
		op := g.Next()
		for _, r := range recent {
			d := int64(op.VA) - int64(r)
			if d < 0 {
				d = -d
			}
			if d > 0 && d <= 1<<20 {
				nearCount++
				break
			}
		}
		recent = append(recent, op.VA)
		if len(recent) > 64 {
			recent = recent[1:]
		}
	}
	if float64(nearCount)/float64(n) < 0.3 {
		t.Errorf("micro-neighbor near fraction %.2f", float64(nearCount)/float64(n))
	}
}

// Package errfs is the injectable filesystem under the daemon's
// durability layer (WAL journal + checkpoint-blob store). Production
// code runs on OS, a trivial passthrough to the os package; chaos tests
// swap in a Faulty wrapper that injects the disk failures real machines
// produce — ENOSPC mid-append, a Sync that fails, a write torn halfway,
// bit rot appearing after a "successful" rename — and assert the daemon
// degrades instead of corrupting state or crashing.
//
// The interface is deliberately the small slice of os the durability
// layer actually uses, plus SyncDir, which os does not offer directly
// but crash-safe rename protocols require: an fsync of the parent
// directory is what makes a completed rename durable.
package errfs

import (
	"io"
	"io/fs"
	"os"
)

// File is the open-file surface the WAL needs.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	io.Seeker
	Sync() error
	Truncate(size int64) error
	Stat() (fs.FileInfo, error)
}

// FS is the filesystem surface under the durability layer.
type FS interface {
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	ReadFile(name string) ([]byte, error)
	WriteFile(name string, data []byte, perm fs.FileMode) error
	Rename(oldpath, newpath string) error
	Remove(name string) error
	MkdirAll(path string, perm fs.FileMode) error
	ReadDir(name string) ([]fs.DirEntry, error)
	// SyncDir fsyncs a directory, making previously completed renames
	// and creations in it durable.
	SyncDir(name string) error
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) ReadFile(name string) ([]byte, error)             { return os.ReadFile(name) }
func (osFS) WriteFile(name string, b []byte, p fs.FileMode) error { return os.WriteFile(name, b, p) }
func (osFS) Rename(oldpath, newpath string) error             { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                         { return os.Remove(name) }
func (osFS) MkdirAll(path string, perm fs.FileMode) error     { return os.MkdirAll(path, perm) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error)       { return os.ReadDir(name) }

func (osFS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

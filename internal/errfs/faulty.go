package errfs

import (
	"errors"
	"fmt"
	"io/fs"
	"sync"
)

// Op identifies one interceptable filesystem operation.
type Op string

const (
	OpOpen      Op = "open"
	OpRead      Op = "read"
	OpWrite     Op = "write"
	OpSync      Op = "sync"
	OpClose     Op = "close"
	OpTruncate  Op = "truncate"
	OpReadFile  Op = "readfile"
	OpWriteFile Op = "writefile"
	OpRename    Op = "rename"
	OpRemove    Op = "remove"
	OpMkdirAll  Op = "mkdirall"
	OpReadDir   Op = "readdir"
	OpSyncDir   Op = "syncdir"
)

// Sentinels a Hook returns to request a structured fault instead of a
// plain failure.
var (
	// ErrShortWrite on OpWrite/OpWriteFile makes half the data land
	// before the operation fails — a torn write, the on-disk state a
	// power cut mid-write leaves behind.
	ErrShortWrite = errors.New("errfs: short write")
	// ErrBitRot on OpRename lets the rename "succeed" and then flips
	// one bit of the destination file — silent media corruption that a
	// checksum, not an error code, has to catch.
	ErrBitRot = errors.New("errfs: bit rot after rename")
)

// Hook inspects one operation before it reaches the base filesystem.
// nil return lets it through; any other error fails the operation with
// that error, except the sentinels above, which trigger their
// structured fault. Hooks run with the Faulty mutex held, so they may
// not call back into the same Faulty.
type Hook func(op Op, path string) error

// Faulty wraps a base FS (default OS) with a fault-injection hook and
// per-op counters.
type Faulty struct {
	base FS

	mu   sync.Mutex
	hook Hook
	ops  map[Op]int
}

// New builds a Faulty over base (nil = the real OS filesystem).
func New(base FS) *Faulty {
	if base == nil {
		base = OS
	}
	return &Faulty{base: base, ops: make(map[Op]int)}
}

// SetHook installs (or, with nil, removes) the fault hook.
func (f *Faulty) SetHook(h Hook) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.hook = h
}

// Count reports how many times op has been attempted.
func (f *Faulty) Count(op Op) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops[op]
}

// check counts the op and consults the hook.
func (f *Faulty) check(op Op, path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops[op]++
	if f.hook == nil {
		return nil
	}
	return f.hook(op, path)
}

func (f *Faulty) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	if err := f.check(OpOpen, name); err != nil {
		return nil, err
	}
	file, err := f.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultyFile{f: file, fs: f, name: name}, nil
}

func (f *Faulty) ReadFile(name string) ([]byte, error) {
	if err := f.check(OpReadFile, name); err != nil {
		return nil, err
	}
	return f.base.ReadFile(name)
}

func (f *Faulty) WriteFile(name string, data []byte, perm fs.FileMode) error {
	switch err := f.check(OpWriteFile, name); {
	case errors.Is(err, ErrShortWrite):
		_ = f.base.WriteFile(name, data[:len(data)/2], perm)
		return fmt.Errorf("errfs: torn write of %s: %w", name, ErrShortWrite)
	case err != nil:
		return err
	}
	return f.base.WriteFile(name, data, perm)
}

func (f *Faulty) Rename(oldpath, newpath string) error {
	switch err := f.check(OpRename, oldpath); {
	case errors.Is(err, ErrBitRot):
		if rerr := f.base.Rename(oldpath, newpath); rerr != nil {
			return rerr
		}
		f.rot(newpath)
		return nil
	case err != nil:
		return err
	}
	return f.base.Rename(oldpath, newpath)
}

// rot flips one bit in the middle of path — after the rename reported
// success, like real media corruption.
func (f *Faulty) rot(path string) {
	b, err := f.base.ReadFile(path)
	if err != nil || len(b) == 0 {
		return
	}
	b[len(b)/2] ^= 0x01
	_ = f.base.WriteFile(path, b, 0o644)
}

func (f *Faulty) Remove(name string) error {
	if err := f.check(OpRemove, name); err != nil {
		return err
	}
	return f.base.Remove(name)
}

func (f *Faulty) MkdirAll(path string, perm fs.FileMode) error {
	if err := f.check(OpMkdirAll, path); err != nil {
		return err
	}
	return f.base.MkdirAll(path, perm)
}

func (f *Faulty) ReadDir(name string) ([]fs.DirEntry, error) {
	if err := f.check(OpReadDir, name); err != nil {
		return nil, err
	}
	return f.base.ReadDir(name)
}

func (f *Faulty) SyncDir(name string) error {
	if err := f.check(OpSyncDir, name); err != nil {
		return err
	}
	return f.base.SyncDir(name)
}

// faultyFile threads the hook through the open-file operations.
type faultyFile struct {
	f    File
	fs   *Faulty
	name string
}

func (ff *faultyFile) Read(p []byte) (int, error) {
	if err := ff.fs.check(OpRead, ff.name); err != nil {
		return 0, err
	}
	return ff.f.Read(p)
}

func (ff *faultyFile) Write(p []byte) (int, error) {
	switch err := ff.fs.check(OpWrite, ff.name); {
	case errors.Is(err, ErrShortWrite):
		n, _ := ff.f.Write(p[:len(p)/2])
		return n, fmt.Errorf("errfs: torn write of %s: %w", ff.name, ErrShortWrite)
	case err != nil:
		return 0, err
	}
	return ff.f.Write(p)
}

func (ff *faultyFile) Sync() error {
	if err := ff.fs.check(OpSync, ff.name); err != nil {
		return err
	}
	return ff.f.Sync()
}

func (ff *faultyFile) Close() error {
	if err := ff.fs.check(OpClose, ff.name); err != nil {
		return err
	}
	return ff.f.Close()
}

func (ff *faultyFile) Truncate(size int64) error {
	if err := ff.fs.check(OpTruncate, ff.name); err != nil {
		return err
	}
	return ff.f.Truncate(size)
}

func (ff *faultyFile) Seek(offset int64, whence int) (int64, error) {
	return ff.f.Seek(offset, whence)
}

func (ff *faultyFile) Stat() (fs.FileInfo, error) { return ff.f.Stat() }

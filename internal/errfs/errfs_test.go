package errfs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// TestOSRoundTrip: the passthrough implementation behaves like the os
// package, including the crash-safety extras (SyncDir).
func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.txt")
	if err := OS.WriteFile(path, []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := OS.ReadFile(path)
	if err != nil || string(b) != "hello" {
		t.Fatalf("ReadFile = %q, %v", b, err)
	}
	f, err := OS.OpenFile(path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte(" world")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if st, err := f.Stat(); err != nil || st.Size() != 11 {
		t.Fatalf("Stat = %v, %v", st, err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	next := filepath.Join(dir, "g.txt")
	if err := OS.Rename(path, next); err != nil {
		t.Fatal(err)
	}
	if err := OS.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	ents, err := OS.ReadDir(dir)
	if err != nil || len(ents) != 1 || ents[0].Name() != "g.txt" {
		t.Fatalf("ReadDir = %v, %v", ents, err)
	}
	if err := OS.MkdirAll(filepath.Join(dir, "a/b"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := OS.Remove(next); err != nil {
		t.Fatal(err)
	}
	if _, err := OS.ReadFile(next); err == nil {
		t.Fatal("removed file still readable")
	}
}

// TestFaultyENOSPCAfterN: fail every write once the disk "fills" — the
// canonical ENOSPC-mid-append schedule the WAL tests use.
func TestFaultyENOSPCAfterN(t *testing.T) {
	dir := t.TempDir()
	ffs := New(nil)
	writes := 0
	ffs.SetHook(func(op Op, path string) error {
		if op != OpWrite {
			return nil
		}
		writes++
		if writes > 2 {
			return syscall.ENOSPC
		}
		return nil
	})
	f, err := ffs.OpenFile(filepath.Join(dir, "wal"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := f.Write([]byte("rec\n")); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if _, err := f.Write([]byte("rec\n")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("third write err = %v, want ENOSPC", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if got := ffs.Count(OpWrite); got != 3 {
		t.Errorf("Count(OpWrite) = %d, want 3", got)
	}
	b, err := os.ReadFile(filepath.Join(dir, "wal"))
	if err != nil || string(b) != "rec\nrec\n" {
		t.Fatalf("surviving bytes = %q, %v", b, err)
	}
}

// TestFaultyFailedSync: Sync errors surface without corrupting
// previously written data.
func TestFaultyFailedSync(t *testing.T) {
	dir := t.TempDir()
	ffs := New(nil)
	boom := errors.New("device lost")
	ffs.SetHook(func(op Op, path string) error {
		if op == OpSync {
			return boom
		}
		return nil
	})
	f, err := ffs.OpenFile(filepath.Join(dir, "wal"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("rec\n")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, boom) {
		t.Fatalf("Sync err = %v, want injected", err)
	}
	f.Close()
	if err := ffs.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
}

// TestFaultyShortWrite: the ErrShortWrite sentinel tears the write —
// half the bytes land, the caller sees a wrapped error.
func TestFaultyShortWrite(t *testing.T) {
	dir := t.TempDir()
	ffs := New(nil)
	armed := true
	ffs.SetHook(func(op Op, path string) error {
		if armed && (op == OpWrite || op == OpWriteFile) {
			armed = false
			return ErrShortWrite
		}
		return nil
	})

	f, err := ffs.OpenFile(filepath.Join(dir, "wal"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("0123456789"))
	if !errors.Is(err, ErrShortWrite) {
		t.Fatalf("Write err = %v, want ErrShortWrite", err)
	}
	if n != 5 {
		t.Errorf("torn write reported %d bytes, want 5", n)
	}
	f.Close()
	b, _ := os.ReadFile(filepath.Join(dir, "wal"))
	if string(b) != "01234" {
		t.Errorf("on-disk tail = %q, want first half", b)
	}

	armed = true
	err = ffs.WriteFile(filepath.Join(dir, "blob"), []byte("abcdef"), 0o644)
	if !errors.Is(err, ErrShortWrite) {
		t.Fatalf("WriteFile err = %v, want ErrShortWrite", err)
	}
	b, _ = os.ReadFile(filepath.Join(dir, "blob"))
	if string(b) != "abc" {
		t.Errorf("torn WriteFile left %q, want %q", b, "abc")
	}
}

// TestFaultyBitRot: rename reports success but the destination payload
// silently differs by one bit — only a checksum can notice.
func TestFaultyBitRot(t *testing.T) {
	dir := t.TempDir()
	ffs := New(nil)
	ffs.SetHook(func(op Op, path string) error {
		if op == OpRename {
			return ErrBitRot
		}
		return nil
	})
	tmp, final := filepath.Join(dir, "b.tmp"), filepath.Join(dir, "b.ckpt")
	orig := []byte("checkpoint payload bytes")
	if err := ffs.WriteFile(tmp, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ffs.Rename(tmp, final); err != nil {
		t.Fatalf("bit-rot rename must report success, got %v", err)
	}
	got, err := os.ReadFile(final)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("length changed: %d != %d", len(got), len(orig))
	}
	diff := 0
	for i := range got {
		if got[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("%d bytes differ after bit rot, want exactly 1", diff)
	}
	if _, err := os.Stat(tmp); !errors.Is(err, os.ErrNotExist) {
		t.Error("tmp file survived the rename")
	}
}

// TestFaultyPlainErrors: non-sentinel hook errors fail the op cleanly
// across the FS surface.
func TestFaultyPlainErrors(t *testing.T) {
	dir := t.TempDir()
	ffs := New(nil)
	boom := errors.New("io error")
	deny := map[Op]bool{}
	ffs.SetHook(func(op Op, path string) error {
		if deny[op] {
			return boom
		}
		return nil
	})

	path := filepath.Join(dir, "f")
	if err := ffs.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	deny[OpReadFile] = true
	if _, err := ffs.ReadFile(path); !errors.Is(err, boom) {
		t.Error("ReadFile not denied")
	}
	deny[OpOpen] = true
	if _, err := ffs.OpenFile(path, os.O_RDONLY, 0); !errors.Is(err, boom) {
		t.Error("OpenFile not denied")
	}
	deny[OpRename] = true
	if err := ffs.Rename(path, path+"2"); !errors.Is(err, boom) {
		t.Error("Rename not denied")
	}
	deny[OpRemove] = true
	if err := ffs.Remove(path); !errors.Is(err, boom) {
		t.Error("Remove not denied")
	}
	deny[OpMkdirAll] = true
	if err := ffs.MkdirAll(filepath.Join(dir, "sub"), 0o755); !errors.Is(err, boom) {
		t.Error("MkdirAll not denied")
	}
	deny[OpReadDir] = true
	if _, err := ffs.ReadDir(dir); !errors.Is(err, boom) {
		t.Error("ReadDir not denied")
	}
	deny[OpSyncDir] = true
	if err := ffs.SyncDir(dir); !errors.Is(err, boom) {
		t.Error("SyncDir not denied")
	}

	// File-level read/close/truncate denial.
	for k := range deny {
		delete(deny, k)
	}
	f, err := ffs.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	deny[OpRead] = true
	if _, err := io.ReadAll(f); !errors.Is(err, boom) {
		t.Error("Read not denied")
	}
	deny[OpTruncate] = true
	if err := f.Truncate(0); !errors.Is(err, boom) {
		t.Error("Truncate not denied")
	}
	deny[OpClose] = true
	if err := f.Close(); !errors.Is(err, boom) {
		t.Error("Close not denied")
	}
}

// Package cpu models the out-of-order cores of Tab. III at the level of
// detail the memory study needs (the role Sniper plays in the paper):
// a trace-driven front end with fetch/issue width 8, a 192-entry ROB
// whose head blocks on incomplete loads, a 32-entry LSQ bounding
// memory-level parallelism, and posted stores. Non-memory instructions
// retire at full width; all timing pressure comes from the memory
// system behind the MemSystem interface.
package cpu

// Source feeds the core instructions: a run of `gap` non-memory
// instructions followed by one memory operation.
type Source interface {
	Next() (gap int, write bool, va uint64)
}

// MemSystem services the core's memory instructions (caches + DRAM).
type MemSystem interface {
	// Access issues one memory instruction for a core at a virtual
	// address. It returns:
	//   accept  - false when resources (queues) are exhausted; the core
	//             must stall and retry;
	//   pending - completion will be signalled through done;
	//   doneAt  - completion CPU cycle when pending is false.
	// done must not be retained past its single invocation.
	Access(core int, va uint64, write bool, done func()) (accept, pending bool, doneAt int64)
}

// read is one in-flight load occupying a ROB position. Records are
// recycled through the core's free list together with their pre-bound
// completion closures, so steady-state execution does not allocate per
// load.
type read struct {
	pos     int64 // instruction index in program order
	ready   bool  // completion signalled (memory) or timestamp known
	readyAt int64 // completion cycle when ready by timestamp

	// complete is the pre-bound completion callback handed to
	// MemSystem.Access; allocated once per pooled record.
	complete func()
}

// Core is one simulated core. Create with New; not safe for concurrent
// use.
type Core struct {
	id    int
	width int
	rob   int64
	lsq   int

	src Source
	mem MemSystem

	fetched int64
	retired int64

	// reads holds in-flight loads in program order as a sliding window:
	// reads[readHead:] are live, the prefix has retired and is compacted
	// away periodically. The head read blocks retirement.
	reads    []*read
	readHead int
	free     []*read // recycled read records
	inflight int     // LSQ occupancy: loads awaiting data

	gap     int // remaining non-memory instructions before pendingOp
	hasOp   bool
	opWrite bool
	opVA    uint64

	// Target is the instruction count after which FinishedAt is latched.
	Target     int64
	FinishedAt int64 // CPU cycle when Target retired (0 until then)
	// Warmup marks the retirement count at which measurement starts;
	// WarmupAt records the cycle it was reached. IPC covers
	// [WarmupAt, FinishedAt].
	Warmup   int64
	WarmupAt int64

	// Counters.
	MemOps  uint64
	Loads   uint64
	Stores  uint64
	Stalled uint64 // cycles with zero fetch progress
}

// New builds a core.
func New(id, width, rob, lsq int, target int64, src Source, mem MemSystem) *Core {
	return &Core{id: id, width: width, rob: int64(rob), lsq: lsq, src: src, mem: mem, Target: target}
}

// Done reports whether the core has retired its target.
func (c *Core) Done() bool { return c.FinishedAt > 0 }

// Retired reports retired instructions.
func (c *Core) Retired() int64 { return c.retired }

// Warmed reports whether the core has passed its warmup point.
func (c *Core) Warmed() bool { return c.Warmup == 0 || c.WarmupAt > 0 }

// IPC reports retired instructions per cycle over the measured window
// (warmup to target), 0 before the target is reached.
func (c *Core) IPC() float64 {
	if c.FinishedAt <= 0 {
		return 0
	}
	return float64(c.Target-c.Warmup) / float64(c.FinishedAt-c.WarmupAt)
}

// Progress returns a monotonically-increasing stamp of architectural
// progress. An unchanged stamp across a window means the core neither
// fetched nor retired anything during it.
func (c *Core) Progress() int64 { return c.fetched + c.retired }

// neverCPU marks "no self-driven progress possible".
const neverCPU = int64(1) << 62

// NextEventCycle reports a lower bound on the next CPU cycle (strictly
// after now) at which this core could make progress without an external
// memory-system event: the head read's already-known completion time,
// now+1 when retirement or non-memory fetch work is available, or a far
// future when the core is entirely blocked on the memory system (LSQ
// full, queue backpressure, or a pending head load). The run
// loop uses it, together with the memory-side bounds, to fast-forward
// provably-idle windows.
func (c *Core) NextEventCycle(now int64) int64 {
	bound := neverCPU
	if c.retired < c.fetched {
		if c.readHead < len(c.reads) && c.reads[c.readHead].pos == c.retired {
			if r := c.reads[c.readHead]; r.ready {
				t := r.readyAt
				if t <= now {
					t = now + 1
				}
				if t < bound {
					bound = t
				}
			}
			// else: the head load awaits a memory completion, which is
			// covered by the controller / event bounds.
		} else {
			return now + 1 // non-memory retirement available
		}
	}
	if c.fetched-c.retired < c.rob {
		if !c.hasOp || c.gap > 0 {
			return now + 1 // non-memory fetch work available
		}
		// The pending memory op is blocked on LSQ space or queue
		// acceptance — both resolve only through memory-system events.
	}
	return bound
}

// FastForward accounts for skipped quiescent CPU cycles: the core was
// provably unable to fetch during the window, so each skipped cycle
// would have counted as a stall in a per-cycle run.
func (c *Core) FastForward(cpuCycles int64) { c.Stalled += uint64(cpuCycles) }

// getRead takes a read record from the free list (or allocates one with
// its completion closure) and stamps it for the given ROB position.
func (c *Core) getRead(pos int64) *read {
	var r *read
	if n := len(c.free); n > 0 {
		r = c.free[n-1]
		c.free = c.free[:n-1]
		r.ready, r.readyAt = false, 0
	} else {
		r = &read{}
		r.complete = func() {
			r.ready = true
			c.inflight--
		}
	}
	r.pos = pos
	return r
}

// popRead retires the head read, recycling its record and compacting the
// sliding window once the dead prefix dominates.
func (c *Core) popRead() {
	c.free = append(c.free, c.reads[c.readHead])
	c.readHead++
	if c.readHead == len(c.reads) {
		c.reads = c.reads[:0]
		c.readHead = 0
	} else if c.readHead > 64 && c.readHead*2 >= len(c.reads) {
		n := copy(c.reads, c.reads[c.readHead:])
		c.reads = c.reads[:n]
		c.readHead = 0
	}
}

// Tick advances the core by one CPU cycle.
func (c *Core) Tick(now int64) {
	c.retire(now)
	c.fetch(now)
}

func (c *Core) retire(now int64) {
	budget := c.width
	for budget > 0 && c.retired < c.fetched {
		if c.readHead < len(c.reads) && c.reads[c.readHead].pos == c.retired {
			r := c.reads[c.readHead]
			if !r.ready || now < r.readyAt {
				break
			}
			c.popRead()
		}
		c.retired++
		budget--
	}
	if c.WarmupAt == 0 && c.Warmup > 0 && c.retired >= c.Warmup {
		c.WarmupAt = now
	}
	if c.FinishedAt == 0 && c.retired >= c.Target {
		c.FinishedAt = now
		if c.FinishedAt == 0 {
			c.FinishedAt = 1
		}
	}
}

func (c *Core) fetch(now int64) {
	budget := c.width
	progress := false
	for budget > 0 && c.fetched-c.retired < c.rob {
		if !c.hasOp && c.gap == 0 {
			g, w, va := c.src.Next()
			c.gap, c.opWrite, c.opVA = g, w, va
			c.hasOp = true
		}
		if c.gap > 0 {
			n := c.gap
			if n > budget {
				n = budget
			}
			if space := c.rob - (c.fetched - c.retired); int64(n) > space {
				n = int(space)
			}
			c.fetched += int64(n)
			c.gap -= n
			budget -= n
			progress = progress || n > 0
			continue
		}
		// Memory operation at instruction index c.fetched.
		if !c.opWrite && c.inflight >= c.lsq {
			break // LSQ full
		}
		pos := c.fetched
		if c.opWrite {
			accept, _, _ := c.mem.Access(c.id, c.opVA, true, nil)
			if !accept {
				break
			}
			c.Stores++
		} else {
			r := c.getRead(pos)
			accept, pending, doneAt := c.mem.Access(c.id, c.opVA, false, r.complete)
			if !accept {
				c.free = append(c.free, r)
				break
			}
			if !pending {
				r.ready = true
				r.readyAt = doneAt
			} else {
				c.inflight++
			}
			c.reads = append(c.reads, r)
			c.Loads++
		}
		c.MemOps++
		c.fetched++
		budget--
		progress = true
		c.hasOp = false
	}
	if !progress {
		c.Stalled++
	}
}

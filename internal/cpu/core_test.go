package cpu

import "testing"

// scriptSource replays a fixed op list, then repeats the last op.
type scriptSource struct {
	ops [][3]int64 // gap, write(0/1), va
	i   int
}

func (s *scriptSource) Next() (int, bool, uint64) {
	op := s.ops[s.i]
	if s.i < len(s.ops)-1 {
		s.i++
	}
	return int(op[0]), op[1] == 1, uint64(op[2])
}

// fakeMem services everything with a fixed latency; optionally it holds
// reads for manual release or rejects accesses.
type fakeMem struct {
	lat      int64
	now      *int64
	pendings []func()
	hold     bool
	reject   bool
	accesses int
}

func (m *fakeMem) Access(core int, va uint64, write bool, done func()) (bool, bool, int64) {
	if m.reject {
		return false, false, 0
	}
	m.accesses++
	if write {
		return true, false, 0
	}
	if m.hold {
		m.pendings = append(m.pendings, done)
		return true, true, 0
	}
	return true, false, *m.now + m.lat
}

func (m *fakeMem) release() {
	for _, d := range m.pendings {
		d()
	}
	m.pendings = nil
}

func run(c *Core, mem *fakeMem, cycles int64) {
	for now := int64(1); now <= cycles; now++ {
		*mem.now = now
		c.Tick(now)
		if c.Done() {
			return
		}
	}
}

func newNow() *int64 { v := int64(0); return &v }

// Pure non-memory work retires at full width.
func TestFullWidthRetirement(t *testing.T) {
	now := newNow()
	mem := &fakeMem{lat: 1, now: now}
	src := &scriptSource{ops: [][3]int64{{1 << 30, 0, 0}}}
	c := New(0, 8, 192, 32, 8000, src, mem)
	run(c, mem, 10000)
	if !c.Done() {
		t.Fatal("core did not finish")
	}
	// Perfect IPC is width; pipeline fill costs a little.
	if ipc := c.IPC(); ipc < 7.5 || ipc > 8.0 {
		t.Errorf("IPC = %v, want ~8", ipc)
	}
}

// A blocked load at the ROB head stalls retirement until completion.
func TestLoadBlocksRetirement(t *testing.T) {
	now := newNow()
	mem := &fakeMem{now: now, hold: true}
	src := &scriptSource{ops: [][3]int64{{0, 0, 64}, {1 << 30, 0, 0}}}
	c := New(0, 8, 192, 32, 100, src, mem)
	run(c, mem, 50)
	if c.Retired() != 0 {
		t.Errorf("retired %d with load outstanding at head", c.Retired())
	}
	mem.release()
	run(c, mem, 200)
	if !c.Done() {
		t.Error("core did not finish after load completion")
	}
}

// The LSQ bounds outstanding loads.
func TestLSQBound(t *testing.T) {
	now := newNow()
	mem := &fakeMem{now: now, hold: true}
	src := &scriptSource{ops: [][3]int64{{0, 0, 64}}} // endless loads
	c := New(0, 8, 192, 4, 1000, src, mem)
	run(c, mem, 100)
	if len(mem.pendings) != 4 {
		t.Errorf("outstanding loads = %d, want LSQ = 4", len(mem.pendings))
	}
}

// The ROB bounds in-flight instructions even without memory stalls.
func TestROBBound(t *testing.T) {
	now := newNow()
	mem := &fakeMem{now: now, hold: true}
	// One load, then pure gap: the load blocks retirement, the gap can
	// only fill the remaining ROB.
	src := &scriptSource{ops: [][3]int64{{0, 0, 64}, {1 << 30, 0, 0}}}
	c := New(0, 8, 16, 4, 1000, src, mem)
	run(c, mem, 100)
	if got := c.fetched - c.retired; got != 16 {
		t.Errorf("ROB occupancy = %d, want 16", got)
	}
}

// Stores are posted: they never block retirement.
func TestStoresPosted(t *testing.T) {
	now := newNow()
	mem := &fakeMem{now: now}
	src := &scriptSource{ops: [][3]int64{{0, 1, 64}}}
	c := New(0, 8, 192, 32, 4000, src, mem)
	run(c, mem, 4000)
	if !c.Done() {
		t.Fatal("store-only stream did not finish")
	}
	if c.Stores == 0 {
		t.Error("no stores counted")
	}
}

// A rejecting memory system stalls fetch but the core recovers when it
// accepts again.
func TestMemRejectionStallsAndRecovers(t *testing.T) {
	now := newNow()
	mem := &fakeMem{now: now, lat: 1, reject: true}
	src := &scriptSource{ops: [][3]int64{{0, 0, 64}}}
	c := New(0, 8, 192, 32, 64, src, mem)
	run(c, mem, 50)
	if c.Retired() != 0 {
		t.Errorf("retired %d while memory rejected", c.Retired())
	}
	stalled := c.Stalled
	if stalled == 0 {
		t.Error("no stall cycles recorded")
	}
	mem.reject = false
	run(c, mem, 500)
	if !c.Done() {
		t.Error("core did not recover")
	}
}

// Memory-level parallelism: with a wide LSQ, N independent loads of
// latency L complete in far less than N*L cycles.
func TestMLPOverlapsLoads(t *testing.T) {
	now := newNow()
	mem := &fakeMem{now: now, lat: 100}
	src := &scriptSource{ops: [][3]int64{{0, 0, 64}}}
	c := New(0, 8, 192, 32, 64, src, mem) // 64 loads
	run(c, mem, 100000)
	serial := int64(64 * 100)
	if c.FinishedAt >= serial/4 {
		t.Errorf("finished at %d, want < %d (MLP should overlap latency)", c.FinishedAt, serial/4)
	}
}

func TestIPCZeroBeforeFinish(t *testing.T) {
	now := newNow()
	mem := &fakeMem{now: now, hold: true}
	src := &scriptSource{ops: [][3]int64{{0, 0, 64}}}
	c := New(0, 8, 192, 32, 1000, src, mem)
	run(c, mem, 10)
	if c.IPC() != 0 {
		t.Error("IPC nonzero before target")
	}
}

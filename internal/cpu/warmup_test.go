package cpu

import "testing"

// Warmup latches its cycle and IPC measures only the post-warmup window.
func TestWarmupWindowIPC(t *testing.T) {
	now := newNow()
	mem := &fakeMem{lat: 1, now: now}
	src := &scriptSource{ops: [][3]int64{{1 << 30, 0, 0}}}
	c := New(0, 8, 192, 32, 16_000, src, mem)
	c.Warmup = 8_000
	run(c, mem, 100000)
	if !c.Done() {
		t.Fatal("did not finish")
	}
	if c.WarmupAt == 0 || c.WarmupAt >= c.FinishedAt {
		t.Fatalf("warmup at %d, finished at %d", c.WarmupAt, c.FinishedAt)
	}
	if ipc := c.IPC(); ipc < 7.5 || ipc > 8.01 {
		t.Errorf("post-warmup IPC = %v, want ~8", ipc)
	}
}

// Warmed is immediately true without a warmup.
func TestWarmedWithoutWarmup(t *testing.T) {
	now := newNow()
	mem := &fakeMem{lat: 1, now: now}
	src := &scriptSource{ops: [][3]int64{{100, 0, 0}}}
	c := New(0, 8, 192, 32, 1000, src, mem)
	if !c.Warmed() {
		t.Error("zero-warmup core not warmed")
	}
}

// Retired is monotone and never exceeds fetched.
func TestRetireNeverExceedsFetch(t *testing.T) {
	now := newNow()
	mem := &fakeMem{lat: 50, now: now}
	src := &scriptSource{ops: [][3]int64{{3, 0, 64}}}
	c := New(0, 8, 32, 8, 5_000, src, mem)
	prev := int64(0)
	for i := int64(1); i < 20000 && !c.Done(); i++ {
		*mem.now = i
		c.Tick(i)
		if c.Retired() < prev {
			t.Fatal("retirement went backwards")
		}
		if c.Retired() > c.fetched {
			t.Fatal("retired more than fetched")
		}
		prev = c.Retired()
	}
}

// A mixed read/write stream completes and counts both kinds.
func TestMixedStreamCounts(t *testing.T) {
	now := newNow()
	mem := &fakeMem{lat: 2, now: now}
	src := &scriptSource{ops: [][3]int64{
		{2, 0, 64}, {1, 1, 128}, {3, 0, 192}, {0, 1, 256},
	}}
	c := New(0, 8, 192, 32, 2000, src, mem)
	run(c, mem, 50000)
	if !c.Done() {
		t.Fatal("did not finish")
	}
	if c.Loads == 0 || c.Stores == 0 {
		t.Errorf("loads=%d stores=%d", c.Loads, c.Stores)
	}
	if c.MemOps != c.Loads+c.Stores {
		t.Errorf("memops=%d != loads+stores=%d", c.MemOps, c.Loads+c.Stores)
	}
}

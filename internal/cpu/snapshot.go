package cpu

import (
	"fmt"

	"eruca/internal/snapshot"
)

// Snapshot serializes the core's architectural state: fetch/retire
// cursors, the live in-flight read window (positions, readiness,
// completion timestamps), the pending decoded op, and every counter.
// The retired prefix of the read window and the free list are pool
// bookkeeping, not state, and are not serialized. Completion closures
// are rebuilt by Restore; a restored core's unready reads are re-linked
// to the memory system's restored MSHR waiters through
// PendingCompletions (the program-order/registration-order bijection:
// reads issue in fetch order, so the k-th unready read is the k-th live
// waiter this core registered).
func (c *Core) Snapshot(e *snapshot.Encoder) {
	e.I64(c.fetched)
	e.I64(c.retired)
	live := c.reads[c.readHead:]
	e.Int(len(live))
	for _, r := range live {
		e.I64(r.pos)
		e.Bool(r.ready)
		e.I64(r.readyAt)
	}
	e.Int(c.gap)
	e.Bool(c.hasOp)
	e.Bool(c.opWrite)
	e.U64(c.opVA)
	e.I64(c.Target)
	e.I64(c.FinishedAt)
	e.I64(c.Warmup)
	e.I64(c.WarmupAt)
	e.U64(c.MemOps)
	e.U64(c.Loads)
	e.U64(c.Stores)
	e.U64(c.Stalled)
}

// Restore rebuilds the core from a Snapshot stream. In-flight reads get
// fresh pre-bound completion closures; the caller must re-register the
// unready ones with the memory system via PendingCompletions.
func (c *Core) Restore(d *snapshot.Decoder) error {
	c.fetched = d.I64()
	c.retired = d.I64()
	n := d.Count(17)
	if err := d.Err(); err != nil {
		return err
	}
	c.reads = c.reads[:0]
	c.readHead = 0
	c.inflight = 0
	prevPos := int64(-1)
	for i := 0; i < n; i++ {
		pos := d.I64()
		ready := d.Bool()
		readyAt := d.I64()
		if err := d.Err(); err != nil {
			return err
		}
		if pos <= prevPos {
			return fmt.Errorf("cpu: snapshot read window out of program order (%d after %d)", pos, prevPos)
		}
		prevPos = pos
		r := c.getRead(pos)
		r.ready = ready
		r.readyAt = readyAt
		if !ready {
			c.inflight++
		}
		c.reads = append(c.reads, r)
	}
	c.gap = d.Int()
	c.hasOp = d.Bool()
	c.opWrite = d.Bool()
	c.opVA = d.U64()
	c.Target = d.I64()
	c.FinishedAt = d.I64()
	c.Warmup = d.I64()
	c.WarmupAt = d.I64()
	c.MemOps = d.U64()
	c.Loads = d.U64()
	c.Stores = d.U64()
	c.Stalled = d.U64()
	return d.Err()
}

// PendingCompletions returns the completion callbacks of the core's
// unready in-flight reads, in program order. After a Restore, the k-th
// element corresponds to the k-th live memory-system waiter this core
// had registered at snapshot time.
func (c *Core) PendingCompletions() []func() {
	var out []func()
	for _, r := range c.reads[c.readHead:] {
		if !r.ready {
			out = append(out, r.complete)
		}
	}
	return out
}

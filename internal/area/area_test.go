package area

import (
	"testing"

	"eruca/internal/config"
)

const banks = 16

func scheme(planes int, ewlr, rap, ddb bool) config.Scheme {
	return config.VSB(planes, ewlr, rap, ddb, config.DefaultBusMHz).Scheme
}

// Sec. VI-C anchors: DDB alone 0.05%, 2-plane VSB+RAP 0.06%, EWLR adds
// ~0.06%, and the full 4-plane stack stays at or under ~0.3%.
func TestPaperAnchors(t *testing.T) {
	if o := DDBOverhead(banks); o < 0.0004 || o > 0.0006 {
		t.Errorf("DDB overhead = %.4f%%, want ~0.05%%", o*100)
	}
	if o := Overhead(scheme(2, false, true, false), banks); o < 0.0005 || o > 0.0008 {
		t.Errorf("2P RAP overhead = %.4f%%, want ~0.06%%", o*100)
	}
	base := Overhead(scheme(2, false, true, false), banks)
	withE := Overhead(scheme(2, true, true, false), banks)
	if d := withE - base; d < 0.0004 || d > 0.0008 {
		t.Errorf("EWLR delta = %.4f%%, want ~0.06%%", d*100)
	}
	full4 := Overhead(scheme(4, true, true, true), banks)
	if full4 > 0.0031 {
		t.Errorf("4P DDB+EWLR+RAP = %.4f%%, want <= ~0.30%%", full4*100)
	}
}

// Fig. 11 shape: overhead grows monotonically with plane count, and the
// full stack is five times cheaper than Half-DRAM.
func TestFig11Shape(t *testing.T) {
	prev := 0.0
	for _, p := range []int{2, 4, 8, 16} {
		o := Overhead(scheme(p, true, true, true), banks)
		if o <= prev {
			t.Errorf("overhead not increasing at %d planes: %v <= %v", p, o, prev)
		}
		prev = o
	}
	eruca := Overhead(scheme(4, true, true, true), banks)
	if HalfDRAMOverhead < 4.5*eruca {
		t.Errorf("Half-DRAM (%.3f%%) not ~5x ERUCA (%.3f%%)", HalfDRAMOverhead*100, eruca*100)
	}
}

func TestPriorWorkReferences(t *testing.T) {
	if o := Overhead(config.HalfDRAM(config.DefaultBusMHz).Scheme, banks); o != HalfDRAMOverhead {
		t.Errorf("Half-DRAM = %v", o)
	}
	if o := Overhead(config.MASA(4, config.DefaultBusMHz).Scheme, banks); o != MASA4Overhead {
		t.Errorf("MASA4 = %v", o)
	}
	if o := Overhead(config.MASA(8, config.DefaultBusMHz).Scheme, banks); o != MASA8Overhead {
		t.Errorf("MASA8 = %v", o)
	}
	m := Overhead(config.MASAERUCA(8, 4, true, config.DefaultBusMHz).Scheme, banks)
	if m <= MASA8Overhead {
		t.Errorf("MASA8+ERUCA (%v) not above MASA8", m)
	}
}

// Paired banks save die area even with all mechanisms (Sec. VI-C: -1.1%).
func TestPairedBankSavesArea(t *testing.T) {
	o := Overhead(config.PairedBank(4, true, config.DefaultBusMHz).Scheme, banks)
	if o > -0.005 {
		t.Errorf("paired-bank overhead = %.3f%%, want around -1%%", o*100)
	}
}

func TestBaselineZero(t *testing.T) {
	if o := Overhead(config.Baseline(config.DefaultBusMHz).Scheme, banks); o != 0 {
		t.Errorf("baseline overhead = %v", o)
	}
}

package area

import "math"

// Row-repair flexibility model (Sec. III-A / Sec. VIII).
//
// DRAM banks carry spare wordlines that can be mapped over faulty rows.
// Plane latches restrict that mapping: a spare can only stand in for a
// row whose address the plane's latch set can select, so with P planes a
// bank's spares are effectively partitioned P ways. The paper argues
// this is why plane count must stay low ("row repair is twice more
// effective [with 2 planes] than with 4 planes") and why many-sub-bank
// schemes hurt manufacturability.
//
// The model: wordline defects arrive Poisson with mean lambda per bank,
// uniformly across planes; the bank is repairable when every plane's
// defect count fits in its share of the spares; a die yields when all
// its banks are repairable.

// RepairYield reports the probability that a die with `banks` banks,
// `spares` spare wordlines per bank and Poisson(lambda) defective
// wordlines per bank is fully repairable under a `planes`-way spare
// partition. planes must be >= 1; spares are divided evenly (floor).
func RepairYield(planes, spares, banks int, lambda float64) float64 {
	if planes < 1 {
		planes = 1
	}
	perPlane := spares / planes
	perPlaneLambda := lambda / float64(planes)
	pPlane := poissonCDF(perPlane, perPlaneLambda)
	pBank := math.Pow(pPlane, float64(planes))
	return math.Pow(pBank, float64(banks))
}

// TolerableDefectRate reports the largest per-bank mean defect count
// lambda at which the die still yields at least `target` — the repair
// capability of a `planes`-way partitioned spare pool. "Twice as
// effective" repair means tolerating twice the defect rate.
func TolerableDefectRate(planes, spares, banks int, target float64) float64 {
	lo, hi := 0.0, float64(spares)*4
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if RepairYield(planes, spares, banks, mid) >= target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// RelativeRepairEffectiveness reports the partitioned design's tolerable
// defect rate as a fraction of the unpartitioned bank's, at a 90% yield
// target (1 = unrestricted, smaller = weaker repair).
func RelativeRepairEffectiveness(planes, spares, banks int, _ float64) float64 {
	base := TolerableDefectRate(1, spares, banks, 0.9)
	if base == 0 {
		return 1
	}
	return TolerableDefectRate(planes, spares, banks, 0.9) / base
}

// poissonCDF is P(X <= k) for X ~ Poisson(lambda).
func poissonCDF(k int, lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	term := math.Exp(-lambda)
	sum := term
	for i := 1; i <= k; i++ {
		term *= lambda / float64(i)
		sum += term
	}
	if sum > 1 {
		return 1
	}
	return sum
}

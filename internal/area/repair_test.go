package area

import (
	"math"
	"testing"
)

const (
	rSpares = 64
	rBanks  = 16
	rLambda = 24.0 // mean defective wordlines per bank
)

// Yield is monotone non-increasing in plane count: partitioning spares
// can only hurt.
func TestRepairYieldMonotone(t *testing.T) {
	prev := 1.1
	for _, p := range []int{1, 2, 4, 8, 16} {
		y := RepairYield(p, rSpares, rBanks, rLambda)
		if y < 0 || y > 1 {
			t.Fatalf("yield(%d) = %v out of [0,1]", p, y)
		}
		if y > prev+1e-12 {
			t.Fatalf("yield rose at %d planes: %v > %v", p, y, prev)
		}
		prev = y
	}
}

// With no defects, yield is 1 regardless of partitioning.
func TestRepairYieldNoDefects(t *testing.T) {
	for _, p := range []int{1, 4, 16} {
		if y := RepairYield(p, rSpares, rBanks, 0); y != 1 {
			t.Errorf("yield with lambda=0, planes=%d: %v", p, y)
		}
	}
}

// More spares never hurt.
func TestRepairYieldMoreSparesHelp(t *testing.T) {
	lo := RepairYield(4, 32, rBanks, rLambda)
	hi := RepairYield(4, 128, rBanks, rLambda)
	if hi < lo {
		t.Errorf("more spares reduced yield: %v -> %v", lo, hi)
	}
}

// The paper's claim: repair is roughly twice as effective with 2 planes
// as with 4 — the failure exponent roughly halves.
func TestTwoPlanesBeatFour(t *testing.T) {
	e2 := RelativeRepairEffectiveness(2, rSpares, rBanks, rLambda)
	e4 := RelativeRepairEffectiveness(4, rSpares, rBanks, rLambda)
	if !(e2 > e4) {
		t.Fatalf("2-plane effectiveness %v not above 4-plane %v", e2, e4)
	}
}

func TestPoissonCDF(t *testing.T) {
	if p := poissonCDF(0, 1); math.Abs(p-math.Exp(-1)) > 1e-12 {
		t.Errorf("P(X=0;1) = %v", p)
	}
	if p := poissonCDF(1000, 3); math.Abs(p-1) > 1e-9 {
		t.Errorf("CDF tail = %v", p)
	}
	if poissonCDF(5, 0) != 1 {
		t.Error("zero lambda")
	}
}

func TestRepairYieldDegenerate(t *testing.T) {
	if y := RepairYield(0, rSpares, rBanks, rLambda); y != RepairYield(1, rSpares, rBanks, rLambda) {
		t.Errorf("planes<1 not clamped: %v", y)
	}
}

// Package area implements the DRAM die-area model of Sec. VI-C and
// Fig. 11. The baseline is an 8Gb x4 DDR4 die in 32nm estimated at
// 120.992 mm^2 (8.98mm x 13.47mm) with CACTI-3DD; the overhead
// components come from the paper's synthesis results:
//
//   - a 40-bit row-address latch set is 203 um^2, a 48-bit (EWLR) set
//     244 um^2; one set per plane per bank;
//   - plane-latch-select wires run in the bitline direction across all 8
//     row decoders at a conservative 1 um pitch, so every doubling of
//     the plane count widens the die by 8 um;
//   - EWLR adds the doubled LWL_SEL select signals along the same path;
//   - DDB adds 64 pass-transistor switches (191 um^2 per sub-bank), a
//     32b 2:1 MUX/DEMUX per bank-group pair (674 um^2 each), and four
//     bus-select wires that grow the die height by 4 um (~85% of the
//     DDB overhead, matching the paper).
//
// Reference points for prior work (Fig. 11 / Sec. III): Half-DRAM 1.46%,
// MASA 3.03% (4 groups) and 4.76% (8 groups), paired-bank -1.1%, and a
// full 32-bank DDR4 +11%.
package area

import "eruca/internal/config"

// Die geometry (um).
const (
	DieWidthUM  = 8980.0
	DieHeightUM = 13470.0
	DieAreaUM2  = 120.992e6
)

// Synthesis-derived component areas (um^2) and wire growth (um).
const (
	LatchSet40bUM2       = 203.0
	LatchSet48bUM2       = 244.0
	PlaneSelectWidthUM   = 8.0 // die-width growth per plane-count doubling
	EWLRSelectWidthUM    = 8.0 // die-width growth for the doubled LWL_SEL selects
	DDBSwitchPerSubUM2   = 191.0
	DDBMuxUM2            = 674.0
	DDBMuxCount          = 4
	DDBBusSelectHeightUM = 4.0
)

// Reference overheads of prior designs, as die-area fractions.
const (
	HalfDRAMOverhead = 0.0146
	MASA4Overhead    = 0.0303
	MASA8Overhead    = 0.0476
	PairedBankSaving = -0.011 // paired banks remove half the row decoders
	FullBanks32      = 0.11   // doubling full banks (Rambus model)
)

// Overhead reports the die-area fraction a scheme adds over baseline
// DDR4 (negative = saving). banks is the physical bank count.
func Overhead(sch config.Scheme, banks int) float64 {
	switch sch.Mode {
	case config.SubBankNone:
		return 0
	case config.SubBankHalfDRAM:
		return HalfDRAMOverhead
	case config.SubBankMASA:
		o := MASA4Overhead
		if sch.MASAGroups >= 8 {
			o = MASA8Overhead
		}
		if sch.MASAStacked {
			o += vsbOverheadUM2(sch, banks) / DieAreaUM2
		}
		if sch.DDB {
			o += ddbOverheadUM2(banks) / DieAreaUM2
		}
		return o
	}

	um2 := vsbOverheadUM2(sch, banks)
	if sch.DDB {
		um2 += ddbOverheadUM2(banks)
	}
	frac := um2 / DieAreaUM2
	if sch.Mode == config.SubBankPaired {
		frac += PairedBankSaving
	}
	return frac
}

// vsbOverheadUM2 is the latch + select-wire area of a plane/EWLR
// configuration.
func vsbOverheadUM2(sch config.Scheme, banks int) float64 {
	latch := LatchSet40bUM2
	if sch.EWLR {
		latch = LatchSet48bUM2
	}
	um2 := float64(banks*sch.Planes) * latch
	um2 += float64(log2(sch.Planes)) * PlaneSelectWidthUM * DieWidthUM
	if sch.EWLR {
		um2 += EWLRSelectWidthUM * DieWidthUM
	}
	return um2
}

// ddbOverheadUM2 is the switch + mux + bus-select-wire area of DDB.
func ddbOverheadUM2(banks int) float64 {
	subBanks := banks * 2
	return float64(subBanks)*DDBSwitchPerSubUM2 +
		DDBMuxCount*DDBMuxUM2 +
		DDBBusSelectHeightUM*DieHeightUM
}

// DDBOverhead reports the stand-alone DDB die fraction (the 0.05% point
// of Sec. VI-C).
func DDBOverhead(banks int) float64 { return ddbOverheadUM2(banks) / DieAreaUM2 }

func log2(n int) int {
	b := 0
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

package memctrl

import (
	"testing"

	"eruca/internal/addrmap"
	"eruca/internal/clock"
	"eruca/internal/config"
	"eruca/internal/dram"
)

// The starvation guard bounds how long a conflicting transaction can be
// bypassed by a stream of row hits.
func TestStarvationGuard(t *testing.T) {
	c, _ := newCtl(t, config.Baseline(config.DefaultBusMHz))
	var conflictDone clock.Cycle
	served := 0
	// Open row 5 and keep feeding hits while one conflict waits.
	c.Enqueue(&Transaction{Loc: loc(0, 5, 0), Done: func(clock.Cycle) { served++ }})
	drive(t, c, func() bool { return served == 1 }, 2000)
	c.Enqueue(&Transaction{Loc: loc(0, 9, 0), Arrive: 100, Done: func(at clock.Cycle) { conflictDone = at }})
	col := uint32(1)
	var now clock.Cycle
	for now = 100; now < 30000 && conflictDone == 0; now++ {
		// Keep the hit stream alive.
		if now%40 == 0 && c.CanAccept(false) {
			c.Enqueue(&Transaction{Loc: loc(0, 5, col%128), Arrive: now, Done: func(clock.Cycle) { served++ }})
			col++
		}
		c.Tick(now)
	}
	if conflictDone == 0 {
		t.Fatal("conflicting transaction starved beyond 30k cycles")
	}
	if conflictDone > 100+c.starveCK*3 {
		t.Errorf("conflict served at %d, guard should bound near %d", conflictDone, 100+c.starveCK)
	}
}

// With refresh enabled the controller keeps making progress across
// refresh blackouts.
func TestProgressAcrossRefresh(t *testing.T) {
	sys := config.Baseline(config.DefaultBusMHz)
	m := addrmap.New(sys)
	ch := dram.NewChannel(sys, m.RowBits())
	c := New(sys, ch)
	done := 0
	var now clock.Cycle
	deadline := sys.CT.REFI*3 + 10000
	for now = 0; now < deadline; now++ {
		if now%200 == 0 && c.CanAccept(false) {
			c.Enqueue(&Transaction{Loc: loc(int(now/200)%16, uint32(now), 0), Arrive: now,
				Done: func(clock.Cycle) { done++ }})
		}
		c.Tick(now)
	}
	if ch.Stats.Refreshes < 2 {
		t.Fatalf("refreshes = %d, want >= 2", ch.Stats.Refreshes)
	}
	if done < int(deadline/200)-8 {
		t.Errorf("completed %d of ~%d transactions across refreshes", done, deadline/200)
	}
}

// The close-page scan never closes a row that still has a queued
// requester.
func TestClosePageSparesQueuedRows(t *testing.T) {
	sys := config.Baseline(config.DefaultBusMHz)
	c, _ := newCtl(t, sys)
	served := 0
	c.Enqueue(&Transaction{Loc: loc(0, 5, 0), Done: func(clock.Cycle) { served++ }})
	drive(t, c, func() bool { return served == 1 }, 2000)
	// A same-row transaction waits, blocked artificially by saturating
	// its earliest issue: fill the queue behind it so it stays queued
	// while the idle timeout passes. Simplest: enqueue it and do not
	// tick; then scan manually.
	c.Enqueue(&Transaction{Loc: loc(0, 5, 3), Arrive: 0})
	idle := clock.Cycle(sys.Ctrl.ClosePageIdleCK)
	pres := c.Channel().Stats.Pres
	// Force a close-page scan at a time the row is idle.
	c.lastCloseScan = 0
	c.maybeClosePage(idle * 2)
	if c.Channel().Stats.Pres != pres {
		t.Error("close-page closed a row with a queued requester")
	}
}

// Writes complete with data-transfer timing.
func TestWriteCompletionTiming(t *testing.T) {
	sys := config.Baseline(config.DefaultBusMHz)
	c, _ := newCtl(t, sys)
	var dataAt clock.Cycle
	c.Enqueue(&Transaction{Write: true, Loc: loc(0, 5, 0), Done: func(at clock.Cycle) { dataAt = at }})
	// Writes only drain when reads are absent.
	for now := clock.Cycle(0); now < 3000 && dataAt == 0; now++ {
		c.Tick(now)
	}
	ct := sys.CT
	want := ct.RCD + ct.CWL + ct.Burst // ACT at 0, WR at tRCD
	if dataAt != want {
		t.Errorf("write data at %d, want %d", dataAt, want)
	}
}

// Pending counts both queues.
func TestPending(t *testing.T) {
	c, _ := newCtl(t, config.Baseline(config.DefaultBusMHz))
	c.Enqueue(&Transaction{Loc: loc(0, 1, 0)})
	c.Enqueue(&Transaction{Write: true, Loc: loc(1, 1, 0)})
	if c.Pending() != 2 {
		t.Errorf("pending = %d", c.Pending())
	}
}

// FR-FCFS respects rank availability: no commands to a refreshing rank.
func TestNoServiceDuringRefresh(t *testing.T) {
	sys := config.Baseline(config.DefaultBusMHz)
	m := addrmap.New(sys)
	ch := dram.NewChannel(sys, m.RowBits())
	c := New(sys, ch)
	// Advance right up to the refresh point with an empty queue.
	var now clock.Cycle
	for now = 0; ch.Stats.Refreshes == 0; now++ {
		c.Tick(now)
		if now > sys.CT.REFI*2 {
			t.Fatal("no refresh happened")
		}
	}
	// Rank is blocked for tRFC; a transaction enqueued now must not
	// complete before the blackout ends.
	var doneAt clock.Cycle
	c.Enqueue(&Transaction{Loc: loc(0, 5, 0), Arrive: now, Done: func(at clock.Cycle) { doneAt = at }})
	blackoutEnd := now + sys.CT.RFC
	for ; doneAt == 0 && now < blackoutEnd+2000; now++ {
		c.Tick(now)
	}
	if doneAt == 0 {
		t.Fatal("transaction never served after refresh")
	}
	if doneAt < blackoutEnd {
		t.Errorf("transaction data at %d, inside tRFC blackout ending %d", doneAt, blackoutEnd)
	}
}

// Package memctrl implements the per-channel memory controller: read and
// write transaction queues, FR-FCFS scheduling with an adaptive open-page
// policy and write-drain watermarks (Tab. III), refresh maintenance, and
// the ERUCA operation flow of Fig. 5 via the dram planner. It collects
// the read queueing-latency distribution of Fig. 16a.
package memctrl

import (
	"math/rand"

	"eruca/internal/addrmap"
	"eruca/internal/clock"
	"eruca/internal/config"
	"eruca/internal/dram"
	"eruca/internal/rng"
	"eruca/internal/stats"
	"eruca/internal/telemetry"
)

// Transaction is one cache-line memory request.
type Transaction struct {
	Write  bool
	Loc    addrmap.Loc
	Arrive clock.Cycle
	// Tag is an opaque caller identifier (the sim bridge stores the line
	// address). It travels through checkpoints so the caller can rebind
	// the Done closure of a restored in-flight transaction.
	Tag uint64
	// Done, if non-nil, is called once with the cycle at which the data
	// transfer completes (read data available / write data absorbed).
	// Closures cannot be serialized: checkpoint restore rebuilds them
	// structurally via Controller.RestoreQueues' newTxn callback.
	Done func(dataAt clock.Cycle)
}

func (t *Transaction) target() dram.Target {
	return dram.Target{Rank: t.Loc.Rank, Group: t.Loc.Group, Bank: t.Loc.Bank, Sub: t.Loc.Sub, Row: t.Loc.Row}
}

// Stats aggregates controller-side metrics for one channel.
type Stats struct {
	ReadsDone  uint64
	WritesDone uint64
	// QueueLatency samples, per read, the bus cycles from arrival to the
	// issue of its column command (the Fig. 16a metric).
	QueueLatency stats.Sampler
	// TotalLatency samples arrival-to-data cycles per read.
	TotalLatency stats.Sampler
	// DrainEntered counts write-drain episodes.
	DrainEntered uint64
	// Forwarded counts reads served from the write queue.
	Forwarded uint64

	// Ticks and the occupancy sums integrate queue depth over time
	// (average depth = sum / ticks).
	Ticks       uint64
	ReadOccSum  uint64
	WriteOccSum uint64
}

// AvgReadQueueDepth reports the time-averaged read-queue occupancy.
func (s *Stats) AvgReadQueueDepth() float64 {
	if s.Ticks == 0 {
		return 0
	}
	return float64(s.ReadOccSum) / float64(s.Ticks)
}

// AvgWriteQueueDepth reports the time-averaged write-queue occupancy.
func (s *Stats) AvgWriteQueueDepth() float64 {
	if s.Ticks == 0 {
		return 0
	}
	return float64(s.WriteOccSum) / float64(s.Ticks)
}

// Controller schedules one DRAM channel.
type Controller struct {
	sys *config.System
	ch  *dram.Channel

	readQ  []*Transaction
	writeQ []*Transaction

	draining bool

	// starveCK promotes the oldest transaction over row hits once it has
	// waited this long, bounding FR-FCFS starvation.
	starveCK clock.Cycle

	lastCloseScan clock.Cycle

	// Fault-injection state (hooks.go): scheduling blackout horizon and
	// the probabilistic drop-rate stream. Zero-valued in normal runs.
	blackoutUntil clock.Cycle
	dropRate      float64
	dropRNG       *rand.Rand
	dropSrc       *rng.Source // counting source behind dropRNG, for checkpoints
	faultDrops    uint64

	// scanBound accumulates, during a Tick whose scans issued nothing,
	// the minimum EarliestIssue over every policy-eligible candidate the
	// scans evaluated. On quiescent cycles NextEventCycle reuses it
	// instead of re-walking the queues, making the fast-forward bound
	// almost free.
	scanBound clock.Cycle

	// tel, when set, receives per-read latency histogram observations
	// (queue age and arrival-to-data). Purely observational.
	tel *telemetry.Set

	Stats Stats
}

// LatencyReservoir bounds the per-controller latency samplers: quantile
// queries run over at most this many retained samples while counts and
// means stay exact (stats.Sampler reservoir mode).
const LatencyReservoir = 8192

// latencySeed seeds the deterministic reservoir PRNGs; a fixed constant
// keeps sweep tables byte-identical at any parallelism (the sampler is
// only ever fed from its own single-threaded controller).
const latencySeed = 0x43a7_90e5

// New builds a controller driving the given channel.
func New(sys *config.System, ch *dram.Channel) *Controller {
	c := &Controller{sys: sys, ch: ch, starveCK: 1500}
	c.armSamplers()
	return c
}

// armSamplers puts the latency samplers in bounded reservoir mode.
func (c *Controller) armSamplers() {
	c.Stats.QueueLatency.Reservoir(LatencyReservoir, latencySeed)
	c.Stats.TotalLatency.Reservoir(LatencyReservoir, latencySeed+1)
}

// ResetStats clears the controller statistics (the warmup boundary) and
// re-arms the bounded latency samplers.
func (c *Controller) ResetStats() {
	c.Stats = Stats{}
	c.armSamplers()
}

// SetTelemetry attaches a telemetry Set for the read-latency histograms;
// nil detaches.
func (c *Controller) SetTelemetry(t *telemetry.Set) { c.tel = t }

// Channel exposes the underlying DRAM channel (for stats readout).
func (c *Controller) Channel() *dram.Channel { return c.ch }

// CanAccept reports whether a new transaction of the given kind fits.
func (c *Controller) CanAccept(write bool) bool {
	if write {
		return len(c.writeQ) < c.sys.Ctrl.WriteQueueDepth
	}
	return len(c.readQ) < c.sys.Ctrl.ReadQueueDepth
}

// Enqueue adds a transaction; the caller must have checked CanAccept.
// A read that matches a queued write is forwarded from the write queue
// and completes immediately without a DRAM access.
func (c *Controller) Enqueue(t *Transaction) {
	if t.Write {
		c.writeQ = append(c.writeQ, t)
		return
	}
	for _, w := range c.writeQ {
		if w.Loc == t.Loc {
			c.Stats.Forwarded++
			if t.Done != nil {
				t.Done(t.Arrive + 1)
			}
			return
		}
	}
	c.readQ = append(c.readQ, t)
}

// Pending reports queued transactions.
func (c *Controller) Pending() int { return len(c.readQ) + len(c.writeQ) }

// Tick runs one bus cycle: refresh maintenance, then at most one DRAM
// command chosen FR-FCFS with hits first, oldest first, reads prioritized
// outside write-drain episodes. It reports whether a command was issued
// this cycle (the run loop uses this to detect quiescent windows it can
// fast-forward).
func (c *Controller) Tick(now clock.Cycle) bool {
	c.Stats.Ticks++
	c.Stats.ReadOccSum += uint64(len(c.readQ))
	c.Stats.WriteOccSum += uint64(len(c.writeQ))
	c.scanBound = farFuture
	c.ch.MaintainRefresh(now)

	// Injected scheduling perturbations (chaos runs only; faultGate is
	// a pair of zero-compares in normal runs).
	if (c.blackoutUntil > 0 || c.dropRate > 0) && c.faultGate(now) {
		return false
	}

	// Write-drain hysteresis.
	if !c.draining && len(c.writeQ) >= c.sys.Ctrl.WriteDrainHi {
		c.draining = true
		c.Stats.DrainEntered++
	}
	if c.draining && len(c.writeQ) <= c.sys.Ctrl.WriteDrainLo {
		c.draining = false
	}

	// FR-FCFS serves row hits first; with the hit-first pass disabled
	// the controller degrades to age-ordered FCFS (ablation knob). Each
	// queue is scanned once per cycle: tryQueue folds the hit-first and
	// age-order passes into a single walk that evaluates NextStep and
	// EarliestIssue once per candidate.
	hf := !c.sys.Ctrl.HitFirstDisabled
	if c.draining {
		if c.tryQueue(now, c.writeQ, true, true, hf) ||
			c.tryQueue(now, c.readQ, false, false, hf) {
			return true
		}
	} else {
		if c.tryQueue(now, c.readQ, false, true, hf) ||
			c.tryQueue(now, c.writeQ, true, len(c.readQ) == 0, hf) {
			return true
		}
	}

	return c.maybeClosePage(now)
}

// NextEventCycle reports a lower bound (strictly after now) on the next
// bus cycle at which this controller could act: the earliest legal
// issue over the candidates the cycle's failed FR-FCFS scans evaluated
// (scanBound — the scans mirror the policy exactly: unavailable ranks,
// the starvation guard, and the read-priority / write-drain pass
// structure, so on a cycle where Tick issued nothing the bound is
// strictly in the future), the next refresh-state transition, or the
// next close-page scan. Only valid immediately after a Tick that issued
// nothing — precisely when the run loop consults it. The bound is
// conservative (policy state can only become more restrictive inside a
// quiescent window: starvation never ends while the head is stuck, rank
// availability changes only via bounded refresh transitions, so
// resuming early and finding nothing issuable is safe) but never later
// than the controller's next actual command, which is what makes
// fast-forwarded runs command-stream-identical to per-cycle runs.
func (c *Controller) NextEventCycle(now clock.Cycle) clock.Cycle {
	next := c.ch.NextRefreshEvent(now)
	if c.scanBound < next {
		next = c.scanBound
	}
	if e := c.nextClosePage(now); e < next {
		next = e
	}
	if next <= now {
		next = now + 1
	}
	return next
}

// FastForward accounts for the idle bus cycles in (now, target) that the
// run loop is about to skip: it integrates the queue-occupancy stats the
// skipped Ticks would have accumulated (queue contents are provably
// unchanged across the window) and replays the close-page scan schedule
// so future scans land on the same cycles as in a per-cycle run.
func (c *Controller) FastForward(now, target clock.Cycle) {
	d := uint64(target - now - 1)
	c.Stats.Ticks += d
	c.Stats.ReadOccSum += d * uint64(len(c.readQ))
	c.Stats.WriteOccSum += d * uint64(len(c.writeQ))
	if c.sys.Ctrl.ClosePageIdleCK != 0 {
		// In a quiescent window maybeClosePage runs every cycle, scanning
		// (and re-arming lastCloseScan) every 64 cycles: scans land on
		// s0, s0+64, ... with s0 = max(now+1, lastCloseScan+64).
		s0 := c.lastCloseScan + 64
		if s0 < now+1 {
			s0 = now + 1
		}
		if s0 <= target-1 {
			c.lastCloseScan = s0 + (target-1-s0)/64*64
		}
	}
}

// nextClosePage reports the next cycle at which the close-page timeout
// could act: the next 64-cycle scan-grid cycle, provided the channel
// has any open row to consider. The run loop resumes there and lets
// maybeClosePage decide for real — deliberately cheap (O(ranks)) so the
// bound can be computed on every quiescent cycle, at the cost of
// capping individual skips at one scan period.
func (c *Controller) nextClosePage(now clock.Cycle) clock.Cycle {
	if c.sys.Ctrl.ClosePageIdleCK == 0 || !c.ch.AnyOpenRows() {
		return farFuture
	}
	s := c.lastCloseScan + 64
	if s <= now {
		s = now + 1
	}
	return s
}

// farFuture mirrors dram's "no event" sentinel.
const farFuture = clock.Cycle(1) << 60

// tryQueue scans up to ScanLimit transactions oldest-first and issues
// one step, folding FR-FCFS's two passes into a single walk: the first
// issuable row hit wins (when preferHits); otherwise the first issuable
// transaction of any kind is taken, but only when the age-order pass
// applies to this queue (allowAll). With preferHits off the scan
// degrades to pure age order and stops at the first issuable candidate.
func (c *Controller) tryQueue(now clock.Cycle, q []*Transaction, write, allowAll, preferHits bool) bool {
	if !allowAll && !preferHits {
		return false
	}
	limit := c.sys.Ctrl.ScanLimit
	if limit > len(q) {
		limit = len(q)
	}
	if limit == 0 {
		return false
	}
	// Starvation guard: once the queue head has waited too long, only it
	// (and row hits that cost nothing) may issue preparatory commands.
	starved := now-q[0].Arrive > c.starveCK
	first := -1
	var firstStep dram.Step
	for i := 0; i < limit; i++ {
		t := q[i]
		if !c.ch.Available(t.Loc.Rank, now) {
			continue
		}
		step := c.ch.NextStep(t.target(), t.Write)
		if !step.Hit {
			if !allowAll || (starved && i > 0) || first >= 0 {
				continue
			}
		}
		if e := c.ch.EarliestIssue(step.Cmd); e > now {
			if e < c.scanBound {
				c.scanBound = e
			}
			continue
		}
		if step.Hit && preferHits {
			// First issuable row hit: exactly what the hit-first pass
			// would have picked.
			c.ch.Issue(step.Cmd, now)
			if step.Column {
				c.complete(t, now, q, i, write)
			}
			return true
		}
		if first < 0 {
			first, firstStep = i, step
			if !preferHits {
				break // pure age order: the first issuable wins
			}
		}
	}
	if first < 0 || !allowAll {
		return false
	}
	c.ch.Issue(firstStep.Cmd, now)
	if firstStep.Column {
		c.complete(q[first], now, q, first, write)
	}
	return true
}

func (c *Controller) complete(t *Transaction, now clock.Cycle, q []*Transaction, idx int, write bool) {
	var dataAt clock.Cycle
	if write {
		dataAt = c.ch.WriteDataAt(now)
		c.Stats.WritesDone++
		c.writeQ = append(q[:idx], q[idx+1:]...)
	} else {
		dataAt = c.ch.ReadDataAt(now)
		c.Stats.ReadsDone++
		c.Stats.QueueLatency.Add(float64(now - t.Arrive))
		c.Stats.TotalLatency.Add(float64(dataAt - t.Arrive))
		if c.tel != nil {
			c.tel.C.QueueAge.Observe(now - t.Arrive)
			c.tel.C.ReadLatency.Observe(dataAt - t.Arrive)
		}
		c.readQ = append(q[:idx], q[idx+1:]...)
	}
	if t.Done != nil {
		t.Done(dataAt)
	}
}

// maybeClosePage implements the adaptive open-page timeout: periodically
// precharge rows that have been idle with no queued requester. It
// reports whether a precharge was issued.
func (c *Controller) maybeClosePage(now clock.Cycle) bool {
	idle := clock.Cycle(c.sys.Ctrl.ClosePageIdleCK)
	if idle == 0 || now-c.lastCloseScan < 64 {
		return false
	}
	c.lastCloseScan = now
	var chosen *dram.Command
	c.ch.IdleOpenRows(now, idle, func(cmd dram.Command) {
		if chosen != nil {
			return
		}
		if c.hasQueuedFor(cmd) {
			return
		}
		if c.ch.EarliestIssue(cmd) <= now {
			cc := cmd
			chosen = &cc
		}
	})
	if chosen != nil {
		c.ch.Issue(*chosen, now)
		return true
	}
	return false
}

// hasQueuedFor reports whether any queued transaction targets the open
// row the PRE command would close.
func (c *Controller) hasQueuedFor(cmd dram.Command) bool {
	match := func(t *Transaction) bool {
		l := t.Loc
		return l.Rank == cmd.Rank && l.Group == cmd.Group && l.Bank == cmd.Bank &&
			l.Sub == cmd.Sub && l.Row == cmd.Row
	}
	for _, t := range c.readQ {
		if match(t) {
			return true
		}
	}
	for _, t := range c.writeQ {
		if match(t) {
			return true
		}
	}
	return false
}

// Package memctrl implements the per-channel memory controller: read and
// write transaction queues, FR-FCFS scheduling with an adaptive open-page
// policy and write-drain watermarks (Tab. III), refresh maintenance, and
// the ERUCA operation flow of Fig. 5 via the dram planner. It collects
// the read queueing-latency distribution of Fig. 16a.
package memctrl

import (
	"eruca/internal/addrmap"
	"eruca/internal/clock"
	"eruca/internal/config"
	"eruca/internal/dram"
	"eruca/internal/stats"
)

// Transaction is one cache-line memory request.
type Transaction struct {
	Write  bool
	Loc    addrmap.Loc
	Arrive clock.Cycle
	// Done, if non-nil, is called once with the cycle at which the data
	// transfer completes (read data available / write data absorbed).
	Done func(dataAt clock.Cycle)
}

func (t *Transaction) target() dram.Target {
	return dram.Target{Rank: t.Loc.Rank, Group: t.Loc.Group, Bank: t.Loc.Bank, Sub: t.Loc.Sub, Row: t.Loc.Row}
}

// Stats aggregates controller-side metrics for one channel.
type Stats struct {
	ReadsDone  uint64
	WritesDone uint64
	// QueueLatency samples, per read, the bus cycles from arrival to the
	// issue of its column command (the Fig. 16a metric).
	QueueLatency stats.Sampler
	// TotalLatency samples arrival-to-data cycles per read.
	TotalLatency stats.Sampler
	// DrainEntered counts write-drain episodes.
	DrainEntered uint64
	// Forwarded counts reads served from the write queue.
	Forwarded uint64

	// Ticks and the occupancy sums integrate queue depth over time
	// (average depth = sum / ticks).
	Ticks       uint64
	ReadOccSum  uint64
	WriteOccSum uint64
}

// AvgReadQueueDepth reports the time-averaged read-queue occupancy.
func (s *Stats) AvgReadQueueDepth() float64 {
	if s.Ticks == 0 {
		return 0
	}
	return float64(s.ReadOccSum) / float64(s.Ticks)
}

// AvgWriteQueueDepth reports the time-averaged write-queue occupancy.
func (s *Stats) AvgWriteQueueDepth() float64 {
	if s.Ticks == 0 {
		return 0
	}
	return float64(s.WriteOccSum) / float64(s.Ticks)
}

// Controller schedules one DRAM channel.
type Controller struct {
	sys *config.System
	ch  *dram.Channel

	readQ  []*Transaction
	writeQ []*Transaction

	draining bool

	// starveCK promotes the oldest transaction over row hits once it has
	// waited this long, bounding FR-FCFS starvation.
	starveCK clock.Cycle

	lastCloseScan clock.Cycle

	Stats Stats
}

// New builds a controller driving the given channel.
func New(sys *config.System, ch *dram.Channel) *Controller {
	return &Controller{sys: sys, ch: ch, starveCK: 1500}
}

// Channel exposes the underlying DRAM channel (for stats readout).
func (c *Controller) Channel() *dram.Channel { return c.ch }

// CanAccept reports whether a new transaction of the given kind fits.
func (c *Controller) CanAccept(write bool) bool {
	if write {
		return len(c.writeQ) < c.sys.Ctrl.WriteQueueDepth
	}
	return len(c.readQ) < c.sys.Ctrl.ReadQueueDepth
}

// Enqueue adds a transaction; the caller must have checked CanAccept.
// A read that matches a queued write is forwarded from the write queue
// and completes immediately without a DRAM access.
func (c *Controller) Enqueue(t *Transaction) {
	if t.Write {
		c.writeQ = append(c.writeQ, t)
		return
	}
	for _, w := range c.writeQ {
		if w.Loc == t.Loc {
			c.Stats.Forwarded++
			if t.Done != nil {
				t.Done(t.Arrive + 1)
			}
			return
		}
	}
	c.readQ = append(c.readQ, t)
}

// Pending reports queued transactions.
func (c *Controller) Pending() int { return len(c.readQ) + len(c.writeQ) }

// Tick runs one bus cycle: refresh maintenance, then at most one DRAM
// command chosen FR-FCFS with hits first, oldest first, reads prioritized
// outside write-drain episodes.
func (c *Controller) Tick(now clock.Cycle) {
	c.Stats.Ticks++
	c.Stats.ReadOccSum += uint64(len(c.readQ))
	c.Stats.WriteOccSum += uint64(len(c.writeQ))
	c.ch.MaintainRefresh(now)

	// Write-drain hysteresis.
	if !c.draining && len(c.writeQ) >= c.sys.Ctrl.WriteDrainHi {
		c.draining = true
		c.Stats.DrainEntered++
	}
	if c.draining && len(c.writeQ) <= c.sys.Ctrl.WriteDrainLo {
		c.draining = false
	}

	// FR-FCFS serves row hits first; with the hit-first pass disabled
	// the controller degrades to age-ordered FCFS (ablation knob).
	hf := !c.sys.Ctrl.HitFirstDisabled
	if c.draining {
		if (hf && c.tryQueue(now, c.writeQ, true, true)) || c.tryQueue(now, c.writeQ, true, false) ||
			(hf && c.tryQueue(now, c.readQ, false, true)) {
			return
		}
	} else {
		if (hf && c.tryQueue(now, c.readQ, false, true)) || c.tryQueue(now, c.readQ, false, false) ||
			(hf && c.tryQueue(now, c.writeQ, true, true)) {
			return
		}
		if len(c.readQ) == 0 && c.tryQueue(now, c.writeQ, true, false) {
			return
		}
	}

	c.maybeClosePage(now)
}

// tryQueue scans up to ScanLimit transactions oldest-first and issues the
// first issuable step. hitsOnly restricts the pass to transactions whose
// row is already open (FR of FR-FCFS).
func (c *Controller) tryQueue(now clock.Cycle, q []*Transaction, write, hitsOnly bool) bool {
	limit := c.sys.Ctrl.ScanLimit
	if limit > len(q) {
		limit = len(q)
	}
	// Starvation guard: once the queue head has waited too long, only it
	// (and row hits that cost nothing) may issue preparatory commands.
	starved := limit > 0 && now-q[0].Arrive > c.starveCK
	for i := 0; i < limit; i++ {
		t := q[i]
		if !c.ch.Available(t.Loc.Rank, now) {
			continue
		}
		step := c.ch.NextStep(t.target(), t.Write)
		if hitsOnly && !step.Hit {
			continue
		}
		if starved && i > 0 && !step.Hit {
			continue
		}
		if c.ch.EarliestIssue(step.Cmd) > now {
			continue
		}
		c.ch.Issue(step.Cmd, now)
		if step.Column {
			c.complete(t, now, q, i, write)
		}
		return true
	}
	return false
}

func (c *Controller) complete(t *Transaction, now clock.Cycle, q []*Transaction, idx int, write bool) {
	var dataAt clock.Cycle
	if write {
		dataAt = c.ch.WriteDataAt(now)
		c.Stats.WritesDone++
		c.writeQ = append(q[:idx], q[idx+1:]...)
	} else {
		dataAt = c.ch.ReadDataAt(now)
		c.Stats.ReadsDone++
		c.Stats.QueueLatency.Add(float64(now - t.Arrive))
		c.Stats.TotalLatency.Add(float64(dataAt - t.Arrive))
		c.readQ = append(q[:idx], q[idx+1:]...)
	}
	if t.Done != nil {
		t.Done(dataAt)
	}
}

// maybeClosePage implements the adaptive open-page timeout: periodically
// precharge rows that have been idle with no queued requester.
func (c *Controller) maybeClosePage(now clock.Cycle) {
	idle := clock.Cycle(c.sys.Ctrl.ClosePageIdleCK)
	if idle == 0 || now-c.lastCloseScan < 64 {
		return
	}
	c.lastCloseScan = now
	var chosen *dram.Command
	c.ch.IdleOpenRows(now, idle, func(cmd dram.Command) {
		if chosen != nil {
			return
		}
		if c.hasQueuedFor(cmd) {
			return
		}
		if c.ch.EarliestIssue(cmd) <= now {
			cc := cmd
			chosen = &cc
		}
	})
	if chosen != nil {
		c.ch.Issue(*chosen, now)
	}
}

// hasQueuedFor reports whether any queued transaction targets the open
// row the PRE command would close.
func (c *Controller) hasQueuedFor(cmd dram.Command) bool {
	match := func(t *Transaction) bool {
		l := t.Loc
		return l.Rank == cmd.Rank && l.Group == cmd.Group && l.Bank == cmd.Bank &&
			l.Sub == cmd.Sub && l.Row == cmd.Row
	}
	for _, t := range c.readQ {
		if match(t) {
			return true
		}
	}
	for _, t := range c.writeQ {
		if match(t) {
			return true
		}
	}
	return false
}

package memctrl

import (
	"testing"

	"eruca/internal/addrmap"
	"eruca/internal/clock"
	"eruca/internal/config"
	"eruca/internal/dram"
)

func newCtl(t *testing.T, sys *config.System) (*Controller, *addrmap.Mapper) {
	t.Helper()
	sys.Ctrl.RefreshEnabled = false
	m := addrmap.New(sys)
	ch := dram.NewChannel(sys, m.RowBits())
	return New(sys, ch), m
}

// drive runs the controller until the predicate is satisfied or the
// cycle budget expires.
func drive(t *testing.T, c *Controller, until func() bool, budget clock.Cycle) clock.Cycle {
	t.Helper()
	for now := clock.Cycle(0); now < budget; now++ {
		c.Tick(now)
		if until() {
			return now
		}
	}
	t.Fatalf("controller did not converge within %d cycles", budget)
	return 0
}

func loc(bank int, row uint32, col uint32) addrmap.Loc {
	return addrmap.Loc{Group: bank / 4, Bank: bank % 4, Row: row, Col: col}
}

func TestSingleReadCompletes(t *testing.T) {
	c, _ := newCtl(t, config.Baseline(config.DefaultBusMHz))
	var dataAt clock.Cycle
	c.Enqueue(&Transaction{Loc: loc(0, 5, 0), Done: func(at clock.Cycle) { dataAt = at }})
	drive(t, c, func() bool { return dataAt != 0 }, 1000)
	ct := config.Baseline(config.DefaultBusMHz).CT
	want := ct.RCD + ct.CL + ct.Burst // ACT at 0, RD at tRCD, data at +CL+burst
	if dataAt != want {
		t.Errorf("read data at %d, want %d", dataAt, want)
	}
	if c.Stats.ReadsDone != 1 {
		t.Errorf("reads done = %d", c.Stats.ReadsDone)
	}
}

// Row hits are served before older conflicting requests (FR-FCFS), but
// the starvation guard eventually promotes the conflicting one.
func TestRowHitFirst(t *testing.T) {
	c, _ := newCtl(t, config.Baseline(config.DefaultBusMHz))
	var order []int
	mk := func(id int, l addrmap.Loc) *Transaction {
		return &Transaction{Loc: l, Done: func(clock.Cycle) { order = append(order, id) }}
	}
	// Open row 5 via the first transaction.
	c.Enqueue(mk(0, loc(0, 5, 0)))
	drive(t, c, func() bool { return len(order) == 1 }, 1000)
	// Conflict (row 9) arrives before another hit (row 5).
	c.Enqueue(mk(1, loc(0, 9, 0)))
	c.Enqueue(mk(2, loc(0, 5, 1)))
	drive(t, c, func() bool { return len(order) == 3 }, 5000)
	if order[1] != 2 || order[2] != 1 {
		t.Errorf("service order = %v, want hit (2) before conflict (1)", order)
	}
}

func TestWriteDrainHysteresis(t *testing.T) {
	sys := config.Baseline(config.DefaultBusMHz)
	c, _ := newCtl(t, sys)
	done := 0
	for i := 0; i < sys.Ctrl.WriteDrainHi; i++ {
		c.Enqueue(&Transaction{Write: true, Loc: loc(i%16, uint32(i), 0), Done: func(clock.Cycle) { done++ }})
	}
	drive(t, c, func() bool { return len(c.writeQ) <= sys.Ctrl.WriteDrainLo }, 20000)
	if c.Stats.DrainEntered != 1 {
		t.Errorf("drain episodes = %d, want 1", c.Stats.DrainEntered)
	}
	if done == 0 {
		t.Error("no writes completed during drain")
	}
}

// Without drain pressure, reads are served even when older writes wait.
func TestReadsPriorityOverWrites(t *testing.T) {
	c, _ := newCtl(t, config.Baseline(config.DefaultBusMHz))
	var first string
	c.Enqueue(&Transaction{Write: true, Loc: loc(0, 5, 0), Done: func(clock.Cycle) {
		if first == "" {
			first = "write"
		}
	}})
	c.Enqueue(&Transaction{Loc: loc(1, 5, 0), Done: func(clock.Cycle) {
		if first == "" {
			first = "read"
		}
	}})
	drive(t, c, func() bool { return first != "" }, 2000)
	if first != "read" {
		t.Errorf("first completion = %s, want read", first)
	}
}

func TestReadForwardsFromWriteQueue(t *testing.T) {
	c, _ := newCtl(t, config.Baseline(config.DefaultBusMHz))
	l := loc(0, 5, 3)
	c.Enqueue(&Transaction{Write: true, Loc: l})
	var at clock.Cycle
	c.Enqueue(&Transaction{Loc: l, Arrive: 10, Done: func(a clock.Cycle) { at = a }})
	if at == 0 {
		t.Fatal("read not forwarded")
	}
	if c.Stats.Forwarded != 1 {
		t.Errorf("forwarded = %d", c.Stats.Forwarded)
	}
}

func TestQueueLatencyRecorded(t *testing.T) {
	c, _ := newCtl(t, config.Baseline(config.DefaultBusMHz))
	n := 0
	for i := 0; i < 8; i++ {
		c.Enqueue(&Transaction{Loc: loc(i, 5, 0), Done: func(clock.Cycle) { n++ }})
	}
	drive(t, c, func() bool { return n == 8 }, 5000)
	if c.Stats.QueueLatency.N() != 8 {
		t.Errorf("latency samples = %d", c.Stats.QueueLatency.N())
	}
	if c.Stats.QueueLatency.Mean() <= 0 {
		t.Error("zero mean queueing latency for a burst")
	}
}

// The adaptive close-page timeout eventually precharges an idle row.
func TestClosePageTimeout(t *testing.T) {
	sys := config.Baseline(config.DefaultBusMHz)
	c, _ := newCtl(t, sys)
	n := 0
	c.Enqueue(&Transaction{Loc: loc(0, 5, 0), Done: func(clock.Cycle) { n++ }})
	drive(t, c, func() bool { return n == 1 }, 1000)
	deadline := clock.Cycle(sys.Ctrl.ClosePageIdleCK) * 4
	for now := clock.Cycle(100); now < 100+deadline; now++ {
		c.Tick(now)
	}
	if c.Channel().Stats.Pres == 0 {
		t.Error("idle open row was never closed")
	}
}

// Capacity checks.
func TestCanAccept(t *testing.T) {
	sys := config.Baseline(config.DefaultBusMHz)
	c, _ := newCtl(t, sys)
	for i := 0; i < sys.Ctrl.ReadQueueDepth; i++ {
		if !c.CanAccept(false) {
			t.Fatalf("queue refused at %d/%d", i, sys.Ctrl.ReadQueueDepth)
		}
		c.Enqueue(&Transaction{Loc: loc(i%16, uint32(i/16), 0)})
	}
	if c.CanAccept(false) {
		t.Error("full read queue accepted")
	}
	if !c.CanAccept(true) {
		t.Error("empty write queue refused")
	}
}

// End-to-end under a VSB system: plane conflicts are surfaced in channel
// stats when naive sub-banking thrashes.
func TestVSBPlaneConflictEndToEnd(t *testing.T) {
	sys := config.VSB(4, false, false, false, config.DefaultBusMHz)
	c, _ := newCtl(t, sys)
	n := 0
	// Same plane (same row MSBs), both sub-banks, alternating.
	for i := 0; i < 10; i++ {
		c.Enqueue(&Transaction{
			Loc:  addrmap.Loc{Sub: i % 2, Row: uint32(0x100 + 8*(i%2)), Col: uint32(i)},
			Done: func(clock.Cycle) { n++ },
		})
	}
	drive(t, c, func() bool { return n == 10 }, 50000)
	if c.Channel().Stats.PlaneConfPre == 0 {
		t.Error("alternating same-plane sub-bank stream caused no plane conflicts")
	}
}

package memctrl

import (
	"fmt"

	"eruca/internal/addrmap"
	"eruca/internal/clock"
	"eruca/internal/snapshot"
)

// Snapshot serializes the controller's mutable state: both transaction
// queues (in order — FR-FCFS ages by queue position), the write-drain
// and close-page bookkeeping, fault-injection cursors, and Stats
// including the reservoir latency samplers. Transaction Done closures
// cannot serialize; each transaction records its Tag instead and
// Restore rebinds completion via the caller's newTxn callback.
func (c *Controller) Snapshot(e *snapshot.Encoder) {
	snapshotTxnQueue(e, c.readQ)
	snapshotTxnQueue(e, c.writeQ)
	e.Bool(c.draining)
	e.I64(int64(c.starveCK))
	e.I64(int64(c.lastCloseScan))
	e.I64(int64(c.blackoutUntil))
	e.F64(c.dropRate)
	if c.dropSrc != nil {
		e.Bool(true)
		seed, draws := c.dropSrc.State()
		e.I64(seed)
		e.U64(draws)
	} else {
		e.Bool(false)
	}
	e.U64(c.faultDrops)

	e.U64(c.Stats.ReadsDone)
	e.U64(c.Stats.WritesDone)
	c.Stats.QueueLatency.Snapshot(e)
	c.Stats.TotalLatency.Snapshot(e)
	e.U64(c.Stats.DrainEntered)
	e.U64(c.Stats.Forwarded)
	e.U64(c.Stats.Ticks)
	e.U64(c.Stats.ReadOccSum)
	e.U64(c.Stats.WriteOccSum)
}

func snapshotTxnQueue(e *snapshot.Encoder, q []*Transaction) {
	e.Int(len(q))
	for _, t := range q {
		e.Bool(t.Write)
		e.Int(t.Loc.Channel)
		e.Int(t.Loc.Rank)
		e.Int(t.Loc.Group)
		e.Int(t.Loc.Bank)
		e.Int(t.Loc.Sub)
		e.U32(t.Loc.Row)
		e.U32(t.Loc.Col)
		e.I64(int64(t.Arrive))
		e.U64(t.Tag)
		e.Bool(t.Done != nil)
	}
}

// Restore rebuilds the controller from a Snapshot stream. newTxn is
// called once per queued transaction, in queue order, with the
// serialized fields; it must return the transaction to enqueue (with
// Done rebound as the caller sees fit). Queue order is preserved
// exactly — restore appends directly, bypassing Enqueue's write
// forwarding, so a restored queue schedules identically to the
// original.
func (c *Controller) Restore(d *snapshot.Decoder,
	newTxn func(write bool, loc addrmap.Loc, arrive clock.Cycle, tag uint64, hadDone bool) *Transaction,
) error {
	var err error
	c.readQ, err = restoreTxnQueue(d, newTxn, false)
	if err != nil {
		return err
	}
	c.writeQ, err = restoreTxnQueue(d, newTxn, true)
	if err != nil {
		return err
	}
	c.draining = d.Bool()
	c.starveCK = clock.Cycle(d.I64())
	c.lastCloseScan = clock.Cycle(d.I64())
	c.blackoutUntil = clock.Cycle(d.I64())
	c.dropRate = d.F64()
	if d.Bool() {
		seed := d.I64()
		draws := d.U64()
		if d.Err() == nil {
			c.InjectDropRate(c.dropRate, seed)
			if c.dropSrc != nil {
				c.dropSrc.Restore(seed, draws)
			}
		}
	} else if c.dropRate <= 0 {
		c.dropRNG, c.dropSrc = nil, nil
	}
	c.faultDrops = d.U64()

	c.Stats.ReadsDone = d.U64()
	c.Stats.WritesDone = d.U64()
	c.Stats.QueueLatency.Restore(d)
	c.Stats.TotalLatency.Restore(d)
	c.Stats.DrainEntered = d.U64()
	c.Stats.Forwarded = d.U64()
	c.Stats.Ticks = d.U64()
	c.Stats.ReadOccSum = d.U64()
	c.Stats.WriteOccSum = d.U64()

	// scanBound is transient (recomputed by the next Tick); park it at
	// the sentinel so a NextEventCycle before the first Tick is sane.
	c.scanBound = farFuture
	return d.Err()
}

func restoreTxnQueue(d *snapshot.Decoder,
	newTxn func(write bool, loc addrmap.Loc, arrive clock.Cycle, tag uint64, hadDone bool) *Transaction,
	wantWrite bool,
) ([]*Transaction, error) {
	n := d.Count(40)
	q := make([]*Transaction, 0, n)
	for i := 0; i < n; i++ {
		write := d.Bool()
		var loc addrmap.Loc
		loc.Channel = d.Int()
		loc.Rank = d.Int()
		loc.Group = d.Int()
		loc.Bank = d.Int()
		loc.Sub = d.Int()
		loc.Row = d.U32()
		loc.Col = d.U32()
		arrive := clock.Cycle(d.I64())
		tag := d.U64()
		hadDone := d.Bool()
		if d.Err() != nil {
			return nil, d.Err()
		}
		if write != wantWrite {
			return nil, fmt.Errorf("memctrl: snapshot %s-queue entry %d has write=%v", qname(wantWrite), i, write)
		}
		t := newTxn(write, loc, arrive, tag, hadDone)
		if t == nil {
			return nil, fmt.Errorf("memctrl: restore callback returned nil for %s-queue entry %d", qname(wantWrite), i)
		}
		q = append(q, t)
	}
	return q, nil
}

func qname(write bool) string {
	if write {
		return "write"
	}
	return "read"
}

package memctrl

import (
	"eruca/internal/clock"
	"eruca/internal/rng"
)

// This file holds the fault-injection hooks the chaos harness
// (internal/faults) drives, plus the introspection accessors the
// watchdog's deadlock reports use. The hooks perturb *scheduling* only
// — every command that does issue remains protocol-legal — so they
// exercise the watchdog and starvation paths rather than the protocol
// checker.

// InjectBlackout suspends all transaction scheduling until the given
// bus cycle (use a far-future cycle for a permanent stall). Refresh
// maintenance keeps running, so the perturbation models a wedged
// scheduler rather than a dead channel. Queued work then ages without
// progress, which the forward-progress watchdog detects.
func (c *Controller) InjectBlackout(until clock.Cycle) {
	c.blackoutUntil = until
}

// Blackout reports the current blackout horizon (zero when none).
func (c *Controller) BlackoutUntil() clock.Cycle { return c.blackoutUntil }

// InjectDropRate makes the controller skip scheduling on each cycle
// with the given probability, using a private deterministic stream —
// a protocol-legal perturbation that stresses latency ceilings and the
// fast-forward/watchdog composition without ever producing an illegal
// command.
func (c *Controller) InjectDropRate(rate float64, seed int64) {
	if rate <= 0 {
		c.dropRate, c.dropRNG, c.dropSrc = 0, nil, nil
		return
	}
	if rate > 1 {
		rate = 1
	}
	c.dropRate = rate
	c.dropRNG, c.dropSrc = rng.New(seed)
}

// DroppedTicks reports how many scheduling opportunities the drop-rate
// injector has skipped.
func (c *Controller) DroppedTicks() uint64 { return c.faultDrops }

// faultGate runs the injected scheduling perturbations for one cycle.
// It reports true when the cycle's scheduling must be skipped, and
// keeps scanBound tight so the fast-forwarding run loop never skips
// past the perturbation window.
func (c *Controller) faultGate(now clock.Cycle) bool {
	if now < c.blackoutUntil {
		if c.blackoutUntil < c.scanBound {
			c.scanBound = c.blackoutUntil
		}
		return true
	}
	if c.dropRate > 0 && c.dropRNG.Float64() < c.dropRate {
		c.faultDrops++
		// The dropped opportunity may have been issuable: resume next
		// cycle so the command stream only shifts, never stalls.
		c.scanBound = now + 1
		return true
	}
	return false
}

// QueueDepths reports the current read- and write-queue occupancy (for
// deadlock reports).
func (c *Controller) QueueDepths() (reads, writes int) {
	return len(c.readQ), len(c.writeQ)
}

// OldestReadAge reports how many bus cycles the oldest queued read has
// been waiting (zero when the read queue is empty) — the watchdog's
// per-transaction latency-ceiling input.
func (c *Controller) OldestReadAge(now clock.Cycle) clock.Cycle {
	if len(c.readQ) == 0 {
		return 0
	}
	return now - c.readQ[0].Arrive
}

// OldestWriteAge reports the age of the oldest queued write.
func (c *Controller) OldestWriteAge(now clock.Cycle) clock.Cycle {
	if len(c.writeQ) == 0 {
		return 0
	}
	return now - c.writeQ[0].Arrive
}

package dram

import (
	"fmt"

	"eruca/internal/clock"
	"eruca/internal/config"
	"eruca/internal/core"
)

// Auditor independently re-checks the DDR4 protocol over an issued
// command stream. It is a second implementation of the timing rules,
// deliberately written as post-hoc checks over the command history
// rather than as next-allowed registers, so that a bug in the Channel's
// scheduling logic cannot hide in the Auditor too.
//
// Attach with Channel.Attach and call Violations at the end of a run;
// simulation tests run every preset under audit.
type Auditor struct {
	ct   config.CycleTiming
	sch  config.Scheme
	geom config.Geometry

	history    []AuditedCommand
	violations []Violation

	// open tracks row state per (rank, group, bank, sub, slot).
	open map[auditKey]*auditRow
	// blockedUntil tracks per-rank refresh blackouts.
	blockedUntil map[int]clock.Cycle
	// lastRef tracks the last REF per rank for the refresh-interval
	// accounting; refreshOn gates the check.
	lastRef   map[int]clock.Cycle
	refreshOn bool

	planes *core.PlaneLogic
}

type auditKey struct {
	rank, group, bank, sub, slot int
}

// AuditedCommand is one observed command with its issue cycle.
type AuditedCommand struct {
	Cmd Command
	At  clock.Cycle
}

type auditRow struct {
	row    uint32
	actAt  clock.Cycle
	lastRd clock.Cycle
	lastWr clock.Cycle
	preAt  clock.Cycle
	active bool
}

// NewAuditor builds an auditor for one channel's configuration.
func NewAuditor(sys *config.System) *Auditor {
	a := &Auditor{
		ct: sys.CT, sch: sys.Scheme, geom: sys.Geom,
		open:         make(map[auditKey]*auditRow),
		blockedUntil: make(map[int]clock.Cycle),
		lastRef:      make(map[int]clock.Cycle),
		refreshOn:    sys.Ctrl.RefreshEnabled,
	}
	if sys.Scheme.HasPlanes() && sys.Scheme.Mode != config.SubBankMASA {
		rowBits := sys.Geom.RowBits
		if sys.Scheme.Mode != config.SubBankPaired {
			rowBits--
		}
		a.planes = core.NewPlaneLogic(sys.Scheme, rowBits)
	}
	return a
}

func (a *Auditor) fail(at clock.Cycle, rule, format string, args ...any) {
	if len(a.violations) < 32 {
		a.violations = append(a.violations, Violation{
			At: at, Rule: rule, Msg: fmt.Sprintf(format, args...),
		})
	}
}

// Violations reports every detected protocol violation as formatted
// strings (the historical interface; Structured exposes the full record).
func (a *Auditor) Violations() []string {
	var out []string
	for _, v := range a.violations {
		out = append(out, v.Error())
	}
	return out
}

// Structured reports every detected protocol violation with its rule tag
// and cycle. The slice is append-only: callers may track a consumed
// prefix to drain new violations incrementally.
func (a *Auditor) Structured() []Violation { return a.violations }

// Finish runs the end-of-stream checks: the refresh-interval accounting
// flags a rank whose last REF (or, for a run long enough to need one,
// whose first REF) is more than twice tREFI in the past — the signature
// of a lost or indefinitely delayed refresh.
func (a *Auditor) Finish(end clock.Cycle) {
	if !a.refreshOn || a.ct.REFI <= 0 {
		return
	}
	for r := 0; r < a.geom.Ranks; r++ {
		if gap := end - a.lastRef[r]; gap > 2*a.ct.REFI {
			a.fail(end, "tREFI", "refresh starvation: rank %d last REF %d cycles ago (tREFI %d)", r, gap, a.ct.REFI)
		}
	}
}

// Commands reports how many commands were observed.
func (a *Auditor) Commands() int { return len(a.history) }

// Events exposes the full audited command stream in issue order. Tests
// use it to assert that the fast-forwarding run loop issues a
// cycle-identical command stream to the plain per-cycle loop.
func (a *Auditor) Events() []AuditedCommand { return a.history }

// Observe records and checks one issued command.
func (a *Auditor) Observe(c Command, at clock.Cycle) {
	if at < a.blockedUntil[c.Rank] && c.Kind != CmdREF {
		a.fail(at, "tRFC", "command during tRFC blackout (until %d): %v", a.blockedUntil[c.Rank], c)
	}
	switch c.Kind {
	case CmdPREA:
		// Pre-refresh precharge-all: close every row of the rank.
		for k, st := range a.open {
			if k.rank == c.Rank && st.active {
				st.active = false
				st.preAt = at
			}
		}
		a.history = append(a.history, AuditedCommand{c, at})
		return
	case CmdREF:
		// Refresh-interval accounting: consecutive REFs to one rank must
		// stay within tREFI plus scheduling slack (the controller may defer
		// a refresh behind open-row draining, but never a whole interval).
		if a.refreshOn && a.ct.REFI > 0 {
			if gap := at - a.lastRef[c.Rank]; gap > 2*a.ct.REFI {
				a.fail(at, "tREFI", "refresh interval overrun: rank %d REF %d cycles after previous (tREFI %d)", c.Rank, gap, a.ct.REFI)
			}
		}
		a.lastRef[c.Rank] = at
		a.blockedUntil[c.Rank] = at + a.ct.RFC
		a.history = append(a.history, AuditedCommand{c, at})
		return
	}
	k := auditKey{c.Rank, c.Group, c.Bank, c.Sub, c.Slot}
	st := a.open[k]
	if st == nil {
		st = &auditRow{actAt: never, lastRd: never, lastWr: never, preAt: never}
		a.open[k] = st
	}

	switch c.Kind {
	case CmdACT:
		if st.active {
			a.fail(at, "ACT-on-open", "ACT to open slot %v", c)
		}
		if st.preAt != never && at-st.preAt < a.ct.RP {
			a.fail(at, "tRP", "tRP violation: ACT %d after PRE (need %d): %v", at-st.preAt, a.ct.RP, c)
		}
		if st.actAt != never && at-st.actAt < a.ct.RC {
			a.fail(at, "tRC", "tRC violation: ACT %d after ACT (need %d): %v", at-st.actAt, a.ct.RC, c)
		}
		a.checkActRate(c, at)
		a.checkPlaneInvariant(c, at)
		st.active = true
		st.row = c.Row
		st.actAt = at
	case CmdPRE:
		if !st.active {
			a.fail(at, "PRE-on-closed", "PRE to closed slot %v", c)
		}
		if st.actAt != never && at-st.actAt < a.ct.RAS {
			a.fail(at, "tRAS", "tRAS violation: PRE %d after ACT (need %d): %v", at-st.actAt, a.ct.RAS, c)
		}
		if st.lastRd != never && at-st.lastRd < a.ct.RTP {
			a.fail(at, "tRTP", "tRTP violation: PRE %d after RD (need %d): %v", at-st.lastRd, a.ct.RTP, c)
		}
		if st.lastWr != never && at-st.lastWr < a.ct.CWL+a.ct.Burst+a.ct.WR {
			a.fail(at, "tWR", "tWR violation: PRE %d after WR: %v", at-st.lastWr, c)
		}
		st.active = false
		st.preAt = at
	case CmdRD, CmdWR:
		if !st.active || st.row != c.Row {
			a.fail(at, "row-mismatch", "column command to closed/mismatched row: %v", c)
		}
		if st.actAt != never && at-st.actAt < a.ct.RCD {
			a.fail(at, "tRCD", "tRCD violation: column %d after ACT (need %d): %v", at-st.actAt, a.ct.RCD, c)
		}
		a.checkColumnSpacing(c, at)
		a.checkDataBus(c, at)
		if c.Kind == CmdRD {
			st.lastRd = at
		} else {
			st.lastWr = at
		}
	}
	a.history = append(a.history, AuditedCommand{c, at})
}

// checkActRate enforces tRRD and tFAW per rank over the history.
func (a *Auditor) checkActRate(c Command, at clock.Cycle) {
	count := 0
	for i := len(a.history) - 1; i >= 0; i-- {
		ev := a.history[i]
		if ev.Cmd.Kind != CmdACT || ev.Cmd.Rank != c.Rank {
			continue
		}
		if count == 0 && at-ev.At < a.ct.RRD {
			a.fail(at, "tRRD", "tRRD violation: ACT %d after ACT (need %d): %v", at-ev.At, a.ct.RRD, c)
		}
		count++
		if count == 4 {
			if at-ev.At < a.ct.FAW {
				a.fail(at, "tFAW", "tFAW violation: 5th ACT %d after 4-back (need %d): %v", at-ev.At, a.ct.FAW, c)
			}
			return
		}
		if at-ev.At > a.ct.FAW {
			return
		}
	}
}

// checkColumnSpacing enforces tCCD_S/tCCD_L, bank-group constraints,
// DDB windows and write-to-read turnarounds.
func (a *Auditor) checkColumnSpacing(c Command, at clock.Cycle) {
	read := c.Kind == CmdRD
	sameGroupCount := 0
	for i := len(a.history) - 1; i >= 0; i-- {
		ev := a.history[i]
		if at-ev.At > a.ct.TWTRW+a.ct.FAW {
			break
		}
		if ev.Cmd.Kind != CmdRD && ev.Cmd.Kind != CmdWR {
			continue
		}
		gap := at - ev.At
		if gap < a.ct.CCDS {
			a.fail(at, "tCCD_S", "tCCD_S violation: column %d after column (need %d): %v", gap, a.ct.CCDS, c)
		}
		sameBank := ev.Cmd.Rank == c.Rank && ev.Cmd.Group == c.Group && ev.Cmd.Bank == c.Bank
		sameGroup := ev.Cmd.Rank == c.Rank && ev.Cmd.Group == c.Group
		if sameBank && gap < a.ct.CCDL {
			a.fail(at, "tCCD_L", "tCCD_L(bank) violation: column %d after column (need %d): %v", gap, a.ct.CCDL, c)
		}
		if sameGroup && !a.sch.DDB && a.sch.BankGrouping && gap < a.ct.CCDL {
			a.fail(at, "tCCD_L", "tCCD_L(group) violation: column %d after column (need %d): %v", gap, a.ct.CCDL, c)
		}
		// DDB two-command windows: at most two same-direction column
		// commands per tTCW window within a bank group.
		if sameGroup && a.sch.DDB && a.ct.TwoCommandWindowsOn &&
			(ev.Cmd.Kind == c.Kind) && gap < a.ct.TCW {
			sameGroupCount++
			if sameGroupCount >= 2 {
				a.fail(at, "tTCW", "tTCW violation: third same-direction column within %d: %v", a.ct.TCW, c)
			}
		}
		// Write-to-read turnaround.
		if read && ev.Cmd.Kind == CmdWR {
			dataEnd := ev.At + a.ct.CWL + a.ct.Burst
			if at-dataEnd < a.ct.WTRS && at > dataEnd-a.ct.WTRS {
				a.fail(at, "tWTR_S", "tWTR_S violation: RD %d after WR data end: %v", at-dataEnd, c)
			}
			if sameBank && at < dataEnd+a.ct.WTRL {
				a.fail(at, "tWTR_L", "tWTR_L violation: RD %d after same-bank WR data end: %v", at-dataEnd, c)
			}
		}
	}
}

// checkDataBus verifies that data bursts never overlap on the shared
// external bus.
func (a *Auditor) checkDataBus(c Command, at clock.Cycle) {
	start, end := a.dataWindow(c.Kind, at)
	for i := len(a.history) - 1; i >= 0; i-- {
		ev := a.history[i]
		if at-ev.At > a.ct.CL+a.ct.Burst+a.ct.CWL {
			break
		}
		if ev.Cmd.Kind != CmdRD && ev.Cmd.Kind != CmdWR {
			continue
		}
		s2, e2 := a.dataWindow(ev.Cmd.Kind, ev.At)
		if start < e2 && s2 < end {
			a.fail(at, "bus-overlap", "data bus overlap: [%d,%d) with [%d,%d): %v", start, end, s2, e2, c)
		}
	}
}

func (a *Auditor) dataWindow(k CmdKind, at clock.Cycle) (clock.Cycle, clock.Cycle) {
	if k == CmdRD {
		return at + a.ct.CL, at + a.ct.CL + a.ct.Burst
	}
	return at + a.ct.CWL, at + a.ct.CWL + a.ct.Burst
}

// checkPlaneInvariant enforces the core ERUCA rule: the two sub-banks of
// one bank never simultaneously hold rows with different shared-latch
// values in the same plane.
func (a *Auditor) checkPlaneInvariant(c Command, at clock.Cycle) {
	if a.sch.SubBanksPerBank() < 2 {
		return
	}
	otherKey := auditKey{c.Rank, c.Group, c.Bank, 1 - c.Sub, c.Slot}
	other := a.open[otherKey]
	if other == nil || !other.active {
		return
	}
	if a.sch.Mode == config.SubBankMASA {
		// Stacked MASA: same slot implies shared latches; the Channel's
		// planes logic is checked by its own tests.
		return
	}
	pl := a.planes
	if pl.PlaneID(c.Row, c.Sub) == pl.PlaneID(other.row, 1-c.Sub) &&
		pl.Latch(c.Row) != pl.Latch(other.row) {
		a.fail(at, "plane-invariant", "plane invariant violation: ACT %#x in sub %d while sub %d holds %#x in the same plane",
			c.Row, c.Sub, 1-c.Sub, other.row)
	}
}

package dram

import (
	"eruca/internal/clock"
	"eruca/internal/core"
)

// rowSlot is one openable row buffer: a plain (sub-)bank has one, a MASA
// (sub-)bank has one per subarray group.
type rowSlot struct {
	active bool
	row    uint32

	rdyAct clock.Cycle // earliest ACT (tRP after the slot's last PRE, tRC after last ACT)
	rdyCol clock.Cycle // earliest RD/WR (tRCD after ACT)
	rdyPre clock.Cycle // earliest PRE (tRAS after ACT, tRTP after RD, data+tWR after WR)

	lastUse clock.Cycle // last ACT or column command, for the close-page timeout
	actAt   clock.Cycle // cycle of the opening ACT, for the row-open-lifetime histogram
}

// subBank is one independently activatable sub-bank (a full bank when the
// scheme has no sub-banking).
type subBank struct {
	slots []rowSlot
	// sel is the subarray slot currently selected for the column path;
	// switching costs tSA (MASA only, Sec. III-A).
	sel int
	// openCount tracks active slots for plane bookkeeping and energy.
	openCount int
}

func newSubBank(slots int) *subBank {
	sb := &subBank{slots: make([]rowSlot, slots)}
	for i := range sb.slots {
		sb.slots[i] = rowSlot{rdyAct: 0, rdyCol: never, rdyPre: never}
	}
	return sb
}

// openRow reports the single open row of a one-slot sub-bank (plane
// bookkeeping is only defined for those).
func (sb *subBank) openRow() (uint32, bool) {
	if sb.slots[0].active {
		return sb.slots[0].row, true
	}
	return 0, false
}

// state summarizes the sub-bank for core.Decide.
func (sb *subBank) state() core.SubState {
	row, ok := sb.openRow()
	return core.SubState{Active: ok, Row: row}
}

// bank is one physical bank (or one paired bank), holding the sub-banks
// that share its plane latches.
type bank struct {
	subs []*subBank

	// lastCol is the bank's last column command: the GBLs are occupied
	// for one DRAM core clock per access and are shared within a bank
	// (tCCD_L "same bank" in the paper's timing table), so column
	// commands to one bank — even to different sub-banks or subarray
	// groups — are at least tCCD_L apart.
	lastCol clock.Cycle
	// lastWrData is the end of the bank's last write burst, for the
	// same-bank tWTR_L write-to-read turnaround.
	lastWrData clock.Cycle
	// colCount counts column commands served, for utilization profiles.
	colCount uint64
}

// group is one bank group with its shared chip-global bus resources.
type group struct {
	banks []*bank

	// lastCol enforces tCCD_L within the group when bank grouping is on
	// and DDB is off.
	lastCol clock.Cycle
	// lastWrData is the end of the last write burst in the group, for
	// tWTR_L.
	lastWrData clock.Cycle
	// ddb holds the DDB two-command windows when the scheme enables them.
	ddb core.DDBWindow
}

// rank is one rank with its ACT-rate and refresh constraints.
type rank struct {
	groups []*group

	// pairDDB holds the two-command windows of the non-Combo DDB
	// variant, one per vertically-adjacent bank-group pair (Sec. V).
	pairDDB []core.DDBWindow

	lastAct  clock.Cycle
	faw      [4]clock.Cycle // timestamps of the last four ACTs
	fawIdx   int
	openSubs int // total open slots across the rank, for background energy

	lastWrData clock.Cycle // channel... per-rank tWTR_S base

	// Refresh bookkeeping.
	nextRefresh  clock.Cycle
	blockedUntil clock.Cycle // rank unusable during tRFC
	refPending   bool        // refresh due, PREA phase in progress
	preaAt       clock.Cycle // cycle the pre-refresh PREA was performed

	// Background-energy integration.
	lastEnergyAt clock.Cycle
	activeAccum  uint64
}

func (r *rank) observe(now clock.Cycle, st *Stats) {
	if now <= r.lastEnergyAt {
		return
	}
	d := uint64(now - r.lastEnergyAt)
	st.AllCycles += d
	if r.openSubs > 0 {
		st.ActiveCycles += d
	}
	r.lastEnergyAt = now
}

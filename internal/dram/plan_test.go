package dram

import (
	"testing"

	"eruca/internal/clock"
	"eruca/internal/config"
)

func vsbCh(t *testing.T, planes int, ewlr, rap, ddb bool) (*Channel, config.CycleTiming) {
	return testChannel(t, config.VSB(planes, ewlr, rap, ddb, config.DefaultBusMHz))
}

// run drives a transaction to its column command, issuing every
// preparatory step at its earliest cycle, and returns the issue cycle of
// the column command plus the steps taken.
func run(t *testing.T, ch *Channel, tgt Target, write bool, from clock.Cycle) (clock.Cycle, []Step) {
	t.Helper()
	var steps []Step
	for i := 0; i < 10; i++ {
		st := ch.NextStep(tgt, write)
		steps = append(steps, st)
		e := ch.EarliestIssue(st.Cmd)
		if e < from {
			e = from
		}
		ch.Issue(st.Cmd, e)
		from = e
		if st.Column {
			return e, steps
		}
	}
	t.Fatalf("transaction did not converge: %+v", steps)
	return 0, nil
}

func TestBaselineFlow(t *testing.T) {
	ch, _ := baselineCh(t)
	tgt := Target{Row: 0x42}
	_, steps := run(t, ch, tgt, false, 0)
	if len(steps) != 2 || steps[0].Cmd.Kind != CmdACT || steps[1].Cmd.Kind != CmdRD {
		t.Fatalf("closed-bank flow = %+v", steps)
	}
	// Second access to the same row: single-step hit.
	_, steps = run(t, ch, tgt, false, 0)
	if len(steps) != 1 || !steps[0].Hit {
		t.Fatalf("row-hit flow = %+v", steps)
	}
	// Conflict: PRE, ACT, RD.
	_, steps = run(t, ch, Target{Row: 0x99}, false, 0)
	if len(steps) != 3 || steps[0].Cmd.Kind != CmdPRE || steps[1].Cmd.Kind != CmdACT {
		t.Fatalf("conflict flow = %+v", steps)
	}
}

// Two VSB sub-banks in different planes coexist: no precharge between
// them, two open rows in one physical bank.
func TestVSBSubBankParallelism(t *testing.T) {
	ch, _ := vsbCh(t, 4, false, false, false)
	// Rows in different planes (high bits differ).
	run(t, ch, Target{Sub: 0, Row: 0x0100}, false, 0)
	_, steps := run(t, ch, Target{Sub: 1, Row: 0x4100}, false, 0)
	for _, s := range steps {
		if s.Cmd.Kind == CmdPRE {
			t.Fatalf("cross-plane sub-bank access precharged: %+v", steps)
		}
	}
	if ch.Stats.Pres != 0 {
		t.Errorf("pres = %d, want 0", ch.Stats.Pres)
	}
}

// Same plane, naive VSB: the partner sub-bank must be precharged and the
// precharge is tagged as a plane conflict (Fig. 13b metric).
func TestVSBPlaneConflict(t *testing.T) {
	ch, _ := vsbCh(t, 4, false, false, false)
	run(t, ch, Target{Sub: 0, Row: 0x0100}, false, 0)
	_, steps := run(t, ch, Target{Sub: 1, Row: 0x0200}, false, 0)
	if steps[0].Cmd.Kind != CmdPRE || steps[0].Cmd.Sub != 0 || !steps[0].Cmd.PlaneConflict {
		t.Fatalf("plane conflict flow = %+v", steps)
	}
	if ch.Stats.PlaneConfPre != 1 {
		t.Errorf("plane-conflict pres = %d, want 1", ch.Stats.PlaneConfPre)
	}
}

// EWLR: same plane, same shared-latch value -> activate directly, flag
// the EWLR hit. EWLR alone uses PlaneBitsLow: plane = row[1:0], offset =
// row[4:2].
func TestVSBEWLRHit(t *testing.T) {
	ch, _ := vsbCh(t, 4, true, false, false)
	run(t, ch, Target{Sub: 0, Row: 0x0104}, false, 0)
	_, steps := run(t, ch, Target{Sub: 1, Row: 0x0110}, false, 0)
	if len(steps) != 2 || steps[0].Cmd.Kind != CmdACT || !steps[0].Cmd.EWLRHit {
		t.Fatalf("EWLR flow = %+v", steps)
	}
	if ch.Stats.ActsEWLRHit != 1 {
		t.Errorf("EWLR hits = %d, want 1", ch.Stats.ActsEWLRHit)
	}
}

// RAP: same row MSBs in the two sub-banks land in different planes, so
// naive-conflicting rows coexist.
func TestVSBRAPAvoidsConflict(t *testing.T) {
	naive, _ := vsbCh(t, 4, false, false, false)
	run(t, naive, Target{Sub: 0, Row: 0x0100}, false, 0)
	_, steps := run(t, naive, Target{Sub: 1, Row: 0x0200}, false, 0)
	if steps[0].Cmd.Kind != CmdPRE {
		t.Fatal("expected naive conflict as control")
	}

	rap, _ := vsbCh(t, 4, false, true, false)
	run(t, rap, Target{Sub: 0, Row: 0x0100}, false, 0)
	_, steps = run(t, rap, Target{Sub: 1, Row: 0x0200}, false, 0)
	for _, s := range steps {
		if s.Cmd.Kind == CmdPRE {
			t.Fatalf("RAP failed to separate planes: %+v", steps)
		}
	}
}

// Partial precharge: closing a row whose EWLR partner stays open tags the
// PRE as partial.
func TestVSBPartialPrecharge(t *testing.T) {
	ch, _ := vsbCh(t, 4, true, false, false)
	run(t, ch, Target{Sub: 0, Row: 0x0104}, false, 0)
	run(t, ch, Target{Sub: 1, Row: 0x0110}, false, 0) // EWLR hit pair
	// Now force sub 0 to a different row: its PRE must be partial.
	_, steps := run(t, ch, Target{Sub: 0, Row: 0x4000}, false, 0)
	if steps[0].Cmd.Kind != CmdPRE || !steps[0].Cmd.Partial {
		t.Fatalf("partial precharge flow = %+v", steps)
	}
	if ch.Stats.PartialPres != 1 {
		t.Errorf("partial pres = %d, want 1", ch.Stats.PartialPres)
	}
}

// MASA: rows in different subarray groups coexist in one bank, and the
// second access pays the tSA switch penalty on its column command.
func TestMASASubarrays(t *testing.T) {
	ch, ct := testChannel(t, config.MASA(8, config.DefaultBusMHz))
	rowA := uint32(0) // slot 0
	rowB := uint32(1) // slot 1 (interleaved subarray mapping)
	run(t, ch, Target{Row: rowA}, false, 0)
	_, steps := run(t, ch, Target{Row: rowB}, false, 0)
	for _, s := range steps {
		if s.Cmd.Kind == CmdPRE {
			t.Fatalf("MASA cross-subarray access precharged: %+v", steps)
		}
	}
	// Row A is still open: a hit, but switching back costs tSA.
	stA := ch.NextStep(Target{Row: rowA}, false)
	if !stA.Hit {
		t.Fatal("row A no longer open under MASA")
	}
	eSwitch := ch.EarliestIssue(stA.Cmd)
	stB := ch.NextStep(Target{Row: rowB}, false)
	eStay := ch.EarliestIssue(stB.Cmd)
	if eSwitch != eStay+ct.SA {
		t.Errorf("subarray switch penalty = %d, want tSA = %d", eSwitch-eStay, ct.SA)
	}
}

// Same subarray group, different rows: ordinary conflict inside MASA.
func TestMASASameSubarrayConflicts(t *testing.T) {
	ch, _ := testChannel(t, config.MASA(8, config.DefaultBusMHz))
	run(t, ch, Target{Row: 0}, false, 0)
	_, steps := run(t, ch, Target{Row: 8}, false, 0) // same slot, different row
	if steps[0].Cmd.Kind != CmdPRE {
		t.Fatalf("same-subarray conflict flow = %+v", steps)
	}
}

// Stacked MASA+ERUCA: the two sub-banks coexist in one subarray when the
// MWL matches (EWLR), conflict otherwise.
func TestStackedMASAERUCA(t *testing.T) {
	// Stacked scheme: PlaneBitsHigh with EWLR -> offset = row[13:11];
	// MASA slot = row[2:0] (interleaved). Rows 0x0000 and 0x0800 share
	// slot 0 and the shared-latch value (differ only in bit 11).
	ch, _ := testChannel(t, config.MASAERUCA(8, 4, true, config.DefaultBusMHz))
	run(t, ch, Target{Sub: 0, Row: 0x0000}, false, 0)
	_, steps := run(t, ch, Target{Sub: 1, Row: 0x0800}, false, 0)
	if steps[0].Cmd.Kind != CmdACT || !steps[0].Cmd.EWLRHit {
		t.Fatalf("stacked EWLR flow = %+v", steps)
	}
	// Different latch value, same subarray slot: plane conflict.
	_, steps = run(t, ch, Target{Sub: 1, Row: 0x0400}, false, 0)
	var sawConflictPre bool
	for _, s := range steps {
		if s.Cmd.Kind == CmdPRE && s.Cmd.PlaneConflict {
			sawConflictPre = true
		}
	}
	_ = sawConflictPre // sub 1 itself was active; flow is PRE self, ACT
}

// DDB at high bus frequency: two back-to-back column commands to one
// bank group, the third waits for the two-command window; without DDB the
// group bus forces tCCD_L pacing.
func TestDDBWithinGroupPacing(t *testing.T) {
	high := 2400.0
	ddb, ct := testChannel(t, config.VSB(4, true, true, true, high))
	if !ct.TwoCommandWindowsOn {
		t.Fatal("two-command windows should bind at 2.4GHz")
	}
	// Open rows in two different banks of group 0, sub-banks chosen to
	// be plane-compatible trivially (different banks don't share planes).
	a := Target{Group: 0, Bank: 0, Sub: 0, Row: 0x0100}
	b := Target{Group: 0, Bank: 1, Sub: 0, Row: 0x4100}
	run(t, ddb, a, false, 0)
	run(t, ddb, b, false, 0)
	now := clock.Cycle(1000)
	r1 := issueAt(t, ddb, Command{Kind: CmdRD, Group: 0, Bank: 0, Row: 0x0100}, now)
	r2 := issueAt(t, ddb, Command{Kind: CmdRD, Group: 0, Bank: 1, Row: 0x4100}, r1)
	if r2-r1 >= ct.CCDL {
		t.Errorf("DDB pair spacing = %d, want < tCCD_L = %d", r2-r1, ct.CCDL)
	}
	r3 := ddb.EarliestIssue(Command{Kind: CmdRD, Group: 0, Bank: 0, Row: 0x0100})
	if r3 < r1+ct.TCW {
		t.Errorf("third command at %d, want >= first + tTCW = %d", r3, r1+ct.TCW)
	}

	bg, ct2 := testChannel(t, config.VSB(4, true, true, false, high))
	run(t, bg, a, false, 0)
	run(t, bg, b, false, 0)
	s1 := issueAt(t, bg, Command{Kind: CmdRD, Group: 0, Bank: 0, Row: 0x0100}, now)
	s2 := bg.EarliestIssue(Command{Kind: CmdRD, Group: 0, Bank: 1, Row: 0x4100})
	if s2-s1 != ct2.CCDL {
		t.Errorf("bank-group pair spacing = %d, want tCCD_L = %d", s2-s1, ct2.CCDL)
	}
}

// Paired banks: the two constituent banks share plane latches; a plane
// conflict between them forces a precharge, rows in different planes
// coexist.
func TestPairedBankPlanes(t *testing.T) {
	ch, _ := testChannel(t, config.PairedBank(4, false, config.DefaultBusMHz))
	run(t, ch, Target{Bank: 0, Sub: 0, Row: 0x00100}, false, 0)
	_, steps := run(t, ch, Target{Bank: 0, Sub: 1, Row: 0x00100}, false, 0)
	// Identical rows + RAP: plane IDs inverted -> different planes, coexist.
	for _, s := range steps {
		if s.Cmd.Kind == CmdPRE {
			t.Fatalf("paired-bank identical-MSB access conflicted despite RAP: %+v", steps)
		}
	}
}

func TestIdleOpenRows(t *testing.T) {
	ch, _ := baselineCh(t)
	at, _ := run(t, ch, Target{Row: 5}, false, 0)
	var cmds []Command
	ch.IdleOpenRows(at+500, 400, func(c Command) { cmds = append(cmds, c) })
	if len(cmds) != 1 || cmds[0].Kind != CmdPRE || cmds[0].Row != 5 {
		t.Fatalf("idle rows = %+v", cmds)
	}
	cmds = nil
	ch.IdleOpenRows(at+100, 400, func(c Command) { cmds = append(cmds, c) })
	if len(cmds) != 0 {
		t.Fatalf("fresh row reported idle: %+v", cmds)
	}
}

func TestRefreshBlocksAndRecovers(t *testing.T) {
	sys := config.Baseline(config.DefaultBusMHz)
	ch := NewChannel(sys, sys.Geom.RowBits)
	ct := sys.CT
	// Open a row, then step past tREFI.
	ch.Issue(cmd(CmdACT, 0, 7), 0)
	var now clock.Cycle
	deadline := ct.REFI * 3
	for now = 1; now < deadline; now++ {
		ch.MaintainRefresh(now)
		if ch.Stats.Refreshes > 0 {
			break
		}
	}
	if ch.Stats.Refreshes == 0 {
		t.Fatal("no refresh within 3*tREFI")
	}
	if ch.Stats.PreAlls != 1 || ch.Stats.Pres != 1 {
		t.Errorf("refresh precharge accounting: %+v", ch.Stats)
	}
	if ch.Available(0, now) {
		t.Error("rank available during tRFC")
	}
	if !ch.Available(0, now+ct.RFC+1) {
		t.Error("rank still blocked after tRFC")
	}
	// The bank must be re-activatable after the refresh completes.
	act := cmd(CmdACT, 0, 9)
	if e := ch.EarliestIssue(act); e > now+ct.RFC {
		t.Errorf("post-refresh ACT at %d, want <= %d", e, now+ct.RFC)
	}
}

package dram

import (
	"sort"

	"eruca/internal/clock"
	"eruca/internal/snapshot"
)

func snapshotCommand(e *snapshot.Encoder, c Command) {
	e.U8(uint8(c.Kind))
	e.Int(c.Rank)
	e.Int(c.Group)
	e.Int(c.Bank)
	e.Int(c.Sub)
	e.U32(c.Row)
	e.Int(c.Slot)
	e.Bool(c.EWLRHit)
	e.Bool(c.Partial)
	e.Bool(c.PlaneConflict)
	e.Bool(c.RAPRedirect)
}

func restoreCommand(d *snapshot.Decoder) Command {
	var c Command
	c.Kind = CmdKind(d.U8())
	c.Rank = d.Int()
	c.Group = d.Int()
	c.Bank = d.Int()
	c.Sub = d.Int()
	c.Row = d.U32()
	c.Slot = d.Int()
	c.EWLRHit = d.Bool()
	c.Partial = d.Bool()
	c.PlaneConflict = d.Bool()
	c.RAPRedirect = d.Bool()
	return c
}

// Snapshot serializes the auditor's full state: the complete observed
// command history (so a resumed run's Result.AuditCommands spans the
// whole run, enabling direct byte-for-byte comparison against an
// uninterrupted reference), recorded violations, per-slot row tracking
// and per-rank refresh accounting. Maps are written in sorted key order
// for deterministic bytes.
func (a *Auditor) Snapshot(e *snapshot.Encoder) {
	e.Int(len(a.history))
	for _, ev := range a.history {
		snapshotCommand(e, ev.Cmd)
		e.I64(int64(ev.At))
	}
	e.Int(len(a.violations))
	for _, v := range a.violations {
		e.I64(int64(v.At))
		e.Str(v.Rule)
		snapshotCommand(e, v.Cmd)
		e.Str(v.Msg)
	}

	keys := make([]auditKey, 0, len(a.open))
	for k := range a.open {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		ki, kj := keys[i], keys[j]
		if ki.rank != kj.rank {
			return ki.rank < kj.rank
		}
		if ki.group != kj.group {
			return ki.group < kj.group
		}
		if ki.bank != kj.bank {
			return ki.bank < kj.bank
		}
		if ki.sub != kj.sub {
			return ki.sub < kj.sub
		}
		return ki.slot < kj.slot
	})
	e.Int(len(keys))
	for _, k := range keys {
		st := a.open[k]
		e.Int(k.rank)
		e.Int(k.group)
		e.Int(k.bank)
		e.Int(k.sub)
		e.Int(k.slot)
		e.U32(st.row)
		e.I64(int64(st.actAt))
		e.I64(int64(st.lastRd))
		e.I64(int64(st.lastWr))
		e.I64(int64(st.preAt))
		e.Bool(st.active)
	}

	snapshotIntCycleMap(e, a.blockedUntil)
	snapshotIntCycleMap(e, a.lastRef)
}

func snapshotIntCycleMap(e *snapshot.Encoder, m map[int]clock.Cycle) {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	e.Int(len(keys))
	for _, k := range keys {
		e.Int(k)
		e.I64(int64(m[k]))
	}
}

func restoreIntCycleMap(d *snapshot.Decoder) map[int]clock.Cycle {
	n := d.Count(16)
	m := make(map[int]clock.Cycle, n)
	for i := 0; i < n; i++ {
		k := d.Int()
		m[k] = clock.Cycle(d.I64())
	}
	return m
}

// Restore rebuilds the auditor from a Snapshot stream. The auditor must
// have been constructed with NewAuditor over the same configuration.
func (a *Auditor) Restore(d *snapshot.Decoder) error {
	nh := d.Count(20)
	a.history = a.history[:0]
	for i := 0; i < nh; i++ {
		c := restoreCommand(d)
		at := clock.Cycle(d.I64())
		if d.Err() != nil {
			return d.Err()
		}
		a.history = append(a.history, AuditedCommand{c, at})
	}
	nv := d.Count(20)
	a.violations = a.violations[:0]
	for i := 0; i < nv; i++ {
		var v Violation
		v.At = clock.Cycle(d.I64())
		v.Rule = d.Str()
		v.Cmd = restoreCommand(d)
		v.Msg = d.Str()
		if d.Err() != nil {
			return d.Err()
		}
		a.violations = append(a.violations, v)
	}
	no := d.Count(40)
	a.open = make(map[auditKey]*auditRow, no)
	for i := 0; i < no; i++ {
		var k auditKey
		k.rank = d.Int()
		k.group = d.Int()
		k.bank = d.Int()
		k.sub = d.Int()
		k.slot = d.Int()
		st := &auditRow{}
		st.row = d.U32()
		st.actAt = clock.Cycle(d.I64())
		st.lastRd = clock.Cycle(d.I64())
		st.lastWr = clock.Cycle(d.I64())
		st.preAt = clock.Cycle(d.I64())
		st.active = d.Bool()
		if d.Err() != nil {
			return d.Err()
		}
		a.open[k] = st
	}
	a.blockedUntil = restoreIntCycleMap(d)
	a.lastRef = restoreIntCycleMap(d)
	return d.Err()
}

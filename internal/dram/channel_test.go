package dram

import (
	"testing"

	"eruca/internal/clock"
	"eruca/internal/config"
)

// testChannel builds a channel with refresh disabled so tests control
// all timing, returning it with the resolved cycle timing.
func testChannel(t *testing.T, sys *config.System) (*Channel, config.CycleTiming) {
	t.Helper()
	sys.Ctrl.RefreshEnabled = false
	rowBits := sys.Geom.RowBits
	if sys.Scheme.SubBanksPerBank() > 1 && sys.Scheme.Mode != config.SubBankPaired {
		rowBits--
	}
	return NewChannel(sys, rowBits), sys.CT
}

func baselineCh(t *testing.T) (*Channel, config.CycleTiming) {
	return testChannel(t, config.Baseline(config.DefaultBusMHz))
}

func cmd(k CmdKind, bank int, row uint32) Command {
	return Command{Kind: k, Group: bank / 4, Bank: bank % 4, Row: row}
}

// issueAt issues the command at its earliest legal cycle at or after
// `from`, returning the issue cycle.
func issueAt(t *testing.T, ch *Channel, c Command, from clock.Cycle) clock.Cycle {
	t.Helper()
	e := ch.EarliestIssue(c)
	if e < from {
		e = from
	}
	ch.Issue(c, e)
	return e
}

func TestActToColumnRespectsTRCD(t *testing.T) {
	ch, ct := baselineCh(t)
	ch.Issue(cmd(CmdACT, 0, 7), 0)
	rd := cmd(CmdRD, 0, 7)
	if e := ch.EarliestIssue(rd); e != ct.RCD {
		t.Errorf("read after ACT earliest = %d, want tRCD = %d", e, ct.RCD)
	}
}

func TestPrechargeRespectsTRAS(t *testing.T) {
	ch, ct := baselineCh(t)
	ch.Issue(cmd(CmdACT, 0, 7), 0)
	if e := ch.EarliestIssue(cmd(CmdPRE, 0, 7)); e != ct.RAS {
		t.Errorf("PRE earliest = %d, want tRAS = %d", e, ct.RAS)
	}
}

func TestActAfterPrechargeRespectsTRP(t *testing.T) {
	ch, ct := baselineCh(t)
	ch.Issue(cmd(CmdACT, 0, 7), 0)
	pre := issueAt(t, ch, cmd(CmdPRE, 0, 7), 0)
	if e := ch.EarliestIssue(cmd(CmdACT, 0, 9)); e != pre+ct.RP {
		t.Errorf("re-ACT earliest = %d, want PRE+tRP = %d", e, pre+ct.RP)
	}
}

func TestReadAfterReadSameBankIsTCCDL(t *testing.T) {
	ch, ct := baselineCh(t)
	ch.Issue(cmd(CmdACT, 0, 7), 0)
	rd := issueAt(t, ch, cmd(CmdRD, 0, 7), 0)
	if e := ch.EarliestIssue(cmd(CmdRD, 0, 7)); e != rd+ct.CCDL {
		t.Errorf("same-bank read-to-read = %d, want tCCD_L = %d", e-rd, ct.CCDL)
	}
}

// Same bank group, different bank: tCCD_L with bank grouping.
func TestSameGroupColumnIsTCCDL(t *testing.T) {
	ch, ct := baselineCh(t)
	ch.Issue(cmd(CmdACT, 0, 7), 0)
	issueAt(t, ch, cmd(CmdACT, 1, 7), 0)
	rd := issueAt(t, ch, cmd(CmdRD, 0, 7), 100)
	if e := ch.EarliestIssue(cmd(CmdRD, 1, 7)); e != rd+ct.CCDL {
		t.Errorf("same-group read spacing = %d, want tCCD_L = %d", e-rd, ct.CCDL)
	}
}

// Different bank groups: tCCD_S.
func TestCrossGroupColumnIsTCCDS(t *testing.T) {
	ch, ct := baselineCh(t)
	ch.Issue(cmd(CmdACT, 0, 7), 0)
	issueAt(t, ch, cmd(CmdACT, 4, 7), 0) // bank 4 = group 1
	rd := issueAt(t, ch, cmd(CmdRD, 0, 7), 100)
	if e := ch.EarliestIssue(cmd(CmdRD, 4, 7)); e != rd+ct.CCDS {
		t.Errorf("cross-group read spacing = %d, want tCCD_S = %d", e-rd, ct.CCDS)
	}
}

// Without bank grouping (Ideal32), cross-bank same-group accesses are
// tCCD_S but same-bank stays tCCD_L (GBLs are still shared in a bank).
func TestIdealDropsGroupPenalty(t *testing.T) {
	ch, ct := testChannel(t, config.Ideal32(config.DefaultBusMHz))
	c0 := Command{Kind: CmdACT, Group: 0, Bank: 0, Row: 7}
	c1 := Command{Kind: CmdACT, Group: 0, Bank: 1, Row: 7}
	ch.Issue(c0, 0)
	issueAt(t, ch, c1, 0)
	rd0 := Command{Kind: CmdRD, Group: 0, Bank: 0, Row: 7}
	rd1 := Command{Kind: CmdRD, Group: 0, Bank: 1, Row: 7}
	at := issueAt(t, ch, rd0, 100)
	if e := ch.EarliestIssue(rd1); e != at+ct.CCDS {
		t.Errorf("ideal same-group spacing = %d, want tCCD_S = %d", e-at, ct.CCDS)
	}
	if e := ch.EarliestIssue(rd0); e != at+ct.CCDL {
		t.Errorf("ideal same-bank spacing = %d, want tCCD_L = %d", e-at, ct.CCDL)
	}
}

func TestTRRDBetweenActivates(t *testing.T) {
	ch, ct := baselineCh(t)
	ch.Issue(cmd(CmdACT, 0, 7), 0)
	if e := ch.EarliestIssue(cmd(CmdACT, 4, 9)); e != ct.RRD {
		t.Errorf("ACT-to-ACT = %d, want tRRD = %d", e, ct.RRD)
	}
}

func TestTFAWLimitsBurstOfActivates(t *testing.T) {
	ch, ct := baselineCh(t)
	var last clock.Cycle
	for i := 0; i < 4; i++ {
		last = issueAt(t, ch, cmd(CmdACT, i*4, 7), 0) // four different groups
	}
	fifth := ch.EarliestIssue(cmd(CmdACT, 1, 7))
	if fifth < ct.FAW {
		t.Errorf("fifth ACT at %d, want >= first+tFAW = %d (4th at %d)", fifth, ct.FAW, last)
	}
}

func TestWriteToReadTurnaround(t *testing.T) {
	ch, ct := baselineCh(t)
	ch.Issue(cmd(CmdACT, 0, 7), 0)
	issueAt(t, ch, cmd(CmdACT, 4, 7), 0)
	wr := issueAt(t, ch, cmd(CmdWR, 0, 7), 100)
	dataEnd := wr + ct.CWL + ct.Burst
	// Same bank: tWTR_L from end of write data.
	if e := ch.EarliestIssue(cmd(CmdRD, 0, 7)); e < dataEnd+ct.WTRL {
		t.Errorf("same-bank W->R = %d, want >= %d", e, dataEnd+ct.WTRL)
	}
	// Different group: tWTR_S.
	if e := ch.EarliestIssue(cmd(CmdRD, 4, 7)); e < dataEnd+ct.WTRS {
		t.Errorf("cross-group W->R = %d, want >= %d", e, dataEnd+ct.WTRS)
	}
}

func TestWriteAfterPrechargeNeedsTWR(t *testing.T) {
	ch, ct := baselineCh(t)
	ch.Issue(cmd(CmdACT, 0, 7), 0)
	wr := issueAt(t, ch, cmd(CmdWR, 0, 7), 0)
	want := wr + ct.CWL + ct.Burst + ct.WR
	if e := ch.EarliestIssue(cmd(CmdPRE, 0, 7)); e != want {
		t.Errorf("PRE after WR = %d, want data end + tWR = %d", e, want)
	}
}

// The external data bus can only carry one burst at a time; reads to
// different groups cannot be closer than the burst length even though
// tCCD_S would allow it... tCCD_S (4) equals the burst (4) here, so
// saturate the bus and check no overlap by construction.
func TestDataBusNeverOverlaps(t *testing.T) {
	ch, ct := baselineCh(t)
	for b := 0; b < 8; b++ {
		issueAt(t, ch, cmd(CmdACT, b, 3), 0)
	}
	type window struct{ start, end clock.Cycle }
	var wins []window
	now := clock.Cycle(200)
	for i := 0; i < 16; i++ {
		c := cmd(CmdRD, i%8, 3)
		at := issueAt(t, ch, c, now)
		now = at
		wins = append(wins, window{at + ct.CL, at + ct.CL + ct.Burst})
	}
	for i := 1; i < len(wins); i++ {
		if wins[i].start < wins[i-1].end {
			t.Fatalf("data windows overlap: %v then %v", wins[i-1], wins[i])
		}
	}
}

func TestIssueEarlyPanics(t *testing.T) {
	ch, _ := baselineCh(t)
	ch.Issue(cmd(CmdACT, 0, 7), 0)
	defer func() {
		if recover() == nil {
			t.Error("early read did not panic")
		}
	}()
	ch.Issue(cmd(CmdRD, 0, 7), 1) // tRCD violated
}

func TestColumnToClosedRowPanics(t *testing.T) {
	ch, _ := baselineCh(t)
	defer func() {
		if recover() == nil {
			t.Error("read to closed bank did not panic")
		}
	}()
	ch.Issue(cmd(CmdRD, 0, 7), 100)
}

func TestStatsCounting(t *testing.T) {
	ch, _ := baselineCh(t)
	ch.Issue(cmd(CmdACT, 0, 7), 0)
	issueAt(t, ch, cmd(CmdRD, 0, 7), 0)
	issueAt(t, ch, cmd(CmdRD, 0, 7), 0)
	issueAt(t, ch, cmd(CmdWR, 0, 7), 0)
	issueAt(t, ch, cmd(CmdPRE, 0, 7), 0)
	s := ch.Stats
	if s.Acts != 1 || s.Reads != 2 || s.Writes != 1 || s.Pres != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.RowHits() != 2 {
		t.Errorf("row hits = %d, want 2", s.RowHits())
	}
}

func TestBackgroundAccounting(t *testing.T) {
	ch, ct := baselineCh(t)
	ch.Issue(cmd(CmdACT, 0, 7), 0)
	pre := issueAt(t, ch, cmd(CmdPRE, 0, 7), 0)
	ch.Finish(pre + 100)
	s := ch.Stats
	if s.AllCycles != uint64(pre+100) {
		t.Errorf("all cycles = %d, want %d", s.AllCycles, pre+100)
	}
	if s.ActiveCycles != uint64(pre) {
		t.Errorf("active cycles = %d, want %d (tRAS window)", s.ActiveCycles, pre)
	}
	_ = ct
}

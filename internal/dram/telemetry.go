package dram

import (
	"eruca/internal/clock"
	"eruca/internal/telemetry"
)

// Telemetry emission helpers. All are called only when ch.tel != nil and
// strictly after the timing engine committed the command, so they can
// never perturb scheduling. Counters are driven from here (not from the
// sampled event trace) so attribution totals stay exact under any
// SampleEvery/window setting.

// telEvent translates a Command into a telemetry Event; the first six
// telemetry Kinds mirror CmdKind one-to-one.
func (ch *Channel) telEvent(c Command, at clock.Cycle) telemetry.Event {
	return telemetry.Event{
		At:   at,
		Row:  c.Row,
		Run:  ch.telRun,
		Kind: telemetry.Kind(c.Kind),
		Chan: ch.chanID,
		Rank: uint8(c.Rank),
		Grp:  uint8(c.Group),
		Bank: uint8(c.Bank),
		Sub:  uint8(c.Sub),
		Slot: uint8(c.Slot),
	}
}

// telACT records an activation: counters, the inter-ACT gap histogram
// (per rank, prevAct is the rank's previous ACT cycle or the `never`
// sentinel), and the traced event with EWLR/RAP flags.
func (ch *Channel) telACT(c Command, now, prevAct clock.Cycle) {
	t := ch.tel
	t.C.Acts.Add(1)
	e := ch.telEvent(c, now)
	ewlrScheme := ch.planes != nil && ch.planes.EWLR()
	switch {
	case c.EWLRHit:
		t.C.EWLRHits.Add(1)
		e.Flag |= telemetry.FlagEWLRHit
	case ewlrScheme:
		t.C.EWLRMisses.Add(1)
		e.Flag |= telemetry.FlagEWLRMiss
	}
	if c.RAPRedirect {
		t.C.RAPRedirects.Add(1)
		e.Flag |= telemetry.FlagRAPRemap
	}
	if prevAct != never {
		t.C.InterACT.Observe(now - prevAct)
	}
	t.Emit(e)
	if c.RAPRedirect {
		r := e
		r.Kind = telemetry.EvRAPRemap
		t.Emit(r)
	}
}

// telPRE records a precharge: counters, the row-open-lifetime histogram
// (actAt is the closed slot's opening ACT cycle; skipped for the
// spurious PRE-on-closed best-effort path), and the traced event with
// partial/plane-conflict flags.
func (ch *Channel) telPRE(c Command, now clock.Cycle, wasActive bool, actAt clock.Cycle) {
	t := ch.tel
	t.C.Pres.Add(1)
	e := ch.telEvent(c, now)
	if c.Partial {
		t.C.PartialPres.Add(1)
		e.Flag |= telemetry.FlagPartial
	}
	if c.PlaneConflict {
		t.C.PlaneConflicts.Add(1)
		e.Flag |= telemetry.FlagPlaneConflict
	}
	if wasActive {
		t.C.RowOpen.Observe(now - actAt)
	}
	t.Emit(e)
}

// telCol records a column command and, when the dual data bus pulled its
// issue cycle in versus the single-bus tCCD_L/tWTR_L bound, the DDB
// grant event with the saved cycles.
func (ch *Channel) telCol(c Command, now clock.Cycle, read bool, ddbSaved clock.Cycle) {
	t := ch.tel
	if read {
		t.C.Reads.Add(1)
	} else {
		t.C.Writes.Add(1)
	}
	t.Emit(ch.telEvent(c, now))
	if ddbSaved > 0 {
		t.C.DDBSavedCK.Add(uint64(ddbSaved))
		g := ch.telEvent(c, now)
		g.Kind = telemetry.EvDDBGrant
		g.Arg = uint32(ddbSaved)
		g.Row = 0
		t.Emit(g)
	}
}

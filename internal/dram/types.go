// Package dram is the cycle-level DDR4 device timing engine underneath
// the ERUCA memory controller. It models channels, ranks, bank groups,
// banks, ERUCA sub-banks (including plane latch sharing, EWLR and partial
// precharge), MASA subarray slots, the single or dual (DDB) chip-global
// data bus, refresh, and per-command energy event counters.
//
// The engine is passive: the memory controller (internal/memctrl) asks
// when a command could issue (EarliestIssue) and commits it (Issue); the
// engine enforces every DDR4 timing constraint of Tab. III plus the
// ERUCA-specific tTCW/tTWTRW windows and plane rules, and panics on a
// protocol violation — a controller bug, never a workload property.
package dram

import (
	"fmt"

	"eruca/internal/clock"
)

// CmdKind enumerates DRAM commands.
type CmdKind int

const (
	// CmdACT activates a row in a (sub-)bank.
	CmdACT CmdKind = iota
	// CmdPRE precharges one (sub-)bank (one MASA slot when the scheme
	// has subarray groups).
	CmdPRE
	// CmdRD reads one burst (one cache line) from the open row.
	CmdRD
	// CmdWR writes one burst to the open row.
	CmdWR
	// CmdPREA precharges every bank in a rank (issued before refresh).
	CmdPREA
	// CmdREF refreshes a rank; the rank is unavailable for tRFC.
	CmdREF
)

// String implements fmt.Stringer.
func (k CmdKind) String() string {
	switch k {
	case CmdACT:
		return "ACT"
	case CmdPRE:
		return "PRE"
	case CmdRD:
		return "RD"
	case CmdWR:
		return "WR"
	case CmdPREA:
		return "PREA"
	case CmdREF:
		return "REF"
	}
	return fmt.Sprintf("CmdKind(%d)", int(k))
}

// Command addresses one DRAM command within a channel.
type Command struct {
	Kind  CmdKind
	Rank  int
	Group int
	Bank  int
	Sub   int
	Row   uint32 // ACT: row to open; PRE: ignored
	Slot  int    // MASA subarray slot (0 when the scheme has none)

	// EWLRHit marks an ACT that reuses an already-driven MWL (energy
	// accounting; Sec. IV).
	EWLRHit bool
	// Partial marks a PRE that must leave the shared MWL driven because
	// the paired sub-bank holds a row in the same EWLR (Sec. VI-A).
	Partial bool
	// PlaneConflict marks a PRE issued to resolve a plane conflict (the
	// paired sub-bank needed the target plane's latches) — the Fig. 13b
	// metric.
	PlaneConflict bool
	// RAPRedirect marks an ACT whose plane ID was inverted by RAP so that
	// a raw-plane-bit collision with the paired sub-bank's open row did
	// not become a plane conflict (attribution; Sec. V-B).
	RAPRedirect bool
}

// String implements fmt.Stringer.
func (c Command) String() string {
	return fmt.Sprintf("%s rk%d bg%d bk%d sb%d slot%d row %#x", c.Kind, c.Rank, c.Group, c.Bank, c.Sub, c.Slot, c.Row)
}

// Stats counts DRAM command events for performance and energy analysis.
type Stats struct {
	Acts         uint64
	ActsEWLRHit  uint64 // subset of Acts that reused a driven MWL
	Reads        uint64
	Writes       uint64
	Pres         uint64
	PartialPres  uint64 // subset of Pres that kept the MWL driven
	PlaneConfPre uint64 // Pres issued to resolve a plane conflict (Fig. 13b)
	RAPRedirects uint64 // ACTs whose RAP inversion dodged a raw plane-bit collision
	DDBSavedCK   uint64 // bus cycles of single-bus tCCD_L/tWTR_L the dual data bus recovered
	Refreshes    uint64
	PreAlls      uint64

	// ActiveCycles integrates bus cycles during which the rank had at
	// least one open row; AllCycles is total observed cycles. The split
	// drives active- vs precharge-standby background energy.
	ActiveCycles uint64
	AllCycles    uint64
}

// RowHits reports reads+writes minus activates: every column command not
// preceded by its own ACT hit an open row.
func (s *Stats) RowHits() uint64 {
	cols := s.Reads + s.Writes
	if s.Acts > cols {
		return 0
	}
	return cols - s.Acts
}

const never = clock.Cycle(-1) << 60

// Violation is one structured protocol violation: a timing or state rule
// broken at a cycle, tagged with the JEDEC/ERUCA rule name ("tRP",
// "ACT-on-open", "plane-invariant", ...). The timing engine raises them
// for controller bugs; the Auditor records them when re-checking an
// observed command stream.
type Violation struct {
	At   clock.Cycle
	Rule string
	Cmd  Command // zero when the violation is not tied to one command
	Msg  string
}

// Error implements error, matching the auditor's historical formatting.
func (v Violation) Error() string { return fmt.Sprintf("cycle %d: %s", v.At, v.Msg) }

// Observer receives every command the channel issues (including the
// internally managed PREA/REF refresh sequence), in issue order. The
// Auditor and the protocol checker both implement it.
type Observer interface {
	Observe(c Command, at clock.Cycle)
}

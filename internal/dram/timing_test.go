package dram

import (
	"testing"

	"eruca/internal/clock"
	"eruca/internal/config"
)

// Read-to-write turnaround: a write command after a read must leave the
// bus turnaround gap.
func TestReadToWriteTurnaround(t *testing.T) {
	ch, ct := baselineCh(t)
	ch.Issue(cmd(CmdACT, 0, 7), 0)
	issueAt(t, ch, cmd(CmdACT, 4, 7), 0)
	rd := issueAt(t, ch, cmd(CmdRD, 0, 7), 100)
	wr := ch.EarliestIssue(cmd(CmdWR, 4, 7))
	// Write data (at +CWL) must start after read data ends (+CL+burst)
	// plus the turnaround bubble.
	if wr+ct.CWL < rd+ct.CL+ct.Burst+ct.RTW {
		t.Errorf("write data at %d overlaps read data ending %d", wr+ct.CWL, rd+ct.CL+ct.Burst)
	}
}

// An EWLR-hit ACT obeys the same timing as a normal ACT (the saving is
// energy, not latency).
func TestEWLRHitACTSameTiming(t *testing.T) {
	sys := config.VSB(4, true, false, false, config.DefaultBusMHz)
	ch, ct := testChannel(t, sys)
	a := Command{Kind: CmdACT, Sub: 0, Row: 0x0104}
	ch.Issue(a, 0)
	hit := Command{Kind: CmdACT, Sub: 1, Row: 0x0110, EWLRHit: true}
	if e := ch.EarliestIssue(hit); e != ct.RRD {
		t.Errorf("EWLR-hit ACT earliest = %d, want tRRD = %d", e, ct.RRD)
	}
}

// EarliestIssue never mutates state: repeated queries agree.
func TestEarliestIssueIdempotent(t *testing.T) {
	ch, _ := baselineCh(t)
	ch.Issue(cmd(CmdACT, 0, 7), 0)
	c := cmd(CmdRD, 0, 7)
	e1 := ch.EarliestIssue(c)
	for i := 0; i < 10; i++ {
		if e := ch.EarliestIssue(c); e != e1 {
			t.Fatalf("EarliestIssue changed: %d -> %d", e1, e)
		}
	}
}

// Issuing later than the earliest legal cycle is always allowed.
func TestIssueLaterIsLegal(t *testing.T) {
	ch, _ := baselineCh(t)
	ch.Issue(cmd(CmdACT, 0, 7), 0)
	c := cmd(CmdRD, 0, 7)
	e := ch.EarliestIssue(c)
	ch.Issue(c, e+500) // must not panic
}

// Two ranks operate independently for bank state but share the channel
// data bus.
func TestTwoRanksShareDataBus(t *testing.T) {
	geom := config.DefaultGeometry()
	geom.Ranks = 2
	geom.RowBits-- // keep capacity constant
	sch := config.Scheme{Name: "2rank", Mode: config.SubBankNone, BankGrouping: true}
	sys := config.MustSystem("2rank", geom, sch, config.DDR4Timing(), config.DefaultBusMHz,
		config.DefaultController(), config.DefaultCPU())
	ch, ct := testChannel(t, sys)

	a := Command{Kind: CmdACT, Rank: 0, Row: 7}
	b := Command{Kind: CmdACT, Rank: 1, Row: 9}
	ch.Issue(a, 0)
	// tRRD is per rank: the other rank can activate immediately.
	if e := ch.EarliestIssue(b); e != 0 {
		t.Errorf("cross-rank ACT earliest = %d, want 0", e)
	}
	ch.Issue(b, 0)
	r0 := issueAt(t, ch, Command{Kind: CmdRD, Rank: 0, Row: 7}, 100)
	r1 := ch.EarliestIssue(Command{Kind: CmdRD, Rank: 1, Row: 9})
	if r1-r0 < ct.Burst {
		t.Errorf("cross-rank reads %d apart, bus needs >= burst %d", r1-r0, ct.Burst)
	}
}

// Refresh recurs with period tREFI.
func TestRefreshPeriodicity(t *testing.T) {
	sys := config.Baseline(config.DefaultBusMHz)
	ch := NewChannel(sys, sys.Geom.RowBits)
	ct := sys.CT
	for now := clock.Cycle(0); now < ct.REFI*4; now++ {
		ch.MaintainRefresh(now)
	}
	if got := ch.Stats.Refreshes; got != 3 {
		t.Errorf("refreshes in 4*tREFI = %d, want 3", got)
	}
}

// A write's data end gates its precharge even when tRAS has long passed.
func TestWriteRecoveryDominatesLateWrite(t *testing.T) {
	ch, ct := baselineCh(t)
	ch.Issue(cmd(CmdACT, 0, 7), 0)
	wr := issueAt(t, ch, cmd(CmdWR, 0, 7), ct.RAS+100)
	want := wr + ct.CWL + ct.Burst + ct.WR
	if e := ch.EarliestIssue(cmd(CmdPRE, 0, 7)); e != want {
		t.Errorf("PRE after late write = %d, want %d", e, want)
	}
}

// MASA keeps per-slot precharge state: closing one subarray leaves the
// others open.
func TestMASAPerSlotPrecharge(t *testing.T) {
	ch, _ := testChannel(t, config.MASA(8, config.DefaultBusMHz))
	rowA, rowB := uint32(0), uint32(1)
	run(t, ch, Target{Row: rowA}, false, 0)
	run(t, ch, Target{Row: rowB}, false, 0)
	pre := Command{Kind: CmdPRE, Row: rowA, Slot: ch.SlotFor(rowA)}
	issueAt(t, ch, pre, 1000)
	if _, open := ch.OpenRow(Target{Row: rowB}); !open {
		t.Error("closing slot 0 closed slot 1")
	}
	if _, open := ch.OpenRow(Target{Row: rowA}); open {
		t.Error("slot 0 still open after PRE")
	}
}

// Without bank grouping, tWTR_L still applies within a bank.
func TestIdealKeepsSameBankWTR(t *testing.T) {
	ch, ct := testChannel(t, config.Ideal32(config.DefaultBusMHz))
	c0 := Command{Kind: CmdACT, Row: 7}
	ch.Issue(c0, 0)
	wr := issueAt(t, ch, Command{Kind: CmdWR, Row: 7}, 0)
	dataEnd := wr + ct.CWL + ct.Burst
	if e := ch.EarliestIssue(Command{Kind: CmdRD, Row: 7}); e < dataEnd+ct.WTRL {
		t.Errorf("same-bank W->R = %d, want >= %d", e, dataEnd+ct.WTRL)
	}
}

// The naive paired-bank combination (no EWLR/RAP) plane-conflicts
// between its constituent banks.
func TestPairedNaiveConflicts(t *testing.T) {
	sch := config.Scheme{
		Name: "paired-naive", Mode: config.SubBankPaired,
		Planes: 4, PlaneBits: config.PlaneBitsHigh, BankGrouping: true,
	}
	sys := config.MustSystem("paired-naive", config.DefaultGeometry(), sch,
		config.DDR4Timing(), config.DefaultBusMHz, config.DefaultController(), config.DefaultCPU())
	ch, _ := testChannel(t, sys)
	run(t, ch, Target{Sub: 0, Row: 0x00100}, false, 0)
	_, steps := run(t, ch, Target{Sub: 1, Row: 0x00200}, false, 0)
	if steps[0].Cmd.Kind != CmdPRE || !steps[0].Cmd.PlaneConflict {
		t.Fatalf("naive paired banks did not conflict: %+v", steps)
	}
}

// The FAW window tracks exactly the last four activations: a fifth ACT
// spaced widely is unconstrained.
func TestFAWWindowSlides(t *testing.T) {
	ch, ct := baselineCh(t)
	var at clock.Cycle
	for i := 0; i < 4; i++ {
		at = issueAt(t, ch, cmd(CmdACT, i*4, 7), at+ct.FAW/3)
	}
	fifth := ch.EarliestIssue(cmd(CmdACT, 1, 7))
	if fifth > at+ct.RRD {
		t.Errorf("widely spaced ACTs still FAW-bound: earliest %d vs last %d", fifth, at)
	}
}

// CmdKind and Command have readable string forms.
func TestStringers(t *testing.T) {
	if CmdACT.String() != "ACT" || CmdPREA.String() != "PREA" {
		t.Error("CmdKind strings")
	}
	c := Command{Kind: CmdRD, Group: 1, Bank: 2, Sub: 1, Row: 0xAB}
	s := c.String()
	if s == "" || len(s) < 10 {
		t.Errorf("Command string %q", s)
	}
}

// RowHits never underflows when activations exceed column commands.
func TestRowHitsUnderflowGuard(t *testing.T) {
	s := Stats{Acts: 10, Reads: 3}
	if s.RowHits() != 0 {
		t.Errorf("RowHits = %d, want 0", s.RowHits())
	}
}

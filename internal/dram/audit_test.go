package dram

import (
	"strings"
	"testing"

	"eruca/internal/config"
)

func auditedChannel(t *testing.T, sys *config.System) (*Channel, *Auditor, config.CycleTiming) {
	t.Helper()
	ch, ct := testChannel(t, sys)
	a := NewAuditor(sys)
	ch.Attach(a)
	return ch, a, ct
}

// A legally scheduled sequence produces zero violations.
func TestAuditorCleanSequence(t *testing.T) {
	ch, a, _ := auditedChannel(t, config.Baseline(config.DefaultBusMHz))
	for _, bank := range []int{0, 3, 5, 9} {
		issueAt(t, ch, cmd(CmdACT, bank, uint32(bank)), 0)
	}
	now := issueAt(t, ch, cmd(CmdRD, 0, 0), 200)
	now = issueAt(t, ch, cmd(CmdRD, 3, 3), now)
	now = issueAt(t, ch, cmd(CmdWR, 5, 5), now)
	now = issueAt(t, ch, cmd(CmdRD, 9, 9), now)
	issueAt(t, ch, cmd(CmdPRE, 0, 0), now)
	if v := a.Violations(); len(v) != 0 {
		t.Fatalf("clean sequence flagged: %v", v)
	}
	if a.Commands() != 9 {
		t.Errorf("observed %d commands, want 9", a.Commands())
	}
}

// The auditor is an independent checker: feed it raw illegal command
// sequences (bypassing the Channel) and verify each rule fires.
func TestAuditorCatchesViolations(t *testing.T) {
	sys := config.Baseline(config.DefaultBusMHz)
	ct := sys.CT
	cases := []struct {
		name string
		feed func(a *Auditor)
		want string
	}{
		{"tRCD", func(a *Auditor) {
			a.Observe(cmd(CmdACT, 0, 1), 0)
			a.Observe(cmd(CmdRD, 0, 1), ct.RCD-1)
		}, "tRCD"},
		{"tRAS", func(a *Auditor) {
			a.Observe(cmd(CmdACT, 0, 1), 0)
			a.Observe(cmd(CmdPRE, 0, 1), ct.RAS-1)
		}, "tRAS"},
		{"tRP", func(a *Auditor) {
			a.Observe(cmd(CmdACT, 0, 1), 0)
			a.Observe(cmd(CmdPRE, 0, 1), ct.RAS)
			a.Observe(cmd(CmdACT, 0, 2), ct.RAS+ct.RP-1)
		}, "tRP"},
		{"tRRD", func(a *Auditor) {
			a.Observe(cmd(CmdACT, 0, 1), 0)
			a.Observe(cmd(CmdACT, 4, 1), ct.RRD-1)
		}, "tRRD"},
		{"tFAW", func(a *Auditor) {
			for i := 0; i < 4; i++ {
				a.Observe(cmd(CmdACT, i*4, 1), int64(i)*ct.RRD)
			}
			a.Observe(cmd(CmdACT, 1, 1), ct.FAW-1)
		}, "tFAW"},
		{"tCCD_L", func(a *Auditor) {
			a.Observe(cmd(CmdACT, 0, 1), 0)
			a.Observe(cmd(CmdRD, 0, 1), ct.RCD)
			a.Observe(cmd(CmdRD, 0, 1), ct.RCD+ct.CCDL-1)
		}, "tCCD_L"},
		{"ACT-open", func(a *Auditor) {
			a.Observe(cmd(CmdACT, 0, 1), 0)
			a.Observe(cmd(CmdACT, 0, 2), 1000)
		}, "ACT to open"},
		{"col-closed", func(a *Auditor) {
			a.Observe(cmd(CmdRD, 0, 1), 0)
		}, "closed/mismatched"},
		{"tWR", func(a *Auditor) {
			a.Observe(cmd(CmdACT, 0, 1), 0)
			a.Observe(cmd(CmdWR, 0, 1), ct.RCD)
			a.Observe(cmd(CmdPRE, 0, 1), ct.RCD+ct.CWL+ct.Burst+ct.WR-1)
		}, "tWR"},
		{"refresh-blackout", func(a *Auditor) {
			a.Observe(Command{Kind: CmdREF}, 0)
			a.Observe(cmd(CmdACT, 0, 1), ct.RFC-1)
		}, "blackout"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			a := NewAuditor(sys)
			c.feed(a)
			v := a.Violations()
			if len(v) == 0 {
				t.Fatalf("%s violation not detected", c.name)
			}
			if !strings.Contains(v[0], c.want) {
				t.Errorf("violation %q does not mention %q", v[0], c.want)
			}
		})
	}
}

// The plane invariant: ACT into a plane whose latches the partner
// sub-bank holds with a different value.
func TestAuditorPlaneInvariant(t *testing.T) {
	sys := config.VSB(4, false, false, false, config.DefaultBusMHz)
	a := NewAuditor(sys)
	a.Observe(Command{Kind: CmdACT, Sub: 0, Row: 0x0100}, 0)
	a.Observe(Command{Kind: CmdACT, Sub: 1, Row: 0x0200}, 100)
	found := false
	for _, v := range a.Violations() {
		if strings.Contains(v, "plane invariant") {
			found = true
		}
	}
	if !found {
		t.Fatalf("plane invariant violation not detected: %v", a.Violations())
	}
}

// The Channel never produces violations across schemes when driven
// through its own EarliestIssue (cross-checking the two rule
// implementations against each other).
func TestChannelNeverViolatesAudit(t *testing.T) {
	systems := []*config.System{
		config.Baseline(config.DefaultBusMHz),
		config.VSB(4, true, true, true, config.DefaultBusMHz),
		config.VSB(2, false, false, false, config.DefaultBusMHz),
		config.VSB(4, true, true, true, 2400),
		config.Ideal32(config.DefaultBusMHz),
		config.MASA(8, config.DefaultBusMHz),
		config.PairedBank(4, true, config.DefaultBusMHz),
	}
	for _, sys := range systems {
		ch, a, _ := auditedChannel(t, sys)
		banks := sys.Geom.BanksPerGroup
		if sys.Scheme.Mode == config.SubBankPaired {
			banks /= 2
		}
		now := int64(0)
		rng := uint32(12345)
		for i := 0; i < 2000; i++ {
			rng = rng*1664525 + 1013904223
			tgt := Target{
				Group: int(rng>>8) % sys.Geom.BankGroups,
				Bank:  int(rng>>12) % banks,
				Sub:   int(rng>>16) % sys.Scheme.SubBanksPerBank(),
				Row:   rng >> 17 & 0x3FFF,
			}
			write := rng&1 == 0
			for j := 0; j < 6; j++ {
				st := ch.NextStep(tgt, write)
				e := ch.EarliestIssue(st.Cmd)
				if e < now {
					e = now
				}
				ch.Issue(st.Cmd, e)
				now = e
				if st.Column {
					break
				}
			}
		}
		if v := a.Violations(); len(v) != 0 {
			t.Errorf("%s: %d violations, first: %s", sys.Name, len(v), v[0])
		}
	}
}

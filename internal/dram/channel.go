package dram

import (
	"fmt"

	"eruca/internal/clock"
	"eruca/internal/config"
	"eruca/internal/core"
	"eruca/internal/diag"
	"eruca/internal/telemetry"
)

// Channel is the timing engine for one DRAM channel.
type Channel struct {
	sys *config.System
	ct  config.CycleTiming

	ranks []*rank

	// Chip-global data bus occupancy (the external channel data bus).
	busBusyUntil clock.Cycle
	busLastRead  bool
	lastCol      clock.Cycle // channel-level tCCD_S base

	planes  *core.PlaneLogic // nil when the scheme has no planes
	masa    core.MASASlots
	hasMASA bool
	stacked bool

	slotsPerSub int
	subsPerBank int
	banksPerGrp int
	rowBits     int

	obs []Observer

	// onViolation, when set, receives protocol violations (a controller
	// bug or injected fault) instead of the default panic, letting a
	// checker in Fail/Log mode keep the process alive.
	onViolation func(Violation)

	// tel, when set, receives a typed telemetry event and mechanism
	// counter update per issued command. Purely observational: no timing
	// decision reads it, so attaching telemetry can never change the
	// command stream. nil costs one comparison per Issue.
	tel    *telemetry.Set
	chanID uint8
	telRun uint16

	Stats Stats
}

// SetTelemetry attaches a telemetry Set; events are tagged with chanID
// and the run index from telemetry.Set.BeginRun. Pass nil to detach.
func (ch *Channel) SetTelemetry(t *telemetry.Set, chanID int, run uint16) {
	ch.tel = t
	ch.chanID = uint8(chanID)
	ch.telRun = run
}

// Attach registers an observer (protocol auditor / checker) that sees
// every issued command, including the internal refresh sequence.
// Multiple observers may be attached; they are notified in order.
func (ch *Channel) Attach(o Observer) { ch.obs = append(ch.obs, o) }

// OnViolation installs a handler for protocol violations detected by the
// timing engine itself. Without a handler the engine panics — the
// historical behavior, appropriate when any violation is a simulator
// bug. With a handler installed the engine reports the violation and
// continues best-effort, which is what the Fail/Log checker modes and
// the fault-injection harness rely on.
func (ch *Channel) OnViolation(h func(Violation)) { ch.onViolation = h }

// violate raises one protocol violation through the configured handler,
// or panics with the structured Violation when none is installed.
func (ch *Channel) violate(at clock.Cycle, rule string, c Command, format string, args ...any) {
	v := Violation{At: at, Rule: rule, Cmd: c, Msg: fmt.Sprintf(format, args...)}
	if ch.onViolation != nil {
		ch.onViolation(v)
		return
	}
	panic(v)
}

// observe fans one issued command out to every attached observer.
func (ch *Channel) observe(c Command, at clock.Cycle) {
	for _, o := range ch.obs {
		o.Observe(c, at)
	}
}

// NewChannel builds a channel for the system configuration. rowBits is
// the per-sub-bank row width produced by the address mapper.
func NewChannel(sys *config.System, rowBits int) *Channel {
	sch := sys.Scheme
	ch := &Channel{
		sys:         sys,
		ct:          sys.CT,
		lastCol:     never,
		subsPerBank: sch.SubBanksPerBank(),
		banksPerGrp: sys.Geom.BanksPerGroup,
		slotsPerSub: 1,
		rowBits:     rowBits,
	}
	if sch.Mode == config.SubBankMASA {
		ch.hasMASA = true
		ch.stacked = sch.MASAStacked
		ch.slotsPerSub = sch.MASAGroups
		ch.masa = core.NewMASASlots(sch.MASAGroups, rowBits)
	}
	if sch.Mode == config.SubBankPaired {
		ch.banksPerGrp /= 2
	}
	if sch.HasPlanes() {
		ch.planes = core.NewPlaneLogic(sch, rowBits)
	}
	for r := 0; r < sys.Geom.Ranks; r++ {
		rk := &rank{
			lastAct:     never,
			lastWrData:  never,
			nextRefresh: ch.ct.REFI * clock.Cycle(r+1) / clock.Cycle(sys.Geom.Ranks),
		}
		if !sys.Ctrl.RefreshEnabled {
			rk.nextRefresh = never * -1 // effectively infinity
		}
		for i := range rk.faw {
			rk.faw[i] = never
		}
		if sch.DDBGroupPairs {
			rk.pairDDB = make([]core.DDBWindow, sys.Geom.BankGroups/2)
			for i := range rk.pairDDB {
				rk.pairDDB[i] = core.NewDDBWindow(ch.ct.TwoCommandWindowsOn, ch.ct.TCW, ch.ct.TWTRW)
			}
		}
		for g := 0; g < sys.Geom.BankGroups; g++ {
			grp := &group{
				lastCol:    never,
				lastWrData: never,
				ddb:        core.NewDDBWindow(sch.DDB && ch.ct.TwoCommandWindowsOn, ch.ct.TCW, ch.ct.TWTRW),
			}
			for b := 0; b < ch.banksPerGrp; b++ {
				bk := &bank{lastCol: never, lastWrData: never}
				for s := 0; s < ch.subsPerBank; s++ {
					bk.subs = append(bk.subs, newSubBank(ch.slotsPerSub))
				}
				grp.banks = append(grp.banks, bk)
			}
			rk.groups = append(rk.groups, grp)
		}
		ch.ranks = append(ch.ranks, rk)
	}
	return ch
}

func (ch *Channel) sub(c Command) (*rank, *group, *bank, *subBank) {
	rk := ch.ranks[c.Rank]
	grp := rk.groups[c.Group]
	bk := grp.banks[c.Bank]
	return rk, grp, bk, bk.subs[c.Sub]
}

// ddbWindow selects the two-command window covering a column command:
// per bank group for Combo DDB, per vertically-adjacent group pair for
// the non-Combo variant.
func (ch *Channel) ddbWindow(rk *rank, grpIdx int, grp *group) *core.DDBWindow {
	if len(rk.pairDDB) > 0 {
		return &rk.pairDDB[grpIdx%len(rk.pairDDB)]
	}
	return &grp.ddb
}

// SlotFor returns the row-buffer slot a row occupies in a sub-bank (the
// MASA subarray group, or 0 for single-row-buffer schemes).
func (ch *Channel) SlotFor(row uint32) int {
	if !ch.hasMASA {
		return 0
	}
	return ch.masa.Slot(row)
}

// EarliestIssue reports the earliest cycle at which the command could
// legally issue given current state. It does not mutate state. The
// result is a lower bound that is exact for the current state; issuing
// other commands first can push it later.
func (ch *Channel) EarliestIssue(c Command) clock.Cycle {
	rk, grp, bk, sb := ch.sub(c)
	slot := &sb.slots[c.Slot]

	if rk.refPending {
		return rk.blockedUntil + 1<<40 // unavailable until refresh resolves
	}
	e := rk.blockedUntil

	switch c.Kind {
	case CmdACT:
		e = maxc(e, slot.rdyAct, rk.lastAct+ch.ct.RRD, rk.faw[rk.fawIdx]+ch.ct.FAW)
	case CmdPRE:
		e = maxc(e, slot.rdyPre)
	case CmdRD, CmdWR:
		read := c.Kind == CmdRD
		e = maxc(e, slot.rdyCol)
		// GBLs within the bank are busy one DRAM core clock per access:
		// same-bank column commands are always tCCD_L apart, even across
		// sub-banks (the paper's timing table).
		e = maxc(e, bk.lastCol+ch.ct.CCDL)
		// Channel-wide minimum column-to-column spacing.
		e = maxc(e, ch.lastCol+ch.ct.CCDS)
		// Bank-group bus: a single shared bus imposes tCCD_L/tWTR_L per
		// group; DDB replaces that with the two-command windows.
		if ch.sys.Scheme.DDB {
			e = maxc(e, ch.ddbWindow(rk, c.Group, grp).EarliestColumn(read))
		} else if ch.sys.Scheme.BankGrouping {
			e = maxc(e, grp.lastCol+ch.ct.CCDL)
			if read {
				e = maxc(e, grp.lastWrData+ch.ct.WTRL)
			}
		}
		if read {
			// Write-to-read turnaround: rank-wide tWTR_S, same-sub-bank
			// tWTR_L (internal write recovery near the array).
			e = maxc(e, rk.lastWrData+ch.ct.WTRS, bk.lastWrData+ch.ct.WTRL)
		}
		// External data-bus occupancy (and direction turnaround).
		lat := ch.ct.CWL
		if read {
			lat = ch.ct.CL
		}
		busFree := ch.busBusyUntil
		if ch.busLastRead != read {
			busFree += ch.ct.RTW
		}
		if busFree-lat > e {
			e = busFree - lat
		}
		// MASA: switching the subarray selected for the column path
		// costs tSA.
		if ch.slotsPerSub > 1 && sb.sel != c.Slot {
			e += ch.ct.SA
		}
	case CmdPREA, CmdREF:
		// Managed internally by MaintainRefresh.
		return rk.blockedUntil
	}
	return e
}

// Issue commits a command at the given cycle. A command that violates a
// timing constraint is a controller bug: without an OnViolation handler
// the engine panics with the structured Violation; with one it reports
// the violation and applies the command best-effort so a Log/Fail
// checker can keep the run alive.
func (ch *Channel) Issue(c Command, now clock.Cycle) {
	if e := ch.EarliestIssue(c); now < e {
		ch.violate(now, "timing", c, "dram: %v issued at %d, earliest legal %d", c, now, e)
	}
	rk, grp, bk, sb := ch.sub(c)
	slot := &sb.slots[c.Slot]
	rk.observe(now, &ch.Stats)
	ch.observe(c, now)

	switch c.Kind {
	case CmdACT:
		if slot.active {
			ch.violate(now, "ACT-on-open", c, "dram: ACT on open slot: %v", c)
			// Best-effort continue: re-open the slot with the new row.
			sb.openCount--
			rk.openSubs--
		}
		prevAct := rk.lastAct
		slot.active = true
		slot.row = c.Row
		slot.rdyCol = now + ch.ct.RCD
		slot.rdyPre = now + ch.ct.RAS
		slot.rdyAct = now + ch.ct.RC
		slot.lastUse = now
		slot.actAt = now
		rk.lastAct = now
		rk.faw[rk.fawIdx] = now
		rk.fawIdx = (rk.fawIdx + 1) % len(rk.faw)
		sb.openCount++
		rk.openSubs++
		ch.Stats.Acts++
		if c.EWLRHit {
			ch.Stats.ActsEWLRHit++
		}
		if c.RAPRedirect {
			ch.Stats.RAPRedirects++
		}
		if ch.tel != nil {
			ch.telACT(c, now, prevAct)
		}
	case CmdPRE:
		wasActive := slot.active
		if !slot.active {
			ch.violate(now, "PRE-on-closed", c, "dram: PRE on closed slot: %v", c)
			// Best-effort continue: account the spurious PRE as a no-op.
			sb.openCount++
			rk.openSubs++
		}
		slot.active = false
		slot.rdyAct = maxc(slot.rdyAct, now+ch.ct.RP)
		slot.rdyCol = never
		slot.rdyPre = never
		sb.openCount--
		rk.openSubs--
		ch.Stats.Pres++
		if c.Partial {
			ch.Stats.PartialPres++
		}
		if c.PlaneConflict {
			ch.Stats.PlaneConfPre++
		}
		if ch.tel != nil {
			ch.telPRE(c, now, wasActive, slot.actAt)
		}
	case CmdRD, CmdWR:
		read := c.Kind == CmdRD
		if !slot.active || slot.row != c.Row {
			ch.violate(now, "row-mismatch", c, "dram: column command to closed/mismatched row: %v (open=%v row=%#x)", c, slot.active, slot.row)
		}
		// DDB attribution: how many bus cycles later would the single
		// shared bank-group bus (tCCD_L, and tWTR_L before a read) have
		// forced this column command? Computed against pre-issue state —
		// purely observational, never feeds a timing decision.
		var ddbSaved clock.Cycle
		if ch.sys.Scheme.DDB {
			bound := grp.lastCol + ch.ct.CCDL
			if read {
				bound = maxc(bound, grp.lastWrData+ch.ct.WTRL)
			}
			if bound > now {
				ddbSaved = bound - now
			}
		}
		bk.lastCol = now
		bk.colCount++
		sb.sel = c.Slot
		grp.lastCol = now
		ch.lastCol = now
		slot.lastUse = now
		ch.ddbWindow(rk, c.Group, grp).Record(now, read)
		if read {
			slot.rdyPre = maxc(slot.rdyPre, now+ch.ct.RTP)
			ch.busBusyUntil = now + ch.ct.CL + ch.ct.Burst
			ch.Stats.Reads++
		} else {
			dataEnd := now + ch.ct.CWL + ch.ct.Burst
			slot.rdyPre = maxc(slot.rdyPre, dataEnd+ch.ct.WR)
			grp.lastWrData = dataEnd
			rk.lastWrData = dataEnd
			bk.lastWrData = dataEnd
			ch.busBusyUntil = dataEnd
			ch.Stats.Writes++
		}
		ch.busLastRead = read
		ch.Stats.DDBSavedCK += uint64(ddbSaved)
		if ch.tel != nil {
			ch.telCol(c, now, read, ddbSaved)
		}
	default:
		diag.Invariantf("dram: Issue of managed command %v", c)
	}
}

// ReadDataAt reports the cycle at which read data issued at `at`
// completes on the bus.
func (ch *Channel) ReadDataAt(at clock.Cycle) clock.Cycle { return at + ch.ct.CL + ch.ct.Burst }

// WriteDataAt reports the cycle at which write data issued at `at` has
// been transferred.
func (ch *Channel) WriteDataAt(at clock.Cycle) clock.Cycle { return at + ch.ct.CWL + ch.ct.Burst }

// Available reports whether the rank accepts new transactions (not
// refreshing and no refresh pending).
func (ch *Channel) Available(rankID int, now clock.Cycle) bool {
	rk := ch.ranks[rankID]
	return !rk.refPending && now >= rk.blockedUntil
}

// MaintainRefresh advances per-rank refresh state. The controller calls
// it once per cycle before scheduling. While a refresh is pending the
// rank stops accepting commands, open rows are precharged with PREA, and
// REF blocks the rank for tRFC.
func (ch *Channel) MaintainRefresh(now clock.Cycle) {
	if !ch.sys.Ctrl.RefreshEnabled {
		return
	}
	for _, rk := range ch.ranks {
		if now < rk.blockedUntil {
			continue
		}
		if !rk.refPending {
			if now >= rk.nextRefresh {
				rk.refPending = true
				rk.preaAt = never
			} else {
				continue
			}
		}
		if rk.openSubs > 0 && rk.preaAt == never {
			// Wait for every open slot to become precharge-able, then
			// PREA.
			ready := clock.Cycle(0)
			for _, g := range rk.groups {
				for _, b := range g.banks {
					for _, s := range b.subs {
						for i := range s.slots {
							if s.slots[i].active {
								ready = maxc(ready, s.slots[i].rdyPre)
							}
						}
					}
				}
			}
			if now < ready {
				continue
			}
			rk.observe(now, &ch.Stats)
			for _, g := range rk.groups {
				for _, b := range g.banks {
					for _, s := range b.subs {
						for i := range s.slots {
							if s.slots[i].active {
								s.slots[i].active = false
								s.slots[i].rdyAct = now + ch.ct.RP
								s.slots[i].rdyCol = never
								s.slots[i].rdyPre = never
								s.openCount = 0
								ch.Stats.Pres++
								if ch.tel != nil {
									ch.tel.C.Pres.Add(1)
									ch.tel.C.RowOpen.Observe(now - s.slots[i].actAt)
								}
							}
						}
					}
				}
			}
			rk.openSubs = 0
			ch.Stats.PreAlls++
			rk.preaAt = now
			rkID := rankIndex(ch, rk)
			ch.observe(Command{Kind: CmdPREA, Rank: rkID}, now)
			if ch.tel != nil {
				ch.tel.C.PreAlls.Add(1)
				ch.tel.Emit(telemetry.Event{At: now, Run: ch.telRun, Kind: telemetry.EvPREA, Chan: ch.chanID, Rank: uint8(rkID)})
			}
			continue
		}
		// All closed: REF once tRP from PREA has elapsed.
		refAt := clock.Cycle(0)
		if rk.preaAt != never {
			refAt = rk.preaAt + ch.ct.RP
		}
		if now >= refAt {
			rk.observe(now, &ch.Stats)
			rk.blockedUntil = now + ch.ct.RFC
			rk.nextRefresh += ch.ct.REFI
			rk.refPending = false
			rk.preaAt = never
			ch.Stats.Refreshes++
			rkID := rankIndex(ch, rk)
			ch.observe(Command{Kind: CmdREF, Rank: rkID}, now)
			if ch.tel != nil {
				ch.tel.C.Refreshes.Add(1)
				ch.tel.Emit(telemetry.Event{At: now, Run: ch.telRun, Kind: telemetry.EvREF, Chan: ch.chanID, Rank: uint8(rkID)})
			}
		}
	}
}

// farFuture is a sentinel "no event" cycle bound, small enough to add
// slack to without overflowing.
const farFuture = clock.Cycle(1) << 60

// NextRefreshEvent reports a lower bound (strictly after now) on the
// next cycle at which MaintainRefresh would change rank state: a refresh
// falling due, the pre-refresh PREA becoming legal, REF becoming legal
// tRP after PREA, or a tRFC blackout ending. It mirrors the
// MaintainRefresh decision tree without mutating state, so the run loop
// can fast-forward quiescent windows without perturbing the refresh
// command stream.
func (ch *Channel) NextRefreshEvent(now clock.Cycle) clock.Cycle {
	if !ch.sys.Ctrl.RefreshEnabled {
		return farFuture
	}
	next := farFuture
	upd := func(t clock.Cycle) {
		if t <= now {
			t = now + 1
		}
		if t < next {
			next = t
		}
	}
	for _, rk := range ch.ranks {
		if now < rk.blockedUntil {
			upd(rk.blockedUntil)
			continue
		}
		if !rk.refPending {
			upd(rk.nextRefresh)
			continue
		}
		if rk.openSubs > 0 && rk.preaAt == never {
			// Waiting for every open slot to become precharge-able.
			ready := clock.Cycle(0)
			for _, g := range rk.groups {
				for _, b := range g.banks {
					for _, s := range b.subs {
						for i := range s.slots {
							if s.slots[i].active {
								ready = maxc(ready, s.slots[i].rdyPre)
							}
						}
					}
				}
			}
			upd(ready)
			continue
		}
		refAt := clock.Cycle(0)
		if rk.preaAt != never {
			refAt = rk.preaAt + ch.ct.RP
		}
		upd(refAt)
	}
	return next
}

// Finish integrates background-energy accounting up to the given cycle.
func (ch *Channel) Finish(now clock.Cycle) {
	for _, rk := range ch.ranks {
		rk.observe(now, &ch.Stats)
	}
}

func rankIndex(ch *Channel, rk *rank) int {
	for i, r := range ch.ranks {
		if r == rk {
			return i
		}
	}
	return 0
}

func maxc(vals ...clock.Cycle) clock.Cycle {
	m := vals[0]
	for _, v := range vals[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

package dram

import (
	"eruca/internal/clock"
	"eruca/internal/core"
)

// Target addresses one transaction's DRAM coordinates within a channel.
type Target struct {
	Rank, Group, Bank, Sub int
	Row                    uint32
}

// Step is the next command a transaction needs, per the Fig. 5 flow
// evaluated against live bank state.
type Step struct {
	Cmd Command
	// Column reports that Cmd is the transaction's RD/WR itself (the
	// target row is open); otherwise Cmd is a preparatory ACT or PRE.
	Column bool
	// Hit reports the target row was already open (row-buffer hit).
	Hit bool
}

// NextStep computes the next command required to service a transaction.
// It re-evaluates from current state, so the controller can call it
// every cycle and always issue a legal step. The returned command
// carries the EWLR-hit / partial-precharge / plane-conflict annotations
// used for energy and Fig. 13b accounting.
func (ch *Channel) NextStep(t Target, write bool) Step {
	bk := ch.ranks[t.Rank].groups[t.Group].banks[t.Bank]
	sb := bk.subs[t.Sub]
	slot := ch.SlotFor(t.Row)
	base := Command{Rank: t.Rank, Group: t.Group, Bank: t.Bank, Sub: t.Sub, Row: t.Row, Slot: slot}

	col := func() Step {
		c := base
		c.Kind = CmdRD
		if write {
			c.Kind = CmdWR
		}
		return Step{Cmd: c, Column: true, Hit: true}
	}

	st := &sb.slots[slot]
	switch {
	case ch.slotsPerSub > 1:
		// MASA: one row buffer per subarray group.
		if st.active && st.row == t.Row {
			return col()
		}
		if st.active {
			c := base
			c.Kind = CmdPRE
			return Step{Cmd: c}
		}
		// Stacked MASA+ERUCA: the two VSB sub-banks share each
		// subarray's row-address latches; EWLR lets them coexist when
		// the MWLs match, otherwise the partner slot must close first
		// (a plane conflict at subarray granularity).
		if ch.stacked {
			other := bk.subs[1-t.Sub]
			ost := &other.slots[slot]
			if ost.active && ch.planes.Latch(t.Row) != ch.planes.Latch(ost.row) {
				c := base
				c.Kind = CmdPRE
				c.Sub = 1 - t.Sub
				c.PlaneConflict = true
				return Step{Cmd: c}
			}
			c := base
			c.Kind = CmdACT
			c.EWLRHit = ch.planes.EWLR() && ost.active && ch.planes.MWL(t.Row) == ch.planes.MWL(ost.row)
			return Step{Cmd: c}
		}
		c := base
		c.Kind = CmdACT
		return Step{Cmd: c}

	case ch.planes != nil:
		// VSB / paired-bank / Half-DRAM: shared plane latches between
		// the two sub-banks (Fig. 5).
		other := bk.subs[1-t.Sub]
		d := ch.planes.Decide(t.Row, t.Sub, sb.state(), other.state())
		switch d.Action {
		case core.ActionHit:
			return col()
		case core.ActionActivate:
			c := base
			c.Kind = CmdACT
			c.EWLRHit = d.EWLRHit
			c.RAPRedirect = d.RAPRedirect
			return Step{Cmd: c}
		case core.ActionPrechargeSelf:
			c := base
			c.Kind = CmdPRE
			c.Partial = d.PartialPrecharge
			return Step{Cmd: c}
		default: // core.ActionPrechargeOther
			c := base
			c.Kind = CmdPRE
			c.Sub = 1 - t.Sub
			c.PlaneConflict = true
			// Closing the partner may itself need to keep the MWL up if
			// a third row shares it; with two sub-banks that cannot
			// happen, so no Partial flag here.
			return Step{Cmd: c}
		}

	default:
		// Stock bank: single row buffer.
		if st.active && st.row == t.Row {
			return col()
		}
		if st.active {
			c := base
			c.Kind = CmdPRE
			return Step{Cmd: c}
		}
		c := base
		c.Kind = CmdACT
		return Step{Cmd: c}
	}
}

// OpenRow reports the open row of the slot that would serve the target,
// for row-hit-first scheduling.
func (ch *Channel) OpenRow(t Target) (uint32, bool) {
	sb := ch.ranks[t.Rank].groups[t.Group].banks[t.Bank].subs[t.Sub]
	st := &sb.slots[ch.SlotFor(t.Row)]
	if st.active {
		return st.row, true
	}
	return 0, false
}

// BankLoad reports per-(group,bank) column-command counts, flattened
// group-major — the utilization balance the XOR address hashing is
// supposed to deliver.
func (ch *Channel) BankLoad() []uint64 {
	var out []uint64
	for _, rk := range ch.ranks {
		for _, grp := range rk.groups {
			for _, bk := range grp.banks {
				out = append(out, bk.colCount)
			}
		}
	}
	return out
}

// VisitOpenRows visits every open slot with a ready-to-issue PRE command
// and the slot's last-use cycle. The controller uses it for the adaptive
// close-page timeout and for bounding the next close-page event when
// fast-forwarding idle windows.
func (ch *Channel) VisitOpenRows(visit func(cmd Command, lastUse clock.Cycle)) {
	for r, rk := range ch.ranks {
		for g, grp := range rk.groups {
			for b, bk := range grp.banks {
				for s, sb := range bk.subs {
					for sl := range sb.slots {
						st := &sb.slots[sl]
						if st.active {
							visit(Command{Kind: CmdPRE, Rank: r, Group: g, Bank: b, Sub: s, Slot: sl, Row: st.row}, st.lastUse)
						}
					}
				}
			}
		}
	}
}

// AnyOpenRows reports whether any slot in the channel holds an open
// row, using the per-rank open-sub-bank counters (O(ranks)).
func (ch *Channel) AnyOpenRows() bool {
	for _, rk := range ch.ranks {
		if rk.openSubs > 0 {
			return true
		}
	}
	return false
}

// IdleOpenRows visits every open slot that has not been used for at
// least idleCK cycles, handing the caller a ready-to-build PRE command.
// The controller uses it to implement the adaptive close-page timeout of
// Tab. III.
func (ch *Channel) IdleOpenRows(now, idleCK clock.Cycle, visit func(Command)) {
	ch.VisitOpenRows(func(cmd Command, lastUse clock.Cycle) {
		if now-lastUse >= idleCK {
			visit(cmd)
		}
	})
}

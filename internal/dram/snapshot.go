package dram

import (
	"fmt"

	"eruca/internal/clock"
	"eruca/internal/snapshot"
)

// Snapshot serializes the channel's full mutable timing state: bus
// occupancy, per-rank ACT/FAW/refresh/energy bookkeeping, per-group and
// per-bank column spacing, DDB two-command windows, every sub-bank's
// row slots (which together encode the plane-latch and EWLR state — the
// latches hold values derived from the open rows), and the Stats
// block. The configuration-derived fields (sys, timings, plane logic,
// MASA slotting) are rebuilt by NewChannel on restore.
func (ch *Channel) Snapshot(e *snapshot.Encoder) {
	e.I64(int64(ch.busBusyUntil))
	e.Bool(ch.busLastRead)
	e.I64(int64(ch.lastCol))
	ch.snapshotStats(e)
	e.Int(len(ch.ranks))
	for _, rk := range ch.ranks {
		rk.snapshot(e)
	}
}

func (ch *Channel) snapshotStats(e *snapshot.Encoder) {
	s := &ch.Stats
	for _, v := range []uint64{
		s.Acts, s.ActsEWLRHit, s.Reads, s.Writes, s.Pres, s.PartialPres,
		s.PlaneConfPre, s.RAPRedirects, s.DDBSavedCK, s.Refreshes, s.PreAlls,
		s.ActiveCycles, s.AllCycles,
	} {
		e.U64(v)
	}
}

func (ch *Channel) restoreStats(d *snapshot.Decoder) {
	s := &ch.Stats
	for _, p := range []*uint64{
		&s.Acts, &s.ActsEWLRHit, &s.Reads, &s.Writes, &s.Pres, &s.PartialPres,
		&s.PlaneConfPre, &s.RAPRedirects, &s.DDBSavedCK, &s.Refreshes, &s.PreAlls,
		&s.ActiveCycles, &s.AllCycles,
	} {
		*p = d.U64()
	}
}

func (rk *rank) snapshot(e *snapshot.Encoder) {
	e.I64(int64(rk.lastAct))
	for _, f := range rk.faw {
		e.I64(int64(f))
	}
	e.Int(rk.fawIdx)
	e.Int(rk.openSubs)
	e.I64(int64(rk.lastWrData))
	e.I64(int64(rk.nextRefresh))
	e.I64(int64(rk.blockedUntil))
	e.Bool(rk.refPending)
	e.I64(int64(rk.preaAt))
	e.I64(int64(rk.lastEnergyAt))
	e.U64(rk.activeAccum)
	e.Int(len(rk.pairDDB))
	for i := range rk.pairDDB {
		rk.pairDDB[i].Snapshot(e)
	}
	e.Int(len(rk.groups))
	for _, grp := range rk.groups {
		grp.snapshot(e)
	}
}

func (grp *group) snapshot(e *snapshot.Encoder) {
	e.I64(int64(grp.lastCol))
	e.I64(int64(grp.lastWrData))
	grp.ddb.Snapshot(e)
	e.Int(len(grp.banks))
	for _, bk := range grp.banks {
		bk.snapshot(e)
	}
}

func (bk *bank) snapshot(e *snapshot.Encoder) {
	e.I64(int64(bk.lastCol))
	e.I64(int64(bk.lastWrData))
	e.U64(bk.colCount)
	e.Int(len(bk.subs))
	for _, sb := range bk.subs {
		e.Int(sb.sel)
		e.Int(sb.openCount)
		e.Int(len(sb.slots))
		for i := range sb.slots {
			sl := &sb.slots[i]
			e.Bool(sl.active)
			e.U32(sl.row)
			e.I64(int64(sl.rdyAct))
			e.I64(int64(sl.rdyCol))
			e.I64(int64(sl.rdyPre))
			e.I64(int64(sl.lastUse))
			e.I64(int64(sl.actAt))
		}
	}
}

// Restore rebuilds the channel state from a Snapshot stream. The
// channel must have been constructed with NewChannel over the same
// system configuration (geometry mismatches are detected and reported).
func (ch *Channel) Restore(d *snapshot.Decoder) error {
	ch.busBusyUntil = clock.Cycle(d.I64())
	ch.busLastRead = d.Bool()
	ch.lastCol = clock.Cycle(d.I64())
	ch.restoreStats(d)
	n := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if n != len(ch.ranks) {
		return fmt.Errorf("dram: snapshot has %d ranks, channel has %d", n, len(ch.ranks))
	}
	for _, rk := range ch.ranks {
		if err := rk.restore(d); err != nil {
			return err
		}
	}
	return d.Err()
}

func (rk *rank) restore(d *snapshot.Decoder) error {
	rk.lastAct = clock.Cycle(d.I64())
	for i := range rk.faw {
		rk.faw[i] = clock.Cycle(d.I64())
	}
	rk.fawIdx = d.Int()
	rk.openSubs = d.Int()
	rk.lastWrData = clock.Cycle(d.I64())
	rk.nextRefresh = clock.Cycle(d.I64())
	rk.blockedUntil = clock.Cycle(d.I64())
	rk.refPending = d.Bool()
	rk.preaAt = clock.Cycle(d.I64())
	rk.lastEnergyAt = clock.Cycle(d.I64())
	rk.activeAccum = d.U64()
	np := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if np != len(rk.pairDDB) {
		return fmt.Errorf("dram: snapshot has %d pair-DDB windows, rank has %d", np, len(rk.pairDDB))
	}
	for i := range rk.pairDDB {
		rk.pairDDB[i].Restore(d)
	}
	ng := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if ng != len(rk.groups) {
		return fmt.Errorf("dram: snapshot has %d groups, rank has %d", ng, len(rk.groups))
	}
	if rk.fawIdx < 0 || rk.fawIdx >= len(rk.faw) {
		return fmt.Errorf("dram: snapshot fawIdx %d out of range", rk.fawIdx)
	}
	for _, grp := range rk.groups {
		if err := grp.restore(d); err != nil {
			return err
		}
	}
	return d.Err()
}

func (grp *group) restore(d *snapshot.Decoder) error {
	grp.lastCol = clock.Cycle(d.I64())
	grp.lastWrData = clock.Cycle(d.I64())
	grp.ddb.Restore(d)
	nb := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if nb != len(grp.banks) {
		return fmt.Errorf("dram: snapshot has %d banks, group has %d", nb, len(grp.banks))
	}
	for _, bk := range grp.banks {
		if err := bk.restore(d); err != nil {
			return err
		}
	}
	return d.Err()
}

func (bk *bank) restore(d *snapshot.Decoder) error {
	bk.lastCol = clock.Cycle(d.I64())
	bk.lastWrData = clock.Cycle(d.I64())
	bk.colCount = d.U64()
	ns := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if ns != len(bk.subs) {
		return fmt.Errorf("dram: snapshot has %d sub-banks, bank has %d", ns, len(bk.subs))
	}
	for _, sb := range bk.subs {
		sb.sel = d.Int()
		sb.openCount = d.Int()
		nsl := d.Int()
		if err := d.Err(); err != nil {
			return err
		}
		if nsl != len(sb.slots) {
			return fmt.Errorf("dram: snapshot has %d row slots, sub-bank has %d", nsl, len(sb.slots))
		}
		if sb.sel < 0 || sb.sel >= len(sb.slots) {
			return fmt.Errorf("dram: snapshot slot selector %d out of range", sb.sel)
		}
		for i := range sb.slots {
			sl := &sb.slots[i]
			sl.active = d.Bool()
			sl.row = d.U32()
			sl.rdyAct = clock.Cycle(d.I64())
			sl.rdyCol = clock.Cycle(d.I64())
			sl.rdyPre = clock.Cycle(d.I64())
			sl.lastUse = clock.Cycle(d.I64())
			sl.actAt = clock.Cycle(d.I64())
		}
	}
	return d.Err()
}

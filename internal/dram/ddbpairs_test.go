package dram

import (
	"testing"

	"eruca/internal/clock"
	"eruca/internal/config"
)

// The non-Combo DDB pairs groups 0-2 and 1-3 (Sec. V): the two-command
// window spans a group pair, not a single group.
func TestDDBGroupPairsWindowSpansPair(t *testing.T) {
	sys := config.PairedBankNonCombo(4, 2400)
	ch, ct := testChannel(t, sys)
	if !ct.TwoCommandWindowsOn {
		t.Fatal("windows should bind at 2.4GHz")
	}
	// Open rows in groups 0 and 2 (one pair) plus group 1 (other pair).
	open := func(grp, bank int, row uint32) {
		c := Command{Kind: CmdACT, Group: grp, Bank: bank, Row: row}
		e := ch.EarliestIssue(c)
		ch.Issue(c, e)
	}
	open(0, 0, 7)
	open(2, 0, 9)
	open(1, 0, 11)

	now := clock.Cycle(1000)
	r1 := issueAt(t, ch, Command{Kind: CmdRD, Group: 0, Row: 7}, now)
	r2 := issueAt(t, ch, Command{Kind: CmdRD, Group: 2, Row: 9}, r1)
	if r2-r1 >= ct.CCDL {
		t.Errorf("cross-group pair spacing = %d, want < tCCD_L (%d): pair shares two buses", r2-r1, ct.CCDL)
	}
	// Third read in the same pair is window-blocked...
	e0 := ch.EarliestIssue(Command{Kind: CmdRD, Group: 0, Row: 7})
	if e0 < r1+ct.TCW {
		t.Errorf("third pair read at %d, want >= first + tTCW = %d", e0, r1+ct.TCW)
	}
	// ...but the other pair (group 1) is unconstrained by this window.
	e1 := ch.EarliestIssue(Command{Kind: CmdRD, Group: 1, Row: 11})
	if e1 >= r1+ct.TCW {
		t.Errorf("other pair blocked by this pair's window: %d", e1)
	}
}

// At the default frequency the pair variant removes intra-group tCCD_L
// like Combo DDB does.
func TestDDBGroupPairsLowFrequency(t *testing.T) {
	sys := config.PairedBankNonCombo(4, config.DefaultBusMHz)
	ch, ct := testChannel(t, sys)
	a := Command{Kind: CmdACT, Group: 0, Bank: 0, Sub: 0, Row: 0x00100}
	b := Command{Kind: CmdACT, Group: 0, Bank: 1, Sub: 0, Row: 0x04100}
	ch.Issue(a, 0)
	issueAt(t, ch, b, 0)
	r1 := issueAt(t, ch, Command{Kind: CmdRD, Group: 0, Bank: 0, Sub: 0, Row: 0x00100}, 100)
	r2 := ch.EarliestIssue(Command{Kind: CmdRD, Group: 0, Bank: 1, Sub: 0, Row: 0x04100})
	if r2-r1 != ct.CCDS {
		t.Errorf("same-group spacing under pair DDB = %d, want tCCD_S = %d", r2-r1, ct.CCDS)
	}
}

func TestDDBGroupPairsRequiresDDB(t *testing.T) {
	sch := config.Scheme{Name: "bad", Mode: config.SubBankNone, DDBGroupPairs: true, BankGrouping: true}
	if err := sch.Validate(); err == nil {
		t.Error("DDBGroupPairs without DDB validated")
	}
}

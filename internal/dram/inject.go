package dram

import (
	"fmt"
	"strings"

	"eruca/internal/clock"
)

// This file holds the deliberate fault hooks used by the chaos harness
// (internal/faults). Each hook perturbs channel state *without* going
// through the Issue protocol path, so the perturbation is invisible to
// the timing engine's own bookkeeping but visible to an attached
// protocol checker as soon as the controller acts on the corrupted
// state. None of these are called outside fault-injection runs.

// InjectRefreshDelay postpones the rank's next due refresh by delta
// cycles — the classic "lost refresh" fault. A delay beyond tREFI is
// caught by the checker's refresh-interval accounting. It reports
// whether the delay was applied (a refresh already in flight cannot be
// delayed).
func (ch *Channel) InjectRefreshDelay(rank int, delta clock.Cycle) bool {
	if rank < 0 || rank >= len(ch.ranks) {
		return false
	}
	rk := ch.ranks[rank]
	if rk.refPending {
		return false
	}
	rk.nextRefresh += delta
	return true
}

// InjectForcePrecharge silently closes the first open row slot it finds,
// clearing its timing guards, as if a row of latches dropped their
// state. The controller's next ACT to the slot appears as ACT-on-open to
// a checker that tracked the un-precharged row. Reports whether any slot
// was open to corrupt.
func (ch *Channel) InjectForcePrecharge() bool {
	for _, rk := range ch.ranks {
		for _, grp := range rk.groups {
			for _, bk := range grp.banks {
				for _, sb := range bk.subs {
					for i := range sb.slots {
						st := &sb.slots[i]
						if !st.active {
							continue
						}
						st.active = false
						st.rdyAct = 0
						st.rdyCol = never
						st.rdyPre = never
						sb.openCount--
						rk.openSubs--
						return true
					}
				}
			}
		}
	}
	return false
}

// InjectTimingReset wipes the channel's column/activation spacing state
// (tCCD bases, data-bus occupancy, tRRD/tFAW history), modeling a
// controller whose next-allowed registers glitched to zero. Subsequent
// commands can then issue back-to-back, which the checker flags as
// tCCD/tRRD/tFAW/data-bus violations.
func (ch *Channel) InjectTimingReset() bool {
	ch.lastCol = never
	ch.busBusyUntil = 0
	for _, rk := range ch.ranks {
		rk.lastAct = never
		rk.lastWrData = never
		for i := range rk.faw {
			rk.faw[i] = never
		}
		for _, grp := range rk.groups {
			grp.lastCol = never
			grp.lastWrData = never
			for _, bk := range grp.banks {
				bk.lastCol = never
				bk.lastWrData = never
				for _, sb := range bk.subs {
					for i := range sb.slots {
						st := &sb.slots[i]
						if st.active {
							st.rdyCol = 0
							st.rdyPre = 0
						}
					}
				}
			}
		}
	}
	return true
}

// InjectRowCorruption flips the top row-address bit of every open slot —
// corrupted plane-latch state. In plane-sharing schemes the channel's
// activation decisions then diverge from the ground truth a checker
// tracked from the command stream, surfacing as plane-invariant or
// row-mismatch violations. Reports whether any open slot was corrupted.
func (ch *Channel) InjectRowCorruption() bool {
	if ch.rowBits < 1 {
		return false
	}
	flip := uint32(1) << uint(ch.rowBits-1)
	any := false
	for _, rk := range ch.ranks {
		for _, grp := range rk.groups {
			for _, bk := range grp.banks {
				for _, sb := range bk.subs {
					for i := range sb.slots {
						if sb.slots[i].active {
							sb.slots[i].row ^= flip
							any = true
						}
					}
				}
			}
		}
	}
	return any
}

// DescribeState renders a human-readable snapshot of the channel for
// deadlock reports and crash dumps: per-rank refresh state and the open
// rows (bounded per rank).
func (ch *Channel) DescribeState(now clock.Cycle) string {
	var b strings.Builder
	for r, rk := range ch.ranks {
		fmt.Fprintf(&b, "  rank %d: openSubs=%d refPending=%v blockedUntil=%d nextRefresh=%d\n",
			r, rk.openSubs, rk.refPending, rk.blockedUntil, rk.nextRefresh)
		listed := 0
		for g, grp := range rk.groups {
			for bkI, bk := range grp.banks {
				for s, sb := range bk.subs {
					for sl := range sb.slots {
						st := &sb.slots[sl]
						if !st.active || listed >= 8 {
							continue
						}
						fmt.Fprintf(&b, "    open bg%d bk%d sb%d slot%d row %#x (idle %d, rdyPre %d)\n",
							g, bkI, s, sl, st.row, now-st.lastUse, st.rdyPre)
						listed++
					}
				}
			}
		}
	}
	return b.String()
}

package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"eruca/internal/obs"
	"eruca/internal/search"
	"eruca/internal/server"
)

// traced is the startNode mod that turns request tracing on.
func traced(id string, _ *Config, sc *server.Config) { sc.Tracer = obs.NewTracer(id, 4096) }

// postSpecTraced submits spec with a client traceparent, as an
// OpenTelemetry-instrumented client would.
func postSpecTraced(t *testing.T, base string, spec server.JobSpec, root obs.SpanContext) (wireJob, int) {
	t.Helper()
	b, _ := json.Marshal(spec)
	req, err := http.NewRequest("POST", base+"/v1/jobs", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.Header, root.Traceparent())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v wireJob
	_ = json.NewDecoder(resp.Body).Decode(&v)
	return v, resp.StatusCode
}

// fetchTraceSpans reads one trace's spans from a node's /v1/traces.
func fetchTraceSpans(t *testing.T, base, traceID string) []obs.Span {
	t.Helper()
	resp, err := http.Get(base + "/v1/traces?trace=" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/traces: status %d", resp.StatusCode)
	}
	var v struct {
		Spans []obs.Span `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v.Spans
}

// gatherTrace polls every node's trace endpoint until each wanted span
// kind appears (async span closure makes an immediate read racy).
func gatherTrace(t *testing.T, nodes []*testNode, traceID string, want ...obs.Kind) []obs.Span {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		var spans []obs.Span
		for _, n := range nodes {
			spans = append(spans, fetchTraceSpans(t, n.base, traceID)...)
		}
		have := map[obs.Kind]bool{}
		for _, sp := range spans {
			have[sp.Kind] = true
		}
		missing := false
		for _, k := range want {
			if !have[k] {
				missing = true
			}
		}
		if !missing {
			return spans
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never grew the wanted kinds %v; have %v", traceID, want, have)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// assertConnected checks the parentage invariant: every span's parent is
// either the client's root span or another span in the trace — one
// connected tree, no orphans.
func assertConnected(t *testing.T, spans []obs.Span, root obs.SpanContext) {
	t.Helper()
	ids := map[string]bool{}
	for _, sp := range spans {
		ids[sp.ID] = true
	}
	for _, sp := range spans {
		if sp.Trace != root.Trace {
			t.Errorf("span %s (%s on %s) carries trace %s, want %s", sp.ID, sp.Kind, sp.Node, sp.Trace, root.Trace)
		}
		if sp.Parent == "" {
			t.Errorf("span %s (%s on %s) has no parent — disconnected root inside the trace", sp.ID, sp.Kind, sp.Node)
			continue
		}
		if sp.Parent != root.Span && !ids[sp.Parent] {
			t.Errorf("span %s (%s on %s) is an orphan: parent %s not in the trace", sp.ID, sp.Kind, sp.Node, sp.Parent)
		}
	}
}

// spanOf returns the first span of the given kind (ok=false when absent).
func spanOf(spans []obs.Span, kind obs.Kind) (obs.Span, bool) {
	for _, sp := range spans {
		if sp.Kind == kind {
			return sp, true
		}
	}
	return obs.Span{}, false
}

// TestClusterTraceEndToEnd is the acceptance test for the tracing
// tentpole: one submission through a non-owner node yields ONE connected
// trace spanning the forwarding node, the owner's admit/queue/schedule/
// run pipeline, and a proxied read through a third node — and tracing
// changes nothing about the result (byte-identical to an untraced run).
func TestClusterTraceEndToEnd(t *testing.T) {
	nodes := startCluster(t, 3, 2*time.Second, traced)
	root := obs.SpanContext{Trace: "aaaabbbbccccddddaaaabbbbccccdddd", Span: "1234123412341234"}

	// Submit through the coordinator a spec owned by w1: the coordinator
	// must forward, and the admit on w1 must continue the client's trace.
	spec := specOwnedBy(t, nodes[0], "w1")
	v, code := postSpecTraced(t, nodes[0].base, spec, root)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("traced submit: status %d", code)
	}
	if nodeOf(v.ID) != "w1" {
		t.Fatalf("submission landed on %s, want w1", v.ID)
	}
	res := awaitDone(t, nodes[1].base, v.ID, 60*time.Second)

	// A by-ID read through w2 (neither owner nor submitter) proxies to
	// w1; with the client traceparent on the request the proxy hop joins
	// the same trace.
	req, err := http.NewRequest("GET", nodes[2].base+"/v1/jobs/"+v.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.Header, root.Traceparent())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	spans := gatherTrace(t, nodes, root.Trace,
		obs.KindForward, obs.KindAdmit, obs.KindQueueWait, obs.KindSchedule, obs.KindRun, obs.KindProxy)
	assertConnected(t, spans, root)

	fw, _ := spanOf(spans, obs.KindForward)
	if fw.Node != "c" {
		t.Errorf("forward span on node %q, want the submitting node c", fw.Node)
	}
	if fw.Parent != root.Span {
		t.Errorf("forward span parents to %s, want the client root %s", fw.Parent, root.Span)
	}
	ad, _ := spanOf(spans, obs.KindAdmit)
	if ad.Node != "w1" {
		t.Errorf("admit span on node %q, want the owner w1", ad.Node)
	}
	if ad.Parent != fw.ID {
		t.Errorf("admit span parents to %s, want the forward span %s", ad.Parent, fw.ID)
	}
	px, _ := spanOf(spans, obs.KindProxy)
	if px.Node != "w2" {
		t.Errorf("proxy span on node %q, want the proxying node w2", px.Node)
	}
	run, _ := spanOf(spans, obs.KindRun)
	if run.Job != v.ID {
		t.Errorf("run span tagged job %q, want %s", run.Job, v.ID)
	}

	// Purely observational: an untraced node running the same spec
	// produces a byte-identical result.
	solo := startNode(t, "solo", "", time.Minute, false)
	pv, _ := postSpec(t, solo.base, spec, "", true)
	plain := awaitDone(t, solo.base, pv.ID, 60*time.Second)
	if plain.Result != res.Result {
		t.Errorf("traced result differs from untraced run:\n%s\nvs\n%s", res.Result, plain.Result)
	}
}

// TestClusterTraceMigration: an evicted member's job is re-homed on a
// survivor, and the survivor's re-admit parents to the coordinator's
// migrate span — which itself parents to the dead job's admit span, so
// the whole fault-tolerance detour stays on the original submission's
// trace.
func TestClusterTraceMigration(t *testing.T) {
	ttl := 500 * time.Millisecond
	coord := startNode(t, "c", "", ttl, true, traced)
	w1 := startNode(t, "w1", coord.peerBase, ttl, true, traced)
	_ = w1
	doomed := startNode(t, "w2", coord.peerBase, ttl, false, traced)
	body, _ := json.Marshal(joinRequest{Node: "w2", Addr: doomed.cfg.PublicAddr, Peer: doomed.cfg.PeerAddr})
	resp, err := http.Post(coord.peerBase+"/v1/cluster/join", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	root := obs.SpanContext{Trace: "ffffeeeeddddccccbbbbaaaa99998888", Span: "abcdabcdabcdabcd"}
	v, code := postSpecTraced(t, doomed.base, specN(41), root)
	if code != http.StatusAccepted {
		t.Fatalf("submit to doomed member: status %d", code)
	}

	deadline := time.Now().Add(10 * time.Second)
	for coord.ring.Has("w2") {
		if time.Now().After(deadline) {
			t.Fatal("doomed member was never evicted")
		}
		time.Sleep(25 * time.Millisecond)
	}
	awaitDone(t, coord.base, v.ID, 60*time.Second)

	all := []*testNode{coord, w1, doomed}
	spans := gatherTrace(t, all, root.Trace, obs.KindAdmit, obs.KindMigrate, obs.KindRun)
	assertConnected(t, spans, root)

	mig, _ := spanOf(spans, obs.KindMigrate)
	if mig.Node != "c" {
		t.Errorf("migrate span on node %q, want the coordinator", mig.Node)
	}
	// The survivor's re-admit ("admit migrated") must hang off the
	// migrate span; the doomed node's original admit off the client root.
	var sawMigratedAdmit, sawOriginalAdmit bool
	for _, sp := range spans {
		if sp.Kind != obs.KindAdmit {
			continue
		}
		switch {
		case sp.Parent == mig.ID:
			sawMigratedAdmit = true
			if sp.Node == "w2" {
				t.Errorf("re-admit landed back on the evicted node")
			}
		case sp.Node == "w2" && sp.Parent == root.Span:
			sawOriginalAdmit = true
		}
	}
	if !sawOriginalAdmit {
		t.Error("no admit span on the doomed member parented to the client root")
	}
	if !sawMigratedAdmit {
		t.Error("no admit span parented to the migrate span — the migration left the trace")
	}
}

// TestClusterSearchTraceFanout: the design-point evals a search job fans
// out to other members stay on the search submission's trace —
// eval_fanout hops on the search's node, admits on the points' owners.
func TestClusterSearchTraceFanout(t *testing.T) {
	nodes := startCluster(t, 3, 2*time.Second, traced)
	root := obs.SpanContext{Trace: "0123456789abcdef0123456789abcdef", Span: "fedcba9876543210"}
	spec := server.JobSpec{
		Kind: "search",
		Search: &search.Spec{
			Dims: []search.DimSpec{
				{Name: "planes", Values: []string{"1", "2", "4", "8"}},
				{Name: "ddb"},
			},
			Seed:   7,
			Instrs: 4000,
			Rungs:  2,
		},
	}
	v, code := postSpecTraced(t, nodes[0].base, spec, root)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("search submit status %d", code)
	}
	awaitDone(t, nodes[0].base, v.ID, 120*time.Second)

	spans := gatherTrace(t, nodes, root.Trace, obs.KindAdmit, obs.KindRun, obs.KindEvalFanout)
	assertConnected(t, spans, root)

	// The fan-out must actually have crossed nodes: admit spans on at
	// least two distinct members all inside one trace.
	admitNodes := map[string]bool{}
	for _, sp := range spans {
		if sp.Kind == obs.KindAdmit {
			admitNodes[sp.Node] = true
		}
	}
	if len(admitNodes) < 2 {
		t.Errorf("trace admits confined to %v; expected evals admitted on other members", admitNodes)
	}
}

// TestClusterSSEKeepaliveThroughProxy: an idle event stream carries
// periodic ": keepalive" comment frames, and they survive the cluster's
// streaming proxy path.
func TestClusterSSEKeepaliveThroughProxy(t *testing.T) {
	fastKeepalive := func(id string, _ *Config, sc *server.Config) { sc.SSEKeepalive = 25 * time.Millisecond }
	nodes := startCluster(t, 2, 2*time.Second, fastKeepalive)

	// A long job parked on w1: its event stream goes quiet while the
	// simulation runs, which is exactly when keepalives matter.
	long := server.JobSpec{Kind: "sim", System: "ddr4", Mix: "mix0", Instrs: 50_000_000, Frag: 0.1}
	v, code := postSpec(t, nodes[1].base, long, "", true)
	if code != http.StatusAccepted {
		t.Fatalf("submit long job: status %d", code)
	}

	sawKeepalive := func(base string) bool {
		req, err := http.NewRequest("GET", base+"/v1/jobs/"+v.ID+"/events", nil)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		resp, err := http.DefaultClient.Do(req.WithContext(ctx))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if strings.HasPrefix(sc.Text(), ": keepalive") {
				return true
			}
		}
		return false
	}

	if !sawKeepalive(nodes[1].base) {
		t.Error("no keepalive comment on the direct stream")
	}
	if !sawKeepalive(nodes[0].base) {
		t.Error("no keepalive comment through the proxy")
	}

	// Cancel rather than simulate 50M instructions to the end.
	req, _ := http.NewRequest("DELETE", nodes[1].base+"/v1/jobs/"+v.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	}
}

// TestClusterMetricsMergedAndSorted: the cluster /metrics exposition is
// one deterministically ordered document — server, simulator and cluster
// families interleaved in sorted order with the hop-latency family
// present — served with the exact Prometheus text content type.
func TestClusterMetricsMergedAndSorted(t *testing.T) {
	nodes := startCluster(t, 2, 2*time.Second, traced)
	v, _ := postSpec(t, nodes[0].base, specN(3), "", true)
	awaitDone(t, nodes[0].base, v.ID, 60*time.Second)

	resp, err := http.Get(nodes[0].base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("Content-Type = %q", ct)
	}
	var families []string
	body := new(strings.Builder)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		body.WriteString(line)
		body.WriteByte('\n')
		if name, ok := strings.CutPrefix(line, "# HELP "); ok {
			families = append(families, strings.SplitN(name, " ", 2)[0])
		}
	}
	if len(families) < 10 {
		t.Fatalf("only %d families on the merged scrape", len(families))
	}
	for i := 1; i < len(families); i++ {
		if families[i] <= families[i-1] {
			t.Errorf("families out of order: %s after %s", families[i], families[i-1])
		}
	}
	for _, want := range []string{"eruca_cluster_hop_seconds", "eruca_cluster_members", "eruca_jobs_submitted_total", "eruca_spans_total"} {
		if !strings.Contains(body.String(), want) {
			t.Errorf("merged scrape missing family %s", want)
		}
	}
}

package cluster

import "eruca/internal/server"

// Wire messages of the peer protocol (JSON over the peer listener).

// Member is one cluster member as advertised to peers.
type Member struct {
	ID   string `json:"id"`
	Addr string `json:"addr"` // public API host:port
	Peer string `json:"peer"` // peer (cluster) host:port
}

// joinRequest registers a node with the coordinator.
type joinRequest struct {
	Node string `json:"node"`
	Addr string `json:"addr"`
	Peer string `json:"peer"`
}

// joinResponse grants a lease and ships the membership view.
type joinResponse struct {
	Epoch   int64    `json:"epoch"`
	TTLMS   int64    `json:"ttl_ms"`
	Members []Member `json:"members"`
}

// jobReport is one non-terminal job in a heartbeat: everything the
// coordinator needs to re-enqueue it on a survivor if this node dies.
// Traceparent carries the job's admit-span context so a migration after
// eviction continues the original submission's trace.
type jobReport struct {
	ID          string         `json:"id"`
	Hash        string         `json:"hash"`
	Idem        string         `json:"idem,omitempty"`
	Spec        server.JobSpec `json:"spec"`
	Traceparent string         `json:"traceparent,omitempty"`
}

// heartbeatRequest renews a lease and reports in-flight work.
type heartbeatRequest struct {
	Node  string      `json:"node"`
	Epoch int64       `json:"epoch"`
	Jobs  []jobReport `json:"jobs"`
}

// heartbeatResponse refreshes the member view.
type heartbeatResponse struct {
	Members []Member `json:"members"`
}

// placeRequest eagerly records placements at admission time (instead of
// waiting for the next heartbeat, which a crash could preempt).
type placeRequest struct {
	Node string      `json:"node"`
	Jobs []jobReport `json:"jobs"`
}

// migrateRequest re-homes one evicted job onto the receiving survivor.
// Traceparent is the coordinator's migrate-span context: the survivor's
// re-admit parents to it, keeping one connected trace across the
// eviction.
type migrateRequest struct {
	Job         string         `json:"job"` // the original (dead-node) job ID
	Hash        string         `json:"hash"`
	Idem        string         `json:"idem,omitempty"`
	Spec        server.JobSpec `json:"spec"`
	From        string         `json:"from"` // the evicted node
	Traceparent string         `json:"traceparent,omitempty"`
}

// migrateResponse returns the survivor's job ID for the alias table.
type migrateResponse struct {
	ID string `json:"id"`
}

// resolveResponse maps a (possibly migrated) job ID to where it now
// lives.
type resolveResponse struct {
	Addr string `json:"addr"` // public API address of the current owner
	ID   string `json:"id"`   // the job ID on that owner
}

// leaveRequest is the graceful departure: the coordinator drops the
// lease and migrates whatever the node still had (normally nothing —
// the node drains first).
type leaveRequest struct {
	Node  string `json:"node"`
	Epoch int64  `json:"epoch"`
}

package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"eruca/internal/obs"
	"eruca/internal/server"
)

// This file is the search fan-out: one node runs a "search" job (placed
// there by the usual ring routing of its spec hash), and every "eval"
// the engine requests is routed by ITS spec hash to the point's ring
// owner — so a single search spreads its simulations across the whole
// cluster, each point lands where its cached result (if any) already
// lives, and two searches exploring overlapping spaces dedup on the
// same owners. The hook is installed as server.Config.EvalRemote.

// evalPollInterval paces result polling for forwarded evals. Eval jobs
// are short (rung budgets start at 1000 instructions), so the first
// polls come quickly; the interval backs off to cap chatter on the
// full-budget rungs.
const (
	evalPollInterval = 25 * time.Millisecond
	evalPollMax      = 500 * time.Millisecond
)

// evalRemote implements server.Config.EvalRemote. handled=false — "run
// it locally" — covers every non-deterministic obstacle: not joined
// yet, we own the point, the owner is unreachable or draining, or the
// remote job was canceled. Only a remote result (or a remote
// deterministic failure) is surfaced, because the search engine records
// whatever this returns as the point's permanent outcome.
func (n *Node) evalRemote(ctx context.Context, spec server.JobSpec) (string, bool, error) {
	if !n.joined.Load() {
		return "", false, nil
	}
	hash := spec.Hash()
	owner := n.ring.Owner(hash)
	if owner == "" || owner == n.cfg.NodeID {
		return "", false, nil
	}
	m, ok := n.member(owner)
	if !ok {
		return "", false, nil
	}
	br := n.breakers.For(m.Addr)
	if !br.Allow() {
		return "", false, nil
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return "", false, nil
	}
	req, err := http.NewRequestWithContext(ctx, "POST", "http://"+m.Addr+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return "", false, nil
	}
	// The fan-out span parents to the search's run span (carried on ctx)
	// and is injected into the owner's submission, so the remote eval's
	// admit/run spans join the search job's trace.
	fs := n.tracer.Start(obs.FromContext(ctx), obs.KindEvalFanout, "eval fan-out")
	fs.SetAttr("owner", owner)
	defer fs.End()
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(forwardedHeader, n.cfg.NodeID)
	obs.Inject(req.Header, fs.Context())
	// Content-derived idempotency: concurrent searches (or a retry after
	// a lost response) asking the owner for the same point share one job.
	req.Header.Set("Idempotency-Key", "eval-"+hash)
	resp, err := n.client.Do(req)
	if err != nil {
		fs.SetError(err)
		br.Failure()
		return "", false, nil
	}
	v, err := decodeView(resp)
	if err != nil {
		// 429/503 included: the owner is loaded or draining — evaluate
		// locally rather than camp on its queue.
		return "", false, nil
	}
	br.Success()
	n.metrics.evalsForwarded.Add(1)

	interval := evalPollInterval
	for {
		switch v.State {
		case server.StateDone:
			return v.Result, true, nil
		case server.StateFailed:
			// A deterministic simulation failure: the same point would
			// fail here too, so let the engine record it.
			msg := "remote eval failed"
			if v.Error != nil {
				msg = v.Error.Message
			}
			err := errors.New(msg)
			fs.SetError(err)
			return "", true, err
		case server.StateCanceled:
			return "", false, nil // remote drain/cancel: not our outcome
		}
		select {
		case <-ctx.Done():
			return "", false, ctx.Err()
		case <-time.After(interval):
		}
		if interval *= 2; interval > evalPollMax {
			interval = evalPollMax
		}
		v, err = n.fetchEvalView(ctx, m.Addr, v.ID)
		if err != nil {
			if ctx.Err() != nil {
				return "", false, ctx.Err()
			}
			br.Failure()
			// The owner died mid-eval. Fall back to a local run: the
			// result is deterministic either way, we just lose the dedup.
			return "", false, nil
		}
	}
}

// evalView is the subset of the server's job view the fan-out reads.
type evalView struct {
	ID     string       `json:"id"`
	State  server.State `json:"state"`
	Result string       `json:"result,omitempty"`
	Error  *struct {
		Message string `json:"message"`
	} `json:"error,omitempty"`
}

func decodeView(resp *http.Response) (evalView, error) {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		io.Copy(io.Discard, resp.Body)
		return evalView{}, fmt.Errorf("cluster: eval submit status %d", resp.StatusCode)
	}
	var v evalView
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&v); err != nil {
		return evalView{}, err
	}
	return v, nil
}

// fetchEvalView polls one forwarded eval job by ID.
func (n *Node) fetchEvalView(ctx context.Context, addr, id string) (evalView, error) {
	req, err := http.NewRequestWithContext(ctx, "GET", "http://"+addr+"/v1/jobs/"+id, nil)
	if err != nil {
		return evalView{}, err
	}
	req.Header.Set(forwardedHeader, n.cfg.NodeID)
	resp, err := n.client.Do(req)
	if err != nil {
		return evalView{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return evalView{}, fmt.Errorf("cluster: eval poll status %d", resp.StatusCode)
	}
	var v evalView
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&v); err != nil {
		return evalView{}, err
	}
	return v, nil
}

package cluster

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("spec-hash-%04d", i)
	}
	return keys
}

func TestRingDeterministicOwnership(t *testing.T) {
	a, b := newRing(), newRing()
	for _, n := range []string{"n1", "n2", "n3"} {
		a.Add(n)
	}
	// Insertion order must not matter: every router agrees on owners.
	for _, n := range []string{"n3", "n1", "n2"} {
		b.Add(n)
	}
	for _, k := range ringKeys(200) {
		if ao, bo := a.Owner(k), b.Owner(k); ao != bo {
			t.Fatalf("owner(%s): %s vs %s across insertion orders", k, ao, bo)
		}
	}
}

func TestRingBalance(t *testing.T) {
	r := newRing()
	for _, n := range []string{"n1", "n2", "n3"} {
		r.Add(n)
	}
	counts := map[string]int{}
	keys := ringKeys(3000)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	for n, c := range counts {
		frac := float64(c) / float64(len(keys))
		if frac < 0.20 || frac > 0.47 {
			t.Errorf("member %s owns %.1f%% of keys; want roughly a third", n, frac*100)
		}
	}
}

func TestRingRemovalMovesOnlyOrphanedKeys(t *testing.T) {
	r := newRing()
	for _, n := range []string{"n1", "n2", "n3"} {
		r.Add(n)
	}
	keys := ringKeys(1000)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = r.Owner(k)
	}
	r.Remove("n2")
	for _, k := range keys {
		after := r.Owner(k)
		if after == "n2" {
			t.Fatalf("key %s still owned by removed member", k)
		}
		// Consistency: keys not owned by the removed member keep their
		// owner — the cache shards of survivors stay warm.
		if before[k] != "n2" && after != before[k] {
			t.Errorf("key %s moved %s -> %s though %s is still a member", k, before[k], after, before[k])
		}
	}
}

func TestRingSuccessorsDistinctAndStartAtOwner(t *testing.T) {
	r := newRing()
	for _, n := range []string{"n1", "n2", "n3"} {
		r.Add(n)
	}
	for _, k := range ringKeys(50) {
		succ := r.Successors(k, 3)
		if len(succ) != 3 {
			t.Fatalf("want 3 successors, got %v", succ)
		}
		if succ[0] != r.Owner(k) {
			t.Fatalf("successor list %v does not start at owner %s", succ, r.Owner(k))
		}
		seen := map[string]bool{}
		for _, s := range succ {
			if seen[s] {
				t.Fatalf("duplicate member in successors %v", succ)
			}
			seen[s] = true
		}
	}
	if got := r.Successors("k", 10); len(got) != 3 {
		t.Errorf("successors beyond membership: got %v, want all 3 members", got)
	}
}

func TestRingReset(t *testing.T) {
	r := newRing()
	r.Add("n1")
	r.Add("n2")
	r.Reset([]string{"n2", "n3"})
	if r.Has("n1") || !r.Has("n2") || !r.Has("n3") || r.Len() != 2 {
		t.Fatalf("after Reset: members %v", r.Members())
	}
	// Reset to the same set is a no-op for ownership.
	before := r.Owner("some-key")
	r.Reset([]string{"n3", "n2"})
	if got := r.Owner("some-key"); got != before {
		t.Errorf("owner changed across identity Reset: %s -> %s", before, got)
	}
}

func TestRingEmpty(t *testing.T) {
	r := newRing()
	if o := r.Owner("k"); o != "" {
		t.Errorf("empty ring owner = %q", o)
	}
	if s := r.Successors("k", 2); s != nil {
		t.Errorf("empty ring successors = %v", s)
	}
}

package cluster

import (
	"fmt"
	"io"
	"net/http"
	"sync"
)

// writeMetrics appends the cluster-layer series to the /metrics
// exposition. eruca_cluster_jobs_migrated and
// eruca_cluster_nodes_evicted are the headline fault-tolerance
// counters: nonzero values prove a lease expired and its work was
// re-homed rather than lost.
func (n *Node) writeMetrics(w io.Writer) {
	role := 0
	if n.coord != nil {
		role = 1
	}
	fmt.Fprintf(w, "# TYPE eruca_cluster_members gauge\neruca_cluster_members %d\n", n.ring.Len())
	fmt.Fprintf(w, "# TYPE eruca_cluster_is_coordinator gauge\neruca_cluster_is_coordinator %d\n", role)
	fmt.Fprintf(w, "# TYPE eruca_cluster_jobs_migrated counter\neruca_cluster_jobs_migrated %d\n", n.metrics.jobsMigrated.Load())
	fmt.Fprintf(w, "# TYPE eruca_cluster_nodes_evicted counter\neruca_cluster_nodes_evicted %d\n", n.metrics.nodesEvicted.Load())
	fmt.Fprintf(w, "# TYPE eruca_cluster_heartbeats_total counter\neruca_cluster_heartbeats_total %d\n", n.metrics.heartbeats.Load())
	fmt.Fprintf(w, "# TYPE eruca_cluster_rejoins_total counter\neruca_cluster_rejoins_total %d\n", n.metrics.rejoins.Load())
	fmt.Fprintf(w, "# TYPE eruca_cluster_submits_forwarded_total counter\neruca_cluster_submits_forwarded_total %d\n", n.metrics.forwarded.Load())
	fmt.Fprintf(w, "# TYPE eruca_cluster_search_evals_forwarded_total counter\neruca_cluster_search_evals_forwarded_total %d\n", n.metrics.evalsForwarded.Load())
	fmt.Fprintf(w, "# TYPE eruca_cluster_requests_proxied_total counter\neruca_cluster_requests_proxied_total %d\n", n.metrics.proxied.Load())
	fmt.Fprintf(w, "# TYPE eruca_cluster_submits_shed_local_total counter\neruca_cluster_submits_shed_local_total %d\n", n.metrics.shedLocal.Load())
	fmt.Fprintf(w, "# TYPE eruca_cluster_breakers_open gauge\neruca_cluster_breakers_open %d\n", n.breakers.OpenCount())
}

var (
	proxyOnce   sync.Once
	proxyShared *http.Client
)

// proxyClient is the streaming HTTP client for by-ID proxying: unlike
// n.client it has no overall timeout, because a proxied SSE stream
// lives as long as the downstream client keeps the connection open.
func (n *Node) proxyClient() *http.Client {
	proxyOnce.Do(func() { proxyShared = &http.Client{} })
	return proxyShared
}

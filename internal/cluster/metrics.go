package cluster

import (
	"net/http"

	"eruca/internal/server"
)

// collectMetrics adds the cluster-layer families to the shared scrape
// buffer. eruca_cluster_jobs_migrated and eruca_cluster_nodes_evicted
// are the headline fault-tolerance counters: nonzero values prove a
// lease expired and its work was re-homed rather than lost.
func (n *Node) collectMetrics(buf *server.MetricsBuf) {
	role := int64(0)
	if n.coord != nil {
		role = 1
	}
	buf.Gauge("eruca_cluster_members", "Live members in this node's ring view.", int64(n.ring.Len()))
	buf.Gauge("eruca_cluster_is_coordinator", "1 on the coordinator, 0 on workers.", role)
	buf.Counter("eruca_cluster_jobs_migrated", "Jobs re-homed onto survivors after an eviction.", n.metrics.jobsMigrated.Load())
	buf.Counter("eruca_cluster_nodes_evicted", "Members evicted after missing their lease deadline.", n.metrics.nodesEvicted.Load())
	buf.Counter("eruca_cluster_heartbeats_total", "Lease renewals processed by the coordinator.", n.metrics.heartbeats.Load())
	buf.Counter("eruca_cluster_rejoins_total", "Times this member rejoined after an eviction (stale epoch).", n.metrics.rejoins.Load())
	buf.Counter("eruca_cluster_submits_forwarded_total", "Submissions forwarded to their ring owner.", n.metrics.forwarded.Load())
	buf.Counter("eruca_cluster_search_evals_forwarded_total", "Search design-point evals routed to their ring owner.", n.metrics.evalsForwarded.Load())
	buf.Counter("eruca_cluster_requests_proxied_total", "By-ID requests proxied to the job's owner.", n.metrics.proxied.Load())
	buf.Counter("eruca_cluster_submits_shed_local_total", "Submissions accepted locally because no peer was reachable.", n.metrics.shedLocal.Load())
	buf.Counter("eruca_cluster_fenced_requests_total", "Stale-epoch requests fenced off with 410 by the coordinator (split-brain writes rejected).", n.metrics.fenced.Load())
	buf.Gauge("eruca_cluster_breakers_open", "Peer circuit breakers currently open.", int64(n.breakers.OpenCount()))
	n.metrics.collectHops(buf)
}

// proxyClient is the streaming HTTP client for by-ID proxying: built
// per node (see peerClient) with dial/TLS/response-header deadlines but
// no overall timeout — a proxied SSE stream lives as long as the
// downstream client keeps the connection open, while a peer that
// accepts the connection and then never answers (slowloris) is cut off
// at the response-header deadline.
func (n *Node) proxyClient() *http.Client { return n.proxy }

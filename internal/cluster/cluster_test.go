package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"eruca/internal/server"
)

// testNode is one in-process cluster member with live HTTP listeners
// for both the public API and the peer protocol.
type testNode struct {
	*Node
	base     string // public API base URL
	peerBase string // peer protocol base URL
}

// nodeMod adjusts the cluster and/or server config of a test member
// before boot (tracer, SSE cadence, chaos mesh, ...).
type nodeMod func(id string, cc *Config, sc *server.Config)

// startNode boots a full member: server + public and peer listeners +
// cluster loops. started=false skips the loops (the member exists but
// never joins or heartbeats — the raw material for eviction tests).
func startNode(t *testing.T, id, joinURL string, ttl time.Duration, started bool, mods ...nodeMod) *testNode {
	t.Helper()
	pubLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	peerLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	scfg := server.Config{
		Workers: 2, QueueMax: 16,
		WALDir: filepath.Join(t.TempDir(), id),
	}
	ccfg := Config{
		NodeID:     id,
		PublicAddr: pubLn.Addr().String(),
		PeerAddr:   peerLn.Addr().String(),
		JoinURL:    joinURL,
		LeaseTTL:   ttl,
	}
	for _, mod := range mods {
		mod(id, &ccfg, &scfg)
	}
	n, err := New(ccfg, scfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Server().Start()
	// Inbound listeners go through the chaos mesh too, so stalled
	// (slowloris) members are expressible in-process.
	go http.Serve(ccfg.Chaos.Listener(id, pubLn), n.Handler())
	go http.Serve(ccfg.Chaos.Listener(id, peerLn), n.PeerHandler())
	if started {
		n.Start()
	}
	t.Cleanup(func() {
		if started {
			n.Stop()
		}
		pubLn.Close()
		peerLn.Close()
		_ = n.Server().Close()
	})
	return &testNode{Node: n, base: "http://" + pubLn.Addr().String(), peerBase: "http://" + peerLn.Addr().String()}
}

// startCluster boots a coordinator plus workers-1 worker members and
// waits until every member sees the full ring.
func startCluster(t *testing.T, members int, ttl time.Duration, mods ...nodeMod) []*testNode {
	t.Helper()
	nodes := []*testNode{startNode(t, "c", "", ttl, true, mods...)}
	for i := 1; i < members; i++ {
		nodes = append(nodes, startNode(t, fmt.Sprintf("w%d", i), nodes[0].peerBase, ttl, true, mods...))
	}
	deadline := time.Now().Add(10 * time.Second)
	for _, n := range nodes {
		for n.ring.Len() != members {
			if time.Now().After(deadline) {
				t.Fatalf("node %s sees %d members, want %d", n.cfg.NodeID, n.ring.Len(), members)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	return nodes
}

// specN builds a valid, fast spec whose hash varies with seed.
func specN(seed int64) server.JobSpec {
	return server.JobSpec{Kind: "sim", System: "ddr4", Mix: "mix0", Instrs: 20_000, Frag: 0.1, Seed: seed}
}

// specOwnedBy finds a spec whose ring owner is the wanted member.
func specOwnedBy(t *testing.T, n *testNode, owner string) server.JobSpec {
	t.Helper()
	for seed := int64(1); seed < 10_000; seed++ {
		spec := specN(seed)
		if n.ring.Owner(spec.Hash()) == owner {
			return spec
		}
	}
	t.Fatalf("no seed hashes onto %s", owner)
	return server.JobSpec{}
}

type wireJob struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Result string `json:"result"`
}

func postSpec(t *testing.T, base string, spec server.JobSpec, idemKey string, forced bool) (wireJob, int) {
	t.Helper()
	b, _ := json.Marshal(spec)
	req, err := http.NewRequest("POST", base+"/v1/jobs", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if idemKey != "" {
		req.Header.Set("Idempotency-Key", idemKey)
	}
	if forced {
		req.Header.Set(forwardedHeader, "test")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v wireJob
	_ = json.NewDecoder(resp.Body).Decode(&v)
	return v, resp.StatusCode
}

// awaitDone polls id through base until the job is done, tolerating the
// 503 window while an evicted owner's jobs are being re-homed.
func awaitDone(t *testing.T, base, id string, within time.Duration) wireJob {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var v wireJob
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			if err := json.Unmarshal(body, &v); err != nil {
				t.Fatalf("job %s: %v (%.200s)", id, err, body)
			}
			switch v.State {
			case "done":
				return v
			case "failed", "canceled":
				t.Fatalf("job %s ended %s", id, v.State)
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s not done within %s (last status %d: %.200s)", id, within, resp.StatusCode, body)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func scrapeMetric(t *testing.T, base, name string) int {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var v int
		if n, _ := fmt.Sscanf(sc.Text(), name+" %d", &v); n == 1 {
			return v
		}
	}
	return -1
}

// TestClusterPlacementAndProxy proves ring routing end to end: jobs
// submitted through one node land on their hash owners (job-ID prefix),
// and every node can answer for every job by proxying to its owner,
// with byte-identical results everywhere.
func TestClusterPlacementAndProxy(t *testing.T) {
	nodes := startCluster(t, 3, 2*time.Second)

	ids := map[string]string{} // id -> result owner prefix check later
	owners := map[string]bool{}
	for seed := int64(1); seed <= 6; seed++ {
		spec := specN(seed)
		v, code := postSpec(t, nodes[0].base, spec, "", false)
		if code != http.StatusAccepted && code != http.StatusOK {
			t.Fatalf("submit seed %d: status %d", seed, code)
		}
		wantOwner := nodes[0].ring.Owner(spec.Hash())
		if got := nodeOf(v.ID); got != wantOwner {
			t.Errorf("seed %d placed on %s, ring owner is %s", seed, got, wantOwner)
		}
		owners[nodeOf(v.ID)] = true
		ids[v.ID] = ""
	}
	if len(owners) < 2 {
		t.Errorf("6 distinct specs all landed on %v; expected spread across members", owners)
	}

	// Every node answers for every job, identically.
	for id := range ids {
		var want string
		for i, n := range nodes {
			got := awaitDone(t, n.base, id, 60*time.Second).Result
			if i == 0 {
				want = got
				continue
			}
			if got != want {
				t.Errorf("job %s: node %s returned a different result than node %s", id, n.cfg.NodeID, nodes[0].cfg.NodeID)
			}
		}
	}
	if m := scrapeMetric(t, nodes[0].base, "eruca_cluster_members"); m != 3 {
		t.Errorf("eruca_cluster_members = %d, want 3", m)
	}
}

// TestClusterIdempotentDedupAcrossNodes: the same spec + key submitted
// through two different nodes collapses to one job, because both route
// to the same ring owner where the idempotency key replays.
func TestClusterIdempotentDedupAcrossNodes(t *testing.T) {
	nodes := startCluster(t, 3, 2*time.Second)
	spec := specN(7)
	a, codeA := postSpec(t, nodes[1].base, spec, "dedup-key", false)
	b, codeB := postSpec(t, nodes[2].base, spec, "dedup-key", false)
	if codeA != http.StatusAccepted && codeA != http.StatusOK {
		t.Fatalf("first submit: status %d", codeA)
	}
	if a.ID != b.ID {
		t.Fatalf("same key through two nodes made two jobs: %s (status %d) vs %s (status %d)", a.ID, codeA, b.ID, codeB)
	}
}

// TestClusterCacheReadThrough: a node forced to run a spec another
// shard already finished serves it from the owner's cache shard instead
// of re-simulating.
func TestClusterCacheReadThrough(t *testing.T) {
	nodes := startCluster(t, 2, 2*time.Second)
	coord, worker := nodes[0], nodes[1]

	// A spec owned by the coordinator, run there first.
	spec := specOwnedBy(t, coord, "c")
	v, _ := postSpec(t, coord.base, spec, "", true) // forced: stays local
	want := awaitDone(t, coord.base, v.ID, 60*time.Second).Result

	// Force the worker to take the same spec locally: its cache misses,
	// and the read-through must pull the result from the owner's shard.
	v2, _ := postSpec(t, worker.base, spec, "", true)
	got := awaitDone(t, worker.base, v2.ID, 60*time.Second).Result
	if got != want {
		t.Error("read-through result differs from the owner's")
	}
	if hits := scrapeMetric(t, worker.base, "eruca_result_cache_remote_hits_total"); hits < 1 {
		t.Errorf("eruca_result_cache_remote_hits_total = %d, want >= 1", hits)
	}
}

// TestClusterSSEProxy: the event stream of a job is reachable through a
// non-owner node, and Last-Event-ID passes through the proxy so a
// resumed stream starts where it left off.
func TestClusterSSEProxy(t *testing.T) {
	nodes := startCluster(t, 2, 2*time.Second)
	coord, worker := nodes[0], nodes[1]

	spec := specOwnedBy(t, coord, "w1")
	v, _ := postSpec(t, worker.base, spec, "", true) // local on w1
	awaitDone(t, worker.base, v.ID, 60*time.Second)

	read := func(base, lastID string) string {
		req, err := http.NewRequest("GET", base+"/v1/jobs/"+v.ID+"/events", nil)
		if err != nil {
			t.Fatal(err)
		}
		if lastID != "" {
			req.Header.Set("Last-Event-ID", lastID)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("events via %s: status %d", base, resp.StatusCode)
		}
		var b strings.Builder
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if strings.HasPrefix(sc.Text(), "event: done") {
				break
			}
			b.WriteString(sc.Text())
			b.WriteByte('\n')
		}
		return b.String()
	}

	direct := read(worker.base, "")
	proxied := read(coord.base, "") // coordinator does not own w1's job
	if proxied != direct {
		t.Errorf("proxied stream differs from direct:\n--- direct ---\n%s--- proxied ---\n%s", direct, proxied)
	}
	if scrapeMetric(t, coord.base, "eruca_cluster_requests_proxied_total") < 1 {
		t.Error("no proxied request counted on the coordinator")
	}

	directTail := read(worker.base, "1")
	proxiedTail := read(coord.base, "1")
	if proxiedTail != directTail {
		t.Error("Last-Event-ID not preserved through the proxy")
	}
	if proxiedTail == proxied {
		t.Error("Last-Event-ID had no effect through the proxy")
	}
}

// TestClusterEvictionMigratesJobs is the tentpole's in-process proof: a
// member that stops heartbeating is evicted when its lease expires, and
// the jobs placed on it are re-enqueued on survivors — reachable under
// their old IDs through the coordinator's alias table — with the
// eviction and migration visible in the cluster metrics.
func TestClusterEvictionMigratesJobs(t *testing.T) {
	ttl := 500 * time.Millisecond
	coord := startNode(t, "c", "", ttl, true)
	w1 := startNode(t, "w1", coord.peerBase, ttl, true)
	_ = w1

	// The doomed member joins by hand and then never heartbeats.
	doomed := startNode(t, "w2", coord.peerBase, ttl, false)
	body, _ := json.Marshal(joinRequest{Node: "w2", Addr: doomed.cfg.PublicAddr, Peer: doomed.cfg.PeerAddr})
	resp, err := http.Post(coord.peerBase+"/v1/cluster/join", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Place two jobs directly on the doomed member (forced local). Its
	// admission hook reports the placements to the coordinator.
	var ids []string
	for seed := int64(30); seed < 32; seed++ {
		v, code := postSpec(t, doomed.base, specN(seed), fmt.Sprintf("evict-%d", seed), true)
		if code != http.StatusAccepted {
			t.Fatalf("submit to doomed member: status %d", code)
		}
		if nodeOf(v.ID) != "w2" {
			t.Fatalf("forced submit landed on %s", v.ID)
		}
		ids = append(ids, v.ID)
	}

	// Let the lease run out: the sweeper must evict w2 and migrate its
	// placements to survivors. (The jobs may well have finished on w2
	// already — the coordinator cannot know without heartbeats, so it
	// re-homes them regardless; determinism makes the re-run identical.)
	deadline := time.Now().Add(10 * time.Second)
	for coord.ring.Has("w2") {
		if time.Now().After(deadline) {
			t.Fatal("doomed member was never evicted")
		}
		time.Sleep(25 * time.Millisecond)
	}

	// The old IDs keep answering through the coordinator's alias
	// resolution.
	for _, id := range ids {
		awaitDone(t, coord.base, id, 60*time.Second)
	}
	if n := scrapeMetric(t, coord.base, "eruca_cluster_nodes_evicted"); n < 1 {
		t.Errorf("eruca_cluster_nodes_evicted = %d, want >= 1", n)
	}
	if n := scrapeMetric(t, coord.base, "eruca_cluster_jobs_migrated"); n < 2 {
		t.Errorf("eruca_cluster_jobs_migrated = %d, want >= 2", n)
	}
	if coord.ring.Has("w2") {
		t.Error("evicted member still in the coordinator's ring")
	}
}

// TestCoordinatorRestoreFromJournal folds a synthetic journal back into
// coordinator state: membership, placements, and migration aliases all
// reconstruct, and a compaction snapshot round-trips losslessly.
func TestCoordinatorRestoreFromJournal(t *testing.T) {
	n, err := New(Config{NodeID: "c", PublicAddr: "a:0", PeerAddr: "p:0", LeaseTTL: time.Minute},
		server.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = n.Server().Close() })

	spec := specN(1)
	recs := []server.ClusterRecord{
		{Kind: "join", Node: "c", Addr: "a:0", Peer: "p:0", Epoch: 1},
		{Kind: "join", Node: "w1", Addr: "a:1", Peer: "p:1", Epoch: 2},
		{Kind: "join", Node: "w2", Addr: "a:2", Peer: "p:2", Epoch: 3},
		{Kind: "place", Node: "w2", Job: "w2-job-000001", Hash: spec.Hash(), Spec: &spec},
		{Kind: "place", Node: "w1", Job: "w1-job-000001", Hash: spec.Hash(), Spec: &spec},
		{Kind: "unplace", Job: "w1-job-000001"},
		{Kind: "evict", Node: "w2"},
		{Kind: "migrate", Node: "w1", Job: "w2-job-000001", NewID: "w1-job-000002"},
		{Kind: "place", Node: "w1", Job: "w1-job-000002", Hash: spec.Hash(), Spec: &spec},
	}
	n.coord.restore(recs)

	if got := n.ring.Members(); len(got) != 2 || got[0] != "c" || got[1] != "w1" {
		t.Fatalf("restored ring = %v, want [c w1]", got)
	}
	rr, err := n.coord.resolve("w2-job-000001")
	if err != nil {
		t.Fatalf("resolve migrated job: %v", err)
	}
	if rr.Addr != "a:1" || rr.ID != "w1-job-000002" {
		t.Errorf("alias resolved to %+v, want a:1 / w1-job-000002", rr)
	}
	if _, err := n.coord.resolve("w1-job-000001"); err != nil {
		// Done placements still resolve (results remain fetchable).
		t.Errorf("resolve finished job: %v", err)
	}

	// The compaction snapshot keeps live members, open placements and
	// aliases, and drops the finished placement.
	snap := n.coord.snapshot()
	kinds := map[string]int{}
	for _, r := range snap {
		kinds[r.Kind]++
		if r.Kind == "place" && r.Job == "w1-job-000001" {
			t.Error("snapshot kept a finished placement")
		}
	}
	if kinds["join"] != 2 || kinds["place"] != 2 || kinds["migrate"] != 1 {
		t.Errorf("snapshot kinds = %v, want 2 joins, 2 places, 1 migrate", kinds)
	}
}

package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"eruca/internal/obs"
	"eruca/internal/server"
)

// PeerHandler returns the peer-protocol API, served on cfg.PeerAddr.
// It is cluster-internal: control plane (join/heartbeat/place/leave/
// resolve, coordinator only), the migration entry point, the
// checkpoint-blob replica store, and the result-cache shard lookup.
func (n *Node) PeerHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/cluster/join", n.requireCoord(n.handleJoin))
	mux.HandleFunc("POST /v1/cluster/heartbeat", n.requireCoord(n.handleHeartbeat))
	mux.HandleFunc("POST /v1/cluster/place", n.requireCoord(n.handlePlace))
	mux.HandleFunc("POST /v1/cluster/leave", n.requireCoord(n.handleLeave))
	mux.HandleFunc("GET /v1/cluster/resolve", n.requireCoord(n.handleResolve))
	mux.HandleFunc("POST /v1/cluster/migrate", n.handleMigrate)
	mux.HandleFunc("PUT /v1/cluster/ckpt", n.handleCkptPut)
	mux.HandleFunc("GET /v1/cluster/ckpt", n.handleCkptGet)
	mux.HandleFunc("GET /v1/cluster/cache", n.handleCacheGet)
	return mux
}

func (n *Node) requireCoord(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if n.coord == nil {
			http.Error(w, "not the coordinator", http.StatusMisdirectedRequest)
			return
		}
		h(w, r)
	}
}

func decodeInto(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(v); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func (n *Node) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req joinRequest
	if !decodeInto(w, r, &req) {
		return
	}
	if req.Node == "" || req.Addr == "" || req.Peer == "" {
		http.Error(w, "join requires node, addr, peer", http.StatusBadRequest)
		return
	}
	writePeerJSON(w, n.coord.join(req))
}

func (n *Node) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if !decodeInto(w, r, &req) {
		return
	}
	resp, err := n.coord.heartbeat(req)
	if err != nil {
		// ErrLeaseEvicted: the member's epoch is stale — it was evicted
		// (and its jobs re-homed). 410 tells it to rejoin fresh.
		http.Error(w, err.Error(), http.StatusGone)
		return
	}
	writePeerJSON(w, resp)
}

func (n *Node) handlePlace(w http.ResponseWriter, r *http.Request) {
	var req placeRequest
	if !decodeInto(w, r, &req) {
		return
	}
	n.coord.place(req.Node, req.Jobs)
	w.WriteHeader(http.StatusNoContent)
}

func (n *Node) handleLeave(w http.ResponseWriter, r *http.Request) {
	var req leaveRequest
	if !decodeInto(w, r, &req) {
		return
	}
	n.coord.leave(req)
	w.WriteHeader(http.StatusNoContent)
}

func (n *Node) handleResolve(w http.ResponseWriter, r *http.Request) {
	rr, err := n.coord.resolve(r.URL.Query().Get("id"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	writePeerJSON(w, rr)
}

// handleMigrate adopts an evicted node's job: SubmitMigrated bypasses
// the admission bound (the cluster already accepted this work) and the
// simulation resumes from the replicated checkpoint via the server's
// read-through loader.
func (n *Node) handleMigrate(w http.ResponseWriter, r *http.Request) {
	var req migrateRequest
	if !decodeInto(w, r, &req) {
		return
	}
	j, _, err := n.srv.SubmitMigrated(req.Spec, req.Idem, req.From, obs.ParseTraceparent(req.Traceparent))
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	writePeerJSON(w, migrateResponse{ID: j.ID})
}

func (n *Node) handleCkptPut(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if key == "" {
		http.Error(w, "missing key", http.StatusBadRequest)
		return
	}
	blob, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := n.srv.CkptSave(key, blob); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (n *Node) handleCkptGet(w http.ResponseWriter, r *http.Request) {
	blob := n.srv.CkptLoad(r.URL.Query().Get("key"))
	if blob == nil {
		http.Error(w, "no such checkpoint", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(blob)
}

func (n *Node) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	out, ok := n.srv.CachedResult(r.URL.Query().Get("hash"))
	if !ok {
		http.Error(w, "miss", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	io.WriteString(w, out)
}

func writePeerJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// forwardedHeader marks a request already routed by a peer; the
// receiver accepts it locally instead of re-forwarding, which both
// prevents loops and tolerates transient ring-view disagreement.
const forwardedHeader = "X-Eruca-Forwarded"

// Handler wraps the single-node client API with cluster routing:
//
//   - POST /v1/jobs is placed on the spec hash's ring owner, shedding
//     along the successor list (and finally to this node) when the
//     owner is unreachable;
//   - /v1/jobs/{id}... whose node prefix is not ours is proxied to the
//     owner — through the coordinator's migration alias when the owner
//     was evicted — streaming (SSE passes through, Last-Event-ID
//     preserved);
//   - GET /metrics gains the eruca_cluster_* series;
//   - GET /v1/cluster/info reports role, epoch and membership.
func (n *Node) Handler() http.Handler {
	inner := n.srv.Handler()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/cluster/info", n.handleInfo)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		// One buffer for every layer, so the exposition comes out in one
		// deterministically sorted pass regardless of which layer owns
		// which family.
		buf := server.NewMetricsBuf()
		n.srv.CollectMetrics(buf)
		n.collectMetrics(buf)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		buf.Write(w)
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		n.routeSubmit(w, r, inner)
	})
	mux.HandleFunc("/v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		n.routeJob(w, r, inner)
	})
	mux.HandleFunc("/v1/jobs/{id}/{rest...}", func(w http.ResponseWriter, r *http.Request) {
		n.routeJob(w, r, inner)
	})
	mux.Handle("/", inner)
	return mux
}

func (n *Node) handleInfo(w http.ResponseWriter, r *http.Request) {
	role := "worker"
	if n.coord != nil {
		role = "coordinator"
	}
	writePeerJSON(w, map[string]any{
		"node":    n.cfg.NodeID,
		"role":    role,
		"epoch":   n.epoch.Load(),
		"members": n.Members(),
	})
}

// routeSubmit implements ring placement for submissions. The body is
// decoded here only to compute the placement hash; the chosen node
// re-validates as usual.
func (n *Node) routeSubmit(w http.ResponseWriter, r *http.Request, inner http.Handler) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	r.Body = io.NopCloser(bytes.NewReader(body))
	if r.Header.Get(forwardedHeader) != "" {
		inner.ServeHTTP(w, r) // a peer already placed this here
		return
	}
	var spec server.JobSpec
	if json.Unmarshal(body, &spec) != nil {
		inner.ServeHTTP(w, r) // malformed: let the local API shape the error
		return
	}
	hash := spec.Hash()
	owner := n.ring.Owner(hash)
	if owner == "" || owner == n.cfg.NodeID {
		inner.ServeHTTP(w, r)
		return
	}
	// The forward span parents to the client's traceparent (if any) and
	// is injected into whatever the routing decides — the peer POST or
	// the shed-local submission — so the remote admit continues one
	// connected trace.
	fs := n.tracer.Start(obs.Extract(r.Header), obs.KindForward, "forward submit")
	fs.SetAttr("owner", owner)
	defer fs.End()
	// Try the owner, then its successors; every transport failure trips
	// the peer's breaker so later submissions skip it immediately.
	for _, target := range n.ring.Successors(hash, n.ring.Len()) {
		if target == n.cfg.NodeID {
			break // reached ourselves in shed order: accept locally
		}
		m, ok := n.member(target)
		if !ok {
			continue
		}
		br := n.breakers.For(m.Addr)
		if !br.Allow() {
			continue
		}
		req, err := http.NewRequestWithContext(r.Context(), "POST", "http://"+m.Addr+"/v1/jobs", bytes.NewReader(body))
		if err != nil {
			continue
		}
		req.Header = r.Header.Clone()
		req.Header.Set(forwardedHeader, n.cfg.NodeID)
		obs.Inject(req.Header, fs.Context())
		resp, err := n.client.Do(req)
		if err != nil {
			br.Failure()
			n.log().Warn("submit forward failed", "target", target, "err", err)
			continue
		}
		br.Success()
		n.metrics.forwarded.Add(1)
		fs.SetAttr("target", target)
		// Relay whatever the owner said — including 429: the owner's
		// admission decision is authoritative for its shard.
		relay(w, resp)
		return
	}
	n.metrics.shedLocal.Add(1)
	fs.SetAttr("shed", "local")
	obs.Inject(r.Header, fs.Context())
	inner.ServeHTTP(w, r)
}

// routeJob proxies by-ID requests whose node prefix is not ours.
func (n *Node) routeJob(w http.ResponseWriter, r *http.Request, inner http.Handler) {
	id := r.PathValue("id")
	owner := nodeOf(id)
	if owner == "" || owner == n.cfg.NodeID || r.Header.Get(forwardedHeader) != "" {
		inner.ServeHTTP(w, r)
		return
	}
	if m, ok := n.member(owner); ok {
		if n.proxyTo(w, r, m.Addr, id, id) {
			return
		}
	}
	// Owner unknown or unreachable — likely evicted. The coordinator's
	// alias table knows where the job went.
	rr, err := n.resolveRemote(r.Context(), id)
	if err != nil {
		w.Header().Set("Retry-After", "1")
		http.Error(w, fmt.Sprintf("job %s temporarily unroutable: %v", id, err), http.StatusServiceUnavailable)
		return
	}
	if nodeOf(rr.ID) == n.cfg.NodeID {
		// Migrated to us: rewrite the path and serve locally.
		r.URL.Path = strings.Replace(r.URL.Path, id, rr.ID, 1)
		r.SetPathValue("id", rr.ID)
		inner.ServeHTTP(w, r)
		return
	}
	if n.proxyTo(w, r, rr.Addr, id, rr.ID) {
		return
	}
	w.Header().Set("Retry-After", "1")
	http.Error(w, fmt.Sprintf("job %s owner %s unreachable", id, rr.Addr), http.StatusServiceUnavailable)
}

// nodeOf extracts the node prefix from a cluster job ID
// ("n2-job-000017" -> "n2"); empty when the ID carries none.
func nodeOf(id string) string {
	if i := strings.Index(id, "-job-"); i > 0 {
		return id[:i]
	}
	return ""
}

// proxyTo streams r to addr with oldID rewritten to newID, relaying
// the response as it arrives (SSE framing and Last-Event-ID survive
// because headers are cloned and the body is flushed per chunk).
// Returns false on transport failure so the caller can re-resolve.
func (n *Node) proxyTo(w http.ResponseWriter, r *http.Request, addr, oldID, newID string) bool {
	br := n.breakers.For(addr)
	if !br.Allow() {
		return false
	}
	u := "http://" + addr + strings.Replace(r.URL.Path, oldID, newID, 1)
	if r.URL.RawQuery != "" {
		u += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, u, r.Body)
	if err != nil {
		return false
	}
	req.Header = r.Header.Clone()
	req.Header.Set(forwardedHeader, n.cfg.NodeID)
	ps := n.tracer.Start(obs.Extract(r.Header), obs.KindProxy, "proxy")
	ps.SetJob(newID)
	ps.SetAttr("addr", addr)
	obs.Inject(req.Header, ps.Context())
	// The proxy client has no overall timeout: SSE streams live as long
	// as the client holds the connection (the request context cancels
	// the upstream call when the client goes away).
	resp, err := n.proxyClient().Do(req)
	if err != nil {
		ps.SetError(err)
		ps.End()
		br.Failure()
		n.log().Warn("proxy failed", "job_id", oldID, "addr", addr, "err", err)
		return false
	}
	br.Success()
	n.metrics.proxied.Add(1)
	relay(w, resp)
	ps.End()
	return true
}

// relay copies an upstream response to the client, flushing per chunk
// so streamed bodies (SSE) pass through live.
func relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32*1024)
	for {
		nr, err := resp.Body.Read(buf)
		if nr > 0 {
			if _, werr := w.Write(buf[:nr]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

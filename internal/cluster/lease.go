package cluster

import (
	"errors"
	"sort"
	"sync"
	"time"
)

// The lease state machine (see DESIGN.md "Fault-tolerant cluster"):
//
//	join ──► active ──heartbeat──► active        (deadline pushed out)
//	             │
//	             └─ deadline passes ──► expired ──► evicted
//	                                                  │
//	                         rejoin (fresh epoch) ◄───┘
//
// A lease is the only thing keeping a member in the ring: the
// coordinator never probes workers, workers prove liveness. Each join
// mints a new epoch; a heartbeat carrying a stale epoch (the node was
// evicted and does not know it yet, e.g. after a network partition
// heals) is answered with ErrLeaseEvicted so the node re-joins instead
// of silently believing it still owns its shard.

// ErrLeaseEvicted rejects a heartbeat from a node that is no longer a
// member under the epoch it believes it has.
var ErrLeaseEvicted = errors.New("cluster: lease evicted; rejoin required")

// lease is one member's liveness contract.
type lease struct {
	Node    string
	Addr    string // public API address
	Peer    string // cluster (peer) address
	Epoch   int64
	Expires time.Time
}

// leaseTable tracks every member's lease under one TTL.
type leaseTable struct {
	ttl time.Duration
	now func() time.Time

	mu     sync.Mutex
	leases map[string]*lease
	epoch  int64 // strictly increasing across all joins
}

func newLeaseTable(ttl time.Duration) *leaseTable {
	return &leaseTable{ttl: ttl, now: time.Now, leases: make(map[string]*lease)}
}

// Join installs (or reinstalls) a member with a fresh epoch and a full
// TTL, returning the granted lease.
func (t *leaseTable) Join(node, addr, peer string) lease {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.epoch++
	l := &lease{Node: node, Addr: addr, Peer: peer, Epoch: t.epoch, Expires: t.now().Add(t.ttl)}
	t.leases[node] = l
	return *l
}

// Renew pushes a member's deadline out by one TTL. A node unknown to
// the table, or presenting an epoch other than its current one, gets
// ErrLeaseEvicted and must re-join.
func (t *leaseTable) Renew(node string, epoch int64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	l := t.leases[node]
	if l == nil || l.Epoch != epoch {
		return ErrLeaseEvicted
	}
	l.Expires = t.now().Add(t.ttl)
	return nil
}

// Expired removes and returns every lease whose deadline has passed.
func (t *leaseTable) Expired() []lease {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	var out []lease
	for node, l := range t.leases {
		if now.After(l.Expires) {
			out = append(out, *l)
			delete(t.leases, node)
		}
	}
	return out
}

// Drop removes a member explicitly (graceful leave or forced evict),
// reporting whether it was present.
func (t *leaseTable) Drop(node string) (lease, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	l := t.leases[node]
	if l == nil {
		return lease{}, false
	}
	delete(t.leases, node)
	return *l, true
}

// Get returns a member's lease.
func (t *leaseTable) Get(node string) (lease, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	l := t.leases[node]
	if l == nil {
		return lease{}, false
	}
	return *l, true
}

// Members lists current leases sorted by node ID.
func (t *leaseTable) Members() []lease {
	t.mu.Lock()
	out := make([]lease, 0, len(t.leases))
	for _, l := range t.leases {
		out = append(out, *l)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

package cluster

import (
	"testing"
	"time"
)

// fakeClock drives a leaseTable deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newLeaseClock(ttl time.Duration) (*leaseTable, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	lt := newLeaseTable(ttl)
	lt.now = clk.now
	return lt, clk
}

func TestLeaseJoinRenewExpire(t *testing.T) {
	lt, clk := newLeaseClock(time.Second)
	l := lt.Join("n1", "a:1", "p:1")
	if l.Epoch == 0 {
		t.Fatal("join granted zero epoch")
	}

	// Renewal inside the TTL pushes the deadline out.
	clk.advance(800 * time.Millisecond)
	if err := lt.Renew("n1", l.Epoch); err != nil {
		t.Fatalf("renew: %v", err)
	}
	clk.advance(800 * time.Millisecond)
	if exp := lt.Expired(); len(exp) != 0 {
		t.Fatalf("lease expired despite renewal: %v", exp)
	}

	// Silence past the TTL expires (and removes) the lease.
	clk.advance(300 * time.Millisecond)
	exp := lt.Expired()
	if len(exp) != 1 || exp[0].Node != "n1" {
		t.Fatalf("want n1 expired, got %v", exp)
	}
	if _, ok := lt.Get("n1"); ok {
		t.Error("expired lease still present")
	}
	// An expired member's late heartbeat is rejected: it must rejoin.
	if err := lt.Renew("n1", l.Epoch); err != ErrLeaseEvicted {
		t.Errorf("renew after expiry: %v, want ErrLeaseEvicted", err)
	}
}

func TestLeaseEpochFencing(t *testing.T) {
	lt, _ := newLeaseClock(time.Second)
	old := lt.Join("n1", "a:1", "p:1")
	fresh := lt.Join("n1", "a:1", "p:1") // rejoin mints a new epoch
	if fresh.Epoch <= old.Epoch {
		t.Fatalf("rejoin epoch %d not greater than %d", fresh.Epoch, old.Epoch)
	}
	// The zombie incarnation (old epoch) is fenced off...
	if err := lt.Renew("n1", old.Epoch); err != ErrLeaseEvicted {
		t.Errorf("stale-epoch renew: %v, want ErrLeaseEvicted", err)
	}
	// ...while the current one renews normally.
	if err := lt.Renew("n1", fresh.Epoch); err != nil {
		t.Errorf("current-epoch renew: %v", err)
	}
}

func TestLeaseDropAndMembers(t *testing.T) {
	lt, _ := newLeaseClock(time.Second)
	lt.Join("n2", "a:2", "p:2")
	lt.Join("n1", "a:1", "p:1")
	ms := lt.Members()
	if len(ms) != 2 || ms[0].Node != "n1" || ms[1].Node != "n2" {
		t.Fatalf("members not sorted: %v", ms)
	}
	if _, ok := lt.Drop("n1"); !ok {
		t.Fatal("drop of present member reported absent")
	}
	if _, ok := lt.Drop("n1"); ok {
		t.Fatal("second drop reported present")
	}
	if ms := lt.Members(); len(ms) != 1 || ms[0].Node != "n2" {
		t.Fatalf("after drop: %v", ms)
	}
}

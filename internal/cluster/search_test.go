package cluster

import (
	"testing"
	"time"

	"eruca/internal/search"
	"eruca/internal/server"
)

// TestClusterSearchFanout runs one autotuning search on a 3-node
// cluster: the search job lands on its hash owner as usual, and the
// design-point evals it spawns are routed by THEIR spec hashes to the
// points' ring owners. The proof of the fan-out is the forwarded-evals
// counter going nonzero somewhere — with eight points at two budgets
// spread over three owners, at least one must live off the search node.
func TestClusterSearchFanout(t *testing.T) {
	nodes := startCluster(t, 3, 2*time.Second)
	spec := server.JobSpec{
		Kind: "search",
		Search: &search.Spec{
			Dims: []search.DimSpec{
				{Name: "planes", Values: []string{"1", "2", "4", "8"}},
				{Name: "ddb"},
			},
			Seed:   7,
			Instrs: 4000,
			Rungs:  2,
		},
	}

	v, code := postSpec(t, nodes[0].base, spec, "", false)
	if code != 200 && code != 202 {
		t.Fatalf("search submit status %d", code)
	}
	done := awaitDone(t, nodes[0].base, v.ID, 120*time.Second)
	res, err := search.ParseResult([]byte(done.Result))
	if err != nil {
		t.Fatalf("unparsable search result: %v\n%s", err, done.Result)
	}
	if len(res.Frontier) == 0 || res.PointsEvaluated == 0 {
		t.Fatalf("degenerate search result: %+v", res)
	}

	forwarded := 0
	for _, n := range nodes {
		forwarded += scrapeMetric(t, n.base, "eruca_cluster_search_evals_forwarded_total")
	}
	if forwarded <= 0 {
		t.Errorf("no evals forwarded across the cluster (counter sum %d)", forwarded)
	}

	// Every node answers for the search by proxying to its owner, and an
	// identical resubmission through a different node routes to the same
	// owner and is a pure result-cache hit — byte-identical frontier.
	v2, _ := postSpec(t, nodes[2].base, spec, "", false)
	got := awaitDone(t, nodes[1].base, v2.ID, 60*time.Second)
	if got.Result != done.Result {
		t.Errorf("resubmitted search result differs:\n%s\nvs\n%s", got.Result, done.Result)
	}
}

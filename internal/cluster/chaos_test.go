package cluster

import (
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"eruca/internal/chaosnet"
	"eruca/internal/server"
)

// meshed returns a nodeMod wiring every member of an in-process cluster
// to one shared chaos mesh, so the test can partition and stall members
// programmatically (Sever/Heal/StallNode).
func meshed(m *chaosnet.Mesh) nodeMod {
	return func(id string, cc *Config, sc *server.Config) { cc.Chaos = m }
}

// sweepN builds a fast figure sweep whose hash varies with seed — the
// workload the partition test interrupts ("mid-sweep" in the ERUCA
// sense: reproducing a paper figure, not just a single sim).
func sweepN(seed int64) server.JobSpec {
	return server.JobSpec{
		Kind: "sweep", Exp: "sweep", Systems: []string{"ddr4"},
		Mixes: []string{"mix0"}, Instrs: 40_000, Frag: 0.1, Seed: seed,
	}
}

// openPlacements counts the coordinator's live (non-done) placements on
// a member — the signal that admission reports have landed and an
// eviction would have something to migrate.
func openPlacements(coord *testNode, member string) int {
	c := coord.Node.coord
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, p := range c.placements {
		if p.Node == member && !p.Done && p.NewID == "" {
			n++
		}
	}
	return n
}

// TestClusterPartitionTolerance is the chaos-mesh acceptance test: a
// worker is partitioned from the rest of the cluster mid-sweep. The
// coordinator must evict it when its lease lapses and migrate its
// placements to survivors, the old job IDs must keep answering through
// the coordinator with byte-identical figures, and when the partition
// heals the zombie's stale-epoch writes must be fenced off with a 410
// (eruca_cluster_fenced_requests_total >= 1) before it rejoins fresh —
// no split-brain, no lost work.
func TestClusterPartitionTolerance(t *testing.T) {
	mesh := chaosnet.New(&chaosnet.Plan{Seed: 42})
	ttl := 500 * time.Millisecond
	nodes := startCluster(t, 3, ttl, meshed(mesh))
	coord, w2 := nodes[0], nodes[2]

	// Two sweeps forced local onto the soon-to-be-partitioned worker.
	var ids []string
	var specs []server.JobSpec
	for seed := int64(50); seed < 52; seed++ {
		spec := sweepN(seed)
		v, code := postSpec(t, w2.base, spec, fmt.Sprintf("chaos-%d", seed), true)
		if code != http.StatusAccepted {
			t.Fatalf("submit to w2: status %d", code)
		}
		if nodeOf(v.ID) != "w2" {
			t.Fatalf("forced submit landed on %s", v.ID)
		}
		ids = append(ids, v.ID)
		specs = append(specs, spec)
	}

	// Wait until the admission reports reach the coordinator, then cut
	// w2 off from both survivors while the sweeps are (at most) barely
	// under way.
	deadline := time.Now().Add(10 * time.Second)
	for openPlacements(coord, "w2") < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("coordinator saw %d open placements on w2, want 2", openPlacements(coord, "w2"))
		}
		time.Sleep(5 * time.Millisecond)
	}
	mesh.Sever("w2", "c")
	mesh.Sever("w2", "w1")

	// The lease lapses and the sweeper evicts w2.
	deadline = time.Now().Add(15 * time.Second)
	for coord.ring.Has("w2") {
		if time.Now().After(deadline) {
			t.Fatal("partitioned member was never evicted")
		}
		time.Sleep(25 * time.Millisecond)
	}

	// The old IDs keep answering through the coordinator (alias table ->
	// survivor), and the re-run figures are byte-identical to a clean
	// reference run of the same specs.
	solo := startNode(t, "solo", "", time.Minute, false)
	for i, id := range ids {
		got := awaitDone(t, coord.base, id, 60*time.Second).Result
		rv, _ := postSpec(t, solo.base, specs[i], "", true)
		want := awaitDone(t, solo.base, rv.ID, 60*time.Second).Result
		if got != want {
			t.Errorf("migrated sweep %s differs from the clean reference run", id)
		}
	}
	if n := scrapeMetric(t, coord.base, "eruca_cluster_nodes_evicted"); n < 1 {
		t.Errorf("eruca_cluster_nodes_evicted = %d, want >= 1", n)
	}
	if n := scrapeMetric(t, coord.base, "eruca_cluster_jobs_migrated"); n < 2 {
		t.Errorf("eruca_cluster_jobs_migrated = %d, want >= 2", n)
	}

	// Heal. The zombie heartbeats with its dead epoch; the coordinator
	// fences it (410, counted) and it rejoins with a fresh lease.
	mesh.Heal("w2", "c")
	mesh.Heal("w2", "w1")
	deadline = time.Now().Add(15 * time.Second)
	for !coord.ring.Has("w2") {
		if time.Now().After(deadline) {
			t.Fatal("healed member never rejoined the ring")
		}
		time.Sleep(25 * time.Millisecond)
	}
	if n := scrapeMetric(t, coord.base, "eruca_cluster_fenced_requests_total"); n < 1 {
		t.Errorf("eruca_cluster_fenced_requests_total = %d, want >= 1 (stale-epoch write not fenced)", n)
	}
	if n := scrapeMetric(t, w2.base, "eruca_cluster_rejoins_total"); n < 1 {
		t.Errorf("eruca_cluster_rejoins_total = %d, want >= 1", n)
	}
}

// TestClusterSlowlorisPeerFastFail is the streaming-proxy regression
// test: a peer that accepts connections but never answers (stalled
// listener) must not hang the proxy path — the per-node proxy client's
// response-header timeout cuts it off and the caller degrades to a 503
// with Retry-After instead of holding the downstream request forever.
func TestClusterSlowlorisPeerFastFail(t *testing.T) {
	mesh := chaosnet.New(&chaosnet.Plan{Seed: 1})
	nodes := startCluster(t, 2, 500*time.Millisecond, meshed(mesh))
	coord, worker := nodes[0], nodes[1]

	spec := specOwnedBy(t, coord, "w1")
	v, _ := postSpec(t, worker.base, spec, "", true)
	awaitDone(t, worker.base, v.ID, 60*time.Second)
	// Sanity: the proxied read works before the stall.
	awaitDone(t, coord.base, v.ID, 10*time.Second)

	// Stall every new inbound connection on w1 and drop the pooled
	// (pre-stall) connections so the proxy has to dial fresh.
	mesh.StallNode("w1", true)
	defer mesh.StallNode("w1", false)
	coord.proxy.CloseIdleConnections()
	coord.client.CloseIdleConnections()

	start := time.Now()
	resp, err := http.Get(coord.base + "/v1/jobs/" + v.ID)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("proxy to stalled peer: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 from stalled-peer proxy carries no Retry-After")
	}
	// Two proxy attempts at the streaming client's 2s response-header
	// floor plus resolution overhead; anything near this bound proves
	// the timeout fired rather than the request hanging.
	if elapsed > 15*time.Second {
		t.Errorf("proxy to stalled peer took %s; response-header timeout not enforced", elapsed)
	}
}

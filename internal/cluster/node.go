// Package cluster turns a set of erucad daemons into one fault-tolerant
// simulation service. The topology is coordinator/worker: every node
// runs the full single-node stack (queue, workers, WAL, caches) from
// internal/server, and the cluster layer adds
//
//   - placement: submissions are routed by spec content hash over a
//     consistent-hash ring, so duplicate submissions land on the same
//     node and collapse in its singleflight runner — cluster-wide dedup
//     out of the single-node mechanism;
//   - a sharded result cache: each node's content-addressed cache holds
//     its ring shard, with read-through to the hash's owner on miss;
//   - leases: workers prove liveness by heartbeat; a member that misses
//     its lease deadline is evicted and its in-flight jobs re-enqueued
//     on survivors, resuming from the checkpoint blobs it replicated to
//     the coordinator (the PR 5 snapshot store as migration format);
//   - durability: the coordinator journals membership, placements and
//     migrations in its WAL, so a coordinator restart reconstructs the
//     cluster exactly like the job layer replays its queue.
//
// Inter-node calls go through internal/retry: exponential backoff with
// jitter honoring Retry-After, and a per-peer circuit breaker so a dead
// member costs one connect timeout, not one per request, before traffic
// sheds to the next ring member.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"eruca/internal/chaosnet"
	"eruca/internal/obs"
	"eruca/internal/retry"
	"eruca/internal/server"
)

// Config describes one cluster member.
type Config struct {
	// NodeID names this member ("n1"); it prefixes job IDs so any peer
	// can route an ID back to its owner. Required.
	NodeID string
	// PublicAddr is the advertised client API address (host:port).
	PublicAddr string
	// PeerAddr is the advertised peer-protocol address (host:port); the
	// caller serves PeerHandler() there.
	PeerAddr string
	// JoinURL is the coordinator's peer base URL ("http://host:port").
	// Empty makes this node the coordinator (it also works jobs,
	// registering itself as member zero).
	JoinURL string
	// LeaseTTL is the heartbeat lease duration (default 3s); heartbeats
	// fire every TTL/4, and a member that misses its deadline is
	// evicted with its jobs re-enqueued on survivors.
	LeaseTTL time.Duration
	// Log receives structured cluster lifecycle records (default:
	// discard). Every record carries node=<NodeID>.
	Log *slog.Logger
	// Chaos, when non-nil, injects deterministic network faults into
	// every outbound peer call (and, via Mesh.Listener at the serving
	// side, inbound connections). Nil leaves the peer hot path
	// untouched — the wrappers are pointer-identity no-ops.
	Chaos *chaosnet.Mesh
}

// Node is one cluster member wrapping a server.Server.
type Node struct {
	cfg    Config
	srv    *server.Server
	ring   *ring
	tracer *obs.Tracer // the server's tracer (nil when tracing is off)

	coord *coordinator // non-nil on the coordinator

	client   *http.Client // peer calls; deadlines come per-request from the lease TTL
	proxy    *http.Client // by-ID proxying; no overall deadline (streaming bodies)
	breakers retry.Breakers
	metrics  clusterMetrics

	// Worker-side view of the cluster.
	viewMu  sync.RWMutex
	members map[string]Member
	epoch   atomic.Int64
	joined  atomic.Bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// clusterMetrics are the cluster-layer counters and the span-derived
// hop-latency histograms, exposed on /metrics.
type clusterMetrics struct {
	forwarded      atomic.Int64
	evalsForwarded atomic.Int64
	proxied        atomic.Int64
	shedLocal      atomic.Int64
	heartbeats     atomic.Int64
	rejoins        atomic.Int64
	jobsMigrated   atomic.Int64
	nodesEvicted   atomic.Int64
	fenced         atomic.Int64

	// hops holds one histogram per inter-node span kind, all exposed
	// under the single family eruca_cluster_hop_seconds{kind=...}. Fed
	// by the tracer's Observe hook on span closure; empty when tracing
	// is off.
	hops map[obs.Kind]*server.SecondsHist
}

// hopKinds are the span kinds that count as inter-node hops.
var hopKinds = []obs.Kind{obs.KindForward, obs.KindProxy, obs.KindMigrate, obs.KindEvalFanout, obs.KindCheckpointReplicate}

func (cm *clusterMetrics) initHops() {
	cm.hops = make(map[obs.Kind]*server.SecondsHist, len(hopKinds))
	for _, k := range hopKinds {
		cm.hops[k] = server.NewSecondsHist(spanHopBounds()...)
	}
}

// spanHopBounds mirror the server's span-latency buckets.
func spanHopBounds() []float64 {
	return []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 2.5, 5, 10, 30, 60}
}

// observeSpan is the tracer Observe hook: closures of hop-kind spans
// drive the eruca_cluster_hop_seconds family.
func (cm *clusterMetrics) observeSpan(sp obs.Span) {
	if h := cm.hops[sp.Kind]; h != nil {
		h.Observe(sp.Duration().Seconds())
	}
}

// collectHops renders the shared hop family in deterministic kind order.
func (cm *clusterMetrics) collectHops(buf *server.MetricsBuf) {
	kinds := make([]string, 0, len(cm.hops))
	for k := range cm.hops {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		cm.hops[obs.Kind(k)].Collect(buf, "eruca_cluster_hop_seconds",
			"Inter-node hop latency from span closure, by span kind.", fmt.Sprintf("kind=%q", k))
	}
}

// New wires a cluster member around a server built from scfg: the
// returned Node owns the server (Server() exposes it), with the
// cluster's cache/checkpoint read-through, checkpoint replication,
// placement notification, and WAL-snapshot hooks installed before the
// server boots.
func New(cfg Config, scfg server.Config) (*Node, error) {
	if cfg.NodeID == "" {
		return nil, fmt.Errorf("cluster: NodeID required")
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 3 * time.Second
	}
	if cfg.Log == nil {
		cfg.Log = obs.Discard()
	}
	cfg.Log = cfg.Log.With("node", cfg.NodeID)
	n := &Node{
		cfg:     cfg,
		tracer:  scfg.Tracer,
		members: make(map[string]Member),
		ring:    newRing(),
		client:  peerClient(cfg, false),
		proxy:   peerClient(cfg, true),
		stop:    make(chan struct{}),
	}
	cfg.Chaos.Bind(cfg.NodeID, cfg.PublicAddr, cfg.PeerAddr)
	n.breakers.Threshold = 3
	n.breakers.Cooldown = cfg.LeaseTTL
	n.metrics.initHops()
	n.tracer.Observe(n.metrics.observeSpan)

	scfg.NodeID = cfg.NodeID
	scfg.CacheFetch = n.cacheFetch
	scfg.CkptFetch = n.ckptFetch
	scfg.CkptReplicate = n.ckptReplicate
	scfg.OnAdmit = n.onAdmit
	scfg.EvalRemote = n.evalRemote
	if cfg.JoinURL == "" {
		scfg.ClusterSnapshot = func() []server.ClusterRecord {
			if n.coord == nil {
				return nil
			}
			return n.coord.snapshot()
		}
	}
	srv, err := server.New(scfg)
	if err != nil {
		return nil, err
	}
	n.srv = srv
	if cfg.JoinURL == "" {
		n.coord = newCoordinator(n)
		n.coord.restore(srv.ClusterReplay())
	}
	return n, nil
}

// peerClient builds one of the node's two HTTP clients. Transport-level
// guards (dial, TLS-handshake, and response-header deadlines derived
// from the lease TTL) replace the old flat 15s client timeout; neither
// client carries an overall timeout — control/data calls get theirs
// per-request from ctlCtx/callCtx/blobCtx, and the streaming proxy's
// response bodies are deliberately exempt (a proxied SSE stream lives
// as long as the downstream client holds the connection). The two
// clients exist so they pool connections separately: a peer stalling
// long-lived streams cannot starve the control plane's sockets. Chaos,
// when configured, wraps the transport; nil chaos returns the base
// transport pointer-identical, keeping the hot path untouched.
func peerClient(cfg Config, streaming bool) *http.Client {
	dial := clampDur(cfg.LeaseTTL, 500*time.Millisecond, 5*time.Second)
	headers := clampDur(2*cfg.LeaseTTL, time.Second, 15*time.Second)
	if streaming {
		// A proxied request's first byte may wait on queue pressure at
		// the owner; give headers a little more room than peer calls.
		headers = clampDur(4*cfg.LeaseTTL, 2*time.Second, 30*time.Second)
	}
	base := &http.Transport{
		DialContext:           (&net.Dialer{Timeout: dial}).DialContext,
		TLSHandshakeTimeout:   dial,
		ResponseHeaderTimeout: headers,
		MaxIdleConnsPerHost:   4,
	}
	return &http.Client{Transport: cfg.Chaos.Transport(cfg.NodeID, base)}
}

// clampDur clamps d into [lo, hi].
func clampDur(d, lo, hi time.Duration) time.Duration {
	if d < lo {
		return lo
	}
	if d > hi {
		return hi
	}
	return d
}

// ctlCtx bounds one control-plane call (join, heartbeat, leave, place):
// half a lease TTL — a heartbeat that cannot complete inside its own
// renewal interval is better failed fast and retried than left hanging
// past the lease it was supposed to renew.
func (n *Node) ctlCtx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(),
		clampDur(n.cfg.LeaseTTL/2, 250*time.Millisecond, 5*time.Second))
}

// callCtx bounds one data-plane call (migrate, resolve, cache fetch),
// layered over the caller's context when there is one.
func (n *Node) callCtx(parent context.Context) (context.Context, context.CancelFunc) {
	if parent == nil {
		parent = context.Background()
	}
	return context.WithTimeout(parent,
		clampDur(n.cfg.LeaseTTL, 500*time.Millisecond, 10*time.Second))
}

// blobCtx bounds one checkpoint-blob transfer: proportionally larger
// than control calls — blobs are orders of magnitude bigger than a
// heartbeat body.
func (n *Node) blobCtx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(),
		clampDur(4*n.cfg.LeaseTTL, 2*time.Second, 60*time.Second))
}

// postJSON issues a ctx-bounded JSON POST through the peer client.
func (n *Node) postJSON(ctx context.Context, url string, v any) (*http.Response, error) {
	body, _ := json.Marshal(v)
	req, err := http.NewRequestWithContext(ctx, "POST", url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return n.client.Do(req)
}

// Server exposes the wrapped single-node server (for Start/Drain).
func (n *Node) Server() *server.Server { return n.srv }

// IsCoordinator reports this member's role.
func (n *Node) IsCoordinator() bool { return n.coord != nil }

func (n *Node) log() *slog.Logger { return n.cfg.Log }

// Start launches the cluster loops: the coordinator self-joins and
// sweeps leases; workers join (retrying until the coordinator answers)
// and heartbeat. Call after Server().Start().
func (n *Node) Start() {
	if n.coord != nil {
		// The coordinator is also a worker: it occupies ring shards and
		// heartbeats itself through direct calls (no HTTP loopback).
		resp := n.coord.join(joinRequest{Node: n.cfg.NodeID, Addr: n.cfg.PublicAddr, Peer: n.cfg.PeerAddr})
		n.epoch.Store(resp.Epoch)
		n.adoptMembers(resp.Members)
		n.joined.Store(true)
		n.wg.Add(1)
		go n.coordinatorLoop()
	}
	n.wg.Add(1)
	go n.heartbeatLoop()
}

// Stop ends the loops and, on a worker, announces a graceful leave so
// the coordinator reclaims the shard without waiting out the lease.
func (n *Node) Stop() {
	select {
	case <-n.stop:
	default:
		close(n.stop)
	}
	n.wg.Wait()
	if n.coord == nil && n.joined.Load() {
		ctx, cancel := n.ctlCtx()
		defer cancel()
		if resp, err := n.postJSON(ctx, n.cfg.JoinURL+"/v1/cluster/leave",
			leaveRequest{Node: n.cfg.NodeID, Epoch: n.epoch.Load()}); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
}

// coordinatorLoop sweeps expired leases every TTL/4.
func (n *Node) coordinatorLoop() {
	defer n.wg.Done()
	tick := time.NewTicker(n.cfg.LeaseTTL / 4)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			n.coord.sweep()
		case <-n.stop:
			return
		}
	}
}

// heartbeatLoop renews this member's lease every TTL/4 and keeps the
// membership view fresh. A worker that has not joined yet (or was
// evicted — lease epoch rejected) joins first.
func (n *Node) heartbeatLoop() {
	defer n.wg.Done()
	interval := n.cfg.LeaseTTL / 4
	backoff := retry.Backoff{Base: interval / 2, Max: n.cfg.LeaseTTL}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
		case <-n.stop:
			return
		}
		if n.coord != nil {
			// Local coordinator: renew + reconcile directly.
			resp, err := n.coord.heartbeat(heartbeatRequest{Node: n.cfg.NodeID, Epoch: n.epoch.Load(), Jobs: n.jobReports()})
			if err == nil {
				n.adoptMembers(resp.Members)
			}
			continue
		}
		if !n.joined.Load() {
			if err := n.join(); err != nil {
				n.log().Warn("cluster join failed", "err", err)
				select {
				case <-time.After(backoff.Next(0)):
				case <-n.stop:
					return
				}
			} else {
				backoff.Reset()
			}
			continue
		}
		if err := n.sendHeartbeat(); err != nil {
			n.log().Warn("cluster heartbeat failed", "epoch", n.epoch.Load(), "err", err)
			if err == errEvicted {
				// The coordinator dropped us (partition healed after our
				// lease expired): rejoin under a fresh epoch. Our jobs may
				// already be re-homed; idempotency keys make the overlap
				// harmless.
				n.joined.Store(false)
				n.metrics.rejoins.Add(1)
			}
		}
	}
}

// errEvicted mirrors the coordinator's 410 on a stale-epoch heartbeat.
var errEvicted = fmt.Errorf("cluster: evicted (stale epoch)")

// join registers with the coordinator.
func (n *Node) join() error {
	ctx, cancel := n.ctlCtx()
	defer cancel()
	resp, err := n.postJSON(ctx, n.cfg.JoinURL+"/v1/cluster/join",
		joinRequest{Node: n.cfg.NodeID, Addr: n.cfg.PublicAddr, Peer: n.cfg.PeerAddr})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("join: status %d: %.200s", resp.StatusCode, b)
	}
	var jr joinResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		return err
	}
	n.epoch.Store(jr.Epoch)
	n.adoptMembers(jr.Members)
	n.joined.Store(true)
	n.log().Info("cluster joined", "coordinator", n.cfg.JoinURL, "epoch", jr.Epoch, "members", len(jr.Members))
	return nil
}

// sendHeartbeat renews the worker's lease, reporting non-terminal jobs.
func (n *Node) sendHeartbeat() error {
	// ctlCtx keeps the deadline well inside the lease: a heartbeat stuck
	// on a dead TCP peer must fail (and be retried by the loop) before
	// the lease it renews can expire under it.
	ctx, cancel := n.ctlCtx()
	defer cancel()
	resp, err := n.postJSON(ctx, n.cfg.JoinURL+"/v1/cluster/heartbeat",
		heartbeatRequest{Node: n.cfg.NodeID, Epoch: n.epoch.Load(), Jobs: n.jobReports()})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var hr heartbeatResponse
		if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
			return err
		}
		n.adoptMembers(hr.Members)
		return nil
	case http.StatusGone:
		io.Copy(io.Discard, resp.Body)
		return errEvicted
	default:
		b, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("heartbeat: status %d: %.200s", resp.StatusCode, b)
	}
}

// jobReports renders this node's non-terminal jobs for the coordinator.
func (n *Node) jobReports() []jobReport {
	var out []jobReport
	for _, j := range n.srv.Jobs() {
		if j.State().Terminal() {
			continue
		}
		out = append(out, jobReport{ID: j.ID, Hash: j.Hash, Idem: j.IdemKey(), Spec: j.Spec,
			Traceparent: j.TraceContext().Traceparent()})
	}
	return out
}

// adoptMembers replaces the worker's membership view and ring.
func (n *Node) adoptMembers(ms []Member) {
	ids := make([]string, len(ms))
	view := make(map[string]Member, len(ms))
	for i, m := range ms {
		ids[i] = m.ID
		view[m.ID] = m
		// Teach the chaos mesh which addresses belong to which node so
		// named partitions ("partition@2s:w2|c") sever the right calls.
		n.cfg.Chaos.Bind(m.ID, m.Addr, m.Peer)
	}
	n.viewMu.Lock()
	n.members = view
	n.viewMu.Unlock()
	n.ring.Reset(ids)
}

// member looks a node ID up in the current view.
func (n *Node) member(id string) (Member, bool) {
	n.viewMu.RLock()
	defer n.viewMu.RUnlock()
	m, ok := n.members[id]
	return m, ok
}

// Members returns the current membership view.
func (n *Node) Members() []Member {
	n.viewMu.RLock()
	defer n.viewMu.RUnlock()
	out := make([]Member, 0, len(n.members))
	for _, m := range n.members {
		out = append(out, m)
	}
	return out
}

// onAdmit eagerly tells the coordinator where an accepted job lives.
// Heartbeats would carry it within TTL/4 anyway; the eager notify
// narrows the window in which a crash strands a freshly accepted job
// to the in-flight HTTP call.
func (n *Node) onAdmit(j *server.Job) {
	report := []jobReport{{ID: j.ID, Hash: j.Hash, Idem: j.IdemKey(), Spec: j.Spec,
		Traceparent: j.TraceContext().Traceparent()}}
	if n.coord != nil {
		n.coord.place(n.cfg.NodeID, report)
		return
	}
	go func() {
		ctx, cancel := n.ctlCtx()
		defer cancel()
		resp, err := n.postJSON(ctx, n.cfg.JoinURL+"/v1/cluster/place",
			placeRequest{Node: n.cfg.NodeID, Jobs: report})
		if err != nil {
			return // best-effort; the next heartbeat carries it
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
}

// sendMigrate asks target to adopt one evicted job; self-targets
// short-circuit to the local server.
func (n *Node) sendMigrate(target string, req migrateRequest) (newID string, err error) {
	if target == n.cfg.NodeID {
		j, _, err := n.srv.SubmitMigrated(req.Spec, req.Idem, req.From, obs.ParseTraceparent(req.Traceparent))
		if err != nil {
			return "", err
		}
		return j.ID, nil
	}
	m, ok := n.member(target)
	if !ok {
		return "", fmt.Errorf("cluster: unknown member %s", target)
	}
	br := n.breakers.For(m.Peer)
	if !br.Allow() {
		return "", fmt.Errorf("cluster: breaker open for %s", target)
	}
	ctx, cancel := n.callCtx(nil)
	defer cancel()
	resp, err := n.postJSON(ctx, "http://"+m.Peer+"/v1/cluster/migrate", req)
	if err != nil {
		br.Failure()
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		br.Failure()
		b, _ := io.ReadAll(resp.Body)
		return "", fmt.Errorf("migrate: status %d: %.200s", resp.StatusCode, b)
	}
	br.Success()
	var mr migrateResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		return "", err
	}
	return mr.ID, nil
}

// cacheFetch is the sharded result cache's read-through: on a local
// miss, ask the hash's ring owner.
func (n *Node) cacheFetch(hash string) (string, bool) {
	owner := n.ring.Owner(hash)
	if owner == "" || owner == n.cfg.NodeID {
		return "", false
	}
	m, ok := n.member(owner)
	if !ok {
		return "", false
	}
	br := n.breakers.For(m.Peer)
	if !br.Allow() {
		return "", false
	}
	ctx, cancel := n.callCtx(nil)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET",
		"http://"+m.Peer+"/v1/cluster/cache?hash="+url.QueryEscape(hash), nil)
	if err != nil {
		return "", false
	}
	resp, err := n.client.Do(req)
	if err != nil {
		br.Failure()
		return "", false
	}
	defer resp.Body.Close()
	br.Success()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return "", false
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", false
	}
	return string(b), true
}

// ckptReplicate pushes a freshly saved checkpoint blob to the
// coordinator, asynchronously and best-effort — replication is an
// optimization of recovery time, never a correctness requirement (a
// missing blob just means the migrated job restarts from cycle zero).
// parent is the checkpoint_save span, so the replication hop stays on
// the job's trace even though it outlives the save call.
func (n *Node) ckptReplicate(key string, blob []byte, parent obs.SpanContext) {
	if n.coord != nil {
		return // the coordinator's local store IS the replica target
	}
	buf := append([]byte(nil), blob...)
	go func() {
		sp := n.tracer.Start(parent, obs.KindCheckpointReplicate, "replicate checkpoint")
		sp.SetAttr("key", key)
		defer sp.End()
		ctx, cancel := n.blobCtx()
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, "PUT",
			n.cfg.JoinURL+"/v1/cluster/ckpt?key="+url.QueryEscape(key), bytes.NewReader(buf))
		if err != nil {
			sp.SetError(err)
			return
		}
		obs.Inject(req.Header, sp.Context())
		resp, err := n.client.Do(req)
		if err != nil {
			sp.SetError(err)
			n.log().Warn("checkpoint replication failed", "key", key, "err", err)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
}

// ckptFetch pulls a checkpoint blob from the coordinator — the
// migration read path on a survivor that never ran this simulation.
func (n *Node) ckptFetch(key string) []byte {
	if n.coord != nil {
		return nil // coordinator already consulted its local store
	}
	ctx, cancel := n.blobCtx()
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET",
		n.cfg.JoinURL+"/v1/cluster/ckpt?key="+url.QueryEscape(key), nil)
	if err != nil {
		return nil
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil
	}
	return b
}

// resolveRemote asks the coordinator where a job ID lives now.
func (n *Node) resolveRemote(ctx context.Context, id string) (resolveResponse, error) {
	if n.coord != nil {
		return n.coord.resolve(id)
	}
	ctx, cancel := n.callCtx(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", n.cfg.JoinURL+"/v1/cluster/resolve?id="+url.QueryEscape(id), nil)
	if err != nil {
		return resolveResponse{}, err
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return resolveResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return resolveResponse{}, fmt.Errorf("resolve %s: status %d: %.200s", id, resp.StatusCode, b)
	}
	var rr resolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		return resolveResponse{}, err
	}
	return rr, nil
}

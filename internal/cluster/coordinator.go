package cluster

import (
	"fmt"
	"sync"

	"eruca/internal/obs"
	"eruca/internal/server"
)

// coordinator is the cluster's control plane, embedded in exactly one
// node. It grants and sweeps heartbeat leases, owns the authoritative
// ring, tracks where every non-terminal job lives (placements), and —
// the robustness headline — re-enqueues a dead member's jobs on
// survivors, pointing them at the checkpoint blobs the member
// replicated before dying. Every state change is journaled through the
// host server's WAL, so a coordinator restart reconstructs membership,
// placements, and migration aliases the same way the job layer replays
// its queue.
type coordinator struct {
	node   *Node
	leases *leaseTable

	mu         sync.Mutex
	placements map[string]*placement // cluster job ID -> where it lives
	// pending are evicted-node jobs whose migration has not landed on a
	// survivor yet (all candidates down or draining); retried each
	// sweep tick until they stick.
	pending []*placement
}

// placement is the coordinator's knowledge of one job.
type placement struct {
	Job   string // job ID on its (original) owner
	Node  string
	Hash  string
	Idem  string
	Spec  server.JobSpec
	Trace string // the job's traceparent, for migration continuity
	Done  bool
	// Migration alias: after eviction, the job continues as NewID on
	// NewNode. Proxies resolve the old ID through this.
	NewNode string
	NewID   string
}

func newCoordinator(n *Node) *coordinator {
	return &coordinator{
		node:       n,
		leases:     newLeaseTable(n.cfg.LeaseTTL),
		placements: make(map[string]*placement),
	}
}

// restore folds the journal's cluster records back into membership and
// placement state. Members come back with a full fresh lease: a live
// node will renew within one TTL, a node that died while the
// coordinator was down will miss it and be evicted through the normal
// sweep — no special recovery path.
func (c *coordinator) restore(recs []server.ClusterRecord) {
	for _, rec := range recs {
		switch rec.Kind {
		case "join":
			c.leases.Join(rec.Node, rec.Addr, rec.Peer)
			c.node.ring.Add(rec.Node)
		case "evict":
			c.leases.Drop(rec.Node)
			c.node.ring.Remove(rec.Node)
		case "place":
			if rec.Spec == nil {
				continue
			}
			c.mu.Lock()
			c.placements[rec.Job] = &placement{Job: rec.Job, Node: rec.Node,
				Hash: rec.Hash, Idem: rec.Idem, Spec: *rec.Spec, Trace: rec.Trace}
			c.mu.Unlock()
		case "unplace":
			c.mu.Lock()
			if p := c.placements[rec.Job]; p != nil {
				p.Done = true
			}
			c.mu.Unlock()
		case "migrate":
			c.mu.Lock()
			if p := c.placements[rec.Job]; p != nil {
				p.NewNode, p.NewID = rec.Node, rec.NewID
			}
			c.mu.Unlock()
		}
	}
	if n := c.node.ring.Len(); n > 0 {
		c.node.log().Info("coordinator state restored from journal",
			"members", n, "placements", len(c.placements))
	}
}

// snapshot emits the current cluster state for WAL compaction: a join
// per live member, a place per non-terminal placement, a migrate per
// alias. Terminal placements are dropped — compaction is exactly the
// moment to forget them.
func (c *coordinator) snapshot() []server.ClusterRecord {
	var recs []server.ClusterRecord
	for _, l := range c.leases.Members() {
		recs = append(recs, server.ClusterRecord{Kind: "join", Node: l.Node, Addr: l.Addr, Peer: l.Peer, Epoch: l.Epoch})
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, p := range c.placements {
		if p.Done {
			continue
		}
		sp := p.Spec
		recs = append(recs, server.ClusterRecord{Kind: "place", Node: p.Node, Job: p.Job,
			Hash: p.Hash, Idem: p.Idem, Spec: &sp, Trace: p.Trace})
		if p.NewID != "" {
			recs = append(recs, server.ClusterRecord{Kind: "migrate", Node: p.NewNode, Job: p.Job, NewID: p.NewID})
		}
	}
	return recs
}

// join grants (or re-grants) a lease and installs the member in the
// ring.
func (c *coordinator) join(req joinRequest) joinResponse {
	l := c.leases.Join(req.Node, req.Addr, req.Peer)
	c.node.ring.Add(req.Node)
	_ = c.node.srv.JournalCluster(server.ClusterRecord{Kind: "join", Node: req.Node, Addr: req.Addr, Peer: req.Peer, Epoch: l.Epoch})
	c.node.log().Info("member joined", "member", req.Node, "addr", req.Addr, "peer", req.Peer, "epoch", l.Epoch)
	return joinResponse{Epoch: l.Epoch, TTLMS: c.node.cfg.LeaseTTL.Milliseconds(), Members: c.members()}
}

// heartbeat renews the lease and reconciles the member's job report
// against the placement table.
func (c *coordinator) heartbeat(req heartbeatRequest) (heartbeatResponse, error) {
	if err := c.leases.Renew(req.Node, req.Epoch); err != nil {
		// Zombie incarnation: the member was evicted (or is renewing
		// with a stale epoch after a partition healed). Fence it off —
		// the handler turns this into a 410 so it rejoins fresh.
		c.node.metrics.fenced.Add(1)
		return heartbeatResponse{}, err
	}
	c.node.metrics.heartbeats.Add(1)
	c.place(req.Node, req.Jobs)
	// Reconciliation: a placement on this node that no longer appears
	// in its (exhaustive, non-terminal) report has finished.
	reported := make(map[string]struct{}, len(req.Jobs))
	for _, j := range req.Jobs {
		reported[j.ID] = struct{}{}
	}
	c.mu.Lock()
	var finished []string
	for id, p := range c.placements {
		if p.Node != req.Node || p.Done || p.NewID != "" {
			continue
		}
		if _, ok := reported[id]; !ok {
			p.Done = true
			finished = append(finished, id)
		}
	}
	c.mu.Unlock()
	for _, id := range finished {
		_ = c.node.srv.JournalCluster(server.ClusterRecord{Kind: "unplace", Job: id})
	}
	return heartbeatResponse{Members: c.members()}, nil
}

// place records job placements (from heartbeats or eager admit
// notifications), journaling only new ones.
func (c *coordinator) place(node string, jobs []jobReport) {
	var fresh []jobReport
	c.mu.Lock()
	for _, j := range jobs {
		if existing := c.placements[j.ID]; existing != nil {
			if existing.Trace == "" && j.Traceparent != "" {
				existing.Trace = j.Traceparent // first traced report wins
			}
			continue
		}
		c.placements[j.ID] = &placement{Job: j.ID, Node: node, Hash: j.Hash, Idem: j.Idem,
			Spec: j.Spec, Trace: j.Traceparent}
		fresh = append(fresh, j)
	}
	c.mu.Unlock()
	for _, j := range fresh {
		sp := j.Spec
		_ = c.node.srv.JournalCluster(server.ClusterRecord{Kind: "place", Node: node, Job: j.ID,
			Hash: j.Hash, Idem: j.Idem, Spec: &sp, Trace: j.Traceparent})
	}
}

// members renders the lease table as the wire member list.
func (c *coordinator) members() []Member {
	ls := c.leases.Members()
	out := make([]Member, len(ls))
	for i, l := range ls {
		out[i] = Member{ID: l.Node, Addr: l.Addr, Peer: l.Peer}
	}
	return out
}

// sweep is one lease-expiry pass plus a retry of pending migrations.
// Called from the coordinator loop every TTL/4.
func (c *coordinator) sweep() {
	for _, l := range c.leases.Expired() {
		c.evict(l, "lease expired")
	}
	c.mu.Lock()
	pending := c.pending
	c.pending = nil
	c.mu.Unlock()
	for _, p := range pending {
		c.migrate(p)
	}
}

// evict removes a dead (or departing) member and re-enqueues its
// non-terminal jobs on survivors.
func (c *coordinator) evict(l lease, why string) {
	c.node.ring.Remove(l.Node)
	c.node.metrics.nodesEvicted.Add(1)
	_ = c.node.srv.JournalCluster(server.ClusterRecord{Kind: "evict", Node: l.Node})
	c.node.log().Warn("member evicted", "member", l.Node, "reason", why, "epoch", l.Epoch)
	var orphans []*placement
	c.mu.Lock()
	for _, p := range c.placements {
		if p.Node == l.Node && !p.Done && p.NewID == "" {
			orphans = append(orphans, p)
		}
	}
	c.mu.Unlock()
	for _, p := range orphans {
		c.migrate(p)
	}
}

// migrate re-enqueues one orphaned job on the survivor the ring now
// assigns its hash to, shedding along the successor list when that
// survivor is unreachable. The request lands through SubmitMigrated on
// the survivor — past its admission bound, because this work was
// already acknowledged cluster-side — and the survivor's simulation
// resumes from the blob the dead node replicated (read-through in the
// server's checkpoint loader). Failure leaves the placement on the
// pending list for the next sweep.
func (c *coordinator) migrate(p *placement) {
	// The migrate span parents to the dead job's admit span (carried by
	// heartbeats into the placement table), so the re-homed job stays on
	// the original submission's trace.
	ms := c.node.tracer.Start(obs.ParseTraceparent(p.Trace), obs.KindMigrate, "migrate")
	ms.SetJob(p.Job)
	ms.SetAttr("from", p.Node)
	defer ms.End()
	req := migrateRequest{Job: p.Job, Hash: p.Hash, Idem: p.Idem, Spec: p.Spec, From: p.Node,
		Traceparent: ms.Context().Traceparent()}
	for _, target := range c.node.ring.Successors(p.Hash, c.node.ring.Len()) {
		newID, err := c.node.sendMigrate(target, req)
		if err != nil {
			c.node.log().Warn("migrate attempt failed", "job_id", p.Job, "target", target, "err", err)
			continue
		}
		c.mu.Lock()
		p.NewNode, p.NewID = target, newID
		c.mu.Unlock()
		c.node.metrics.jobsMigrated.Add(1)
		_ = c.node.srv.JournalCluster(server.ClusterRecord{Kind: "migrate", Node: target, Job: p.Job, NewID: newID})
		ms.SetAttr("to", target)
		ms.SetAttr("new_id", newID)
		c.node.log().Info("job migrated", "job_id", p.Job, "target", target, "new_id", newID)
		return
	}
	ms.SetError(fmt.Errorf("no survivor accepted the job"))
	c.node.log().Warn("migration pending: no survivor accepted job", "job_id", p.Job)
	c.mu.Lock()
	c.pending = append(c.pending, p)
	c.mu.Unlock()
}

// resolve maps a job ID to the node currently holding it — through the
// migration alias when its original owner was evicted.
func (c *coordinator) resolve(id string) (resolveResponse, error) {
	c.mu.Lock()
	p := c.placements[id]
	var alias placement
	if p != nil {
		alias = *p
	}
	c.mu.Unlock()
	if p == nil {
		return resolveResponse{}, fmt.Errorf("cluster: unknown job %q", id)
	}
	node, jid := alias.Node, alias.Job
	if alias.NewID != "" {
		node, jid = alias.NewNode, alias.NewID
	}
	l, ok := c.leases.Get(node)
	if !ok {
		return resolveResponse{}, fmt.Errorf("cluster: job %q owner %s not currently a member", id, node)
	}
	return resolveResponse{Addr: l.Addr, ID: jid}, nil
}

// leave is the graceful departure path: drop the lease and migrate
// anything the member still had (normally nothing, because members
// drain before leaving).
func (c *coordinator) leave(req leaveRequest) {
	if l, ok := c.leases.Drop(req.Node); ok {
		c.evict(l, "graceful leave")
	}
}

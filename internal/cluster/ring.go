package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// ring is a consistent-hash ring over node IDs. Jobs are placed by
// their content hash (the server's spec hash), so every node that
// routes a given spec routes it to the same owner — which is what lets
// the per-node singleflight dedup collapse duplicate submissions
// cluster-wide — and membership changes move only the keys adjacent to
// the changed node, not the whole keyspace (the result-cache shards
// stay mostly warm through a join or an eviction).
type ring struct {
	mu      sync.RWMutex
	vnodes  int
	points  []ringPoint // sorted by h
	members map[string]struct{}
}

type ringPoint struct {
	h    uint64
	node string
}

// ringVnodes is the virtual-node count per member: enough that three
// nodes split the keyspace within a few percent of evenly.
const ringVnodes = 64

func newRing() *ring {
	return &ring{vnodes: ringVnodes, members: make(map[string]struct{})}
}

func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts a member (idempotent).
func (r *ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[node]; ok {
		return
	}
	r.members[node] = struct{}{}
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{h: ringHash(fmt.Sprintf("%s#%d", node, i)), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].h < r.points[j].h })
}

// Remove drops a member (idempotent).
func (r *ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[node]; !ok {
		return
	}
	delete(r.members, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Reset replaces the membership wholesale (a worker adopting the
// coordinator's member list).
func (r *ring) Reset(nodes []string) {
	r.mu.Lock()
	cur := make([]string, 0, len(r.members))
	for n := range r.members {
		cur = append(cur, n)
	}
	r.mu.Unlock()
	want := make(map[string]struct{}, len(nodes))
	for _, n := range nodes {
		want[n] = struct{}{}
	}
	for _, n := range cur {
		if _, ok := want[n]; !ok {
			r.Remove(n)
		}
	}
	for _, n := range nodes {
		r.Add(n)
	}
}

// Owner returns the member owning key, or "" on an empty ring.
func (r *ring) Owner(key string) string {
	owners := r.Successors(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// Successors returns up to n distinct members in ring order starting at
// key's owner — the shed order when the owner is unreachable.
func (r *ring) Successors(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	seen := make(map[string]struct{}, n)
	out := make([]string, 0, n)
	for k := 0; k < len(r.points) && len(out) < n; k++ {
		p := r.points[(i+k)%len(r.points)]
		if _, dup := seen[p.node]; dup {
			continue
		}
		seen[p.node] = struct{}{}
		out = append(out, p.node)
	}
	return out
}

// Members returns the current membership, sorted.
func (r *ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for n := range r.members {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len reports the member count.
func (r *ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Has reports membership of node.
func (r *ring) Has(node string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.members[node]
	return ok
}

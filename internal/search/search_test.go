package search

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// fakeEval derives deterministic pseudo-metrics from the point key and
// budget, and counts every call per eval key — the instrumentation the
// determinism and no-re-simulation tests assert on.
type fakeEval struct {
	mu    sync.Mutex
	calls map[string]int
	fail  func(key string) bool // optional: deterministic failures
	abort func() bool           // optional: trip mid-run cancellation
}

func newFakeEval() *fakeEval {
	return &fakeEval{calls: map[string]int{}}
}

func (f *fakeEval) Eval(ctx context.Context, key string, a map[string]string, instrs int64) (Metrics, error) {
	f.mu.Lock()
	f.calls[evalKey(key, instrs)]++
	abort := f.abort != nil && f.abort()
	f.mu.Unlock()
	if abort {
		return Metrics{}, context.Canceled
	}
	if f.fail != nil && f.fail(key) {
		return Metrics{}, errors.New("synthetic evaluation failure")
	}
	h := sha256.Sum256([]byte(fmt.Sprintf("%s@%d", key, instrs)))
	u := binary.BigEndian.Uint64(h[:8])
	return Metrics{
		IPC:      1 + float64(u%1000)/1000,
		EnergyNJ: 100 + float64(u>>10%1000),
		AreaPct:  float64(u >> 20 % 100),
	}, nil
}

func (f *fakeEval) totalCalls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, c := range f.calls {
		n += c
	}
	return n
}

func testSpec() Spec {
	return Spec{
		Dims: []DimSpec{
			{Name: "planes", Values: []string{"1", "2", "4", "8"}},
			{Name: "ddb"},
			{Name: "ewlr"},
		},
		Seed:   7,
		Instrs: 16000,
		Rungs:  2,
	}
}

func TestUnseededRejected(t *testing.T) {
	s := testSpec()
	s.Seed = 0
	_, err := Run(context.Background(), s, Options{Eval: newFakeEval()})
	if !errors.Is(err, ErrUnseeded) {
		t.Fatalf("err = %v, want ErrUnseeded", err)
	}
	if _, err := s.Validate(); !errors.Is(err, ErrUnseeded) {
		t.Fatalf("Validate err = %v, want ErrUnseeded", err)
	}
}

func TestSpecValidation(t *testing.T) {
	s := testSpec()
	s.Dims = []DimSpec{{Name: "warp_drive"}}
	if _, err := s.Validate(); err == nil || !strings.Contains(err.Error(), "unknown dimension") {
		t.Fatalf("err = %v, want unknown dimension", err)
	}
	s = testSpec()
	s.Dims = []DimSpec{{Name: "planes", Values: []string{"3"}}}
	if _, err := s.Validate(); err == nil || !strings.Contains(err.Error(), "not in ladder") {
		t.Fatalf("err = %v, want ladder error", err)
	}
	s = testSpec()
	s.Dims = nil
	if _, err := s.Validate(); err == nil {
		t.Fatal("empty space accepted")
	}
}

func TestSpecHashDefaultsExplicit(t *testing.T) {
	a := testSpec()
	b := testSpec()
	b.Mix = "mix0"
	b.GridMax = 32
	b.RungScale = 4
	b.SurviveFrac = 0.5
	if a.Hash() != b.Hash() {
		t.Fatal("spelled-out defaults changed the spec hash")
	}
	c := testSpec()
	c.Seed = 8
	if a.Hash() == c.Hash() {
		t.Fatal("different seeds share a hash")
	}
}

// TestDeterministicRerun: same spec + seed, run twice, byte-identical
// result (acceptance criterion a).
func TestDeterministicRerun(t *testing.T) {
	r1, err := Run(context.Background(), testSpec(), Options{Eval: newFakeEval(), Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(context.Background(), testSpec(), Options{Eval: newFakeEval(), Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r1.JSON(), r2.JSON()) {
		t.Fatalf("reruns differ:\n%s\nvs\n%s", r1.JSON(), r2.JSON())
	}
	if len(r1.Frontier) == 0 {
		t.Fatal("empty frontier")
	}
}

// TestDeterministicAcrossParallelism: byte-identical at every worker
// count (acceptance criterion b).
func TestDeterministicAcrossParallelism(t *testing.T) {
	var base []byte
	for _, par := range []int{1, 2, 8} {
		r, err := Run(context.Background(), testSpec(), Options{Eval: newFakeEval(), Parallel: par})
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = r.JSON()
		} else if !bytes.Equal(base, r.JSON()) {
			t.Fatalf("parallel=%d diverged:\n%s\nvs\n%s", par, base, r.JSON())
		}
	}
}

// memCkpt is an in-memory checkpoint store.
type memCkpt struct {
	mu   sync.Mutex
	blob []byte
}

func (m *memCkpt) policy() *Checkpoint {
	return &Checkpoint{
		Load: func() []byte {
			m.mu.Lock()
			defer m.mu.Unlock()
			return m.blob
		},
		Save: func(b []byte) {
			m.mu.Lock()
			m.blob = b
			m.mu.Unlock()
		},
	}
}

// TestKillResume: a search canceled mid-run resumes from its snapshot,
// re-simulates none of the snapshotted points, and produces the
// byte-identical result of an uninterrupted run (acceptance criterion
// c + the zero-re-simulation efficiency criterion).
func TestKillResume(t *testing.T) {
	uninterrupted, err := Run(context.Background(), testSpec(), Options{Eval: newFakeEval()})
	if err != nil {
		t.Fatal(err)
	}

	ck := &memCkpt{}
	ctx, cancel := context.WithCancel(context.Background())
	ev1 := newFakeEval()
	var n int
	ev1.abort = func() bool {
		n++
		if n == 5 { // die mid-grid
			cancel()
		}
		return n >= 5
	}
	_, err = Run(ctx, testSpec(), Options{Eval: ev1, Checkpoint: ck.policy(), Parallel: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run err = %v, want context.Canceled", err)
	}
	if ck.blob == nil {
		t.Fatal("no checkpoint saved before death")
	}
	snapshotted, err := decodeState(testSpec().Hash(), ck.blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(snapshotted) == 0 {
		t.Fatal("checkpoint holds no evaluated points")
	}

	ev2 := newFakeEval()
	resumed, err := Run(context.Background(), testSpec(), Options{Eval: ev2, Checkpoint: ck.policy(), Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(uninterrupted.JSON(), resumed.JSON()) {
		t.Fatalf("resumed result differs from uninterrupted:\n%s\nvs\n%s", uninterrupted.JSON(), resumed.JSON())
	}
	ev2.mu.Lock()
	defer ev2.mu.Unlock()
	for ek := range snapshotted {
		if ev2.calls[ek] != 0 {
			t.Errorf("snapshotted point %s was re-evaluated %d times", ek, ev2.calls[ek])
		}
	}
}

// TestSnapshotRejectsForeignSpec: a checkpoint from a different spec
// is ignored, not half-applied.
func TestSnapshotRejectsForeignSpec(t *testing.T) {
	other := testSpec()
	other.Seed = 99
	blob := encodeState(other.Normalize().Hash(), map[string]evalRecord{"planes=4@1000": {m: Metrics{IPC: 1}}})
	if _, err := decodeState(testSpec().Normalize().Hash(), blob); err == nil {
		t.Fatal("foreign-spec snapshot accepted")
	}
	if _, err := decodeState(other.Normalize().Hash(), blob); err != nil {
		t.Fatalf("own snapshot rejected: %v", err)
	}
	corrupt := append([]byte(nil), blob...)
	corrupt[len(corrupt)-1] ^= 0xff
	if _, err := decodeState(other.Normalize().Hash(), corrupt); err == nil {
		t.Fatal("corrupted snapshot accepted")
	}
	// A fresh run with a foreign checkpoint must match a checkpoint-free
	// run (the blob is ignored, with a log line).
	ck := &Checkpoint{Load: func() []byte { return blob }, Save: func([]byte) {}}
	r1, err := Run(context.Background(), testSpec(), Options{Eval: newFakeEval(), Checkpoint: ck})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(context.Background(), testSpec(), Options{Eval: newFakeEval()})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r1.JSON(), r2.JSON()) {
		t.Fatal("foreign checkpoint perturbed the result")
	}
}

// TestCanonicalCollapse: points differing only in a masked dimension
// (ewlr_bits under ewlr=off) share one canonical key and one
// evaluation.
func TestCanonicalCollapse(t *testing.T) {
	s := Spec{
		Dims: []DimSpec{
			{Name: "ewlr"},
			{Name: "ewlr_bits", Values: []string{"1", "3"}},
		},
		Seed:   3,
		Instrs: 16000,
		Rungs:  1,
	}
	ev := newFakeEval()
	r, err := Run(context.Background(), s, Options{Eval: ev})
	if err != nil {
		t.Fatal(err)
	}
	// Full cartesian grid is (off,on) x (1,3) = 4 points, but ewlr=off
	// masks ewlr_bits: off/1 and off/3 collapse, leaving 3 canonical
	// points.
	if r.PointsEvaluated != 3 {
		t.Fatalf("PointsEvaluated = %d, want 3 (masked dim must collapse)", r.PointsEvaluated)
	}
	ev.mu.Lock()
	defer ev.mu.Unlock()
	for k, c := range ev.calls {
		if c != 1 {
			t.Errorf("key %s evaluated %d times", k, c)
		}
		if strings.Contains(k, "ewlr=off") && !strings.Contains(k, "ewlr_bits=-") {
			t.Errorf("key %s not masked", k)
		}
	}
}

// TestDeterministicFailures: evaluation failures replay exactly — a
// resumed run reproduces the uninterrupted result even when some
// points fail.
func TestDeterministicFailures(t *testing.T) {
	failer := func(key string) bool { return strings.Contains(key, "planes=8") }
	mk := func() *fakeEval { e := newFakeEval(); e.fail = failer; return e }
	r1, err := Run(context.Background(), testSpec(), Options{Eval: mk()})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Failures == 0 {
		t.Fatal("expected failures recorded")
	}
	ck := &memCkpt{}
	if _, err := Run(context.Background(), testSpec(), Options{Eval: mk(), Checkpoint: ck.policy()}); err != nil {
		t.Fatal(err)
	}
	// Resume from a complete snapshot: zero evaluator calls, same bytes.
	ev := mk()
	r2, err := Run(context.Background(), testSpec(), Options{Eval: ev, Checkpoint: ck.policy()})
	if err != nil {
		t.Fatal(err)
	}
	if ev.totalCalls() != 0 {
		t.Fatalf("complete snapshot still caused %d evaluations", ev.totalCalls())
	}
	if !bytes.Equal(r1.JSON(), r2.JSON()) {
		t.Fatal("failure-bearing resume diverged")
	}
	for _, p := range r1.Frontier {
		if strings.Contains(p.Point, "planes=8") {
			t.Fatalf("failed point %s on frontier", p.Point)
		}
	}
}

func TestFrontierDominance(t *testing.T) {
	var f Frontier
	if !f.Add(FrontierPoint{Point: "a", IPC: 1, EnergyNJ: 10, AreaPct: 1}) {
		t.Fatal("first add rejected")
	}
	// Dominated on all axes.
	if f.Add(FrontierPoint{Point: "b", IPC: 0.5, EnergyNJ: 20, AreaPct: 2}) {
		t.Fatal("dominated point accepted")
	}
	// Dominates: evicts a.
	if !f.Add(FrontierPoint{Point: "c", IPC: 2, EnergyNJ: 5, AreaPct: 0.5}) {
		t.Fatal("dominating point rejected")
	}
	if f.Len() != 1 || f.Members()[0] != "c" {
		t.Fatalf("frontier = %v, want [c]", f.Members())
	}
	// Incomparable trade-off: joins.
	if !f.Add(FrontierPoint{Point: "d", IPC: 3, EnergyNJ: 50, AreaPct: 0.5}) {
		t.Fatal("trade-off point rejected")
	}
	if f.Len() != 2 {
		t.Fatalf("len = %d, want 2", f.Len())
	}
	// Exact tie with c: later key loses, earlier key wins.
	if f.Add(FrontierPoint{Point: "e", IPC: 2, EnergyNJ: 5, AreaPct: 0.5}) {
		t.Fatal("tie with later key accepted")
	}
	if !f.Add(FrontierPoint{Point: "a", IPC: 2, EnergyNJ: 5, AreaPct: 0.5}) {
		t.Fatal("tie with earlier key rejected")
	}
	members := f.Members()
	if len(members) != 2 || members[0] != "a" || members[1] != "d" {
		t.Fatalf("frontier = %v, want [a d]", members)
	}
}

// TestFrontierOrderIndependence: the frontier is a pure function of
// the point set, whatever the insertion order.
func TestFrontierOrderIndependence(t *testing.T) {
	pts := []FrontierPoint{
		{Point: "p1", IPC: 1.0, EnergyNJ: 10, AreaPct: 5},
		{Point: "p2", IPC: 1.5, EnergyNJ: 12, AreaPct: 5},
		{Point: "p3", IPC: 1.5, EnergyNJ: 12, AreaPct: 5}, // tie with p2
		{Point: "p4", IPC: 0.9, EnergyNJ: 8, AreaPct: 4},
		{Point: "p5", IPC: 2.0, EnergyNJ: 30, AreaPct: 9},
		{Point: "p6", IPC: 1.4, EnergyNJ: 13, AreaPct: 6}, // dominated by p2
	}
	var want []FrontierPoint
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		perm := r.Perm(len(pts))
		var f Frontier
		for _, i := range perm {
			f.Add(pts[i])
		}
		got := f.Points()
		if trial == 0 {
			want = got
			continue
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("order-dependent frontier: %v vs %v", got, want)
		}
	}
	var f Frontier
	for _, p := range pts {
		f.Add(p)
	}
	for _, m := range f.Members() {
		if m == "p3" || m == "p6" {
			t.Fatalf("unexpected member %s", m)
		}
	}
}

// TestSpaceCompile: values are deduped and re-sorted into ladder
// order, so differently-spelled specs compile identically.
func TestSpaceCompile(t *testing.T) {
	a, err := compileSpace([]DimSpec{{Name: "planes", Values: []string{"4", "1", "2", "4"}}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := compileSpace([]DimSpec{{Name: "planes", Values: []string{"1", "2", "4"}}})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("spelling-dependent space: %v vs %v", a, b)
	}
	if _, err := compileSpace([]DimSpec{{Name: "planes"}, {Name: "planes"}}); err == nil {
		t.Fatal("duplicate dimension accepted")
	}
}

func TestParseAssignment(t *testing.T) {
	a, err := ParseAssignment(map[string]string{"planes": "8", "ewlr": "off", "ewlr_bits": "5"})
	if err != nil {
		t.Fatal(err)
	}
	if a["ewlr_bits"] != "-" {
		t.Fatalf("ewlr_bits = %q, want masked", a["ewlr_bits"])
	}
	if a["queue_depth"] != "64" {
		t.Fatalf("default queue_depth = %q", a["queue_depth"])
	}
	if _, err := ParseAssignment(map[string]string{"bogus": "1"}); err == nil {
		t.Fatal("unknown dimension accepted")
	}
	if _, err := ParseAssignment(map[string]string{"planes": "3"}); err == nil {
		t.Fatal("off-ladder value accepted")
	}
}

// TestSystemFor: the mapped system carries the point key as its name
// (the Runner cache identity) and honors every dimension.
func TestSystemFor(t *testing.T) {
	a, err := ParseAssignment(map[string]string{
		"planes": "8", "ewlr": "on", "ewlr_bits": "2", "rap": "off",
		"ddb": "off", "queue_depth": "32", "page_policy": "closed",
	})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := SystemFor(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Name != Key(a) {
		t.Fatalf("system name %q != point key %q", sys.Name, Key(a))
	}
	if sys.Scheme.Planes != 8 || !sys.Scheme.EWLR || sys.Scheme.EWLRBits != 2 || sys.Scheme.RAP || sys.Scheme.DDB {
		t.Fatalf("scheme mismatch: %+v", sys.Scheme)
	}
	if sys.Ctrl.ReadQueueDepth != 32 || sys.Ctrl.WriteDrainHi != 20 || sys.Ctrl.WriteDrainLo != 8 {
		t.Fatalf("controller mismatch: %+v", sys.Ctrl)
	}
	if sys.Ctrl.ClosePageIdleCK != 64 {
		t.Fatalf("page policy mismatch: %d", sys.Ctrl.ClosePageIdleCK)
	}
	open, err := ParseAssignment(map[string]string{"page_policy": "open"})
	if err != nil {
		t.Fatal(err)
	}
	osys, err := SystemFor(open, 0)
	if err != nil {
		t.Fatal(err)
	}
	if osys.Ctrl.ClosePageIdleCK != 0 {
		t.Fatalf("open page policy ClosePageIdleCK = %d, want 0", osys.Ctrl.ClosePageIdleCK)
	}
}

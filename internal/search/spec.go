package search

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
)

// ErrUnseeded is returned when a spec does not pin its random seed.
// Every random choice the engine makes (grid subsampling, neighbor
// shuffles) draws from an internal/rng counting source keyed by this
// seed; an implicit time- or OS-derived seed would make searches
// unreproducible and unresumable, so it is a typed error, not a
// default.
var ErrUnseeded = errors.New("search: spec has no seed; set an explicit -seed (searches must be reproducible)")

// DimSpec selects one dimension for the search. Values restricts it to
// a subset of its ladder; empty means the full ladder.
type DimSpec struct {
	Name   string   `json:"name"`
	Values []string `json:"values,omitempty"`
}

// Spec describes one search: the space, the objective workload, and
// the strategy budgets. The zero value is invalid — Seed is mandatory.
type Spec struct {
	// Dims lists the searched dimensions (see Space); order and
	// duplicate values are normalized away.
	Dims []DimSpec `json:"dims"`

	// Mix is the workload mix every point is evaluated on (default
	// mix0). Frag is the FMFI fragmentation level, BusMHz the channel
	// frequency (default Tab. III 1333).
	Mix    string  `json:"mix,omitempty"`
	Frag   float64 `json:"frag"`
	BusMHz float64 `json:"bus_mhz,omitempty"`

	// Seed keys every random draw. Mandatory: 0 is rejected with
	// ErrUnseeded.
	Seed int64 `json:"seed"`

	// Instrs is the full-budget instruction count per core (default
	// 250k, the exp harness default); Warmup defaults to Instrs/2
	// inside the simulator. Only full-budget evaluations enter the
	// frontier — cheaper rungs just rank candidates.
	Instrs int64 `json:"instrs,omitempty"`

	// GridMax caps the coarse seeding grid (default 32): when the
	// cartesian grid of up to gridValuesPerDim values per dimension is
	// larger, a seeded shuffle keeps GridMax points.
	GridMax int `json:"grid_max,omitempty"`

	// Rungs and RungScale shape successive halving: rung r runs at
	// Instrs/RungScale^(Rungs-1-r) instructions, the last rung at the
	// full budget. Rungs=1 evaluates the grid at full budget directly.
	Rungs     int   `json:"rungs,omitempty"`
	RungScale int64 `json:"rung_scale,omitempty"`

	// SurviveFrac is the fraction of candidates promoted to the next
	// rung (default 0.5, minimum one survivor).
	SurviveFrac float64 `json:"survive_frac,omitempty"`

	// RefineRounds bounds the neighborhood-refinement stage (default
	// 2): each round evaluates the unexplored ladder neighbors of the
	// current frontier at full budget, stopping early when a round
	// leaves the frontier unchanged. NeighborMax caps each round's
	// batch (default 16) via a seeded shuffle.
	RefineRounds int `json:"refine_rounds,omitempty"`
	NeighborMax  int `json:"neighbor_max,omitempty"`
}

// gridValuesPerDim bounds how many ladder values per dimension the
// coarse seeding grid uses (first, middle, last).
const gridValuesPerDim = 3

// Normalize returns a copy with every default made explicit, so equal
// searches hash equally regardless of which defaults were spelled out.
func (s Spec) Normalize() Spec {
	n := s
	if n.Mix == "" {
		n.Mix = "mix0"
	}
	if n.BusMHz == 0 {
		n.BusMHz = 1333
	}
	if n.Instrs <= 0 {
		n.Instrs = 250_000
	}
	if n.GridMax <= 0 {
		n.GridMax = 32
	}
	if n.Rungs <= 0 {
		n.Rungs = 3
	}
	if n.RungScale <= 1 {
		n.RungScale = 4
	}
	if n.SurviveFrac <= 0 || n.SurviveFrac >= 1 {
		n.SurviveFrac = 0.5
	}
	if n.RefineRounds < 0 {
		n.RefineRounds = 0
	} else if n.RefineRounds == 0 {
		n.RefineRounds = 2
	}
	if n.NeighborMax <= 0 {
		n.NeighborMax = 16
	}
	dims := make([]DimSpec, len(n.Dims))
	copy(dims, n.Dims)
	n.Dims = dims
	return n
}

// Validate checks the spec and compiles its space. The seed check is
// first: an unseeded spec is rejected before anything else.
func (s Spec) Validate() (*Space, error) {
	if s.Seed == 0 {
		return nil, ErrUnseeded
	}
	n := s.Normalize()
	sp, err := compileSpace(n.Dims)
	if err != nil {
		return nil, err
	}
	if n.Frag < 0 || n.Frag > 1 {
		return nil, fmt.Errorf("search: frag %.2f out of [0,1]", n.Frag)
	}
	if n.Rungs > 8 {
		return nil, fmt.Errorf("search: rungs %d out of [1,8]", n.Rungs)
	}
	return sp, nil
}

// Hash is the content address of the normalized spec: searches that
// differ only in unspelled defaults collapse to the same hash. It
// guards snapshots (a blob for a different spec is ignored) and keys
// the search checkpoint in the daemon.
func (s Spec) Hash() string {
	b, err := json.Marshal(s.Normalize())
	if err != nil {
		panic("search: spec not marshalable: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

package search

import (
	"encoding/json"
	"fmt"

	"eruca/internal/exp"
)

// Result is the deterministic outcome of a search: a pure function of
// (spec, seed). It deliberately excludes runtime accounting (fresh
// simulations vs cache hits, wall-clock, parallelism) so that a killed
// and resumed search marshals byte-identically to an uninterrupted
// one; that accounting lives in Progress and the daemon's metrics.
type Result struct {
	SpecHash string  `json:"spec_hash"`
	Seed     int64   `json:"seed"`
	Space    []Dim   `json:"space"`
	Mix      string  `json:"mix"`
	Frag     float64 `json:"frag"`
	Instrs   int64   `json:"instrs"`

	// PointsEvaluated counts distinct (point, budget) evaluations the
	// strategy requested; Failures the ones that ended in a
	// deterministic simulator error.
	PointsEvaluated int `json:"points_evaluated"`
	Failures        int `json:"failures,omitempty"`

	// Frontier is the Pareto-optimal set, fastest first.
	Frontier []FrontierPoint `json:"frontier"`
}

// JSON renders the canonical wire form (indented, stable field order).
func (r *Result) JSON() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic("search: result not marshalable: " + err.Error())
	}
	return append(b, '\n')
}

// ParseResult decodes a Result from its JSON form.
func ParseResult(b []byte) (*Result, error) {
	var r Result
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("search: bad result JSON: %w", err)
	}
	return &r, nil
}

// Table renders the frontier as an exp.Table.
func (r *Result) Table() *exp.Table {
	t := &exp.Table{
		Title:  fmt.Sprintf("Pareto frontier (mix %s, FMFI %.0f%%, %d instrs, seed %d)", r.Mix, r.Frag*100, r.Instrs, r.Seed),
		Header: []string{"point", "IPC", "energy (nJ)", "area (%)"},
	}
	for _, p := range r.Frontier {
		t.Rows = append(t.Rows, []string{
			p.Point,
			fmt.Sprintf("%.4f", p.IPC),
			fmt.Sprintf("%.1f", p.EnergyNJ),
			fmt.Sprintf("%.2f", p.AreaPct),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d points evaluated, %d on the frontier (spec %.12s).", r.PointsEvaluated, len(r.Frontier), r.SpecHash))
	if r.Failures > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("%d evaluations failed and were excluded.", r.Failures))
	}
	return t
}

// Chart renders the IPC-vs-energy Pareto scatter of the frontier.
func (r *Result) Chart() string {
	pts := make([]exp.ScatterPoint, len(r.Frontier))
	for i, p := range r.Frontier {
		pts[i] = exp.ScatterPoint{X: p.EnergyNJ, Y: p.IPC, Frontier: true, Label: p.Point}
	}
	return exp.ParetoScatter("Pareto frontier: IPC vs energy", "energy (nJ)", "IPC", pts)
}

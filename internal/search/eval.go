package search

import (
	"context"
	"sync"

	"eruca/internal/area"
	"eruca/internal/config"
	"eruca/internal/exp"
	"eruca/internal/sim"
	"eruca/internal/workload"
)

// Evaluator scores one canonical point at one instruction budget. The
// engine calls it from many goroutines; implementations must be safe
// for concurrent use. key is the canonical point key (the simulation
// identity), a the canonical assignment it was derived from.
//
// Results MUST be deterministic in (key, instrs): the engine's
// replay-on-resume and any-parallelism guarantees hold only because
// re-evaluating a point reproduces the same metrics bit for bit.
type Evaluator interface {
	Eval(ctx context.Context, key string, a map[string]string, instrs int64) (Metrics, error)
}

// RunnerEval evaluates points through exp.Runner — one Runner per
// instruction budget (a Runner's budget is fixed at construction), all
// sharing the base Params. Revisited points hit the Runner's
// singleflight cache and never re-simulate; Counters exposes the
// dedup evidence.
type RunnerEval struct {
	base   exp.Params
	mix    workload.Mix
	frag   float64
	busMHz float64

	mu      sync.Mutex
	runners map[int64]*exp.Runner
}

// NewRunnerEval builds a local evaluator. base.Instrs is ignored (each
// rung gets its own budget); base.Seed seeds the simulations, which is
// independent of the search seed.
func NewRunnerEval(base exp.Params, mix workload.Mix, frag, busMHz float64) *RunnerEval {
	return &RunnerEval{
		base:    base,
		mix:     mix,
		frag:    frag,
		busMHz:  busMHz,
		runners: make(map[int64]*exp.Runner),
	}
}

func (e *RunnerEval) runner(instrs int64) *exp.Runner {
	e.mu.Lock()
	defer e.mu.Unlock()
	if r, ok := e.runners[instrs]; ok {
		return r
	}
	p := e.base
	p.Instrs = instrs
	p.Warmup = 0 // default: Instrs/2, scales with the rung budget
	r := exp.NewRunner(p)
	e.runners[instrs] = r
	return r
}

// Eval implements Evaluator.
func (e *RunnerEval) Eval(ctx context.Context, key string, a map[string]string, instrs int64) (Metrics, error) {
	sys, err := SystemFor(a, e.busMHz)
	if err != nil {
		return Metrics{}, err
	}
	res, err := e.runner(instrs).WithContext(ctx).Result(sys, e.mix, e.frag)
	if err != nil {
		return Metrics{}, err
	}
	return MetricsFor(sys, res), nil
}

// MetricsFor derives the three autotuner objectives from one simulation
// of sys: aggregate IPC (sum over cores), total energy in nJ, and the
// die-area overhead of the scheme in percent. Every evaluator — local
// RunnerEval and the daemon's eval-job path — must use this single
// definition, or identical points would score differently depending on
// where they were simulated.
func MetricsFor(sys *config.System, res *sim.Result) Metrics {
	return Metrics{
		IPC:      sumIPC(res.IPC),
		EnergyNJ: res.Energy.TotalNJ(),
		AreaPct:  area.Overhead(sys.Scheme, sys.Geom.Banks()) * 100,
	}
}

// Counters sums the launched/joined counters of every per-budget
// Runner: launched is the number of simulations actually executed,
// joined the calls served from an existing flight or cache entry.
func (e *RunnerEval) Counters() (launched, joined int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, r := range e.runners {
		l, j := r.Counters()
		launched += l
		joined += j
	}
	return
}

func sumIPC(ipc []float64) float64 {
	var s float64
	for _, v := range ipc {
		s += v
	}
	return s
}

package search

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"eruca/internal/rng"
)

// Progress is a live snapshot of a running search, delivered to
// Options.OnProgress at every batch barrier and frontier change.
// Evaluated counts the distinct (point, budget) evaluations the
// strategy has requested so far; Fresh and CacheHits split them into
// simulations actually performed this run versus results served from a
// restored snapshot — runtime evidence only, never part of the result.
type Progress struct {
	Stage        string
	Evaluated    int
	Fresh        int64
	CacheHits    int64
	FrontierSize int
	Frontier     []FrontierPoint
}

// Checkpoint persists search state across crashes. Load is called once
// at startup (nil or invalid blobs start fresh); Save is called at
// every batch barrier and on cancellation with a sealed ERUCASN1 blob.
type Checkpoint struct {
	Load func() []byte
	Save func(blob []byte)
}

// Options configures a Run.
type Options struct {
	// Eval scores points (required).
	Eval Evaluator
	// Parallel bounds concurrent evaluations (0 = GOMAXPROCS). The
	// result is byte-identical at every setting.
	Parallel int
	// Log receives progress lines (nil = silent).
	Log func(string)
	// OnProgress receives live progress (nil = none).
	OnProgress func(Progress)
	// Checkpoint, when non-nil, makes the search crash-safe.
	Checkpoint *Checkpoint
}

// engine is one search execution. The strategy is a deterministic
// replay: all decisions (grid subsampling, promotion, neighbor
// selection) are functions of the spec, the seed and the metrics of
// evaluations the replay itself requested — never of wall-clock,
// completion order, or whatever extra entries a restored snapshot
// happens to contain. The snapshot is purely an evaluation cache: it
// lets the replay skip simulations, not skip decisions.
type engine struct {
	spec Spec
	sp   *Space
	hash string
	opts Options

	// cache is the crash-safe evaluation cache: restored from the
	// checkpoint, grown by fresh evaluations, snapshotted at barriers.
	// requested is the replay's own log — the subset of cache this
	// run's strategy has actually asked for, keyed by evalKey.
	mu        sync.Mutex
	cache     map[string]evalRecord
	requested map[string]evalRecord
	points    map[string]Point // canonical key -> representative point
	fresh     int64
	hits      int64

	frontier Frontier
	stage    string
}

// Run executes a search to completion. The returned Result is a pure
// function of (spec, seed): byte-identical across runs, parallelism
// levels, and kill/resume cycles.
func Run(ctx context.Context, spec Spec, opts Options) (*Result, error) {
	sp, err := spec.Validate()
	if err != nil {
		return nil, err
	}
	if opts.Eval == nil {
		return nil, errors.New("search: Options.Eval is required")
	}
	n := spec.Normalize()
	e := &engine{
		spec:      n,
		sp:        sp,
		hash:      n.Hash(),
		opts:      opts,
		cache:     make(map[string]evalRecord),
		requested: make(map[string]evalRecord),
		points:    make(map[string]Point),
	}
	if opts.Checkpoint != nil && opts.Checkpoint.Load != nil {
		if blob := opts.Checkpoint.Load(); blob != nil {
			restored, derr := decodeState(e.hash, blob)
			if derr != nil {
				e.logf("search: ignoring checkpoint: %v", derr)
			} else {
				e.cache = restored
				e.logf("search: restored %d evaluated points from checkpoint", len(restored))
			}
		}
	}
	r, _ := rng.New(n.Seed)

	// Stage 1: coarse grid seeding at the cheapest rung.
	e.setStage("grid")
	grid := e.coarseGrid()
	if len(grid) > n.GridMax {
		r.Shuffle(len(grid), func(i, j int) { grid[i], grid[j] = grid[j], grid[i] })
		grid = grid[:n.GridMax]
		sortKeys(grid)
	}
	e.logf("search: space %d points, grid seeds %d, rungs %d (budget %d..%d)",
		e.sp.Size(), len(grid), n.Rungs, e.rungInstrs(0), n.Instrs)
	if err := e.evalBatch(ctx, grid, e.rungInstrs(0)); err != nil {
		return nil, err
	}

	// Stage 2: successive halving — promote the top SurviveFrac at each
	// rung, re-evaluating survivors at the next (larger) budget.
	pool := grid
	for rung := 1; rung < n.Rungs; rung++ {
		e.setStage(fmt.Sprintf("halving rung %d/%d", rung, n.Rungs-1))
		pool = e.promote(pool, e.rungInstrs(rung-1))
		if err := e.evalBatch(ctx, pool, e.rungInstrs(rung)); err != nil {
			return nil, err
		}
	}

	// Every full-budget evaluation so far feeds the frontier.
	e.absorbFrontier()

	// Stage 3: neighborhood refinement — hill-climb around the frontier
	// one ladder rung at a time, at full budget, until a round adds
	// nothing or the round budget runs out.
	for round := 1; round <= n.RefineRounds; round++ {
		e.setStage(fmt.Sprintf("refine round %d/%d", round, n.RefineRounds))
		cand := e.neighbors()
		if len(cand) > n.NeighborMax {
			r.Shuffle(len(cand), func(i, j int) { cand[i], cand[j] = cand[j], cand[i] })
			cand = cand[:n.NeighborMax]
			sortKeys(cand)
		}
		if len(cand) == 0 {
			e.logf("search: refine round %d: no unexplored neighbors", round)
			break
		}
		if err := e.evalBatch(ctx, cand, n.Instrs); err != nil {
			return nil, err
		}
		if !e.absorbFrontier() {
			e.logf("search: refine round %d: frontier stable, stopping", round)
			break
		}
	}

	e.setStage("done")
	return e.result(), nil
}

func (e *engine) logf(format string, args ...any) {
	if e.opts.Log != nil {
		e.opts.Log(fmt.Sprintf(format, args...))
	}
}

func (e *engine) setStage(s string) {
	e.stage = s
	e.progress()
}

func (e *engine) progress() {
	if e.opts.OnProgress == nil {
		return
	}
	e.mu.Lock()
	p := Progress{
		Stage:        e.stage,
		Evaluated:    len(e.requested),
		Fresh:        e.fresh,
		CacheHits:    e.hits,
		FrontierSize: e.frontier.Len(),
		Frontier:     e.frontier.Points(),
	}
	e.mu.Unlock()
	e.opts.OnProgress(p)
}

// rungInstrs is the instruction budget of rung r: the full budget
// divided by RungScale per remaining rung, floored at 1000 so tiny
// budgets stay meaningful.
func (e *engine) rungInstrs(r int) int64 {
	in := e.spec.Instrs
	for i := r; i < e.spec.Rungs-1; i++ {
		in /= e.spec.RungScale
	}
	if in < 1000 {
		in = 1000
	}
	return in
}

// repPoint canonicalizes a point's representative: masked dimensions
// (ewlr_bits under ewlr=off) are forced to their lowest searched value
// so key -> point is a bijection and neighbor generation is a function
// of the key alone.
func (e *engine) repPoint(p Point) Point {
	out := make(Point, len(p))
	copy(out, p)
	a := e.sp.assignment(out)
	masked := Canonicalize(a)
	for i, d := range e.sp.Dims {
		if masked[d.Name] == "-" {
			out[i] = 0
		}
	}
	return out
}

// record registers a point's representative under its canonical key
// and returns the key.
func (e *engine) record(p Point) string {
	rp := e.repPoint(p)
	key := e.sp.KeyFor(rp)
	e.mu.Lock()
	if _, ok := e.points[key]; !ok {
		e.points[key] = rp
	}
	e.mu.Unlock()
	return key
}

// coarseGrid builds the seeding grid: the cartesian product of up to
// gridValuesPerDim values per dimension (first, middle, last of the
// searched ladder), deduplicated by canonical key and sorted.
func (e *engine) coarseGrid() []string {
	picks := make([][]int, len(e.sp.Dims))
	for i, d := range e.sp.Dims {
		n := len(d.Values)
		set := []int{0}
		if n > 2 {
			set = append(set, n/2)
		}
		if n > 1 {
			set = append(set, n-1)
		}
		picks[i] = set
	}
	seen := make(map[string]bool)
	var keys []string
	p := make(Point, len(e.sp.Dims))
	var walk func(int)
	walk = func(dim int) {
		if dim == len(picks) {
			key := e.record(p)
			if !seen[key] {
				seen[key] = true
				keys = append(keys, key)
			}
			return
		}
		for _, v := range picks[dim] {
			p[dim] = v
			walk(dim + 1)
		}
	}
	walk(0)
	sort.Strings(keys)
	return keys
}

// neighbors returns the canonical keys one ladder step away from any
// current frontier member, excluding points this replay has already
// evaluated at full budget, sorted.
func (e *engine) neighbors() []string {
	seen := make(map[string]bool)
	var keys []string
	for _, member := range e.frontier.Members() {
		e.mu.Lock()
		base, ok := e.points[member]
		e.mu.Unlock()
		if !ok {
			continue
		}
		for i := range e.sp.Dims {
			for _, d := range []int{-1, 1} {
				v := base[i] + d
				if v < 0 || v >= len(e.sp.Dims[i].Values) {
					continue
				}
				np := make(Point, len(base))
				copy(np, base)
				np[i] = v
				key := e.record(np)
				if seen[key] {
					continue
				}
				seen[key] = true
				e.mu.Lock()
				_, done := e.requested[evalKey(key, e.spec.Instrs)]
				e.mu.Unlock()
				if !done {
					keys = append(keys, key)
				}
			}
		}
	}
	sort.Strings(keys)
	return keys
}

// promote ranks the pool by its metrics at the given budget (IPC
// descending, energy ascending, key ascending; failures last) and
// keeps the top SurviveFrac (at least one).
func (e *engine) promote(pool []string, instrs int64) []string {
	type scored struct {
		key string
		rec evalRecord
	}
	var ok, failed []scored
	e.mu.Lock()
	for _, k := range pool {
		rec := e.requested[evalKey(k, instrs)]
		if rec.fail != "" {
			failed = append(failed, scored{k, rec})
		} else {
			ok = append(ok, scored{k, rec})
		}
	}
	e.mu.Unlock()
	sort.Slice(ok, func(i, j int) bool {
		a, b := ok[i], ok[j]
		if a.rec.m.IPC != b.rec.m.IPC {
			return a.rec.m.IPC > b.rec.m.IPC
		}
		if a.rec.m.EnergyNJ != b.rec.m.EnergyNJ {
			return a.rec.m.EnergyNJ < b.rec.m.EnergyNJ
		}
		return a.key < b.key
	})
	keep := int(float64(len(pool))*e.spec.SurviveFrac + 0.999999)
	if keep < 1 {
		keep = 1
	}
	if keep > len(ok) {
		keep = len(ok)
	}
	if keep == 0 {
		// Every candidate failed: keep the deterministically-first
		// failure so later stages still have a pool (and fail visibly).
		sort.Slice(failed, func(i, j int) bool { return failed[i].key < failed[j].key })
		if len(failed) > 1 {
			failed = failed[:1]
		}
		out := make([]string, len(failed))
		for i, s := range failed {
			out[i] = s.key
		}
		return out
	}
	out := make([]string, keep)
	for i := 0; i < keep; i++ {
		out[i] = ok[i].key
	}
	sort.Strings(out)
	return out
}

// evalBatch evaluates the given canonical keys at one budget, in
// parallel, with a barrier at the end: no strategy decision sees a
// partially evaluated batch. Deterministic evaluation failures are
// recorded and replayed; cancellation is not (a canceled run
// checkpoints and returns, and the resume re-evaluates).
func (e *engine) evalBatch(ctx context.Context, keys []string, instrs int64) error {
	var todo []string
	e.mu.Lock()
	for _, k := range keys {
		ek := evalKey(k, instrs)
		if _, ok := e.requested[ek]; ok {
			continue // same batch listed a colliding point, or a prior stage did
		}
		if rec, ok := e.cache[ek]; ok {
			e.requested[ek] = rec
			e.hits++
			continue
		}
		todo = append(todo, k)
	}
	e.mu.Unlock()

	par := e.opts.Parallel
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for _, k := range todo {
		wg.Add(1)
		go func(key string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if ctx.Err() != nil {
				return
			}
			e.mu.Lock()
			p := e.points[key]
			e.mu.Unlock()
			a := Canonicalize(e.sp.assignment(p))
			m, err := e.opts.Eval.Eval(ctx, key, a, instrs)
			rec := evalRecord{m: m}
			if err != nil {
				if canceled(ctx, err) {
					return // not a deterministic outcome: do not record
				}
				rec = evalRecord{fail: err.Error()}
			}
			e.mu.Lock()
			e.cache[evalKey(key, instrs)] = rec
			e.requested[evalKey(key, instrs)] = rec
			e.fresh++
			e.mu.Unlock()
		}(k)
	}
	wg.Wait()
	e.save()
	if err := ctx.Err(); err != nil {
		return err
	}
	e.progress()
	return nil
}

func canceled(ctx context.Context, err error) bool {
	return ctx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// save seals the evaluation cache through the checkpoint sink.
func (e *engine) save() {
	if e.opts.Checkpoint == nil || e.opts.Checkpoint.Save == nil {
		return
	}
	e.mu.Lock()
	blob := encodeState(e.hash, e.cache)
	e.mu.Unlock()
	e.opts.Checkpoint.Save(blob)
}

// absorbFrontier offers every full-budget evaluation the replay has
// requested to the frontier, in sorted key order, and reports whether
// the frontier changed. Failed evaluations never enter the frontier.
func (e *engine) absorbFrontier() bool {
	e.mu.Lock()
	type cand struct {
		key string
		rec evalRecord
	}
	var cands []cand
	suffix := fmt.Sprintf("@%d", e.spec.Instrs)
	for ek, rec := range e.requested {
		if rec.fail != "" {
			continue
		}
		if len(ek) > len(suffix) && ek[len(ek)-len(suffix):] == suffix {
			cands = append(cands, cand{ek[:len(ek)-len(suffix)], rec})
		}
	}
	e.mu.Unlock()
	sort.Slice(cands, func(i, j int) bool { return cands[i].key < cands[j].key })
	changed := false
	for _, c := range cands {
		if e.frontier.Add(FrontierPoint{Point: c.key, IPC: c.rec.m.IPC, EnergyNJ: c.rec.m.EnergyNJ, AreaPct: c.rec.m.AreaPct}) {
			changed = true
		}
	}
	if changed {
		e.progress()
	}
	return changed
}

func sortKeys(keys []string) { sort.Strings(keys) }

func (e *engine) result() *Result {
	e.mu.Lock()
	evaluated := len(e.requested)
	var failures int
	for _, rec := range e.requested {
		if rec.fail != "" {
			failures++
		}
	}
	e.mu.Unlock()
	return &Result{
		SpecHash:        e.hash,
		Seed:            e.spec.Seed,
		Space:           e.sp.Dims,
		Mix:             e.spec.Mix,
		Frag:            e.spec.Frag,
		Instrs:          e.spec.Instrs,
		PointsEvaluated: evaluated,
		Failures:        failures,
		Frontier:        e.frontier.Points(),
	}
}

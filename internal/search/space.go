// Package search is the design-space autotuner of ROADMAP item 5: it
// explores the ERUCA configuration space (planes per bank, EWLR offset
// width, RAP, DDB, queue depth, page policy) automatically instead of
// by hand-picked sweeps, tracking a Pareto frontier over performance
// (IPC), energy (internal/energy) and die area (internal/area).
//
// The engine is strictly deterministic: every random choice draws from
// an internal/rng counting source keyed by an explicit seed (unseeded
// specs are rejected with ErrUnseeded), parallel evaluation batches are
// separated by barriers so strategy decisions never depend on
// completion order, and frontier ties break on the canonical point key.
// The same spec + seed therefore yields a byte-identical frontier at
// any parallelism, and — because the strategy replays deterministically
// over a snapshot of already-evaluated points — after a kill/resume.
package search

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"eruca/internal/config"
)

// A dimension is ordinal: its values form a ladder (ordered list), and
// the neighborhood-refinement stage moves one rung up or down. User
// specs may restrict a dimension to a subset of its ladder; order and
// identity always come from the ladder, never from the spec.
type dimDef struct {
	name   string
	ladder []string
}

// dimDefs is the canonical dimension order. Point keys, snapshots and
// frontier output all use this order, so it must never be reordered
// (appending new dimensions is fine: absent dimensions pin their
// default value and do not appear in keys).
var dimDefs = []dimDef{
	{"planes", []string{"1", "2", "4", "8", "16"}},
	{"ewlr", []string{"off", "on"}},
	{"ewlr_bits", []string{"1", "2", "3", "4", "5", "6"}},
	{"rap", []string{"off", "on"}},
	{"ddb", []string{"off", "on"}},
	{"queue_depth", []string{"16", "32", "64", "128"}},
	{"page_policy", []string{"open", "adaptive", "closed"}},
}

// defaults pins the value of every dimension a spec leaves out: the
// paper's headline ERUCA configuration (VSB-4 EWLR(3b)+RAP+DDB with
// the Tab. III controller).
var defaults = map[string]string{
	"planes":      "4",
	"ewlr":        "on",
	"ewlr_bits":   "3",
	"rap":         "on",
	"ddb":         "on",
	"queue_depth": "64",
	"page_policy": "adaptive",
}

func dimByName(name string) (dimDef, bool) {
	for _, d := range dimDefs {
		if d.name == name {
			return d, true
		}
	}
	return dimDef{}, false
}

// Dim is one searched dimension: a name and the (ordered, validated)
// values the search may assign to it.
type Dim struct {
	Name   string   `json:"name"`
	Values []string `json:"values"`
}

// Space is a compiled search space: the searched dimensions in
// canonical order. Points are index vectors into the dimension values.
type Space struct {
	Dims []Dim
}

// compileSpace validates and orders the requested dimensions. Values
// must come from the dimension's ladder; they are deduplicated and
// re-sorted into ladder order so that a spec listing "4,1,2" and one
// listing "1,2,4" compile to the same space.
func compileSpace(dims []DimSpec) (*Space, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("search: empty space: at least one dimension required")
	}
	byName := make(map[string][]string, len(dims))
	for _, ds := range dims {
		def, ok := dimByName(ds.Name)
		if !ok {
			known := make([]string, len(dimDefs))
			for i, d := range dimDefs {
				known[i] = d.name
			}
			return nil, fmt.Errorf("search: unknown dimension %q (known: %s)", ds.Name, strings.Join(known, ", "))
		}
		if _, dup := byName[ds.Name]; dup {
			return nil, fmt.Errorf("search: dimension %q listed twice", ds.Name)
		}
		vals := ds.Values
		if len(vals) == 0 {
			vals = def.ladder
		}
		idx := make(map[string]int, len(def.ladder))
		for i, v := range def.ladder {
			idx[v] = i
		}
		seen := make(map[string]bool, len(vals))
		var ordered []int
		for _, v := range vals {
			i, ok := idx[v]
			if !ok {
				return nil, fmt.Errorf("search: dimension %q: value %q not in ladder %v", ds.Name, v, def.ladder)
			}
			if !seen[v] {
				seen[v] = true
				ordered = append(ordered, i)
			}
		}
		sort.Ints(ordered)
		out := make([]string, len(ordered))
		for i, j := range ordered {
			out[i] = def.ladder[j]
		}
		byName[ds.Name] = out
	}
	sp := &Space{}
	for _, def := range dimDefs {
		if vals, ok := byName[def.name]; ok {
			sp.Dims = append(sp.Dims, Dim{Name: def.name, Values: vals})
		}
	}
	return sp, nil
}

// Size reports the number of points in the full cartesian space.
func (sp *Space) Size() int {
	n := 1
	for _, d := range sp.Dims {
		n *= len(d.Values)
	}
	return n
}

// Point is one candidate configuration: a value index per dimension, in
// the space's canonical dimension order.
type Point []int

// assignment materializes a point as dimension-name -> value, filling
// unsearched dimensions with their defaults.
func (sp *Space) assignment(p Point) map[string]string {
	a := make(map[string]string, len(dimDefs))
	for k, v := range defaults {
		a[k] = v
	}
	for i, d := range sp.Dims {
		a[d.Name] = d.Values[p[i]]
	}
	return a
}

// Canonicalize masks the dimensions a configuration does not actually
// use, so points that differ only in irrelevant values collapse to one
// simulation: with ewlr=off the EWLR offset width has no effect, so
// ewlr_bits is forced to "-". The masked assignment is the simulation
// identity — the cache key, the snapshot key and the frontier label.
func Canonicalize(a map[string]string) map[string]string {
	out := make(map[string]string, len(a))
	for k, v := range a {
		out[k] = v
	}
	if out["ewlr"] == "off" {
		out["ewlr_bits"] = "-"
	}
	return out
}

// Key renders a canonical assignment as the deterministic point key:
// name=value pairs in canonical dimension order, space-separated.
func Key(a map[string]string) string {
	var b strings.Builder
	for _, def := range dimDefs {
		v, ok := a[def.name]
		if !ok {
			v = defaults[def.name]
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(def.name)
		b.WriteByte('=')
		b.WriteString(v)
	}
	return b.String()
}

// KeyFor is Canonicalize followed by Key.
func (sp *Space) KeyFor(p Point) string {
	return Key(Canonicalize(sp.assignment(p)))
}

// ParseAssignment validates a wire-format assignment (as carried by an
// "eval" job spec): every key must be a known dimension and every value
// must be on its ladder or the mask "-". Missing dimensions take their
// defaults. The result is re-canonicalized, so a hand-built assignment
// cannot smuggle in a non-canonical identity.
func ParseAssignment(m map[string]string) (map[string]string, error) {
	a := make(map[string]string, len(dimDefs))
	for k, v := range defaults {
		a[k] = v
	}
	for k, v := range m {
		def, ok := dimByName(k)
		if !ok {
			return nil, fmt.Errorf("search: unknown dimension %q in assignment", k)
		}
		if v == "-" {
			continue // masked: keep the default; Canonicalize re-masks
		}
		found := false
		for _, lv := range def.ladder {
			if lv == v {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("search: dimension %q: value %q not in ladder %v", k, v, def.ladder)
		}
		a[k] = v
	}
	return Canonicalize(a), nil
}

// SystemFor builds the config.System a canonical assignment describes.
// The system name is the point key, which keeps exp.Runner cache keys
// distinct per point (and identical for identical points). planes=1
// still builds a VSB system — one plane per bank, the worst case for
// latch conflicts — matching the Fig. 13 sweep's leftmost bar.
func SystemFor(a map[string]string, busMHz float64) (*config.System, error) {
	if busMHz == 0 {
		busMHz = config.DefaultBusMHz
	}
	planes, err := strconv.Atoi(a["planes"])
	if err != nil {
		return nil, fmt.Errorf("search: bad planes %q: %v", a["planes"], err)
	}
	ewlr := a["ewlr"] == "on"
	rap := a["rap"] == "on"
	ddb := a["ddb"] == "on"
	bits := 3
	if ewlr {
		if bits, err = strconv.Atoi(a["ewlr_bits"]); err != nil {
			return nil, fmt.Errorf("search: bad ewlr_bits %q: %v", a["ewlr_bits"], err)
		}
	}
	// Fig. 9 address-mapping rule (mirrors the VSB preset): RAP wants
	// the plane ID in the row MSBs it permutes; EWLR alone draws it
	// from the LSBs above the offset; naive VSB uses the MSBs.
	pb := config.PlaneBitsHigh
	if ewlr && !rap {
		pb = config.PlaneBitsLow
	}
	key := Key(a)
	sch := config.Scheme{
		Name:         key,
		Mode:         config.SubBankVSB,
		Planes:       planes,
		PlaneBits:    pb,
		EWLR:         ewlr,
		EWLRBits:     bits,
		RAP:          rap,
		DDB:          ddb,
		BankGrouping: true,
	}

	ctrl := config.DefaultController()
	qd, err := strconv.Atoi(a["queue_depth"])
	if err != nil {
		return nil, fmt.Errorf("search: bad queue_depth %q: %v", a["queue_depth"], err)
	}
	ctrl.ReadQueueDepth = qd
	ctrl.WriteQueueDepth = qd
	// Scale the drain watermarks and scan limit with the queue so the
	// write-drain hysteresis keeps its default 5/8 - 1/4 shape.
	ctrl.WriteDrainHi = qd * 5 / 8
	ctrl.WriteDrainLo = qd / 4
	ctrl.ScanLimit = qd / 2
	switch a["page_policy"] {
	case "open":
		ctrl.ClosePageIdleCK = 0 // never close on idle
	case "adaptive":
		// keep the Tab. III default (1200 CK)
	case "closed":
		ctrl.ClosePageIdleCK = 64 // aggressive close
	default:
		return nil, fmt.Errorf("search: bad page_policy %q", a["page_policy"])
	}

	return config.NewSystem(key, config.DefaultGeometry(), sch, config.DDR4Timing(), busMHz, ctrl, config.DefaultCPU())
}

package search

import (
	"bytes"
	"context"
	"testing"

	"eruca/internal/exp"
	"eruca/internal/workload"
)

// TestRunnerEvalNoResimulation drives a real search through exp.Runner
// twice on the same evaluator: the second pass revisits every point
// and must perform zero additional simulations (the Runner's launched
// counter stays flat while joined grows), with byte-identical output.
func TestRunnerEvalNoResimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulations")
	}
	mix, err := workload.MixByName("mix0")
	if err != nil {
		t.Fatal(err)
	}
	ev := NewRunnerEval(exp.Params{Seed: 42}, mix, 0, 0)
	spec := Spec{
		Dims: []DimSpec{
			{Name: "planes", Values: []string{"1", "2"}},
			{Name: "ddb"},
		},
		Seed:   11,
		Instrs: 4000,
		Rungs:  2,
	}
	r1, err := Run(context.Background(), spec, Options{Eval: ev, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Frontier) == 0 {
		t.Fatal("empty frontier")
	}
	launched1, _ := ev.Counters()
	if launched1 == 0 {
		t.Fatal("no simulations launched")
	}

	r2, err := Run(context.Background(), spec, Options{Eval: ev, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	launched2, joined2 := ev.Counters()
	if launched2 != launched1 {
		t.Fatalf("revisited search re-simulated: launched %d -> %d", launched1, launched2)
	}
	if joined2 == 0 {
		t.Fatal("revisited search joined no cached flights")
	}
	if !bytes.Equal(r1.JSON(), r2.JSON()) {
		t.Fatalf("revisited search diverged:\n%s\nvs\n%s", r1.JSON(), r2.JSON())
	}

	// Real metrics must be sane: positive IPC and energy, area within
	// the die model's plausible band.
	for _, p := range r1.Frontier {
		if p.IPC <= 0 || p.EnergyNJ <= 0 {
			t.Fatalf("implausible metrics for %s: %+v", p.Point, p)
		}
		if p.AreaPct < 0 || p.AreaPct > 20 {
			t.Fatalf("implausible area for %s: %+v", p.Point, p)
		}
	}
}

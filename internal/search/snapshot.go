package search

import (
	"fmt"
	"sort"

	"eruca/internal/snapshot"
)

// A search checkpoint is only the evaluated-point map. Everything else
// — RNG position, strategy stage, survivor lists, frontier — is
// reconstructed by replaying the deterministic strategy from scratch
// over this map: points already present are served without
// simulation, so a killed search resumes from where it died without
// rerunning completed work, and produces the byte-identical result an
// uninterrupted run would have.
//
// evalRecord captures one completed evaluation (or its deterministic
// failure: a simulator error must replay as the same error, not a
// retry, or resumed runs would diverge from uninterrupted ones).
type evalRecord struct {
	m    Metrics
	fail string // non-empty: evaluation failed with this message
}

// evalKey identifies one (point, budget) evaluation.
func evalKey(pointKey string, instrs int64) string {
	return fmt.Sprintf("%s@%d", pointKey, instrs)
}

// encodeState seals the evaluated map into an ERUCASN1 blob guarded by
// the spec hash: a blob from a different spec is rejected on restore.
// Entries are written in sorted key order, so the blob for a given
// evaluated set is byte-identical regardless of evaluation order.
func encodeState(specHash string, evaluated map[string]evalRecord) []byte {
	var e snapshot.Encoder
	e.Str("search-state")
	e.Str(specHash)
	keys := make([]string, 0, len(evaluated))
	for k := range evaluated {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.Int(len(keys))
	for _, k := range keys {
		rec := evaluated[k]
		e.Str(k)
		e.Str(rec.fail)
		e.F64(rec.m.IPC)
		e.F64(rec.m.EnergyNJ)
		e.F64(rec.m.AreaPct)
	}
	return e.Seal()
}

// decodeState restores an evaluated map from a sealed blob. It returns
// a typed error for corruption or for a spec-hash mismatch; callers
// treat any error as "start fresh" (reject-don't-migrate, like every
// other snapshot consumer).
func decodeState(specHash string, blob []byte) (map[string]evalRecord, error) {
	d, err := snapshot.Open(blob)
	if err != nil {
		return nil, err
	}
	if tag := d.Str(); tag != "search-state" {
		return nil, fmt.Errorf("search: snapshot tag %q, want search-state", tag)
	}
	if h := d.Str(); h != specHash {
		return nil, fmt.Errorf("search: snapshot is for spec %.12s, want %.12s", h, specHash)
	}
	n := d.Count(4 + 4 + 3*8) // minimum bytes per entry
	out := make(map[string]evalRecord, n)
	for i := 0; i < n; i++ {
		k := d.Str()
		rec := evalRecord{fail: d.Str()}
		rec.m.IPC = d.F64()
		rec.m.EnergyNJ = d.F64()
		rec.m.AreaPct = d.F64()
		out[k] = rec
	}
	if err := d.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

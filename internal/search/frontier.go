package search

import "sort"

// Metrics is one evaluation's objective vector. IPC is maximized;
// energy and area are minimized. Area is a pure function of the scheme
// (internal/area), computed without simulation; IPC and energy come
// from the simulator.
type Metrics struct {
	IPC      float64 `json:"ipc"`
	EnergyNJ float64 `json:"energy_nj"`
	AreaPct  float64 `json:"area_pct"`
}

// FrontierPoint is one non-dominated configuration.
type FrontierPoint struct {
	Point    string  `json:"point"` // canonical assignment key
	IPC      float64 `json:"ipc"`
	EnergyNJ float64 `json:"energy_nj"`
	AreaPct  float64 `json:"area_pct"`
}

// dominates reports whether a dominates b: no worse on every objective
// and strictly better on at least one.
func dominates(a, b FrontierPoint) bool {
	if a.IPC < b.IPC || a.EnergyNJ > b.EnergyNJ || a.AreaPct > b.AreaPct {
		return false
	}
	return a.IPC > b.IPC || a.EnergyNJ < b.EnergyNJ || a.AreaPct < b.AreaPct
}

// Frontier tracks the non-dominated set. Ties are deterministic: a
// point with an objective vector identical to a member's is kept only
// if its canonical key sorts earlier, so the frontier is a pure
// function of the evaluated set regardless of insertion order.
type Frontier struct {
	pts []FrontierPoint // sorted by Point key
}

// Add offers a point; it reports whether the frontier changed.
func (f *Frontier) Add(p FrontierPoint) bool {
	for _, q := range f.pts {
		if q.Point == p.Point {
			return false // already a member (re-evaluation at same budget)
		}
		if dominates(q, p) {
			return false
		}
		if q.IPC == p.IPC && q.EnergyNJ == p.EnergyNJ && q.AreaPct == p.AreaPct && q.Point < p.Point {
			return false // exact tie: earlier key wins
		}
	}
	kept := f.pts[:0]
	for _, q := range f.pts {
		if dominates(p, q) {
			continue
		}
		if q.IPC == p.IPC && q.EnergyNJ == p.EnergyNJ && q.AreaPct == p.AreaPct && p.Point < q.Point {
			continue // exact tie: p's earlier key evicts q
		}
		kept = append(kept, q)
	}
	f.pts = append(kept, p)
	sort.Slice(f.pts, func(i, j int) bool { return f.pts[i].Point < f.pts[j].Point })
	return true
}

// Len reports the frontier size.
func (f *Frontier) Len() int { return len(f.pts) }

// Points returns the frontier sorted for presentation: IPC descending,
// then energy ascending, then key — a deterministic, human-meaningful
// order (fastest first).
func (f *Frontier) Points() []FrontierPoint {
	out := make([]FrontierPoint, len(f.pts))
	copy(out, f.pts)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.IPC != b.IPC {
			return a.IPC > b.IPC
		}
		if a.EnergyNJ != b.EnergyNJ {
			return a.EnergyNJ < b.EnergyNJ
		}
		return a.Point < b.Point
	})
	return out
}

// Members reports the canonical keys of the current frontier, sorted.
func (f *Frontier) Members() []string {
	out := make([]string, len(f.pts))
	for i, p := range f.pts {
		out[i] = p.Point
	}
	return out
}

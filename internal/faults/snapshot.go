package faults

import (
	"fmt"

	"eruca/internal/snapshot"
)

// Snapshot serializes the plan's cursor — which events have been
// applied and how many landed. The schedule itself is reproduced from
// the plan spec (seed + events) at restore time, so only the cursor
// travels in the checkpoint.
func (p *Plan) Snapshot(e *snapshot.Encoder) {
	if p == nil {
		e.Bool(false)
		return
	}
	e.Bool(true)
	e.Int(len(p.events))
	e.Int(p.applied)
	e.Int(p.hits)
}

// Restore rewinds the plan cursor from a Snapshot stream. The plan must
// carry the same event schedule as the one snapshotted.
func (p *Plan) Restore(d *snapshot.Decoder) error {
	present := d.Bool()
	if err := d.Err(); err != nil {
		return err
	}
	if !present {
		if p != nil {
			return fmt.Errorf("faults: snapshot has no plan but restore target does")
		}
		return nil
	}
	if p == nil {
		return fmt.Errorf("faults: snapshot has a plan but restore target is nil")
	}
	n := d.Int()
	applied := d.Int()
	hits := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if n != len(p.events) {
		return fmt.Errorf("faults: snapshot plan has %d events, target has %d", n, len(p.events))
	}
	if applied < 0 || applied > len(p.events) || hits < 0 || hits > applied {
		return fmt.Errorf("faults: snapshot cursor out of range (applied=%d hits=%d of %d)", applied, hits, n)
	}
	p.applied = applied
	p.hits = hits
	return nil
}

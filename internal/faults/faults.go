// Package faults is the deterministic fault-injection harness for
// chaos-testing the simulator's protocol checker and watchdogs. A Plan
// is a seed-derived, pre-sorted schedule of fault events; the run loop
// calls Apply once per bus cycle (cheap: one comparison when no event
// is due) and NextAt when fast-forwarding so injected faults land on
// their exact cycle even across skipped quiescent windows.
//
// The package deliberately knows nothing about the simulator's
// concrete types: injection goes through the Target interface, which
// internal/sim implements over its channels and controllers. This
// keeps the dependency arrow pointing the right way (sim -> faults)
// and lets tests drive plans against a mock target.
package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"eruca/internal/clock"
)

// farFuture mirrors the simulator's "no event" sentinel.
const farFuture = clock.Cycle(1) << 60

// Kind enumerates the injectable fault classes.
type Kind int

const (
	// RefreshDelay postpones a rank's next refresh far beyond tREFI —
	// the "lost refresh" fault; caught by the checker's tREFI
	// accounting.
	RefreshDelay Kind = iota
	// ForcePrecharge silently closes an open row behind the
	// controller's back; the controller's next reuse of the slot
	// surfaces as an ACT-on-open or row-state divergence in the audit.
	ForcePrecharge
	// TimingReset wipes the channel's spacing state so commands issue
	// back-to-back; caught as tCCD/tRRD/tFAW/bus-overlap violations.
	TimingReset
	// RowCorruption flips a row-address bit in open plane latches;
	// caught as plane-invariant or row-mismatch violations.
	RowCorruption
	// Blackout wedges a controller's scheduler (refresh keeps running)
	// for Arg cycles, or forever when Arg is 0 — the seeded livelock
	// the forward-progress watchdog must detect.
	Blackout
	numKinds
)

// String implements fmt.Stringer with the names Parse accepts.
func (k Kind) String() string {
	switch k {
	case RefreshDelay:
		return "refresh"
	case ForcePrecharge:
		return "forcepre"
	case TimingReset:
		return "timing"
	case RowCorruption:
		return "row"
	case Blackout:
		return "blackout"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

func parseKind(s string) (Kind, error) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("faults: unknown kind %q (want refresh, forcepre, timing, row or blackout)", s)
}

// Event is one scheduled fault.
type Event struct {
	Kind  Kind
	AtBus clock.Cycle
	// Channel and Rank are raw non-negative selectors; the Target maps
	// them into range (mod its channel/rank counts).
	Channel int
	Rank    int
	// Arg is kind-specific: refresh-delay delta, or blackout duration
	// (0 = permanent).
	Arg clock.Cycle
}

// Target is the injection surface the simulator exposes to a Plan.
type Target interface {
	// Channels reports how many channels the target drives (>= 1).
	Channels() int
	// DelayRefresh postpones rank's next refresh on channel ch.
	DelayRefresh(ch, rank int, delta clock.Cycle) bool
	// ForcePrecharge silently closes one open row on channel ch.
	ForcePrecharge(ch int) bool
	// CorruptTiming wipes channel ch's command-spacing state.
	CorruptTiming(ch int) bool
	// CorruptRow flips a row bit in channel ch's open rows.
	CorruptRow(ch int) bool
	// Blackout wedges channel ch's scheduler until the given cycle.
	Blackout(ch int, until clock.Cycle)
	// SetDropRate installs the probabilistic scheduling-drop stream on
	// every channel.
	SetDropRate(rate float64, seed int64)
}

// Plan is a deterministic, pre-sorted fault schedule plus an optional
// continuous drop-rate perturbation.
type Plan struct {
	// Seed reproduces the plan (and seeds the drop stream).
	Seed int64
	// DropRate, when positive, makes controllers skip scheduling
	// opportunities with this probability.
	DropRate float64

	events  []Event
	applied int
	hits    int
}

// NewPlan derives a schedule of n events of the given kinds, spread
// deterministically over (horizon/8, horizon). A nil/empty kinds slice
// draws from every kind.
func NewPlan(seed int64, n int, kinds []Kind, horizon clock.Cycle) *Plan {
	if horizon < 16 {
		horizon = 16
	}
	if len(kinds) == 0 {
		for k := Kind(0); k < numKinds; k++ {
			kinds = append(kinds, k)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	p := &Plan{Seed: seed}
	lo := horizon / 8
	span := horizon - lo
	if span < 1 {
		span = 1
	}
	for i := 0; i < n; i++ {
		k := kinds[rng.Intn(len(kinds))]
		ev := Event{
			Kind:    k,
			AtBus:   lo + clock.Cycle(rng.Int63n(int64(span))),
			Channel: rng.Intn(1 << 16),
			Rank:    rng.Intn(1 << 16),
		}
		switch k {
		case RefreshDelay:
			// Far beyond any tREFI so detection is guaranteed.
			ev.Arg = clock.Cycle(1 << 20)
		case Blackout:
			ev.Arg = clock.Cycle(1<<14 + rng.Int63n(1<<14))
		}
		p.events = append(p.events, ev)
	}
	p.sortEvents()
	return p
}

// NewPlanEvents builds a plan from explicit events (tests and the
// chaos harness use this for precise placement).
func NewPlanEvents(seed int64, events ...Event) *Plan {
	p := &Plan{Seed: seed, events: append([]Event(nil), events...)}
	p.sortEvents()
	return p
}

func (p *Plan) sortEvents() {
	sort.SliceStable(p.events, func(i, j int) bool { return p.events[i].AtBus < p.events[j].AtBus })
}

// Parse builds a Plan from a flag spec: semicolon-separated key=value
// pairs. Keys: seed, n, horizon, kinds (plus-joined kind names), drop.
//
//	seed=7;n=6;horizon=100000;kinds=refresh+forcepre+timing;drop=0.25
//
// An empty spec yields a nil plan (no faults).
func Parse(spec string) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var (
		seed    int64 = 1
		n             = 4
		horizon       = clock.Cycle(200_000)
		kinds   []Kind
		drop    float64
	)
	for _, field := range strings.Split(spec, ";") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("faults: bad field %q (want key=value)", field)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch key {
		case "seed":
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad seed %q: %v", val, err)
			}
			seed = v
		case "n":
			v, err := strconv.Atoi(val)
			if err != nil || v < 0 || v > 1<<16 {
				return nil, fmt.Errorf("faults: bad n %q", val)
			}
			n = v
		case "horizon":
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil || v < 0 {
				return nil, fmt.Errorf("faults: bad horizon %q", val)
			}
			horizon = clock.Cycle(v)
		case "kinds":
			for _, ks := range strings.Split(val, "+") {
				k, err := parseKind(strings.TrimSpace(ks))
				if err != nil {
					return nil, err
				}
				kinds = append(kinds, k)
			}
		case "drop":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil || v < 0 || v > 1 {
				return nil, fmt.Errorf("faults: bad drop %q (want 0..1)", val)
			}
			drop = v
		default:
			return nil, fmt.Errorf("faults: unknown key %q", key)
		}
	}
	p := NewPlan(seed, n, kinds, horizon)
	p.DropRate = drop
	return p, nil
}

// String renders the plan compactly (for logs and reports).
func (p *Plan) String() string {
	if p == nil {
		return "none"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d drop=%g events=%d", p.Seed, p.DropRate, len(p.events))
	for _, e := range p.events {
		fmt.Fprintf(&b, " [%s@%d ch%d rk%d arg=%d]", e.Kind, e.AtBus, e.Channel, e.Rank, e.Arg)
	}
	return b.String()
}

// Events exposes the schedule (sorted by cycle).
func (p *Plan) Events() []Event {
	if p == nil {
		return nil
	}
	return p.events
}

// Injected reports how many events have been applied successfully.
func (p *Plan) Injected() int {
	if p == nil {
		return 0
	}
	return p.hits
}

// Arm installs the plan's continuous perturbations (the drop stream)
// on the target. Call once before the run loop starts.
func (p *Plan) Arm(tgt Target) {
	if p == nil || p.DropRate <= 0 {
		return
	}
	tgt.SetDropRate(p.DropRate, p.Seed^0x5eed_caf3)
}

// NextAt reports the cycle of the next unapplied event (farFuture when
// exhausted) so fast-forward windows never jump over an injection.
func (p *Plan) NextAt() clock.Cycle {
	if p == nil || p.applied >= len(p.events) {
		return farFuture
	}
	return p.events[p.applied].AtBus
}

// Apply injects every event due at or before now and reports how many
// landed (an event whose precondition fails — e.g. no open row to
// force-precharge — is consumed but not counted).
func (p *Plan) Apply(now clock.Cycle, tgt Target) int {
	if p == nil {
		return 0
	}
	landed := 0
	for p.applied < len(p.events) && p.events[p.applied].AtBus <= now {
		e := p.events[p.applied]
		p.applied++
		ch := 0
		if nch := tgt.Channels(); nch > 0 {
			ch = e.Channel % nch
		}
		ok := false
		switch e.Kind {
		case RefreshDelay:
			ok = tgt.DelayRefresh(ch, e.Rank, e.Arg)
		case ForcePrecharge:
			ok = tgt.ForcePrecharge(ch)
		case TimingReset:
			ok = tgt.CorruptTiming(ch)
		case RowCorruption:
			ok = tgt.CorruptRow(ch)
		case Blackout:
			until := farFuture
			if e.Arg > 0 {
				until = now + e.Arg
			}
			tgt.Blackout(ch, until)
			ok = true
		}
		if ok {
			landed++
			p.hits++
		}
	}
	return landed
}

// Clone returns an unapplied copy of the plan, so one Plan value can
// parameterize many sweep jobs without shared mutable state.
func (p *Plan) Clone() *Plan {
	if p == nil {
		return nil
	}
	return &Plan{
		Seed:     p.Seed,
		DropRate: p.DropRate,
		events:   append([]Event(nil), p.events...),
	}
}

package faults

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"eruca/internal/clock"
)

// mockTarget records every injection call and lets tests control which
// preconditions hold.
type mockTarget struct {
	nch      int
	openRows bool // whether ForcePrecharge/CorruptRow find anything
	calls    []string
	dropRate float64
	dropSeed int64
	blackout map[int]clock.Cycle
}

func newMock(nch int) *mockTarget {
	return &mockTarget{nch: nch, openRows: true, blackout: map[int]clock.Cycle{}}
}

func (m *mockTarget) Channels() int { return m.nch }
func (m *mockTarget) DelayRefresh(ch, rank int, delta clock.Cycle) bool {
	m.calls = append(m.calls, fmt.Sprintf("refresh ch%d rk%d +%d", ch, rank, delta))
	return true
}
func (m *mockTarget) ForcePrecharge(ch int) bool {
	m.calls = append(m.calls, fmt.Sprintf("forcepre ch%d", ch))
	return m.openRows
}
func (m *mockTarget) CorruptTiming(ch int) bool {
	m.calls = append(m.calls, fmt.Sprintf("timing ch%d", ch))
	return true
}
func (m *mockTarget) CorruptRow(ch int) bool {
	m.calls = append(m.calls, fmt.Sprintf("row ch%d", ch))
	return m.openRows
}
func (m *mockTarget) Blackout(ch int, until clock.Cycle) {
	m.calls = append(m.calls, fmt.Sprintf("blackout ch%d", ch))
	m.blackout[ch] = until
}
func (m *mockTarget) SetDropRate(rate float64, seed int64) {
	m.dropRate, m.dropSeed = rate, seed
}

func TestParseEmptyAndNil(t *testing.T) {
	for _, spec := range []string{"", "   "} {
		p, err := Parse(spec)
		if err != nil || p != nil {
			t.Errorf("Parse(%q) = %v, %v; want nil, nil", spec, p, err)
		}
	}
	// Every method must be nil-receiver safe.
	var p *Plan
	if p.String() != "none" {
		t.Errorf("nil String() = %q", p.String())
	}
	if p.Events() != nil || p.Injected() != 0 || p.Clone() != nil {
		t.Error("nil plan accessors should be inert")
	}
	if p.NextAt() != farFuture {
		t.Errorf("nil NextAt() = %d, want farFuture", p.NextAt())
	}
	if got := p.Apply(100, newMock(1)); got != 0 {
		t.Errorf("nil Apply = %d, want 0", got)
	}
	p.Arm(newMock(1)) // must not panic
}

func TestParseFull(t *testing.T) {
	p, err := Parse("seed=7;n=6;horizon=100000;kinds=refresh+forcepre+timing;drop=0.25")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || p.DropRate != 0.25 || len(p.Events()) != 6 {
		t.Fatalf("got seed=%d drop=%v events=%d", p.Seed, p.DropRate, len(p.Events()))
	}
	for _, e := range p.Events() {
		if e.Kind != RefreshDelay && e.Kind != ForcePrecharge && e.Kind != TimingReset {
			t.Errorf("event kind %v not in the requested set", e.Kind)
		}
		if e.AtBus < 100000/8 || e.AtBus >= 100000 {
			t.Errorf("event at %d outside (horizon/8, horizon)", e.AtBus)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"seed",               // missing =
		"seed=x",             // bad int
		"n=-1",               // negative
		"n=999999999",        // over cap
		"horizon=-5",         // negative
		"kinds=nope",         // unknown kind
		"drop=1.5",           // out of range
		"drop=x",             // bad float
		"frobnicate=1",       // unknown key
		"seed=1;kinds=row+z", // partial kinds list with a bad tail
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) should fail", spec)
		}
	}
}

func TestNewPlanDeterministicAndSorted(t *testing.T) {
	a := NewPlan(42, 16, nil, 50_000)
	b := NewPlan(42, 16, nil, 50_000)
	if a.String() != b.String() {
		t.Fatalf("same seed produced different plans:\n%s\n%s", a, b)
	}
	evs := a.Events()
	if !sort.SliceIsSorted(evs, func(i, j int) bool { return evs[i].AtBus < evs[j].AtBus }) {
		t.Error("events not sorted by cycle")
	}
	if c := NewPlan(43, 16, nil, 50_000); c.String() == a.String() {
		t.Error("different seeds produced identical plans")
	}
}

func TestApplyConsumesDueEventsInOrder(t *testing.T) {
	p := NewPlanEvents(1,
		Event{Kind: TimingReset, AtBus: 300, Channel: 5},
		Event{Kind: RefreshDelay, AtBus: 100, Rank: 1, Arg: 500},
		Event{Kind: Blackout, AtBus: 200, Arg: 0},
	)
	m := newMock(2)
	if got := p.NextAt(); got != 100 {
		t.Fatalf("NextAt = %d, want 100 (earliest after sorting)", got)
	}
	if n := p.Apply(50, m); n != 0 || len(m.calls) != 0 {
		t.Fatalf("nothing due at 50, got %d landed, calls %v", n, m.calls)
	}
	if n := p.Apply(250, m); n != 2 {
		t.Fatalf("Apply(250) landed %d, want 2", n)
	}
	want := []string{"refresh ch0 rk1 +500", "blackout ch0"}
	if strings.Join(m.calls, ";") != strings.Join(want, ";") {
		t.Fatalf("calls %v, want %v", m.calls, want)
	}
	// Arg=0 blackout is permanent (farFuture).
	if until := m.blackout[0]; until != farFuture {
		t.Errorf("permanent blackout until %d, want farFuture", until)
	}
	if got := p.NextAt(); got != 300 {
		t.Fatalf("NextAt after partial apply = %d, want 300", got)
	}
	if n := p.Apply(300, m); n != 1 {
		t.Fatalf("Apply(300) landed %d, want 1", n)
	}
	// Channel selector wraps into range: ch 5 % 2 = 1.
	if m.calls[2] != "timing ch1" {
		t.Errorf("call %q, want timing ch1", m.calls[2])
	}
	if p.NextAt() != farFuture || p.Injected() != 3 {
		t.Errorf("exhausted plan: NextAt=%d Injected=%d", p.NextAt(), p.Injected())
	}
}

func TestApplyFailedPreconditionConsumedNotCounted(t *testing.T) {
	p := NewPlanEvents(1,
		Event{Kind: ForcePrecharge, AtBus: 10},
		Event{Kind: RowCorruption, AtBus: 20},
	)
	m := newMock(1)
	m.openRows = false // nothing open: both injections fizzle
	if n := p.Apply(100, m); n != 0 {
		t.Fatalf("landed %d, want 0 (no open rows)", n)
	}
	if p.Injected() != 0 {
		t.Errorf("Injected = %d, want 0", p.Injected())
	}
	if p.NextAt() != farFuture {
		t.Error("fizzled events must still be consumed")
	}
}

func TestArmInstallsDropStream(t *testing.T) {
	p := NewPlanEvents(9)
	p.DropRate = 0.5
	m := newMock(1)
	p.Arm(m)
	if m.dropRate != 0.5 {
		t.Fatalf("drop rate %v, want 0.5", m.dropRate)
	}
	if m.dropSeed == 9 {
		t.Error("drop seed should be decorrelated from the plan seed")
	}
	// Zero rate: no installation.
	m2 := newMock(1)
	NewPlanEvents(9).Arm(m2)
	if m2.dropRate != 0 {
		t.Error("Arm with zero drop rate should not install")
	}
}

func TestCloneIndependence(t *testing.T) {
	p := NewPlanEvents(1, Event{Kind: TimingReset, AtBus: 10})
	c := p.Clone()
	m := newMock(1)
	p.Apply(100, m)
	if p.NextAt() != farFuture {
		t.Fatal("original should be exhausted")
	}
	if c.NextAt() != 10 {
		t.Errorf("clone NextAt = %d, want 10 (unapplied)", c.NextAt())
	}
	if c.Injected() != 0 {
		t.Errorf("clone Injected = %d, want 0", c.Injected())
	}
}

// FuzzFaultPlan proves Parse never panics and that any plan it accepts
// is well-formed: sorted schedule, in-range drop rate, and a String()
// rendering that reflects the event count.
func FuzzFaultPlan(f *testing.F) {
	f.Add("seed=7;n=6;horizon=100000;kinds=refresh+forcepre+timing;drop=0.25")
	f.Add("")
	f.Add("n=0")
	f.Add("kinds=blackout;horizon=16")
	f.Add("seed=-1;drop=1")
	f.Add("seed=9223372036854775807;n=65536")
	f.Add(";;seed=1;;")
	f.Add("kinds=row+row+row")
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := Parse(spec)
		if err != nil {
			if p != nil {
				t.Fatal("non-nil plan alongside an error")
			}
			return
		}
		if p == nil {
			return // empty spec
		}
		evs := p.Events()
		if !sort.SliceIsSorted(evs, func(i, j int) bool { return evs[i].AtBus < evs[j].AtBus }) {
			t.Fatalf("unsorted schedule from %q", spec)
		}
		if p.DropRate < 0 || p.DropRate > 1 {
			t.Fatalf("drop rate %v out of range from %q", p.DropRate, spec)
		}
		for _, e := range evs {
			if e.AtBus < 0 || e.Channel < 0 || e.Rank < 0 {
				t.Fatalf("negative selector in %+v from %q", e, spec)
			}
		}
		if !strings.Contains(p.String(), fmt.Sprintf("events=%d", len(evs))) {
			t.Fatalf("String() %q does not reflect %d events", p.String(), len(evs))
		}
		// A clone applies the same schedule against a mock without panics.
		m := newMock(3)
		c := p.Clone()
		c.Arm(m)
		c.Apply(1<<40, m)
		if c.Injected() > len(evs) {
			t.Fatalf("injected %d > %d events", c.Injected(), len(evs))
		}
	})
}

package telemetry

import (
	"sync/atomic"

	"eruca/internal/snapshot"
)

// counterField aliases the raw atomic so fields() can return addressable
// references to every physical counter.
type counterField = atomic.Uint64

// SnapshotState serializes every scalar counter and histogram for a
// crash-safe checkpoint. Trace rings are deliberately not serialized:
// after a resume the trace restarts empty (checkpoints would otherwise
// balloon by megabytes), while the counters — the attribution source of
// truth — carry over exactly.
func (c *Counters) SnapshotState(e *snapshot.Encoder) {
	for _, f := range c.fields() {
		e.U64(f.Load())
	}
	c.Hists(func(_ string, h *Hist) { h.snapshotState(e) })
}

// RestoreState rewinds every counter and histogram from a
// SnapshotState stream.
func (c *Counters) RestoreState(d *snapshot.Decoder) error {
	for _, f := range c.fields() {
		f.Store(d.U64())
	}
	var err error
	c.Hists(func(_ string, h *Hist) {
		if e := h.restoreState(d); e != nil && err == nil {
			err = e
		}
	})
	if err != nil {
		return err
	}
	return d.Err()
}

// fields lists the raw counter fields in canonical order. Unlike Each
// this excludes derived values (vpp_acts_saved aliases ewlr_hits), so
// snapshot/restore round-trips exactly once per physical counter.
func (c *Counters) fields() []*counterField {
	return []*counterField{
		&c.Acts, &c.Pres, &c.Reads, &c.Writes, &c.Refreshes, &c.PreAlls,
		&c.EWLRHits, &c.EWLRMisses, &c.PartialPres, &c.PlaneConflicts,
		&c.RAPRedirects, &c.DDBSavedCK, &c.FFCyclesSkipped, &c.TraceDropped,
	}
}

func (h *Hist) snapshotState(e *snapshot.Encoder) {
	e.U64(h.n.Load())
	e.I64(h.sum.Load())
	for i := range h.buckets {
		e.U64(h.buckets[i].Load())
	}
}

func (h *Hist) restoreState(d *snapshot.Decoder) error {
	h.n.Store(d.U64())
	h.sum.Store(d.I64())
	for i := range h.buckets {
		h.buckets[i].Store(d.U64())
	}
	return d.Err()
}

package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenEvents is a small curated stream exercising every exporter
// path: span open/close with mechanism args, PREA mass-close, orphan
// PRE, re-ACT without PRE, instants, ERUCA events, fast-forward, and a
// second run (process).
func goldenEvents() ([]Event, []string) {
	events := []Event{
		{At: 10, Kind: EvACT, Row: 0x2a, Bank: 1},
		{At: 14, Kind: EvRD, Bank: 1},
		{At: 18, Kind: EvWR, Bank: 1},
		{At: 30, Kind: EvPRE, Row: 0x2a, Bank: 1},
		{At: 35, Kind: EvACT, Row: 0x11, Bank: 2, Sub: 1, Flag: FlagEWLRHit},
		{At: 40, Kind: EvACT, Row: 0x12, Bank: 2, Sub: 0, Flag: FlagEWLRMiss | FlagRAPRemap},
		{At: 41, Kind: EvRAPRemap, Row: 0x12, Bank: 2, Sub: 1},
		{At: 44, Kind: EvDDBGrant, Arg: 3, Grp: 1},
		{At: 50, Kind: EvPRE, Row: 0x11, Bank: 2, Sub: 1, Flag: FlagPlaneConflict},
		{At: 55, Kind: EvPRE, Row: 0x12, Bank: 2, Sub: 0, Flag: FlagPartial},
		{At: 60, Kind: EvPRE, Bank: 3},            // orphan PRE: instant
		{At: 64, Kind: EvACT, Row: 0x7, Bank: 1},  // reopened ...
		{At: 70, Kind: EvACT, Row: 0x8, Bank: 1},  // ... re-ACT closes it
		{At: 75, Kind: EvACT, Row: 0x9, Bank: 4},  // left open for PREA
		{At: 76, Kind: EvACT, Row: 0xa, Bank: 5},  // left open for PREA
		{At: 80, Kind: EvPREA},                    // closes banks 4,5 and the bank-1 span
		{At: 85, Kind: EvREF},
		{At: 90, Kind: EvFFSkip, Arg: 1200},
		{At: 95, Kind: EvACT, Row: 0x30, Run: 1, Chan: 1, Rank: 1, Grp: 2, Bank: 6, Sub: 1, Slot: 2},
		// run-1 span left dangling: closed at ACT+1 by the exporter.
	}
	return events, []string{"DDR4 mix0", "VSB mix0"}
}

func TestPerfettoGolden(t *testing.T) {
	events, runs := goldenEvents()
	var buf bytes.Buffer
	if err := WriteTrace(&buf, events, runs); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	path := filepath.Join("testdata", "perfetto_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("Perfetto output drifted from golden file.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestPerfettoWellFormed proves the exporter output is valid JSON of
// the trace-event "object" form with balanced b/e span pairs.
func TestPerfettoWellFormed(t *testing.T) {
	events, runs := goldenEvents()
	var buf bytes.Buffer
	if err := WriteTrace(&buf, events, runs); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exporter output is not valid JSON: %v", err)
	}
	if doc.Unit != "ns" {
		t.Errorf("displayTimeUnit = %q", doc.Unit)
	}
	var begins, ends, metas, instants int
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "b":
			begins++
		case "e":
			ends++
		case "M":
			metas++
		case "i":
			instants++
		}
	}
	if begins == 0 || begins != ends {
		t.Errorf("unbalanced spans: %d begins, %d ends", begins, ends)
	}
	if metas < 2 {
		t.Errorf("expected process+thread metadata, got %d", metas)
	}
	if instants == 0 {
		t.Error("no instant events emitted")
	}
	// Determinism: a second render is byte-identical.
	var buf2 bytes.Buffer
	if err := WriteTrace(&buf2, events, runs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("WriteTrace is not deterministic")
	}
}

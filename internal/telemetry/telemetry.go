// Package telemetry is the simulator's observability layer: a typed,
// cycle-attributed event tracer with per-rank ring buffers, a registry of
// always-on mechanism counters and log2 latency histograms, and exporters
// (Chrome trace-event / Perfetto JSON, a compact binary spill format, and
// Prometheus text via internal/server).
//
// The design contract is that telemetry is purely observational: enabling
// or disabling it must never change a simulated command stream, a bus
// cycle count, or a sweep table (internal/sim proves this with an audit
// equivalence test, and scripts/bench_delta.awk fails the build on any
// mechanism-counter drift). The hot path pays one nil check when telemetry
// is detached; counters are lock-free atomics; event rings are
// preallocated and guarded by a single mutex per Set so concurrent
// readers (the erucad live endpoint, crash dumps) are race-clean while a
// run is in flight.
package telemetry

import (
	"fmt"
	"io"
	"sync"

	"eruca/internal/clock"
)

// Kind enumerates traced event types. The first six mirror dram.CmdKind
// one-to-one (same order) so the dram layer can translate with a cast;
// the rest are ERUCA-mechanism and run-loop events.
type Kind uint8

const (
	// EvACT..EvREF are DRAM commands on the bus.
	EvACT Kind = iota
	EvPRE
	EvRD
	EvWR
	EvPREA
	EvREF
	// EvRAPRemap marks an ACT whose plane ID was inverted by the
	// rank-adaptive plane policy on sub-bank 1, dodging an MSB collision
	// with the row open in the paired sub-bank (Sec. V-B).
	EvRAPRemap
	// EvDDBGrant marks a column command whose issue cycle was pulled in
	// by the dual data bus relative to the single-bus tCCD_L/tWTR_L
	// bound; Arg holds the bus cycles saved.
	EvDDBGrant
	// EvFFSkip marks a fast-forward jump over a quiescent bus window;
	// Arg holds the bus cycles skipped.
	EvFFSkip

	numKinds = int(EvFFSkip) + 1
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case EvACT:
		return "ACT"
	case EvPRE:
		return "PRE"
	case EvRD:
		return "RD"
	case EvWR:
		return "WR"
	case EvPREA:
		return "PREA"
	case EvREF:
		return "REF"
	case EvRAPRemap:
		return "RAP"
	case EvDDBGrant:
		return "DDB"
	case EvFFSkip:
		return "FFSKIP"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Flag annotates an event with ERUCA mechanism outcomes.
type Flag uint8

const (
	// FlagEWLRHit marks an ACT that reused an already-driven MWL.
	FlagEWLRHit Flag = 1 << iota
	// FlagEWLRMiss marks an ACT under an EWLR scheme that had to drive
	// the MWL (the complement of FlagEWLRHit; absent on non-EWLR runs).
	FlagEWLRMiss
	// FlagPartial marks a PRE that left the shared MWL driven.
	FlagPartial
	// FlagPlaneConflict marks a PRE forced by a plane-latch conflict.
	FlagPlaneConflict
	// FlagRAPRemap marks an ACT whose plane ID was RAP-inverted.
	FlagRAPRemap
)

// String renders the set flags compactly ("hit|partial" style).
func (f Flag) String() string {
	if f == 0 {
		return "-"
	}
	var s []byte
	add := func(name string) {
		if len(s) > 0 {
			s = append(s, '|')
		}
		s = append(s, name...)
	}
	if f&FlagEWLRHit != 0 {
		add("ewlr-hit")
	}
	if f&FlagEWLRMiss != 0 {
		add("ewlr-miss")
	}
	if f&FlagPartial != 0 {
		add("partial")
	}
	if f&FlagPlaneConflict != 0 {
		add("plane-conf")
	}
	if f&FlagRAPRemap != 0 {
		add("rap")
	}
	return string(s)
}

// Event is one traced occurrence, 32 bytes, value type: a bus-cycle
// timestamp plus full bank/sub-bank coordinates and a kind-specific Arg
// (row for ACT, saved/skipped cycles for DDB/FFSkip).
type Event struct {
	At   clock.Cycle // bus cycle
	Row  uint32      // ACT: row opened; PRE: row closed; else 0
	Arg  uint32      // EvDDBGrant: cycles saved; EvFFSkip: cycles skipped
	Run  uint16      // run index from BeginRun (Perfetto pid)
	Kind Kind
	Flag Flag
	Chan uint8
	Rank uint8
	Grp  uint8
	Bank uint8
	Sub  uint8
	Slot uint8
}

// String renders the event for crash dumps and logs.
func (e Event) String() string {
	switch e.Kind {
	case EvFFSkip:
		return fmt.Sprintf("@%d FFSKIP +%d cycles", e.At, e.Arg)
	case EvDDBGrant:
		return fmt.Sprintf("@%d DDB ch%d rk%d bg%d saved %d", e.At, e.Chan, e.Rank, e.Grp, e.Arg)
	}
	return fmt.Sprintf("@%d %s ch%d rk%d bg%d bk%d sb%d slot%d row %#x [%s]",
		e.At, e.Kind, e.Chan, e.Rank, e.Grp, e.Bank, e.Sub, e.Slot, e.Row, e.Flag)
}

// Options configures a Set. The zero value is usable: 256-deep rings, no
// sampling decimation, no window gate, a 1M-event capture cap, no spill.
type Options struct {
	// RingDepth is the per-rank recent-event ring capacity (default 256,
	// the crash-dump tail depth).
	RingDepth int
	// SampleEvery keeps 1-in-N events (0 or 1 keeps all). Sampling
	// applies to the event trace only; counters always see every event.
	SampleEvery int
	// WindowFrom/WindowTo gate tracing to a bus-cycle interval; a zero
	// WindowTo means no upper bound.
	WindowFrom clock.Cycle
	WindowTo   clock.Cycle
	// CaptureMax bounds the in-memory full-trace buffer (0 selects the
	// default of 1<<20 events; negative keeps nothing in memory, so
	// every event streams to Spill). Beyond it events go to Spill if
	// set, else are dropped and counted in Counters.TraceDropped.
	CaptureMax int
	// Spill receives overflow events in the compact binary format
	// (WriteBinaryHeader + 32-byte records) once the capture buffer is
	// full. Typically an *os.File for >10M-event runs.
	Spill io.Writer
	// Capture disables the full-trace buffer entirely when false while
	// keeping rings and counters live. NewSet sets it; the zero Options
	// via New keeps capture on.
	Capture bool
}

// Set is one telemetry domain: counters, per-rank recent-event rings, and
// an optional full capture buffer. A nil *Set is inert: every method is
// nil-safe and the hot path reduces to one comparison.
type Set struct {
	C Counters

	opt  Options
	runs []string // run names by index

	mu       sync.Mutex
	rings    []ring // indexed chan*ranks+rank, configured lazily
	ranks    int    // ranks per channel for ring indexing
	capture  []Event
	spillErr error
	spilled  uint64
	seen     uint64 // events offered to the trace (for 1-in-N)
}

// ring is a fixed-capacity overwrite-oldest event buffer.
type ring struct {
	buf  []Event
	next int
	n    int
}

func (r *ring) push(e Event) {
	if len(r.buf) == 0 {
		return
	}
	r.buf[r.next] = e
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// tail returns up to n most-recent events, oldest first.
func (r *ring) tail(n int) []Event {
	if n > r.n {
		n = r.n
	}
	out := make([]Event, 0, n)
	for i := r.n - n; i < r.n; i++ {
		out = append(out, r.buf[(r.next-r.n+i+len(r.buf))%len(r.buf)])
	}
	return out
}

// New returns a Set with full capture enabled and default options.
func New() *Set { return NewSet(Options{Capture: true}) }

// NewSet returns a Set with the given options, applying defaults.
func NewSet(opt Options) *Set {
	if opt.RingDepth <= 0 {
		opt.RingDepth = 256
	}
	if opt.CaptureMax == 0 {
		opt.CaptureMax = 1 << 20
	} else if opt.CaptureMax < 0 {
		opt.CaptureMax = 0 // spill-only: nothing retained in memory
	}
	return &Set{opt: opt}
}

// Configure sizes the per-rank rings for a topology of channels×ranks.
// Safe to call more than once (grows, never shrinks below existing data).
func (s *Set) Configure(channels, ranks int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	want := channels * ranks
	if ranks > s.ranks {
		s.ranks = ranks
	}
	for len(s.rings) < want {
		s.rings = append(s.rings, ring{buf: make([]Event, s.opt.RingDepth)})
	}
}

// BeginRun registers a run scope (one simulated system/workload) and
// returns its index, which the emitter stamps into Event.Run (the
// Perfetto process ID) — stamping happens at the emitter, not here, so
// concurrent runs sharing one Set tag their events correctly. The name
// labels the process in trace viewers.
func (s *Set) BeginRun(name string) uint16 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.runs = append(s.runs, name)
	return uint16(len(s.runs) - 1)
}

// Runs returns the run names registered with BeginRun, by index.
func (s *Set) Runs() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.runs))
	copy(out, s.runs)
	return out
}

// Enabled reports whether the Set is live; callers keep their hot path to
// `if tel != nil` and call Emit unconditionally after that.
func (s *Set) Enabled() bool { return s != nil }

// Emit offers one event to the trace. Counters are NOT updated here —
// the emitting layer drives Counters directly so that sampling and
// windowing never perturb attribution totals.
func (s *Set) Emit(e Event) {
	if s == nil {
		return
	}
	if s.opt.WindowTo != 0 && (e.At < s.opt.WindowFrom || e.At >= s.opt.WindowTo) {
		return
	}
	if s.opt.WindowTo == 0 && e.At < s.opt.WindowFrom {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seen++
	if s.opt.SampleEvery > 1 && (s.seen-1)%uint64(s.opt.SampleEvery) != 0 {
		return
	}
	// Recent-event ring (crash-dump tail) — indexed by channel/rank.
	if s.ranks > 0 {
		idx := int(e.Chan)*s.ranks + int(e.Rank)
		if idx >= 0 && idx < len(s.rings) {
			s.rings[idx].push(e)
		}
	}
	if !s.opt.Capture {
		return
	}
	if len(s.capture) < s.opt.CaptureMax {
		s.capture = append(s.capture, e)
		return
	}
	// Capture full: spill or drop.
	if s.opt.Spill != nil && s.spillErr == nil {
		if s.spilled == 0 {
			s.spillErr = WriteBinaryHeader(s.opt.Spill)
		}
		if s.spillErr == nil {
			s.spillErr = writeBinaryEvent(s.opt.Spill, e)
		}
		if s.spillErr == nil {
			s.spilled++
			return
		}
	}
	s.C.TraceDropped.Add(1)
}

// Events returns a copy of the in-memory capture buffer, in emit order.
func (s *Set) Events() []Event {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, len(s.capture))
	copy(out, s.capture)
	return out
}

// Recent returns up to n most-recent events for one channel/rank ring,
// oldest first. With rank < 0 it merges every ring of the channel; with
// chan < 0 it merges all rings. Merged output is sorted by cycle.
func (s *Set) Recent(channel, rank, n int) []Event {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if channel >= 0 && rank >= 0 && s.ranks > 0 {
		idx := channel*s.ranks + rank
		if idx < len(s.rings) {
			return s.rings[idx].tail(n)
		}
		return nil
	}
	var all []Event
	for i := range s.rings {
		if channel >= 0 && s.ranks > 0 && i/s.ranks != channel {
			continue
		}
		all = append(all, s.rings[i].tail(n)...)
	}
	sortEvents(all)
	if len(all) > n {
		all = all[len(all)-n:]
	}
	return all
}

// sortEvents orders by cycle, stable for equal cycles (insertion sort is
// fine: crash-dump tails are ≤ a few hundred events).
func sortEvents(ev []Event) {
	for i := 1; i < len(ev); i++ {
		for j := i; j > 0 && ev[j].At < ev[j-1].At; j-- {
			ev[j], ev[j-1] = ev[j-1], ev[j]
		}
	}
}

// Spilled reports how many events went to the spill writer, and any
// write error encountered (subsequent events are dropped after an error).
func (s *Set) Spilled() (uint64, error) {
	if s == nil {
		return 0, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.spilled, s.spillErr
}

package telemetry

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Compact binary spill format for >10M-event runs, where JSON would be
// 10× larger and slower to write on the hot path.
//
// Layout (little-endian):
//
//	header:  8-byte magic "ERUCATL1"
//	records: 32 bytes each —
//	  [0:8]   At   int64
//	  [8:12]  Row  uint32
//	  [12:16] Arg  uint32
//	  [16:18] Run  uint16
//	  [18]    Kind
//	  [19]    Flag
//	  [20]    Chan
//	  [21]    Rank
//	  [22]    Grp
//	  [23]    Bank
//	  [24]    Sub
//	  [25]    Slot
//	  [26:32] reserved (zero)

// Magic identifies a binary telemetry spill file.
const Magic = "ERUCATL1"

const recordSize = 32

// WriteBinaryHeader writes the spill-file magic.
func WriteBinaryHeader(w io.Writer) error {
	_, err := io.WriteString(w, Magic)
	return err
}

func marshalEvent(e Event, b *[recordSize]byte) {
	binary.LittleEndian.PutUint64(b[0:], uint64(e.At))
	binary.LittleEndian.PutUint32(b[8:], e.Row)
	binary.LittleEndian.PutUint32(b[12:], e.Arg)
	binary.LittleEndian.PutUint16(b[16:], e.Run)
	b[18] = byte(e.Kind)
	b[19] = byte(e.Flag)
	b[20] = e.Chan
	b[21] = e.Rank
	b[22] = e.Grp
	b[23] = e.Bank
	b[24] = e.Sub
	b[25] = e.Slot
	for i := 26; i < recordSize; i++ {
		b[i] = 0
	}
}

func writeBinaryEvent(w io.Writer, e Event) error {
	var b [recordSize]byte
	marshalEvent(e, &b)
	_, err := w.Write(b[:])
	return err
}

// WriteBinary writes a complete spill file: header plus every event.
func WriteBinary(w io.Writer, events []Event) error {
	if err := WriteBinaryHeader(w); err != nil {
		return err
	}
	var b [recordSize]byte
	for _, e := range events {
		marshalEvent(e, &b)
		if _, err := w.Write(b[:]); err != nil {
			return err
		}
	}
	return nil
}

// ReadBinary parses a spill file produced by WriteBinary or the Set's
// spill path. It validates the magic and requires whole records.
func ReadBinary(r io.Reader) ([]Event, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("telemetry: reading magic: %w", err)
	}
	if string(magic[:]) != Magic {
		return nil, fmt.Errorf("telemetry: bad magic %q (want %q)", magic[:], Magic)
	}
	var out []Event
	var b [recordSize]byte
	for {
		_, err := io.ReadFull(r, b[:])
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("telemetry: truncated record %d: %w", len(out), err)
		}
		out = append(out, Event{
			At:   int64(binary.LittleEndian.Uint64(b[0:])),
			Row:  binary.LittleEndian.Uint32(b[8:]),
			Arg:  binary.LittleEndian.Uint32(b[12:]),
			Run:  binary.LittleEndian.Uint16(b[16:]),
			Kind: Kind(b[18]),
			Flag: Flag(b[19]),
			Chan: b[20],
			Rank: b[21],
			Grp:  b[22],
			Bank: b[23],
			Sub:  b[24],
			Slot: b[25],
		})
	}
}

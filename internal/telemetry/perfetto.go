package telemetry

import (
	"bufio"
	"fmt"
	"io"
)

// Perfetto / Chrome trace-event JSON exporter.
//
// Layout: one trace-event "process" per run (pid = run index, named by
// BeginRun), one "thread" per bank (tid encodes chan/rank/group/bank, so
// each bank gets its own track). Row open lifetimes are async spans
// ("b"/"e") from ACT to the matching PRE, with the sub-bank and MASA slot
// in the async id so concurrent sub-bank rows render as parallel span
// rows under the bank track. Column commands, refreshes and the ERUCA
// mechanism events render as instants ("i"). Timestamps are bus cycles
// reported as microseconds (1 cycle == 1 µs in the viewer; the absolute
// scale is irrelevant, relative spacing is exact).
//
// Output is deterministic for a given event slice: metadata records are
// emitted in first-appearance order and events in emit order, so the
// golden-file test can compare bytes.

// tid packs the bank coordinates into a stable track id.
func tid(e Event) uint64 {
	return uint64(e.Chan)<<24 | uint64(e.Rank)<<16 | uint64(e.Grp)<<8 | uint64(e.Bank)
}

// spanID packs the sub-bank/slot into the async span id namespace so each
// (bank, sub, slot) has its own open-row span lane.
func spanID(e Event) uint64 {
	return tid(e)<<16 | uint64(e.Sub)<<8 | uint64(e.Slot)
}

// Emitter accumulates trace-event records into one Chrome trace-event
// JSON document, handling the comma separation so multiple producers
// (sim events here, service spans in internal/obs) can interleave into
// a single "traceEvents" array and land on one Perfetto timeline.
type Emitter struct {
	bw    *bufio.Writer
	first bool
}

// NewEmitter opens the traceEvents document on w.
func NewEmitter(w io.Writer) *Emitter {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "{\"traceEvents\":[\n")
	return &Emitter{bw: bw, first: true}
}

// Emit appends one record (a complete JSON object rendered by format).
func (em *Emitter) Emit(format string, args ...interface{}) {
	if !em.first {
		em.bw.WriteString(",\n")
	}
	em.first = false
	fmt.Fprintf(em.bw, format, args...)
}

// Close terminates the document and flushes.
func (em *Emitter) Close() error {
	fmt.Fprintf(em.bw, "\n],\"displayTimeUnit\":\"ns\"}\n")
	return em.bw.Flush()
}

// WriteTrace renders events as Chrome trace-event JSON ("traceEvents"
// array form) loadable by Perfetto and chrome://tracing. runs supplies
// the process names (index = Event.Run); a missing name falls back to
// "run N".
func WriteTrace(w io.Writer, events []Event, runs []string) error {
	em := NewEmitter(w)
	EmitEvents(em, events, runs)
	return em.Close()
}

// EmitEvents renders events into an already-open emitter — the shared
// path between WriteTrace and merged span+event exports.
func EmitEvents(em *Emitter, events []Event, runs []string) {
	emit := em.Emit

	runName := func(run uint16) string {
		if int(run) < len(runs) {
			return runs[run]
		}
		return fmt.Sprintf("run %d", run)
	}

	// Metadata in first-appearance order.
	seenProc := map[uint16]bool{}
	seenThread := map[uint64]bool{}
	meta := func(e Event) {
		if !seenProc[e.Run] {
			seenProc[e.Run] = true
			emit(`{"ph":"M","pid":%d,"name":"process_name","args":{"name":%q}}`, e.Run, runName(e.Run))
		}
		if e.Kind == EvFFSkip {
			return // FFSkip renders on a per-run pseudo-track below
		}
		t := tid(e)
		key := uint64(e.Run)<<32 | t
		if !seenThread[key] {
			seenThread[key] = true
			emit(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":"ch%d rk%d bg%d bk%d"}}`,
				e.Run, t, e.Chan, e.Rank, e.Grp, e.Bank)
		}
	}

	// open tracks currently open row spans so PRE can close the right
	// one; PREA closes every open span of its rank.
	type openKey struct {
		run uint16
		id  uint64
	}
	open := map[openKey]Event{}

	closeSpan := func(act Event, at int64, e Event) {
		name := fmt.Sprintf("row %#x", act.Row)
		extra := ""
		if e.Flag&FlagPlaneConflict != 0 {
			extra = `,"args":{"plane_conflict":true}`
		} else if e.Flag&FlagPartial != 0 {
			extra = `,"args":{"partial":true}`
		}
		emit(`{"ph":"b","cat":"row","id":%d,"pid":%d,"tid":%d,"ts":%d,"name":%q%s}`,
			spanID(act), act.Run, tid(act), act.At, name, actArgs(act))
		emit(`{"ph":"e","cat":"row","id":%d,"pid":%d,"tid":%d,"ts":%d,"name":%q%s}`,
			spanID(act), act.Run, tid(act), at, name, extra)
	}

	for _, e := range events {
		meta(e)
		switch e.Kind {
		case EvACT:
			k := openKey{e.Run, spanID(e)}
			if prev, ok := open[k]; ok {
				// Missing PRE in the captured window — close at the new ACT.
				closeSpan(prev, e.At, Event{})
			}
			open[k] = e
		case EvPRE:
			k := openKey{e.Run, spanID(e)}
			if act, ok := open[k]; ok {
				closeSpan(act, e.At, e)
				delete(open, k)
			} else {
				emit(`{"ph":"i","s":"t","cat":"cmd","pid":%d,"tid":%d,"ts":%d,"name":"PRE"}`,
					e.Run, tid(e), e.At)
			}
		case EvPREA:
			// Deterministic close order: map iteration is randomized, so
			// collect and sort the matching span ids first.
			var ids []uint64
			for k, act := range open {
				if k.run == e.Run && act.Chan == e.Chan && act.Rank == e.Rank {
					ids = append(ids, k.id)
				}
			}
			sortIDs(ids)
			for _, id := range ids {
				k := openKey{e.Run, id}
				closeSpan(open[k], e.At, e)
				delete(open, k)
			}
			emit(`{"ph":"i","s":"t","cat":"cmd","pid":%d,"tid":%d,"ts":%d,"name":"PREA"}`,
				e.Run, tid(e), e.At)
		case EvRD, EvWR, EvREF:
			emit(`{"ph":"i","s":"t","cat":"cmd","pid":%d,"tid":%d,"ts":%d,"name":%q}`,
				e.Run, tid(e), e.At, e.Kind.String())
		case EvRAPRemap:
			emit(`{"ph":"i","s":"t","cat":"eruca","pid":%d,"tid":%d,"ts":%d,"name":"RAP remap","args":{"row":%d,"sub":%d}}`,
				e.Run, tid(e), e.At, e.Row, e.Sub)
		case EvDDBGrant:
			emit(`{"ph":"i","s":"t","cat":"eruca","pid":%d,"tid":%d,"ts":%d,"name":"DDB grant","args":{"saved_ck":%d}}`,
				e.Run, tid(e), e.At, e.Arg)
		case EvFFSkip:
			emit(`{"ph":"X","cat":"runloop","pid":%d,"tid":4294967295,"ts":%d,"dur":%d,"name":"fast-forward"}`,
				e.Run, e.At, e.Arg)
		}
	}

	// Close dangling spans at their own ACT cycle + 1 so partial windows
	// still load (deterministic order: iterate events again).
	for _, e := range events {
		if e.Kind != EvACT {
			continue
		}
		k := openKey{e.Run, spanID(e)}
		if act, ok := open[k]; ok && act == e {
			closeSpan(act, act.At+1, Event{})
			delete(open, k)
		}
	}
}

// sortIDs orders span ids ascending (insertion sort; PREA closes at
// most a rank's worth of spans).
func sortIDs(ids []uint64) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// actArgs renders the ACT's mechanism annotations as a trace-event args
// object (empty string when there is nothing to say).
func actArgs(act Event) string {
	switch {
	case act.Flag&FlagEWLRHit != 0 && act.Flag&FlagRAPRemap != 0:
		return `,"args":{"ewlr":"hit","rap":true}`
	case act.Flag&FlagEWLRHit != 0:
		return `,"args":{"ewlr":"hit"}`
	case act.Flag&FlagRAPRemap != 0 && act.Flag&FlagEWLRMiss != 0:
		return `,"args":{"ewlr":"miss","rap":true}`
	case act.Flag&FlagRAPRemap != 0:
		return `,"args":{"rap":true}`
	case act.Flag&FlagEWLRMiss != 0:
		return `,"args":{"ewlr":"miss"}`
	}
	return ""
}

// WriteTraceFromSet is the convenience used by the -trace-out flag: dump
// the Set's capture buffer with its run names.
func WriteTraceFromSet(w io.Writer, s *Set) error {
	return WriteTrace(w, s.Events(), s.Runs())
}

package telemetry

import (
	"math/bits"
	"sync/atomic"
)

// Counters is the always-on mechanism counter registry. Every field is a
// lock-free atomic updated on the simulator hot path regardless of event
// sampling, so attribution totals are exact even when the trace is
// decimated. All counts are deterministic per configuration (the
// command stream does not depend on telemetry), which lets
// scripts/bench_delta.awk treat them as drift-checked invariants.
type Counters struct {
	// DRAM command counts.
	Acts      atomic.Uint64
	Pres      atomic.Uint64
	Reads     atomic.Uint64
	Writes    atomic.Uint64
	Refreshes atomic.Uint64
	PreAlls   atomic.Uint64

	// ERUCA mechanism attribution.
	EWLRHits        atomic.Uint64 // ACTs that reused a driven MWL (≡ VPP activations saved)
	EWLRMisses      atomic.Uint64 // ACTs under EWLR that had to drive the MWL
	PartialPres     atomic.Uint64 // PREs that kept the MWL driven
	PlaneConflicts  atomic.Uint64 // PREs forced by plane-latch conflicts (Fig. 13b)
	RAPRedirects    atomic.Uint64 // ACTs whose plane ID was RAP-inverted to dodge a collision
	DDBSavedCK      atomic.Uint64 // bus cycles of tCCD_L/tWTR_L recovered by the dual data bus
	FFCyclesSkipped atomic.Uint64 // bus cycles jumped by the event-driven run loop

	// Trace bookkeeping.
	TraceDropped atomic.Uint64 // events lost to a full capture buffer (no/failed spill)

	// Histograms (fixed log2 buckets, lock-free).
	ReadLatency Hist // read arrival→data, bus cycles
	QueueAge    Hist // arrival→first issue, bus cycles
	RowOpen     Hist // row open lifetime ACT→PRE, bus cycles
	InterACT    Hist // per-rank gap between consecutive ACTs, bus cycles
}

// VPPActsSaved reports the activations the VSB plane-latch reuse path
// avoided re-driving: identically the EWLR hit count (Sec. IV equates an
// EWLR hit with a saved MWL activation).
func (c *Counters) VPPActsSaved() uint64 { return c.EWLRHits.Load() }

// Each calls fn for every scalar counter with its canonical snake_case
// name (the Prometheus metric suffix and the bench metric unit).
// Deterministic order.
func (c *Counters) Each(fn func(name string, v uint64)) {
	fn("acts", c.Acts.Load())
	fn("pres", c.Pres.Load())
	fn("reads", c.Reads.Load())
	fn("writes", c.Writes.Load())
	fn("refreshes", c.Refreshes.Load())
	fn("prealls", c.PreAlls.Load())
	fn("ewlr_hits", c.EWLRHits.Load())
	fn("ewlr_misses", c.EWLRMisses.Load())
	fn("partial_pres", c.PartialPres.Load())
	fn("plane_conflicts", c.PlaneConflicts.Load())
	fn("rap_redirects", c.RAPRedirects.Load())
	fn("ddb_saved_ck", c.DDBSavedCK.Load())
	fn("ff_cycles_skipped", c.FFCyclesSkipped.Load())
	fn("vpp_acts_saved", c.VPPActsSaved())
	fn("trace_dropped", c.TraceDropped.Load())
}

// Hists calls fn for every histogram with its canonical name.
func (c *Counters) Hists(fn func(name string, h *Hist)) {
	fn("read_latency_ck", &c.ReadLatency)
	fn("queue_age_ck", &c.QueueAge)
	fn("row_open_ck", &c.RowOpen)
	fn("inter_act_ck", &c.InterACT)
}

// HistBuckets is the bucket count of Hist: bucket i counts values whose
// bit length is i, i.e. bucket 0 holds v==0 and bucket i≥1 holds
// v ∈ [2^(i-1), 2^i).
const HistBuckets = 65

// Hist is a lock-free fixed-bucket log2 histogram of non-negative int64
// observations. Zero value ready.
type Hist struct {
	buckets [HistBuckets]atomic.Uint64
	sum     atomic.Int64
	n       atomic.Uint64
}

// Observe records one value; negative values clamp to 0.
func (h *Hist) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// N reports the observation count.
func (h *Hist) N() uint64 { return h.n.Load() }

// Sum reports the sum of observations.
func (h *Hist) Sum() int64 { return h.sum.Load() }

// Mean reports the arithmetic mean (0 when empty).
func (h *Hist) Mean() float64 {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Buckets returns a snapshot of the non-cumulative bucket counts.
func (h *Hist) Buckets() [HistBuckets]uint64 {
	var out [HistBuckets]uint64
	for i := range out {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// BucketUpper reports the exclusive upper bound of bucket i (the value
// such that every observation in the bucket is < BucketUpper(i)).
func BucketUpper(i int) uint64 {
	if i <= 0 {
		return 1
	}
	if i >= 64 {
		return 1<<63 + (1<<63 - 1) // effectively +Inf for int64 inputs
	}
	return 1 << uint(i)
}

// Quantile reports an upper bound on the q-quantile (0≤q≤1): the upper
// edge of the bucket containing the nearest-rank sample. Error is at
// most 2× (one log2 bucket).
func (h *Hist) Quantile(q float64) uint64 {
	b := h.Buckets()
	var total uint64
	for _, c := range b {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for i, c := range b {
		cum += c
		if cum >= rank {
			return BucketUpper(i)
		}
	}
	return BucketUpper(HistBuckets - 1)
}

// Snapshot is a point-in-time JSON-friendly copy of every counter and
// histogram, used by the erucad live endpoint and /metrics.
type Snapshot struct {
	Counters map[string]uint64        `json:"counters"`
	Hists    map[string]HistSnapshot  `json:"histograms"`
	Runs     []string                 `json:"runs,omitempty"`
	Recent   []map[string]interface{} `json:"recent,omitempty"`
}

// HistSnapshot is the exported form of a Hist.
type HistSnapshot struct {
	N       uint64   `json:"n"`
	Sum     int64    `json:"sum"`
	Mean    float64  `json:"mean"`
	P50     uint64   `json:"p50_le"`
	P99     uint64   `json:"p99_le"`
	Buckets []uint64 `json:"buckets,omitempty"` // sparse: trailing zeros trimmed
}

// Snap captures the exported form of h.
func (h *Hist) Snap() HistSnapshot {
	b := h.Buckets()
	last := -1
	for i, c := range b {
		if c != 0 {
			last = i
		}
	}
	var bk []uint64
	if last >= 0 {
		bk = append(bk, b[:last+1]...)
	}
	return HistSnapshot{
		N: h.N(), Sum: h.Sum(), Mean: h.Mean(),
		P50: h.Quantile(0.5), P99: h.Quantile(0.99),
		Buckets: bk,
	}
}

// Snapshot builds a full JSON-friendly snapshot of the Set, including up
// to recentN most-recent trace events across all rings.
func (s *Set) Snapshot(recentN int) Snapshot {
	snap := Snapshot{Counters: map[string]uint64{}, Hists: map[string]HistSnapshot{}}
	if s == nil {
		return snap
	}
	s.C.Each(func(name string, v uint64) { snap.Counters[name] = v })
	s.C.Hists(func(name string, h *Hist) { snap.Hists[name] = h.Snap() })
	snap.Runs = s.Runs()
	if recentN > 0 {
		for _, e := range s.Recent(-1, -1, recentN) {
			snap.Recent = append(snap.Recent, map[string]interface{}{
				"at": e.At, "kind": e.Kind.String(), "flags": e.Flag.String(),
				"chan": e.Chan, "rank": e.Rank, "group": e.Grp, "bank": e.Bank,
				"sub": e.Sub, "slot": e.Slot, "row": e.Row, "arg": e.Arg, "run": e.Run,
			})
		}
	}
	return snap
}

package telemetry

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"

	"eruca/internal/clock"
)

func ev(at clock.Cycle, k Kind, ch, rk uint8) Event {
	return Event{At: at, Kind: k, Chan: ch, Rank: rk, Row: uint32(at)}
}

func TestNilSetIsInert(t *testing.T) {
	var s *Set
	s.Configure(2, 2)
	s.Emit(ev(1, EvACT, 0, 0))
	if s.Enabled() {
		t.Fatal("nil set reports enabled")
	}
	if got := s.Events(); got != nil {
		t.Fatalf("nil set captured %d events", len(got))
	}
	if got := s.Recent(-1, -1, 8); got != nil {
		t.Fatalf("nil set has recent events")
	}
	if s.BeginRun("x") != 0 {
		t.Fatal("nil BeginRun != 0")
	}
	snap := s.Snapshot(4)
	if len(snap.Counters) != 0 || len(snap.Recent) != 0 {
		t.Fatal("nil snapshot not empty")
	}
}

func TestRingWrapKeepsMostRecent(t *testing.T) {
	s := NewSet(Options{RingDepth: 4})
	s.Configure(1, 1)
	for i := 0; i < 10; i++ {
		s.Emit(ev(clock.Cycle(i), EvACT, 0, 0))
	}
	got := s.Recent(0, 0, 4)
	if len(got) != 4 {
		t.Fatalf("recent len = %d, want 4", len(got))
	}
	for i, e := range got {
		if want := clock.Cycle(6 + i); e.At != want {
			t.Errorf("recent[%d].At = %d, want %d (oldest-first tail)", i, e.At, want)
		}
	}
	if n := len(s.Recent(0, 0, 2)); n != 2 {
		t.Errorf("bounded tail len = %d, want 2", n)
	}
}

func TestRecentMergesAcrossRings(t *testing.T) {
	s := NewSet(Options{RingDepth: 8})
	s.Configure(2, 2)
	// Interleave cycles across (chan, rank) pairs out of order.
	s.Emit(ev(5, EvACT, 1, 1))
	s.Emit(ev(1, EvACT, 0, 0))
	s.Emit(ev(3, EvPRE, 0, 1))
	s.Emit(ev(2, EvRD, 1, 0))
	all := s.Recent(-1, -1, 16)
	if len(all) != 4 {
		t.Fatalf("merged len = %d, want 4", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].At < all[i-1].At {
			t.Fatalf("merged events not cycle-sorted: %v", all)
		}
	}
	ch0 := s.Recent(0, -1, 16)
	if len(ch0) != 2 {
		t.Fatalf("channel-0 merge len = %d, want 2", len(ch0))
	}
}

func TestSamplingDecimatesTraceOnly(t *testing.T) {
	s := NewSet(Options{SampleEvery: 4, Capture: true})
	s.Configure(1, 1)
	for i := 0; i < 16; i++ {
		s.C.Acts.Add(1) // counters are driven by the emitter, not Emit
		s.Emit(ev(clock.Cycle(i), EvACT, 0, 0))
	}
	if got := len(s.Events()); got != 4 {
		t.Fatalf("captured %d events with 1-in-4 sampling, want 4", got)
	}
	if got := s.C.Acts.Load(); got != 16 {
		t.Fatalf("counter saw %d, want 16 (sampling must not touch counters)", got)
	}
}

func TestWindowGate(t *testing.T) {
	s := NewSet(Options{WindowFrom: 10, WindowTo: 20, Capture: true})
	s.Configure(1, 1)
	for i := 0; i < 30; i++ {
		s.Emit(ev(clock.Cycle(i), EvACT, 0, 0))
	}
	got := s.Events()
	if len(got) != 10 {
		t.Fatalf("window captured %d events, want 10", len(got))
	}
	for _, e := range got {
		if e.At < 10 || e.At >= 20 {
			t.Fatalf("event at %d escaped window [10,20)", e.At)
		}
	}
}

func TestCaptureCapSpillsAndCounts(t *testing.T) {
	var spill bytes.Buffer
	s := NewSet(Options{CaptureMax: 3, Spill: &spill, Capture: true})
	s.Configure(1, 1)
	for i := 0; i < 8; i++ {
		s.Emit(ev(clock.Cycle(i), EvACT, 0, 0))
	}
	if got := len(s.Events()); got != 3 {
		t.Fatalf("capture kept %d, want 3", got)
	}
	n, err := s.Spilled()
	if err != nil || n != 5 {
		t.Fatalf("spilled = %d, %v; want 5, nil", n, err)
	}
	back, err := ReadBinary(&spill)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if len(back) != 5 || back[0].At != 3 || back[4].At != 7 {
		t.Fatalf("spill round-trip mismatch: %v", back)
	}

	// Without a spill writer, overflow increments TraceDropped.
	s2 := NewSet(Options{CaptureMax: 2, Capture: true})
	s2.Configure(1, 1)
	for i := 0; i < 5; i++ {
		s2.Emit(ev(clock.Cycle(i), EvACT, 0, 0))
	}
	if got := s2.C.TraceDropped.Load(); got != 3 {
		t.Fatalf("TraceDropped = %d, want 3", got)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	in := []Event{
		{At: 0, Kind: EvACT, Flag: FlagEWLRHit | FlagRAPRemap, Chan: 1, Rank: 2, Grp: 3, Bank: 4, Sub: 1, Slot: 7, Row: 0xdeadbeef, Run: 513},
		{At: 1 << 40, Kind: EvFFSkip, Arg: 1<<32 - 1},
		{At: 42, Kind: EvDDBGrant, Arg: 3, Chan: 1, Grp: 2},
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, in); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	out, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip %d -> %d events", len(in), len(out))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Errorf("event %d: %+v != %+v", i, in[i], out[i])
		}
	}
	// Corrupt magic must be rejected.
	bad := bytes.NewBufferString("NOTMAGIC")
	if _, err := ReadBinary(bad); err == nil {
		t.Fatal("ReadBinary accepted bad magic")
	}
}

func TestHistQuantileBounds(t *testing.T) {
	var h Hist
	for v := int64(0); v < 1000; v++ {
		h.Observe(v)
	}
	if h.N() != 1000 {
		t.Fatalf("N = %d", h.N())
	}
	if got := h.Mean(); got != 499.5 {
		t.Fatalf("Mean = %g, want 499.5 (exact)", got)
	}
	// Log2 buckets guarantee quantile upper bounds within 2x.
	if p50 := h.Quantile(0.5); p50 < 500 || p50 > 1024 {
		t.Errorf("p50 bound = %d, want in [500,1024]", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 990 || p99 > 2048 {
		t.Errorf("p99 bound = %d, want in [990,2048]", p99)
	}
	h.Observe(-5) // clamps to bucket 0
	if b := h.Buckets(); b[0] != 2 { // v=0 and v=-5
		t.Errorf("bucket0 = %d, want 2", b[0])
	}
}

func TestSnapshotShapes(t *testing.T) {
	s := New()
	s.Configure(1, 1)
	s.BeginRun("runA")
	s.C.Acts.Add(3)
	s.C.EWLRHits.Add(2)
	s.C.ReadLatency.Observe(100)
	s.Emit(ev(7, EvACT, 0, 0))
	snap := s.Snapshot(8)
	if snap.Counters["acts"] != 3 || snap.Counters["ewlr_hits"] != 2 || snap.Counters["vpp_acts_saved"] != 2 {
		t.Fatalf("counter snapshot wrong: %v", snap.Counters)
	}
	if snap.Hists["read_latency_ck"].N != 1 {
		t.Fatalf("hist snapshot wrong: %+v", snap.Hists["read_latency_ck"])
	}
	if len(snap.Runs) != 1 || snap.Runs[0] != "runA" {
		t.Fatalf("runs = %v", snap.Runs)
	}
	if len(snap.Recent) != 1 {
		t.Fatalf("recent = %v", snap.Recent)
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot not JSON-marshalable: %v", err)
	}
}

// TestConcurrentReadersDuringEmit is the race test for live
// introspection: rings, counters, snapshots and the capture buffer are
// hammered from reader goroutines while a writer emits. Run under
// -race this proves the erucad live endpoint can read an in-flight run.
func TestConcurrentReadersDuringEmit(t *testing.T) {
	s := New()
	s.Configure(2, 2)
	run := s.BeginRun("writer")
	const n = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = s.Recent(-1, -1, 64)
				_ = s.Snapshot(16)
				_ = s.Events()
				_ = s.C.Acts.Load()
			}
		}()
	}
	for i := 0; i < n; i++ {
		e := ev(clock.Cycle(i), EvACT, uint8(i%2), uint8(i/2%2))
		e.Run = run
		s.C.Acts.Add(1)
		s.C.InterACT.Observe(int64(i % 37))
		s.Emit(e)
	}
	close(stop)
	wg.Wait()
	if got := s.C.Acts.Load(); got != n {
		t.Fatalf("acts = %d, want %d", got, n)
	}
	if got := len(s.Events()); got != n {
		t.Fatalf("captured = %d, want %d", got, n)
	}
}

func TestFlagAndKindStrings(t *testing.T) {
	if got := (FlagEWLRHit | FlagPartial).String(); got != "ewlr-hit|partial" {
		t.Errorf("flag string = %q", got)
	}
	if got := Flag(0).String(); got != "-" {
		t.Errorf("zero flag = %q", got)
	}
	for k := EvACT; k <= EvFFSkip; k++ {
		if got := k.String(); got == "" || got[0] == 'K' {
			t.Errorf("kind %d has no name: %q", k, got)
		}
	}
}

package exp

import (
	"fmt"

	"eruca/internal/config"
	"eruca/internal/stats"
)

// Ablations evaluates the design choices DESIGN.md calls out, each as a
// GMEAN normalized weighted speedup over the configured mixes against
// the same baseline. Variants that merely relax physical constraints
// (the idealized dual bus) are marked unbuildable.
func (r *Runner) Ablations(frag float64) (*Table, error) {
	type variant struct {
		group string
		name  string
		sys   *config.System
	}
	mk := func() *config.System { return config.VSB(4, true, true, true, config.DefaultBusMHz) }

	var variants []variant
	add := func(group, name string, mut func(*config.System)) {
		sys := mk()
		if mut != nil {
			mut(sys)
		}
		variants = append(variants, variant{group, name, sys})
	}

	add("plane-bits", "high (Fig.9 #1, default)", nil)
	add("plane-bits", "low (Fig.9 #2)", func(s *config.System) { s.Scheme.PlaneBits = config.PlaneBitsLow })

	add("ewlr-width", "2 bits", func(s *config.System) { s.Scheme.EWLRBits = 2 })
	add("ewlr-width", "3 bits (default)", nil)
	add("ewlr-width", "4 bits", func(s *config.System) { s.Scheme.EWLRBits = 4 })

	add("sub-bank-hash", "XOR-folded (default)", nil)
	add("sub-bank-hash", "plain bit", func(s *config.System) { s.Scheme.SubHashDisabled = true })

	add("page-policy", "adaptive open (default)", nil)
	add("page-policy", "keep open", func(s *config.System) { s.Ctrl.ClosePageIdleCK = 0 })
	add("page-policy", "near-closed (40ck)", func(s *config.System) { s.Ctrl.ClosePageIdleCK = 40 })

	add("scheduler", "FR-FCFS (default)", nil)
	add("scheduler", "FCFS", func(s *config.System) { s.Ctrl.HitFirstDisabled = true })

	// Rename before warming: the cache keys must already carry the
	// variant tag, and the warm pass must not race the renames.
	for i := range variants {
		v := &variants[i]
		v.sys.Name = fmt.Sprintf("%s[%s/%d]", v.sys.Name, v.group, i)
	}
	grid := make([]*config.System, len(variants))
	for i, v := range variants {
		grid[i] = v.sys
	}
	r.warmNormWS(grid, frag)

	t := &Table{
		Title:  fmt.Sprintf("Ablations: GMEAN normalized WS of VSB(EWLR+RAP)+DDB variants (FMFI %.0f%%)", frag*100),
		Header: []string{"choice", "variant", "norm WS"},
	}
	c := &collector{}
	for _, v := range variants {
		var vals []float64
		var cellErr error
		for _, mix := range r.Mixes() {
			ws, err := r.NormWS(v.sys, mix, frag)
			if err != nil {
				cellErr = err
				break
			}
			vals = append(vals, ws)
		}
		t.Rows = append(t.Rows, []string{v.group, v.name, c.cell(f3(stats.GeoMean(vals)), sysKey(v.sys), cellErr)})
	}
	t.Notes = append(t.Notes,
		"Each group varies one knob of the full ERUCA configuration; DESIGN.md lists the rationale.")
	return c.finish(t)
}

// aloneSanity is referenced by tests: every benchmark's alone IPC must
// be at least its shared IPC in any mix containing it (contention can
// only hurt).
func (r *Runner) aloneSanity(frag float64) error {
	for _, mix := range r.Mixes() {
		res, err := r.Result(config.Baseline(config.DefaultBusMHz), mix, frag)
		if err != nil {
			return err
		}
		for i, b := range mix.Bench {
			alone, err := r.AloneIPC(b, frag, config.DefaultBusMHz)
			if err != nil {
				return err
			}
			if res.IPC[i] > alone*1.02 { // 2% tolerance for seed noise
				return fmt.Errorf("%s in %s: shared IPC %.3f exceeds alone %.3f",
					b, mix.Name, res.IPC[i], alone)
			}
		}
	}
	return nil
}

package exp

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestChartRendersNumericColumns(t *testing.T) {
	tbl := &Table{
		Title:  "demo",
		Header: []string{"mix", "a", "b"},
		Rows: [][]string{
			{"mix0", "1.000", "1.100"},
			{"mix1", "1.050", "1.150"},
		},
	}
	c := tbl.Chart()
	if c == "" {
		t.Fatal("empty chart")
	}
	for _, want := range []string{"mix0", "mix1", "a", "b", "#"} {
		if !strings.Contains(c, want) {
			t.Errorf("chart missing %q:\n%s", want, c)
		}
	}
	// The max value gets the longest bar.
	lines := strings.Split(c, "\n")
	maxHashes, maxLine := 0, ""
	for _, l := range lines {
		n := strings.Count(l, "#")
		if n > maxHashes {
			maxHashes, maxLine = n, l
		}
	}
	if !strings.Contains(maxLine, "1.15") {
		t.Errorf("longest bar is not the max value: %q", maxLine)
	}
}

func TestChartPercentCells(t *testing.T) {
	tbl := &Table{
		Title:  "pct",
		Header: []string{"planes", "x"},
		Rows:   [][]string{{"2", "45.6%"}, {"4", "3.6%"}},
	}
	if tbl.Chart() == "" {
		t.Error("percent cells not charted")
	}
}

// scatterFixture is a curated frontier-shaped point set: three
// non-dominated configurations and two dominated ones.
func scatterFixture() []ScatterPoint {
	return []ScatterPoint{
		{X: 120, Y: 2.1, Frontier: true, Label: "planes=8 ewlr=on rap=on"},
		{X: 100, Y: 1.9, Frontier: true, Label: "planes=4 ewlr=on rap=on"},
		{X: 90, Y: 1.4, Frontier: true, Label: "planes=2 ewlr=off rap=on"},
		{X: 130, Y: 1.8, Frontier: false},
		{X: 115, Y: 1.3, Frontier: false},
	}
}

// TestParetoScatterGolden pins the exact rendering: the scatter is
// consumed verbatim by the CLI and examples/search, so drift is an
// interface change, not a cosmetic one.
func TestParetoScatterGolden(t *testing.T) {
	got := []byte(ParetoScatter("Pareto frontier: IPC vs energy", "energy (nJ)", "IPC", scatterFixture()))
	path := filepath.Join("testdata", "pareto_golden.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("Pareto scatter drifted from golden file.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestParetoScatterShape(t *testing.T) {
	out := ParetoScatter("t", "x", "y", scatterFixture())
	if strings.Count(out, "*") < 3+3 { // 3 plotted glyphs + 3 legend bullets
		t.Errorf("frontier points not marked:\n%s", out)
	}
	if !strings.Contains(out, ".") {
		t.Errorf("dominated points not plotted:\n%s", out)
	}
	if !strings.Contains(out, "planes=4 ewlr=on rap=on") {
		t.Errorf("legend missing:\n%s", out)
	}
	if ParetoScatter("t", "x", "y", nil) != "" {
		t.Error("empty input rendered")
	}
	// A single point must not divide by a zero span.
	one := ParetoScatter("t", "x", "y", []ScatterPoint{{X: 1, Y: 1, Frontier: true, Label: "only"}})
	if !strings.Contains(one, "only") {
		t.Errorf("single-point scatter broken:\n%s", one)
	}
}

func TestChartDegenerate(t *testing.T) {
	empty := &Table{Title: "e", Header: []string{"k", "v"}}
	if empty.Chart() != "" {
		t.Error("empty table charted")
	}
	flat := &Table{Title: "f", Header: []string{"k", "v"},
		Rows: [][]string{{"a", "1.0"}, {"b", "1.0"}}}
	if flat.Chart() != "" {
		t.Error("flat table charted (no range)")
	}
	text := &Table{Title: "t", Header: []string{"k", "v"},
		Rows: [][]string{{"a", "hello"}}}
	if text.Chart() != "" {
		t.Error("text table charted")
	}
}

package exp

import (
	"strings"
	"testing"
)

func TestChartRendersNumericColumns(t *testing.T) {
	tbl := &Table{
		Title:  "demo",
		Header: []string{"mix", "a", "b"},
		Rows: [][]string{
			{"mix0", "1.000", "1.100"},
			{"mix1", "1.050", "1.150"},
		},
	}
	c := tbl.Chart()
	if c == "" {
		t.Fatal("empty chart")
	}
	for _, want := range []string{"mix0", "mix1", "a", "b", "#"} {
		if !strings.Contains(c, want) {
			t.Errorf("chart missing %q:\n%s", want, c)
		}
	}
	// The max value gets the longest bar.
	lines := strings.Split(c, "\n")
	maxHashes, maxLine := 0, ""
	for _, l := range lines {
		n := strings.Count(l, "#")
		if n > maxHashes {
			maxHashes, maxLine = n, l
		}
	}
	if !strings.Contains(maxLine, "1.15") {
		t.Errorf("longest bar is not the max value: %q", maxLine)
	}
}

func TestChartPercentCells(t *testing.T) {
	tbl := &Table{
		Title:  "pct",
		Header: []string{"planes", "x"},
		Rows:   [][]string{{"2", "45.6%"}, {"4", "3.6%"}},
	}
	if tbl.Chart() == "" {
		t.Error("percent cells not charted")
	}
}

func TestChartDegenerate(t *testing.T) {
	empty := &Table{Title: "e", Header: []string{"k", "v"}}
	if empty.Chart() != "" {
		t.Error("empty table charted")
	}
	flat := &Table{Title: "f", Header: []string{"k", "v"},
		Rows: [][]string{{"a", "1.0"}, {"b", "1.0"}}}
	if flat.Chart() != "" {
		t.Error("flat table charted (no range)")
	}
	text := &Table{Title: "t", Header: []string{"k", "v"},
		Rows: [][]string{{"a", "hello"}}}
	if text.Chart() != "" {
		t.Error("text table charted")
	}
}

package exp

import (
	"errors"
	"strings"
	"testing"

	"eruca/internal/check"
	"eruca/internal/config"
	"eruca/internal/diag"
	"eruca/internal/sim"
)

func testParams() Params {
	return Params{Instrs: 20_000, Seed: 7, Mixes: []string{"mix0"}, Parallel: 2}
}

// TestSweepSurvivesPanickingSimulator proves the panic barrier: a
// simulator implementation that panics on one system costs exactly one
// ERR cell, every other job completes, and the failure surfaces as a
// *SweepError wrapping a *diag.PanicError.
func TestSweepSurvivesPanickingSimulator(t *testing.T) {
	old := runSim
	defer func() { runSim = old }()
	runSim = func(opt sim.Options) (*sim.Result, error) {
		if opt.Sys.Name == "boom" {
			panic("simulated simulator bug")
		}
		return sim.Run(opt)
	}

	good := config.Baseline(config.DefaultBusMHz)
	bad := config.Baseline(config.DefaultBusMHz)
	bad.Name = "boom"

	r := NewRunner(testParams())
	tab, err := r.Sweep([]*config.System{good, bad}, 0.1)
	if tab == nil {
		t.Fatal("sweep must still produce a table")
	}
	var se *SweepError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *SweepError", err)
	}
	if len(se.Failures) != 1 {
		t.Fatalf("got %d failures, want 1: %v", len(se.Failures), se)
	}
	var pe *diag.PanicError
	if !errors.As(se.Failures[0].Err, &pe) {
		t.Fatalf("failure = %v, want *diag.PanicError", se.Failures[0].Err)
	}
	if !strings.Contains(se.Failures[0].Key, "boom") {
		t.Errorf("failure key %q should name the broken system", se.Failures[0].Key)
	}

	// The table renders the good cell normally and the bad cell as ERR.
	row := tab.Rows[0]
	if row[1] == "ERR" || row[1] == "" {
		t.Errorf("healthy system cell = %q, want a number", row[1])
	}
	if row[2] != "ERR" {
		t.Errorf("broken system cell = %q, want ERR", row[2])
	}
	if len(tab.Notes) == 0 || !strings.Contains(tab.Notes[len(tab.Notes)-1], "failed") {
		t.Errorf("table should note the failures: %v", tab.Notes)
	}
}

// TestSweepSurvivesBrokenConfiguration proves an invalid configuration
// (here: a geometry whose physical capacity cannot back the workload)
// degrades to a per-job error instead of killing the sweep.
func TestSweepSurvivesBrokenConfiguration(t *testing.T) {
	good := config.Baseline(config.DefaultBusMHz)
	bad := config.Baseline(config.DefaultBusMHz)
	bad.Name = "tiny-mem"
	bad.Geom.RowBits = 6 // ~exhausts physical memory immediately

	r := NewRunner(testParams())
	tab, err := r.Sweep([]*config.System{good, bad}, 0.1)
	if tab == nil {
		t.Fatal("sweep must still produce a table")
	}
	var se *SweepError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *SweepError", err)
	}
	row := tab.Rows[0]
	if row[1] == "ERR" {
		t.Error("healthy system should not be poisoned by the broken one")
	}
	if row[2] != "ERR" {
		t.Errorf("broken system cell = %q, want ERR", row[2])
	}
}

// TestSweepErrorFormatting pins the bounded multi-line rendering.
func TestSweepErrorFormatting(t *testing.T) {
	var se SweepError
	for i := 0; i < 12; i++ {
		se.Failures = append(se.Failures, JobFailure{
			Key: "sysX/mix0", Err: errors.New("kaput"),
		})
	}
	msg := se.Error()
	if !strings.HasPrefix(msg, "12 sweep job(s) failed:") {
		t.Errorf("unexpected header: %q", msg)
	}
	if !strings.Contains(msg, "and 4 more") {
		t.Errorf("long failure list should be elided: %q", msg)
	}
	if se.Unwrap() == nil {
		t.Error("Unwrap should expose the first failure")
	}
	if (&SweepError{}).Unwrap() != nil {
		t.Error("empty SweepError unwraps to nil")
	}
}

// TestLogModeSweepByteIdentical is the non-perturbation guarantee: the
// same sweep with the Log-mode checker enabled renders byte-identical
// tables to the unchecked run.
func TestLogModeSweepByteIdentical(t *testing.T) {
	systems := func() []*config.System {
		return []*config.System{
			config.Baseline(config.DefaultBusMHz),
			config.VSB(4, true, true, true, config.DefaultBusMHz),
		}
	}
	run := func(mode check.Mode) string {
		p := testParams()
		p.Check = mode
		tab, err := NewRunner(p).Sweep(systems(), 0.1)
		if err != nil {
			t.Fatalf("sweep with check=%v: %v", mode, err)
		}
		return tab.Format()
	}
	plain := run(check.Off)
	logged := run(check.Log)
	if plain != logged {
		t.Errorf("Log-mode checker perturbed the table:\n--- off ---\n%s--- log ---\n%s", plain, logged)
	}
}

// TestProtocolFeedCollectsLoggedViolations proves the sweep-level
// crash-dump feed: Log-mode violations recorded by any cached run are
// reported, keyed and sorted.
func TestProtocolFeedCollectsLoggedViolations(t *testing.T) {
	old := runSim
	defer func() { runSim = old }()
	runSim = func(opt sim.Options) (*sim.Result, error) {
		res, err := sim.Run(opt)
		if err == nil && opt.Check != nil && opt.Check.Mode == check.Log {
			res.Protocol = append(res.Protocol, &check.ProtocolError{
				Rule: "tFAW", Cycle: 42, Detail: "synthetic", Source: "audit",
			})
		}
		return res, err
	}
	p := testParams()
	p.Check = check.Log
	r := NewRunner(p)
	if _, err := r.Sweep([]*config.System{config.Baseline(config.DefaultBusMHz)}, 0.1); err != nil {
		t.Fatal(err)
	}
	feed := r.Protocol()
	if len(feed) == 0 {
		t.Fatal("Protocol() returned nothing")
	}
	for _, line := range feed {
		if !strings.Contains(line, "tFAW") {
			t.Errorf("feed line missing rule tag: %q", line)
		}
	}
}

package exp

import (
	"strings"
	"testing"

	"eruca/internal/telemetry"
)

// TestAttributionTable runs the mechanism-attribution ladder on a tiny
// budget and checks the invariants the headline table promises: one row
// per rung, the baseline pinned to exactly 1.000 with an empty Δprev,
// no ERR cells on a healthy configuration, and mechanism columns that
// only light up on the rungs whose mechanism is switched on.
func TestAttributionTable(t *testing.T) {
	p := Params{Instrs: 10_000, Seed: 7, Mixes: []string{"mix0"}}
	r := NewRunner(p)
	tbl, err := r.Attribution(4, 0.1)
	if err != nil {
		t.Fatalf("Attribution: %v", err)
	}
	if got, want := len(tbl.Rows), len(attributionLadder(4)); got != want {
		t.Fatalf("rows = %d, want %d (one per ladder rung)", got, want)
	}
	for _, row := range tbl.Rows {
		for _, cell := range row {
			if cell == "ERR" {
				t.Fatalf("ERR cell in healthy attribution sweep: %v", row)
			}
		}
	}
	base := tbl.Rows[0]
	if base[1] != "1.000" {
		t.Errorf("baseline normWS = %q, want \"1.000\"", base[1])
	}
	if base[2] != "" {
		t.Errorf("baseline Δprev = %q, want empty", base[2])
	}
	// Baseline DDR4 has no ERUCA mechanisms: those columns must be zero.
	for col, name := range map[int]string{3: "ewlr-hit", 4: "plane-conf", 6: "rap/kACT", 7: "ddb-ck/col"} {
		if !strings.HasPrefix(base[col], "0.0") && base[col] != "0.00" {
			t.Errorf("baseline %s = %q, want zero", name, base[col])
		}
	}
	// Every non-baseline rung carries a Δprev cell.
	for i, row := range tbl.Rows[1:] {
		if row[2] == "" {
			t.Errorf("rung %d (%s) missing Δprev", i+1, row[0])
		}
	}
	// The RAP rung must actually redirect; the naive rung must not.
	naive, rap := tbl.Rows[1], tbl.Rows[3]
	if naive[6] != "0.0" {
		t.Errorf("naive VSB rap/kACT = %q, want 0.0", naive[6])
	}
	if rap[6] == "0.0" {
		t.Error("RAP rung reports zero redirects")
	}
	// The VSB rungs see plane conflicts the baseline cannot.
	if naive[4] == "0.0%" {
		t.Error("naive VSB rung reports no plane-conflict precharges")
	}
}

// TestSweepBytesIdenticalWithTelemetry is the non-perturbation proof at
// the table level: the same sweep rendered with and without an attached
// telemetry set is byte-identical. This is what allows erucad to attach
// live counters to every job unconditionally.
func TestSweepBytesIdenticalWithTelemetry(t *testing.T) {
	mk := func(tel *telemetry.Set) string {
		p := Params{Instrs: 8_000, Seed: 7, Mixes: []string{"mix0"}, Telemetry: tel}
		r := NewRunner(p)
		tbl, err := r.Fig13a(0.1)
		if err != nil {
			t.Fatalf("Fig13a: %v", err)
		}
		return tbl.Format()
	}
	bare := mk(nil)
	tel := telemetry.New()
	traced := mk(tel)
	if bare != traced {
		t.Fatalf("sweep table differs with telemetry attached:\n--- bare ---\n%s\n--- traced ---\n%s", bare, traced)
	}
	if tel.C.Acts.Load() == 0 {
		t.Fatal("telemetry attached but saw no ACTs")
	}
}

// TestWithTelemetryView proves the derived-runner telemetry view feeds
// the given set while sharing the base runner's simulation cache.
func TestWithTelemetryView(t *testing.T) {
	p := Params{Instrs: 8_000, Seed: 7, Mixes: []string{"mix0"}}
	base := NewRunner(p)
	tel := telemetry.New()
	view := base.WithTelemetry(tel)
	sys := fig13Systems(4)[0]
	mix := view.Mixes()[0]
	if _, err := view.Result(sys, mix, 0.1); err != nil {
		t.Fatal(err)
	}
	if tel.C.Acts.Load() == 0 {
		t.Fatal("view simulation did not feed the telemetry set")
	}
	// The base runner shares the cache: a second call through the base
	// must not re-simulate (and so adds no counters).
	before := tel.C.Acts.Load()
	if _, err := base.Result(sys, mix, 0.1); err != nil {
		t.Fatal(err)
	}
	if got := tel.C.Acts.Load(); got != before {
		t.Errorf("cached result re-fed telemetry: %d -> %d", before, got)
	}
}

package exp

import (
	"fmt"

	"eruca/internal/area"
	"eruca/internal/config"
	"eruca/internal/sim"
)

// Repair renders the row-repair flexibility model (Sec. III-A): die
// yield and relative repair effectiveness versus plane count, the
// manufacturability argument for keeping plane counts low.
func Repair() *Table {
	const (
		spares = 64
		banks  = 16
		lambda = 24.0
	)
	t := &Table{
		Title:  "Row-repair flexibility vs plane count (64 spares/bank, Poisson(24) defects)",
		Header: []string{"planes", "die yield", "relative effectiveness"},
	}
	for _, p := range []int{1, 2, 4, 8, 16} {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(p),
			fmt.Sprintf("%.3f", area.RepairYield(p, spares, banks, lambda)),
			fmt.Sprintf("%.2f", area.RelativeRepairEffectiveness(p, spares, banks, lambda)),
		})
	}
	t.Notes = append(t.Notes,
		"Paper (Sec. VIII): \"row repair is twice more effective [with 2 planes] than with 4 planes\" —",
		"partitioned spares can only cover defects in their own plane.")
	return t
}

// GDDR5 reproduces the Sec. V aside qualitatively: on a GDDR5-like part
// (same DDR4 arrays behind a much faster channel) driving bandwidth-
// hungry streaming workloads, the non-Combo DDB (group-pair switches)
// recovers throughput the bank-group bus leaves on the table. The paper
// reports ~10% on memory-intensive Rodinia kernels over GPGPU-Sim.
func (r *Runner) GDDR5(frag float64) (*Table, error) {
	const busMHz = 3500 // 7Gb/s/pin GDDR5
	// Group-hot streams: the imbalance DDB absorbs (Sec. V).
	streams := []string{"micro-grouphot", "micro-grouphot", "micro-grouphot", "micro-grouphot"}

	base := config.Baseline(busMHz)
	base.Name = "GDDR5-like(BG)"

	// Same 16-bank device, only the bus differs: group-pair DDB switches.
	pairs := config.Baseline(busMHz)
	pairs.Name = "GDDR5-like(DDB pairs)"
	pairs.Scheme.DDB = true
	pairs.Scheme.DDBGroupPairs = true

	t := &Table{
		Title:  fmt.Sprintf("Sec. V extension: non-Combo DDB on a GDDR5-like channel (%.1fGHz, FMFI %.0f%%)", busMHz/1000.0, frag*100),
		Header: []string{"system", "bus cycles", "speedup", "qlat mean (ns)"},
	}
	var baseCycles int64
	for _, sys := range []*config.System{base, pairs} {
		r.logf("gddr5 %s", sys.Name)
		res, err := sim.Run(sim.Options{
			Sys: sys, Benches: streams, Instrs: r.p.Instrs, Warmup: r.p.Warmup,
			Frag: frag, Seed: r.p.Seed,
		})
		if err != nil {
			return nil, err
		}
		if baseCycles == 0 {
			baseCycles = res.BusCycles
		}
		t.Rows = append(t.Rows, []string{
			sys.Name,
			fmt.Sprint(res.BusCycles),
			fmt.Sprintf("%+.1f%%", (float64(baseCycles)/float64(res.BusCycles)-1)*100),
			f1(res.QueueLat.Mean()),
		})
	}
	t.Notes = append(t.Notes,
		"Paper: \"we conducted preliminary experiments with such a GDDR5 ... and observed 10% speedup",
		"on memory-intensive applications\"; full GPU evaluation is left to future work there too.")
	return t, nil
}

package exp

import (
	"fmt"
	"strconv"
	"strings"
)

// Chart renders the table's numeric columns as horizontal bar charts,
// one block per row group, so figure-shaped results read as figures in a
// terminal. Cells that do not parse as numbers (including trailing '%')
// are skipped. The scale runs from the smallest to the largest value
// across all numeric cells.
func (t *Table) Chart() string {
	type bar struct {
		label string
		col   string
		v     float64
	}
	var bars []bar
	min, max := 0.0, 0.0
	first := true
	for _, row := range t.Rows {
		for i, cell := range row {
			if i == 0 || i >= len(t.Header) {
				continue
			}
			v, ok := parseNumeric(cell)
			if !ok {
				continue
			}
			bars = append(bars, bar{label: row[0], col: t.Header[i], v: v})
			if first || v < min {
				min = v
			}
			if first || v > max {
				max = v
			}
			first = false
		}
	}
	if len(bars) == 0 || max == min {
		return ""
	}

	const width = 42
	var b strings.Builder
	fmt.Fprintf(&b, "%s [%.3g .. %.3g]\n", t.Title, min, max)
	lastLabel := ""
	for _, bb := range bars {
		if bb.label != lastLabel {
			fmt.Fprintf(&b, "%s\n", bb.label)
			lastLabel = bb.label
		}
		n := int((bb.v - min) / (max - min) * width)
		fmt.Fprintf(&b, "  %-28s |%s%s| %s\n",
			truncate(bb.col, 28), strings.Repeat("#", n), strings.Repeat(" ", width-n),
			strconv.FormatFloat(bb.v, 'g', 4, 64))
	}
	return b.String()
}

func parseNumeric(cell string) (float64, bool) {
	s := strings.TrimSuffix(strings.TrimSpace(cell), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

package exp

import (
	"fmt"
	"strconv"
	"strings"
)

// Chart renders the table's numeric columns as horizontal bar charts,
// one block per row group, so figure-shaped results read as figures in a
// terminal. Cells that do not parse as numbers (including trailing '%')
// are skipped. The scale runs from the smallest to the largest value
// across all numeric cells.
func (t *Table) Chart() string {
	type bar struct {
		label string
		col   string
		v     float64
	}
	var bars []bar
	min, max := 0.0, 0.0
	first := true
	for _, row := range t.Rows {
		for i, cell := range row {
			if i == 0 || i >= len(t.Header) {
				continue
			}
			v, ok := parseNumeric(cell)
			if !ok {
				continue
			}
			bars = append(bars, bar{label: row[0], col: t.Header[i], v: v})
			if first || v < min {
				min = v
			}
			if first || v > max {
				max = v
			}
			first = false
		}
	}
	if len(bars) == 0 || max == min {
		return ""
	}

	const width = 42
	var b strings.Builder
	fmt.Fprintf(&b, "%s [%.3g .. %.3g]\n", t.Title, min, max)
	lastLabel := ""
	for _, bb := range bars {
		if bb.label != lastLabel {
			fmt.Fprintf(&b, "%s\n", bb.label)
			lastLabel = bb.label
		}
		n := int((bb.v - min) / (max - min) * width)
		fmt.Fprintf(&b, "  %-28s |%s%s| %s\n",
			truncate(bb.col, 28), strings.Repeat("#", n), strings.Repeat(" ", width-n),
			strconv.FormatFloat(bb.v, 'g', 4, 64))
	}
	return b.String()
}

// ScatterPoint is one point of a ParetoScatter: an (X, Y) objective
// pair, whether it sits on the Pareto frontier, and a label for the
// legend.
type ScatterPoint struct {
	X, Y     float64
	Frontier bool
	Label    string
}

// ParetoScatter renders an ASCII scatter plot of the given points —
// the autotuner's IPC-vs-energy view. Frontier points are drawn as
// '*' and listed in a numbered legend; dominated points are '.'.
// When two points land on the same cell the frontier glyph wins.
// Output is deterministic: rows render top to bottom, the legend in
// input order.
func ParetoScatter(title, xlabel, ylabel string, pts []ScatterPoint) string {
	if len(pts) == 0 {
		return ""
	}
	const w, h = 56, 16
	minX, maxX := pts[0].X, pts[0].X
	minY, maxY := pts[0].Y, pts[0].Y
	for _, p := range pts {
		if p.X < minX {
			minX = p.X
		}
		if p.X > maxX {
			maxX = p.X
		}
		if p.Y < minY {
			minY = p.Y
		}
		if p.Y > maxY {
			maxY = p.Y
		}
	}
	spanX, spanY := maxX-minX, maxY-minY
	cell := func(v, min, span float64, n int) int {
		if span == 0 {
			return 0
		}
		i := int((v - min) / span * float64(n-1))
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		return i
	}

	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	for _, p := range pts {
		x := cell(p.X, minX, spanX, w)
		y := cell(p.Y, minY, spanY, h)
		c := byte('.')
		if p.Frontier {
			c = '*'
		}
		row := h - 1 - y // Y grows upward
		if grid[row][x] != '*' {
			grid[row][x] = c
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%s [%.4g .. %.4g] vs %s [%.4g .. %.4g]\n", ylabel, minY, maxY, xlabel, minX, maxX)
	for _, row := range grid {
		fmt.Fprintf(&b, "  |%s|\n", row)
	}
	fmt.Fprintf(&b, "  +%s+\n", strings.Repeat("-", w))
	for i, p := range pts {
		if !p.Frontier || p.Label == "" {
			continue
		}
		fmt.Fprintf(&b, "  * [%2d] %-44s %s=%.4g %s=%.4g\n", i+1, truncate(p.Label, 44), xlabel, p.X, ylabel, p.Y)
	}
	return b.String()
}

func parseNumeric(cell string) (float64, bool) {
	s := strings.TrimSuffix(strings.TrimSpace(cell), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// Package exp regenerates every table and figure of the paper's
// evaluation (Sec. VII-VIII). Each experiment is a function on a Runner,
// which caches simulation results and alone-run IPCs so that figures
// sharing configurations do not re-simulate.
//
// Metrics follow the paper: multiprogrammed performance is weighted
// speedup (sum of IPC_shared / IPC_alone, with IPC_alone measured on the
// baseline DDR4 system), normalized to baseline DDR4 at the same channel
// frequency and fragmentation level; summary rows are geometric means.
package exp

import (
	"fmt"
	"strings"

	"eruca/internal/config"
	"eruca/internal/sim"
	"eruca/internal/stats"
	"eruca/internal/workload"
)

// Params scales the experiments. The paper simulates 200M instructions
// per mix; these defaults are sized for minutes-long runs that preserve
// the result shape.
type Params struct {
	// Instrs is the measured instruction budget per core.
	Instrs int64
	// Warmup instructions run before measurement (default Instrs/2).
	Warmup int64
	// Seed drives all randomness.
	Seed int64
	// Mixes restricts the workload mixes (nil = all nine of Tab. III).
	Mixes []string
	// Log receives progress lines (nil = silent).
	Log func(string)
}

// DefaultParams returns the harness defaults.
func DefaultParams() Params {
	return Params{Instrs: 250_000, Seed: 42}
}

// Runner executes and caches simulations.
type Runner struct {
	p     Params
	cache map[string]*sim.Result
	alone map[string]float64
}

// NewRunner builds a Runner.
func NewRunner(p Params) *Runner {
	if p.Instrs <= 0 {
		p.Instrs = DefaultParams().Instrs
	}
	return &Runner{p: p, cache: make(map[string]*sim.Result), alone: make(map[string]float64)}
}

func (r *Runner) logf(format string, args ...any) {
	if r.p.Log != nil {
		r.p.Log(fmt.Sprintf(format, args...))
	}
}

// Mixes returns the configured workload mixes.
func (r *Runner) Mixes() []workload.Mix {
	all := workload.Mixes()
	if len(r.p.Mixes) == 0 {
		return all
	}
	var out []workload.Mix
	for _, name := range r.p.Mixes {
		for _, m := range all {
			if m.Name == name {
				out = append(out, m)
			}
		}
	}
	return out
}

func sysKey(sys *config.System) string {
	return fmt.Sprintf("%s/p%d/%.0fMHz", sys.Name, sys.Scheme.Planes, sys.Bus.FreqMHz())
}

// Result runs (or recalls) one mix on one system at one fragmentation.
func (r *Runner) Result(sys *config.System, mix workload.Mix, frag float64) (*sim.Result, error) {
	key := fmt.Sprintf("%s|%s|%.2f", sysKey(sys), mix.Name, frag)
	if res, ok := r.cache[key]; ok {
		return res, nil
	}
	r.logf("run %-34s %s frag=%.1f", sysKey(sys), mix.Name, frag)
	res, err := sim.Run(sim.Options{
		Sys: sys, Benches: mix.Bench, Instrs: r.p.Instrs, Warmup: r.p.Warmup,
		Frag: frag, Seed: r.p.Seed,
	})
	if err != nil {
		return nil, err
	}
	r.cache[key] = res
	return res, nil
}

// AloneIPC measures a benchmark's IPC running alone on baseline DDR4 at
// the given channel frequency and fragmentation (the weighted-speedup
// denominator).
func (r *Runner) AloneIPC(bench string, frag, busMHz float64) (float64, error) {
	key := fmt.Sprintf("%s|%.2f|%.0f", bench, frag, busMHz)
	if v, ok := r.alone[key]; ok {
		return v, nil
	}
	r.logf("alone %-12s frag=%.1f bus=%.0f", bench, frag, busMHz)
	res, err := sim.Run(sim.Options{
		Sys: config.Baseline(busMHz), Benches: []string{bench},
		Instrs: r.p.Instrs, Warmup: r.p.Warmup, Frag: frag, Seed: r.p.Seed,
	})
	if err != nil {
		return 0, err
	}
	r.alone[key] = res.IPC[0]
	return res.IPC[0], nil
}

// WS computes the weighted speedup of one mix on one system.
func (r *Runner) WS(sys *config.System, mix workload.Mix, frag float64) (float64, error) {
	res, err := r.Result(sys, mix, frag)
	if err != nil {
		return 0, err
	}
	aloneIPC := make([]float64, len(mix.Bench))
	for i, b := range mix.Bench {
		a, err := r.AloneIPC(b, frag, sys.Bus.FreqMHz())
		if err != nil {
			return 0, err
		}
		aloneIPC[i] = a
	}
	return stats.WeightedSpeedup(res.IPC, aloneIPC), nil
}

// NormWS computes WS normalized to baseline DDR4 at the same channel
// frequency and fragmentation.
func (r *Runner) NormWS(sys *config.System, mix workload.Mix, frag float64) (float64, error) {
	ws, err := r.WS(sys, mix, frag)
	if err != nil {
		return 0, err
	}
	base, err := r.WS(config.Baseline(sys.Bus.FreqMHz()), mix, frag)
	if err != nil {
		return 0, err
	}
	return stats.Ratio(ws, base), nil
}

// GMeanNormWS is the geometric mean of NormWS across the configured
// mixes — the GMEAN bars of Figs. 12-15.
func (r *Runner) GMeanNormWS(sys *config.System, frag float64) (float64, error) {
	var vals []float64
	for _, mix := range r.Mixes() {
		v, err := r.NormWS(sys, mix, frag)
		if err != nil {
			return 0, err
		}
		vals = append(vals, v)
	}
	return stats.GeoMean(vals), nil
}

// Table is a generic formatted result: a header row plus data rows.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s\n\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n%s\n", n)
	}
	return b.String()
}

func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// Package exp regenerates every table and figure of the paper's
// evaluation (Sec. VII-VIII). Each experiment is a function on a Runner,
// which caches simulation results and alone-run IPCs so that figures
// sharing configurations do not re-simulate.
//
// The Runner executes independent simulations in parallel: each figure
// expands its sweep into a grid of (system, mix) jobs whose dependencies
// (shared run, per-benchmark alone runs, baseline run) deduplicate
// through singleflight caches, and a worker semaphore bounds the number
// of simulations in flight (Params.Parallel, default GOMAXPROCS). The
// table-building pass itself stays serial and reads only the warmed
// caches, so output is byte-identical at every parallelism level.
//
// Metrics follow the paper: multiprogrammed performance is weighted
// speedup (sum of IPC_shared / IPC_alone, with IPC_alone measured on the
// baseline DDR4 system), normalized to baseline DDR4 at the same channel
// frequency and fragmentation level; summary rows are geometric means.
package exp

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"eruca/internal/check"
	"eruca/internal/config"
	"eruca/internal/faults"
	"eruca/internal/sim"
	"eruca/internal/stats"
	"eruca/internal/workload"
)

// Params scales the experiments. The paper simulates 200M instructions
// per mix; these defaults are sized for minutes-long runs that preserve
// the result shape.
type Params struct {
	// Instrs is the measured instruction budget per core.
	Instrs int64
	// Warmup instructions run before measurement (default Instrs/2).
	Warmup int64
	// Seed drives all randomness.
	Seed int64
	// Mixes restricts the workload mixes (nil = all nine of Tab. III).
	Mixes []string
	// Log receives progress lines (nil = silent). The Runner serializes
	// calls, so the callback needs no locking of its own.
	Log func(string)
	// Parallel bounds the number of concurrently running simulations
	// (0 = GOMAXPROCS). Every table is byte-identical at any setting;
	// only wall-clock time and the order of progress lines change.
	Parallel int
	// Check selects the protocol-checker mode applied to every
	// simulation (Off by default; Log is guaranteed not to perturb the
	// tables).
	Check check.Mode
	// Watchdog, when non-nil, arms the liveness monitors on every
	// simulation.
	Watchdog *sim.Watchdog
	// Faults, when non-nil, schedules fault injection in every
	// simulation (chaos sweeps; each run clones the plan).
	Faults *faults.Plan
}

// DefaultParams returns the harness defaults.
func DefaultParams() Params {
	return Params{Instrs: 250_000, Seed: 42}
}

// flight is one singleflight cache entry: the first caller of a key
// becomes the leader and runs the simulation; everyone else blocks on
// done and shares the result. Entries are never removed, so the filled
// flight doubles as the cache record.
type flight[T any] struct {
	done chan struct{}
	val  T
	err  error
}

// Runner executes and caches simulations. All methods are safe for
// concurrent use: results are deduplicated through singleflight caches
// (one in-flight simulation per key, late arrivals block and share),
// and a semaphore bounds the number of simulations running at once.
type Runner struct {
	p        Params
	parallel int
	// sem is the worker pool: a slot is held only while sim.Run
	// executes, never while waiting on another flight, so dependency
	// chains (weighted speedup needs alone-IPC runs) cannot deadlock.
	sem chan struct{}

	mu    sync.Mutex // guards cache and alone
	cache map[string]*flight[*sim.Result]
	alone map[string]*flight[float64]

	jobs  atomic.Int64 // log-prefix sequence for launched simulations
	logMu sync.Mutex
}

// NewRunner builds a Runner.
func NewRunner(p Params) *Runner {
	if p.Instrs <= 0 {
		p.Instrs = DefaultParams().Instrs
	}
	par := p.Parallel
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	return &Runner{
		p:        p,
		parallel: par,
		sem:      make(chan struct{}, par),
		cache:    make(map[string]*flight[*sim.Result]),
		alone:    make(map[string]*flight[float64]),
	}
}

// Parallel reports the configured worker-pool width.
func (r *Runner) Parallel() int { return r.parallel }

func (r *Runner) logf(format string, args ...any) {
	if r.p.Log == nil {
		return
	}
	msg := fmt.Sprintf(format, args...)
	r.logMu.Lock()
	defer r.logMu.Unlock()
	r.p.Log(msg)
}

// logJob emits one progress line for a newly launched simulation with a
// stable per-job sequence prefix, so interleaved parallel output stays
// attributable.
func (r *Runner) logJob(format string, args ...any) {
	if r.p.Log == nil {
		return
	}
	n := r.jobs.Add(1)
	r.logf("[%3d] %s", n, fmt.Sprintf(format, args...))
}

// warm evaluates the given cache-warming thunks concurrently (bounded
// by the worker semaphore inside Result/AloneIPC) and waits for all of
// them. Errors are deliberately dropped here: the serial table-building
// pass re-reads the same cache entries and reports the first failure in
// deterministic order. With Parallel <= 1 it is a no-op — the serial
// pass does all the work, exactly as before.
func (r *Runner) warm(fns []func()) {
	if r.parallel <= 1 || len(fns) < 2 {
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(fns))
	for _, fn := range fns {
		go func(f func()) {
			defer wg.Done()
			f()
		}(fn)
	}
	wg.Wait()
}

// warmNormWS pre-computes NormWS for every (system, mix) pair of the
// grid in parallel — the expansion step of the figure DAG: each thunk
// pulls in the shared run, the per-benchmark alone runs and the
// baseline run through the singleflight caches.
func (r *Runner) warmNormWS(systems []*config.System, frag float64) {
	var fns []func()
	for _, sys := range systems {
		for _, mix := range r.Mixes() {
			sys, mix := sys, mix
			fns = append(fns, func() { _, _ = r.NormWS(sys, mix, frag) })
		}
	}
	r.warm(fns)
}

// warmResults pre-computes raw Results for every (system, mix) pair.
func (r *Runner) warmResults(systems []*config.System, frag float64) {
	var fns []func()
	for _, sys := range systems {
		for _, mix := range r.Mixes() {
			sys, mix := sys, mix
			fns = append(fns, func() { _, _ = r.Result(sys, mix, frag) })
		}
	}
	r.warm(fns)
}

// Mixes returns the configured workload mixes.
func (r *Runner) Mixes() []workload.Mix {
	all := workload.Mixes()
	if len(r.p.Mixes) == 0 {
		return all
	}
	var out []workload.Mix
	for _, name := range r.p.Mixes {
		for _, m := range all {
			if m.Name == name {
				out = append(out, m)
			}
		}
	}
	return out
}

func sysKey(sys *config.System) string {
	return fmt.Sprintf("%s/p%d/%.0fMHz", sys.Name, sys.Scheme.Planes, sys.Bus.FreqMHz())
}

// Result runs (or recalls) one mix on one system at one fragmentation.
// Concurrent callers with the same key share a single simulation.
func (r *Runner) Result(sys *config.System, mix workload.Mix, frag float64) (*sim.Result, error) {
	key := fmt.Sprintf("%s|%s|%.2f", sysKey(sys), mix.Name, frag)
	r.mu.Lock()
	if f, ok := r.cache[key]; ok {
		r.mu.Unlock()
		<-f.done
		return f.val, f.err
	}
	f := &flight[*sim.Result]{done: make(chan struct{})}
	r.cache[key] = f
	r.mu.Unlock()
	defer close(f.done)

	r.sem <- struct{}{}
	defer func() { <-r.sem }()
	r.logJob("run %-34s %s frag=%.1f", sysKey(sys), mix.Name, frag)
	f.val, f.err = r.run(sim.Options{
		Sys: sys, Benches: mix.Bench, Instrs: r.p.Instrs, Warmup: r.p.Warmup,
		Frag: frag, Seed: r.p.Seed,
	})
	return f.val, f.err
}

// AloneIPC measures a benchmark's IPC running alone on baseline DDR4 at
// the given channel frequency and fragmentation (the weighted-speedup
// denominator). Concurrent callers with the same key share a single
// simulation.
func (r *Runner) AloneIPC(bench string, frag, busMHz float64) (float64, error) {
	key := fmt.Sprintf("%s|%.2f|%.0f", bench, frag, busMHz)
	r.mu.Lock()
	if f, ok := r.alone[key]; ok {
		r.mu.Unlock()
		<-f.done
		return f.val, f.err
	}
	f := &flight[float64]{done: make(chan struct{})}
	r.alone[key] = f
	r.mu.Unlock()
	defer close(f.done)

	r.sem <- struct{}{}
	defer func() { <-r.sem }()
	r.logJob("alone %-12s frag=%.1f bus=%.0f", bench, frag, busMHz)
	res, err := r.run(sim.Options{
		Sys: config.Baseline(busMHz), Benches: []string{bench},
		Instrs: r.p.Instrs, Warmup: r.p.Warmup, Frag: frag, Seed: r.p.Seed,
	})
	if err != nil {
		f.err = err
		return 0, err
	}
	f.val = res.IPC[0]
	return f.val, nil
}

// WS computes the weighted speedup of one mix on one system.
func (r *Runner) WS(sys *config.System, mix workload.Mix, frag float64) (float64, error) {
	res, err := r.Result(sys, mix, frag)
	if err != nil {
		return 0, err
	}
	aloneIPC := make([]float64, len(mix.Bench))
	for i, b := range mix.Bench {
		a, err := r.AloneIPC(b, frag, sys.Bus.FreqMHz())
		if err != nil {
			return 0, err
		}
		aloneIPC[i] = a
	}
	return stats.WeightedSpeedup(res.IPC, aloneIPC), nil
}

// NormWS computes WS normalized to baseline DDR4 at the same channel
// frequency and fragmentation.
func (r *Runner) NormWS(sys *config.System, mix workload.Mix, frag float64) (float64, error) {
	ws, err := r.WS(sys, mix, frag)
	if err != nil {
		return 0, err
	}
	base, err := r.WS(config.Baseline(sys.Bus.FreqMHz()), mix, frag)
	if err != nil {
		return 0, err
	}
	return stats.Ratio(ws, base), nil
}

// GMeanNormWS is the geometric mean of NormWS across the configured
// mixes — the GMEAN bars of Figs. 12-15.
func (r *Runner) GMeanNormWS(sys *config.System, frag float64) (float64, error) {
	r.warmNormWS([]*config.System{sys}, frag)
	var vals []float64
	for _, mix := range r.Mixes() {
		v, err := r.NormWS(sys, mix, frag)
		if err != nil {
			return 0, err
		}
		vals = append(vals, v)
	}
	return stats.GeoMean(vals), nil
}

// Table is a generic formatted result: a header row plus data rows.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s\n\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n%s\n", n)
	}
	return b.String()
}

func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// Package exp regenerates every table and figure of the paper's
// evaluation (Sec. VII-VIII). Each experiment is a function on a Runner,
// which caches simulation results and alone-run IPCs so that figures
// sharing configurations do not re-simulate.
//
// The Runner executes independent simulations in parallel: each figure
// expands its sweep into a grid of (system, mix) jobs whose dependencies
// (shared run, per-benchmark alone runs, baseline run) deduplicate
// through singleflight caches, and a worker semaphore bounds the number
// of simulations in flight (Params.Parallel, default GOMAXPROCS). The
// table-building pass itself stays serial and reads only the warmed
// caches, so output is byte-identical at every parallelism level.
//
// Metrics follow the paper: multiprogrammed performance is weighted
// speedup (sum of IPC_shared / IPC_alone, with IPC_alone measured on the
// baseline DDR4 system), normalized to baseline DDR4 at the same channel
// frequency and fragmentation level; summary rows are geometric means.
package exp

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"eruca/internal/check"
	"eruca/internal/config"
	"eruca/internal/faults"
	"eruca/internal/sim"
	"eruca/internal/stats"
	"eruca/internal/telemetry"
	"eruca/internal/workload"
)

// Params scales the experiments. The paper simulates 200M instructions
// per mix; these defaults are sized for minutes-long runs that preserve
// the result shape.
type Params struct {
	// Instrs is the measured instruction budget per core.
	Instrs int64
	// Warmup instructions run before measurement (default Instrs/2).
	Warmup int64
	// Seed drives all randomness.
	Seed int64
	// Mixes restricts the workload mixes (nil = all nine of Tab. III).
	Mixes []string
	// Log receives progress lines (nil = silent). The Runner serializes
	// calls, so the callback needs no locking of its own.
	Log func(string)
	// Parallel bounds the number of concurrently running simulations
	// (0 = GOMAXPROCS). Every table is byte-identical at any setting;
	// only wall-clock time and the order of progress lines change.
	Parallel int
	// Check selects the protocol-checker mode applied to every
	// simulation (Off by default; Log is guaranteed not to perturb the
	// tables).
	Check check.Mode
	// Watchdog, when non-nil, arms the liveness monitors on every
	// simulation.
	Watchdog *sim.Watchdog
	// Faults, when non-nil, schedules fault injection in every
	// simulation (chaos sweeps; each run clones the plan).
	Faults *faults.Plan
	// Telemetry, when non-nil, attaches the event tracer and mechanism
	// counter registry to every simulation the Runner launches. Purely
	// observational: tables stay byte-identical with it on or off. Note
	// that cached or deduplicated results contribute no fresh events —
	// the Set sees only simulations that actually execute.
	Telemetry *telemetry.Set
	// Ckpt, when non-nil, makes every launched simulation crash-safe:
	// periodic state checkpoints flow to Ckpt.Save keyed by the
	// simulation's cache key, and each launch first offers Ckpt.Load a
	// chance to resume from a previous checkpoint. Tables stay
	// byte-identical with the policy on or off (checkpoints never
	// perturb a run, and a resumed run reproduces the uninterrupted
	// one exactly).
	Ckpt *CheckpointPolicy
}

// DefaultParams returns the harness defaults.
func DefaultParams() Params {
	return Params{Instrs: 250_000, Seed: 42}
}

// flight is one singleflight cache entry: the first caller of a key
// becomes the leader and runs the simulation; everyone else blocks on
// done and shares the result. Completed entries stay in the map, so the
// filled flight doubles as the cache record — except canceled flights,
// which the leader evicts before publishing so later callers re-run
// instead of inheriting a stale cancellation.
//
// Each waiter (the leader and every context-carrying joiner) holds one
// reference; a waiter whose context fires releases its reference, and
// when the last reference drops the in-flight simulation itself is
// canceled. Callers without a context never release, so a plain
// library-style call keeps the run alive no matter how many impatient
// joiners abandon it.
type flight[T any] struct {
	done chan struct{}
	val  T
	err  error

	mu      sync.Mutex
	waiters int
	cancel  context.CancelFunc
}

// join registers one more waiter.
func (f *flight[T]) join() {
	f.mu.Lock()
	f.waiters++
	f.mu.Unlock()
}

// leave drops one waiter; the last one out cancels the run.
func (f *flight[T]) leave() {
	f.mu.Lock()
	f.waiters--
	if f.waiters == 0 && f.cancel != nil {
		f.cancel()
	}
	f.mu.Unlock()
}

// await blocks until the flight completes or ctx fires. A nil ctx waits
// unconditionally (the pre-context behavior, bit for bit).
func (f *flight[T]) await(ctx context.Context) (T, error) {
	if ctx == nil {
		// A permanent reference: a nil-ctx caller can never abandon the
		// flight, so the run stays alive however many context-carrying
		// joiners give up.
		f.join()
		<-f.done
		return f.val, f.err
	}
	select {
	case <-f.done:
		return f.val, f.err
	default:
	}
	f.join()
	stop := context.AfterFunc(ctx, f.leave)
	select {
	case <-f.done:
		stop() // if the AfterFunc already ran, leave() was already paid
		return f.val, f.err
	case <-ctx.Done():
		var zero T
		return zero, ctx.Err()
	}
}

// canceled reports whether err is a context cancellation or deadline.
func canceled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// lead runs fn as the flight's leader: it takes a worker slot, executes
// under a context that fires only when every waiter has left, publishes
// the outcome and wakes the joiners. evict removes the flight from its
// cache map; it is invoked (before done closes) when the run ends
// canceled.
func lead[T any](r *Runner, f *flight[T], evict func(), fn func(ctx context.Context) (T, error)) (T, error) {
	defer close(f.done)
	runCtx, runCancel := context.WithCancel(context.Background())
	defer runCancel()
	f.mu.Lock()
	f.cancel = runCancel
	f.mu.Unlock()
	var stop func() bool
	if r.ctx != nil {
		stop = context.AfterFunc(r.ctx, f.leave)
		defer stop()
	}

	// Take a worker slot, abandoning the queue position if every waiter
	// (including this leader) gives up first.
	select {
	case r.sh.sem <- struct{}{}:
	case <-runCtx.Done():
		evict()
		f.err = context.Cause(runCtx)
		if f.err == nil {
			f.err = context.Canceled
		}
		return f.val, f.err
	}
	defer func() { <-r.sh.sem }()

	r.sh.launched.Add(1)
	f.val, f.err = fn(runCtx)
	if f.err != nil && canceled(f.err) {
		evict()
	}
	return f.val, f.err
}

// shared is the state common to a Runner and every derived view
// (WithContext/WithLog): the worker semaphore, both singleflight
// caches, and the instrumentation counters.
type shared struct {
	parallel int
	// sem is the worker pool: a slot is held only while sim.Run
	// executes, never while waiting on another flight, so dependency
	// chains (weighted speedup needs alone-IPC runs) cannot deadlock.
	sem chan struct{}

	mu    sync.Mutex // guards cache and alone
	cache map[string]*flight[*sim.Result]
	alone map[string]*flight[float64]

	jobs  atomic.Int64 // log-prefix sequence for launched simulations
	logMu sync.Mutex

	launched atomic.Int64 // simulations actually executed
	joined   atomic.Int64 // calls served by an existing flight (dedup)
}

// Runner executes and caches simulations. All methods are safe for
// concurrent use: results are deduplicated through singleflight caches
// (one in-flight simulation per key, late arrivals block and share),
// and a semaphore bounds the number of simulations running at once.
//
// A Runner value is a view onto shared state: WithContext and WithLog
// return derived Runners that reuse the same caches, worker pool and
// counters, so a long-lived daemon can hand every request its own
// cancellation scope and progress sink while concurrent duplicate
// requests still collapse to one simulation.
type Runner struct {
	p   Params
	ctx context.Context // nil = not cancelable
	sh  *shared
}

// NewRunner builds a Runner.
func NewRunner(p Params) *Runner {
	if p.Instrs <= 0 {
		p.Instrs = DefaultParams().Instrs
	}
	par := p.Parallel
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	return &Runner{
		p: p,
		sh: &shared{
			parallel: par,
			sem:      make(chan struct{}, par),
			cache:    make(map[string]*flight[*sim.Result]),
			alone:    make(map[string]*flight[float64]),
		},
	}
}

// WithContext returns a view of the Runner whose simulations are bounded
// by ctx: cancellation stops the caller's wait immediately and stops the
// underlying simulation once no other caller still wants it. The view
// shares the caches, worker pool and counters of its parent.
func (r *Runner) WithContext(ctx context.Context) *Runner {
	nr := *r
	nr.ctx = ctx
	return &nr
}

// WithLog returns a view of the Runner with its own progress sink. Log
// lines for a simulation go to the sink of the view that actually
// launched it (joiners of an in-flight run stay silent), so a daemon
// gets per-request attribution without forking the caches.
func (r *Runner) WithLog(fn func(string)) *Runner {
	nr := *r
	nr.p.Log = fn
	return &nr
}

// WithTelemetry returns a view of the Runner whose simulations feed the
// given telemetry Set. Like WithLog, the Set of the view that actually
// launches a simulation wins; joiners of an in-flight or cached run see
// its result but contribute no fresh events or counter increments.
func (r *Runner) WithTelemetry(t *telemetry.Set) *Runner {
	nr := *r
	nr.p.Telemetry = t
	return &nr
}

// WithCheckpoint returns a view of the Runner whose simulations run
// under the given checkpoint policy (see Params.Ckpt). Like WithLog,
// the policy of the view that actually launches a simulation wins;
// joiners of an in-flight or cached run trigger no checkpoint traffic.
func (r *Runner) WithCheckpoint(p *CheckpointPolicy) *Runner {
	nr := *r
	nr.p.Ckpt = p
	return &nr
}

// Parallel reports the configured worker-pool width.
func (r *Runner) Parallel() int { return r.sh.parallel }

// Counters reports how many simulations were actually executed and how
// many calls were served by an existing flight (in-flight join or cache
// hit) instead — the dedup evidence a service exports as metrics.
func (r *Runner) Counters() (launched, joined int64) {
	return r.sh.launched.Load(), r.sh.joined.Load()
}

func (r *Runner) logf(format string, args ...any) {
	if r.p.Log == nil {
		return
	}
	msg := fmt.Sprintf(format, args...)
	r.sh.logMu.Lock()
	defer r.sh.logMu.Unlock()
	r.p.Log(msg)
}

// logJob emits one progress line for a newly launched simulation with a
// stable per-job sequence prefix, so interleaved parallel output stays
// attributable.
func (r *Runner) logJob(format string, args ...any) {
	if r.p.Log == nil {
		return
	}
	n := r.sh.jobs.Add(1)
	r.logf("[%3d] %s", n, fmt.Sprintf(format, args...))
}

// warm evaluates the given cache-warming thunks concurrently (bounded
// by the worker semaphore inside Result/AloneIPC) and waits for all of
// them. Errors are deliberately dropped here: the serial table-building
// pass re-reads the same cache entries and reports the first failure in
// deterministic order. With Parallel <= 1 it is a no-op — the serial
// pass does all the work, exactly as before.
func (r *Runner) warm(fns []func()) {
	if r.sh.parallel <= 1 || len(fns) < 2 {
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(fns))
	for _, fn := range fns {
		go func(f func()) {
			defer wg.Done()
			f()
		}(fn)
	}
	wg.Wait()
}

// warmNormWS pre-computes NormWS for every (system, mix) pair of the
// grid in parallel — the expansion step of the figure DAG: each thunk
// pulls in the shared run, the per-benchmark alone runs and the
// baseline run through the singleflight caches.
func (r *Runner) warmNormWS(systems []*config.System, frag float64) {
	var fns []func()
	for _, sys := range systems {
		for _, mix := range r.Mixes() {
			sys, mix := sys, mix
			fns = append(fns, func() { _, _ = r.NormWS(sys, mix, frag) })
		}
	}
	r.warm(fns)
}

// warmResults pre-computes raw Results for every (system, mix) pair.
func (r *Runner) warmResults(systems []*config.System, frag float64) {
	var fns []func()
	for _, sys := range systems {
		for _, mix := range r.Mixes() {
			sys, mix := sys, mix
			fns = append(fns, func() { _, _ = r.Result(sys, mix, frag) })
		}
	}
	r.warm(fns)
}

// Mixes returns the configured workload mixes.
func (r *Runner) Mixes() []workload.Mix {
	all := workload.Mixes()
	if len(r.p.Mixes) == 0 {
		return all
	}
	var out []workload.Mix
	for _, name := range r.p.Mixes {
		for _, m := range all {
			if m.Name == name {
				out = append(out, m)
			}
		}
	}
	return out
}

func sysKey(sys *config.System) string {
	return fmt.Sprintf("%s/p%d/%.0fMHz", sys.Name, sys.Scheme.Planes, sys.Bus.FreqMHz())
}

// Result runs (or recalls) one mix on one system at one fragmentation.
// Concurrent callers with the same key share a single simulation. A
// Runner derived through WithContext stops waiting when its context
// fires; the simulation itself is canceled once every interested caller
// has left, and the canceled entry is evicted so later callers retry.
func (r *Runner) Result(sys *config.System, mix workload.Mix, frag float64) (*sim.Result, error) {
	key := fmt.Sprintf("%s|%s|%.2f", sysKey(sys), mix.Name, frag)
	sh := r.sh
	sh.mu.Lock()
	if f, ok := sh.cache[key]; ok {
		sh.mu.Unlock()
		sh.joined.Add(1)
		return f.await(r.ctx)
	}
	f := &flight[*sim.Result]{done: make(chan struct{}), waiters: 1}
	sh.cache[key] = f
	sh.mu.Unlock()

	evict := func() {
		sh.mu.Lock()
		if sh.cache[key] == f {
			delete(sh.cache, key)
		}
		sh.mu.Unlock()
	}
	return lead(r, f, evict, func(ctx context.Context) (*sim.Result, error) {
		r.logJob("run %-34s %s frag=%.1f", sysKey(sys), mix.Name, frag)
		return r.runKeyed(key, sim.Options{
			Ctx: ctx, Sys: sys, Benches: mix.Bench, Instrs: r.p.Instrs, Warmup: r.p.Warmup,
			Frag: frag, Seed: r.p.Seed,
		})
	})
}

// AloneIPC measures a benchmark's IPC running alone on baseline DDR4 at
// the given channel frequency and fragmentation (the weighted-speedup
// denominator). Concurrent callers with the same key share a single
// simulation.
func (r *Runner) AloneIPC(bench string, frag, busMHz float64) (float64, error) {
	key := fmt.Sprintf("%s|%.2f|%.0f", bench, frag, busMHz)
	sh := r.sh
	sh.mu.Lock()
	if f, ok := sh.alone[key]; ok {
		sh.mu.Unlock()
		sh.joined.Add(1)
		return f.await(r.ctx)
	}
	f := &flight[float64]{done: make(chan struct{}), waiters: 1}
	sh.alone[key] = f
	sh.mu.Unlock()

	evict := func() {
		sh.mu.Lock()
		if sh.alone[key] == f {
			delete(sh.alone, key)
		}
		sh.mu.Unlock()
	}
	return lead(r, f, evict, func(ctx context.Context) (float64, error) {
		r.logJob("alone %-12s frag=%.1f bus=%.0f", bench, frag, busMHz)
		res, err := r.runKeyed("alone|"+key, sim.Options{
			Ctx: ctx, Sys: config.Baseline(busMHz), Benches: []string{bench},
			Instrs: r.p.Instrs, Warmup: r.p.Warmup, Frag: frag, Seed: r.p.Seed,
		})
		if err != nil {
			return 0, err
		}
		return res.IPC[0], nil
	})
}

// WS computes the weighted speedup of one mix on one system.
func (r *Runner) WS(sys *config.System, mix workload.Mix, frag float64) (float64, error) {
	res, err := r.Result(sys, mix, frag)
	if err != nil {
		return 0, err
	}
	aloneIPC := make([]float64, len(mix.Bench))
	for i, b := range mix.Bench {
		a, err := r.AloneIPC(b, frag, sys.Bus.FreqMHz())
		if err != nil {
			return 0, err
		}
		aloneIPC[i] = a
	}
	return stats.WeightedSpeedup(res.IPC, aloneIPC), nil
}

// NormWS computes WS normalized to baseline DDR4 at the same channel
// frequency and fragmentation.
func (r *Runner) NormWS(sys *config.System, mix workload.Mix, frag float64) (float64, error) {
	ws, err := r.WS(sys, mix, frag)
	if err != nil {
		return 0, err
	}
	base, err := r.WS(config.Baseline(sys.Bus.FreqMHz()), mix, frag)
	if err != nil {
		return 0, err
	}
	return stats.Ratio(ws, base), nil
}

// GMeanNormWS is the geometric mean of NormWS across the configured
// mixes — the GMEAN bars of Figs. 12-15.
func (r *Runner) GMeanNormWS(sys *config.System, frag float64) (float64, error) {
	r.warmNormWS([]*config.System{sys}, frag)
	var vals []float64
	for _, mix := range r.Mixes() {
		v, err := r.NormWS(sys, mix, frag)
		if err != nil {
			return 0, err
		}
		vals = append(vals, v)
	}
	return stats.GeoMean(vals), nil
}

// Table is a generic formatted result: a header row plus data rows.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s\n\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n%s\n", n)
	}
	return b.String()
}

func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

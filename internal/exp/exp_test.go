package exp

import (
	"fmt"
	"strings"
	"testing"

	"eruca/internal/config"
)

// tinyRunner keeps experiment tests fast: two mixes, small budgets.
func tinyRunner(logged *int) *Runner {
	p := Params{Instrs: 15_000, Seed: 7, Mixes: []string{"mix0", "mix6"}}
	if logged != nil {
		p.Log = func(string) { *logged++ }
	}
	return NewRunner(p)
}

func TestTableFormat(t *testing.T) {
	tbl := &Table{
		Title:  "demo",
		Header: []string{"a", "bbbb"},
		Rows:   [][]string{{"xx", "y"}},
		Notes:  []string{"note"},
	}
	out := tbl.Format()
	for _, want := range []string{"## demo", "a   bbbb", "xx  y", "note"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() missing %q:\n%s", want, out)
		}
	}
}

func TestRunnerCaching(t *testing.T) {
	logged := 0
	r := tinyRunner(&logged)
	sys := fig13Systems(4)[3]
	mix := r.Mixes()[0]
	if _, err := r.Result(sys, mix, 0.1); err != nil {
		t.Fatal(err)
	}
	after := logged
	if _, err := r.Result(sys, mix, 0.1); err != nil {
		t.Fatal(err)
	}
	if logged != after {
		t.Error("second Result call re-simulated")
	}
}

func TestNormWSBaselineIsOne(t *testing.T) {
	r := tinyRunner(nil)
	mix := r.Mixes()[0]
	v, err := r.NormWS(config.Baseline(config.DefaultBusMHz), mix, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1.0 {
		t.Errorf("baseline normalized WS = %v, want exactly 1", v)
	}
}

func TestMixesFilter(t *testing.T) {
	r := tinyRunner(nil)
	mixes := r.Mixes()
	if len(mixes) != 2 || mixes[0].Name != "mix0" || mixes[1].Name != "mix6" {
		t.Fatalf("mixes = %v", mixes)
	}
	all := NewRunner(Params{Instrs: 1000})
	if len(all.Mixes()) != 9 {
		t.Errorf("default mixes = %d, want 9", len(all.Mixes()))
	}
}

func TestFig12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r := tinyRunner(nil)
	tbl, err := r.Fig12(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Header) != 8 { // mix + 7 systems
		t.Errorf("header = %v", tbl.Header)
	}
	if len(tbl.Rows) != 3 { // 2 mixes + GMEAN
		t.Errorf("rows = %d", len(tbl.Rows))
	}
	if tbl.Rows[len(tbl.Rows)-1][0] != "GMEAN" {
		t.Error("missing GMEAN row")
	}
}

func TestFig13Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r := NewRunner(Params{Instrs: 10_000, Seed: 7, Mixes: []string{"mix0"}})
	a, err := r.Fig13a(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 4 {
		t.Errorf("fig13a rows = %d", len(a.Rows))
	}
	b, err := r.Fig13b(0.1)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range b.Rows {
		for _, cell := range row[1:] {
			if !strings.HasSuffix(cell, "%") {
				t.Errorf("fig13b cell %q not a percentage", cell)
			}
		}
	}
}

func TestFig16Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r := NewRunner(Params{Instrs: 10_000, Seed: 7, Mixes: []string{"mix0"}})
	a, err := r.Fig16a(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 3 {
		t.Errorf("fig16a rows = %d", len(a.Rows))
	}
	b, err := r.Fig16b(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Rows) != 2 {
		t.Errorf("fig16b rows = %d", len(b.Rows))
	}
}

func TestFig4Monotone(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r := NewRunner(Params{Instrs: 20_000, Seed: 7})
	tbl, err := r.Fig4(0.1)
	if err != nil {
		t.Fatal(err)
	}
	prev := 101.0
	for _, row := range tbl.Rows {
		v := parsePct(t, row[1])
		if v > prev+1e-9 {
			t.Errorf("conflict fraction rose at %s planes: %v > %v", row[0], v, prev)
		}
		prev = v
	}
}

// Contention sanity: shared IPC never exceeds alone IPC.
func TestAloneVsSharedIPC(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r := NewRunner(Params{Instrs: 20_000, Seed: 7, Mixes: []string{"mix0", "mix7"}})
	if err := r.aloneSanity(0.1); err != nil {
		t.Error(err)
	}
}

func TestAblationsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r := NewRunner(Params{Instrs: 8_000, Seed: 7, Mixes: []string{"mix6"}})
	tbl, err := r.Ablations(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 12 {
		t.Errorf("ablation rows = %d, want 12", len(tbl.Rows))
	}
	groups := map[string]bool{}
	for _, row := range tbl.Rows {
		groups[row[0]] = true
	}
	if len(groups) != 5 {
		t.Errorf("ablation groups = %d, want 5", len(groups))
	}
}

func TestStaticTables(t *testing.T) {
	if got := len(Tab1().Rows); got != 4 {
		t.Errorf("Tab1 rows = %d", got)
	}
	if got := len(Tab2().Rows); got < 10 {
		t.Errorf("Tab2 rows = %d", got)
	}
	if got := len(Tab3().Rows); got < 6 {
		t.Errorf("Tab3 rows = %d", got)
	}
	f := Fig11()
	if len(f.Rows) != 4 || len(f.Header) != 5 {
		t.Errorf("Fig11 shape = %dx%d", len(f.Rows), len(f.Header))
	}
}

func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	var v float64
	if _, err := fmt.Sscanf(s, "%f%%", &v); err != nil {
		t.Fatalf("bad percentage %q: %v", s, err)
	}
	return v
}

package exp

import (
	"fmt"
	"sort"
	"strings"

	"eruca/internal/check"
	"eruca/internal/clock"
	"eruca/internal/config"
	"eruca/internal/diag"
	"eruca/internal/sim"
)

// runSim is the simulation entry point, indirected so tests can
// substitute a misbehaving implementation and prove the harness
// survives it.
var runSim = sim.Run

// runResume is the checkpoint-resume entry point, indirected for the
// same reason.
var runResume = sim.Resume

// safeRun executes one simulation with panic isolation: a panicking
// run (a broken configuration tripping an invariant, a bug) becomes an
// ordinary per-job error instead of killing the whole sweep.
func safeRun(opt sim.Options) (res *sim.Result, err error) {
	defer func() {
		if e := diag.CapturePanic(recover()); e != nil {
			res, err = nil, e
		}
	}()
	return runSim(opt)
}

// safeResume is safeRun for checkpoint resumption.
func safeResume(opt sim.Options, blob []byte) (res *sim.Result, err error) {
	defer func() {
		if e := diag.CapturePanic(recover()); e != nil {
			res, err = nil, e
		}
	}()
	return runResume(opt, blob)
}

// CheckpointPolicy makes the simulations a Runner launches crash-safe.
// Every launched run emits a full-state checkpoint roughly every Every
// bus cycles, handed to Save under the simulation's cache key; before
// launching, the Runner offers Load a chance to supply a previous
// checkpoint for that key, and resumes from it instead of starting at
// cycle zero. A blob Load supplies that turns out to be unusable
// (corrupt, or from a different configuration) is not fatal — the run
// falls back to a fresh start, so a stale checkpoint store can only
// cost time, never correctness.
type CheckpointPolicy struct {
	// Every is the checkpoint cadence in bus cycles (must be > 0).
	Every clock.Cycle
	// Save receives each checkpoint synchronously on the simulation
	// goroutine; implementations should copy or persist promptly. May
	// be called concurrently for distinct simulations.
	Save func(key string, cp sim.Checkpoint)
	// Load returns the checkpoint blob to resume key from, or nil to
	// start fresh. May be nil (checkpoint-only policy).
	Load func(key string) []byte
}

// applyRobust fills in the Params-level robustness options (checker
// mode, watchdog, fault plan, telemetry).
func (r *Runner) applyRobust(opt sim.Options) sim.Options {
	if r.p.Check != check.Off {
		opt.Check = &check.Options{Mode: r.p.Check}
	}
	if opt.Watchdog == nil {
		opt.Watchdog = r.p.Watchdog
	}
	if opt.Faults == nil {
		opt.Faults = r.p.Faults
	}
	if opt.Telemetry == nil {
		opt.Telemetry = r.p.Telemetry
	}
	return opt
}

// run applies the Params-level robustness options and executes through
// the panic barrier.
func (r *Runner) run(opt sim.Options) (*sim.Result, error) {
	return safeRun(r.applyRobust(opt))
}

// runKeyed is run with the checkpoint policy applied: the simulation
// checkpoints under key, and resumes from a stored checkpoint when the
// policy supplies one.
func (r *Runner) runKeyed(key string, opt sim.Options) (*sim.Result, error) {
	ck := r.p.Ckpt
	if ck == nil {
		return r.run(opt)
	}
	opt.CheckpointEvery = ck.Every
	if ck.Save != nil {
		opt.CheckpointSink = func(cp sim.Checkpoint) { ck.Save(key, cp) }
	}
	if ck.Load != nil {
		if blob := ck.Load(key); blob != nil {
			r.logf("checkpoint found for %s; resuming", key)
			res, err := safeResume(r.applyRobust(opt), blob)
			if res != nil || err == nil || canceled(err) {
				return res, err
			}
			// Unusable checkpoint (corrupt, stale, wrong config):
			// restarting from cycle zero costs time, never correctness.
			r.logf("resume %s failed (%v); restarting from cycle 0", key, err)
		}
	}
	return r.run(opt)
}

// JobFailure names one failed sweep job.
type JobFailure struct {
	// Key identifies the job ("system/mix" or similar).
	Key string
	// Err is the job's error (possibly a *diag.PanicError or
	// *check.ProtocolError).
	Err error
}

// SweepError aggregates the failed jobs of a sweep whose remaining
// jobs completed; the accompanying Table renders failed cells as ERR.
type SweepError struct {
	Failures []JobFailure
}

// Error implements error with a bounded multi-line summary.
func (e *SweepError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d sweep job(s) failed:", len(e.Failures))
	for i, f := range e.Failures {
		if i == 8 {
			fmt.Fprintf(&b, "\n  ... and %d more", len(e.Failures)-i)
			break
		}
		fmt.Fprintf(&b, "\n  %s: %v", f.Key, f.Err)
	}
	return b.String()
}

// Unwrap exposes the first failure for errors.Is/As.
func (e *SweepError) Unwrap() error {
	if len(e.Failures) == 0 {
		return nil
	}
	return e.Failures[0].Err
}

// collector accumulates per-cell failures while a table is built, so
// one bad configuration costs one ERR cell instead of the whole sweep.
type collector struct {
	failures []JobFailure
	seen     map[string]bool
}

// cell returns val, or "ERR" while recording the failure (deduplicated
// by key — one job can back several cells).
func (c *collector) cell(val, key string, err error) string {
	if err == nil {
		return val
	}
	if c.seen == nil {
		c.seen = make(map[string]bool)
	}
	if !c.seen[key] {
		c.seen[key] = true
		c.failures = append(c.failures, JobFailure{Key: key, Err: err})
	}
	return "ERR"
}

// finish returns the table unchanged on a clean sweep (keeping output
// byte-identical to the pre-checker harness), or annotates it and
// returns a *SweepError listing every failed job.
func (c *collector) finish(t *Table) (*Table, error) {
	if len(c.failures) == 0 {
		return t, nil
	}
	t.Notes = append(t.Notes, fmt.Sprintf("%d job(s) failed (ERR cells); run with -v for details.", len(c.failures)))
	return t, &SweepError{Failures: c.failures}
}

// Sweep runs every (system, mix) pair and tabulates the aggregate IPC
// (sum over cores). It is the generic robustness-first sweep: a job
// that fails — invalid configuration, Fail-mode protocol violation,
// watchdog trip, even a panicking simulator — costs one ERR cell, and
// every other job still completes. The returned error, when non-nil,
// is a *SweepError naming each failed job.
func (r *Runner) Sweep(systems []*config.System, frag float64) (*Table, error) {
	r.warmResults(systems, frag)
	c := &collector{}
	t := &Table{
		Title:  fmt.Sprintf("Sweep: aggregate IPC (FMFI %.0f%%)", frag*100),
		Header: []string{"mix"},
	}
	for _, sys := range systems {
		t.Header = append(t.Header, sys.Name)
	}
	for _, mix := range r.Mixes() {
		row := []string{mix.Name}
		for _, sys := range systems {
			res, err := r.Result(sys, mix, frag)
			val := ""
			if err == nil {
				sum := 0.0
				for _, ipc := range res.IPC {
					sum += ipc
				}
				val = f3(sum)
			}
			row = append(row, c.cell(val, sysKey(sys)+"/"+mix.Name, err))
		}
		t.Rows = append(t.Rows, row)
	}
	return c.finish(t)
}

// Protocol reports every Log-mode checker violation recorded across
// the cached results, sorted by key — the sweep-level crash-dump feed.
func (r *Runner) Protocol() []string {
	sh := r.sh
	sh.mu.Lock()
	keys := make([]string, 0, len(sh.cache))
	for k := range sh.cache {
		keys = append(keys, k)
	}
	sh.mu.Unlock()
	sort.Strings(keys)
	var out []string
	for _, k := range keys {
		sh.mu.Lock()
		f := sh.cache[k]
		sh.mu.Unlock()
		if f == nil {
			continue // evicted (canceled) since the key snapshot
		}
		select {
		case <-f.done:
		default:
			continue // still running; skip rather than block
		}
		if f.val == nil {
			continue
		}
		for _, pe := range f.val.Protocol {
			out = append(out, fmt.Sprintf("%s: %s", k, pe.Error()))
		}
	}
	return out
}

package exp

import (
	"fmt"

	"eruca/internal/area"
	"eruca/internal/config"
	"eruca/internal/stats"
)

// Fig12 reproduces the per-mix normalized weighted speedups of Fig. 12
// at the given fragmentation level (the paper plots 10% and 50%).
func (r *Runner) Fig12(frag float64) (*Table, error) {
	systems := config.Fig12Systems()
	r.warmNormWS(systems, frag)
	t := &Table{
		Title:  fmt.Sprintf("Fig. 12: normalized weighted speedup over DDR4 (FMFI %.0f%%)", frag*100),
		Header: []string{"mix"},
	}
	for _, sys := range systems {
		t.Header = append(t.Header, sys.Name)
	}
	c := &collector{}
	perSys := make([][]float64, len(systems))
	for _, mix := range r.Mixes() {
		row := []string{mix.Name}
		for i, sys := range systems {
			v, err := r.NormWS(sys, mix, frag)
			if err == nil {
				perSys[i] = append(perSys[i], v)
			}
			row = append(row, c.cell(f3(v), sysKey(sys)+"/"+mix.Name, err))
		}
		t.Rows = append(t.Rows, row)
	}
	g := []string{"GMEAN"}
	for i := range systems {
		if len(perSys[i]) == 0 {
			g = append(g, "ERR")
			continue
		}
		g = append(g, f3(stats.GeoMean(perSys[i])))
	}
	t.Rows = append(t.Rows, g)
	t.Notes = append(t.Notes,
		"Paper (GMEAN, 200M instrs): VSB(naive)+BG ~1.10, VSB(naive)+DDB ~1.12, VSB(EWLR+RAP)+DDB ~1.15,",
		"Ideal32 ~1.17, Paired-bank(EWLR+RAP) ~0.98 (+DDB ~0.99). 4 planes throughout.")
	return c.finish(t)
}

// fig13Systems returns the plane-count sensitivity grid of Fig. 13:
// {naive, EWLR, RAP, EWLR+RAP} x planes, all with DDB.
func fig13Systems(planes int) []*config.System {
	return []*config.System{
		config.VSB(planes, false, false, true, config.DefaultBusMHz),
		config.VSB(planes, true, false, true, config.DefaultBusMHz),
		config.VSB(planes, false, true, true, config.DefaultBusMHz),
		config.VSB(planes, true, true, true, config.DefaultBusMHz),
	}
}

var fig13PlaneCounts = []int{2, 4, 8, 16}

// fig13Grid flattens the full Fig. 13 sweep for parallel warming.
func fig13Grid() []*config.System {
	var out []*config.System
	for _, planes := range fig13PlaneCounts {
		out = append(out, fig13Systems(planes)...)
	}
	return out
}

// Fig13a reproduces the plane-count sensitivity of weighted speedup at
// one fragmentation level.
func (r *Runner) Fig13a(frag float64) (*Table, error) {
	r.warmNormWS(append(fig13Grid(), config.Ideal32(config.DefaultBusMHz)), frag)
	t := &Table{
		Title:  fmt.Sprintf("Fig. 13a: plane-count sensitivity, GMEAN normalized WS (FMFI %.0f%%, all +DDB)", frag*100),
		Header: []string{"planes", "VSB(naive)", "VSB(EWLR)", "VSB(RAP)", "VSB(EWLR+RAP)"},
	}
	c := &collector{}
	for _, planes := range fig13PlaneCounts {
		row := []string{fmt.Sprint(planes)}
		for _, sys := range fig13Systems(planes) {
			v, err := r.GMeanNormWS(sys, frag)
			row = append(row, c.cell(f3(v), sysKey(sys), err))
		}
		t.Rows = append(t.Rows, row)
	}
	ideal, err := r.GMeanNormWS(config.Ideal32(config.DefaultBusMHz), frag)
	t.Notes = append(t.Notes,
		fmt.Sprintf("Ideal32 reference: %s.", c.cell(f3(ideal), "Ideal32", err)),
		"Paper: EWLR+RAP varies <4% between 2 and 16 planes and reaches within ~4% of ideal with",
		"2 planes; naive VSB needs many planes and still trails at 16.")
	return c.finish(t)
}

// Fig13b reproduces the fraction of precharges caused by plane
// conflicts over the same grid.
func (r *Runner) Fig13b(frag float64) (*Table, error) {
	r.warmResults(fig13Grid(), frag)
	t := &Table{
		Title:  fmt.Sprintf("Fig. 13b: precharges from plane conflicts (FMFI %.0f%%, all +DDB)", frag*100),
		Header: []string{"planes", "VSB(naive)", "VSB(EWLR)", "VSB(RAP)", "VSB(EWLR+RAP)"},
	}
	c := &collector{}
	for _, planes := range fig13PlaneCounts {
		row := []string{fmt.Sprint(planes)}
		for _, sys := range fig13Systems(planes) {
			var confPre, pres uint64
			var cellErr error
			for _, mix := range r.Mixes() {
				res, err := r.Result(sys, mix, frag)
				if err != nil {
					cellErr = err
					break
				}
				confPre += res.DRAM.PlaneConfPre
				pres += res.DRAM.Pres
			}
			row = append(row, c.cell(pct(stats.Ratio(float64(confPre), float64(pres))), sysKey(sys), cellErr))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "Paper: highly correlated with Fig. 13a; EWLR+RAP suppresses conflicts at low plane counts.")
	return c.finish(t)
}

// Fig14 reproduces the channel-frequency sweep: GMEAN normalized WS of
// VSB(EWLR+RAP) with the bank-group bus vs. DDB, plus the 32-bank
// references, normalized to DDR4 at each frequency.
func (r *Runner) Fig14(frag float64) (*Table, error) {
	fig14Systems := func(mhz float64) []*config.System {
		return []*config.System{
			config.VSB(4, true, true, false, mhz),
			config.VSB(4, true, true, true, mhz),
			config.BG32(mhz),
			config.Ideal32(mhz),
		}
	}
	var grid []*config.System
	for _, mhz := range config.Fig14Frequencies() {
		grid = append(grid, fig14Systems(mhz)...)
	}
	r.warmNormWS(grid, frag)

	t := &Table{
		Title:  fmt.Sprintf("Fig. 14: DDB speedup vs channel frequency (FMFI %.0f%%)", frag*100),
		Header: []string{"busMHz", "VSB(EWLR+RAP)+BG", "VSB(EWLR+RAP)+DDB", "BG32", "Ideal32"},
	}
	c := &collector{}
	for _, mhz := range config.Fig14Frequencies() {
		systems := fig14Systems(mhz)
		row := []string{fmt.Sprintf("%.0f", mhz)}
		for _, sys := range systems {
			v, err := r.GMeanNormWS(sys, frag)
			row = append(row, c.cell(f3(v), sysKey(sys), err))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"Paper: bank-grouped configurations saturate with frequency while VSB+DDB tracks the ideal",
		"growth trend, reaching ~5% over VSB+BG at 2.4GHz.")
	return c.finish(t)
}

// Fig15 reproduces the prior-work comparison (GMEAN normalized WS).
func (r *Runner) Fig15(frag float64) (*Table, error) {
	r.warmNormWS(config.Fig15Systems(), frag)
	t := &Table{
		Title:  fmt.Sprintf("Fig. 15: comparison to prior sub-banking schemes (FMFI %.0f%%)", frag*100),
		Header: []string{"system", "norm WS", "area overhead"},
	}
	c := &collector{}
	for _, sys := range config.Fig15Systems() {
		v, err := r.GMeanNormWS(sys, frag)
		ov := area.Overhead(sys.Scheme, sys.Geom.Banks())
		ovs := pct(ov)
		if sys.Scheme.Mode == config.SubBankNone {
			ovs = pct(area.FullBanks32)
		}
		t.Rows = append(t.Rows, []string{sys.Name, c.cell(f3(v), sysKey(sys), err), ovs})
	}
	t.Notes = append(t.Notes,
		"Paper: Half-DRAM ~1.08, VSB(EWLR+RAP) ~1.13 (+DDB 1.15), MASA4/MASA8 above VSB at medium",
		"intensity, MASA8+ERUCA ~1.26 (no DDB) and ~1.29 (DDB), Ideal32 ~1.17.")
	return c.finish(t)
}

// Fig16a reproduces the read queueing-latency comparison.
func (r *Runner) Fig16a(frag float64) (*Table, error) {
	systems := []*config.System{
		config.Baseline(config.DefaultBusMHz),
		config.VSB(4, true, true, true, config.DefaultBusMHz),
		config.Ideal32(config.DefaultBusMHz),
	}
	r.warmResults(systems, frag)
	t := &Table{
		Title:  fmt.Sprintf("Fig. 16a: read queueing latency, ns (FMFI %.0f%%)", frag*100),
		Header: []string{"system", "mean", "q1", "median", "q3"},
	}
	c := &collector{}
	for _, sys := range systems {
		agg := &stats.Sampler{}
		var cellErr error
		for _, mix := range r.Mixes() {
			res, err := r.Result(sys, mix, frag)
			if err != nil {
				cellErr = err
				break
			}
			agg.Merge(res.QueueLat, 1)
		}
		q1, med, q3 := agg.Quartiles()
		t.Rows = append(t.Rows, []string{sys.Name,
			c.cell(f1(agg.Mean()), sysKey(sys), cellErr),
			c.cell(f1(q1), sysKey(sys), cellErr),
			c.cell(f1(med), sysKey(sys), cellErr),
			c.cell(f1(q3), sysKey(sys), cellErr)})
	}
	t.Notes = append(t.Notes,
		"Paper: mean drops ~15% from DDR4 (61.2ns) with ERUCA (51.8ns), within 1% of ideal (51.7ns);",
		"ERUCA's third quartile stays above ideal due to residual plane conflicts.")
	return c.finish(t)
}

// Fig16b reproduces the energy comparison, normalized to DDR4.
func (r *Runner) Fig16b(frag float64) (*Table, error) {
	base := config.Baseline(config.DefaultBusMHz)
	systems := []*config.System{
		config.VSB(4, true, true, true, config.DefaultBusMHz),
		config.Ideal32(config.DefaultBusMHz),
	}
	r.warmResults(append([]*config.System{base}, systems...), frag)
	type tot struct{ bg, act, all float64 }
	sum := func(sys *config.System) (tot, error) {
		var s tot
		for _, mix := range r.Mixes() {
			res, err := r.Result(sys, mix, frag)
			if err != nil {
				return s, err
			}
			s.bg += res.Energy.BackgroundNJ
			s.act += res.Energy.ActNJ
			s.all += res.Energy.TotalNJ()
		}
		return s, nil
	}
	c := &collector{}
	bsum, baseErr := sum(base)
	if baseErr != nil {
		c.cell("", sysKey(base), baseErr)
	}
	t := &Table{
		Title:  fmt.Sprintf("Fig. 16b: energy normalized to DDR4 (FMFI %.0f%%)", frag*100),
		Header: []string{"system", "background", "ACT", "total"},
	}
	for _, sys := range systems {
		s, err := sum(sys)
		if err == nil {
			err = baseErr
		}
		t.Rows = append(t.Rows, []string{sys.Name,
			c.cell(pct(stats.Ratio(s.bg, bsum.bg)), sysKey(sys), err),
			c.cell(pct(stats.Ratio(s.act, bsum.act)), sysKey(sys), err),
			c.cell(pct(stats.Ratio(s.all, bsum.all)), sysKey(sys), err)})
	}
	t.Notes = append(t.Notes,
		"Paper: ERUCA cuts activation energy ~6% (more page-locality reuse + EWLR hits) and background",
		"energy through shorter execution, landing within 1% of the ideal configuration.")
	return c.finish(t)
}

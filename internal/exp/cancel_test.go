package exp

import (
	"context"
	"errors"
	"testing"
	"time"

	"eruca/internal/config"
	"eruca/internal/workload"
)

func mix0(t *testing.T) workload.Mix {
	t.Helper()
	m, err := workload.MixByName("mix0")
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestResultCancelEvicts proves the cancellation contract of the
// singleflight cache: a canceled run returns promptly with a context
// error, the poisoned entry is evicted, and a later call re-runs and
// succeeds.
func TestResultCancelEvicts(t *testing.T) {
	// 1M instructions: far more than 50ms of simulation, small enough
	// that the post-eviction rerun stays quick.
	r := NewRunner(Params{Instrs: 1_000_000, Seed: 1, Parallel: 2})
	sys := config.Baseline(config.DefaultBusMHz)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := r.WithContext(ctx).Result(sys, mix0(t), 0.1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Errorf("cancellation took %s, want prompt", took)
	}

	// The canceled entry must not poison the cache: the same call on
	// the same runner re-runs and succeeds.
	if _, err := r.Result(sys, mix0(t), 0.1); err != nil {
		t.Fatalf("rerun after cancel: %v", err)
	}
	launched, _ := r.Counters()
	if launched != 2 {
		t.Errorf("launched = %d, want 2 (canceled + rerun)", launched)
	}
}

// TestSharedFlightSurvivesOneCancel proves the waiter refcount: two
// callers share one flight; canceling one leaves the simulation running
// for the other, and exactly one simulation executes.
func TestSharedFlightSurvivesOneCancel(t *testing.T) {
	r := NewRunner(Params{Instrs: 60_000, Seed: 1, Parallel: 2})
	sys := config.Baseline(config.DefaultBusMHz)
	m := mix0(t)

	ctx, cancel := context.WithCancel(context.Background())
	type out struct {
		ok  bool
		err error
	}
	impatient := make(chan out, 1)
	patient := make(chan out, 1)
	go func() {
		res, err := r.WithContext(ctx).Result(sys, m, 0.1)
		impatient <- out{res != nil, err}
	}()
	// Give the first caller a head start so it becomes the leader, then
	// join with an uncancelable caller and cancel the first.
	time.Sleep(20 * time.Millisecond)
	go func() {
		res, err := r.Result(sys, m, 0.1)
		patient <- out{res != nil, err}
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()

	po := <-patient
	if po.err != nil || !po.ok {
		t.Fatalf("patient caller: ok=%v err=%v, want a result", po.ok, po.err)
	}
	io := <-impatient
	// The impatient caller either got the shared result before its
	// cancel landed or a context error — both are legal; a different
	// error is not.
	if io.err != nil && !errors.Is(io.err, context.Canceled) {
		t.Fatalf("impatient caller: %v", io.err)
	}
	launched, joined := r.Counters()
	if launched != 1 {
		t.Errorf("launched = %d, want 1", launched)
	}
	if joined != 1 {
		t.Errorf("joined = %d, want 1", joined)
	}
}

// TestWithLogAttribution: log lines go to the view that launched the
// simulation; a joiner's sink stays silent.
func TestWithLogAttribution(t *testing.T) {
	r := NewRunner(Params{Instrs: 10_000, Seed: 1})
	sys := config.Baseline(config.DefaultBusMHz)
	var a, b []string
	ra := r.WithLog(func(s string) { a = append(a, s) })
	rb := r.WithLog(func(s string) { b = append(b, s) })
	if _, err := ra.Result(sys, mix0(t), 0.1); err != nil {
		t.Fatal(err)
	}
	if _, err := rb.Result(sys, mix0(t), 0.1); err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Error("launcher view logged nothing")
	}
	if len(b) != 0 {
		t.Errorf("joiner view logged %d lines, want 0 (cache hit)", len(b))
	}
	launched, joined := r.Counters()
	if launched != 1 || joined != 1 {
		t.Errorf("counters launched=%d joined=%d, want 1/1", launched, joined)
	}
}

package exp

import (
	"fmt"

	"eruca/internal/addrmap"
	"eruca/internal/config"
	"eruca/internal/sim"
	"eruca/internal/trace"
)

// fig4Benches are the applications whose traces drive the Fig. 4
// characterization.
var fig4Benches = []string{"mcf", "lbm", "gemsFDTD", "omnetpp"}

// Fig4 reproduces the plane-conflict characterization: capture physical
// transaction traces of the four Fig. 4 applications on baseline DDR4,
// then classify same-bank overlaps within a tRC window against a
// hypothetical 2-sub-bank DRAM, sweeping the plane count from 2 to one
// plane per row.
func (r *Runner) Fig4(frag float64) (*Table, error) {
	base := config.Baseline(config.DefaultBusMHz)
	vsb := config.VSB(4, false, false, false, config.DefaultBusMHz)
	mapper := addrmap.New(vsb) // the sub-banked view of each address
	view := func(pa uint64) (int, int, uint32) {
		l := mapper.Map(pa)
		return (l.Channel*base.Geom.Ranks+l.Rank)*base.Geom.Banks() + mapper.BankID(l), l.Sub, l.Row
	}
	rowBits := mapper.RowBits()
	tRCns := base.Timing.TRASns + base.Timing.TRPns

	// Sweep up to two rows per plane, as in the paper (its x-axis ends
	// at 32768 planes for a 64k-row sub-bank).
	var planeCounts []int
	for p := 2; p <= 1<<uint(rowBits-1); p *= 2 {
		planeCounts = append(planeCounts, p)
	}

	// Capture the multiprogrammed run of the four applications — the
	// same-bank overlap that matters comes from their combined traffic.
	var recs []trace.Record
	r.logf("fig4 capture %v", fig4Benches)
	_, err := sim.Run(sim.Options{
		Sys: config.Baseline(config.DefaultBusMHz), Benches: fig4Benches,
		Instrs: r.p.Instrs, Warmup: r.p.Warmup, Frag: frag, Seed: r.p.Seed,
		Capture: func(rec trace.Record) { recs = append(recs, rec) },
	})
	if err != nil {
		return nil, err
	}
	pts := trace.AnalyzePlaneConflicts(recs, view, rowBits, tRCns, planeCounts)

	t := &Table{
		Title:  fmt.Sprintf("Fig. 4: transactions with plane conflicts per tRC interval (FMFI %.0f%%)", frag*100),
		Header: []string{"planes", "PlaneConflict", "NoPlaneConflict", "overlapping"},
	}
	for _, pt := range pts {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(pt.Planes), pct(pt.PlaneConflict), pct(pt.NoPlaneConflict), pct(pt.Overlapping)})
	}
	t.Notes = append(t.Notes,
		"Paper: 67% of transactions overlap with same-bank traffic; 51% conflict at 2 planes, falling",
		"to ~17% even at one plane per row — two locality regions (huge-page MSBs, spatial LSBs).")
	return t, nil
}

// Locality reports the row-address MSB-match profile behind the Fig. 4
// locality regions (Sec. IV).
func (r *Runner) Locality(frag float64) (*Table, error) {
	vsb := config.VSB(4, false, false, false, config.DefaultBusMHz)
	mapper := addrmap.New(vsb)
	base := config.Baseline(config.DefaultBusMHz)
	view := func(pa uint64) (int, int, uint32) {
		l := mapper.Map(pa)
		return (l.Channel*base.Geom.Ranks+l.Rank)*base.Geom.Banks() + mapper.BankID(l), l.Sub, l.Row
	}
	rowBits := mapper.RowBits()
	tRCns := base.Timing.TRASns + base.Timing.TRPns

	var recs []trace.Record
	r.logf("locality capture %v", fig4Benches)
	_, err := sim.Run(sim.Options{
		Sys: config.Baseline(config.DefaultBusMHz), Benches: fig4Benches,
		Instrs: r.p.Instrs, Warmup: r.p.Warmup, Frag: frag, Seed: r.p.Seed,
		Capture: func(rec trace.Record) { recs = append(recs, rec) },
	})
	if err != nil {
		return nil, err
	}
	prof := trace.LocalityProfile(recs, view, rowBits, tRCns)
	t := &Table{
		Title:  fmt.Sprintf("Row-address locality: P(top-k row MSBs match | same-bank overlap), FMFI %.0f%%", frag*100),
		Header: []string{"k (MSBs)", "P(match)"},
	}
	for k := 0; k <= rowBits; k++ {
		t.Rows = append(t.Rows, []string{fmt.Sprint(k), pct(prof[k])})
	}
	return t, nil
}

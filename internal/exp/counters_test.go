package exp

import (
	"sync"
	"testing"

	"eruca/internal/config"
	"eruca/internal/workload"
)

// TestCountersRevisitNeverResimulates pins the cache contract the
// autotuner depends on: once a (system, mix, frag) key has been
// simulated, every revisit — sequential or concurrent — joins the
// existing flight instead of launching a new simulation. launched is
// the miss counter, joined the hit counter; a revisited search point
// must move only the latter.
func TestCountersRevisitNeverResimulates(t *testing.T) {
	r := NewRunner(Params{Instrs: 5000, Seed: 42, Parallel: 4})
	mix, err := workload.MixByName("mix0")
	if err != nil {
		t.Fatal(err)
	}
	sys := config.Baseline(config.DefaultBusMHz)

	if l, j := r.Counters(); l != 0 || j != 0 {
		t.Fatalf("fresh runner counters = (%d, %d)", l, j)
	}

	// Miss: first visit launches exactly one simulation.
	first, err := r.Result(sys, mix, 0)
	if err != nil {
		t.Fatal(err)
	}
	l1, j1 := r.Counters()
	if l1 != 1 || j1 != 0 {
		t.Fatalf("after first visit: launched=%d joined=%d, want 1, 0", l1, j1)
	}

	// Sequential revisits: all hits, zero new simulations, same result
	// pointer (the cached flight's value, not a re-run).
	for i := 0; i < 3; i++ {
		res, err := r.Result(sys, mix, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res != first {
			t.Fatal("revisit returned a different result value")
		}
	}
	l2, j2 := r.Counters()
	if l2 != 1 {
		t.Fatalf("sequential revisits re-simulated: launched=%d", l2)
	}
	if j2 != 3 {
		t.Fatalf("sequential revisits joined=%d, want 3", j2)
	}

	// Concurrent duplicates of a NEW key: exactly one launch (the
	// in-flight singleflight), everyone else joins.
	sys2 := config.VSB(4, true, true, true, config.DefaultBusMHz)
	const dup = 6
	var wg sync.WaitGroup
	for i := 0; i < dup; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := r.Result(sys2, mix, 0); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	l3, j3 := r.Counters()
	if l3 != 2 {
		t.Fatalf("concurrent duplicates launched %d simulations for one key", l3-l2)
	}
	if j3 != j2+dup-1 {
		t.Fatalf("concurrent duplicates joined=%d, want %d", j3-j2, dup-1)
	}

	// A genuinely different fragmentation level is a different key: one
	// more launch, no joins.
	if _, err := r.Result(sys, mix, 0.10); err != nil {
		t.Fatal(err)
	}
	if l4, j4 := r.Counters(); l4 != 3 || j4 != j3 {
		t.Fatalf("distinct key counters = (%d, %d), want (3, %d)", l4, j4, j3)
	}
}

package exp

import (
	"strings"
	"sync"
	"testing"
)

// parallelParams builds a scaled-down sweep big enough to exercise the
// worker pool and the singleflight dedup paths.
func parallelParams(parallel int) Params {
	return Params{Instrs: 6_000, Seed: 7, Mixes: []string{"mix0", "mix6"}, Parallel: parallel}
}

// TestParallelEquivalence is the tentpole guarantee: every table is
// byte-identical whether the sweep runs on one worker or eight.
func TestParallelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	type figure struct {
		name string
		run  func(*Runner) (*Table, error)
	}
	figures := []figure{
		{"fig12", func(r *Runner) (*Table, error) { return r.Fig12(0.1) }},
		{"fig13a", func(r *Runner) (*Table, error) { return r.Fig13a(0.1) }},
		{"fig13b", func(r *Runner) (*Table, error) { return r.Fig13b(0.1) }},
	}
	render := func(parallel int) map[string]string {
		r := NewRunner(parallelParams(parallel))
		if got := r.Parallel(); got != parallel {
			t.Fatalf("Parallel() = %d, want %d", got, parallel)
		}
		out := make(map[string]string)
		for _, f := range figures {
			tbl, err := f.run(r)
			if err != nil {
				t.Fatalf("parallel=%d %s: %v", parallel, f.name, err)
			}
			out[f.name] = tbl.Format()
		}
		return out
	}
	seq := render(1)
	par := render(8)
	for _, f := range figures {
		if seq[f.name] != par[f.name] {
			t.Errorf("%s differs between -parallel 1 and 8:\n--- sequential ---\n%s\n--- parallel ---\n%s",
				f.name, seq[f.name], par[f.name])
		}
	}
}

// TestParallelSingleflight hammers one key from many goroutines: the
// simulation must run exactly once and everyone must see the same
// *sim.Result pointer.
func TestParallelSingleflight(t *testing.T) {
	logged := 0
	p := parallelParams(4)
	p.Log = func(string) { logged++ } // serialized by the Runner
	r := NewRunner(p)
	sys := fig13Systems(4)[3]
	mix := r.Mixes()[0]

	const callers = 16
	results := make([]any, callers)
	var wg sync.WaitGroup
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			res, err := r.Result(sys, mix, 0.1)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	if logged != 1 {
		t.Errorf("simulation launched %d times, want 1", logged)
	}
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Errorf("caller %d got a different result object", i)
		}
	}
}

// TestParallelLogPrefixes checks the thread-safe progress logging: every
// launched-simulation line carries a job-sequence prefix and lines are
// delivered one at a time.
func TestParallelLogPrefixes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	var lines []string
	p := parallelParams(8)
	p.Log = func(s string) { lines = append(lines, s) } // serialized by the Runner
	r := NewRunner(p)
	if _, err := r.Fig12(0.1); err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Fatal("no progress lines")
	}
	seen := make(map[string]bool)
	for _, l := range lines {
		if !strings.HasPrefix(l, "[") {
			t.Errorf("line without job prefix: %q", l)
		}
		if seen[l] {
			t.Errorf("duplicate progress line (re-simulated?): %q", l)
		}
		seen[l] = true
	}
}

package exp

import (
	"fmt"

	"eruca/internal/area"
	"eruca/internal/config"
)

// Fig11 reproduces the DRAM area-overhead comparison. It is analytic
// (Sec. VI-C) and needs no simulation.
func Fig11() *Table {
	banks := config.DefaultGeometry().Banks()
	t := &Table{
		Title:  "Fig. 11: DRAM die area overhead",
		Header: []string{"planes", "RAP", "EWLR+RAP", "DDB+RAP", "DDB+EWLR+RAP"},
	}
	for _, planes := range []int{2, 4, 8, 16} {
		row := []string{fmt.Sprint(planes)}
		for _, f := range [][2]bool{{false, false}, {true, false}, {false, true}, {true, true}} {
			sch := config.VSB(planes, f[0], true, f[1], config.DefaultBusMHz).Scheme
			row = append(row, fmt.Sprintf("%.2f%%", area.Overhead(sch, banks)*100))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("References: Half-DRAM %.2f%%, MASA4 %.2f%%, MASA8 %.2f%%, paired-bank %.1f%%, full 32 banks +%.0f%%.",
			area.HalfDRAMOverhead*100, area.MASA4Overhead*100, area.MASA8Overhead*100,
			area.PairedBankSaving*100, area.FullBanks32*100),
		"Paper anchors: DDB 0.05%, 2-plane RAP 0.06%, EWLR +0.06%, <=0.3% up to 4 planes.")
	return t
}

// Tab1 renders the DRAM generation table.
func Tab1() *Table {
	t := &Table{
		Title:  "Tab. I: DRAM generations",
		Header: []string{"", "DDR", "DDR2", "DDR3", "DDR4"},
	}
	specs := config.GenerationSpecs()
	rows := []struct {
		label string
		get   func(config.GenerationSpec) string
	}{
		{"Bank count", func(s config.GenerationSpec) string { return s.BankCount }},
		{"Channel clock (MHz)", func(s config.GenerationSpec) string { return s.ChannelClockMHz }},
		{"DRAM core clock (MHz)", func(s config.GenerationSpec) string { return s.CoreClockMHz }},
		{"Internal prefetch", func(s config.GenerationSpec) string { return s.InternalPrefetch }},
	}
	for _, r := range rows {
		row := []string{r.label}
		for _, s := range specs {
			row = append(row, r.get(s))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Tab2 renders the acronym glossary.
func Tab2() *Table {
	t := &Table{
		Title:  "Tab. II: acronyms",
		Header: []string{"acronym", "description"},
	}
	for _, a := range config.Acronyms() {
		t.Rows = append(t.Rows, []string{a.Name, a.Description})
	}
	return t
}

// Tab3 renders the evaluation configuration.
func Tab3() *Table {
	sys := config.Baseline(config.DefaultBusMHz)
	ct := sys.CT
	t := &Table{
		Title:  "Tab. III: system configuration",
		Header: []string{"parameter", "value"},
	}
	add := func(k, v string) { t.Rows = append(t.Rows, []string{k, v}) }
	add("Processor", fmt.Sprintf("%d-core OoO, width %d, ROB %d, LSQ %d, %dx bus clock",
		sys.CPU.Cores, sys.CPU.Width, sys.CPU.ROB, sys.CPU.LSQ, sys.CPU.ClockRatio))
	add("L1D", fmt.Sprintf("%dKB %d-way, %d cycles", sys.CPU.L1Bytes>>10, sys.CPU.L1Ways, sys.CPU.L1LatencyCK))
	add("LLC", fmt.Sprintf("%dMB/core %d-way, %d cycles", sys.CPU.LLCBytesPerCore>>20, sys.CPU.LLCWays, sys.CPU.LLCLatencyCK))
	add("DRAM", fmt.Sprintf("DDR4-%0.f, %d channels x %d rank, %d bank groups x %d banks",
		sys.Bus.FreqMHz()*2, sys.Geom.Channels, sys.Geom.Ranks, sys.Geom.BankGroups, sys.Geom.BanksPerGroup))
	add("Timing (bus cycles)", fmt.Sprintf("CL %d, tRCD %d, tRP %d, tRAS %d, tCCD_S %d, tCCD_L %d",
		ct.CL, ct.RCD, ct.RP, ct.RAS, ct.CCDS, ct.CCDL))
	add("Two-command windows", fmt.Sprintf("tTCW %d, tTWTRW %d (bind only when core clock > 2 bursts)", ct.TCW, ct.TWTRW))
	add("Scheduling", "FR-FCFS, adaptive open page, write-drain watermarks")
	add("Physical memory", fmt.Sprintf("%dGiB, buddy allocator + THP, FMFI-controlled fragmentation", sys.Geom.TotalBytes()>>30))
	return t
}

package exp

import (
	"fmt"

	"eruca/internal/config"
	"eruca/internal/sim"
	"eruca/internal/stats"
	"eruca/internal/workload"
)

// attributionLadder is the mechanism ladder the Attribution table walks:
// baseline DDR4, then the ERUCA mechanisms switched on one at a time up
// to the full configuration, plus the Ideal32 upper bound. Each step
// isolates one mechanism so its counters explain the speedup delta from
// the previous rung.
func attributionLadder(planes int) []*config.System {
	const mhz float64 = config.DefaultBusMHz
	return []*config.System{
		config.Baseline(mhz),
		config.VSB(planes, false, false, true, mhz), // +VSB sub-banks +DDB
		config.VSB(planes, true, false, true, mhz),  // +EWLR
		config.VSB(planes, false, true, true, mhz),  // RAP instead of EWLR
		config.VSB(planes, true, true, true, mhz),   // full ERUCA
		config.Ideal32(mhz),                         // upper bound
	}
}

// mechTotals sums the mechanism counters of one system across every
// configured mix.
type mechTotals struct {
	d      sim.Result // only DRAM is used
	normWS float64
	ok     bool
}

// Attribution reproduces the Fig. 13-style table with a per-mechanism
// attribution breakdown: for every rung of the mechanism ladder it
// reports the gmean normalized weighted speedup, the delta to the
// previous rung, and the deterministic mechanism counters — EWLR hit
// rate, plane-conflict precharge fraction, partial precharges, RAP
// redirects per thousand ACTs, and DDB bus cycles saved per column
// command — so each speedup step is accounted for by the counters of
// the mechanism that produced it. Counters come from dram.Stats, which
// is always on; no tracing is required.
func (r *Runner) Attribution(planes int, frag float64) (*Table, error) {
	systems := attributionLadder(planes)
	r.warmNormWS(systems, frag)
	c := &collector{}
	t := &Table{
		Title: fmt.Sprintf("Mechanism attribution: VSB ladder, %d planes (FMFI %.0f%%)", planes, frag*100),
		Header: []string{"system", "normWS", "Δprev", "ewlr-hit", "plane-conf",
			"partial", "rap/kACT", "ddb-ck/col", "row-hit"},
	}

	prev := 0.0
	for i, sys := range systems {
		tot := r.mechTotals(sys, frag, c)
		row := []string{sys.Name}
		if !tot.ok {
			row = append(row, "ERR", "ERR", "ERR", "ERR", "ERR", "ERR", "ERR", "ERR")
			t.Rows = append(t.Rows, row)
			continue
		}
		delta := ""
		if i > 0 && prev > 0 {
			delta = fmt.Sprintf("%+.3f", tot.normWS-prev)
		}
		prev = tot.normWS

		d := &tot.d.DRAM
		row = append(row,
			f3(tot.normWS),
			delta,
			pct(stats.Ratio(float64(d.ActsEWLRHit), float64(d.Acts))),
			pct(stats.Ratio(float64(d.PlaneConfPre), float64(d.Pres))),
			pct(stats.Ratio(float64(d.PartialPres), float64(d.Pres))),
			f1(1000*stats.Ratio(float64(d.RAPRedirects), float64(d.Acts))),
			fmt.Sprintf("%.2f", stats.Ratio(float64(d.DDBSavedCK), float64(d.Reads+d.Writes))),
			pct(tot.d.RowHitRate()),
		)
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"Each rung adds one mechanism; Δprev is the speedup it buys and the counters name its cause:",
		"ewlr-hit = ACTs reusing a driven MWL (the Vpp activations saved), plane-conf = precharges",
		"forced by latch conflicts (Fig. 13b), rap/kACT = RAP-dodged collisions per 1000 ACTs,",
		"ddb-ck/col = single-bus tCCD_L/tWTR_L cycles the dual data bus recovered per column command.")
	return c.finish(t)
}

// mechTotals aggregates NormWS (gmean) and the summed DRAM mechanism
// counters of one system across the configured mixes, recording
// failures in the collector.
func (r *Runner) mechTotals(sys *config.System, frag float64, c *collector) mechTotals {
	var tot mechTotals
	var ws []float64
	ok := true
	for _, mix := range r.Mixes() {
		v, err := r.NormWS(sys, mix, frag)
		if err != nil {
			c.cell("", sysKey(sys)+"/"+mix.Name, err)
			ok = false
			continue
		}
		ws = append(ws, v)
		res, err := r.Result(sys, mix, frag)
		if err != nil {
			c.cell("", sysKey(sys)+"/"+mix.Name, err)
			ok = false
			continue
		}
		tot.addDRAM(res)
	}
	tot.ok = ok && len(ws) > 0
	tot.normWS = stats.GeoMean(ws)
	return tot
}

// addDRAM accumulates the mechanism-relevant DRAM counters of one run.
func (m *mechTotals) addDRAM(res *sim.Result) {
	d, s := &m.d.DRAM, &res.DRAM
	d.Acts += s.Acts
	d.ActsEWLRHit += s.ActsEWLRHit
	d.Reads += s.Reads
	d.Writes += s.Writes
	d.Pres += s.Pres
	d.PartialPres += s.PartialPres
	d.PlaneConfPre += s.PlaneConfPre
	d.RAPRedirects += s.RAPRedirects
	d.DDBSavedCK += s.DDBSavedCK
}

// ensure workload import is used even if Mixes() changes shape.
var _ = []workload.Mix(nil)

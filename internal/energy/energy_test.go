package energy

import (
	"math"
	"testing"

	"eruca/internal/dram"
)

func TestBreakdownComponents(t *testing.T) {
	m := Default()
	st := dram.Stats{
		Acts: 10, Reads: 100, Writes: 50, Refreshes: 2,
		ActiveCycles: 1000, AllCycles: 2000,
	}
	b := m.Compute(st, 0.75)
	if b.ActNJ != 10*m.ActPreNJ {
		t.Errorf("ACT energy = %v", b.ActNJ)
	}
	wantRW := 100*m.ReadNJ + 50*m.WriteNJ
	if b.RdWrNJ != wantRW {
		t.Errorf("RD/WR energy = %v, want %v", b.RdWrNJ, wantRW)
	}
	if b.RefreshNJ != 2*m.RefreshNJ {
		t.Errorf("refresh energy = %v", b.RefreshNJ)
	}
	wantBG := (1000*0.75*m.ActiveStandbyMW + 1000*0.75*m.PrechargeStandbyMW) / 1000
	if math.Abs(b.BackgroundNJ-wantBG) > 1e-9 {
		t.Errorf("background = %v, want %v", b.BackgroundNJ, wantBG)
	}
	if b.TotalNJ() != b.BackgroundNJ+b.ActNJ+b.RdWrNJ+b.RefreshNJ {
		t.Error("total mismatch")
	}
}

// An EWLR-hit activation saves 18% of the Vpp share (Sec. IV).
func TestEWLRSaving(t *testing.T) {
	m := Default()
	full := m.Compute(dram.Stats{Acts: 100}, 1)
	hits := m.Compute(dram.Stats{Acts: 100, ActsEWLRHit: 100}, 1)
	saveFrac := 1 - hits.ActNJ/full.ActNJ
	want := m.VppFracOfAct * m.EWLRSaveFrac
	if math.Abs(saveFrac-want) > 1e-9 {
		t.Errorf("EWLR ACT saving = %v, want %v", saveFrac, want)
	}
	if hits.ActNJ >= full.ActNJ {
		t.Error("EWLR hits did not reduce activation energy")
	}
}

// Background energy dominates idle periods; shorter runs cost less.
func TestBackgroundScalesWithTime(t *testing.T) {
	m := Default()
	slow := m.Compute(dram.Stats{AllCycles: 2000}, 0.75)
	fast := m.Compute(dram.Stats{AllCycles: 1000}, 0.75)
	if fast.BackgroundNJ*2 != slow.BackgroundNJ {
		t.Errorf("background not linear in time: %v vs %v", fast.BackgroundNJ, slow.BackgroundNJ)
	}
}

// Active standby costs more than precharge standby.
func TestActiveStandbyCostsMore(t *testing.T) {
	m := Default()
	active := m.Compute(dram.Stats{ActiveCycles: 1000, AllCycles: 1000}, 1)
	idle := m.Compute(dram.Stats{ActiveCycles: 0, AllCycles: 1000}, 1)
	if active.BackgroundNJ <= idle.BackgroundNJ {
		t.Error("active standby not more expensive")
	}
}
